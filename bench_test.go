// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§4.3 and §5). Each benchmark is a thin
// wrapper over internal/experiments; the first iteration prints the
// artifact's rows so that
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction run. CI-sized parameter grids are used here;
// cmd/simctl -full runs the full published scales. The per-experiment
// index mapping benchmarks to paper artifacts lives in DESIGN.md §4, and
// paper-vs-measured outcomes are recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// once guards the printing of each artifact so repeated benchmark
// iterations do not flood the output.
var once sync.Map

func printOnce(key string, print func(w io.Writer)) {
	if _, loaded := once.LoadOrStore(key, true); !loaded {
		fmt.Println()
		print(os.Stdout)
	}
}

// BenchmarkTable1Templates regenerates Table 1 (slice templates).
func BenchmarkTable1Templates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 3 {
			b.Fatal("Table 1 must have three slice types")
		}
	}
	printOnce("table1", func(w io.Writer) { experiments.PrintTable1(w) })
}

// BenchmarkFig4PathCapacityCDF regenerates Fig. 4(d): per-path bottleneck
// capacity distributions of the three operator networks.
func BenchmarkFig4PathCapacityCDF(b *testing.B) {
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4(60, 8, 11)
	}
	printOnce("fig4", func(w io.Writer) { experiments.PrintFig4(w, rows) })
}

// BenchmarkFig4PathDelayCDF regenerates Fig. 4(e) (the same computation
// viewed on the delay axis; benchmarked separately so the two panels can
// be timed independently).
func BenchmarkFig4PathDelayCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(60, 8, 11)
		for _, r := range rows {
			if len(r.DelayCDF) == 0 {
				b.Fatal("no delay distribution")
			}
		}
	}
}

// fig5BenchConfig is the CI-sized Fig. 5 grid shared by the serial and
// parallel sweep benchmarks.
func fig5BenchConfig(workers int) experiments.Fig5Config {
	return experiments.Fig5Config{
		Topologies: []string{"Romanian", "Swiss", "Italian"},
		SliceTypes: []string{"eMBB", "mMTC", "uRLLC"},
		Alphas:     []float64{0.2, 0.35, 0.5},
		SigmaFracs: []float64{0.25},
		Penalties:  []float64{1, 16},
		Tenants:    9,
		NBS:        3,
		Epochs:     12,
		KPaths:     1,
		Algorithm:  sim.Direct,
		Seed:       42,
		Workers:    workers,
	}
}

// BenchmarkFig5Homogeneous regenerates Fig. 5: relative revenue gain of
// yield-driven overbooking over the no-overbooking baseline across
// homogeneous slice-type scenarios (CI-sized grid), fanned out over the
// GOMAXPROCS-bounded worker pool.
func BenchmarkFig5Homogeneous(b *testing.B) {
	var pts []experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig5(fig5BenchConfig(0))
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig5", func(w io.Writer) { experiments.PrintFig5(w, pts) })
}

// BenchmarkFig5HomogeneousSerial runs the identical grid on one worker —
// the pre-pool baseline. The parallel/serial ns/op ratio in CI output is
// the sweep's speedup; the printed rows are bit-identical by construction.
func BenchmarkFig5HomogeneousSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(fig5BenchConfig(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Heterogeneous regenerates Fig. 6: absolute net revenue for
// mixed slice-type scenarios at λ̄ = 0.2Λ (CI-sized grid).
func BenchmarkFig6Heterogeneous(b *testing.B) {
	cfg := experiments.Fig6Config{
		Topologies: []string{"Romanian", "Swiss", "Italian"},
		Mixes:      [][2]string{{"eMBB", "mMTC"}, {"eMBB", "uRLLC"}, {"mMTC", "uRLLC"}},
		Betas:      []float64{0, 50, 100},
		Tenants:    9,
		NBS:        3,
		Epochs:     12,
		KPaths:     1,
		Algorithm:  sim.Direct,
		Seed:       42,
	}
	var pts []experiments.Fig6Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig6", func(w io.Writer) { experiments.PrintFig6(w, pts) })
}

// BenchmarkFig8Revenue regenerates Fig. 8(a): testbed net revenue over the
// emulated day under both policies.
func BenchmarkFig8Revenue(b *testing.B) {
	var ours, baseline *experiments.Fig8Series
	for i := 0; i < b.N; i++ {
		var err error
		ours, err = experiments.Fig8(experiments.Fig8Config{Algorithm: sim.Direct, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		baseline, err = experiments.Fig8(experiments.Fig8Config{Algorithm: sim.NoOverbooking, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig8", func(w io.Writer) { experiments.PrintFig8(w, ours, baseline) })
}

// BenchmarkFig8Utilization regenerates Fig. 8(b)–(d): per-domain
// reservation vs actual utilization series for the same scenario.
func BenchmarkFig8Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig8(experiments.Fig8Config{Algorithm: sim.Direct, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range s.Epochs {
			if len(e.PRBShare) != 2 || len(e.CPUReserved) != 2 {
				b.Fatal("utilization series malformed")
			}
		}
	}
}

// BenchmarkSLAViolationFootprint reproduces the §4.3.3 sanity numbers:
// overbooking's violation probability and dropped-traffic footprint.
func BenchmarkSLAViolationFootprint(b *testing.B) {
	var rows []experiments.SLAFootprint
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SLAViolationStudy(3, 6, 16, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("sla", func(w io.Writer) { experiments.PrintSLAStudy(w, rows) })
}

// BenchmarkSolverScaling reproduces the §4.3.3 runtime claim: the exact
// methods slow down combinatorially while KAC stays in heuristic time.
func BenchmarkSolverScaling(b *testing.B) {
	var rows []experiments.SolverTiming
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SolverScaling(nil, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("scaling", func(w io.Writer) { experiments.PrintSolverScaling(w, rows) })
}

// BenchmarkForecastAccuracy reproduces the §2.2.2 design rationale: on
// seasonal traffic Holt-Winters beats single/double exponential smoothing.
func BenchmarkForecastAccuracy(b *testing.B) {
	var rows []experiments.ForecastScore
	for i := 0; i < b.N; i++ {
		rows = experiments.ForecastAblation(24, 10, 5, 42)
	}
	printOnce("forecast", func(w io.Writer) { experiments.PrintForecastAblation(w, rows) })
}
