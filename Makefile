# Single source of truth for build/verify commands: CI invokes these same
# targets, so a green `make ci` locally means a green workflow run.

GO ?= go

# Minimum total statement coverage `make cover` enforces. Measured 81.8%
# when the floor was introduced; the floor leaves headroom for noise while
# catching wholesale test deletions or big untested subsystems.
COVER_FLOOR ?= 75

.PHONY: build test test-race vet fmt-check bench bench-smoke bench-json fuzz-smoke cover ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench regenerates every figure/table artifact with real timing.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — the CI
# guard that no figure/table regeneration path has bit-rotted.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json runs every benchmark once and captures the results — name,
# ns/op, custom metrics like req/s — as a machine-readable perf artifact.
# One file per PR (BENCH_JSON=BENCH_PR<n>.json) makes the repository's perf
# trajectory diffable instead of being archaeology over CI logs. It also
# subsumes bench-smoke: every benchmark path must still compile and run.
BENCH_JSON ?= BENCH_PR3.json

bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > bench.raw || { rm -f bench.raw; exit 1; }
	$(GO) run ./cmd/benchjson < bench.raw > $(BENCH_JSON) || { rm -f bench.raw $(BENCH_JSON); exit 1; }
	@rm -f bench.raw
	@echo "wrote $(BENCH_JSON)"

# fuzz-smoke gives each native fuzz target a short budget; crashes found in
# CI reproduce locally via the corpus file Go writes on failure.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeTopology -fuzztime 10s ./internal/topology

# cover enforces the statement-coverage floor over the whole module.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total statement coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN{exit !(t>=f)}' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

ci: build vet fmt-check test-race cover fuzz-smoke bench-json
