# Single source of truth for build/verify commands: CI invokes these same
# targets, so a green `make ci` locally means a green workflow run.

GO ?= go

# Minimum total statement coverage `make cover` enforces. Measured 76.9%
# at the PR 10 ratchet (cmd/* and examples/* mains count at 0%, which drags
# the total well below per-package numbers — internal/wal and
# internal/cluster, the replication-critical packages, each sit above
# 81%); the 1pt slack absorbs noise while catching wholesale test
# deletions or big untested subsystems.
COVER_FLOOR ?= 75.9

.PHONY: build test test-race vet fmt-check lint bench bench-smoke bench-json bench-compare fuzz-smoke hunt-smoke recover-check cluster-check failover-check cover docs-check links-check smoke metro-smoke clean ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs staticcheck at a pinned version via `go run`, so no tool
# binary is vendored or installed into the image. The version probe keeps
# the target green in offline sandboxes (this module is dependency-free;
# staticcheck is the one network fetch in the toolchain) — hosted CI has
# network and always runs the real check.
STATICCHECK_VERSION ?= 2023.1.7

lint:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "lint: staticcheck $(STATICCHECK_VERSION) unfetchable (offline); skipping"; \
	fi

# bench regenerates every figure/table artifact with real timing.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — the CI
# guard that no figure/table regeneration path has bit-rotted.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json runs every benchmark once and captures the results — name,
# ns/op, allocation counts (-benchmem), custom metrics like req/s — as a
# machine-readable perf artifact. One file per PR
# (BENCH_JSON=BENCH_PR<n>.json) makes the repository's perf trajectory
# diffable instead of being archaeology over CI logs. It also subsumes
# bench-smoke: every benchmark path must still compile and run.
#
# The run is pinned for file-to-file comparability (bench-compare diffs
# these artifacts): GOMAXPROCS is fixed so benchmark names carry no -N
# procs suffix and scheduling is stable, and -benchtime is fixed at one
# iteration. Override BENCH_PROCS only together with a fresh baseline.
BENCH_JSON  ?= BENCH_PR10.json
BENCH_PROCS ?= 1

bench-json:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... > bench.raw || { rm -f bench.raw; exit 1; }
	$(GO) run ./cmd/benchjson < bench.raw > $(BENCH_JSON) || { rm -f bench.raw $(BENCH_JSON); exit 1; }
	@rm -f bench.raw
	@echo "wrote $(BENCH_JSON)"

# bench-compare is the perf-regression gate: it diffs the freshly captured
# BENCH_JSON against the committed baseline BASE and fails on a
# >BENCH_THRESHOLD ns/op regression of any hot benchmark (the named
# end-to-end paths below; one-shot timings of sub-millisecond benchmarks
# are too noisy to gate). The default 15% threshold assumes BASE was
# captured on the same machine with the same pinned bench-json settings;
# when the baseline crosses machines (the committed file vs a hosted CI
# runner) pass a wider BENCH_THRESHOLD to absorb hardware variance — the
# workflow uses 0.30, still far inside the multi-x deltas a real solver
# regression produces on these benchmarks.
#
# One-time baseline note: BENCH_PR4.json predates the GOMAXPROCS pin and
# -benchmem, but was captured on a 1-core container — its suffix-free
# benchmark names prove it effectively ran at GOMAXPROCS=1 — so it is
# comparable to the pinned runs; from PR 5 on, baselines and fresh runs
# share identical settings by construction.
BASE            ?= BENCH_PR6.json
BENCH_THRESHOLD ?= 0.15
HOT_BENCHES     ?= BenchmarkFig5Homogeneous,BenchmarkFig6Heterogeneous,BenchmarkSimRun/warm,BenchmarkAdmissionThroughput/shards=1,BenchmarkMetroRound,BenchmarkWarmSlaveSteadySolve

bench-compare:
	$(GO) run ./cmd/benchjson compare -threshold $(BENCH_THRESHOLD) -hot '$(HOT_BENCHES)' $(BASE) $(BENCH_JSON)

# fuzz-smoke gives each native fuzz target a short budget; crashes found in
# CI reproduce locally via the corpus file Go writes on failure. The loop
# discovers targets with `go test -list`, so a new Fuzz* function is in
# the smoke budget the moment it is committed — no Makefile edit to forget.
fuzz-smoke:
	@set -e; \
	for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz' || true); do \
			echo "fuzz-smoke: $$target ($$pkg)"; \
			$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime 10s $$pkg; \
		done; \
	done

# hunt-smoke is the adversarial-regression gate: CI-sized seed sweeps of
# the closed loop vs the static-reservation baseline (`scenario hunt`) on
# a heavy-tail workload — where small closed-loop regressions are known to
# exist — and on an outage archetype, where the closed loop must win
# outright (a regression under faults would be a real control bug, and the
# sweep would surface the seed). The committed reproducer then replays and
# must still regress: hunt determinism, pinned bit for bit.
HUNT_SEEDS ?= 8

hunt-smoke:
	$(GO) run ./cmd/scenario hunt -name heavy-tail -tenants 4 -epochs 12 -seeds $(HUNT_SEEDS) -seed 1
	$(GO) run ./cmd/scenario hunt -name outage -tenants 4 -epochs 10 -seeds 4 -seed 1
	$(GO) run ./cmd/scenario hunt -replay docs/reproducers/heavy-tail-ci.json

# recover-check is the crash-recovery gate: the kill-and-replay suite in
# internal/wal hard-kills the control plane at randomized epoch boundaries
# and requires the recovered decision trace, yield ledger and tracker
# state to equal an uninterrupted run bit for bit. -count=1 defeats the
# test cache — a recovery gate that silently replays a cached PASS guards
# nothing — and the explicit -timeout keeps a wedged replay from eating
# the job's whole budget.
recover-check:
	$(GO) test ./internal/wal/ -run 'TestKillAndReplay|TestCleanShutdown|TestRecoverTruncates' -count=1 -timeout 10m

# cluster-check is the distributed-determinism gate: loadgen and the
# ovnes REST stack run once in-process and once against real ovnes-worker
# OS processes (internal/cluster), with one worker SIGKILLed mid-run. The
# decision tables, yield ledger and slice states must be byte-identical —
# the cluster must change throughput topology, never a decision.
cluster-check:
	./scripts/cluster_check.sh

# failover-check is the replication gate: a leader ovnes (WAL + lease +
# coordinator) is SIGKILLed mid-run while a standby ovnes tails its log;
# the standby must take the lapsed lease, replay every pre-kill round, and
# finish the run with /yield and /slices byte-identical to an uninterrupted
# single process. A second phase deposes a leader that keeps running and
# requires the workers to fence its dispatches.
failover-check:
	./scripts/failover_check.sh

# docs-check fails when a package lacks its godoc: every internal/*
# package must carry a doc.go opening with "// Package <name>", every
# cmd/* binary a "// Command <name>" comment in main.go.
docs-check:
	@fail=0; \
	for d in internal/*; do \
		p=$$(basename $$d); \
		grep -qs "^// Package $$p " $$d/doc.go || { echo "$$d: missing doc.go package comment (want '// Package $$p ...')"; fail=1; }; \
	done; \
	for d in cmd/*; do \
		c=$$(basename $$d); \
		grep -qs "^// Command $$c " $$d/main.go || { echo "$$d: missing '// Command $$c ...' comment in main.go"; fail=1; }; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "docs-check: every package documented"

# links-check verifies every relative link in the repo's markdown files
# resolves to an existing file (external URLs are deliberately skipped:
# CI must not depend on the network).
links-check:
	$(GO) run ./cmd/mdcheck

# metro-smoke is the metro-tier gate: the full >=1000-BS metro archetype
# (topology.MetroPods pod domains on one engine) driven end to end through
# loadgen's closed loop at CI-sized epochs, with the per-domain decision
# and realized-yield table pinned byte for byte. Solver refactors may move
# pivot paths but must not move a single admission decision or reservation
# at metro scale. Refresh deliberately with:
#   go run ./cmd/loadgen -scenario metro -seed 1 -epochs 4 -shards 4 -mode closed 2>/dev/null | grep -v '^#' > scripts/golden/metro_loadgen.golden
metro-smoke:
	$(GO) run ./cmd/loadgen -scenario metro -seed 1 -epochs 4 -shards 4 -mode closed > metro.raw
	grep -v '^#' metro.raw > metro.out
	diff -u scripts/golden/metro_loadgen.golden metro.out
	@rm -f metro.raw metro.out
	@echo "metro-smoke: metro decision fingerprint pinned"

# smoke executes the README quickstart commands end to end (CI-fast
# variants where the documented command also offers a longer mode), so a
# stale flag or path in the docs fails the build, not the reader.
smoke:
	./scripts/smoke.sh

# clean removes every scratch artifact the build/bench/profile targets
# drop (committed BENCH_PR<n>.json baselines are durable outputs, not
# scratch, and are left alone).
clean:
	rm -f coverage.out bench.raw metro.raw metro.out cpu.out mem.out *.pprof *.prof
	rm -rf ovnes-data

# cover enforces the statement-coverage floor over the whole module. The
# empty-total guard fails loudly if `go tool cover -func` ever changes its
# output shape — an unparsed total must read as "gate broken", never as
# "coverage fine".
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	if [ -z "$$total" ]; then \
		echo "cover: could not parse the total from 'go tool cover -func' (output format changed?)"; exit 1; fi; \
	echo "total statement coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN{exit !(t>=f)}' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

ci: build vet fmt-check lint docs-check links-check test-race cover fuzz-smoke recover-check cluster-check failover-check hunt-smoke smoke metro-smoke bench-json bench-compare
