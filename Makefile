# Single source of truth for build/verify commands: CI invokes these same
# targets, so a green `make ci` locally means a green workflow run.

GO ?= go

.PHONY: build test test-race vet fmt-check bench bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench regenerates every figure/table artifact with real timing.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once — the CI
# guard that no figure/table regeneration path has bit-rotted.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build vet fmt-check test-race bench-smoke
