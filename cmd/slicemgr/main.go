// Command slicemgr runs the tenant-facing slice manager web app (§2.2.1):
// it validates slice requests, renders TOSCA-like NS descriptors and
// forwards them to a running ovnes orchestrator.
//
// Usage:
//
//	slicemgr [-listen 127.0.0.1:8090] [-orchestrator http://127.0.0.1:8080]
//
// Then submit a request:
//
//	curl -X POST http://127.0.0.1:8090/requests -d \
//	  '{"name":"urllc1","type":"uRLLC","duration_epochs":12,"penalty_factor":1}'
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/ctrlplane"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slicemgr: ")

	var (
		listen = flag.String("listen", "127.0.0.1:8090", "listen address")
		orch   = flag.String("orchestrator", "http://127.0.0.1:8080", "ovnes base URL")
	)
	flag.Parse()

	mgr := ctrlplane.NewSliceManager(*orch)
	log.Printf("slice manager on http://%s (orchestrator %s)", *listen, *orch)
	log.Fatal(http.ListenAndServe(*listen, mgr.Handler()))
}
