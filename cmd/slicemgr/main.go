// Command slicemgr runs the tenant-facing slice manager web app (§2.2.1):
// it validates slice requests, renders TOSCA-like NS descriptors and
// forwards them to a running ovnes orchestrator.
//
// Usage:
//
//	slicemgr [-listen 127.0.0.1:8090] [-orchestrator http://127.0.0.1:8080]
//
// Then submit a request:
//
//	curl -X POST http://127.0.0.1:8090/requests -d \
//	  '{"name":"urllc1","type":"uRLLC","duration_epochs":12,"penalty_factor":1}'
//
// SIGINT/SIGTERM drain in-flight requests before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctrlplane"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slicemgr: ")

	var (
		listen = flag.String("listen", "127.0.0.1:8090", "listen address")
		orch   = flag.String("orchestrator", "http://127.0.0.1:8080", "ovnes base URL")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	mgr := ctrlplane.NewSliceManager(*orch)
	srv := &http.Server{Addr: *listen, Handler: mgr.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("slice manager on http://%s (orchestrator %s)", *listen, *orch)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case <-ctx.Done():
		log.Print("signal received, shutting down")
	case err := <-errc:
		log.Fatal(err)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Print("bye")
}
