// Command scenario drives the declarative workload engine from the command
// line: list the built-in archetypes, run one under a seed, or fan a
// multi-seed sweep out over the machine.
//
// Usage:
//
//	scenario list
//	scenario run   -name flash-crowd -seed 42 [-epochs 48] [-tenants 12] [-algo benders] [-cold]
//	scenario sweep -name sla-mix -seeds 8 [-workers 0] [-algo benders]
//
// Every archetype is runnable with any seed; identical (scenario, seed)
// invocations print identical traces at any worker count.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenario: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		run(os.Args[2:])
	case "sweep":
		sweep(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scenario <list|run|sweep> [flags]")
	os.Exit(2)
}

func list() {
	fmt.Println("name\ttopology\ttenants\tepochs\tarrivals\tdescription")
	for _, s := range scenario.Archetypes() {
		fmt.Printf("%s\t%s(%d)\t%d\t%d\t%s\t%s\n",
			s.Name, s.Topology, s.NBS, s.Tenants, s.Epochs, s.Arrivals.Kind, s.Description)
	}
}

// specFlags applies the shared overrides and resolves the archetype.
func specFlags(fs *flag.FlagSet, args []string) (scenario.Spec, *flag.FlagSet) {
	name := fs.String("name", "homogeneous", "archetype name (see `scenario list`)")
	epochs := fs.Int("epochs", 0, "override the archetype's epoch count")
	tenants := fs.Int("tenants", 0, "override the archetype's tenant count")
	nbs := fs.Int("nbs", -1, "override the topology scale (0 = full size)")
	algo := fs.String("algo", "", "override the solver: direct | benders | kac | no-overbooking")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	spec, err := scenario.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	if *epochs > 0 {
		spec.Epochs = *epochs
	}
	if *tenants > 0 {
		spec.Tenants = *tenants
	}
	if *nbs >= 0 {
		spec.NBS = *nbs
	}
	if *algo != "" {
		spec.Algorithm = *algo
	}
	return spec, fs
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "scenario RNG seed")
	cold := fs.Bool("cold", false, "disable cross-epoch solver state (identical decisions, slower)")
	spec, _ := specFlags(fs, args)

	cfg, err := spec.Compile(*seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg.ColdSolver = *cold
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# scenario %s seed=%d topology=%s slices=%d algo=%s\n",
		spec.Name, *seed, spec.Topology, len(cfg.Slices), cfg.Algorithm)
	fmt.Println("epoch\taccepted\trevenue\texpected\tviolations\tdeficit_cost")
	for _, es := range res.Epochs {
		fmt.Printf("%d\t%d\t%.3f\t%.3f\t%d/%d\t%.2f\n",
			es.Epoch, es.Accepted, es.Revenue, es.ExpectedRevenue, es.Violations, es.Samples, es.DeficitCost)
	}
	fmt.Printf("# total=%.3f steady_mean=%.3f violation_prob=%.6f mean_drop=%.4f\n",
		res.TotalRevenue, res.MeanRevenue, res.ViolationProb, res.MeanDrop)
}

func sweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	seeds := fs.Int("seeds", 8, "number of seeds (0..n-1 offsets from -seed)")
	seed := fs.Int64("seed", 42, "base seed")
	workers := fs.Int("workers", 0, "worker pool bound (0 = GOMAXPROCS, 1 = serial)")
	spec, _ := specFlags(fs, args)

	ss := make([]int64, *seeds)
	for i := range ss {
		ss[i] = *seed + int64(i)
	}
	results, err := scenario.Sweep(spec, ss, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# scenario %s, %d seeds, algo=%s\n", spec.Name, len(ss), spec.Algorithm)
	fmt.Println("seed\tsteady_mean\ttotal\tviolation_prob")
	var means []float64
	for i, r := range results {
		fmt.Printf("%d\t%.3f\t%.3f\t%.6f\n", ss[i], r.MeanRevenue, r.TotalRevenue, r.ViolationProb)
		means = append(means, r.MeanRevenue)
	}
	mean, se := meanStderr(means)
	fmt.Printf("# steady_mean over seeds: %.3f ± %.3f (stderr)\n", mean, se)
}

// meanStderr returns the sample mean and its standard error — the paper's
// §4.3 stopping rule reports results once this stderr is small.
func meanStderr(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	ss := 0.0
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1) / float64(len(xs)))
}
