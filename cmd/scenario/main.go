// Command scenario drives the declarative workload engine from the command
// line: list the built-in archetypes, run one under a seed, fan a
// multi-seed sweep out over the machine, or hunt the seed space for
// closed-loop yield regressions against the static baseline.
//
// Usage:
//
//	scenario list
//	scenario run   -name flash-crowd -seed 42 [-epochs 48] [-tenants 12] [-algo benders] [-cold] [-trace demand.json]
//	scenario sweep -name sla-mix -seeds 8 [-workers 0] [-algo benders]
//	scenario hunt  -name heavy-tail -seeds 16 [-seed 1] [-workers 0] [-out hit.json]
//	scenario hunt  -replay docs/reproducers/heavy-tail-seed8.json
//
// Every archetype is runnable with any seed; identical (scenario, seed)
// invocations print identical traces at any worker count.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenario: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		run(os.Args[2:])
	case "sweep":
		sweep(os.Args[2:])
	case "hunt":
		hunt(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scenario <list|run|sweep|hunt> [flags]")
	os.Exit(2)
}

// applyTrace reads a recorded demand file and makes every class replay it.
func applyTrace(spec scenario.Spec, path string) scenario.Spec {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := traffic.DecodeTrace(data)
	if err != nil {
		log.Fatal(err)
	}
	return scenario.WithTrace(spec, tf)
}

func list() {
	fmt.Println("name\ttopology\ttenants\tepochs\tarrivals\tdescription")
	for _, s := range scenario.Archetypes() {
		fmt.Printf("%s\t%s(%d)\t%d\t%d\t%s\t%s\n",
			s.Name, s.Topology, s.NBS, s.Tenants, s.Epochs, s.Arrivals.Kind, s.Description)
	}
}

// specFlags applies the shared overrides and resolves the archetype.
func specFlags(fs *flag.FlagSet, args []string) (scenario.Spec, *flag.FlagSet) {
	name := fs.String("name", "homogeneous", "archetype name (see `scenario list`)")
	epochs := fs.Int("epochs", 0, "override the archetype's epoch count")
	tenants := fs.Int("tenants", 0, "override the archetype's tenant count")
	nbs := fs.Int("nbs", -1, "override the topology scale (0 = full size)")
	algo := fs.String("algo", "", "override the solver: direct | benders | kac | no-overbooking")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	spec, err := scenario.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	if *epochs > 0 {
		spec.Epochs = *epochs
	}
	if *tenants > 0 {
		spec.Tenants = *tenants
	}
	if *nbs >= 0 {
		spec.NBS = *nbs
	}
	if *algo != "" {
		spec.Algorithm = *algo
	}
	return spec, fs
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "scenario RNG seed")
	cold := fs.Bool("cold", false, "disable cross-epoch solver state (identical decisions, slower)")
	trace := fs.String("trace", "", "replay a recorded demand file (JSON/CSV) as every class's load")
	spec, _ := specFlags(fs, args)
	if *trace != "" {
		spec = applyTrace(spec, *trace)
	}

	cfg, err := spec.Compile(*seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg.ColdSolver = *cold
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# scenario %s seed=%d topology=%s slices=%d algo=%s\n",
		spec.Name, *seed, spec.Topology, len(cfg.Slices), cfg.Algorithm)
	fmt.Println("epoch\taccepted\trevenue\texpected\tviolations\tdeficit_cost")
	for _, es := range res.Epochs {
		fmt.Printf("%d\t%d\t%.3f\t%.3f\t%d/%d\t%.2f\n",
			es.Epoch, es.Accepted, es.Revenue, es.ExpectedRevenue, es.Violations, es.Samples, es.DeficitCost)
	}
	fmt.Printf("# total=%.3f steady_mean=%.3f violation_prob=%.6f mean_drop=%.4f\n",
		res.TotalRevenue, res.MeanRevenue, res.ViolationProb, res.MeanDrop)
}

func sweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	seeds := fs.Int("seeds", 8, "number of seeds (0..n-1 offsets from -seed)")
	seed := fs.Int64("seed", 42, "base seed")
	workers := fs.Int("workers", 0, "worker pool bound (0 = GOMAXPROCS, 1 = serial)")
	spec, _ := specFlags(fs, args)

	ss := make([]int64, *seeds)
	for i := range ss {
		ss[i] = *seed + int64(i)
	}
	results, err := scenario.Sweep(spec, ss, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# scenario %s, %d seeds, algo=%s\n", spec.Name, len(ss), spec.Algorithm)
	fmt.Println("seed\tsteady_mean\ttotal\tviolation_prob")
	var means []float64
	for i, r := range results {
		fmt.Printf("%d\t%.3f\t%.3f\t%.6f\n", ss[i], r.MeanRevenue, r.TotalRevenue, r.ViolationProb)
		means = append(means, r.MeanRevenue)
	}
	mean, se := meanStderr(means)
	fmt.Printf("# steady_mean over seeds: %.3f ± %.3f (stderr)\n", mean, se)
}

// hunt sweeps seeds comparing closed-loop vs static-reservation yield on
// identical worlds, reporting every seed where the closed loop loses. With
// -out, the first hit is written as a reproducer file; with -replay, a
// committed reproducer re-runs both arms and the process fails unless the
// regression still reproduces (the CI determinism check).
func hunt(args []string) {
	fs := flag.NewFlagSet("hunt", flag.ExitOnError)
	replay := fs.String("replay", "", "re-run a committed reproducer file and require the regression to reproduce")
	seeds := fs.Int("seeds", 16, "number of seeds to sweep (offsets from -seed)")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "worker pool bound (0 = GOMAXPROCS, 1 = serial)")
	out := fs.String("out", "", "write the first regression hit as a reproducer JSON file")
	// -replay short-circuits the archetype flags, so peek before specFlags.
	if len(args) > 0 && (args[0] == "-replay" || args[0] == "--replay") {
		if err := fs.Parse(args); err != nil {
			os.Exit(2)
		}
		replayReproducer(*replay)
		return
	}
	spec, _ := specFlags(fs, args)

	results, err := scenario.Hunt(spec, *seed, *seeds, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# scenario hunt %s, seeds [%d,%d), closed-loop vs static baseline\n",
		spec.Name, *seed, *seed+int64(*seeds))
	fmt.Println("seed\tclosed\tstatic\tregression")
	hits := 0
	var first *scenario.HuntResult
	for i := range results {
		r := results[i]
		mark := ""
		if r.Regressed() {
			hits++
			mark = "\tREGRESSED"
			if first == nil {
				first = &results[i]
			}
		}
		fmt.Printf("%d\t%.3f\t%.3f\t%.3f%s\n", r.Seed, r.Closed, r.Static, r.Regression, mark)
	}
	fmt.Printf("# %d/%d seeds regressed\n", hits, len(results))
	if first != nil && *out != "" {
		data, err := scenario.EncodeReproducer(scenario.Reproducer{Spec: spec, Seed: first.Seed, Hit: *first})
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# reproducer written to %s (seed %d)\n", *out, first.Seed)
	}
}

func replayReproducer(path string) {
	if path == "" {
		log.Fatal("hunt -replay needs a reproducer file")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := scenario.DecodeReproducer(data)
	if err != nil {
		log.Fatal(err)
	}
	got, err := rep.Replay()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# reproducer %s: spec=%s seed=%d\n", path, rep.Spec.Name, rep.Seed)
	fmt.Printf("committed: closed=%.3f static=%.3f regression=%.3f\n", rep.Hit.Closed, rep.Hit.Static, rep.Hit.Regression)
	fmt.Printf("replayed:  closed=%.3f static=%.3f regression=%.3f\n", got.Closed, got.Static, got.Regression)
	if !got.Regressed() {
		log.Fatalf("regression no longer reproduces (regression %.3f <= 0)", got.Regression)
	}
	fmt.Println("# regression reproduced")
}

// meanStderr returns the sample mean and its standard error — the paper's
// §4.3 stopping rule reports results once this stderr is small.
func meanStderr(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	ss := 0.0
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1) / float64(len(xs)))
}
