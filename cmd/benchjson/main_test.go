package main

import (
	"reflect"
	"testing"
)

func parseLine(t *testing.T, pkg, line string) (Result, bool) {
	t.Helper()
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	return parseResult(pkg, m)
}

func TestParseBenchLines(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Result
		ok   bool
	}{
		{
			name: "plain ns/op",
			line: "BenchmarkWarmSolve-8   	     100	  12345678 ns/op",
			want: Result{Pkg: "p", Name: "BenchmarkWarmSolve", Procs: 8, Iterations: 100, NsPerOp: 12345678},
			ok:   true,
		},
		{
			name: "custom metrics and subbenchmark",
			line: "BenchmarkAdmissionThroughput/shards=4-2         	       2	  43032439 ns/op	      2231 req/s",
			want: Result{Pkg: "p", Name: "BenchmarkAdmissionThroughput/shards=4", Procs: 2,
				Iterations: 2, NsPerOp: 43032439, Metrics: map[string]float64{"req/s": 2231}},
			ok: true,
		},
		{
			name: "benchmem columns",
			line: "BenchmarkX 	 3	 100 ns/op	 64 B/op	 2 allocs/op",
			want: Result{Pkg: "p", Name: "BenchmarkX", Iterations: 3, NsPerOp: 100,
				Metrics: map[string]float64{"B/op": 64, "allocs/op": 2}},
			ok: true,
		},
		{name: "artifact output ignored", line: "fig5: m=16 revenue=3.2", ok: false},
		{name: "status line ignored", line: "ok  	repro/internal/admission	1.2s", ok: false},
		{name: "bench header ignored", line: "BenchmarkAdmissionThroughput/shards=1", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseLine(t, "p", tc.line)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}
