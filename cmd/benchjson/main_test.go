package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func parseLine(t *testing.T, pkg, line string) (Result, bool) {
	t.Helper()
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	return parseResult(pkg, m)
}

func TestParseBenchLines(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Result
		ok   bool
	}{
		{
			name: "plain ns/op",
			line: "BenchmarkWarmSolve-8   	     100	  12345678 ns/op",
			want: Result{Pkg: "p", Name: "BenchmarkWarmSolve", Procs: 8, Iterations: 100, NsPerOp: 12345678},
			ok:   true,
		},
		{
			name: "custom metrics and subbenchmark",
			line: "BenchmarkAdmissionThroughput/shards=4-2         	       2	  43032439 ns/op	      2231 req/s",
			want: Result{Pkg: "p", Name: "BenchmarkAdmissionThroughput/shards=4", Procs: 2,
				Iterations: 2, NsPerOp: 43032439, Metrics: map[string]float64{"req/s": 2231}},
			ok: true,
		},
		{
			name: "benchmem columns",
			line: "BenchmarkX 	 3	 100 ns/op	 64 B/op	 2 allocs/op",
			want: Result{Pkg: "p", Name: "BenchmarkX", Iterations: 3, NsPerOp: 100,
				Metrics: map[string]float64{"B/op": 64, "allocs/op": 2}},
			ok: true,
		},
		{name: "artifact output ignored", line: "fig5: m=16 revenue=3.2", ok: false},
		{name: "status line ignored", line: "ok  	repro/internal/admission	1.2s", ok: false},
		{name: "bench header ignored", line: "BenchmarkAdmissionThroughput/shards=1", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseLine(t, "p", tc.line)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// writeDoc drops a Document to a temp file for compare-mode tests.
func writeDoc(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	raw, err := json.Marshal(Document{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	// ns/op values sit above compare's default 1ms noise floor so the
	// timing gate is live.
	base := writeDoc(t, dir, "base.json", []Result{
		{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 10_000_000},
		{Pkg: "p", Name: "BenchmarkCold", NsPerOp: 5_000_000},
	})

	cases := []struct {
		name string
		next []Result
		args []string
		want int
	}{
		{
			name: "improvement passes",
			next: []Result{{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 4_000_000}, {Pkg: "p", Name: "BenchmarkCold", NsPerOp: 5_000_000}},
			args: []string{"-hot", "BenchmarkHot"},
			want: 0,
		},
		{
			name: "small regression within threshold passes",
			next: []Result{{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 11_000_000}, {Pkg: "p", Name: "BenchmarkCold", NsPerOp: 5_000_000}},
			args: []string{"-hot", "BenchmarkHot"},
			want: 0,
		},
		{
			name: "hot regression beyond threshold fails",
			next: []Result{{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 12_000_000}, {Pkg: "p", Name: "BenchmarkCold", NsPerOp: 5_000_000}},
			args: []string{"-hot", "BenchmarkHot"},
			want: 1,
		},
		{
			name: "cold regression is reported but not gated",
			next: []Result{{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 10_000_000}, {Pkg: "p", Name: "BenchmarkCold", NsPerOp: 50_000_000}},
			args: []string{"-hot", "BenchmarkHot"},
			want: 0,
		},
		{
			name: "missing hot benchmark fails",
			next: []Result{{Pkg: "p", Name: "BenchmarkCold", NsPerOp: 5_000_000}},
			args: []string{"-hot", "BenchmarkHot"},
			want: 1,
		},
		{
			name: "custom threshold",
			next: []Result{{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 14_000_000}, {Pkg: "p", Name: "BenchmarkCold", NsPerOp: 5_000_000}},
			args: []string{"-hot", "BenchmarkHot", "-threshold", "0.5"},
			want: 0,
		},
		{
			name: "hot benchmark absent from both files fails",
			next: []Result{{Pkg: "p", Name: "BenchmarkCold", NsPerOp: 5_000_000}},
			args: []string{"-hot", "BenchmarkNowhere"},
			want: 1,
		},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			next := writeDoc(t, dir, "next.json", tc.next)
			args := append(append([]string{}, tc.args...), base, next)
			if got := compare(args); got != tc.want {
				t.Fatalf("compare exit = %d, want %d (case %d)", got, tc.want, i)
			}
		})
	}
}

// TestComparePkgCollision: same-named benchmarks in different packages must
// be paired per package, not collide — a hot regression in one package
// cannot hide behind an improvement of its namesake in another.
func TestComparePkgCollision(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "cbase.json", []Result{
		{Pkg: "repro/internal/lp", Name: "BenchmarkSolve", NsPerOp: 10_000_000},
		{Pkg: "repro/internal/milp", Name: "BenchmarkSolve", NsPerOp: 10_000_000},
	})
	next := writeDoc(t, dir, "cnext.json", []Result{
		{Pkg: "repro/internal/lp", Name: "BenchmarkSolve", NsPerOp: 1_000_000},    // big improvement
		{Pkg: "repro/internal/milp", Name: "BenchmarkSolve", NsPerOp: 20_000_000}, // big regression
	})
	if got := compare([]string{"-hot", "BenchmarkSolve", base, next}); got != 1 {
		t.Fatalf("compare exit = %d, want 1 (the milp regression must not be masked by the lp improvement)", got)
	}
}

// TestCompareReportsNewBenchmarks: benchmarks added since the baseline
// appear in the table as "(new)" rows and are never gated.
func TestCompareReportsNewBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "nbase.json", []Result{
		{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 1000},
	})
	next := writeDoc(t, dir, "nnext.json", []Result{
		{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 900},
		{Pkg: "p", Name: "BenchmarkAdded", NsPerOp: 123},
	})
	if got := compare([]string{"-hot", "BenchmarkHot", base, next}); got != 0 {
		t.Fatalf("compare exit = %d, want 0 (a new benchmark must not fail the gate)", got)
	}
}

// TestCompareNewHotBenchmarkPasses: a hot benchmark present only in the
// new file is the rotation step that introduces it with its first
// baseline — reported as "(new)", not a failure. Only total absence (in
// neither file) fails.
func TestCompareNewHotBenchmarkPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "hbase.json", []Result{
		{Pkg: "p", Name: "BenchmarkOld", NsPerOp: 1000},
	})
	next := writeDoc(t, dir, "hnext.json", []Result{
		{Pkg: "p", Name: "BenchmarkOld", NsPerOp: 1000},
		{Pkg: "p", Name: "BenchmarkFreshHot", NsPerOp: 250,
			Metrics: map[string]float64{"allocs/op": 0}},
	})
	if got := compare([]string{"-hot", "BenchmarkFreshHot", base, next}); got != 0 {
		t.Fatalf("compare exit = %d, want 0 (hot benchmark new in this rotation must pass)", got)
	}
}

// TestCompareAllocGate: a hot benchmark's 0 allocs/op pin must stay at 0
// exactly; nonzero counts are reported but not gated (they trade
// legitimately against wall clock, which the ns/op gate holds). Benchmarks
// without the metric on both sides are not alloc-gated.
func TestCompareAllocGate(t *testing.T) {
	dir := t.TempDir()
	withAllocs := func(ns, allocs float64) Result {
		return Result{Pkg: "p", Name: "BenchmarkHot", NsPerOp: ns,
			Metrics: map[string]float64{"allocs/op": allocs, "B/op": allocs * 16}}
	}
	cases := []struct {
		name       string
		base, next []Result
		args       []string
		want       int
	}{
		{
			name: "zero-alloc pin regressing to nonzero fails",
			base: []Result{withAllocs(1000, 0)},
			next: []Result{withAllocs(1000, 3)},
			args: []string{"-hot", "BenchmarkHot"},
			want: 1,
		},
		{
			name: "zero-alloc pin holding at zero passes",
			base: []Result{withAllocs(1000, 0)},
			next: []Result{withAllocs(1000, 0)},
			args: []string{"-hot", "BenchmarkHot"},
			want: 0,
		},
		{
			name: "nonzero alloc growth is reported but not gated",
			base: []Result{withAllocs(1000, 100)},
			next: []Result{withAllocs(1000, 160)},
			args: []string{"-hot", "BenchmarkHot"},
			want: 0,
		},
		{
			name: "alloc improvement passes",
			base: []Result{withAllocs(1000, 100)},
			next: []Result{withAllocs(1000, 10)},
			args: []string{"-hot", "BenchmarkHot"},
			want: 0,
		},
		{
			name: "missing allocs metric is not alloc-gated",
			base: []Result{{Pkg: "p", Name: "BenchmarkHot", NsPerOp: 1000}},
			next: []Result{withAllocs(1000, 500)},
			args: []string{"-hot", "BenchmarkHot"},
			want: 0,
		},
		{
			name: "cold benchmark alloc regression is not gated",
			base: []Result{withAllocs(1000, 0)},
			next: []Result{withAllocs(1000, 50)},
			args: []string{"-hot", ""},
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := writeDoc(t, dir, "abase.json", tc.base)
			next := writeDoc(t, dir, "anext.json", tc.next)
			args := append(append([]string{}, tc.args...), base, next)
			if got := compare(args); got != tc.want {
				t.Fatalf("compare exit = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestCompareNoiseFloor: a hot benchmark whose baseline sits below the
// noise floor is not timing-gated (one-shot microsecond timings swing on
// timer noise), but its zero-alloc pin still is; -floor 0 restores full
// timing gating.
func TestCompareNoiseFloor(t *testing.T) {
	dir := t.TempDir()
	micro := func(ns, allocs float64) []Result {
		return []Result{{Pkg: "p", Name: "BenchmarkHot", NsPerOp: ns,
			Metrics: map[string]float64{"allocs/op": allocs}}}
	}
	cases := []struct {
		name       string
		base, next []Result
		args       []string
		want       int
	}{
		{
			name: "sub-floor timing swing passes",
			base: micro(7_000, 0),
			next: micro(21_000, 0), // 3x, but 21µs one-shot is noise
			args: []string{"-hot", "BenchmarkHot"},
			want: 0,
		},
		{
			name: "sub-floor zero-alloc regression still fails",
			base: micro(7_000, 0),
			next: micro(7_000, 2),
			args: []string{"-hot", "BenchmarkHot"},
			want: 1,
		},
		{
			name: "floor zero gates everything",
			base: micro(7_000, 0),
			next: micro(21_000, 0),
			args: []string{"-hot", "BenchmarkHot", "-floor", "0"},
			want: 1,
		},
		{
			name: "above-floor regression still fails with default floor",
			base: micro(2_000_000, 0),
			next: micro(6_000_000, 0),
			args: []string{"-hot", "BenchmarkHot"},
			want: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := writeDoc(t, dir, "fbase.json", tc.base)
			next := writeDoc(t, dir, "fnext.json", tc.next)
			args := append(append([]string{}, tc.args...), base, next)
			if got := compare(args); got != tc.want {
				t.Fatalf("compare exit = %d, want %d", got, tc.want)
			}
		})
	}
}
