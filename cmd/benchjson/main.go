// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so the repository's perf
// trajectory can be tracked file-to-file across PRs (BENCH_PR3.json
// onward) instead of being archaeology over CI logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_PR3.json
//
// Every benchmark line is captured with its package, name, -cpu suffix,
// iteration count, ns/op, and all custom metrics (req/s, B/op, ...).
// Non-benchmark output — figure artifacts, log lines — is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // custom units beyond ns/op
}

// Document is the emitted file.
type Document struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g. `BenchmarkFoo/sub=2-8   4   123456 ns/op   7 req/s`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	doc := Document{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			r, ok := parseResult(pkg, m)
			if !ok {
				continue
			}
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Results) == 0 {
		log.Fatal("no benchmark results on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: captured %d results\n", len(doc.Results))
}

// parseResult decodes one matched benchmark line: the metric tail is
// `value unit` pairs, ns/op first by convention but not by requirement.
func parseResult(pkg string, m []string) (Result, bool) {
	r := Result{Pkg: pkg, Name: m[1], Metrics: map[string]float64{}}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	var err error
	r.Iterations, err = strconv.ParseInt(m[3], 10, 64)
	if err != nil {
		return r, false
	}
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return r, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[fields[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
