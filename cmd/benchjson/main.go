// Command benchjson converts `go test -bench` output into a
// machine-readable JSON document, and diffs two such documents as the
// repository's perf-regression gate.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_PR5.json
//	benchjson compare [-threshold 0.15] [-hot name,name,...] BASE.json NEW.json
//
// Capture mode (the default, stdin → stdout) records every benchmark line
// with its package, name, -cpu suffix, iteration count, ns/op, and all
// custom metrics (req/s, B/op, allocs/op, ...). Non-benchmark output —
// figure artifacts, log lines — is ignored. One file per PR
// (BENCH_PR3.json onward) makes the perf trajectory diffable instead of
// being archaeology over CI logs.
//
// Compare mode prints a per-benchmark ns/op + allocs/op delta table
// between a baseline file and a new file, and exits nonzero when any
// benchmark named in -hot is missing from the new file, absent from both
// files, regressed in ns/op by more than -threshold (default 15%, only
// gated when the baseline is at least -floor ns/op — sub-millisecond
// one-shot timings are too noisy to gate), or broke a zero-alloc pin
// (0 allocs/op in the baseline, nonzero now — exact, not thresholded;
// nonzero counts are reported, not gated). A hot
// benchmark present only in the new file is reported as "(new)" and not
// gated: that is the rotation step that introduces a benchmark together
// with its first baseline. The files must come from the same machine and the same
// pinned `make bench-json` settings (fixed GOMAXPROCS, fixed -benchtime)
// for the comparison to mean anything; CI regenerates the new file in the
// same job that gates on it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // custom units beyond ns/op
}

// Document is the emitted file.
type Document struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g. `BenchmarkFoo/sub=2-8   4   123456 ns/op   7 req/s`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(compare(os.Args[2:]))
	}
	capture()
}

// capture reads `go test -bench` output on stdin and writes the JSON
// document on stdout.
func capture() {
	doc := Document{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			r, ok := parseResult(pkg, m)
			if !ok {
				continue
			}
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Results) == 0 {
		log.Fatal("no benchmark results on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: captured %d results\n", len(doc.Results))
}

// parseResult decodes one matched benchmark line: the metric tail is
// `value unit` pairs, ns/op first by convention but not by requirement.
func parseResult(pkg string, m []string) (Result, bool) {
	r := Result{Pkg: pkg, Name: m[1], Metrics: map[string]float64{}}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	var err error
	r.Iterations, err = strconv.ParseInt(m[3], 10, 64)
	if err != nil {
		return r, false
	}
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return r, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			r.Metrics[fields[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// compare diffs two capture files and applies the hot-benchmark gate.
// Returns the process exit code.
func compare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.15, "max tolerated ns/op regression of a hot benchmark (fraction)")
	hot := fs.String("hot", "", "comma-separated benchmark names gated against the threshold")
	floor := fs.Float64("floor", 1e6, "ns/op below which a hot benchmark's timing is too noisy to gate (allocs/op still gated)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-threshold 0.15] [-hot a,b,...] BASE.json NEW.json")
		return 2
	}
	base, err := loadDoc(fs.Arg(0))
	if err != nil {
		log.Print(err)
		return 2
	}
	next, err := loadDoc(fs.Arg(1))
	if err != nil {
		log.Print(err)
		return 2
	}

	hotSet := map[string]bool{}
	for _, h := range strings.Split(*hot, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hotSet[h] = true
		}
	}

	baseBy := indexByPkgName(base)
	nextBy := indexByPkgName(next)

	keys := make([]string, 0, len(baseBy))
	for k := range baseBy {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Printf("%-55s %14s %14s %9s %16s\n", "benchmark", "base ns/op", "new ns/op", "delta", "allocs/op")
	failed := false
	seenHot := map[string]bool{}
	for _, k := range keys {
		b := baseBy[k]
		n := b.Name
		nw, ok := nextBy[k]
		marker := ""
		if hotSet[n] {
			marker = " [hot]"
			seenHot[n] = true
		}
		if !ok {
			fmt.Printf("%-55s %14.0f %14s %9s %16s%s\n", n, b.NsPerOp, "missing", "-", "-", marker)
			if hotSet[n] {
				fmt.Printf("FAIL: hot benchmark %s missing from %s\n", n, fs.Arg(1))
				failed = true
			}
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (nw.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		fmt.Printf("%-55s %14.0f %14.0f %+8.1f%% %16s%s\n",
			n, b.NsPerOp, nw.NsPerOp, delta*100, allocsCell(b, nw), marker)
		// The ns/op gate only applies above the noise floor: one-shot
		// timings of sub-millisecond benchmarks swing tens of percent on
		// timer noise alone, so a microsecond-scale hot benchmark is held
		// to its allocation pin below, not its wall clock.
		if hotSet[n] && delta > *threshold && b.NsPerOp >= *floor {
			fmt.Printf("FAIL: hot benchmark %s regressed %.1f%% (> %.0f%% threshold)\n",
				n, delta*100, *threshold*100)
			failed = true
		}
		// Allocation gate: a hot benchmark pinned at 0 allocs/op must stay
		// there — the warm-path zero-alloc contract is exact, not
		// thresholded. Nonzero counts are reported in the table but not
		// gated: allocation totals legitimately trade against wall-clock
		// (which the ns/op gate above holds), while 0 → anything means a
		// steady-state path started allocating.
		if ba, na, both := allocsOf(b, nw); hotSet[n] && both && ba == 0 && na > 0 {
			fmt.Printf("FAIL: hot benchmark %s was 0 allocs/op, now %.0f\n", n, na)
			failed = true
		}
	}
	// Benchmarks present only in the new file (added since the baseline):
	// reported so the table reflects full coverage, never ns/op-gated —
	// there is nothing to regress from. A hot benchmark may appear here
	// exactly once, on the PR that introduces it together with its first
	// baseline; the next rotation starts gating it.
	newKeys := make([]string, 0)
	for k := range nextBy {
		if _, ok := baseBy[k]; !ok {
			newKeys = append(newKeys, k)
		}
	}
	sort.Strings(newKeys)
	for _, k := range newKeys {
		nw := nextBy[k]
		marker := ""
		if hotSet[nw.Name] {
			marker = " [hot]"
			seenHot[nw.Name] = true
		}
		fmt.Printf("%-55s %14s %14.0f %9s %16s%s\n", nw.Name, "(new)", nw.NsPerOp, "-", allocsCell(Result{}, nw), marker)
	}

	for n := range hotSet {
		if !seenHot[n] {
			fmt.Printf("FAIL: hot benchmark %s not present in %s or %s\n", n, fs.Arg(0), fs.Arg(1))
			failed = true
		}
	}
	if failed {
		return 1
	}
	fmt.Println("benchjson compare: no hot-benchmark regressions")
	return 0
}

// allocsOf extracts the allocs/op metric from both sides of a comparison
// row; both is true only when the two files recorded it (bench-json runs
// with -benchmem, but older baselines or hand-captured files may not).
func allocsOf(b, nw Result) (ba, na float64, both bool) {
	ba, bok := b.Metrics["allocs/op"]
	na, nok := nw.Metrics["allocs/op"]
	return ba, na, bok && nok
}

// allocsCell renders the allocs/op table column as `base→new`, with `-`
// standing in for a side that did not record the metric.
func allocsCell(b, nw Result) string {
	cell := func(r Result) string {
		if v, ok := r.Metrics["allocs/op"]; ok {
			return strconv.FormatFloat(v, 'f', -1, 64)
		}
		return "-"
	}
	return cell(b) + "→" + cell(nw)
}

// indexByPkgName keys results by package plus benchmark name (with
// sub-benchmark path, without the -N procs suffix, which capture already
// stripped): same-named benchmarks in different packages must not collide,
// or the gate could pair a baseline from one package with a measurement
// from another. Hot-gate matching stays on the bare name — if a hot name
// ever appears in two packages, both rows are gated.
func indexByPkgName(d *Document) map[string]Result {
	by := make(map[string]Result, len(d.Results))
	for _, r := range d.Results {
		by[r.Pkg+" "+r.Name] = r
	}
	return by
}

func loadDoc(path string) (*Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Document
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}
