// Command mdcheck is the repository's markdown link checker: it walks
// every *.md file (skipping .git and vendor-ish directories), extracts
// inline links and images, and fails — listing every offender — when a
// relative link points at a file that does not exist. External links
// (http, https, mailto) are out of scope: CI must not depend on the
// network, and the docs' local cross-references (README → ARCHITECTURE →
// DESIGN → EXPERIMENTS) are what rot silently.
//
// Usage:
//
//	mdcheck [root]   # default root "."
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links/images: [text](target) / ![alt](target).
// Reference-style definitions ("[x]: target") are rare here and external.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "node_modules" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if isExternal(target) {
				continue
			}
			// Strip a #fragment; a bare "#section" link targets its own file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: broken link %q (resolved %s)\n", path, m[1], resolved)
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdcheck:", err)
		os.Exit(2)
	}
	if broken > 0 {
		fmt.Printf("mdcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Println("mdcheck: all markdown links resolve")
}

func isExternal(target string) bool {
	for _, p := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, p) {
			return true
		}
	}
	return false
}
