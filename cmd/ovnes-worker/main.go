// Command ovnes-worker hosts admission shard solvers for a cluster
// coordinator (ovnes -cluster-listen, or loadgen -cluster). It is
// stateless by design: the coordinator owns every decision, the WAL and
// all tenant state; the worker receives each domain's config once over
// the wire, keeps a warm solver session per domain, and answers round
// dispatches with decisions that are bit-identical to an in-process
// solve. Kill one at any moment — the coordinator re-dispatches whatever
// was in flight to a surviving worker and the decision trace does not
// change.
//
// Usage:
//
//	ovnes-worker -connect 127.0.0.1:9090[,127.0.0.1:9091] [-id worker-1] \
//	             [-heartbeat 1s] [-log-level info]
//
// -connect takes a comma-separated address list: the worker keeps one
// dial/redial loop per address, so in a replicated deployment (ovnes
// leader + -standby) it reaches whichever coordinator is alive without
// reconfiguration. All connections share one fencing-epoch gate — once
// any coordinator presents a newer leader epoch, dispatches from older
// epochs are rejected with a fenced reply, no matter which connection
// they arrive on.
//
// The worker redials with backoff until a coordinator appears and
// reconnects after a coordinator restart, so start order is free.
// SIGINT/SIGTERM exit cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obslog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ovnes-worker: ")

	var (
		connect   = flag.String("connect", "127.0.0.1:9090", "comma-separated coordinator cluster addresses (ovnes -cluster-listen); one redial loop per address")
		id        = flag.String("id", "", "worker ID for membership and placement (default: host:pid)")
		heartbeat = flag.Duration("heartbeat", time.Second, "heartbeat interval; must be well below the coordinator's timeout")
		logLevel  = flag.String("log-level", "info", "structured log level: debug | info | warn | error | off")
	)
	flag.Parse()

	lvl, err := obslog.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	olog := obslog.New(os.Stderr, lvl).Str("service", "ovnes-worker")

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	var addrs []string
	for _, a := range strings.Split(*connect, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("-connect needs at least one coordinator address")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	olog.Info().Str("worker", *id).Str("coordinators", strings.Join(addrs, ",")).Msg("starting")

	// One fencing gate across every connection: a welcome from the current
	// leader raises it, and any dispatch below it — typically from a
	// deposed leader still running on the other address — is rejected.
	gate := &cluster.EpochGate{}
	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			dialLoop(ctx, addr, *id, *heartbeat, gate, olog)
		}(addr)
	}
	wg.Wait()
	log.Print("bye")
}

// dialLoop serves one coordinator address: dial (with backoff), serve
// until the connection or the coordinator dies, repeat.
func dialLoop(ctx context.Context, connect, id string, heartbeat time.Duration, gate *cluster.EpochGate, olog obslog.Logger) {
	// The solver host is rebuilt per connection on purpose — a fresh
	// coordinator re-assigns domains anyway, and a stale warm cache can
	// never outlive its assignment that way.
	backoff := 250 * time.Millisecond
	for ctx.Err() == nil {
		conn, err := net.DialTimeout("tcp", connect, 5*time.Second)
		if err != nil {
			olog.Debug().Str("worker", id).Str("coordinator", connect).Err(err).Dur("retry-in", backoff).Msg("coordinator not reachable")
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
			continue
		}
		backoff = 250 * time.Millisecond
		err = cluster.RunWorker(ctx, conn, cluster.WorkerOptions{
			ID:             id,
			Log:            olog,
			HeartbeatEvery: heartbeat,
			Gate:           gate,
		})
		conn.Close()
		switch {
		case ctx.Err() != nil:
			return
		case err != nil && !errors.Is(err, context.Canceled):
			olog.Warn().Str("worker", id).Str("coordinator", connect).Err(err).Msg("connection to coordinator lost; redialing")
		default:
			olog.Info().Str("worker", id).Str("coordinator", connect).Msg("coordinator closed the connection; redialing")
		}
	}
}
