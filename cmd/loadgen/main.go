// Command loadgen drives the online admission engine at load-generator
// scale: it expands a scenario archetype's arrival process (Poisson,
// bursty, flash-crowd, batch) into per-epoch request streams for D
// independent operator domains, submits them concurrently, runs one
// admission round per (domain, epoch), and reports end-to-end throughput
// plus the engine's metrics snapshot.
//
// Usage:
//
//	loadgen [-scenario flash-crowd] [-seed 42] [-domains 8] [-shards 0]
//	        [-epochs 0] [-tenants 0] [-algo ""] [-queue 1024] [-tenant-cap 0]
//	        [-reoffer] [-mode drift] [-trace demand.json]
//	        [-cluster 127.0.0.1:9090] [-cluster-workers 2]
//	        [-lease /tmp/LEASE] [-lease-ttl 3s]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -cluster turns loadgen into a cluster coordinator: it listens on the
// given TCP address, waits for -cluster-workers ovnes-worker processes,
// and dispatches every round solve to them (internal/cluster). The
// printed tables are bit-identical to the in-process run — the cluster
// determinism pin — so diffing the two outputs is a live end-to-end check.
//
// -trace replays a recorded demand file (JSON/CSV, see internal/traffic)
// as every class's load shape, so the closed/static modes can be driven by
// real measured traffic instead of the archetype's synthetic shapes.
//
// -cpuprofile/-memprofile capture pprof profiles of the run (the solver
// dominates); see EXPERIMENTS.md "Profiling the solver" for the workflow.
//
// -mode selects the forecast feed:
//
//	drift   deterministic synthetic (λ̂, σ̂) oscillation — the warm-rebind
//	        stress mode loadgen has always run (no measured traffic);
//	closed  the full closed loop (internal/reopt): each domain draws the
//	        scenario's actual per-BS traffic into a monitoring store, the
//	        controller feeds forecasters, rescales reservations online and
//	        settles realized yield, reported per domain;
//	static  the closed-loop machinery with forecast-driven reoptimization
//	        disabled: the overbooking-free baseline to compare `closed`
//	        against (same traffic, same seeds — the yield delta is the
//	        paper's headline number, measured live).
//
// -shards 0 means one shard per CPU. Identical (scenario, seed, domains,
// mode) invocations make identical decisions at any shard count — the
// engine's determinism contract — so loadgen doubles as a quick
// cross-machine consistency check: compare the printed per-domain admit
// counts (and, in closed/static modes, the realized yield).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/profiling"
	"repro/internal/reopt"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/traffic"
	"repro/internal/yield"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		name      = flag.String("scenario", "flash-crowd", "archetype driving the arrival process (see `scenario list`)")
		seed      = flag.Int64("seed", 42, "base seed; domain d uses seed+d")
		domains   = flag.Int("domains", 8, "independent operator domains (each with its own warm session)")
		shards    = flag.Int("shards", 0, "solver workers (0 = one per CPU)")
		epochs    = flag.Int("epochs", 0, "override the archetype's epoch count")
		tenants   = flag.Int("tenants", 0, "override the archetype's tenant count per domain")
		algo      = flag.String("algo", "", "override the solver: direct | benders | kac | no-overbooking")
		queue     = flag.Int("queue", 1024, "bounded intake depth (requests)")
		tenantCap = flag.Int("tenant-cap", 0, "per-tenant fairness cap (0 = queue depth)")
		reoffer   = flag.Bool("reoffer", false, "re-offer rejected requests every epoch")
		mode      = flag.String("mode", "drift", "forecast feed: drift | closed | static")
		trace     = flag.String("trace", "", "replay a recorded demand file (JSON/CSV) as every class's load")

		clAddr    = flag.String("cluster", "", "listen on this TCP address for ovnes-worker processes and dispatch round solves to them (empty = solve in-process)")
		clWorkers = flag.Int("cluster-workers", 1, "with -cluster: wait for this many workers before driving load")
		leaseFile = flag.String("lease", "", "leader lease file: acquire it (bumping the fencing epoch) before dispatching, renew while running, release on exit (empty = no lease)")
		leaseTTL  = flag.Duration("lease-ttl", 3*time.Second, "lease validity; renewed at a third of this")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()
	switch *mode {
	case "drift", "closed", "static":
	default:
		log.Fatalf("unknown -mode %q (want drift, closed or static)", *mode)
	}

	spec, err := scenario.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	if *epochs > 0 {
		spec.Epochs = *epochs
	}
	if *tenants > 0 {
		spec.Tenants = *tenants
	}
	if *algo != "" {
		spec.Algorithm = *algo
	}
	if *trace != "" {
		data, err := os.ReadFile(*trace)
		if err != nil {
			log.Fatal(err)
		}
		tf, err := traffic.DecodeTrace(data)
		if err != nil {
			log.Fatal(err)
		}
		spec = scenario.WithTrace(spec, tf)
	}
	if *shards <= 0 {
		*shards = runtime.NumCPU()
	}
	// An archetype that declares its own deployment width (the metro
	// archetype's pod count) sets the domain fan-out unless -domains was
	// given explicitly.
	domainsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "domains" {
			domainsSet = true
		}
	})
	if !domainsSet && spec.Domains > 0 {
		*domains = spec.Domains
	}

	// Optional leader lease: loadgen-as-coordinator participates in the
	// same fencing protocol as ovnes. The acquisition's epoch rides on
	// every dispatch, a background renewal keeps the lease live for the
	// whole run, and losing it is fatal (a fenced coordinator must stop).
	var leaseEpoch uint64
	if *leaseFile != "" {
		host, err := os.Hostname()
		if err != nil {
			host = "loadgen"
		}
		lease, err := cluster.Acquire(cluster.LeaseConfig{
			Path:   *leaseFile,
			Holder: fmt.Sprintf("%s:%d", host, os.Getpid()),
			TTL:    *leaseTTL,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer lease.Release() //nolint:errcheck // best effort on exit
		leaseEpoch = lease.Epoch()
		log.Printf("leader lease %s acquired, fencing epoch %d", *leaseFile, leaseEpoch)
		renewDone := make(chan struct{})
		defer close(renewDone)
		go func() {
			tick := time.NewTicker(*leaseTTL / 3)
			defer tick.Stop()
			for {
				select {
				case <-renewDone:
					return
				case <-tick.C:
					if err := lease.Renew(); err != nil {
						log.Fatalf("leader lease: %v", err)
					}
				}
			}
		}()
	}

	// Distributed mode: a cluster coordinator accepts worker processes and
	// becomes every domain's Executor. Decisions are bit-identical to the
	// in-process run — that is the engine's cross-network determinism pin —
	// so -cluster changes throughput topology, never the printed tables.
	var exec admission.Executor
	if *clAddr != "" {
		coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
			Log:   obslog.New(os.Stderr, obslog.InfoLevel).Str("service", "loadgen"),
			Epoch: leaseEpoch,
		})
		defer coord.Close()
		addr, err := coord.Listen(*clAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster coordinator on tcp://%s, waiting for %d worker(s) (ovnes-worker -connect %s)",
			addr, *clWorkers, addr)
		exec = coord
	}

	eng := admission.New(admission.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		TenantCap:  *tenantCap,
	})
	// Each domain is the same archetype under its own seed: same workload
	// family, decorrelated arrivals — D operators living on one engine.
	cfgs := make([]sim.Config, *domains)
	for d := 0; d < *domains; d++ {
		cfg, err := spec.Compile(*seed + int64(d))
		if err != nil {
			log.Fatal(err)
		}
		cfgs[d] = cfg
		dc := admission.DomainConfig{
			Net:       cfg.Net,
			KPaths:    cfg.KPaths,
			Algorithm: spec.Algorithm,
			Executor:  exec,
		}
		if coord, ok := exec.(*cluster.Coordinator); ok {
			if err := coord.RegisterDomain(domName(d), dc); err != nil {
				log.Fatal(err)
			}
		}
		if err := eng.AddDomain(domName(d), dc); err != nil {
			log.Fatal(err)
		}
	}
	if coord, ok := exec.(*cluster.Coordinator); ok && *clWorkers > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if err := coord.WaitMembers(ctx, *clWorkers); err != nil {
			log.Fatal(err)
		}
		cancel()
		log.Printf("cluster ready: workers=%v", coord.Members())
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}

	nEpochs := cfgs[0].Epochs
	log.Printf("scenario=%s domains=%d shards=%d epochs=%d tenants/domain=%d algo=%s",
		spec.Name, *domains, *shards, nEpochs, len(cfgs[0].Slices), spec.Algorithm)

	stats := make([]domStats, *domains)
	yields := make([]yield.Summary, *domains)
	start := time.Now()
	var wg sync.WaitGroup
	for d := 0; d < *domains; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			if *mode == "drift" {
				driveDomain(eng, domName(d), cfgs[d], *reoffer, &stats[d])
				return
			}
			yields[d] = driveDomainClosed(eng, domName(d), cfgs[d], *reoffer, *mode == "static", &stats[d])
		}(d)
	}
	wg.Wait()
	if err := eng.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	eng.Stop()

	m := eng.Metrics()
	if *mode == "drift" {
		fmt.Println("domain\tadmitted\trejected\tshed")
		for d := 0; d < *domains; d++ {
			fmt.Printf("%s\t%d\t%d\t%d\n", domName(d), stats[d].admitted, stats[d].rejected, stats[d].shed)
		}
	} else {
		fmt.Println("domain\tadmitted\trejected\tshed\trealized\treward\tpenalty\tviol_prob\trescaled")
		var tot yield.Summary
		for d := 0; d < *domains; d++ {
			y := yields[d]
			fmt.Printf("%s\t%d\t%d\t%d\t%.4g\t%.4g\t%.4g\t%.3g\t%d\n",
				domName(d), stats[d].admitted, stats[d].rejected, stats[d].shed,
				y.Realized, y.Reward, y.Penalty, y.ViolationProb, stats[d].rescaled)
			tot.Realized += y.Realized
			tot.Reward += y.Reward
			tot.Penalty += y.Penalty
		}
		fmt.Printf("# mode=%s total realized=%.6g (reward=%.6g penalty=%.6g) across %d domains\n",
			*mode, tot.Realized, tot.Reward, tot.Penalty, *domains)
	}
	decided := m.Admitted + m.Rejected + m.FastRejected // shed requests were never decided
	fmt.Printf("# decided %d requests in %v → %.0f req/s (admitted=%d rejected=%d fast_rejected=%d shed=%d)\n",
		decided, elapsed.Round(time.Millisecond),
		float64(decided)/elapsed.Seconds(),
		m.Admitted, m.Rejected, m.FastRejected, m.Shed)
	fmt.Printf("# rounds=%d mean_batch=%.2f latency_p50=%v latency_p99=%v\n",
		m.Rounds, m.MeanBatch, m.LatencyP50.Round(time.Microsecond), m.LatencyP99.Round(time.Microsecond))
}

func domName(d int) string { return fmt.Sprintf("op%d", d) }

// domStats is one domain's request accounting.
type domStats struct {
	admitted, rejected, shed, rescaled int
}

// driveDomainClosed replays one domain's arrival stream through the full
// closed loop: the scenario's actual traffic is drawn into a per-domain
// monitoring store, and a reopt.Controller settles yield, feeds the
// forecasters and rescales reservations each epoch (static=true freezes
// the forecasts — same rounds, no rescaling — for the baseline run).
// Returns the domain's realized-yield account.
func driveDomainClosed(eng *admission.Engine, dom string, cfg sim.Config, reoffer, static bool, st *domStats) yield.Summary {
	if cfg.SamplesPerEpoch == 0 {
		cfg.SamplesPerEpoch = 12 // loadgen plays the data plane, so the sim default is applied here
	}
	store := monitor.NewStore(0)
	reoptEvery := 1
	if static {
		reoptEvery = -1
	}
	ctrl, err := reopt.New(reopt.Config{
		Engine: eng, Domain: dom, Store: store,
		HWPeriod: cfg.HWPeriod, ReoptEvery: reoptEvery,
	})
	if err != nil {
		log.Fatal(err)
	}

	specOf := map[string]sim.SliceSpec{}
	for _, sp := range cfg.Slices {
		specOf[sp.Name] = sp
	}
	gens := map[string][]traffic.Generator{}
	var inflight []pendingReq
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		inflight = submitAll(eng, epochOffers(dom, cfg, epoch), st, inflight)

		rep, err := ctrl.Step()
		if err != nil {
			log.Fatal(err)
		}
		st.rescaled += rep.Rescaled

		// Admitted slices start generating traffic from their own seeds.
		inflight = harvest(eng, inflight, reoffer, st, func(name string) {
			sp := specOf[name]
			gs := make([]traffic.Generator, cfg.Net.NumBS())
			for b := range gs {
				gs[b] = sim.NewGenerator(cfg, sp, b)
			}
			gens[name] = gs
		})

		// Play the data plane: this epoch's measured traffic, per BS. A
		// slice expiring with this epoch still served it (the controller's
		// in-force snapshot keeps it on the books until the next settle),
		// so its generators are torn down only after the traffic played.
		for name, gs := range gens {
			for b, g := range gs {
				for theta := 0; theta < cfg.SamplesPerEpoch; theta++ {
					store.Add(monitor.Sample{
						Slice: name, Metric: monitor.LoadMetric, Element: monitor.BSElement(b),
						Epoch: epoch, Theta: theta, Value: g.Sample(epoch, theta),
					})
				}
			}
		}
		for _, name := range rep.Expired {
			delete(gens, name)
		}
	}
	drainInflight(inflight, st)
	return ctrl.Ledger().Snapshot()
}

// pendingReq is one offered request and its in-flight decision ticket.
type pendingReq struct {
	req admission.Request
	tk  *admission.Ticket
}

// epochOffers builds the epoch's arrival requests for one domain from the
// compiled scenario.
func epochOffers(dom string, cfg sim.Config, epoch int) []admission.Request {
	var offers []admission.Request
	for _, sp := range cfg.Slices {
		if sp.ArrivalEpoch != epoch {
			continue
		}
		sla := slice.SLA{Template: sp.Template, MeanMbps: sp.MeanMbps, Duration: sp.Duration}.
			WithPenaltyFactor(sp.PenaltyFactor)
		offers = append(offers, admission.Request{Domain: dom, Name: sp.Name, SLA: sla})
	}
	return offers
}

// submitAll offers the batch concurrently; shed requests (intake errors)
// are counted, accepted ones join the in-flight set.
func submitAll(eng *admission.Engine, offers []admission.Request, st *domStats, inflight []pendingReq) []pendingReq {
	tks := make([]*admission.Ticket, len(offers))
	var wg sync.WaitGroup
	for i := range offers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := eng.Submit(offers[i])
			if err != nil {
				return // shed (tks[i] stays nil, counted below)
			}
			tks[i] = tk
		}(i)
	}
	wg.Wait()
	for i := range offers {
		if tks[i] == nil {
			st.shed++
			continue
		}
		inflight = append(inflight, pendingReq{req: offers[i], tk: tks[i]})
	}
	return inflight
}

// harvest scans the in-flight set after a round: admissions are counted
// (and handed to onAdmit), rejections re-offered or counted, undecided
// tickets carried to the next epoch.
func harvest(eng *admission.Engine, inflight []pendingReq, reoffer bool, st *domStats, onAdmit func(name string)) []pendingReq {
	var still []pendingReq
	for _, p := range inflight {
		out, ok := p.tk.Outcome()
		if !ok {
			still = append(still, p) // decided by a later round
			continue
		}
		switch {
		case out.Admitted:
			st.admitted++
			if onAdmit != nil {
				onAdmit(p.req.Name)
			}
		case reoffer:
			if tk, err := eng.Submit(p.req); err == nil {
				still = append(still, pendingReq{req: p.req, tk: tk})
			} else {
				st.shed++
			}
		default:
			st.rejected++
		}
	}
	return still
}

// drainInflight books the end-of-run outcomes of whatever is still queued.
func drainInflight(inflight []pendingReq, st *domStats) {
	for _, p := range inflight {
		if out, ok := p.tk.Outcome(); ok && out.Admitted {
			st.admitted++
		} else {
			st.rejected++
		}
	}
}

// driveDomain replays one domain's compiled arrival stream in drift mode:
// per epoch it submits the epoch's arrivals concurrently, drifts committed
// forecasts deterministically, runs the round, optionally re-offers
// rejections, and advances lifecycles.
func driveDomain(eng *admission.Engine, dom string, cfg sim.Config, reoffer bool, st *domStats) {
	var inflight []pendingReq
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		inflight = submitAll(eng, epochOffers(dom, cfg, epoch), st, inflight)

		names, err := eng.Committed(dom)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			lh, sg := drift(n, epoch)
			if err := eng.UpdateForecast(dom, n, lh, sg); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := eng.DecideRound(dom); err != nil {
			log.Fatal(err)
		}
		inflight = harvest(eng, inflight, reoffer, st, nil)
		if _, err := eng.Advance(dom); err != nil {
			log.Fatal(err)
		}
	}
	drainInflight(inflight, st)
}

// drift is the deterministic forecast stand-in (loadgen has no measured
// traffic): λ̂ oscillates in [0.25Λ, 0.45Λ] with small σ̂, so steady rounds
// exercise the warm rebind path exactly like a live forecaster would.
func drift(name string, epoch int) (lambdaHat, sigma float64) {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	phase := float64(h%97) + 0.7*float64(epoch)
	lam := 25.0 // scaled per SLA by the solver's clamp
	return lam * (0.25 + 0.2*(math.Sin(phase)+1)/2), 0.08 + 0.04*(math.Cos(phase)+1)/2
}
