// Command loadgen drives the online admission engine at load-generator
// scale: it expands a scenario archetype's arrival process (Poisson,
// bursty, flash-crowd, batch) into per-epoch request streams for D
// independent operator domains, submits them concurrently, runs one
// admission round per (domain, epoch) with deterministic forecast drift,
// and reports end-to-end throughput plus the engine's metrics snapshot.
//
// Usage:
//
//	loadgen [-scenario flash-crowd] [-seed 42] [-domains 8] [-shards 0]
//	        [-epochs 0] [-tenants 0] [-algo ""] [-queue 1024] [-tenant-cap 0]
//	        [-reoffer]
//
// -shards 0 means one shard per CPU. Identical (scenario, seed, domains)
// invocations make identical decisions at any shard count — the engine's
// determinism contract — so loadgen doubles as a quick cross-machine
// consistency check: compare the printed per-domain admit counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slice"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		name      = flag.String("scenario", "flash-crowd", "archetype driving the arrival process (see `scenario list`)")
		seed      = flag.Int64("seed", 42, "base seed; domain d uses seed+d")
		domains   = flag.Int("domains", 8, "independent operator domains (each with its own warm session)")
		shards    = flag.Int("shards", 0, "solver workers (0 = one per CPU)")
		epochs    = flag.Int("epochs", 0, "override the archetype's epoch count")
		tenants   = flag.Int("tenants", 0, "override the archetype's tenant count per domain")
		algo      = flag.String("algo", "", "override the solver: direct | benders | kac | no-overbooking")
		queue     = flag.Int("queue", 1024, "bounded intake depth (requests)")
		tenantCap = flag.Int("tenant-cap", 0, "per-tenant fairness cap (0 = queue depth)")
		reoffer   = flag.Bool("reoffer", false, "re-offer rejected requests every epoch")
	)
	flag.Parse()

	spec, err := scenario.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	if *epochs > 0 {
		spec.Epochs = *epochs
	}
	if *tenants > 0 {
		spec.Tenants = *tenants
	}
	if *algo != "" {
		spec.Algorithm = *algo
	}
	if *shards <= 0 {
		*shards = runtime.NumCPU()
	}

	eng := admission.New(admission.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		TenantCap:  *tenantCap,
	})
	// Each domain is the same archetype under its own seed: same workload
	// family, decorrelated arrivals — D operators living on one engine.
	cfgs := make([]sim.Config, *domains)
	for d := 0; d < *domains; d++ {
		cfg, err := spec.Compile(*seed + int64(d))
		if err != nil {
			log.Fatal(err)
		}
		cfgs[d] = cfg
		if err := eng.AddDomain(domName(d), admission.DomainConfig{
			Net:       cfg.Net,
			KPaths:    cfg.KPaths,
			Algorithm: spec.Algorithm,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}

	nEpochs := cfgs[0].Epochs
	log.Printf("scenario=%s domains=%d shards=%d epochs=%d tenants/domain=%d algo=%s",
		spec.Name, *domains, *shards, nEpochs, len(cfgs[0].Slices), spec.Algorithm)

	type domStats struct {
		admitted, rejected, shed int
	}
	stats := make([]domStats, *domains)
	start := time.Now()
	var wg sync.WaitGroup
	for d := 0; d < *domains; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			driveDomain(eng, domName(d), cfgs[d], *reoffer, &stats[d].admitted, &stats[d].rejected, &stats[d].shed)
		}(d)
	}
	wg.Wait()
	if err := eng.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	eng.Stop()

	m := eng.Metrics()
	fmt.Println("domain\tadmitted\trejected\tshed")
	for d := 0; d < *domains; d++ {
		fmt.Printf("%s\t%d\t%d\t%d\n", domName(d), stats[d].admitted, stats[d].rejected, stats[d].shed)
	}
	decided := m.Admitted + m.Rejected + m.FastRejected // shed requests were never decided
	fmt.Printf("# decided %d requests in %v → %.0f req/s (admitted=%d rejected=%d fast_rejected=%d shed=%d)\n",
		decided, elapsed.Round(time.Millisecond),
		float64(decided)/elapsed.Seconds(),
		m.Admitted, m.Rejected, m.FastRejected, m.Shed)
	fmt.Printf("# rounds=%d mean_batch=%.2f latency_p50=%v latency_p99=%v\n",
		m.Rounds, m.MeanBatch, m.LatencyP50.Round(time.Microsecond), m.LatencyP99.Round(time.Microsecond))
}

func domName(d int) string { return fmt.Sprintf("op%d", d) }

// driveDomain replays one domain's compiled arrival stream: per epoch it
// submits the epoch's arrivals concurrently, drifts committed forecasts
// deterministically, runs the round, optionally re-offers rejections, and
// advances lifecycles.
func driveDomain(eng *admission.Engine, dom string, cfg sim.Config, reoffer bool, admitted, rejected, shed *int) {
	type pendingReq struct {
		req admission.Request
		tk  *admission.Ticket
	}
	var inflight []pendingReq
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var offers []admission.Request
		for _, sp := range cfg.Slices {
			if sp.ArrivalEpoch != epoch {
				continue
			}
			sla := slice.SLA{Template: sp.Template, MeanMbps: sp.MeanMbps, Duration: sp.Duration}.
				WithPenaltyFactor(sp.PenaltyFactor)
			offers = append(offers, admission.Request{Domain: dom, Name: sp.Name, SLA: sla})
		}
		tks := make([]*admission.Ticket, len(offers))
		var wg sync.WaitGroup
		for i := range offers {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tk, err := eng.Submit(offers[i])
				if err != nil {
					return // shed (counted below by tks[i] == nil)
				}
				tks[i] = tk
			}(i)
		}
		wg.Wait()
		for i := range offers {
			if tks[i] == nil {
				*shed++
				continue
			}
			inflight = append(inflight, pendingReq{req: offers[i], tk: tks[i]})
		}

		names, err := eng.Committed(dom)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			lh, sg := drift(n, epoch)
			if err := eng.UpdateForecast(dom, n, lh, sg); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := eng.DecideRound(dom); err != nil {
			log.Fatal(err)
		}

		var still []pendingReq
		for _, p := range inflight {
			out, ok := p.tk.Outcome()
			if !ok {
				still = append(still, p) // decided by a later round
				continue
			}
			if out.Admitted {
				*admitted++
			} else if reoffer {
				tk, err := eng.Submit(p.req)
				if err == nil {
					still = append(still, pendingReq{req: p.req, tk: tk})
				} else {
					*shed++
				}
			} else {
				*rejected++
			}
		}
		inflight = still
		if _, err := eng.Advance(dom); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range inflight {
		if out, ok := p.tk.Outcome(); ok && out.Admitted {
			*admitted++
		} else {
			*rejected++
		}
	}
}

// drift is the deterministic forecast stand-in (loadgen has no measured
// traffic): λ̂ oscillates in [0.25Λ, 0.45Λ] with small σ̂, so steady rounds
// exercise the warm rebind path exactly like a live forecaster would.
func drift(name string, epoch int) (lambdaHat, sigma float64) {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	phase := float64(h%97) + 0.7*float64(epoch)
	lam := 25.0 // scaled per SLA by the solver's clamp
	return lam * (0.25 + 0.2*(math.Sin(phase)+1)/2), 0.08 + 0.04*(math.Cos(phase)+1)/2
}
