// Command ovnes runs the full hierarchical control plane of Fig. 2 as real
// network services on localhost: the three domain controllers (RAN,
// transport, cloud) fronting an emulated data plane, the UDP monitoring
// collector, and the E2E orchestrator on top. Pair it with cmd/slicemgr
// for the tenant-facing web API.
//
// Usage:
//
//	ovnes [-listen 127.0.0.1:8080] [-collector 127.0.0.1:6343] \
//	      [-topology testbed|romanian|swiss|italian] [-nbs 4] [-algo direct]
//
// Endpoints (orchestrator): POST /requests, POST /epoch, GET /slices,
// GET /epoch. The controllers listen on consecutive ports after -listen.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/monitor"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ovnes: ")

	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "orchestrator address; controllers bind the next three ports")
		collector = flag.String("collector", "127.0.0.1:6343", "UDP monitoring collector address")
		topoName  = flag.String("topology", "testbed", "testbed | romanian | swiss | italian")
		nbs       = flag.Int("nbs", 4, "BS count for operator topologies (0 = full size)")
		algo      = flag.String("algo", "direct", "direct | benders | kac | no-overbooking")
	)
	flag.Parse()

	net_, err := buildTopo(*topoName, *nbs)
	if err != nil {
		log.Fatal(err)
	}
	dp := dataplane.NewEmulator(net_)
	store := monitor.NewStore(0)

	col, err := monitor.NewCollector(*collector, store)
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()
	log.Printf("monitoring collector on udp://%s", col.Addr())

	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatal(err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatal(err)
	}
	addrOf := func(off int) string { return net.JoinHostPort(host, strconv.Itoa(port+off)) }

	serve := func(addr, name string, h http.Handler) {
		go func() {
			log.Printf("%s on http://%s", name, addr)
			if err := http.ListenAndServe(addr, h); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}()
	}
	serve(addrOf(1), "RAN controller", ctrlplane.NewRANController(dp).Handler())
	serve(addrOf(2), "transport controller", ctrlplane.NewTransportController(dp).Handler())
	serve(addrOf(3), "cloud controller", ctrlplane.NewCloudController(dp).Handler())

	orch, err := ctrlplane.NewOrchestrator(ctrlplane.OrchestratorConfig{
		Net:           net_,
		Algorithm:     *algo,
		Store:         store,
		RANAddr:       "http://" + addrOf(1),
		TransportAddr: "http://" + addrOf(2),
		CloudAddr:     "http://" + addrOf(3),
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("E2E orchestrator (%s, %s) on http://%s", net_.Name, *algo, *listen)
	log.Fatal(http.ListenAndServe(*listen, orch.Handler()))
}

func buildTopo(name string, nbs int) (*topology.Network, error) {
	switch name {
	case "testbed":
		return topology.Testbed(), nil
	case "romanian":
		return topology.Romanian(nbs), nil
	case "swiss":
		return topology.Swiss(nbs), nil
	case "italian":
		return topology.Italian(nbs), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
