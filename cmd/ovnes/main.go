// Command ovnes runs the full hierarchical control plane of Fig. 2 as real
// network services on localhost: the three domain controllers (RAN,
// transport, cloud) fronting an emulated data plane, the UDP monitoring
// collector, and the E2E orchestrator on top. Pair it with cmd/slicemgr
// for the tenant-facing web API.
//
// Usage:
//
//	ovnes [-listen 127.0.0.1:8080] [-collector 127.0.0.1:6343] \
//	      [-topology testbed|romanian|swiss|italian] [-nbs 4] [-algo direct] \
//	      [-shards 1] [-queue 1024] [-epoch-every 0] \
//	      [-data-dir ovnes-data] [-snapshot-every 16] \
//	      [-cluster-listen 127.0.0.1:9090] [-log-level info]
//
// Endpoints (orchestrator): POST /requests, POST /epoch, GET /slices,
// GET /epoch, GET /metrics, GET /yield. The controllers listen on
// consecutive ports after -listen. With -epoch-every > 0 the closed loop
// (internal/reopt) runs one epoch per period on its own — monitoring
// feeds forecasts, reservations rescale, realized yield settles — and
// POST /epoch just inserts extra epochs.
//
// With -data-dir, every decision round's inputs are logged to a durable
// WAL and the control-plane state snapshots periodically (internal/wal):
// kill the process at any point, restart it with the same -data-dir, and
// it recovers the exact pre-kill decision state and yield account before
// serving. A clean shutdown writes a final snapshot, making the next
// start replay-free.
//
// With -cluster-listen, ovnes becomes a cluster coordinator: ovnes-worker
// processes connect to that TCP address and each epoch's round solve is
// dispatched to the worker a deterministic rendezvous placement picks.
// Decisions are bit-identical to single-process mode — a worker killed
// mid-round is detected, its in-flight round re-dispatched, and its load
// rebalanced onto the survivors without losing or reordering a decision.
//
// SIGINT/SIGTERM shut the stack down gracefully: listeners stop accepting,
// in-flight HTTP requests finish, the admission engine drains its queue,
// and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ovnes: ")

	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "orchestrator address; controllers bind the next three ports")
		collector  = flag.String("collector", "127.0.0.1:6343", "UDP monitoring collector address")
		topoName   = flag.String("topology", "testbed", "testbed | romanian | swiss | italian")
		nbs        = flag.Int("nbs", 4, "BS count for operator topologies (0 = full size)")
		algo       = flag.String("algo", "direct", "direct | benders | kac | no-overbooking")
		shards     = flag.Int("shards", 1, "admission engine solver workers")
		queue      = flag.Int("queue", 1024, "admission engine intake depth")
		epochEvery = flag.Duration("epoch-every", 0, "run the closed loop on this wall-clock period (0 = epochs only via POST /epoch)")
		dataDir    = flag.String("data-dir", "", "durable WAL + snapshot directory; decisions survive a kill and replay on restart (empty = no durability)")
		snapEvery  = flag.Int("snapshot-every", 16, "snapshot cadence in epochs (with -data-dir)")
		clListen   = flag.String("cluster-listen", "", "accept ovnes-worker connections on this TCP address and dispatch round solves to them (empty = solve in-process)")
		logLevel   = flag.String("log-level", "info", "structured log level: debug | info | warn | error | off")
	)
	flag.Parse()

	lvl, err := obslog.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	olog := obslog.New(os.Stderr, lvl).Str("service", "ovnes")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	net_, err := buildTopo(*topoName, *nbs)
	if err != nil {
		log.Fatal(err)
	}

	// Optional distributed mode: a cluster coordinator accepts worker
	// processes and becomes the engine's Executor. Decision state, the
	// WAL and every endpoint stay exactly as in single-process mode.
	var exec admission.Executor
	if *clListen != "" {
		coord := cluster.NewCoordinator(cluster.CoordinatorOptions{Log: olog})
		defer coord.Close()
		if err := coord.RegisterDomain("", admission.DomainConfig{Net: net_, Algorithm: *algo}); err != nil {
			log.Fatal(err)
		}
		addr, err := coord.Listen(*clListen)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster coordinator on tcp://%s (ovnes-worker -connect %s)", addr, addr)
		exec = coord
	}
	dp := dataplane.NewEmulator(net_)
	store := monitor.NewStore(0)

	col, err := monitor.NewCollector(*collector, store)
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()
	log.Printf("monitoring collector on udp://%s", col.Addr())

	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatal(err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatal(err)
	}
	addrOf := func(off int) string { return net.JoinHostPort(host, strconv.Itoa(port+off)) }

	// Every service is an http.Server so shutdown can drain it; a fatal
	// listener error anywhere tears the whole stack down via errc.
	var servers []*http.Server
	errc := make(chan error, 8)
	serve := func(addr, name string, h http.Handler) {
		srv := &http.Server{Addr: addr, Handler: h}
		servers = append(servers, srv)
		go func() {
			log.Printf("%s on http://%s", name, addr)
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("%s: %w", name, err)
			}
		}()
	}
	serve(addrOf(1), "RAN controller", ctrlplane.NewRANController(dp).Handler())
	serve(addrOf(2), "transport controller", ctrlplane.NewTransportController(dp).Handler())
	serve(addrOf(3), "cloud controller", ctrlplane.NewCloudController(dp).Handler())

	orch, err := ctrlplane.NewOrchestrator(ctrlplane.OrchestratorConfig{
		Net:           net_,
		Algorithm:     *algo,
		Shards:        *shards,
		QueueDepth:    *queue,
		Store:         store,
		RANAddr:       "http://" + addrOf(1),
		TransportAddr: "http://" + addrOf(2),
		CloudAddr:     "http://" + addrOf(3),
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
		Executor:      exec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if rep := orch.Recovery(); rep != nil {
		log.Printf("durable state in %s: snapshot at LSN %d, %d records replayed (%d rounds), %d uncommitted tail records dropped",
			*dataDir, rep.SnapshotLSN, rep.Applied, rep.Rounds, rep.HeldBack)
	}
	serve(*listen, fmt.Sprintf("E2E orchestrator (%s, %s)", net_.Name, *algo), orch.Handler())
	if *epochEvery > 0 {
		log.Printf("closed loop: one epoch every %v", *epochEvery)
		go func() {
			if err := orch.RunLoop(ctx, *epochEvery); err != nil {
				errc <- fmt.Errorf("closed loop: %w", err)
			}
		}()
	}

	fatal := false
	select {
	case <-ctx.Done():
		log.Print("signal received, shutting down")
	case err := <-errc:
		// A dead listener is a failure even though we still drain: the
		// exit status must tell the supervisor to restart us.
		fatal = true
		log.Print(err)
	}

	// Drain order matters: stop accepting HTTP first (in-flight admissions
	// finish), then drain the admission engine, then release the collector.
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, srv := range servers {
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	if err := orch.Close(); err != nil {
		log.Printf("admission engine drain: %v", err)
	}
	if fatal {
		col.Close()
		log.Fatal("exiting after listener failure")
	}
	log.Print("bye")
}

func buildTopo(name string, nbs int) (*topology.Network, error) {
	switch name {
	case "testbed":
		return topology.Testbed(), nil
	case "romanian":
		return topology.Romanian(nbs), nil
	case "swiss":
		return topology.Swiss(nbs), nil
	case "italian":
		return topology.Italian(nbs), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
