// Command ovnes runs the full hierarchical control plane of Fig. 2 as real
// network services on localhost: the three domain controllers (RAN,
// transport, cloud) fronting an emulated data plane, the UDP monitoring
// collector, and the E2E orchestrator on top. Pair it with cmd/slicemgr
// for the tenant-facing web API.
//
// Usage:
//
//	ovnes [-listen 127.0.0.1:8080] [-collector 127.0.0.1:6343] \
//	      [-topology testbed|romanian|swiss|italian] [-nbs 4] [-algo direct] \
//	      [-shards 1] [-queue 1024] [-epoch-every 0] \
//	      [-data-dir ovnes-data] [-snapshot-every 16] \
//	      [-cluster-listen 127.0.0.1:9090] \
//	      [-lease ovnes-data/LEASE] [-lease-ttl 3s] [-lease-renew-every 0] \
//	      [-standby] [-log-level info]
//
// Endpoints (orchestrator): POST /requests, POST /epoch, GET /slices,
// GET /epoch, GET /metrics, GET /yield. The controllers listen on
// consecutive ports after -listen. With -epoch-every > 0 the closed loop
// (internal/reopt) runs one epoch per period on its own — monitoring
// feeds forecasts, reservations rescale, realized yield settles — and
// POST /epoch just inserts extra epochs.
//
// With -data-dir, every decision round's inputs are logged to a durable
// WAL and the control-plane state snapshots periodically (internal/wal):
// kill the process at any point, restart it with the same -data-dir, and
// it recovers the exact pre-kill decision state and yield account before
// serving. A clean shutdown writes a final snapshot, making the next
// start replay-free.
//
// With -cluster-listen, ovnes becomes a cluster coordinator: ovnes-worker
// processes connect to that TCP address and each epoch's round solve is
// dispatched to the worker a deterministic rendezvous placement picks.
// Decisions are bit-identical to single-process mode — a worker killed
// mid-round is detected, its in-flight round re-dispatched, and its load
// rebalanced onto the survivors without losing or reordering a decision.
//
// With -lease, ovnes takes a leader lease (internal/cluster) before
// serving: the acquisition bumps a fencing epoch that is stamped on every
// worker dispatch and checked by the WAL before every write, so a deposed
// leader that keeps running is rejected by workers and cannot touch the
// log. The lease is renewed every -lease-renew-every (default TTL/3);
// losing it is fatal by design — exactly one ovnes dispatches at a time.
//
// With -standby (requires -data-dir and -lease), ovnes is a warm replica:
// it tails the leader's WAL, continuously replaying every committed
// decision through the same code paths crash recovery uses, while waiting
// for the leader's lease to lapse. When it does, the standby takes the
// lease, finishes replay (truncating the dead leader's uncommitted
// residue), and starts serving — with a decision state bit-identical to
// the leader's, under the next fencing epoch. Point workers at both
// addresses (ovnes-worker -connect addrA,addrB) and failover needs no
// reconfiguration.
//
// SIGINT/SIGTERM shut the stack down gracefully: listeners stop accepting,
// in-flight HTTP requests finish, the admission engine drains its queue,
// and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ovnes: ")

	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "orchestrator address; controllers bind the next three ports")
		collector  = flag.String("collector", "127.0.0.1:6343", "UDP monitoring collector address")
		topoName   = flag.String("topology", "testbed", "testbed | romanian | swiss | italian")
		nbs        = flag.Int("nbs", 4, "BS count for operator topologies (0 = full size)")
		algo       = flag.String("algo", "direct", "direct | benders | kac | no-overbooking")
		shards     = flag.Int("shards", 1, "admission engine solver workers")
		queue      = flag.Int("queue", 1024, "admission engine intake depth")
		epochEvery = flag.Duration("epoch-every", 0, "run the closed loop on this wall-clock period (0 = epochs only via POST /epoch)")
		dataDir    = flag.String("data-dir", "", "durable WAL + snapshot directory; decisions survive a kill and replay on restart (empty = no durability)")
		snapEvery  = flag.Int("snapshot-every", 16, "snapshot cadence in epochs (with -data-dir)")
		clListen   = flag.String("cluster-listen", "", "accept ovnes-worker connections on this TCP address and dispatch round solves to them (empty = solve in-process)")
		leasePath  = flag.String("lease", "", "leader lease file (conventionally <data-dir>/LEASE); acquire it before serving, fence dispatches and WAL writes with its epoch (empty = no lease)")
		leaseTTL   = flag.Duration("lease-ttl", 3*time.Second, "lease validity; a standby takes over this long after the leader stops renewing")
		leaseRenew = flag.Duration("lease-renew-every", 0, "lease renewal cadence (0 = TTL/3)")
		standby    = flag.Bool("standby", false, "run as a warm replica: tail the leader's WAL in -data-dir, take over when its -lease lapses")
		logLevel   = flag.String("log-level", "info", "structured log level: debug | info | warn | error | off")
	)
	flag.Parse()

	lvl, err := obslog.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	olog := obslog.New(os.Stderr, lvl).Str("service", "ovnes")

	if *standby {
		if *dataDir == "" || *leasePath == "" {
			log.Fatal("-standby needs -data-dir (the leader's WAL directory) and -lease (the leader's lease file)")
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	net_, err := buildTopo(*topoName, *nbs)
	if err != nil {
		log.Fatal(err)
	}

	holder := leaseHolder()
	leaseCfg := cluster.LeaseConfig{Path: *leasePath, Holder: holder, TTL: *leaseTTL}

	dp := dataplane.NewEmulator(net_)
	store := monitor.NewStore(0)

	col, err := monitor.NewCollector(*collector, store)
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()
	log.Printf("monitoring collector on udp://%s", col.Addr())

	host, portStr, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatal(err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatal(err)
	}
	addrOf := func(off int) string { return net.JoinHostPort(host, strconv.Itoa(port+off)) }

	// Every service is an http.Server so shutdown can drain it; a fatal
	// listener error anywhere tears the whole stack down via errc.
	var servers []*http.Server
	errc := make(chan error, 8)
	serve := func(addr, name string, h http.Handler) {
		srv := &http.Server{Addr: addr, Handler: h}
		servers = append(servers, srv)
		go func() {
			log.Printf("%s on http://%s", name, addr)
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("%s: %w", name, err)
			}
		}()
	}
	// The domain controllers are stateless; a standby binds them right
	// away so the southbound is ready the instant it is promoted.
	serve(addrOf(1), "RAN controller", ctrlplane.NewRANController(dp).Handler())
	serve(addrOf(2), "transport controller", ctrlplane.NewTransportController(dp).Handler())
	serve(addrOf(3), "cloud controller", ctrlplane.NewCloudController(dp).Handler())

	orchCfg := ctrlplane.OrchestratorConfig{
		Net:           net_,
		Algorithm:     *algo,
		Shards:        *shards,
		QueueDepth:    *queue,
		Store:         store,
		RANAddr:       "http://" + addrOf(1),
		TransportAddr: "http://" + addrOf(2),
		CloudAddr:     "http://" + addrOf(3),
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
	}

	// A cluster coordinator is built only once the lease epoch is known:
	// every welcome/assign/round it sends carries that epoch, so workers
	// can fence out dispatches from a deposed predecessor.
	newCoord := func(epoch uint64) (*cluster.Coordinator, error) {
		coord := cluster.NewCoordinator(cluster.CoordinatorOptions{Log: olog, Epoch: epoch})
		if err := coord.RegisterDomain("", admission.DomainConfig{Net: net_, Algorithm: *algo}); err != nil {
			coord.Close()
			return nil, err
		}
		addr, err := coord.Listen(*clListen)
		if err != nil {
			coord.Close()
			return nil, err
		}
		log.Printf("cluster coordinator on tcp://%s (ovnes-worker -connect %s)", addr, addr)
		return coord, nil
	}

	var (
		orch  *ctrlplane.Orchestrator
		lease *cluster.Lease
		coord *cluster.Coordinator
	)
	if *standby {
		sb, err := ctrlplane.NewStandby(orchCfg)
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			// Tail until promoted (returns nil) or the replica diverged
			// from the log (permanent; die so a supervisor rebuilds us).
			if err := sb.Run(ctx, 0); err != nil {
				errc <- err
			}
		}()
		olog.Info().Str("holder", holder).Str("data-dir", *dataDir).Msg("standby: tailing the leader's WAL, waiting for its lease to lapse")
		lease, err = cluster.WaitAcquire(ctx, leaseCfg, 0)
		if err != nil {
			sb.Close()
			if ctx.Err() != nil {
				log.Print("signal received while standing by, bye")
				return
			}
			log.Fatal(err)
		}
		lsn, rounds := sb.Progress()
		olog.Info().Str("holder", holder).Uint64("lease-epoch", lease.Epoch()).
			Uint64("replayed-lsn", lsn).Int("replayed-rounds", rounds).
			Int("snapshot-rebootstraps", sb.Rebuilds()).Msg("took leadership")
		var exec admission.Executor
		if *clListen != "" {
			if coord, err = newCoord(lease.Epoch()); err != nil {
				log.Fatal(err)
			}
			exec = coord
		}
		if orch, err = sb.Promote(exec, lease.Check); err != nil {
			log.Fatal(err)
		}
	} else {
		if *leasePath != "" {
			log.Printf("acquiring leader lease %s (holder %s)", *leasePath, holder)
			lease, err = cluster.WaitAcquire(ctx, leaseCfg, 0)
			if err != nil {
				if ctx.Err() != nil {
					log.Print("signal received while waiting for the lease, bye")
					return
				}
				log.Fatal(err)
			}
			olog.Info().Str("holder", holder).Uint64("lease-epoch", lease.Epoch()).Msg("took leadership")
			orchCfg.WALFence = lease.Check
		}
		var epoch uint64
		if lease != nil {
			epoch = lease.Epoch()
		}
		if *clListen != "" {
			if coord, err = newCoord(epoch); err != nil {
				log.Fatal(err)
			}
			orchCfg.Executor = coord
		}
		if orch, err = ctrlplane.NewOrchestrator(orchCfg); err != nil {
			log.Fatal(err)
		}
	}
	if coord != nil {
		defer coord.Close()
	}
	if rep := orch.Recovery(); rep != nil {
		log.Printf("durable state in %s: snapshot at LSN %d, %d records replayed (%d rounds), %d uncommitted tail records dropped",
			*dataDir, rep.SnapshotLSN, rep.Applied, rep.Rounds, rep.HeldBack)
	}
	if lease != nil {
		renew := *leaseRenew
		if renew <= 0 {
			renew = leaseCfg.TTL / 3
		}
		go func() {
			tick := time.NewTicker(renew)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := lease.Renew(); err != nil {
						// Fatal by design: a leader that cannot renew must
						// stop dispatching before a successor's TTL elapses.
						errc <- fmt.Errorf("leader lease: %w", err)
						return
					}
				}
			}
		}()
	}
	serve(*listen, fmt.Sprintf("E2E orchestrator (%s, %s)", net_.Name, *algo), orch.Handler())
	if *epochEvery > 0 {
		log.Printf("closed loop: one epoch every %v", *epochEvery)
		go func() {
			if err := orch.RunLoop(ctx, *epochEvery); err != nil {
				errc <- fmt.Errorf("closed loop: %w", err)
			}
		}()
	}

	fatal := false
	select {
	case <-ctx.Done():
		log.Print("signal received, shutting down")
	case err := <-errc:
		// A dead listener is a failure even though we still drain: the
		// exit status must tell the supervisor to restart us.
		fatal = true
		log.Print(err)
	}

	// Drain order matters: stop accepting HTTP first (in-flight admissions
	// finish), then drain the admission engine, then release the collector.
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, srv := range servers {
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	if err := orch.Close(); err != nil {
		log.Printf("admission engine drain: %v", err)
	}
	if lease != nil {
		if err := lease.Release(); err != nil {
			log.Printf("lease release: %v", err)
		}
	}
	if fatal {
		col.Close()
		log.Fatal("exiting after failure")
	}
	log.Print("bye")
}

// leaseHolder identifies this process in the lease file.
func leaseHolder() string {
	host, err := os.Hostname()
	if err != nil {
		host = "ovnes"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

func buildTopo(name string, nbs int) (*topology.Network, error) {
	switch name {
	case "testbed":
		return topology.Testbed(), nil
	case "romanian":
		return topology.Romanian(nbs), nil
	case "swiss":
		return topology.Swiss(nbs), nil
	case "italian":
		return topology.Italian(nbs), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
