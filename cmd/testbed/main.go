// Command testbed regenerates the paper's §5 proof-of-concept experiment
// (Fig. 8): nine heterogeneous slice requests arriving every two epochs on
// the emulated 2-BS / 2-CU testbed, run once with overbooking ("our
// approach") and once with the no-overbooking baseline.
//
// Usage:
//
//	testbed [-epochs 18] [-algo direct] [-seed 7]
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("testbed: ")

	var (
		epochs   = flag.Int("epochs", 18, "decision epochs (hours of the emulated day)")
		algoName = flag.String("algo", "direct", "overbooking solver: direct | benders | kac")
		seed     = flag.Int64("seed", 7, "traffic RNG seed")
	)
	flag.Parse()

	var algo sim.Algorithm
	switch *algoName {
	case "direct":
		algo = sim.Direct
	case "benders":
		algo = sim.Benders
	case "kac":
		algo = sim.KAC
	default:
		log.Fatalf("unknown algorithm %q", *algoName)
	}

	ours, err := experiments.Fig8(experiments.Fig8Config{Algorithm: algo, Epochs: *epochs, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := experiments.Fig8(experiments.Fig8Config{Algorithm: sim.NoOverbooking, Epochs: *epochs, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintFig8(os.Stdout, ours, baseline)
}
