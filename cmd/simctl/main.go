// Command simctl regenerates the paper's simulation artifacts (Table 1,
// Fig. 4, Fig. 5, Fig. 6 and the ablations) from the command line.
//
// Usage:
//
//	simctl -experiment fig5 [-nbs 4] [-tenants 10] [-epochs 16] [-algo direct]
//	simctl -experiment fig4 -full        # full 198/197/200-BS topologies
//	simctl -experiment all               # every artifact back to back
//	simctl -experiment fig5 -cpuprofile cpu.out -memprofile mem.out
//
// -cpuprofile/-memprofile capture pprof profiles of the run (the solver
// dominates); see EXPERIMENTS.md "Profiling the solver" for the workflow.
//
// Output is tab-separated, one block per figure panel, suitable for
// gnuplot or a spreadsheet. EXPERIMENTS.md lists the measured runtime of
// every invocation; the exact solver on the default fig5/fig6 grids runs
// ~15 min on one core — pass -algo kac for the ~2-min heuristic pass.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simctl: ")

	var (
		experiment = flag.String("experiment", "all", "table1 | fig4 | fig5 | fig6 | sla | scaling | forecast | all")
		nbs        = flag.Int("nbs", 4, "BS count for scaled operator topologies")
		tenants    = flag.Int("tenants", 8, "slice requests per scenario")
		epochs     = flag.Int("epochs", 16, "decision epochs per run")
		algoName   = flag.String("algo", "direct", "overbooking solver: direct | benders | kac")
		full       = flag.Bool("full", false, "use the full published topology sizes (fig4; fig5/fig6 switch to the KAC solver)")
		seed       = flag.Int64("seed", 42, "base RNG seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	algo, err := parseAlgo(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	scale := *nbs
	if *full {
		scale = 0 // generators interpret 0 as the published size
		if algo == sim.Direct || algo == sim.Benders {
			// The exact solvers are not tractable at 198 BSs — the paper
			// itself reports hours of CPLEX time there; use the heuristic.
			algo = sim.KAC
			log.Print("full-scale run: switching solver to KAC")
		}
	}

	run := func(name string) {
		switch name {
		case "table1":
			experiments.PrintTable1(os.Stdout)
		case "fig4":
			experiments.PrintFig4(os.Stdout, experiments.Fig4(scale, 8, 21))
		case "fig5":
			pts, err := experiments.Fig5(experiments.Fig5Config{
				NBS: scale, Tenants: *tenants, Epochs: *epochs,
				Algorithm: algo, Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintFig5(os.Stdout, pts)
		case "fig6":
			pts, err := experiments.Fig6(experiments.Fig6Config{
				NBS: scale, Tenants: *tenants, Epochs: *epochs,
				Algorithm: algo, Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintFig6(os.Stdout, pts)
		case "sla":
			rows, err := experiments.SLAViolationStudy(*nbs, *tenants, 2**epochs, *seed)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintSLAStudy(os.Stdout, rows)
		case "scaling":
			rows, err := experiments.SolverScaling(nil, *seed)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintSolverScaling(os.Stdout, rows)
		case "forecast":
			experiments.PrintForecastAblation(os.Stdout, experiments.ForecastAblation(24, 20, 5, *seed))
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "fig4", "fig5", "fig6", "sla", "scaling", "forecast"} {
			fmt.Println()
			run(name)
		}
		return
	}
	run(*experiment)
}

func parseAlgo(s string) (sim.Algorithm, error) {
	switch s {
	case "direct":
		return sim.Direct, nil
	case "benders":
		return sim.Benders, nil
	case "kac":
		return sim.KAC, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want direct, benders or kac)", s)
}
