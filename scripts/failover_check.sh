#!/usr/bin/env bash
# Failover gate: a replicated coordinator pair must survive a leader
# SIGKILL with a bit-identical decision record, and a deposed leader that
# keeps running must be fenced by the workers. Two phases, real OS
# processes throughout:
#
#   1. Replication: a leader (WAL + lease + cluster coordinator) serves the
#      first epochs while a standby ovnes tails its log; the leader is
#      SIGKILLed between epochs, the standby takes the lapsed lease,
#      promotes, and serves the rest. /yield and /slices must match a plain
#      single-process run of the same drive byte for byte, and the standby
#      must have logged the takeover with the full pre-kill round count
#      replayed.
#   2. Fencing: two leaders share a lease file; the first never renews
#      (-lease-renew-every 1h), so the second takes over under the next
#      epoch while the first keeps running. The deposed leader's next round
#      dispatch must be rejected by the workers ("fencing: rejected round
#      dispatch"), must fail its epoch POST, and must never fall back to a
#      local solve.
set -euo pipefail
cd "$(dirname "$0")/.."

WK=/tmp/failover-check-worker
OV=/tmp/failover-check-ovnes
go build -o "$WK" ./cmd/ovnes-worker
go build -o "$OV" ./cmd/ovnes

PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_http() { # $1 = port: wait until the orchestrator endpoint serves
  for i in $(seq 1 120); do
    curl -fsS "127.0.0.1:$1/epoch" > /dev/null 2>&1 && return 0
    sleep 0.25
  done
  echo "failover-check: 127.0.0.1:$1 never started serving"; return 1
}

wait_log() { # $1 = file, $2 = pattern, $3 = label
  for i in $(seq 1 120); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.25
  done
  echo "failover-check: $3 (pattern '$2' never appeared in $1)"; return 1
}

register() { # $1 = port: the two long-lived tenants both runs admit
  curl -fsS -X POST "127.0.0.1:$1/requests" -d \
    '{"name":"u1","request":{"name":"u1","type":"uRLLC","duration_epochs":10}}' > /dev/null
  curl -fsS -X POST "127.0.0.1:$1/requests" -d \
    '{"name":"u2","request":{"name":"u2","type":"eMBB","duration_epochs":10}}' > /dev/null
}

epochs() { # $1 = port, $2 = count
  for e in $(seq 1 "$2"); do curl -fsS -X POST "127.0.0.1:$1/epoch" > /dev/null; done
}

echo "failover-check: phase 1 — leader SIGKILL, standby takeover, byte-identical record"
DATA=/tmp/failover-check-data
rm -rf "$DATA"; mkdir -p "$DATA"

"$OV" -listen 127.0.0.1:18490 -collector 127.0.0.1:16453 -algo benders \
  -data-dir "$DATA" -snapshot-every 2 \
  -lease "$DATA/LEASE" -lease-ttl 2s \
  -cluster-listen 127.0.0.1:19591 -log-level info 2>/tmp/failover-check-leader.err &
LEADER=$!
PIDS+=("$LEADER")
# The standby must not start until the leader holds the lease, or it would
# win the empty-lease race itself and serve from epoch 0.
wait_log /tmp/failover-check-leader.err 'msg="took leadership"' "leader never took the lease"

"$OV" -listen 127.0.0.1:18494 -collector 127.0.0.1:16454 -algo benders \
  -data-dir "$DATA" -snapshot-every 2 \
  -lease "$DATA/LEASE" -lease-ttl 2s -standby \
  -cluster-listen 127.0.0.1:19592 -log-level info 2>/tmp/failover-check-standby.err &
STANDBY=$!
PIDS+=("$STANDBY")

# One worker pool follows both control-plane addresses: failover needs no
# worker reconfiguration.
"$WK" -connect 127.0.0.1:19591,127.0.0.1:19592 -id fw1 -log-level info 2>/tmp/failover-check-w1.err &
PIDS+=("$!")
"$WK" -connect 127.0.0.1:19591,127.0.0.1:19592 -id fw2 -log-level info 2>/tmp/failover-check-w2.err &
PIDS+=("$!")

wait_http 18490
wait_log /tmp/failover-check-leader.err 'worker joined' "workers never joined the leader"
register 18490
epochs 18490 3
echo "failover-check: SIGKILL leader pid $LEADER after epoch 3"
kill -9 "$LEADER"
wait "$LEADER" 2>/dev/null || true

# The lease lapses, the standby takes it, finishes replay and serves.
wait_http 18494
wait_log /tmp/failover-check-standby.err 'msg="took leadership"' "standby never took leadership"
# The standby's state must come from the leader's log: either it tailed
# all 3 pre-kill rounds live, or the leader's snapshot+compaction outran
# the poll loop and the replica re-bootstrapped from the snapshot (which
# itself encodes those rounds) — the byte-identical diffs below hold
# either way. Silent partial replay is the failure this guards against.
grep -q 'replayed-rounds=3' /tmp/failover-check-standby.err \
  || grep -Eq 'snapshot-rebootstraps=[1-9]' /tmp/failover-check-standby.err \
  || { echo "failover-check: standby neither replayed all 3 pre-kill rounds nor re-bootstrapped from a snapshot:"; \
       grep 'took leadership' /tmp/failover-check-standby.err; exit 1; }
epochs 18494 3
curl -fsS 127.0.0.1:18494/yield  > /tmp/failover-check-yield-failover.json
curl -fsS 127.0.0.1:18494/slices > /tmp/failover-check-slices-failover.json
kill -TERM "$STANDBY"; wait "$STANDBY" 2>/dev/null || true

# Reference: the identical drive, one process, no WAL/lease/cluster.
"$OV" -listen 127.0.0.1:18498 -collector 127.0.0.1:16455 -algo benders 2>/dev/null &
REF=$!
PIDS+=("$REF")
wait_http 18498
register 18498
epochs 18498 6
curl -fsS 127.0.0.1:18498/yield  > /tmp/failover-check-yield-ref.json
curl -fsS 127.0.0.1:18498/slices > /tmp/failover-check-slices-ref.json
kill -TERM "$REF"; wait "$REF" 2>/dev/null || true

diff /tmp/failover-check-yield-ref.json  /tmp/failover-check-yield-failover.json
diff /tmp/failover-check-slices-ref.json /tmp/failover-check-slices-failover.json
echo "failover-check: yield ledger and slice states identical across the failover"

echo "failover-check: phase 2 — deposed leader fenced by the workers"
FDIR=/tmp/failover-check-fence
rm -rf "$FDIR"; mkdir -p "$FDIR"

# L1 holds the lease but never renews it (and has no WAL, so its first
# fencing encounter is on the wire, at the workers).
"$OV" -listen 127.0.0.1:18590 -collector 127.0.0.1:16553 -algo benders \
  -lease "$FDIR/LEASE" -lease-ttl 2s -lease-renew-every 1h \
  -cluster-listen 127.0.0.1:19691 -log-level info 2>/tmp/failover-check-l1.err &
L1=$!
PIDS+=("$L1")

"$WK" -connect 127.0.0.1:19691,127.0.0.1:19692 -id fw3 -log-level info 2>/tmp/failover-check-w3.err &
PIDS+=("$!")
"$WK" -connect 127.0.0.1:19691,127.0.0.1:19692 -id fw4 -log-level info 2>/tmp/failover-check-w4.err &
PIDS+=("$!")

wait_http 18590
wait_log /tmp/failover-check-l1.err 'worker joined' "workers never joined the first leader"
register 18590
epochs 18590 1   # sanity: dispatches fine under its own epoch

# L2 waits on the same lease; L1's TTL lapses unrenewed and L2 takes over
# under the next fencing epoch.
"$OV" -listen 127.0.0.1:18594 -collector 127.0.0.1:16554 -algo benders \
  -lease "$FDIR/LEASE" -lease-ttl 2s \
  -cluster-listen 127.0.0.1:19692 -log-level info 2>/tmp/failover-check-l2.err &
L2=$!
PIDS+=("$L2")
wait_log /tmp/failover-check-l2.err 'msg="took leadership"' "second leader never took the lapsed lease"
wait_log /tmp/failover-check-w3.err 'epoch=2.*joined coordinator' "worker fw3 never saw the new leader"
wait_log /tmp/failover-check-w4.err 'epoch=2.*joined coordinator' "worker fw4 never saw the new leader"

# The deposed leader's next dispatch must be rejected, not served and not
# solved locally.
if curl -fsS -X POST 127.0.0.1:18590/epoch > /tmp/failover-check-stale.out 2>&1; then
  echo "failover-check: deposed leader still decided an epoch:"; cat /tmp/failover-check-stale.out; exit 1
fi
grep -q 'fencing: rejected round dispatch from stale leader epoch' \
  /tmp/failover-check-w3.err /tmp/failover-check-w4.err \
  || { echo "failover-check: no worker logged the fencing rejection"; exit 1; }
grep -q 'coordinator fenced' /tmp/failover-check-l1.err \
  || { echo "failover-check: deposed leader never marked itself fenced"; exit 1; }
echo "failover-check: deposed leader fenced by the workers"

rm -f /tmp/failover-check-*.err /tmp/failover-check-*.json /tmp/failover-check-stale.out "$WK" "$OV"
rm -rf "$DATA" "$FDIR"
echo "failover-check: OK"
