#!/usr/bin/env bash
# Quickstart smoke: executes the commands README.md documents (CI-fast
# variants where the documented command also offers a longer mode). A
# stale flag, a renamed archetype, or a broken REST endpoint fails CI
# here instead of failing the first reader who copies a command.
set -euo pipefail
cd "$(dirname "$0")/.."

run() { echo "smoke: $*"; "$@" > /dev/null; }

run go run ./cmd/simctl -experiment table1
run go run ./cmd/simctl -experiment fig4
run go run ./cmd/simctl -experiment fig4 -full
run go run ./cmd/simctl -experiment scaling
run go run ./cmd/simctl -experiment forecast
run go run ./cmd/testbed
# The archetype catalog is pinned byte-for-byte: adding or rewording an
# archetype is deliberate, and refreshes the golden with:
#   go run ./cmd/scenario list > scripts/golden/scenario_list.golden
echo "smoke: scenario list golden"
go run ./cmd/scenario list > /tmp/scenario_list_smoke.out
diff -u scripts/golden/scenario_list.golden /tmp/scenario_list_smoke.out
rm -f /tmp/scenario_list_smoke.out
run go run ./cmd/scenario run -name flash-crowd -seed 7
run go run ./cmd/scenario run -name outage -tenants 4 -epochs 10 -seed 1
run go run ./cmd/scenario run -name trace-replay -tenants 4 -epochs 10 -seed 1
# The -trace flag end to end: a recorded CSV drives the same archetype.
printf '# demand trace\n10\n12\n15\n12\n' > /tmp/smoke-trace.csv
run go run ./cmd/scenario run -name homogeneous -tenants 4 -epochs 10 -seed 1 -trace /tmp/smoke-trace.csv
rm -f /tmp/smoke-trace.csv
# Seeds 42.. cross the distress seed the Benders fallback regression
# guards (see internal/scenario/distress_test.go). The sweep output is also
# pinned byte-for-byte against a golden file: solver refactors (the sparse
# LU engine, pricing changes) may change pivot paths but must not move the
# decisions or the printed revenue. Refresh intentionally with:
#   go run ./cmd/scenario sweep -name sla-mix -seeds 2 > scripts/golden/scenario_sweep_sla-mix.golden
echo "smoke: scenario sweep golden"
go run ./cmd/scenario sweep -name sla-mix -seeds 2 > /tmp/scenario_sweep_smoke.out
diff -u scripts/golden/scenario_sweep_sla-mix.golden /tmp/scenario_sweep_smoke.out
rm -f /tmp/scenario_sweep_smoke.out
run go run ./cmd/loadgen -scenario heavy-tail -domains 2 -tenants 4 -epochs 8
run go run ./cmd/loadgen -scenario diurnal-drift -domains 1 -tenants 4 -epochs 10 -mode closed -reoffer
run go run ./cmd/loadgen -scenario diurnal-drift -domains 1 -tenants 4 -epochs 10 -mode static -reoffer

# The ovnes REST walkthrough, including the closed loop and yield surface.
echo "smoke: ovnes REST walkthrough"
go build -o /tmp/ovnes-smoke ./cmd/ovnes
/tmp/ovnes-smoke -listen 127.0.0.1:18080 -collector 127.0.0.1:16343 -epoch-every 500ms &
OVNES=$!
trap 'kill "$OVNES" 2>/dev/null || true' EXIT
for i in $(seq 1 40); do
  curl -fsS 127.0.0.1:18080/epoch > /dev/null 2>&1 && break
  sleep 0.25
done
curl -fsS -X POST 127.0.0.1:18080/requests -d \
  '{"name":"u1","request":{"name":"u1","type":"uRLLC","duration_epochs":12}}' > /dev/null
curl -fsS -X POST 127.0.0.1:18080/epoch > /dev/null
sleep 1
curl -fsS 127.0.0.1:18080/slices > /dev/null
curl -fsS 127.0.0.1:18080/metrics | grep -q '"yield"'
curl -fsS 127.0.0.1:18080/yield > /dev/null
# Adversarial surface: inject a BS outage, run an epoch through the hole,
# recover, and read the applied event stream back.
curl -fsS -X POST 127.0.0.1:18080/topology -d '[{"epoch":0,"kind":0,"index":0,"factor":0}]' > /dev/null
curl -fsS -X POST 127.0.0.1:18080/epoch > /dev/null
curl -fsS -X POST 127.0.0.1:18080/topology -d '[{"epoch":0,"kind":0,"index":0,"factor":1}]' > /dev/null
curl -fsS 127.0.0.1:18080/topology | grep -q '"factor":1'
kill -TERM "$OVNES"
wait "$OVNES"
trap - EXIT

# The durability walkthrough: hard-kill ovnes mid-run and require the
# restarted process to serve the identical yield ledger out of the WAL.
# Driven by explicit POST /epoch (no -epoch-every) so the pre-kill and
# post-recovery ledgers are comparable byte for byte.
echo "smoke: ovnes kill/restart recovery"
DATA=/tmp/ovnes-smoke-data
rm -rf "$DATA"
start_durable() {
  /tmp/ovnes-smoke -listen 127.0.0.1:18084 -collector 127.0.0.1:16347 \
    -data-dir "$DATA" &
  OVNES=$!
  trap 'kill "$OVNES" 2>/dev/null || true' EXIT
  for i in $(seq 1 40); do
    curl -fsS 127.0.0.1:18084/epoch > /dev/null 2>&1 && break
    sleep 0.25
  done
}
start_durable
curl -fsS -X POST 127.0.0.1:18084/requests -d \
  '{"name":"u1","request":{"name":"u1","type":"eMBB","duration_epochs":12}}' > /dev/null
for i in 1 2 3; do curl -fsS -X POST 127.0.0.1:18084/epoch > /dev/null; done
curl -fsS 127.0.0.1:18084/yield > /tmp/ovnes-yield-before.json
kill -9 "$OVNES"
wait "$OVNES" 2>/dev/null || true
start_durable
curl -fsS 127.0.0.1:18084/yield > /tmp/ovnes-yield-after.json
diff -u /tmp/ovnes-yield-before.json /tmp/ovnes-yield-after.json
kill -TERM "$OVNES"
wait "$OVNES"
trap - EXIT
rm -rf "$DATA" /tmp/ovnes-yield-before.json /tmp/ovnes-yield-after.json
echo "smoke: quickstart OK"
