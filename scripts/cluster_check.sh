#!/usr/bin/env bash
# Cluster determinism gate: the distributed control plane must produce
# bit-identical decisions and yield to the single-process engine — even
# when a worker is SIGKILLed mid-run and its load rebalances onto the
# survivor. Two phases:
#
#   1. loadgen: a drift archetype across 4 domains, solved in-process vs
#      dispatched to 2 ovnes-worker processes; the printed decision
#      tables must match byte for byte (timing comment lines excluded).
#   2. ovnes: the REST stack in cluster mode, driven epoch by epoch with
#      one worker hard-killed between epochs; /yield and /slices must
#      match a plain single-process run of the same drive, and the
#      coordinator must have logged the rebalance.
set -euo pipefail
cd "$(dirname "$0")/.."

LG=/tmp/cluster-check-loadgen
WK=/tmp/cluster-check-worker
OV=/tmp/cluster-check-ovnes
go build -o "$LG" ./cmd/loadgen
go build -o "$WK" ./cmd/ovnes-worker
go build -o "$OV" ./cmd/ovnes

PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

strip_timing() { grep -v '^# decided \|^# rounds=' "$1"; }

echo "cluster-check: loadgen single-process vs 2 workers"
LGFLAGS=(-scenario diurnal-drift -domains 4 -tenants 4 -epochs 8 -shards 2 -reoffer)
"$LG" "${LGFLAGS[@]}" > /tmp/cluster-check-single.out 2>/dev/null
"$LG" "${LGFLAGS[@]}" -cluster 127.0.0.1:19090 -cluster-workers 2 \
  > /tmp/cluster-check-cluster.out 2>/tmp/cluster-check-lg.err &
LGPID=$!
PIDS+=("$LGPID")
"$WK" -connect 127.0.0.1:19090 -id lg-w1 -log-level warn 2>/dev/null &
PIDS+=("$!")
"$WK" -connect 127.0.0.1:19090 -id lg-w2 -log-level warn 2>/dev/null &
PIDS+=("$!")
wait "$LGPID"
diff <(strip_timing /tmp/cluster-check-single.out) <(strip_timing /tmp/cluster-check-cluster.out)
echo "cluster-check: loadgen tables identical"

echo "cluster-check: ovnes REST drive with a mid-run worker SIGKILL"
drive() { # $1 = orchestrator port; issues the identical epoch sequence,
          # calling hook "$2" between epoch 3 and epoch 4.
  local port=$1 hook=${2:-true}
  for i in $(seq 1 60); do
    curl -fsS "127.0.0.1:$port/epoch" > /dev/null 2>&1 && break
    sleep 0.25
  done
  curl -fsS -X POST "127.0.0.1:$port/requests" -d \
    '{"name":"u1","request":{"name":"u1","type":"uRLLC","duration_epochs":10}}' > /dev/null
  curl -fsS -X POST "127.0.0.1:$port/requests" -d \
    '{"name":"u2","request":{"name":"u2","type":"eMBB","duration_epochs":10}}' > /dev/null
  for e in 1 2 3; do curl -fsS -X POST "127.0.0.1:$port/epoch" > /dev/null; done
  $hook
  for e in 4 5 6; do curl -fsS -X POST "127.0.0.1:$port/epoch" > /dev/null; done
}

# Cluster run: coordinator + 2 workers, kill the worker that owns the
# default domain (the one that logged the assign) between epochs.
"$OV" -listen 127.0.0.1:18090 -collector 127.0.0.1:16353 -algo benders \
  -cluster-listen 127.0.0.1:19091 -log-level info 2>/tmp/cluster-check-ovnes.err &
OVPID=$!
PIDS+=("$OVPID")
"$WK" -connect 127.0.0.1:19091 -id cw1 -log-level info 2>/tmp/cluster-check-w1.err &
W1=$!
PIDS+=("$W1")
"$WK" -connect 127.0.0.1:19091 -id cw2 -log-level info 2>/tmp/cluster-check-w2.err &
W2=$!
PIDS+=("$W2")

# Both workers must be members before the drive starts, or the early
# rounds legitimately fall back to local solves and the kill exercises
# nothing.
for i in $(seq 1 60); do
  [ "$(grep -c 'worker joined' /tmp/cluster-check-ovnes.err 2>/dev/null)" -ge 2 ] && break
  sleep 0.25
done
[ "$(grep -c 'worker joined' /tmp/cluster-check-ovnes.err)" -ge 2 ] \
  || { echo "cluster-check: workers never joined the coordinator"; exit 1; }

kill_owner() {
  local victim=$W1
  if grep -q 'domain assigned' /tmp/cluster-check-w2.err 2>/dev/null; then victim=$W2; fi
  echo "cluster-check: SIGKILL worker pid $victim (owns the default domain)"
  kill -9 "$victim"
}
drive 18090 kill_owner
curl -fsS 127.0.0.1:18090/yield  > /tmp/cluster-check-yield-cluster.json
curl -fsS 127.0.0.1:18090/slices > /tmp/cluster-check-slices-cluster.json
grep -q 'rebalancing its domains' /tmp/cluster-check-ovnes.err \
  || { echo "cluster-check: coordinator never logged the rebalance"; exit 1; }
kill -TERM "$OVPID"; wait "$OVPID" 2>/dev/null || true
kill "$W1" "$W2" 2>/dev/null || true

# Reference run: the identical drive, no cluster anywhere.
"$OV" -listen 127.0.0.1:18094 -collector 127.0.0.1:16354 -algo benders 2>/dev/null &
OVPID=$!
PIDS+=("$OVPID")
drive 18094
curl -fsS 127.0.0.1:18094/yield  > /tmp/cluster-check-yield-single.json
curl -fsS 127.0.0.1:18094/slices > /tmp/cluster-check-slices-single.json
kill -TERM "$OVPID"; wait "$OVPID" 2>/dev/null || true

diff /tmp/cluster-check-yield-single.json  /tmp/cluster-check-yield-cluster.json
diff /tmp/cluster-check-slices-single.json /tmp/cluster-check-slices-cluster.json
echo "cluster-check: yield ledger and slice states identical across the kill"

rm -f /tmp/cluster-check-*.out /tmp/cluster-check-*.err /tmp/cluster-check-*.json \
  "$LG" "$WK" "$OV"
echo "cluster-check: OK"
