// Testbed day: the §5 proof-of-concept end to end, with every control
// plane component running as a real network service on localhost — slice
// manager, E2E orchestrator, three domain controllers, UDP monitoring
// collector — plus a live split-TCP rate-control middlebox carrying real
// bytes for one of the slices. Nine slice requests arrive over an emulated
// day exactly as in Fig. 8.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/dataplane"
	"repro/internal/middlebox"
	"repro/internal/monitor"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// serve starts an HTTP service on an ephemeral port and returns its URL.
func serve(h http.Handler) string {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(lis, h) //nolint:errcheck // demo server
	return "http://" + lis.Addr().String()
}

func post(url string, body interface{}) error {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: %s", url, resp.Status)
	}
	return nil
}

func main() {
	log.SetFlags(0)

	// Data plane, monitoring and the domain controllers.
	netw := topology.Testbed()
	dp := dataplane.NewEmulator(netw)
	store := monitor.NewStore(0)
	col, err := monitor.NewCollector("127.0.0.1:0", store)
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()

	ranURL := serve(ctrlplane.NewRANController(dp).Handler())
	tnURL := serve(ctrlplane.NewTransportController(dp).Handler())
	cloudURL := serve(ctrlplane.NewCloudController(dp).Handler())

	orch, err := ctrlplane.NewOrchestrator(ctrlplane.OrchestratorConfig{
		Net: netw, Algorithm: "direct", Store: store,
		RANAddr: ranURL, TransportAddr: tnURL, CloudAddr: cloudURL,
		HWPeriod: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	orchURL := serve(orch.Handler())
	mgrURL := serve(ctrlplane.NewSliceManager(orchURL).Handler())
	fmt.Printf("control plane up: slice manager %s → orchestrator %s\n\n", mgrURL, orchURL)

	// The paper's nine requests: 3 uRLLC, 3 mMTC, 3 eMBB, every 2 epochs.
	reqs := []ctrlplane.SliceRequest{
		{Name: "uRLLC1", Type: "uRLLC"}, {Name: "uRLLC2", Type: "uRLLC"}, {Name: "uRLLC3", Type: "uRLLC"},
		{Name: "mMTC1", Type: "mMTC"}, {Name: "mMTC2", Type: "mMTC"}, {Name: "mMTC3", Type: "mMTC"},
		{Name: "eMBB1", Type: "eMBB"}, {Name: "eMBB2", Type: "eMBB"}, {Name: "eMBB3", Type: "eMBB"},
	}
	gens := map[string]traffic.Generator{}
	for i := range reqs {
		reqs[i].DurationEpochs = 64
		reqs[i].PenaltyFactor = 1
		tmpl, _ := reqs[i].Template()
		gens[reqs[i].Name] = traffic.NewGaussian(tmpl.RateMbps/2, tmpl.RateMbps/20, 0, int64(i+1))
	}

	agent, err := monitor.NewAgent(col.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	const epochs = 18
	for epoch := 0; epoch < epochs; epoch++ {
		// A new request arrives every other hour.
		if epoch%2 == 0 && epoch/2 < len(reqs) {
			if err := post(mgrURL+"/requests", reqs[epoch/2]); err != nil {
				log.Fatal(err)
			}
		}
		// One decision round.
		resp, err := http.Post(orchURL+"/epoch", "application/json", nil)
		if err != nil {
			log.Fatal(err)
		}
		var rep ctrlplane.EpochReport
		json.NewDecoder(resp.Body).Decode(&rep) //nolint:errcheck // demo
		resp.Body.Close()

		// The hour's monitoring samples: active slices offer traffic; the
		// data plane serves it and the agents publish what they saw.
		for _, st := range rep.Slices {
			if st.State != "active" {
				continue
			}
			for theta := 0; theta < 12; theta++ {
				load := gens[st.Name].Sample(epoch, theta)
				served := dp.ServeSample(st.Name, []float64{load, load})
				agent.Send(monitor.Sample{ //nolint:errcheck // UDP fire-and-forget
					Slice: st.Name, Metric: "load_mbps", Element: "bs0",
					Epoch: epoch, Theta: theta, Value: served[0] + (load - served[0]),
				})
			}
		}
		if len(rep.Accepted)+len(rep.Rejected) > 0 {
			fmt.Printf("%02d:00  accepted=%v rejected=%v revenue=%.2f\n",
				6+epoch, rep.Accepted, rep.Rejected, rep.NetRevenue)
		}
	}

	// Give the UDP datagrams a beat, then show what the data plane holds.
	time.Sleep(100 * time.Millisecond)
	fmt.Println("\nfinal data-plane state:")
	fmt.Printf("  edge CU pinned cores: %.1f / 16\n", dp.CUs[0].TotalPinned())
	fmt.Printf("  core CU pinned cores: %.1f / 64\n", dp.CUs[1].TotalPinned())
	fmt.Printf("  monitoring store: %d samples across %d slices\n", store.Len(), len(store.Slices()))

	// Finally, run real traffic through the split-TCP middlebox for one
	// slice: an in-SLA stream is shaped to the reservation without drops.
	demoMiddlebox()
}

// demoMiddlebox pushes a short TCP burst through the rate-control proxy.
func demoMiddlebox() {
	sink, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer sink.Close()
	received := make(chan int64, 1)
	go func() {
		conn, err := sink.Accept()
		if err != nil {
			return
		}
		n, _ := io.Copy(io.Discard, conn)
		received <- n
	}()

	proxy, err := middlebox.New("127.0.0.1:0", sink.Addr().String(), 50, 20)
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	payload := make([]byte, 512<<10) // 0.5 MB ≈ 4 Mb: ~0.2 s at 20 Mb/s
	conn.Write(payload)              //nolint:errcheck // demo
	conn.Close()
	n := <-received
	elapsed := time.Since(start).Seconds()
	fmt.Printf("\nmiddlebox demo: %d KB through the split-TCP proxy in %.2fs (≈%.0f Mb/s, reservation 20 Mb/s, drops %d)\n",
		n>>10, elapsed, float64(n)*8/1e6/elapsed, proxy.Stats().Dropped)
}
