// Forecast demo: why the orchestrator uses triple exponential smoothing.
// A slice's per-epoch peak load follows a daily rhythm; Holt-Winters
// tracks the seasonality that single and double exponential smoothing
// structurally cannot (§2.2.2, footnote 6 of the paper).
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/traffic"
)

func main() {
	// A diurnal load: 10 Mb/s at night, 90 Mb/s at the evening peak, over
	// 24 one-hour epochs with monitoring noise.
	day := traffic.NewDiurnal(10, 90, 24, 12, 3, 1)

	hw := forecast.NewHoltWinters(0.3, 0.05, 0.3, 24)
	ses := forecast.NewSES(0.3)

	fmt.Println("hour  actual  holt-winters  ses")
	// Warm up on 6 days, then print day 7 with 1-step-ahead forecasts.
	for t := 0; t < 7*24; t++ {
		peak := traffic.EpochPeak(day, t, 12)
		if t >= 6*24 {
			fmt.Printf("%4d  %6.1f  %12.1f  %6.1f   (σ̂=%.3f)\n",
				t%24, peak, hw.Forecast(1)[0], ses.Forecast(1)[0], hw.Uncertainty())
		}
		hw.Observe(peak)
		ses.Observe(peak)
	}

	fmt.Println("\naccuracy over 20 synthetic days (lower is better):")
	experiments.PrintForecastAblation(os.Stdout, experiments.ForecastAblation(24, 20, 5, 42))
}
