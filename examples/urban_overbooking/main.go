// Urban overbooking: the Fig. 5 experiment in miniature. Ten eMBB tenants
// request slices of a scaled Romanian metro network; their actual demand
// averages only 30% of the SLA. The example contrasts the no-overbooking
// baseline with the yield-driven policy and prints the revenue gain and
// the SLA-violation footprint.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/topology"
)

func main() {
	net := topology.Romanian(4) // scaled-down N1 (pass 0 for all 198 BSs)
	tmpl := slice.Table1(slice.EMBB)

	const (
		tenants   = 10
		alpha     = 0.3  // λ̄ = α·Λ
		sigmaFrac = 0.25 // σ = 0.25·λ̄
		epochs    = 20
	)
	var specs []sim.SliceSpec
	for i := 0; i < tenants; i++ {
		mean := alpha * tmpl.RateMbps
		specs = append(specs, sim.SliceSpec{
			Name:          fmt.Sprintf("embb%d", i+1),
			Template:      tmpl.WithStd(sigmaFrac * mean),
			PenaltyFactor: 1,
			MeanMbps:      mean,
			StdMbps:       sigmaFrac * mean,
			Duration:      1 << 20,
			Seed:          int64(i + 1),
		})
	}

	run := func(a sim.Algorithm) *sim.Result {
		res, err := sim.Run(sim.Config{
			Net: net, Epochs: epochs, Slices: specs,
			Algorithm: a, KPaths: 2, ReofferPending: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(sim.NoOverbooking)
	over := run(sim.Direct)

	fmt.Printf("topology: %s (%d BSs)\n", net.Name, net.NumBS())
	fmt.Printf("no-overbooking steady revenue: %6.2f units/epoch (%d slices admitted)\n",
		base.MeanRevenue, base.Epochs[len(base.Epochs)-1].Accepted)
	fmt.Printf("overbooking    steady revenue: %6.2f units/epoch (%d slices admitted)\n",
		over.MeanRevenue, over.Epochs[len(over.Epochs)-1].Accepted)
	if base.MeanRevenue > 0 {
		fmt.Printf("relative gain: +%.0f%%\n", 100*(over.MeanRevenue-base.MeanRevenue)/base.MeanRevenue)
	}
	fmt.Printf("SLA violations: %.4f%% of monitoring samples (mean drop %.1f%% when violated)\n",
		100*over.ViolationProb, 100*over.MeanDrop)
}
