// Urban overbooking: the Fig. 5 experiment in miniature, expressed as a
// declarative scenario. Ten eMBB tenants request slices of a scaled
// Romanian metro network; their actual demand averages only 30% of the
// SLA. The example contrasts the no-overbooking baseline with the
// yield-driven policy and prints the revenue gain and the SLA-violation
// footprint.
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	spec := scenario.Spec{
		Name:     "urban-overbooking",
		Topology: "Romanian", NBS: 4, // scaled-down N1 (0 = all 198 BSs)
		Tenants: 10, Epochs: 20, KPaths: 2,
		Arrivals:       scenario.Arrivals{Kind: scenario.Batch},
		Classes:        []scenario.Class{{Type: "eMBB", Alpha: 0.3, SigmaFrac: 0.25, Penalty: 1}},
		ReofferPending: true,
	}

	run := func(algo string) *sim.Result {
		spec.Algorithm = algo
		res, err := spec.Run(1)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run("no-overbooking")
	over := run("direct")

	net := base.Config.Net
	fmt.Printf("topology: %s (%d BSs)\n", net.Name, net.NumBS())
	fmt.Printf("no-overbooking steady revenue: %6.2f units/epoch (%d slices admitted)\n",
		base.MeanRevenue, base.Epochs[len(base.Epochs)-1].Accepted)
	fmt.Printf("overbooking    steady revenue: %6.2f units/epoch (%d slices admitted)\n",
		over.MeanRevenue, over.Epochs[len(over.Epochs)-1].Accepted)
	if base.MeanRevenue > 0 {
		fmt.Printf("relative gain: +%.0f%%\n", 100*(over.MeanRevenue-base.MeanRevenue)/base.MeanRevenue)
	}
	fmt.Printf("SLA violations: %.4f%% of monitoring samples (mean drop %.1f%% when violated)\n",
		100*over.ViolationProb, 100*over.MeanDrop)
}
