// Heterogeneous mix: the Fig. 6 experiment in miniature. A fixed pool of
// requests mixes eMBB with compute-hungry mMTC slices; sweeping the mix
// fraction β shows where the edge cloud becomes the bottleneck and how
// overbooking shifts that point.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	pts, err := experiments.Fig6(experiments.Fig6Config{
		Topologies: []string{"Romanian"},
		Mixes:      [][2]string{{"eMBB", "mMTC"}},
		Betas:      []float64{0, 25, 50, 75, 100},
		Tenants:    6,
		NBS:        3,
		Epochs:     10,
		KPaths:     1,
		Algorithm:  sim.Direct,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("eMBB/mMTC mix on the scaled Romanian topology (λ̄ = 0.2Λ)")
	fmt.Println("β(mMTC%)  no-overbooking  overbooking  gain")
	for _, p := range pts {
		gain := "-"
		if p.BaselineRevenue > 0 {
			gain = fmt.Sprintf("+%.0f%%", 100*(p.Revenue-p.BaselineRevenue)/p.BaselineRevenue)
		}
		fmt.Printf("%7.0f %15.2f %12.2f  %s\n", p.Beta, p.BaselineRevenue, p.Revenue, gain)
	}
	fmt.Println("\nReading Fig. 6's story: mMTC pays 3x eMBB's reward but eats 20 CPU")
	fmt.Println("cores per BS at full load, so revenue climbs with β until the edge")
	fmt.Println("cloud saturates; overbooking keeps admitting because measured mMTC")
	fmt.Println("demand is far below the SLA.")
}
