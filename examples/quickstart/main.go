// Quickstart: build a data-plane topology, describe three slice requests,
// run the yield-driven AC-RR optimizer, and inspect the decision. This is
// the 30-line adoption path for the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/slice"
	"repro/internal/topology"
)

func main() {
	// The §5 testbed: two 20 MHz BSs, one switch, a 16-core edge CU and a
	// 64-core core CU behind a ~30 ms backhaul.
	net := topology.Testbed()
	paths := net.Paths(3) // P_{b,c}: up to 3 shortest paths per (BS, CU)

	// Three tenants from the Table 1 templates. Each reports the
	// forecaster's view: expected peak demand λ̂ and uncertainty σ̂.
	mk := func(name string, ty slice.Type, lambdaHat, sigma float64) core.TenantSpec {
		sla := slice.SLA{Template: slice.Table1(ty), Duration: 12}.WithPenaltyFactor(1)
		return core.TenantSpec{Name: name, SLA: sla,
			LambdaHat: lambdaHat, Sigma: sigma, RemainingEpochs: 12}
	}
	inst := &core.Instance{
		Net:   net,
		Paths: paths,
		Tenants: []core.TenantSpec{
			mk("urllc-robots", slice.URLLC, 10, 0.1), // low-latency factory control
			mk("mmtc-meters", slice.MMTC, 10, 0.05),  // deterministic meter readings
			mk("embb-video", slice.EMBB, 20, 0.2),    // bursty video distribution
		},
		Overbook: true, // reserve forecasts, not SLAs
		BigM:     1e4,
	}

	dec, err := core.SolveDirect(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected net revenue: %.2f monetary units/epoch\n\n", dec.Revenue())
	for t, spec := range inst.Tenants {
		if !dec.Accepted[t] {
			fmt.Printf("%-14s REJECTED\n", spec.Name)
			continue
		}
		cu := "edge CU"
		if !net.CUs[dec.CU[t]].Edge {
			cu = "core CU"
		}
		fmt.Printf("%-14s accepted on %s, per-BS reservation %v Mb/s (SLA %v)\n",
			spec.Name, cu, fmt.Sprintf("%.1f/%.1f", dec.Z[t][0], dec.Z[t][1]), spec.SLA.RateMbps)
	}
}
