package obslog

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. Events below a logger's level are gated
// out before any rendering work happens.
type Level int8

// Levels, least to most severe. Disabled sits above every severity, so a
// Disabled logger emits nothing.
const (
	DebugLevel Level = iota
	InfoLevel
	WarnLevel
	ErrorLevel
	Disabled
)

// String names the level as it appears in the level= field.
func (l Level) String() string {
	switch l {
	case DebugLevel:
		return "debug"
	case InfoLevel:
		return "info"
	case WarnLevel:
		return "warn"
	case ErrorLevel:
		return "error"
	}
	return "disabled"
}

// ParseLevel resolves a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return DebugLevel, nil
	case "info":
		return InfoLevel, nil
	case "warn", "warning":
		return WarnLevel, nil
	case "error":
		return ErrorLevel, nil
	case "off", "disabled", "none":
		return Disabled, nil
	}
	return Disabled, fmt.Errorf("obslog: unknown level %q (want debug|info|warn|error|off)", s)
}

// Logger gates and renders events. It is a value: copies are independent,
// context fields added with Str/Int are carried by the copy. The zero
// value is a no-op logger (nil writer), as is Nop().
type Logger struct {
	out io.Writer
	mu  *sync.Mutex // serializes writes to out across derived loggers
	min Level
	ctx string // pre-rendered " k=v" context suffix
	// now stamps the ts= field; tests may pin it. Nil means time.Now.
	now func() time.Time
}

// New builds a logger writing one line per event to out, discarding
// events below min. Loggers derived from it (Str/Int context) share one
// write mutex, so their lines never interleave.
func New(out io.Writer, min Level) Logger {
	return Logger{out: out, mu: &sync.Mutex{}, min: min}
}

// Nop returns a logger that discards everything at zero cost — the
// default every component should fall back to when no logger is wired.
func Nop() Logger { return Logger{min: Disabled} }

// WithClock pins the timestamp source (tests).
func (l Logger) WithClock(now func() time.Time) Logger {
	l.now = now
	return l
}

// Str derives a logger whose every event carries key=val.
func (l Logger) Str(key, val string) Logger {
	l.ctx += " " + key + "=" + quote(val)
	return l
}

// Int derives a logger whose every event carries key=val.
func (l Logger) Int(key string, val int) Logger {
	l.ctx += " " + key + "=" + strconv.Itoa(val)
	return l
}

// Enabled reports whether events at lv would be emitted.
func (l Logger) Enabled(lv Level) bool { return l.out != nil && lv >= l.min && lv < Disabled }

// Debug starts a debug event; nil (free) when gated out.
func (l Logger) Debug() *Event { return l.event(DebugLevel) }

// Info starts an info event; nil (free) when gated out.
func (l Logger) Info() *Event { return l.event(InfoLevel) }

// Warn starts a warn event; nil (free) when gated out.
func (l Logger) Warn() *Event { return l.event(WarnLevel) }

// Error starts an error event; nil (free) when gated out.
func (l Logger) Error() *Event { return l.event(ErrorLevel) }

func (l Logger) event(lv Level) *Event {
	if !l.Enabled(lv) {
		return nil
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	e := &Event{out: l.out, mu: l.mu}
	e.buf = append(e.buf, "ts="...)
	e.buf = now().UTC().AppendFormat(e.buf, time.RFC3339)
	e.buf = append(e.buf, " level="...)
	e.buf = append(e.buf, lv.String()...)
	e.buf = append(e.buf, l.ctx...)
	return e
}

// Event is one in-flight log line. All methods are nil-safe: a gated-out
// event is a nil pointer and every chained call is a no-op, which is what
// keeps disabled call sites allocation-free.
type Event struct {
	out io.Writer
	mu  *sync.Mutex
	buf []byte
}

// Str appends key=val.
func (e *Event) Str(key, val string) *Event {
	if e == nil {
		return nil
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = append(e.buf, quote(val)...)
	return e
}

// Int appends key=val.
func (e *Event) Int(key string, val int) *Event {
	if e == nil {
		return nil
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = strconv.AppendInt(e.buf, int64(val), 10)
	return e
}

// Uint64 appends key=val.
func (e *Event) Uint64(key string, val uint64) *Event {
	if e == nil {
		return nil
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = strconv.AppendUint(e.buf, val, 10)
	return e
}

// Float64 appends key=val in shortest round-trip form.
func (e *Event) Float64(key string, val float64) *Event {
	if e == nil {
		return nil
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = strconv.AppendFloat(e.buf, val, 'g', -1, 64)
	return e
}

// Dur appends key=val as a time.Duration string.
func (e *Event) Dur(key string, val time.Duration) *Event {
	if e == nil {
		return nil
	}
	return e.Str(key, val.String())
}

// Err appends err=<message> (skipped when err is nil).
func (e *Event) Err(err error) *Event {
	if e == nil || err == nil {
		return e
	}
	return e.Str("err", err.Error())
}

// Msg terminates the event: the message lands last on the line and the
// line is written atomically. The event must not be reused.
func (e *Event) Msg(msg string) {
	if e == nil {
		return
	}
	e.buf = append(e.buf, " msg="...)
	e.buf = append(e.buf, quote(msg)...)
	e.buf = append(e.buf, '\n')
	e.mu.Lock()
	e.out.Write(e.buf) //nolint:errcheck // logging is best-effort by contract
	e.mu.Unlock()
}

// quote renders a value, quoting only when it contains logfmt-hostile
// characters (spaces, quotes, '=', control bytes) or is empty.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
