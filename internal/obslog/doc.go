// Package obslog is the control plane's structured, leveled logger: a
// zerolog-shaped API (level-gated events, chained key-value fields, one
// line per event) on nothing but the standard library.
//
// A Logger is a value; the zero value and Nop() discard everything and
// cost nothing — the level gate returns a nil *Event before any field is
// rendered, so instrumented hot paths stay allocation-free when logging
// is off or below the threshold. Deployments construct one with New and
// derive per-component loggers with Str-context:
//
//	log := obslog.New(os.Stderr, obslog.InfoLevel).Str("component", "coordinator")
//	log.Info().Str("worker", id).Int("domains", n).Msg("worker joined")
//
// renders
//
//	ts=2026-08-07T12:00:00Z level=info component=coordinator worker=w1 domains=3 msg="worker joined"
//
// The format is logfmt-flavoured: space-separated key=value pairs with
// the message last, values quoted only when they need it. Levels are
// debug < info < warn < error; Disabled suppresses everything.
package obslog
