package obslog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func pinned() func() time.Time {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestEventRendering(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, DebugLevel).WithClock(pinned()).Str("component", "coordinator")
	log.Info().
		Str("worker", "w1").
		Str("spaced", "a b").
		Int("domains", 3).
		Uint64("seq", 42).
		Float64("score", 0.125).
		Dur("after", 1500*time.Millisecond).
		Err(errors.New("boom")).
		Msg("worker joined")

	want := `ts=2026-08-07T12:00:00Z level=info component=coordinator worker=w1 spaced="a b" domains=3 seq=42 score=0.125 after=1.5s err=boom msg="worker joined"` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("rendered line:\n got: %q\nwant: %q", got, want)
	}
}

func TestLevelGate(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, WarnLevel).WithClock(pinned())
	log.Debug().Str("k", "v").Msg("dropped")
	log.Info().Msg("dropped too")
	log.Warn().Msg("kept")
	log.Error().Msg("kept")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("want 2 lines past the warn gate, got %d:\n%s", lines, buf.String())
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Fatalf("gated event leaked: %s", buf.String())
	}
}

func TestQuoting(t *testing.T) {
	cases := map[string]string{
		"plain":   "plain",
		"":        `""`,
		"a b":     `"a b"`,
		`say "q"`: `"say \"q\""`,
		"k=v":     `"k=v"`,
		"tab\tx":  `"tab\tx"`,
	}
	for in, want := range cases {
		if got := quote(in); got != want {
			t.Errorf("quote(%q) = %s, want %s", in, got, want)
		}
	}
}

// TestNopAllocationFree is the satellite's contract: a disabled logger on
// a hot path costs nothing — the level gate returns a nil *Event before
// any boxing or buffering can happen.
func TestNopAllocationFree(t *testing.T) {
	log := Nop()
	n := testing.AllocsPerRun(100, func() {
		log.Debug().Str("worker", "w1").Int("domains", 3).Msg("never rendered")
		log.Info().Uint64("seq", 7).Msg("never rendered")
	})
	if n != 0 {
		t.Fatalf("Nop logger allocated %.1f times per call chain, want 0", n)
	}
	var zero Logger
	n = testing.AllocsPerRun(100, func() {
		zero.Error().Str("k", "v").Msg("zero value is also a nop")
	})
	if n != 0 {
		t.Fatalf("zero-value logger allocated %.1f times, want 0", n)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": DebugLevel, "info": InfoLevel, "warning": WarnLevel,
		"warn": WarnLevel, "error": ErrorLevel, "off": Disabled, "INFO": InfoLevel,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}
