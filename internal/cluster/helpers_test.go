package cluster

import (
	"bytes"
	"testing"

	"repro/internal/obslog"
)

// tWriter routes obslog lines into the test log.
type tWriter struct{ t *testing.T }

func (w tWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testLogger is silent by default and verbose under -v, so membership
// churn in the kill tests is debuggable without polluting normal runs.
func testLogger(t *testing.T) obslog.Logger {
	if testing.Verbose() {
		return obslog.New(tWriter{t: t}, obslog.DebugLevel)
	}
	return obslog.Nop()
}
