package cluster

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock: lease expiry in these tests is an
// explicit advance, never a sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Now()} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func leaseCfg(t *testing.T, clk *fakeClock, holder string) LeaseConfig {
	t.Helper()
	return LeaseConfig{
		Path:   filepath.Join(t.TempDir(), "LEASE"),
		Holder: holder,
		TTL:    time.Second,
		Now:    clk.now,
	}
}

// TestLeaseTransitions walks the lease state machine table-style: every
// transition the replication design leans on — acquire, renew, expiry,
// takeover fencing a stale leader, split-brain refusal, clean release —
// is pinned under a fake clock.
func TestLeaseTransitions(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, clk *fakeClock, cfg LeaseConfig)
	}{
		{"acquire empty state grants epoch 1", func(t *testing.T, clk *fakeClock, cfg LeaseConfig) {
			l, err := Acquire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if l.Epoch() != 1 {
				t.Fatalf("epoch %d, want 1", l.Epoch())
			}
			if err := l.Check(); err != nil {
				t.Fatalf("fresh lease fails Check: %v", err)
			}
		}},
		{"renew extends past the original TTL", func(t *testing.T, clk *fakeClock, cfg LeaseConfig) {
			l, err := Acquire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			clk.advance(800 * time.Millisecond)
			if err := l.Renew(); err != nil {
				t.Fatal(err)
			}
			clk.advance(800 * time.Millisecond) // 1.6s after acquire: dead without the renewal
			if err := l.Check(); err != nil {
				t.Fatalf("renewed lease fails Check: %v", err)
			}
		}},
		{"expiry fails Check before anyone takes over", func(t *testing.T, clk *fakeClock, cfg LeaseConfig) {
			l, err := Acquire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			clk.advance(cfg.TTL + time.Millisecond)
			// Conservative fencing: past the TTL a successor may be
			// acquiring concurrently, so Check must already fail.
			if err := l.Check(); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("expired lease Check = %v, want ErrLeaseLost", err)
			}
		}},
		{"takeover fences the stale leader", func(t *testing.T, clk *fakeClock, cfg LeaseConfig) {
			old, err := Acquire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			clk.advance(2 * cfg.TTL)
			next := cfg
			next.Holder = "successor"
			nl, err := Acquire(next)
			if err != nil {
				t.Fatalf("takeover after expiry: %v", err)
			}
			if nl.Epoch() != old.Epoch()+1 {
				t.Fatalf("takeover epoch %d, want %d", nl.Epoch(), old.Epoch()+1)
			}
			if err := old.Check(); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("deposed leader Check = %v, want ErrLeaseLost", err)
			}
			if err := old.Renew(); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("deposed leader Renew = %v, want ErrLeaseLost", err)
			}
			if err := nl.Check(); err != nil {
				t.Fatalf("successor lease fails Check: %v", err)
			}
		}},
		{"split-brain attempt is refused while the lease is live", func(t *testing.T, clk *fakeClock, cfg LeaseConfig) {
			l, err := Acquire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			clk.advance(cfg.TTL / 2)
			rival := cfg
			rival.Holder = "rival"
			if _, err := Acquire(rival); !errors.Is(err, ErrLeaseHeld) {
				t.Fatalf("rival Acquire = %v, want ErrLeaseHeld", err)
			}
			if err := l.Check(); err != nil {
				t.Fatalf("holder lost the lease to a refused rival: %v", err)
			}
		}},
		{"re-acquire by the same holder bumps the epoch", func(t *testing.T, clk *fakeClock, cfg LeaseConfig) {
			l1, err := Acquire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// A restarted leader re-acquires its own live lease; the bump
			// fences its previous incarnation's in-flight dispatches.
			l2, err := Acquire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if l2.Epoch() != l1.Epoch()+1 {
				t.Fatalf("re-acquire epoch %d, want %d", l2.Epoch(), l1.Epoch()+1)
			}
			if err := l1.Check(); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("previous incarnation Check = %v, want ErrLeaseLost", err)
			}
		}},
		{"release lets a successor in immediately, epoch still grows", func(t *testing.T, clk *fakeClock, cfg LeaseConfig) {
			l, err := Acquire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Release(); err != nil {
				t.Fatal(err)
			}
			next := cfg
			next.Holder = "successor"
			nl, err := Acquire(next)
			if err != nil {
				t.Fatalf("acquire after release: %v", err)
			}
			if nl.Epoch() != l.Epoch()+1 {
				t.Fatalf("post-release epoch %d, want %d", nl.Epoch(), l.Epoch()+1)
			}
			if err := l.Check(); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("released lease Check = %v, want ErrLeaseLost", err)
			}
		}},
		{"abandoned sidecar lock is broken", func(t *testing.T, clk *fakeClock, cfg LeaseConfig) {
			// A mutator that died mid-mutation leaves the O_EXCL lock file
			// behind; once visibly stale it must not wedge the lease forever.
			lock := cfg.Path + ".lock"
			if err := os.WriteFile(lock, []byte("dead pid=1\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			old := time.Now().Add(-2 * staleLockAge)
			if err := os.Chtimes(lock, old, old); err != nil {
				t.Fatal(err)
			}
			if _, err := Acquire(cfg); err != nil {
				t.Fatalf("acquire over a stale lock: %v", err)
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			clk := newFakeClock()
			tc.run(t, clk, leaseCfg(t, clk, "leader"))
		})
	}
}

// TestWaitAcquireTakesOverWhenLeaseLapses pins how a standby waits: held
// lease → ErrLeaseHeld retried; expiry → acquired under the next epoch.
func TestWaitAcquireTakesOverWhenLeaseLapses(t *testing.T) {
	clk := newFakeClock()
	cfg := leaseCfg(t, clk, "leader")
	if _, err := Acquire(cfg); err != nil {
		t.Fatal(err)
	}

	standby := cfg
	standby.Holder = "standby"
	done := make(chan *Lease, 1)
	errs := make(chan error, 1)
	go func() {
		l, err := WaitAcquire(context.Background(), standby, time.Millisecond)
		if err != nil {
			errs <- err
			return
		}
		done <- l
	}()

	// While the leader's lease is live the standby must keep waiting.
	select {
	case l := <-done:
		t.Fatalf("standby acquired epoch %d while the leader's lease was live", l.Epoch())
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(50 * time.Millisecond):
	}

	clk.advance(2 * cfg.TTL) // the leader died; its lease lapses
	select {
	case l := <-done:
		if l.Epoch() != 2 {
			t.Fatalf("takeover epoch %d, want 2", l.Epoch())
		}
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("standby never took the lapsed lease")
	}
}

// TestWaitAcquireHonorsContext: a standby told to shut down while waiting
// returns the context's error instead of spinning.
func TestWaitAcquireHonorsContext(t *testing.T) {
	clk := newFakeClock()
	cfg := leaseCfg(t, clk, "leader")
	if _, err := Acquire(cfg); err != nil {
		t.Fatal(err)
	}
	standby := cfg
	standby.Holder = "standby"
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := WaitAcquire(ctx, standby, time.Millisecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitAcquire = %v, want context.DeadlineExceeded", err)
	}
}
