package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/obslog"
)

// BenchmarkClusterRoundLoopback measures a full wire round trip — frame
// encode, pipe transfer, worker-side decode and solve, reply — against
// BenchmarkClusterRoundLocal, the identical solve with no wire. The gap
// between them is the protocol tax per round; the solver itself is the
// cheap direct algorithm so the tax is not drowned out.
func BenchmarkClusterRoundLoopback(b *testing.B) {
	coord := NewCoordinator(CoordinatorOptions{HeartbeatTimeout: time.Minute})
	defer coord.Close()
	cfg := testDomainConfig()
	if err := coord.RegisterDomain("", cfg); err != nil {
		b.Fatal(err)
	}
	stop := StartLoopbackWorker(coord, "w0", obslog.Nop())
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.WaitMembers(ctx, 1); err != nil {
		b.Fatal(err)
	}
	tenants := testTenants()
	// Warm the assign path out of the measured region.
	if _, err := coord.SolveRound(admission.DefaultDomain, 0, nil, tenants); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.SolveRound(admission.DefaultDomain, uint64(i+1), nil, tenants); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterRoundLocal is the no-wire reference for the loopback
// benchmark: same spec, same tenants, same solver, direct call.
func BenchmarkClusterRoundLocal(b *testing.B) {
	host := NewSolverHost()
	spec, err := NewDomainSpec("", testDomainConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := host.Register(spec); err != nil {
		b.Fatal(err)
	}
	tenants := testTenants()
	if _, err := host.Solve(admission.DefaultDomain, nil, tenants); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := host.Solve(admission.DefaultDomain, nil, tenants); err != nil {
			b.Fatal(err)
		}
	}
}
