package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Leader lease with a fencing epoch. Exactly one coordinator may dispatch
// at a time; the lease file is the ground truth. Every successful Acquire
// bumps a monotonically increasing epoch, which the coordinator stamps on
// every wire message and the WAL checks before every write — so a deposed
// leader that keeps running is rejected by workers (wire fencing) and
// cannot scribble on the log a successor now owns (storage fencing).
//
// The lease lives in a small JSON file next to the data it guards
// (conventionally <data-dir>/LEASE). Mutations happen under a sidecar
// lock file taken with O_CREATE|O_EXCL, so two nodes racing Acquire on a
// shared directory serialize; a lock abandoned by a crashed mutator is
// broken once it is visibly stale.

// ErrLeaseHeld reports that a live lease names another holder.
var ErrLeaseHeld = errors.New("cluster: lease held by another leader")

// ErrLeaseLost reports that the caller's lease is no longer valid: it
// expired, was re-acquired under a newer epoch, or names another holder.
var ErrLeaseLost = errors.New("cluster: lease lost")

// LeaseConfig parameterizes Acquire.
type LeaseConfig struct {
	// Path of the lease file. Required.
	Path string
	// Holder identifies this node in the lease file. Required.
	Holder string
	// TTL is how long an acquisition or renewal remains valid. A leader
	// must renew comfortably within it (TTL/3 is the usual cadence).
	// Default 3s.
	TTL time.Duration
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

func (c LeaseConfig) withDefaults() (LeaseConfig, error) {
	if c.Path == "" {
		return c, fmt.Errorf("cluster: lease needs a path")
	}
	if c.Holder == "" {
		return c, fmt.Errorf("cluster: lease needs a holder id")
	}
	if c.TTL <= 0 {
		c.TTL = 3 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// leaseState is the on-disk representation.
type leaseState struct {
	Epoch   uint64 `json:"epoch"`
	Holder  string `json:"holder,omitempty"`
	Expires int64  `json:"expires_unix_nano,omitempty"`
}

// Lease is a held (or formerly held) leader lease.
type Lease struct {
	cfg   LeaseConfig
	epoch uint64
}

// staleLockAge is how old the sidecar lock file must be before another
// node concludes its owner died mid-mutation and breaks it. Mutations are
// a read + a rename; multiple seconds means abandonment, not slowness.
const staleLockAge = 10 * time.Second

// withLock runs fn while holding the sidecar lock file.
func withLock(cfg LeaseConfig, fn func() error) error {
	lock := cfg.Path + ".lock"
	deadline := cfg.Now().Add(staleLockAge + time.Second)
	for {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%s pid=%d\n", cfg.Holder, os.Getpid())
			f.Close()
			break
		}
		if !os.IsExist(err) {
			return fmt.Errorf("cluster: lease lock: %w", err)
		}
		if st, serr := os.Stat(lock); serr == nil && cfg.Now().Sub(st.ModTime()) > staleLockAge {
			// Abandoned by a crashed mutator: break it and retry.
			os.Remove(lock)
			continue
		}
		if cfg.Now().After(deadline) {
			return fmt.Errorf("cluster: lease lock %s: contended past %v", lock, staleLockAge)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer os.Remove(lock)
	return fn()
}

// readLeaseState loads the lease file; a missing file is the zero state
// (epoch 0, unheld).
func readLeaseState(path string) (leaseState, error) {
	var st leaseState
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("cluster: lease read: %w", err)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("cluster: lease file %s corrupt: %w", path, err)
	}
	return st, nil
}

func writeLeaseState(path string, st leaseState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("cluster: lease encode: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cluster: lease write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cluster: lease write: %w", err)
	}
	return nil
}

// Acquire takes the lease, bumping the fencing epoch. It fails with
// ErrLeaseHeld while a live lease names another holder. Re-acquiring a
// lease this holder already has (e.g. after a restart) also bumps the
// epoch: the previous incarnation's dispatches must fence out.
func Acquire(cfg LeaseConfig) (*Lease, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	l := &Lease{cfg: cfg}
	err = withLock(cfg, func() error {
		st, err := readLeaseState(cfg.Path)
		if err != nil {
			return err
		}
		if st.Holder != "" && st.Holder != cfg.Holder && cfg.Now().UnixNano() < st.Expires {
			return fmt.Errorf("%w: %q until %s", ErrLeaseHeld, st.Holder,
				time.Unix(0, st.Expires).Format(time.RFC3339Nano))
		}
		l.epoch = st.Epoch + 1
		return writeLeaseState(cfg.Path, leaseState{
			Epoch:   l.epoch,
			Holder:  cfg.Holder,
			Expires: cfg.Now().Add(cfg.TTL).UnixNano(),
		})
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// WaitAcquire retries Acquire every poll until it succeeds or ctx ends —
// how a standby waits for the current leader's lease to lapse.
func WaitAcquire(ctx context.Context, cfg LeaseConfig, poll time.Duration) (*Lease, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		l, err := Acquire(cfg)
		if err == nil {
			return l, nil
		}
		if !errors.Is(err, ErrLeaseHeld) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Epoch returns the fencing epoch this acquisition was granted.
func (l *Lease) Epoch() uint64 { return l.epoch }

// Renew extends the lease's expiry. It fails with ErrLeaseLost when the
// lease no longer belongs to this acquisition (newer epoch, other holder)
// — the caller must stop dispatching immediately.
func (l *Lease) Renew() error {
	return withLock(l.cfg, func() error {
		st, err := readLeaseState(l.cfg.Path)
		if err != nil {
			return err
		}
		if st.Epoch != l.epoch || st.Holder != l.cfg.Holder {
			return fmt.Errorf("%w: file has epoch %d holder %q, we are epoch %d holder %q",
				ErrLeaseLost, st.Epoch, st.Holder, l.epoch, l.cfg.Holder)
		}
		st.Expires = l.cfg.Now().Add(l.cfg.TTL).UnixNano()
		return writeLeaseState(l.cfg.Path, st)
	})
}

// Check verifies — read-only, no lock — that this acquisition is still
// the live lease: same epoch, same holder, not expired. An expired lease
// fails Check even before anyone else takes it: past the TTL a successor
// may be acquiring concurrently, so the safe answer is ErrLeaseLost.
// This is the storage fence the WAL calls before every write.
func (l *Lease) Check() error {
	st, err := readLeaseState(l.cfg.Path)
	if err != nil {
		return err
	}
	if st.Epoch != l.epoch || st.Holder != l.cfg.Holder {
		return fmt.Errorf("%w: superseded by epoch %d holder %q", ErrLeaseLost, st.Epoch, st.Holder)
	}
	if l.cfg.Now().UnixNano() >= st.Expires {
		return fmt.Errorf("%w: expired at %s", ErrLeaseLost, time.Unix(0, st.Expires).Format(time.RFC3339Nano))
	}
	return nil
}

// Release gives the lease up cleanly (holder cleared, epoch kept — epochs
// only ever grow). Releasing a lease that moved on is a no-op.
func (l *Lease) Release() error {
	return withLock(l.cfg, func() error {
		st, err := readLeaseState(l.cfg.Path)
		if err != nil {
			return err
		}
		if st.Epoch != l.epoch || st.Holder != l.cfg.Holder {
			return nil
		}
		return writeLeaseState(l.cfg.Path, leaseState{Epoch: st.Epoch})
	})
}
