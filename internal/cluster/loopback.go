package cluster

import (
	"context"
	"net"

	"repro/internal/obslog"
)

// StartLoopbackWorker attaches an in-process worker to the coordinator
// over a synchronous net.Pipe — no sockets, no ports. It is how tests
// and benchmarks exercise the full wire protocol hermetically, and how a
// single binary can keep a warm local worker while remote ones join over
// TCP. The returned stop function detaches the worker (the coordinator
// sees an ordinary connection loss and rebalances) and waits for it to
// wind down.
func StartLoopbackWorker(c *Coordinator, id string, log obslog.Logger) (stop func()) {
	server, client := net.Pipe()
	c.AddConn(server)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = RunWorker(ctx, client, WorkerOptions{ID: id, Log: log})
	}()
	return func() {
		cancel()
		server.Close()
		client.Close()
		<-done
	}
}
