package cluster

import "hash/fnv"

// Placement is seeded rendezvous (highest-random-weight) hashing: every
// (member, domain) pair gets a deterministic score and the domain belongs
// to the member with the highest score. The two properties the control
// plane leans on fall out of the construction:
//
//   - Determinism: the score depends only on (seed, domain, member), so
//     the same member set — in any discovery order — yields the same
//     assignment on every coordinator, every restart, every machine.
//   - Minimal movement: removing a member can only reassign the domains
//     that member owned (the argmax over the survivors is unchanged for
//     every other domain), so a worker loss rebalances exactly the lost
//     worker's load and nothing else.
//
// Ties (astronomically unlikely with 64-bit scores, but the placement
// must be total) break toward the lexicographically smaller member ID.

// placementScore is the deterministic weight of member m for domain d.
func placementScore(seed uint64, domain, member string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(domain))
	h.Write([]byte{0}) // unambiguous boundary: ("ab","c") != ("a","bc")
	h.Write([]byte(member))
	return h.Sum64()
}

// placeDomain returns the owning member for domain among members, or
// false when members is empty. members may arrive in any order.
func placeDomain(seed uint64, domain string, members []string) (string, bool) {
	best, bestScore, found := "", uint64(0), false
	for _, m := range members {
		s := placementScore(seed, domain, m)
		if !found || s > bestScore || (s == bestScore && m < best) {
			best, bestScore, found = m, s, true
		}
	}
	return best, found
}
