package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func sampleMessages() []*Message {
	return []*Message{
		{Type: MsgHello, Worker: "w0"},
		{Type: MsgWelcome, Worker: "w0"},
		{Type: MsgPing, Worker: "w0"},
		{Type: MsgRound, ID: 7, Domain: "default", Seq: 3,
			Events:  []topology.Event{{Epoch: 2, Kind: topology.EventBS, Index: 1, Factor: 0.5}},
			Tenants: []core.TenantSpec{{Name: "t0", LambdaHat: 12.5, Sigma: 0.1}}},
		{Type: MsgReply, ID: 7, Decision: &core.Decision{Accepted: []bool{true}, CU: []int{0}, Obj: 1.25}},
		{Type: MsgReply, ID: 8, Err: "domain not registered"},
		// Lease/fencing traffic: an epoch-stamped welcome, assign and round
		// (what a leased leader sends), and a worker's fenced rejection
		// carrying its newest known epoch.
		{Type: MsgWelcome, Worker: "w1", Epoch: 3},
		{Type: MsgAssign, Domain: "default", Worker: "w1", Epoch: 3},
		{Type: MsgRound, ID: 9, Domain: "default", Seq: 4, Epoch: 3,
			Tenants: []core.TenantSpec{{Name: "t1", LambdaHat: 8, Sigma: 0.2}}},
		{Type: MsgFenced, ID: 9, Worker: "w1", Epoch: 4},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		frame, err := encodeFrame(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if n != len(frame) {
			t.Fatalf("%s: consumed %d of %d bytes", m.Type, n, len(frame))
		}
		if !reflect.DeepEqual(&got, m) {
			t.Fatalf("%s: round trip changed message:\n in: %+v\nout: %+v", m.Type, m, got)
		}
	}
}

func TestDecodeFrameRejectsCorruption(t *testing.T) {
	frame, err := encodeFrame(&Message{Type: MsgPing, Worker: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"short header", frame[:frameHeaderBytes-1], ErrBadFrame},
		{"truncated payload", frame[:len(frame)-1], ErrBadFrame},
		{"flipped payload byte", flipByte(frame, frameHeaderBytes+2), ErrBadFrame},
		{"flipped crc byte", flipByte(frame, 5), ErrBadFrame},
		{"oversized length", overLength(frame), ErrBadFrame},
		{"non-json payload", rawFrame([]byte("{not json")), ErrBadFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeFrame(tc.buf); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestReadFrameStream(t *testing.T) {
	var stream bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		frame, err := encodeFrame(m)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(frame)
	}
	r := bytes.NewReader(stream.Bytes())
	for i := range msgs {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != msgs[i].Type {
			t.Fatalf("frame %d: got type %q, want %q", i, got.Type, msgs[i].Type)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("clean stream end: got %v, want io.EOF", err)
	}

	// A stream cut mid-frame is a different failure than a clean end.
	cut := stream.Bytes()[:stream.Len()-3]
	r = bytes.NewReader(cut)
	var err error
	for err == nil {
		_, err = readFrame(r)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame cut: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func flipByte(frame []byte, i int) []byte {
	out := append([]byte(nil), frame...)
	out[i] ^= 0xff
	return out
}

func overLength(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(out[0:4], maxFrameBytes+1)
	return out
}

// rawFrame frames arbitrary bytes with a correct length and CRC, so only
// the JSON layer can object.
func rawFrame(payload []byte) []byte {
	out := make([]byte, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	copy(out[frameHeaderBytes:], payload)
	return out
}
