package cluster

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
)

// startGatedWorker is StartLoopbackWorker with an explicit fencing gate,
// so a test can simulate the worker having already seen a newer leader's
// welcome on its other connection.
func startGatedWorker(t *testing.T, c *Coordinator, id string, gate *EpochGate) (stop func(), errc <-chan error) {
	t.Helper()
	server, client := net.Pipe()
	c.AddConn(server)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, client, WorkerOptions{ID: id, Log: testLogger(t), Gate: gate})
	}()
	return func() {
		cancel()
		server.Close()
		client.Close()
	}, done
}

// TestEpochGateAdmits pins the watermark semantics every fencing decision
// reduces to.
func TestEpochGateAdmits(t *testing.T) {
	gate := &EpochGate{}
	steps := []struct {
		epoch uint64
		want  bool
	}{
		{0, true}, // leases not configured anywhere yet
		{1, true}, // first leased leader raises the watermark
		{0, false},
		{1, true}, // current epoch stays admitted
		{3, true}, // a newer leader raises it further
		{2, false},
		{3, true},
	}
	for i, s := range steps {
		if got := gate.Admit(s.epoch); got != s.want {
			t.Fatalf("step %d: Admit(%d) = %v, want %v (watermark %d)", i, s.epoch, got, s.want, gate.Current())
		}
	}
	if gate.Current() != 3 {
		t.Fatalf("watermark %d, want 3", gate.Current())
	}
}

// TestFencedStaleLeaderStopsDispatching is the wire-fencing pin: a worker
// that has seen a newer leader epoch answers a stale coordinator's round
// with a fenced rejection, and the coordinator — still having a live,
// assigned worker — returns ErrFenced instead of deciding anything,
// locally or remotely. A deposed leader must not produce one more
// decision.
func TestFencedStaleLeaderStopsDispatching(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{
		Log:              testLogger(t),
		Epoch:            1,
		HeartbeatTimeout: time.Minute,
		DispatchTimeout:  30 * time.Second,
	})
	defer coord.Close()
	if err := coord.RegisterDomain("", testDomainConfig()); err != nil {
		t.Fatal(err)
	}
	gate := &EpochGate{}
	stop, _ := startGatedWorker(t, coord, "w0", gate)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// Sanity: under its own epoch the leader dispatches and decides.
	dec, err := coord.SolveRound(admission.DefaultDomain, 1, nil, testTenants())
	if err != nil || dec == nil {
		t.Fatalf("un-fenced solve: dec=%v err=%v", dec, err)
	}

	// A newer leader's welcome reaches the worker (on its other
	// connection, in a real deployment). The next dispatch under epoch 1
	// must come back fenced.
	gate.Admit(2)
	dec, err = coord.SolveRound(admission.DefaultDomain, 2, nil, testTenants())
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale dispatch: err=%v, want ErrFenced", err)
	}
	if dec != nil {
		t.Fatalf("stale dispatch still produced a decision: %+v", dec)
	}
	if !coord.Fenced() {
		t.Fatal("coordinator not marked fenced after a worker rejection")
	}

	// Fenced is permanent: no further round may be decided, not even by
	// the local fallback the coordinator would use when workers are gone.
	if _, err := coord.SolveRound(admission.DefaultDomain, 3, nil, testTenants()); !errors.Is(err, ErrFenced) {
		t.Fatalf("post-fence solve: err=%v, want ErrFenced", err)
	}
}

// TestWorkerRejectsStaleWelcome: a worker that already follows epoch 2
// refuses to join a coordinator still introducing itself as epoch 1 — the
// connection dies before any assign can land.
func TestWorkerRejectsStaleWelcome(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{Log: testLogger(t), Epoch: 1, HeartbeatTimeout: time.Minute})
	defer coord.Close()
	if err := coord.RegisterDomain("", testDomainConfig()); err != nil {
		t.Fatal(err)
	}
	gate := &EpochGate{}
	gate.Admit(2)
	stop, errc := startGatedWorker(t, coord, "w0", gate)
	defer stop()

	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "stale leader epoch") {
			t.Fatalf("RunWorker = %v, want a stale-leader-epoch error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker kept serving a stale leader")
	}
	if members := coord.Members(); len(members) != 0 {
		t.Fatalf("stale coordinator still gained members: %v", members)
	}
}
