package cluster

import (
	"fmt"
	"testing"
)

// Placement is load-bearing for determinism: every coordinator (and every
// restart of one) must derive the identical domain→worker map from the
// same member set, and a single worker loss must move only that worker's
// domains. Both properties are pinned table-driven across member-set
// shapes and seeds.

func someDomains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("domain-%02d", i)
	}
	return out
}

func TestPlacementDeterministicAcrossOrder(t *testing.T) {
	cases := []struct {
		name    string
		members []string
		shuffle []string // same set, different discovery order
	}{
		{"two", []string{"w0", "w1"}, []string{"w1", "w0"}},
		{"four", []string{"w0", "w1", "w2", "w3"}, []string{"w3", "w1", "w0", "w2"}},
		{"hostnames", []string{"rack1:9000", "rack2:9000", "rack3:9000"},
			[]string{"rack3:9000", "rack1:9000", "rack2:9000"}},
		{"single", []string{"only"}, []string{"only"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{0, 1, 42, 1 << 40} {
				for _, d := range someDomains(16) {
					a, okA := placeDomain(seed, d, tc.members)
					b, okB := placeDomain(seed, d, tc.shuffle)
					if !okA || !okB || a != b {
						t.Fatalf("seed=%d domain=%s: order changed owner: %q vs %q", seed, d, a, b)
					}
				}
			}
		})
	}
}

func TestPlacementMinimalMovementOnSingleLeave(t *testing.T) {
	cases := []struct {
		name    string
		members []string
		leave   string
	}{
		{"lose-one-of-two", []string{"w0", "w1"}, "w0"},
		{"lose-one-of-four", []string{"w0", "w1", "w2", "w3"}, "w2"},
		{"lose-one-of-eight", someDomains(8), "domain-03"}, // ids are arbitrary strings
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			survivors := make([]string, 0, len(tc.members)-1)
			for _, m := range tc.members {
				if m != tc.leave {
					survivors = append(survivors, m)
				}
			}
			moved, kept := 0, 0
			for _, d := range someDomains(64) {
				before, _ := placeDomain(7, d, tc.members)
				after, ok := placeDomain(7, d, survivors)
				if !ok {
					t.Fatalf("domain %s lost its owner entirely", d)
				}
				if before == tc.leave {
					moved++
					continue // these must move; anywhere is fine
				}
				kept++
				if after != before {
					t.Fatalf("domain %s moved from surviving worker %q to %q on an unrelated leave",
						d, before, after)
				}
			}
			if moved == 0 && len(tc.members) > 1 {
				t.Logf("note: departed worker %q owned no domains in this draw", tc.leave)
			}
			if kept == 0 {
				t.Fatalf("degenerate case: every domain was on the departed worker")
			}
		})
	}
}

func TestPlacementEmptyMembership(t *testing.T) {
	if owner, ok := placeDomain(1, "d", nil); ok {
		t.Fatalf("empty membership produced owner %q", owner)
	}
}
