// Package cluster is the distributed control plane: admission shard
// workers running as separate OS processes behind a deterministic
// coordinator, so decision throughput scales with machines instead of
// cores — with the engine's bit-identical-to-serial-replay determinism
// pin held across the network.
//
// # Roles
//
// The Coordinator embeds in the process that owns the admission engine
// (ovnes, loadgen). It owns membership — workers join over TCP with a
// hello, stay alive by heartbeating, and are declared dead on a read
// error or a heartbeat timeout — and implements admission.Executor:
// each domain's round solves are dispatched to the worker that a seeded
// rendezvous placement assigns the domain to. The same member set always
// yields the same placement, and a single leave moves only the departed
// worker's domains (rendezvous minimal movement), both pinned by tests.
//
// A worker (cmd/ovnes-worker, or an in-process loopback worker) hosts
// warm per-domain solver state exactly as the engine's own shards do: it
// receives each domain's full config once (an assign message carrying
// the base topology as JSON), then solves round after round against a
// warm core.BendersSession, re-deriving the live network from the
// accumulated capacity events each round ships.
//
// # Why cross-network determinism holds
//
// A round solve is a pure function of (base network, k-path budget,
// accumulated capacity events, canonical tenant specs, pricing knobs).
// Every one of those inputs either round-trips JSON exactly (float64s
// use shortest-form encoding) or is an int/string, and warm solver state
// is a cache that cannot move a decision (the warm==cold pins). So a
// solve on worker A, the same solve re-dispatched to worker B after A is
// SIGKILLed mid-round, and a local in-process solve all return the
// bit-identical decision — which is what lets the coordinator re-dispatch
// in-flight rounds on worker loss without losing or reordering any
// decision, and what the worker-count {1,2,4} equality tests and the
// cluster-check CI gate pin end to end. Because the coordinator still
// owns all state and the WAL (log-before-ack, unchanged), crash recovery
// is identical to single-process mode and never waits for workers.
//
// # Wire protocol
//
// Messages travel as length-prefixed CRC-32C-checked JSON frames (the
// internal/wal framing idiom) over one TCP connection per worker:
// hello/welcome at join, assign (domain spec) lazily before a domain's
// first round on a worker, round/reply correlated by ID, and ping as the
// worker's heartbeat. A frame that fails its checks is a protocol error
// that kills the connection — never a panic (FuzzClusterFrameDecode).
package cluster
