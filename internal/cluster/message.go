package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/topology"
)

// Message types, one per protocol step.
const (
	// MsgHello is the worker's first frame: its identity.
	MsgHello = "hello"
	// MsgWelcome acknowledges a hello (coordinator → worker).
	MsgWelcome = "welcome"
	// MsgPing is the worker's periodic heartbeat; any frame refreshes the
	// coordinator's liveness clock, ping exists for quiet workers.
	MsgPing = "ping"
	// MsgAssign installs a domain's full config on a worker; sent lazily
	// before the domain's first round on that worker (coordinator → worker).
	MsgAssign = "assign"
	// MsgRound dispatches one round solve (coordinator → worker).
	MsgRound = "round"
	// MsgReply answers a round by ID with a decision or an error string
	// (worker → coordinator).
	MsgReply = "reply"
	// MsgFenced rejects a dispatch from a stale leader: the worker has
	// seen a newer fencing epoch than the one the frame carries (worker →
	// coordinator). It echoes the round's ID and the worker's newest known
	// epoch; the receiving coordinator must stop dispatching.
	MsgFenced = "fenced"
)

// Message is one protocol frame. Type selects which fields are
// meaningful; the rest stay zero and are omitted from the payload —
// the same single-envelope idiom as wal.Record.
type Message struct {
	Type string `json:"type"`

	// hello: the worker's identity.
	Worker string `json:"worker,omitempty"`

	// Fencing epoch of the sending leader's lease, stamped on every
	// welcome/assign/round; on a fenced reply it carries the worker's
	// newest known epoch instead. Zero means "no lease configured"
	// (single-leader deployments), which workers accept until the first
	// nonzero epoch raises their gate.
	Epoch uint64 `json:"epoch,omitempty"`

	// round/reply correlation; unique per connection.
	ID uint64 `json:"id,omitempty"`

	// assign: the domain's full solver config.
	Spec *DomainSpec `json:"spec,omitempty"`

	// round: the solve inputs — canonical tenant order, accumulated
	// capacity events (the worker re-derives the live network).
	Domain  string            `json:"domain,omitempty"`
	Seq     uint64            `json:"seq,omitempty"`
	Events  []topology.Event  `json:"events,omitempty"`
	Tenants []core.TenantSpec `json:"tenants,omitempty"`

	// reply: exactly one of Decision or Err.
	Decision *core.Decision `json:"decision,omitempty"`
	Err      string         `json:"err,omitempty"`
}

// DomainSpec is the transportable form of an admission.DomainConfig: the
// base topology as JSON plus the solver knobs, already normalized (the
// defaults applied once, coordinator-side), so both ends assemble
// bit-identical instances.
type DomainSpec struct {
	Name string `json:"name"`
	// Net is the base network in topology JSON form (WriteJSON/ReadJSON);
	// float64 capacities round-trip exactly.
	Net         json.RawMessage     `json:"net"`
	KPaths      int                 `json:"k_paths"`
	Algorithm   string              `json:"algorithm"`
	BigM        float64             `json:"big_m"`
	RiskHorizon int                 `json:"risk_horizon"`
	Benders     core.BendersOptions `json:"benders"`
}

// NewDomainSpec captures an engine domain config for the wire. It
// normalizes exactly as admission.AddDomain does, so the spec the worker
// solves from equals the config the engine solves from in-process.
func NewDomainSpec(name string, dc admission.DomainConfig) (DomainSpec, error) {
	if name == "" {
		name = admission.DefaultDomain
	}
	dc, err := dc.Normalized()
	if err != nil {
		return DomainSpec{}, fmt.Errorf("cluster: domain %q: %w", name, err)
	}
	var buf bytes.Buffer
	if err := dc.Net.WriteJSON(&buf); err != nil {
		return DomainSpec{}, fmt.Errorf("cluster: domain %q: %w", name, err)
	}
	return DomainSpec{
		Name:        name,
		Net:         json.RawMessage(buf.Bytes()),
		KPaths:      dc.KPaths,
		Algorithm:   dc.Algorithm,
		BigM:        dc.BigM,
		RiskHorizon: dc.RiskHorizon,
		Benders:     dc.Benders,
	}, nil
}
