package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obslog"
)

// WorkerOptions configures one worker connection.
type WorkerOptions struct {
	// ID names the worker in membership and placement. Required, and
	// must be unique across the cluster — a duplicate supersedes the
	// older connection.
	ID string
	// Log receives startup and per-assign events. Zero value is silent.
	Log obslog.Logger
	// HeartbeatEvery spaces the worker's pings. Default 1s; must be
	// comfortably below the coordinator's HeartbeatTimeout.
	HeartbeatEvery time.Duration
	// Host holds the solver state. Default: a fresh empty host, which is
	// right for everything except tests that pre-seed domains.
	Host *SolverHost
}

// RunWorker serves one coordinator connection until it closes or ctx is
// cancelled: join with a hello, heartbeat, install domains on assign,
// and answer each round with a reply carrying the decision (or the
// deterministic solver error). Round solves run concurrently — the
// coordinator serializes per-domain, so concurrency here only overlaps
// distinct domains.
func RunWorker(ctx context.Context, conn net.Conn, opts WorkerOptions) error {
	if opts.ID == "" {
		return errors.New("cluster: worker needs an ID")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	host := opts.Host
	if host == nil {
		host = NewSolverHost()
	}
	log := opts.Log.Str("worker", opts.ID)

	var wmu sync.Mutex
	send := func(m *Message) error {
		frame, err := encodeFrame(m)
		if err != nil {
			return err
		}
		wmu.Lock()
		defer wmu.Unlock()
		_, err = conn.Write(frame)
		return err
	}

	if err := send(&Message{Type: MsgHello, Worker: opts.ID}); err != nil {
		return fmt.Errorf("cluster: hello: %w", err)
	}
	welcome, err := readFrame(conn)
	if err != nil || welcome.Type != MsgWelcome {
		return fmt.Errorf("cluster: no welcome from coordinator (got %q): %w", welcome.Type, err)
	}
	log.Info().Msg("joined coordinator")

	// Heartbeats and ctx cancellation live on a side goroutine; closing
	// the conn is what unblocks the read loop below.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(opts.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				conn.Close()
				return
			case <-t.C:
				if send(&Message{Type: MsgPing, Worker: opts.ID}) != nil {
					return
				}
			}
		}
	}()

	for {
		msg, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return ctx.Err()
			}
			return fmt.Errorf("cluster: worker read: %w", err)
		}
		switch msg.Type {
		case MsgAssign:
			if msg.Spec == nil {
				return errors.New("cluster: assign without spec")
			}
			if err := host.Register(*msg.Spec); err != nil {
				return err
			}
			log.Info().Str("domain", msg.Spec.Name).Str("algorithm", msg.Spec.Algorithm).
				Msg("domain assigned")
		case MsgRound:
			go func(m Message) {
				reply := Message{Type: MsgReply, ID: m.ID}
				dec, err := host.Solve(m.Domain, m.Events, m.Tenants)
				if err != nil {
					reply.Err = err.Error()
				} else {
					reply.Decision = dec
				}
				// A dead conn surfaces in the read loop; nothing to do here.
				_ = send(&reply)
			}(msg)
		default:
			// Unknown or unsolicited types (welcome, ping) are ignored so
			// the protocol can grow without breaking old workers.
		}
	}
}
