package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obslog"
)

// EpochGate is a worker's fencing-epoch watermark: the newest leader
// epoch it has seen on any connection. Frames carrying an older epoch
// are from a deposed leader and are rejected. One gate is shared across
// every connection a worker holds (it may dial the old leader and the
// standby at once during a failover), so learning the new epoch on one
// connection immediately fences the other.
type EpochGate struct {
	cur atomic.Uint64
}

// Admit reports whether a frame with epoch e is current, raising the
// watermark when e is newer. Epoch 0 frames (leases not configured) are
// admitted only while the gate has never seen a nonzero epoch.
func (g *EpochGate) Admit(e uint64) bool {
	for {
		cur := g.cur.Load()
		if e < cur {
			return false
		}
		if e == cur || g.cur.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// Current returns the newest epoch the gate has seen.
func (g *EpochGate) Current() uint64 { return g.cur.Load() }

// WorkerOptions configures one worker connection.
type WorkerOptions struct {
	// ID names the worker in membership and placement. Required, and
	// must be unique across the cluster — a duplicate supersedes the
	// older connection.
	ID string
	// Log receives startup and per-assign events. Zero value is silent.
	Log obslog.Logger
	// HeartbeatEvery spaces the worker's pings. Default 1s; must be
	// comfortably below the coordinator's HeartbeatTimeout.
	HeartbeatEvery time.Duration
	// Host holds the solver state. Default: a fresh empty host, which is
	// right for everything except tests that pre-seed domains.
	Host *SolverHost
	// Gate is the fencing-epoch watermark, shared across connections when
	// the worker dials several coordinator addresses. Default: a private
	// gate for this connection.
	Gate *EpochGate
}

// RunWorker serves one coordinator connection until it closes or ctx is
// cancelled: join with a hello, heartbeat, install domains on assign,
// and answer each round with a reply carrying the decision (or the
// deterministic solver error). Round solves run concurrently — the
// coordinator serializes per-domain, so concurrency here only overlaps
// distinct domains.
func RunWorker(ctx context.Context, conn net.Conn, opts WorkerOptions) error {
	if opts.ID == "" {
		return errors.New("cluster: worker needs an ID")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	host := opts.Host
	if host == nil {
		host = NewSolverHost()
	}
	gate := opts.Gate
	if gate == nil {
		gate = &EpochGate{}
	}
	log := opts.Log.Str("worker", opts.ID)

	var wmu sync.Mutex
	send := func(m *Message) error {
		frame, err := encodeFrame(m)
		if err != nil {
			return err
		}
		wmu.Lock()
		defer wmu.Unlock()
		_, err = conn.Write(frame)
		return err
	}

	if err := send(&Message{Type: MsgHello, Worker: opts.ID}); err != nil {
		return fmt.Errorf("cluster: hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	welcome, err := readFrame(conn)
	if err != nil || welcome.Type != MsgWelcome {
		return fmt.Errorf("cluster: no welcome from coordinator (got %q): %w", welcome.Type, err)
	}
	conn.SetReadDeadline(time.Time{})
	if !gate.Admit(welcome.Epoch) {
		// The whole connection belongs to a deposed leader; drop it. The
		// redial loop in cmd/ovnes-worker will keep probing the address
		// until a current leader answers there.
		return fmt.Errorf("cluster: fencing: coordinator welcome carries stale leader epoch %d (newest known %d)",
			welcome.Epoch, gate.Current())
	}
	log.Info().Uint64("epoch", welcome.Epoch).Msg("joined coordinator")

	// Heartbeats and ctx cancellation live on a side goroutine; closing
	// the conn is what unblocks the read loop below.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(opts.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				conn.Close()
				return
			case <-t.C:
				if send(&Message{Type: MsgPing, Worker: opts.ID}) != nil {
					return
				}
			}
		}
	}()

	for {
		msg, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return ctx.Err()
			}
			return fmt.Errorf("cluster: worker read: %w", err)
		}
		switch msg.Type {
		case MsgAssign:
			if msg.Spec == nil {
				return errors.New("cluster: assign without spec")
			}
			if !gate.Admit(msg.Epoch) {
				log.Warn().Str("domain", msg.Spec.Name).Uint64("epoch", msg.Epoch).
					Uint64("newest", gate.Current()).
					Msg("fencing: rejected domain assign from stale leader epoch")
				continue
			}
			if err := host.Register(*msg.Spec); err != nil {
				return err
			}
			log.Info().Str("domain", msg.Spec.Name).Str("algorithm", msg.Spec.Algorithm).
				Msg("domain assigned")
		case MsgRound:
			if !gate.Admit(msg.Epoch) {
				// Tell the stale leader why, by round ID, so its dispatch
				// fails fast (ErrFenced) instead of timing out into a local
				// solve it must never perform.
				log.Warn().Str("domain", msg.Domain).Uint64("seq", msg.Seq).
					Uint64("epoch", msg.Epoch).Uint64("newest", gate.Current()).
					Msg("fencing: rejected round dispatch from stale leader epoch")
				_ = send(&Message{Type: MsgFenced, ID: msg.ID, Worker: opts.ID, Epoch: gate.Current()})
				continue
			}
			go func(m Message) {
				reply := Message{Type: MsgReply, ID: m.ID}
				dec, err := host.Solve(m.Domain, m.Events, m.Tenants)
				if err != nil {
					reply.Err = err.Error()
				} else {
					reply.Decision = dec
				}
				// A dead conn surfaces in the read loop; nothing to do here.
				_ = send(&reply)
			}(msg)
		default:
			// Unknown or unsolicited types (welcome, ping) are ignored so
			// the protocol can grow without breaking old workers.
		}
	}
}
