package cluster

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/topology"
)

// SolverHost is the worker-side mirror of the engine's per-domain solver
// state: the base network, its precomputed path sets, a warm solve
// function, and a cache of the live (event-scaled) network. It is what
// both cmd/ovnes-worker and the coordinator's local-fallback path solve
// through, so the two paths cannot diverge.
type SolverHost struct {
	mu      sync.Mutex
	domains map[string]*hostDomain
}

type hostDomain struct {
	spec    DomainSpec
	base    *topology.Network
	paths   [][][]topology.Path
	solveFn func(*core.Instance) (*core.Decision, error)

	// curNet caches the base with the first nEvents capacity events
	// folded in. Events are append-only on the coordinator and every
	// round ships the full accumulated list, so the event count is a
	// sufficient cache key — and after a re-dispatch the new owner
	// rebuilds the same network from the same list.
	curNet  *topology.Network
	nEvents int
}

// NewSolverHost returns an empty host; domains arrive via Register.
func NewSolverHost() *SolverHost {
	return &SolverHost{domains: map[string]*hostDomain{}}
}

// Register installs (or reinstalls, idempotently) a domain. The spec is
// already normalized coordinator-side; its values are used verbatim so
// the worker cannot re-default differently. Mirrors engine.AddDomain:
// paths come from the BASE network, and the solver is warm per domain.
func (h *SolverHost) Register(spec DomainSpec) error {
	net, err := topology.ReadJSON(bytes.NewReader(spec.Net))
	if err != nil {
		return fmt.Errorf("cluster: domain %q topology: %w", spec.Name, err)
	}
	d := &hostDomain{spec: spec, base: net, paths: net.Paths(spec.KPaths), curNet: net}
	switch spec.Algorithm {
	case "benders":
		d.solveFn = core.NewBendersSession(spec.Benders).Solve
	case "direct", "no-overbooking":
		d.solveFn = core.SolveDirect
	case "kac":
		d.solveFn = func(inst *core.Instance) (*core.Decision, error) {
			return core.SolveKAC(inst, core.KACOptions{})
		}
	default:
		return fmt.Errorf("cluster: domain %q: unknown algorithm %q", spec.Name, spec.Algorithm)
	}
	h.mu.Lock()
	h.domains[spec.Name] = d
	h.mu.Unlock()
	return nil
}

// Has reports whether the domain is registered.
func (h *SolverHost) Has(domain string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.domains[domain] != nil
}

// Solve runs one round: re-derive the live network from the accumulated
// capacity events, assemble the instance exactly as engine.execRound
// does, and solve. Safe for concurrent calls across domains; calls for
// one domain are serialized by the per-domain lock the coordinator's
// round loop already provides (one in-flight round per domain).
func (h *SolverHost) Solve(domain string, events []topology.Event, tenants []core.TenantSpec) (*core.Decision, error) {
	h.mu.Lock()
	d := h.domains[domain]
	h.mu.Unlock()
	if d == nil {
		return nil, fmt.Errorf("cluster: domain %q not registered", domain)
	}
	cur := d.curNet
	if len(events) != d.nEvents {
		net, err := topology.Apply(d.base, events)
		if err != nil {
			return nil, fmt.Errorf("cluster: domain %q events: %w", domain, err)
		}
		h.mu.Lock()
		d.curNet, d.nEvents = net, len(events)
		h.mu.Unlock()
		cur = net
	}
	inst := &core.Instance{
		Net:         cur,
		Paths:       d.paths,
		Tenants:     tenants,
		Overbook:    d.spec.Algorithm != "no-overbooking",
		BigM:        d.spec.BigM,
		RiskHorizon: d.spec.RiskHorizon,
	}
	return d.solveFn(inst)
}
