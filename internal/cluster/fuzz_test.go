package cluster

import (
	"errors"
	"io"
	"testing"
)

// FuzzClusterFrameDecode pins the protocol's corruption contract: any
// byte soup fed to the frame decoder yields either a message or a clean
// error (io.EOF on empty input, ErrBadFrame otherwise) — never a panic,
// never an out-of-range read, never a claim to have consumed bytes it
// was not given. Discovered by make fuzz-smoke.
func FuzzClusterFrameDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := encodeFrame(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1]) // torn tail
		f.Add(flipByte(frame, 5))   // CRC damage
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(overLength(mustFrame(f, &Message{Type: MsgPing})))
	f.Add(rawFrame([]byte("not json at all")))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, n, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < frameHeaderBytes || n > len(data) {
			t.Fatalf("decoded frame claims %d bytes of %d", n, len(data))
		}
		// Whatever decoded must survive a re-encode/decode cycle.
		frame, err := encodeFrame(&msg)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		if _, _, err := DecodeFrame(frame); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
	})
}

func mustFrame(f *testing.F, m *Message) []byte {
	f.Helper()
	frame, err := encodeFrame(m)
	if err != nil {
		f.Fatal(err)
	}
	return frame
}
