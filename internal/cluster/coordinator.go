package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/obslog"
	"repro/internal/topology"
)

// CoordinatorOptions tunes the control plane. The zero value is usable:
// a silent logger, seed 0, and production-shaped timeouts.
type CoordinatorOptions struct {
	// Seed parameterizes the rendezvous placement. Any fixed value is
	// fine; it exists so tests can pin interesting assignments.
	Seed uint64
	// Log receives membership and rebalance events. Zero value is silent.
	Log obslog.Logger
	// HeartbeatTimeout declares a worker dead when no frame (heartbeats
	// included) arrives for this long. Default 5s.
	HeartbeatTimeout time.Duration
	// DispatchTimeout bounds how long one round may chase workers
	// (including re-dispatch after a worker death) before the
	// coordinator solves it locally. Default 15s.
	DispatchTimeout time.Duration
	// Epoch is the fencing epoch of the leader lease this coordinator
	// dispatches under, stamped on every welcome/assign/round frame.
	// Workers reject frames below the newest epoch they have seen, so a
	// deposed leader's dispatches bounce instead of double-deciding.
	// Zero means "no lease" (the pre-replication single-leader mode).
	Epoch uint64
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.DispatchTimeout <= 0 {
		o.DispatchTimeout = 15 * time.Second
	}
	return o
}

// Coordinator owns cluster membership and dispatches round solves to
// workers. It implements admission.Executor, so plugging it into
// DomainConfig.Executor is the whole integration: the engine keeps all
// state and the WAL; only the pure solve call leaves the process.
//
// Losing a worker mid-round is safe by construction: the round's inputs
// are immutable for the duration of the call (the engine holds its
// domain lock), so the coordinator just re-dispatches them to the new
// rendezvous owner — or, past DispatchTimeout, solves locally — and the
// decision is bit-identical either way.
type Coordinator struct {
	opts   CoordinatorOptions
	local  *SolverHost
	nextID atomic.Uint64
	fenced atomic.Bool // a worker saw a newer epoch; dispatching must stop

	mu      sync.Mutex
	specs   map[string]DomainSpec
	members map[string]*memberConn
	watch   chan struct{} // closed and replaced on every membership change
	ln      net.Listener
	closed  bool
	done    chan struct{} // stops the liveness sweeper
}

// memberConn is one live worker connection.
type memberConn struct {
	id   string
	conn net.Conn

	wmu sync.Mutex // serializes frame writes (assign-before-round ordering)

	mu       sync.Mutex
	pending  map[uint64]chan *Message
	assigned map[string]bool
	lastSeen time.Time
	dead     chan struct{} // closed when the member is removed
}

// NewCoordinator builds a coordinator with no members and no domains.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		opts:    opts.withDefaults(),
		local:   NewSolverHost(),
		specs:   map[string]DomainSpec{},
		members: map[string]*memberConn{},
		watch:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.sweep()
	return c
}

// RegisterDomain captures a domain's config for the wire and for the
// coordinator's local-fallback solver. Call it with the same name and
// config passed to engine.AddDomain, before the first round.
func (c *Coordinator) RegisterDomain(name string, dc admission.DomainConfig) error {
	spec, err := NewDomainSpec(name, dc)
	if err != nil {
		return err
	}
	if err := c.local.Register(spec); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cluster: coordinator closed")
	}
	c.specs[spec.Name] = spec
	return nil
}

// Listen accepts worker connections on addr ("host:port"; port 0 picks a
// free one) and returns the bound address.
func (c *Coordinator) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cluster: listen: %w", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("cluster: coordinator closed")
	}
	c.ln = ln
	c.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.AddConn(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// AddConn adopts an established connection (TCP from Listen, or one end
// of a net.Pipe for loopback workers) and runs the join handshake in the
// background.
func (c *Coordinator) AddConn(conn net.Conn) {
	go func() {
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		hello, err := readFrame(conn)
		if err != nil || hello.Type != MsgHello || hello.Worker == "" {
			c.opts.Log.Warn().Err(err).Msg("cluster: rejected connection: bad hello")
			conn.Close()
			return
		}
		conn.SetReadDeadline(time.Time{})
		m := &memberConn{
			id:       hello.Worker,
			conn:     conn,
			pending:  map[uint64]chan *Message{},
			assigned: map[string]bool{},
			lastSeen: time.Now(),
			dead:     make(chan struct{}),
		}
		if err := m.send(&Message{Type: MsgWelcome, Worker: hello.Worker, Epoch: c.opts.Epoch}); err != nil {
			conn.Close()
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		if old := c.members[m.id]; old != nil {
			// A reconnect with the same ID supersedes the stale conn.
			c.dropLocked(old)
		}
		c.members[m.id] = m
		c.bumpWatchLocked()
		c.mu.Unlock()
		c.opts.Log.Info().Str("worker", m.id).Msg("worker joined")
		c.readLoop(m)
	}()
}

// readLoop drains one member's frames until the connection dies.
func (c *Coordinator) readLoop(m *memberConn) {
	defer c.remove(m, "connection lost")
	for {
		msg, err := readFrame(m.conn)
		if err != nil {
			return
		}
		if msg.Type == MsgFenced && !c.fenced.Swap(true) {
			c.opts.Log.Error().Str("worker", m.id).Uint64("epoch", c.opts.Epoch).
				Uint64("newer", msg.Epoch).
				Msg("coordinator fenced: worker rejected dispatch from a stale leader epoch")
		}
		m.mu.Lock()
		m.lastSeen = time.Now()
		if msg.Type == MsgReply || msg.Type == MsgFenced {
			if ch := m.pending[msg.ID]; ch != nil {
				delete(m.pending, msg.ID)
				mm := msg
				ch <- &mm
			}
		}
		m.mu.Unlock()
	}
}

// remove retires a member: membership shrinks, waiters on the member's
// dead channel (in-flight rounds) wake up and re-dispatch.
func (c *Coordinator) remove(m *memberConn, why string) {
	c.mu.Lock()
	if c.members[m.id] != m {
		c.mu.Unlock()
		return // already superseded or removed
	}
	delete(c.members, m.id)
	c.dropLocked(m)
	c.bumpWatchLocked()
	n := len(c.members)
	c.mu.Unlock()
	c.opts.Log.Warn().Str("worker", m.id).Str("reason", why).Int("members", n).
		Msg("worker left; rebalancing its domains to surviving workers")
}

// dropLocked closes a member's resources. Caller holds c.mu.
func (c *Coordinator) dropLocked(m *memberConn) {
	m.conn.Close()
	m.mu.Lock()
	select {
	case <-m.dead:
	default:
		close(m.dead)
	}
	m.mu.Unlock()
}

func (c *Coordinator) bumpWatchLocked() {
	close(c.watch)
	c.watch = make(chan struct{})
}

// sweep declares silent members dead on heartbeat timeout.
func (c *Coordinator) sweep() {
	t := time.NewTicker(c.opts.HeartbeatTimeout / 2)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-c.opts.HeartbeatTimeout)
		c.mu.Lock()
		var stale []*memberConn
		for _, m := range c.members {
			m.mu.Lock()
			if m.lastSeen.Before(cutoff) {
				stale = append(stale, m)
			}
			m.mu.Unlock()
		}
		c.mu.Unlock()
		for _, m := range stale {
			// Closing the conn makes readLoop exit, which removes the
			// member and wakes its in-flight rounds.
			c.opts.Log.Warn().Str("worker", m.id).Dur("timeout", c.opts.HeartbeatTimeout).
				Msg("worker heartbeat timed out")
			m.conn.Close()
		}
	}
}

// Members returns the live worker IDs, sorted.
func (c *Coordinator) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// WaitMembers blocks until at least n workers are live or ctx expires.
func (c *Coordinator) WaitMembers(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		cnt, w := len(c.members), c.watch
		c.mu.Unlock()
		if cnt >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %d workers (have %d): %w", n, cnt, ctx.Err())
		case <-w:
		}
	}
}

// owner resolves the domain's current rendezvous owner, or nil when no
// workers are live.
func (c *Coordinator) owner(domain string) *memberConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	id, ok := placeDomain(c.opts.Seed, domain, ids)
	if !ok {
		return nil
	}
	return c.members[id]
}

// OwnerOf reports the live member the rendezvous placement currently
// assigns the domain to ("", false when no workers are live). Diagnostic:
// placement is resolved fresh on every dispatch, so the answer is only as
// durable as the membership behind it.
func (c *Coordinator) OwnerOf(domain string) (string, bool) {
	m := c.owner(domain)
	if m == nil {
		return "", false
	}
	return m.id, true
}

// ErrFenced reports that a worker rejected this coordinator's dispatch
// because a newer leader epoch is active. There is deliberately no local
// fallback on this path: a fenced leader deciding rounds on its own is
// exactly the split brain fencing exists to prevent.
var ErrFenced = fmt.Errorf("cluster: coordinator fenced: a newer leader epoch is active")

// Fenced reports whether a worker has rejected this coordinator as stale.
func (c *Coordinator) Fenced() bool { return c.fenced.Load() }

// SolveRound implements admission.Executor: dispatch the round to the
// domain's rendezvous owner, re-dispatching on worker death, and solve
// locally if no worker answers within DispatchTimeout. Every path yields
// the bit-identical decision because the solve is a pure function of the
// arguments (plus the domain spec both sides hold) — except fencing:
// once any worker reports a newer leader epoch, SolveRound fails fast
// with ErrFenced and never solves locally.
func (c *Coordinator) SolveRound(domain string, seq uint64, events []topology.Event, tenants []core.TenantSpec) (*core.Decision, error) {
	deadline := time.Now().Add(c.opts.DispatchTimeout)
	for attempt := 0; ; attempt++ {
		if c.fenced.Load() {
			return nil, ErrFenced
		}
		m := c.owner(domain)
		if m == nil || time.Now().After(deadline) {
			c.opts.Log.Warn().Str("domain", domain).Uint64("seq", seq).Int("attempt", attempt).
				Msg("no worker answered in time; solving round locally")
			return c.local.Solve(domain, events, tenants)
		}
		if attempt > 0 {
			c.opts.Log.Info().Str("domain", domain).Uint64("seq", seq).Str("worker", m.id).
				Msg("re-dispatching in-flight round after rebalance")
		}
		dec, err, retry := c.dispatch(m, domain, seq, events, tenants, deadline)
		if !retry {
			return dec, err
		}
	}
}

// dispatch sends one round to one member and waits for the reply. retry
// is true when the member died or timed out and the caller should pick a
// new owner; a solver error is deterministic and is returned as final.
func (c *Coordinator) dispatch(m *memberConn, domain string, seq uint64, events []topology.Event, tenants []core.TenantSpec, deadline time.Time) (dec *core.Decision, err error, retry bool) {
	// Lazily install the domain on this worker. The assign frame goes
	// down the same ordered connection as the round, so it always lands
	// first.
	m.mu.Lock()
	needAssign := !m.assigned[domain]
	if needAssign {
		m.assigned[domain] = true
	}
	m.mu.Unlock()
	if needAssign {
		c.mu.Lock()
		spec, ok := c.specs[domain]
		c.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("cluster: domain %q not registered with coordinator", domain), false
		}
		if err := m.send(&Message{Type: MsgAssign, Spec: &spec, Epoch: c.opts.Epoch}); err != nil {
			m.conn.Close()
			return nil, nil, true
		}
	}

	id := c.nextID.Add(1)
	ch := make(chan *Message, 1)
	m.mu.Lock()
	m.pending[id] = ch
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
	}()

	msg := &Message{Type: MsgRound, ID: id, Domain: domain, Seq: seq, Events: events, Tenants: tenants, Epoch: c.opts.Epoch}
	if err := m.send(msg); err != nil {
		m.conn.Close()
		return nil, nil, true
	}

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case reply := <-ch:
		if reply.Type == MsgFenced {
			return nil, ErrFenced, false
		}
		if reply.Err != "" {
			return nil, fmt.Errorf("cluster: worker %s: %s", m.id, reply.Err), false
		}
		if reply.Decision == nil {
			return nil, fmt.Errorf("cluster: worker %s: reply without decision", m.id), false
		}
		return reply.Decision, nil, false
	case <-m.dead:
		return nil, nil, true
	case <-timer.C:
		// The worker is unresponsive for this round; the deadline check
		// in SolveRound turns this retry into a local solve.
		return nil, nil, true
	}
}

// send writes one frame; safe for concurrent use.
func (m *memberConn) send(msg *Message) error {
	frame, err := encodeFrame(msg)
	if err != nil {
		return err
	}
	m.wmu.Lock()
	defer m.wmu.Unlock()
	_, err = m.conn.Write(frame)
	return err
}

// Close shuts the listener and every worker connection down.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	ln := c.ln
	members := make([]*memberConn, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, m)
	}
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, m := range members {
		m.conn.Close()
	}
	return nil
}
