package cluster

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/topology"
)

// The distributed determinism pin: driving the engine with its solves
// dispatched over the wire — any worker count, and across a mid-run
// worker loss — must reproduce the single-process decision trace bit for
// bit. The drive protocol and helpers mirror the admission package's
// engine-vs-serial equality test so the two pins compose: serial ==
// single-process engine == cluster engine.

const equalityEpochs = 10

func ciSized(s scenario.Spec) scenario.Spec {
	if s.Tenants > 4 {
		s.Tenants = 4
	}
	s.Epochs = equalityEpochs
	if s.Arrivals.Kind == scenario.FlashCrowd {
		s.Arrivals.SpikeEpoch = 4
		s.Arrivals.SpikeSize = 2
	}
	return s
}

// driftView is the same deterministic forecaster stand-in the admission
// equality test uses: (λ̂, σ̂) as a pure function of (name, epoch).
func driftView(name string, sla slice.SLA, t int) (lambdaHat, sigma float64) {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	phase := float64(h%97) + 0.7*float64(t)
	frac := 0.25 + 0.2*(math.Sin(phase)+1)/2
	return frac * sla.RateMbps, 0.08 + 0.04*(math.Cos(phase)+1)/2
}

type refRequest struct {
	name    string
	sla     slice.SLA
	arrival int
}

func requestsOf(cfg sim.Config) []refRequest {
	reqs := make([]refRequest, len(cfg.Slices))
	for i, sp := range cfg.Slices {
		sla := slice.SLA{Template: sp.Template, MeanMbps: sp.MeanMbps, Duration: sp.Duration}.
			WithPenaltyFactor(sp.PenaltyFactor)
		reqs[i] = refRequest{name: sp.Name, sla: sla, arrival: sp.ArrivalEpoch}
	}
	return reqs
}

func fingerprint(epoch int, names []string, dec *core.Decision) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d exp=%.4f:", epoch, dec.Revenue())
	for i, name := range names {
		if i < len(dec.Accepted) && dec.Accepted[i] {
			fmt.Fprintf(&b, " %s@cu%d%v", name, dec.CU[i], dec.PathIdx[i])
		}
	}
	return b.String()
}

func firstDiff(want, got []string) string {
	for i := range want {
		if i >= len(got) || want[i] != got[i] {
			g := "<missing>"
			if i < len(got) {
				g = got[i]
			}
			return fmt.Sprintf("epoch %d:\n  single-process: %s\n  cluster:        %s", i, want[i], g)
		}
	}
	return ""
}

func slaOf(reqs []refRequest, name string) slice.SLA {
	for _, r := range reqs {
		if r.name == name {
			return r.sla
		}
	}
	return slice.SLA{}
}

// engineReplay drives the full admission protocol through an engine whose
// default domain may (exec != nil) route solves through the cluster.
// onEpoch runs at the top of each epoch — the kill hook.
func engineReplay(t *testing.T, cfg sim.Config, reqs []refRequest, algorithm string, reoffer bool, exec admission.Executor, onEpoch func(epoch int)) []string {
	t.Helper()
	e := admission.New(admission.Config{QueueDepth: 4 * len(reqs)})
	dc := admission.DomainConfig{Net: cfg.Net, KPaths: cfg.KPaths, Algorithm: algorithm, Executor: exec}
	if err := e.AddDomain("", dc); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	sched, err := topology.NewSchedule(cfg.Net, cfg.Events)
	if err != nil {
		t.Fatal(err)
	}
	sortedEvents := sched.Events()

	type live struct {
		req refRequest
		tk  *admission.Ticket
	}
	var inflight []live
	var lines []string
	for epoch := 0; epoch < equalityEpochs; epoch++ {
		if onEpoch != nil {
			onEpoch(epoch)
		}
		var fire []topology.Event
		for _, ev := range sortedEvents {
			if ev.Epoch == epoch {
				fire = append(fire, ev)
			}
		}
		if len(fire) > 0 {
			if err := e.ApplyTopology("", fire); err != nil {
				t.Fatal(err)
			}
		}
		var offer []refRequest
		for _, r := range reqs {
			if r.arrival == epoch {
				offer = append(offer, r)
			}
		}
		tks := make([]*admission.Ticket, len(offer))
		var wg sync.WaitGroup
		for i := range offer {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tk, err := e.Submit(admission.Request{Name: offer[i].name, SLA: offer[i].sla})
				if err != nil {
					t.Errorf("submit %s: %v", offer[i].name, err)
					return
				}
				tks[i] = tk
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("epoch %d: submission failed", epoch)
		}
		for i := range offer {
			inflight = append(inflight, live{req: offer[i], tk: tks[i]})
		}

		committed, err := e.Committed("")
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range committed {
			lh, sg := driftView(name, slaOf(reqs, name), epoch)
			if err := e.UpdateForecast("", name, lh, sg); err != nil {
				t.Fatal(err)
			}
		}
		r, err := e.DecideRound("")
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, fingerprint(epoch, r.Names, r.Decision))

		var still []live
		for _, lv := range inflight {
			out, ok := lv.tk.Outcome()
			if !ok {
				t.Fatalf("epoch %d: ticket %s undecided after round", epoch, lv.req.name)
			}
			if !out.Admitted && reoffer {
				tk, err := e.Submit(admission.Request{Name: lv.req.name, SLA: lv.req.sla})
				if err != nil {
					t.Fatalf("re-offer %s: %v", lv.req.name, err)
				}
				still = append(still, live{req: lv.req, tk: tk})
			}
		}
		inflight = still
		if _, err := e.Advance(""); err != nil {
			t.Fatal(err)
		}
	}
	return lines
}

// startCluster brings up a coordinator with n loopback workers and the
// default domain registered, and waits for full membership.
func startCluster(t *testing.T, cfg sim.Config, algorithm string, n int) (*Coordinator, map[string]func()) {
	t.Helper()
	coord := NewCoordinator(CoordinatorOptions{
		Seed:             42,
		HeartbeatTimeout: time.Minute, // kills in this test are explicit
		DispatchTimeout:  30 * time.Second,
	})
	t.Cleanup(func() { coord.Close() })
	dc := admission.DomainConfig{Net: cfg.Net, KPaths: cfg.KPaths, Algorithm: algorithm}
	if err := coord.RegisterDomain("", dc); err != nil {
		t.Fatal(err)
	}
	stops := map[string]func(){}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		stops[id] = StartLoopbackWorker(coord, id, testLogger(t))
	}
	t.Cleanup(func() {
		for _, stop := range stops {
			stop()
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.WaitMembers(ctx, n); err != nil {
		t.Fatal(err)
	}
	return coord, stops
}

// waitMembersAtMost polls until membership has shrunk to at most n.
func waitMembersAtMost(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(c.Members()) > n {
		if time.Now().After(deadline) {
			t.Fatalf("membership stuck at %v, want <= %d", c.Members(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterMatchesSingleProcess is the tentpole acceptance gate: on
// three archetypes (steady drift, flash-crowd churn, and a topology
// outage) the cluster path at worker counts 1, 2 and 4 reproduces the
// single-process decision trace exactly — including across a worker
// killed mid-run at epoch 5, which forces a rebalance of the domain onto
// a surviving worker with committed tenants and accumulated topology
// events in play.
func TestClusterMatchesSingleProcess(t *testing.T) {
	for _, name := range []string{"diurnal-drift", "flash-crowd", "outage"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := ciSized(archetypeByName(t, name))
			cfg, err := spec.Compile(42)
			if err != nil {
				t.Fatal(err)
			}
			reqs := requestsOf(cfg)
			want := engineReplay(t, cfg, reqs, spec.Algorithm, spec.ReofferPending, nil, nil)
			for _, workers := range []int{1, 2, 4} {
				coord, stops := startCluster(t, cfg, spec.Algorithm, workers)
				kill := func(epoch int) {
					if workers < 2 || epoch != equalityEpochs/2 {
						return
					}
					// Kill whichever worker owns the domain so the
					// rebalance genuinely moves warm state.
					owner, ok := coord.OwnerOf(admission.DefaultDomain)
					if !ok {
						t.Fatal("no owner for default domain")
					}
					stop := stops[owner]
					if stop == nil {
						t.Fatalf("owner %q has no stop handle", owner)
					}
					delete(stops, owner)
					stop()
					waitMembersAtMost(t, coord, workers-1)
				}
				got := engineReplay(t, cfg, reqs, spec.Algorithm, spec.ReofferPending, coord, kill)
				if diff := firstDiff(want, got); diff != "" {
					t.Fatalf("workers=%d diverged from single-process engine:\n%s", workers, diff)
				}
			}
		})
	}
}

func archetypeByName(t *testing.T, name string) scenario.Spec {
	t.Helper()
	for _, s := range scenario.Archetypes() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("unknown archetype %q", name)
	return scenario.Spec{}
}
