package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The wire framing is the WAL's: a fixed header of uint32 payload length
// plus uint32 CRC-32C (both little-endian) followed by a JSON payload.
// The only difference is the failure contract: a WAL torn tail is
// expected crash residue, while a bad frame on a live TCP stream is a
// protocol violation that kills the connection.

// ErrBadFrame marks bytes that do not form a whole valid frame: short
// header, oversized length, CRC mismatch, or a payload that is not a
// message.
var ErrBadFrame = errors.New("cluster: torn or corrupt frame")

// maxFrameBytes bounds a frame's payload. Assign messages carry a whole
// topology as JSON, so the cap is generous; anything larger is a corrupt
// length field.
const maxFrameBytes = 64 << 20

// frameHeaderBytes is the fixed prefix size.
const frameHeaderBytes = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame renders one message as a framed byte slice.
func encodeFrame(m *Message) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode message: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return nil, fmt.Errorf("cluster: message payload %d bytes exceeds cap %d", len(payload), maxFrameBytes)
	}
	frame := make([]byte, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderBytes:], payload)
	return frame, nil
}

// DecodeFrame decodes the frame at the head of buf, returning the message
// and the frame's total size. io.EOF means buf is empty; ErrBadFrame
// means the bytes present do not form a whole valid frame. It never
// panics on any input (FuzzClusterFrameDecode).
func DecodeFrame(buf []byte) (Message, int, error) {
	if len(buf) == 0 {
		return Message{}, 0, io.EOF
	}
	if len(buf) < frameHeaderBytes {
		return Message{}, 0, ErrBadFrame
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxFrameBytes {
		return Message{}, 0, ErrBadFrame
	}
	end := frameHeaderBytes + int(n)
	if len(buf) < end {
		return Message{}, 0, ErrBadFrame
	}
	payload := buf[frameHeaderBytes:end]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[4:8]) {
		return Message{}, 0, ErrBadFrame
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return Message{}, 0, ErrBadFrame
	}
	return m, end, nil
}

// readFrame reads exactly one frame from the stream. io.ReadFull never
// over-reads, so interleaving callers on one conn stay frame-aligned. A
// clean EOF between frames surfaces as io.EOF; a mid-frame EOF as
// io.ErrUnexpectedEOF; a CRC or length violation as ErrBadFrame.
func readFrame(r io.Reader) (Message, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.EOF
		}
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameBytes {
		return Message{}, ErrBadFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.ErrUnexpectedEOF
		}
		return Message{}, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return Message{}, ErrBadFrame
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return Message{}, ErrBadFrame
	}
	return m, nil
}
