package cluster

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/slice"
	"repro/internal/topology"
)

func testDomainConfig() admission.DomainConfig {
	return admission.DomainConfig{Net: topology.Testbed(), Algorithm: "direct"}
}

func testTenants() []core.TenantSpec {
	sla := slice.SLA{Template: slice.Table1(slice.EMBB).WithStd(10), MeanMbps: 15, Duration: 3}
	return []core.TenantSpec{
		{Name: "t0", SLA: sla, LambdaHat: sla.RateMbps, Sigma: 1},
		{Name: "t1", SLA: sla, LambdaHat: sla.RateMbps, Sigma: 1},
	}
}

// blackHoleWorker joins the cluster correctly but swallows every round it
// is sent — the shape of a worker that hangs (or is SIGKILLed after
// receiving a dispatch but before replying). roundSeen fires once when
// the first round lands.
func blackHoleWorker(t *testing.T, c *Coordinator, id string) (roundSeen <-chan struct{}, kill func()) {
	t.Helper()
	server, client := net.Pipe()
	c.AddConn(server)
	seen := make(chan struct{})
	go func() {
		frame, err := encodeFrame(&Message{Type: MsgHello, Worker: id})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := client.Write(frame); err != nil {
			return
		}
		fired := false
		for {
			msg, err := readFrame(client)
			if err != nil {
				return
			}
			if msg.Type == MsgRound && !fired {
				fired = true
				close(seen)
			}
		}
	}()
	return seen, func() {
		server.Close()
		client.Close()
	}
}

// TestInFlightRoundRedispatchedOnWorkerLoss pins the rebalance contract
// at its sharpest point: a round already dispatched to a worker that
// dies without replying is re-dispatched to the surviving worker and
// still yields the exact decision a local solve produces — no loss, no
// reorder, no divergence.
func TestInFlightRoundRedispatchedOnWorkerLoss(t *testing.T) {
	dc := testDomainConfig()
	tenants := testTenants()

	// Pick a seed under which the black hole owns the domain, so the
	// first dispatch is guaranteed to hit the worker that will die.
	seed := uint64(0)
	for ; ; seed++ {
		owner, _ := placeDomain(seed, admission.DefaultDomain, []string{"blackhole", "real"})
		if owner == "blackhole" {
			break
		}
	}

	coord := NewCoordinator(CoordinatorOptions{
		Seed:             seed,
		Log:              testLogger(t),
		HeartbeatTimeout: time.Minute, // the kill below is explicit
		DispatchTimeout:  30 * time.Second,
	})
	defer coord.Close()
	if err := coord.RegisterDomain("", dc); err != nil {
		t.Fatal(err)
	}
	stopReal := StartLoopbackWorker(coord, "real", testLogger(t))
	defer stopReal()
	roundSeen, kill := blackHoleWorker(t, coord, "blackhole")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.WaitMembers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if owner, _ := coord.OwnerOf(admission.DefaultDomain); owner != "blackhole" {
		t.Fatalf("setup: expected blackhole to own the domain, got %q", owner)
	}

	type result struct {
		dec *core.Decision
		err error
	}
	done := make(chan result, 1)
	go func() {
		dec, err := coord.SolveRound(admission.DefaultDomain, 1, nil, tenants)
		done <- result{dec, err}
	}()

	select {
	case <-roundSeen:
	case <-time.After(10 * time.Second):
		t.Fatal("round never reached the black-hole worker")
	}
	kill() // the worker dies with the round in flight

	var got result
	select {
	case got = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("SolveRound did not return after worker loss")
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	if owner, _ := coord.OwnerOf(admission.DefaultDomain); owner != "real" {
		t.Fatalf("domain did not rebalance to the survivor, owner=%q", owner)
	}

	// The reference: the identical pure solve, no cluster anywhere.
	host := NewSolverHost()
	spec, err := NewDomainSpec("", dc)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.Register(spec); err != nil {
		t.Fatal(err)
	}
	want, err := host.Solve(admission.DefaultDomain, nil, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.dec, want) {
		t.Fatalf("re-dispatched decision diverged:\n got: %+v\nwant: %+v", got.dec, want)
	}
}

// TestSolveRoundFallsBackLocallyWithNoWorkers pins the degraded mode: a
// coordinator with zero live workers still answers rounds (locally), so
// losing the whole worker fleet degrades throughput, never correctness.
func TestSolveRoundFallsBackLocallyWithNoWorkers(t *testing.T) {
	dc := testDomainConfig()
	coord := NewCoordinator(CoordinatorOptions{Log: testLogger(t)})
	defer coord.Close()
	if err := coord.RegisterDomain("", dc); err != nil {
		t.Fatal(err)
	}
	tenants := testTenants()
	got, err := coord.SolveRound(admission.DefaultDomain, 1, nil, tenants)
	if err != nil {
		t.Fatal(err)
	}
	host := NewSolverHost()
	spec, err := NewDomainSpec("", dc)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.Register(spec); err != nil {
		t.Fatal(err)
	}
	want, err := host.Solve(admission.DefaultDomain, nil, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("local fallback diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestHeartbeatTimeoutRemovesSilentWorker pins liveness: a worker that
// stops sending frames (without its conn dying) is swept out after
// HeartbeatTimeout and the membership watch fires.
func TestHeartbeatTimeoutRemovesSilentWorker(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{
		Log:              testLogger(t),
		HeartbeatTimeout: 150 * time.Millisecond,
	})
	defer coord.Close()

	server, client := net.Pipe()
	coord.AddConn(server)
	// Join by hand, then go silent: no pings, conn held open.
	frame, err := encodeFrame(&Message{Type: MsgHello, Worker: "mute"})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		client.Write(frame)
		for {
			if _, err := readFrame(client); err != nil {
				return
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.WaitMembers(ctx, 1); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for len(coord.Members()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("silent worker still a member after heartbeat timeout: %v", coord.Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
