// revised.go implements the warm-start half of the solver: a revised
// simplex over an explicit Basis (basic column set plus a maintained dense
// inverse B⁻¹ updated by product-form eta pivots). Where the tableau in
// lp.go rebuilds everything from a cold start, SolveFrom re-enters from a
// previous optimal basis:
//
//   - right-hand-side changes (the Benders slave rewrites only RHS per
//     iteration) leave the basis dual feasible, so a handful of dual
//     simplex pivots restore optimality;
//   - cost changes leave it primal feasible, so the primal revised simplex
//     re-optimizes directly;
//   - anything the warm path cannot certify — stale shape, a singular
//     basis, neither feasibility holding, or a failed post-solve check —
//     falls back to the cold two-phase tableau, which then recaptures the
//     basis. Warm starting is therefore always safe, merely sometimes slow.
//
// The column space matches the tableau's: structural variables 0..n-1
// followed by one marker column per row (slack for ≤, surplus for ≥, and a
// pinned pseudo-slack for = rows that may sit in the basis of a redundant
// row at level zero but never enters a pivot). Unlike the tableau, rows are
// kept in the caller's orientation — no sign flips — so duals and Farkas
// rays read off B⁻¹ directly.
package lp

import "math"

// Basis is resumable solver state: the basic column set of a previous
// solve over the same problem shape, plus the maintained inverse. The zero
// value is an empty basis; SolveFrom on one cold-starts and captures. A
// Basis belongs to one Problem structure (same variable and row counts,
// same senses) whose RHS and costs may change between solves; it is not
// safe for concurrent use.
type Basis struct {
	m, n int         // shape (rows, structural variables) the basis was taken on
	cols []int       // basic column per row position: j < n structural, n+r marker
	binv [][]float64 // dense B⁻¹, maintained by eta updates; nil ⇒ refactorize
	etas int         // eta updates since the last full refactorization
}

// Warm reports whether the basis holds resumable state matching p's shape.
func (b *Basis) Warm(p *Problem) bool {
	return b != nil && b.m == len(p.rows) && b.n == len(p.cost) && len(b.cols) == b.m
}

// Reset discards all state so the next SolveFrom cold-starts.
func (b *Basis) Reset() {
	b.m, b.n, b.cols, b.binv, b.etas = 0, 0, nil, nil, 0
}

// capture stores the final basis of a cold tableau solve. Rows that ended
// on a virtual artificial (redundant rows) are mapped to their marker
// column; if that marker is already basic elsewhere the resulting matrix is
// singular and the next warm attempt will detect it and fall back.
func (b *Basis) capture(t *tableau) {
	b.m, b.n = t.m, t.n
	b.cols = make([]int, t.m)
	for i, c := range t.basis {
		if c >= t.width {
			c = t.n + i
		}
		b.cols[i] = c
	}
	b.binv = nil
	b.etas = 0
}

// SolveFrom solves the problem starting from a previous basis, updating
// basis in place so the next call re-enters from this solve's endpoint.
// A nil basis is identical to Solve. Results are exactly those Solve would
// produce (same statuses, duals oriented the same way, Farkas rays valid
// for the same certificate check); only the pivot path differs.
func (p *Problem) SolveFrom(basis *Basis) (*Solution, error) {
	if basis == nil {
		return p.Solve()
	}
	if basis.Warm(p) {
		if sol, ok := p.solveWarm(basis); ok {
			return sol, nil
		}
	}
	return p.solveCold(basis)
}

// How many eta updates B⁻¹ accumulates before a full refactorization
// clears the compounded roundoff.
const refactorEvery = 64

// Reduced-cost slack accepted when testing whether a stale basis is still
// dual feasible; looser than costTol so harmless drift from the previous
// solve does not force a cold restart.
const warmDualTol = 1e-7

// warmStatus is the outcome of one revised-simplex loop.
type warmStatus int

const (
	warmOptimal warmStatus = iota
	warmInfeasible
	warmUnbounded
	warmBail // numerical trouble or budget exhausted: fall back to cold
)

// centry is one nonzero of a structural column.
type centry struct {
	row  int
	coef float64
}

// revised is the per-solve working state of the warm-start engine. It
// mutates the Basis it was built from in place, so the caller's handle
// tracks every pivot.
type revised struct {
	p     *Problem
	m, n  int
	width int

	cola   [][]centry // column-sparse structural A, caller row orientation
	sigma  []float64  // marker coefficient per row: +1 for ≤ and =, −1 for ≥
	pinned []bool     // = rows: marker may be basic at zero but never enters
	rhs    []float64

	bs      *Basis
	inBasis []bool
	xB      []float64 // basic variable values, aligned with bs.cols
	y       []float64 // duals c_Bᵀ·B⁻¹ for the current basis
	ray     []float64 // Farkas certificate when dual simplex proves infeasible
	pivots  int
}

func newRevised(p *Problem, bs *Basis) *revised {
	m, n := len(p.rows), len(p.cost)
	r := &revised{
		p: p, m: m, n: n, width: n + m,
		cola:   make([][]centry, n),
		sigma:  make([]float64, m),
		pinned: make([]bool, m),
		rhs:    make([]float64, m),
		bs:     bs,
		xB:     make([]float64, m),
		y:      make([]float64, m),
	}
	for i, row := range p.rows {
		r.rhs[i] = row.rhs
		switch row.sense {
		case LE:
			r.sigma[i] = 1
		case GE:
			r.sigma[i] = -1
		case EQ:
			r.sigma[i] = 1
			r.pinned[i] = true
		}
		for _, tm := range row.terms {
			r.cola[tm.Var] = append(r.cola[tm.Var], centry{row: i, coef: tm.Coef})
		}
	}
	r.inBasis = make([]bool, r.width)
	for _, c := range bs.cols {
		if c >= 0 && c < r.width {
			r.inBasis[c] = true
		}
	}
	return r
}

// solveWarm attempts the revised-simplex warm path; ok == false means the
// caller must fall back to a cold solve.
func (p *Problem) solveWarm(bs *Basis) (*Solution, bool) {
	r := newRevised(p, bs)
	if !r.ensureFactorized() {
		return nil, false
	}
	r.computeXB()
	if r.pinnedViolated() {
		return nil, false
	}
	r.computeY()

	var st warmStatus
	switch {
	case r.dualFeasible():
		st = r.dualSimplex()
	case r.primalFeasible():
		st = r.primalSimplex()
	default:
		return nil, false
	}

	switch st {
	case warmOptimal:
		sol := r.optimalSolution()
		if !r.verifyOptimal(sol) {
			return nil, false
		}
		return sol, true
	case warmInfeasible:
		if !r.verifyRay() {
			return nil, false
		}
		return &Solution{Status: Infeasible, Ray: r.ray, Pivots: r.pivots}, true
	default:
		// Unbounded is rare on the workloads that warm-start (bounded
		// slave LPs); re-derive it from the cold path where the result is
		// established by the tableau's own certificates.
		return nil, false
	}
}

// pinnedViolated reports whether an equality pseudo-slack sits in the basis
// away from zero — a state the pivot rules cannot repair (it would need a
// phase-1 restart), so the warm path declines it.
func (r *revised) pinnedViolated() bool {
	for i, c := range r.bs.cols {
		if c >= r.n && r.pinned[c-r.n] && math.Abs(r.xB[i]) > feasTol {
			return true
		}
	}
	return false
}

// column applies one column of [A | markers] to a visitor.
func (r *revised) column(j int, visit func(row int, coef float64)) {
	if j < r.n {
		for _, e := range r.cola[j] {
			visit(e.row, e.coef)
		}
		return
	}
	row := j - r.n
	visit(row, r.sigma[row])
}

// colDot returns vᵀ·A_j.
func (r *revised) colDot(v []float64, j int) float64 {
	s := 0.0
	r.column(j, func(row int, coef float64) { s += v[row] * coef })
	return s
}

// ftran computes u = B⁻¹·A_j.
func (r *revised) ftran(j int, u []float64) {
	for i := range u {
		u[i] = 0
	}
	binv := r.bs.binv
	r.column(j, func(row int, coef float64) {
		for i := 0; i < r.m; i++ {
			u[i] += coef * binv[i][row]
		}
	})
}

// costOfCol is the phase-2 cost of a column (markers cost nothing).
func (r *revised) costOfCol(j int) float64 {
	if j < r.n {
		return r.p.cost[j]
	}
	return 0
}

// reducedCost returns d_j = c_j − yᵀ·A_j for the current duals.
func (r *revised) reducedCost(j int) float64 {
	return r.costOfCol(j) - r.colDot(r.y, j)
}

// ensureFactorized (re)builds B⁻¹ from the basic column set by
// Gauss–Jordan with partial pivoting; false means B is singular.
func (r *revised) ensureFactorized() bool {
	if r.bs.binv != nil {
		return true
	}
	m := r.m
	// aug = [B | I], reduced in place to [I | B⁻¹].
	aug := make([][]float64, m)
	for i := range aug {
		aug[i] = make([]float64, 2*m)
		aug[i][m+i] = 1
	}
	for k, c := range r.bs.cols {
		if c < 0 || c >= r.width {
			return false
		}
		r.column(c, func(row int, coef float64) { aug[row][k] += coef })
	}
	for k := 0; k < m; k++ {
		piv, pivAbs := -1, 1e-10
		for i := k; i < m; i++ {
			if a := math.Abs(aug[i][k]); a > pivAbs {
				piv, pivAbs = i, a
			}
		}
		if piv < 0 {
			return false
		}
		aug[k], aug[piv] = aug[piv], aug[k]
		inv := 1 / aug[k][k]
		for j := k; j < 2*m; j++ {
			aug[k][j] *= inv
		}
		for i := 0; i < m; i++ {
			if i == k || aug[i][k] == 0 {
				continue
			}
			f := aug[i][k]
			for j := k; j < 2*m; j++ {
				aug[i][j] -= f * aug[k][j]
			}
		}
	}
	binv := make([][]float64, m)
	for i := range binv {
		binv[i] = aug[i][m : 2*m : 2*m]
	}
	r.bs.binv = binv
	r.bs.etas = 0
	return true
}

// computeXB refreshes x_B = B⁻¹·b.
func (r *revised) computeXB() {
	binv := r.bs.binv
	for i := 0; i < r.m; i++ {
		s := 0.0
		for k := 0; k < r.m; k++ {
			s += binv[i][k] * r.rhs[k]
		}
		r.xB[i] = s
	}
}

// computeY refreshes y = c_Bᵀ·B⁻¹.
func (r *revised) computeY() {
	binv := r.bs.binv
	for k := 0; k < r.m; k++ {
		r.y[k] = 0
	}
	for i, c := range r.bs.cols {
		cb := r.costOfCol(c)
		if cb == 0 {
			continue
		}
		row := binv[i]
		for k := 0; k < r.m; k++ {
			r.y[k] += cb * row[k]
		}
	}
}

// dualFeasible reports d_j ≥ −tol over every enterable nonbasic column.
func (r *revised) dualFeasible() bool {
	for j := 0; j < r.width; j++ {
		if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) {
			continue
		}
		if r.reducedCost(j) < -warmDualTol {
			return false
		}
	}
	return true
}

// primalFeasible reports x_B ≥ −tol.
func (r *revised) primalFeasible() bool {
	for _, v := range r.xB {
		if v < -feasTol {
			return false
		}
	}
	return true
}

// budget mirrors the tableau's pivot limits.
func (r *revised) budget() (maxPivots, blandAfter int) {
	return 200 * (r.m + r.width + 10), 20 * (r.m + r.width + 10)
}

// pivotUpdate makes column enter basic in row leave, given u = B⁻¹·A_enter:
// an eta update of B⁻¹ and x_B, with a periodic full refactorization to
// flush accumulated roundoff. false means refactorization found B singular
// (caller bails to cold).
func (r *revised) pivotUpdate(leave, enter int, u []float64) bool {
	r.pivots++
	binv := r.bs.binv
	inv := 1 / u[leave]
	rowL := binv[leave]
	for k := 0; k < r.m; k++ {
		rowL[k] *= inv
	}
	t := r.xB[leave] * inv
	for i := 0; i < r.m; i++ {
		if i == leave {
			continue
		}
		f := u[i]
		if f == 0 {
			continue
		}
		ri := binv[i]
		for k := 0; k < r.m; k++ {
			ri[k] -= f * rowL[k]
		}
		r.xB[i] -= f * t
	}
	r.xB[leave] = t

	r.inBasis[r.bs.cols[leave]] = false
	r.inBasis[enter] = true
	r.bs.cols[leave] = enter

	r.bs.etas++
	if r.bs.etas >= refactorEvery {
		r.bs.binv = nil
		if !r.ensureFactorized() {
			return false
		}
		r.computeXB()
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis after
// a right-hand-side change: pick a row with negative x_B, pick the entering
// column by the dual ratio test (preserving d ≥ 0), pivot, repeat. No
// admissible entering column proves primal infeasibility, with the Farkas
// certificate read off the violated row of B⁻¹.
func (r *revised) dualSimplex() warmStatus {
	maxPivots, blandAfter := r.budget()
	for iter := 0; ; iter++ {
		if iter >= maxPivots {
			return warmBail
		}
		bland := iter >= blandAfter

		leave := -1
		worst := -feasTol
		for i, v := range r.xB {
			if v < worst {
				leave = i
				if bland {
					break // smallest violated row index wins
				}
				worst = v
			}
		}
		if leave < 0 {
			return warmOptimal
		}

		r.computeY()
		rho := r.bs.binv[leave]
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < r.width; j++ {
			if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) {
				continue
			}
			w := r.colDot(rho, j)
			if w >= -pivotTol {
				continue
			}
			d := math.Max(r.reducedCost(j), 0)
			ratio := d / -w
			if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && (enter < 0 || j < enter)) {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			// Row `leave` reads Σ_j w_j·x_j = x_B[leave] < 0 with w ≥ 0 over
			// every enterable column: infeasible. f = −ρ is the certificate.
			r.ray = make([]float64, r.m)
			for k := 0; k < r.m; k++ {
				r.ray[k] = -rho[k]
			}
			return warmInfeasible
		}

		u := make([]float64, r.m)
		r.ftran(enter, u)
		if math.Abs(u[leave]) <= pivotTol {
			return warmBail // B⁻¹ too stale for this pivot
		}
		if !r.pivotUpdate(leave, enter, u) {
			return warmBail
		}
	}
}

// primalSimplex re-optimizes from a primal-feasible basis after a cost
// change: standard revised primal iterations with Dantzig pricing and a
// Bland fallback.
func (r *revised) primalSimplex() warmStatus {
	maxPivots, blandAfter := r.budget()
	u := make([]float64, r.m)
	for iter := 0; ; iter++ {
		if iter >= maxPivots {
			return warmBail
		}
		bland := iter >= blandAfter

		r.computeY()
		enter := -1
		best := -costTol
		for j := 0; j < r.width; j++ {
			if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) {
				continue
			}
			d := r.reducedCost(j)
			if d < best {
				enter = j
				if bland {
					break
				}
				best = d
			}
		}
		if enter < 0 {
			return warmOptimal
		}

		r.ftran(enter, u)
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < r.m; i++ {
			if u[i] <= pivotTol {
				continue
			}
			ratio := r.xB[i] / u[i]
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && (leave < 0 || r.bs.cols[i] < r.bs.cols[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return warmUnbounded
		}
		if !r.pivotUpdate(leave, enter, u) {
			return warmBail
		}
	}
}

// optimalSolution extracts primal values, objective and duals at the
// current basis. Rows were never flipped, so duals come out already in the
// caller's orientation.
func (r *revised) optimalSolution() *Solution {
	x := make([]float64, r.n)
	obj := 0.0
	for i, c := range r.bs.cols {
		if c < r.n {
			x[c] = r.xB[i]
			obj += r.p.cost[c] * r.xB[i]
		}
	}
	r.computeY()
	dual := make([]float64, r.m)
	copy(dual, r.y)
	return &Solution{Status: Optimal, Obj: obj, X: x, Dual: dual, Pivots: r.pivots}
}

// verifyOptimal cross-checks a warm optimum the way the package tests do —
// primal feasibility row by row and strong duality — so a numerically
// degraded basis can never silently return a wrong answer; a failed check
// sends the caller to the cold path.
func (r *revised) verifyOptimal(sol *Solution) bool {
	for _, row := range r.p.rows {
		act, scale := 0.0, 1.0
		for _, tm := range row.terms {
			act += tm.Coef * sol.X[tm.Var]
			if c := math.Abs(tm.Coef); c > scale {
				scale = c
			}
		}
		switch row.sense {
		case LE:
			if act > row.rhs+feasTol*scale*10 {
				return false
			}
		case GE:
			if act < row.rhs-feasTol*scale*10 {
				return false
			}
		case EQ:
			if math.Abs(act-row.rhs) > feasTol*scale*10 {
				return false
			}
		}
	}
	dualObj := 0.0
	for i, d := range sol.Dual {
		dualObj += d * r.p.rows[i].rhs
	}
	return math.Abs(dualObj-sol.Obj) <= 1e-6*(1+math.Abs(sol.Obj))
}

// verifyRay checks the Farkas certificate exactly as callers will:
// fᵀA ≤ 0 on every structural column, sense-consistent signs, f·b > 0.
func (r *revised) verifyRay() bool {
	rb := 0.0
	for i, row := range r.p.rows {
		f := r.ray[i]
		switch row.sense {
		case LE:
			if f > 1e-7 {
				return false
			}
		case GE:
			if f < -1e-7 {
				return false
			}
		}
		rb += f * row.rhs
	}
	if rb <= 1e-9 {
		return false
	}
	for j := 0; j < r.n; j++ {
		agg := 0.0
		for _, e := range r.cola[j] {
			agg += r.ray[e.row] * e.coef
		}
		if agg > 1e-6 {
			return false
		}
	}
	return true
}
