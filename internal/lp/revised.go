// revised.go implements the warm-start half of the solver: a revised
// simplex over an explicit Basis (basic column set plus a factorized basis
// matrix — sparse LU with Forrest–Tomlin updates, see factor.go). Where the
// tableau in lp.go rebuilds everything from a cold start, SolveFrom
// re-enters from a previous optimal basis:
//
//   - right-hand-side and bound changes (the Benders slave rewrites only
//     RHS per iteration; the milp branch-and-bound rewrites only variable
//     bounds per node via SetBounds) leave the basis dual feasible, so a
//     handful of dual simplex pivots restore optimality;
//   - cost changes leave it primal feasible, so the primal revised simplex
//     re-optimizes directly;
//   - anything the warm path cannot certify — stale shape, a singular
//     basis, neither feasibility holding, or a failed post-solve check —
//     falls back to the cold two-phase tableau, which then recaptures the
//     basis. Warm starting is therefore always safe, merely sometimes slow.
//
// The column space matches the tableau's: structural variables 0..n-1
// followed by one marker column per row (slack for ≤, surplus for ≥, and a
// pinned pseudo-slack for = rows that may sit in the basis of a redundant
// row at level zero but never enters a pivot). Unlike the tableau, rows are
// kept in the caller's orientation — no sign flips — so duals and Farkas
// rays read off the factorization directly.
//
// Pricing: the dual simplex selects its leaving row by dual Devex weights
// (approximate steepest edge, updated for free from vectors the pivot
// already computes); the primal simplex prices entering columns by Devex
// reference weights. Both cut pivot counts on the larger instances without
// changing any correctness property, and both retain the Bland anti-cycling
// fallback after a degenerate-pivot budget. All scratch lives in the
// Basis-owned workspace (workspace.go): the steady-state warm solve —
// factorization reused, zero or few pivots — allocates nothing.
package lp

import "math"

// Basis is resumable solver state: the basic column set of a previous
// solve over the same problem shape, plus the factorized basis matrix and
// the reusable solver workspace. The zero value is an empty basis;
// SolveFrom on one cold-starts and captures. A Basis belongs to one Problem
// structure (same variable and row counts, same senses) whose RHS, costs
// and variable bounds may change between solves; it is not safe for
// concurrent use.
type Basis struct {
	m, n int   // shape (rows, structural variables) the basis was taken on
	cols []int // basic column per row position: j < n structural, n+r marker
	// stat records which bound each nonbasic column sits at (atLower or
	// atUpper), indexed like inBasis over [structurals | markers]. Entries
	// of basic columns are meaningless. Only consulted for problems with
	// variable bounds; zeroed (all at-lower) otherwise.
	stat []uint8
	// eng is the factorized basis matrix; nil ⇒ factorize on next use. It
	// points into ws-owned storage (ws.lu or ws.dense).
	eng factorEngine
	ws  *workspace
}

// Nonbasic bound statuses.
const (
	atLower uint8 = 0 // nonbasic at its lower bound (or at zero)
	atUpper uint8 = 1 // nonbasic at a finite upper bound
)

// Warm reports whether the basis holds resumable state matching p's shape.
func (b *Basis) Warm(p *Problem) bool {
	return b != nil && b.m == len(p.rows) && b.n == len(p.cost) && len(b.cols) == b.m
}

// Reset discards all solver state so the next SolveFrom cold-starts. The
// workspace (allocated scratch) is deliberately kept: resetting is part of
// distress recovery, and the re-solve should not re-pay allocation.
func (b *Basis) Reset() {
	b.m, b.n, b.eng = 0, 0, nil
	b.cols = b.cols[:0]
	b.stat = b.stat[:0]
}

// capture stores the final basis of a cold tableau solve. Rows that ended
// on a virtual artificial (redundant rows) are mapped to their marker
// column; if that marker is already basic elsewhere the resulting matrix is
// singular and the next warm attempt will detect it and fall back.
func (b *Basis) capture(t *tableau) {
	b.m, b.n = t.m, t.n
	b.cols = growInt(b.cols, t.m)
	b.stat = growU8(b.stat, t.width) // all nonbasic columns sit at zero
	for i, c := range t.basis {
		if c >= t.width {
			c = t.n + i
		}
		b.cols[i] = c
	}
	b.eng = nil
}

// captureBounded folds the final basis of a bound-row expansion tableau
// (see solveColdBounded) into a bounded-variable basis over the original m
// rows. A structural variable joins the basic set iff it is basic in the
// expansion with every one of its bound-row markers also basic (a nonbasic
// bound marker means that bound is tight, so the variable really sits at a
// bound); original-row markers carry over directly. Nonbasic statuses are
// read off the same markers: a tight lower-bound row (or full exclusion
// from the expanded basis, which forces x_j = 0 = lo) records atLower, a
// tight upper-bound row atUpper. Counting shows the fold yields exactly m
// columns whenever every bound row keeps one of its (variable, marker)
// pair basic — true of any nonsingular expanded basis; degenerate corners
// (redundant rows captured on their pinned marker) can still produce a
// singular set, which the next warm attempt detects and resolves with a
// cold solve. The construction reads only the deterministic tableau end
// state, so recapture is reproducible bit for bit.
func (b *Basis) captureBounded(p *Problem, t *tableau, lbRow, ubRow []int) {
	m, n := len(p.rows), len(p.cost)
	structBasic := make([]bool, n)
	markerBasic := make([]bool, t.m)
	for i, c := range t.basis {
		if c >= t.width {
			c = t.n + i // virtual artificial of a redundant row → its marker
		}
		if c < n {
			structBasic[c] = true
		} else {
			markerBasic[c-n] = true
		}
	}

	b.m, b.n = m, n
	b.cols = growInt(b.cols, m)[:0]
	b.stat = growU8(b.stat, n+m)
	for j := 0; j < n; j++ {
		lbFree := lbRow[j] < 0 || markerBasic[lbRow[j]]
		ubFree := ubRow[j] < 0 || markerBasic[ubRow[j]]
		if structBasic[j] && lbFree && ubFree {
			b.cols = append(b.cols, j)
			continue
		}
		if structBasic[j] && lbFree && !ubFree {
			b.stat[j] = atUpper
		}
	}
	for rIdx := 0; rIdx < m; rIdx++ {
		if markerBasic[rIdx] {
			b.cols = append(b.cols, n+rIdx)
		}
	}
	if len(b.cols) != m {
		b.Reset() // fold failed (degenerate expansion); next solve is cold
		return
	}
	b.eng = nil
}

// SolveFrom solves the problem starting from a previous basis, updating
// basis in place so the next call re-enters from this solve's endpoint.
// A nil basis is identical to Solve. Results are equivalent to those Solve
// would produce (same statuses, duals oriented the same way, Farkas rays
// valid for the same certificate check); only the pivot path differs.
//
// Ownership: on the warm path the returned Solution and its X/Dual/Ray
// slices are views into basis-owned buffers, valid until the next SolveFrom
// on the same basis. Callers that keep values across solves must copy them
// (every caller in this repository does).
func (p *Problem) SolveFrom(basis *Basis) (*Solution, error) {
	if basis == nil {
		return p.Solve()
	}
	if basis.Warm(p) {
		if sol, ok := p.solveWarm(basis); ok {
			return sol, nil
		}
	}
	return p.solveCold(basis)
}

// FtranBatch solves B·x_b = v_b against the basis factorization for k
// right-hand sides packed with stride m (rhs[b*m:(b+1)*m] is vector b, and
// out is laid out the same way, position-indexed like Basis.cols). The
// factors are traversed once per ftranBatchMax-sized chunk instead of once
// per vector — the batched path a shard uses to push a round's independent
// RHS vectors through one warm factorization. It requires a factorized
// basis from a previous SolveFrom on this Basis; false means no
// factorization is available (solve once first).
func (b *Basis) FtranBatch(rhs []float64, k int, out []float64) bool {
	if b == nil || b.eng == nil || k <= 0 {
		return false
	}
	m := b.m
	if len(rhs) < k*m || len(out) < k*m {
		return false
	}
	for base := 0; base < k; base += ftranBatchMax {
		c := k - base
		if c > ftranBatchMax {
			c = ftranBatchMax
		}
		b.eng.ftranBatch(rhs[base*m:(base+c)*m], c, out[base*m:(base+c)*m])
	}
	return true
}

// Reduced-cost slack accepted when testing whether a stale basis is still
// dual feasible; looser than costTol so harmless drift from the previous
// solve does not force a cold restart.
const warmDualTol = 1e-7

// warmStatus is the outcome of one revised-simplex loop.
type warmStatus int

const (
	warmOptimal warmStatus = iota
	warmInfeasible
	warmUnbounded
	warmBail // numerical trouble or budget exhausted: fall back to cold
)

// revised is the per-solve working state of the warm-start engine, a view
// assembled by workspace.prepare. It mutates the Basis it was built from in
// place, so the caller's handle tracks every pivot.
type revised struct {
	p     *Problem
	m, n  int
	width int

	ws     *workspace
	sigma  []float64 // marker coefficient per row: +1 for ≤ and =, −1 for ≥
	pinned []bool    // = rows: marker may be basic at zero but never enters
	rhs    []float64

	bs      *Basis
	inBasis []bool
	xB      []float64 // basic variable values, aligned with bs.cols
	y       []float64 // duals c_Bᵀ·B⁻¹, updated incrementally per pivot
	pivots  int
	ray     []float64 // Farkas certificate when dual simplex proves infeasible

	// Bounded-variable state: bounded mirrors p.bounded(); stat is the
	// basis' nonbasic bound statuses (nil when the basis predates the
	// problem's bounds, which sends the warm path cold to recapture).
	bounded bool
	stat    []uint8
}

// loCol/upCol return the bound range of column j: structural variables read
// the problem's bounds, markers are slacks in [0, ∞).
func (r *revised) loCol(j int) float64 {
	if r.bounded && j < r.n {
		return r.p.lo[j]
	}
	return 0
}

func (r *revised) upCol(j int) float64 {
	if r.bounded && j < r.n {
		return r.p.up[j]
	}
	return math.Inf(1)
}

// colAtUpper reports whether nonbasic column j sits at a finite upper
// bound. A stale atUpper status (the caller widened the bound to +∞
// between solves) reads as at-lower; the feasibility checks then repair or
// reject the basis as usual.
func (r *revised) colAtUpper(j int) bool {
	return r.stat != nil && r.stat[j] == atUpper && !math.IsInf(r.upCol(j), 1)
}

// valCol is the current value of nonbasic column j.
func (r *revised) valCol(j int) float64 {
	if r.colAtUpper(j) {
		return r.upCol(j)
	}
	return r.loCol(j)
}

// fixedCol reports lo == up: a fixed column never enters the basis and its
// reduced cost may take any sign without breaking dual feasibility.
func (r *revised) fixedCol(j int) bool {
	return r.bounded && j < r.n && r.p.lo[j] == r.p.up[j]
}

// solveWarm attempts the revised-simplex warm path; ok == false means the
// caller must fall back to a cold solve.
func (p *Problem) solveWarm(bs *Basis) (*Solution, bool) {
	r := bs.prepare(p)
	if r.bounded && r.stat == nil {
		return nil, false // basis predates the bounds: recapture cold
	}
	if !r.ensureFactorized() {
		return nil, false
	}
	r.computeXB()
	if r.pinnedViolated() {
		return nil, false
	}
	r.computeY()

	var st warmStatus
	switch {
	case r.dualFeasible():
		st = r.dualSimplex()
	case r.primalFeasible():
		st = r.primalSimplex()
	default:
		return nil, false
	}

	switch st {
	case warmOptimal:
		sol := r.optimalSolution()
		if !r.verifyOptimal(sol) {
			return nil, false
		}
		return sol, true
	case warmInfeasible:
		if !r.verifyRay() {
			return nil, false
		}
		sol := &r.ws.sol
		*sol = Solution{Status: Infeasible, Ray: r.ray, Pivots: r.pivots}
		return sol, true
	default:
		// Unbounded is rare on the workloads that warm-start (bounded
		// slave LPs); re-derive it from the cold path where the result is
		// established by the tableau's own certificates.
		return nil, false
	}
}

// pinnedViolated reports whether an equality pseudo-slack sits in the basis
// away from zero — a state the pivot rules cannot repair (it would need a
// phase-1 restart), so the warm path declines it.
func (r *revised) pinnedViolated() bool {
	for i, c := range r.bs.cols {
		if c >= r.n && r.pinned[c-r.n] && math.Abs(r.xB[i]) > feasTol {
			return true
		}
	}
	return false
}

// colNNZ returns the nonzero count of column j of [A | markers].
func (r *revised) colNNZ(j int) int {
	if j < 0 || j >= r.width {
		return 0
	}
	if j < r.n {
		return int(r.ws.colPtr[j+1] - r.ws.colPtr[j])
	}
	return 1
}

// colDot returns vᵀ·A_j for a row-indexed v.
func (r *revised) colDot(v []float64, j int) float64 {
	if j >= r.n {
		row := j - r.n
		return v[row] * r.sigma[row]
	}
	ws := r.ws
	s := 0.0
	for t := ws.colPtr[j]; t < ws.colPtr[j+1]; t++ {
		s += v[ws.colRow[t]] * ws.colVal[t]
	}
	return s
}

// scatterCol writes column j of [A | markers] into the row-space buffer
// dst (assumed zero) and returns it; clearCol undoes the scatter.
func (r *revised) scatterCol(j int, dst []float64) {
	if j >= r.n {
		row := j - r.n
		dst[row] += r.sigma[row]
		return
	}
	ws := r.ws
	for t := ws.colPtr[j]; t < ws.colPtr[j+1]; t++ {
		dst[ws.colRow[t]] += ws.colVal[t]
	}
}

func (r *revised) clearCol(j int, dst []float64) {
	if j >= r.n {
		dst[j-r.n] = 0
		return
	}
	ws := r.ws
	for t := ws.colPtr[j]; t < ws.colPtr[j+1]; t++ {
		dst[ws.colRow[t]] = 0
	}
}

// ftran computes u = B⁻¹·A_j into the workspace u buffer.
func (r *revised) ftran(j int) []float64 {
	ws := r.ws
	r.scatterCol(j, ws.scat)
	r.bs.eng.ftran(ws.scat, ws.u)
	r.clearCol(j, ws.scat)
	return ws.u[:r.m]
}

// btranRow computes ρ = e_posᵀ·B⁻¹ (row `pos` of the basis inverse, in the
// caller's row orientation) into the workspace rho buffer.
func (r *revised) btranRow(pos int) []float64 {
	ws := r.ws
	ws.unit[pos] = 1
	r.bs.eng.btran(ws.unit, ws.rho)
	ws.unit[pos] = 0
	return ws.rho[:r.m]
}

// costOfCol is the phase-2 cost of a column (markers cost nothing).
func (r *revised) costOfCol(j int) float64 {
	if j < r.n {
		return r.p.cost[j]
	}
	return 0
}

// reducedCost returns d_j = c_j − yᵀ·A_j for the current duals.
func (r *revised) reducedCost(j int) float64 {
	return r.costOfCol(j) - r.colDot(r.y, j)
}

// ensureFactorized (re)builds the basis factorization from the basic column
// set; false means B is singular. The engine is the sparse LU by default,
// or the dense cross-check engine under DebugForceDenseFactor.
func (r *revised) ensureFactorized() bool {
	if r.bs.eng != nil {
		return true
	}
	var eng factorEngine
	if debugDenseFactor {
		eng = &r.ws.dense
	} else {
		eng = &r.ws.lu
	}
	if !eng.refactor(r) {
		return false
	}
	r.bs.eng = eng
	return true
}

// refactorize rebuilds the factorization in place and refreshes the
// incrementally maintained vectors; false means B went singular.
func (r *revised) refactorize() bool {
	r.bs.eng = nil
	if !r.ensureFactorized() {
		return false
	}
	r.computeXB()
	r.computeY()
	return true
}

// computeXB refreshes x_B = B⁻¹·b̃, where b̃ shifts the RHS by the nonbasic
// columns pinned at nonzero bound values (b̃ = b for bound-free problems).
func (r *revised) computeXB() {
	rhs := r.rhs
	if r.bounded {
		ws := r.ws
		b := ws.brhs[:r.m]
		copy(b, r.rhs)
		for j := 0; j < r.n; j++ {
			if r.inBasis[j] {
				continue
			}
			if v := r.valCol(j); v != 0 {
				for t := ws.colPtr[j]; t < ws.colPtr[j+1]; t++ {
					b[ws.colRow[t]] -= ws.colVal[t] * v
				}
			}
		}
		rhs = b
	}
	r.bs.eng.ftran(rhs, r.xB)
}

// computeY refreshes y = c_Bᵀ·B⁻¹ exactly: scatter the basic costs into
// position space and btran them through the factorization.
func (r *revised) computeY() {
	cb := r.ws.scat[:r.m] // borrow the scatter buffer for position space
	for i, c := range r.bs.cols {
		cb[i] = r.costOfCol(c)
	}
	r.bs.eng.btran(cb, r.y)
	for i := range cb {
		cb[i] = 0
	}
}

// dualFeasible reports sign-correct reduced costs over every enterable
// nonbasic column: d_j ≥ −tol at a lower bound, d_j ≤ tol at an upper
// bound; fixed columns are feasible at any sign.
func (r *revised) dualFeasible() bool {
	for j := 0; j < r.width; j++ {
		if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) || r.fixedCol(j) {
			continue
		}
		d := r.reducedCost(j)
		if r.colAtUpper(j) {
			if d > warmDualTol {
				return false
			}
		} else if d < -warmDualTol {
			return false
		}
	}
	return true
}

// primalFeasible reports x_B within bounds (≥ −tol for bound-free problems).
func (r *revised) primalFeasible() bool {
	if !r.bounded {
		for _, v := range r.xB {
			if v < -feasTol {
				return false
			}
		}
		return true
	}
	for i, v := range r.xB {
		c := r.bs.cols[i]
		if v < r.loCol(c)-feasTol || v > r.upCol(c)+feasTol {
			return false
		}
	}
	return true
}

// budget mirrors the tableau's pivot limits.
func (r *revised) budget() (maxPivots, blandAfter int) {
	return 200 * (r.m + r.width + 10), 20 * (r.m + r.width + 10)
}

// pivotUpdate makes column enter basic in row leave, given u = B⁻¹·A_enter,
// the primal step theta (x_B ← x_B − θ·u off the pivot row), the entering
// variable's landing value, and the bound status the leaving variable
// settles at. The factorization absorbs the pivot as a Forrest–Tomlin
// update, and a periodic full refactorization flushes accumulated roundoff.
// false means refactorization found B singular (caller bails to cold).
func (r *revised) pivotUpdate(leave, enter int, u []float64, theta, enterVal float64, leaveStat uint8) bool {
	r.pivots++
	for i := 0; i < r.m; i++ {
		if i == leave {
			continue
		}
		if f := u[i]; f != 0 {
			r.xB[i] -= f * theta
		}
	}
	r.xB[leave] = enterVal

	left := r.bs.cols[leave]
	r.inBasis[left] = false
	r.inBasis[enter] = true
	r.bs.cols[leave] = enter
	if r.stat != nil {
		r.stat[left] = leaveStat
		r.stat[enter] = atLower // meaningless while basic; keep deterministic
	}

	if r.bs.eng.update(leave, u) {
		return r.refactorize()
	}
	return true
}

// applyFlips pushes nf recorded bound flips (workspace flipJ/flipDir)
// through the basis: each flipped column j moves by flipDir_j = ±(up−lo),
// so x_B ← x_B − Σ_j flipDir_j·B⁻¹·A_j. The B⁻¹ solves run through the
// engine's batched multi-RHS ftran — one factor traversal per
// ftranBatchMax columns instead of one traversal each.
func (r *revised) applyFlips(nf int) {
	ws := r.ws
	m := r.m
	for base := 0; base < nf; base += ftranBatchMax {
		k := nf - base
		if k > ftranBatchMax {
			k = ftranBatchMax
		}
		in := ws.batchIn[: k*m : k*m]
		for i := range in {
			in[i] = 0
		}
		for b := 0; b < k; b++ {
			r.scatterCol(ws.flipJ[base+b], in[b*m:(b+1)*m])
		}
		out := ws.batchOut[:k*m]
		r.bs.eng.ftranBatch(in, k, out)
		for b := 0; b < k; b++ {
			d := ws.flipDir[base+b]
			ub := out[b*m : (b+1)*m]
			for i := 0; i < m; i++ {
				if v := ub[i]; v != 0 {
					r.xB[i] -= d * v
				}
			}
			r.stat[ws.flipJ[base+b]] ^= 1
		}
	}
}

// dualSimplex restores primal feasibility from a dual-feasible basis after
// a right-hand-side (or bound) change: pick the leaving row by dual Devex
// weights (largest violation in the approximate steepest-edge norm), pick
// the entering column by the bound-flip dual ratio test, pivot, repeat.
//
// The bound-flip ratio test (BFRT) generalizes the classical dual ratio
// test to boxed columns: candidates are walked in ratio order, and a boxed
// candidate whose entire range cannot absorb the remaining violation is
// *flipped* to its opposite bound instead of entering — the violation
// shrinks, dual feasibility is untouched (the flip changes no reduced
// cost), and the walk continues until some candidate must truly enter.
// Flipped columns' B⁻¹ images are applied to x_B through one batched
// multi-RHS ftran. On bound-free problems every range is infinite, no flip
// ever fires, and the pivot sequence is identical to the classical test.
//
// No admissible entering column proves (box-)infeasibility, with the
// certificate f = −dir·ρ read off the violated row of B⁻¹ (see verifyRay).
func (r *revised) dualSimplex() warmStatus {
	maxPivots, blandAfter := r.budget()
	dw := r.ws.dwRow[:r.m]
	for i := range dw {
		dw[i] = 1
	}
	for iter := 0; ; iter++ {
		if iter >= maxPivots {
			return warmBail
		}
		bland := iter >= blandAfter

		// Leaving row: a basic variable outside its range. delta is the
		// signed violation relative to the bound it must return to.
		leave := -1
		delta := 0.0
		if bland {
			for i, v := range r.xB {
				if lo := r.loCol(r.bs.cols[i]); v < lo-feasTol {
					leave, delta = i, v-lo // smallest violated row index wins
					break
				}
				if r.bounded {
					if up := r.upCol(r.bs.cols[i]); v > up+feasTol {
						leave, delta = i, v-up
						break
					}
				}
			}
		} else {
			best := 0.0
			for i, v := range r.xB {
				d := 0.0
				if lo := r.loCol(r.bs.cols[i]); v < lo-feasTol {
					d = v - lo
				} else if r.bounded {
					if up := r.upCol(r.bs.cols[i]); v > up+feasTol {
						d = v - up
					}
				}
				if d != 0 {
					if score := d * d / dw[i]; score > best {
						best, leave, delta = score, i, d
					}
				}
			}
		}
		if leave < 0 {
			return warmOptimal
		}
		// dir orients the ratio test: +1 repairs a below-lower violation,
		// −1 an above-upper one.
		dir := 1.0
		leaveStat := atLower
		if delta > 0 {
			dir, leaveStat = -1, atUpper
		}
		target := r.xB[leave] - delta // the violated bound's value

		rho := r.btranRow(leave)

		// Collect the entering candidates and their dual ratios.
		nc := 0
		candJ, candW, candRatio := r.ws.candJ, r.ws.candW, r.ws.candRatio
		for j := 0; j < r.width; j++ {
			if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) || r.fixedCol(j) {
				continue
			}
			w := r.colDot(rho, j)
			var ratio float64
			if r.colAtUpper(j) {
				if dir*w <= pivotTol {
					continue
				}
				d := math.Max(-r.reducedCost(j), 0)
				ratio = d / (dir * w)
			} else {
				if dir*w >= -pivotTol {
					continue
				}
				d := math.Max(r.reducedCost(j), 0)
				ratio = d / -(dir * w)
			}
			candJ[nc], candW[nc], candRatio[nc] = j, w, ratio
			nc++
		}
		if nc == 0 {
			// Row `leave` pins Σ_j w_j·x_j to a value the nonbasic ranges
			// cannot absorb: infeasible. f = −dir·ρ is the certificate.
			ray := r.ws.ray[:r.m]
			for k := 0; k < r.m; k++ {
				ray[k] = -dir * rho[k]
			}
			r.ray = ray
			return warmInfeasible
		}

		// BFRT walk: repeatedly take the min-(ratio, index) candidate.
		nf := 0
		enter := -1
		wq := 0.0
		rem := delta
		for nc > 0 {
			bi := 0
			for k := 1; k < nc; k++ {
				if candRatio[k] < candRatio[bi]-1e-12 ||
					(candRatio[k] < candRatio[bi]+1e-12 && candJ[k] < candJ[bi]) {
					bi = k
				}
			}
			j, w := candJ[bi], candW[bi]
			if r.bounded {
				rng := r.upCol(j) - r.loCol(j)
				if !math.IsInf(rng, 1) && math.Abs(w)*rng < math.Abs(rem)-feasTol {
					fd := rng // at lower: flips up by the range
					if r.colAtUpper(j) {
						fd = -rng
					}
					r.ws.flipJ[nf], r.ws.flipDir[nf] = j, fd
					nf++
					rem -= w * fd
					nc--
					candJ[bi], candW[bi], candRatio[bi] = candJ[nc], candW[nc], candRatio[nc]
					continue
				}
			}
			enter, wq = j, w
			break
		}
		if nf > 0 {
			r.applyFlips(nf)
		}
		if enter < 0 {
			continue // every candidate flipped; re-select the leaving row
		}

		u := r.ftran(enter)
		alpha := u[leave]
		if math.Abs(alpha) <= pivotTol {
			return warmBail // factorization too stale for this pivot
		}

		// Incremental dual update: y ← y + (d_q/w_q)·ρ keeps reduced costs
		// current without a btran per pricing pass; computeY at every
		// refactorization flushes the drift. Bound flips never touch y.
		if step := r.reducedCost(enter) / wq; step != 0 {
			for i := 0; i < r.m; i++ {
				r.y[i] += step * rho[i]
			}
		}

		// Dual Devex weight update, free from vectors already in hand.
		// Skipped once Bland selection is active: it never reads dw again.
		if !bland {
			wr := dw[leave]
			inv2 := 1 / (alpha * alpha)
			for i := 0; i < r.m; i++ {
				if i == leave {
					continue
				}
				if ui := u[i]; ui != 0 {
					if s := ui * ui * inv2 * wr; s > dw[i] {
						dw[i] = s
					}
				}
			}
			if dw[leave] = wr * inv2; dw[leave] < 1 {
				dw[leave] = 1
			}
		}

		theta := (r.xB[leave] - target) / alpha
		if !r.pivotUpdate(leave, enter, u, theta, r.valCol(enter)+theta, leaveStat) {
			return warmBail
		}
	}
}

// primalSimplex re-optimizes from a primal-feasible basis after a cost
// change: revised primal iterations with Devex reference-weight pricing and
// a Bland fallback. With variable bounds, a column at its upper bound
// enters *downward* when its reduced cost is positive, basic variables can
// block at either end of their range, and the entering column's own range
// is a ratio-test candidate — crossing it is a bound flip with no pivot.
func (r *revised) primalSimplex() warmStatus {
	maxPivots, blandAfter := r.budget()
	dw := r.ws.dwCol[:r.width]
	for j := range dw {
		dw[j] = 1
	}
	for iter := 0; ; iter++ {
		if iter >= maxPivots {
			return warmBail
		}
		bland := iter >= blandAfter

		enter := -1
		dir := 1.0
		if bland {
			for j := 0; j < r.width; j++ {
				if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) || r.fixedCol(j) {
					continue
				}
				d := r.reducedCost(j)
				if r.colAtUpper(j) {
					if d > costTol {
						enter, dir = j, -1
						break
					}
				} else if d < -costTol {
					enter, dir = j, 1
					break
				}
			}
		} else {
			best := 0.0
			for j := 0; j < r.width; j++ {
				if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) || r.fixedCol(j) {
					continue
				}
				d := r.reducedCost(j)
				if r.colAtUpper(j) {
					if d <= costTol {
						continue
					}
				} else if d >= -costTol {
					continue
				}
				if score := d * d / dw[j]; score > best {
					best, enter = score, j
					if d > 0 {
						dir = -1
					} else {
						dir = 1
					}
				}
			}
		}
		if enter < 0 {
			return warmOptimal
		}

		u := r.ftran(enter)
		leave := -1
		leaveStat := atLower
		bestRatio := math.Inf(1)
		if r.bounded {
			// The entering column's own range blocks first when no basic
			// variable does: crossing it is a bound flip.
			bestRatio = r.upCol(enter) - r.loCol(enter)
		}
		for i := 0; i < r.m; i++ {
			du := dir * u[i]
			var ratio float64
			var st uint8
			if du > pivotTol {
				ratio = (r.xB[i] - r.loCol(r.bs.cols[i])) / du
				st = atLower
			} else if r.bounded && du < -pivotTol {
				up := r.upCol(r.bs.cols[i])
				if math.IsInf(up, 1) {
					continue
				}
				ratio = (r.xB[i] - up) / du
				st = atUpper
			} else {
				continue
			}
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && (leave < 0 || r.bs.cols[i] < r.bs.cols[leave])) {
				bestRatio, leave, leaveStat = ratio, i, st
			}
		}
		if leave < 0 {
			if math.IsInf(bestRatio, 1) {
				return warmUnbounded
			}
			// Bound flip: the entering column crosses its whole range
			// before any basic variable blocks. The basis is unchanged and
			// the objective strictly improves by |d|·range.
			theta := dir * bestRatio
			for i := 0; i < r.m; i++ {
				if v := u[i]; v != 0 {
					r.xB[i] -= v * theta
				}
			}
			r.stat[enter] ^= 1
			continue
		}
		alpha := u[leave]

		// Devex reference-weight update over the pivot row — the one
		// O(nnz) sweep Devex costs per pivot — plus the incremental dual
		// update (same formula as the dual simplex). The weight sweep is
		// skipped once Bland selection is active (it never reads dw
		// again); ρ is still needed for the dual update.
		rho := r.btranRow(leave)
		dq := r.reducedCost(enter)
		if !bland {
			gq := dw[enter]
			inv2 := 1 / (alpha * alpha)
			leaveCol := r.bs.cols[leave]
			for j := 0; j < r.width; j++ {
				if r.inBasis[j] || j == enter || (j >= r.n && r.pinned[j-r.n]) {
					continue
				}
				aj := r.colDot(rho, j)
				if aj == 0 {
					continue
				}
				if s := aj * aj * inv2 * gq; s > dw[j] {
					dw[j] = s
				}
			}
			if dw[leaveCol] = gq * inv2; dw[leaveCol] < 1 {
				dw[leaveCol] = 1
			}
		}
		if step := dq / alpha; step != 0 {
			for i := 0; i < r.m; i++ {
				r.y[i] += step * rho[i]
			}
		}

		theta := dir * bestRatio
		if !r.pivotUpdate(leave, enter, u, theta, r.valCol(enter)+theta, leaveStat) {
			return warmBail
		}
	}
}

// optimalSolution extracts primal values, objective and duals at the
// current basis into workspace-owned buffers. Rows were never flipped, so
// duals come out already in the caller's orientation. The duals are
// recomputed exactly from the factorization — not the incrementally
// updated y — so pivot-drift never reaches callers.
func (r *revised) optimalSolution() *Solution {
	ws := r.ws
	x := ws.x[:r.n]
	if r.bounded {
		for j := range x {
			if r.inBasis[j] {
				x[j] = 0
			} else {
				x[j] = r.valCol(j) // nonbasic structurals sit at a bound
			}
		}
	} else {
		for j := range x {
			x[j] = 0
		}
	}
	obj := 0.0
	for i, c := range r.bs.cols {
		if c < r.n {
			x[c] = r.xB[i]
			obj += r.p.cost[c] * r.xB[i]
		}
	}
	if r.bounded {
		for j := 0; j < r.n; j++ {
			if !r.inBasis[j] {
				if v := x[j]; v != 0 {
					obj += r.p.cost[j] * v
				}
			}
		}
	}
	r.computeY()
	dual := ws.dual[:r.m]
	copy(dual, r.y)
	sol := &ws.sol
	*sol = Solution{Status: Optimal, Obj: obj, X: x, Dual: dual, Pivots: r.pivots}
	return sol
}

// verifyOptimal cross-checks a warm optimum the way the package tests do —
// primal feasibility row by row and strong duality — so a numerically
// degraded basis can never silently return a wrong answer; a failed check
// sends the caller to the cold path.
func (r *revised) verifyOptimal(sol *Solution) bool {
	for i := range r.p.rows {
		row := &r.p.rows[i]
		act, scale := 0.0, 1.0
		for _, tm := range row.terms {
			act += tm.Coef * sol.X[tm.Var]
			if c := math.Abs(tm.Coef); c > scale {
				scale = c
			}
		}
		switch row.sense {
		case LE:
			if act > row.rhs+feasTol*scale*10 {
				return false
			}
		case GE:
			if act < row.rhs-feasTol*scale*10 {
				return false
			}
		case EQ:
			if math.Abs(act-row.rhs) > feasTol*scale*10 {
				return false
			}
		}
	}
	if r.bounded {
		for j := 0; j < r.n; j++ {
			if sol.X[j] < r.p.lo[j]-feasTol*10 || sol.X[j] > r.p.up[j]+feasTol*10 {
				return false
			}
		}
	}
	dualObj := 0.0
	for i, d := range sol.Dual {
		dualObj += d * r.p.rows[i].rhs
	}
	if r.bounded {
		// Bound duals live in the nonbasic reduced costs: strong duality
		// over a box reads Obj = y·b + Σ_{nonbasic j} d_j·x_j.
		for j := 0; j < r.n; j++ {
			if r.inBasis[j] {
				continue
			}
			if v := sol.X[j]; v != 0 {
				dualObj += r.reducedCost(j) * v
			}
		}
	}
	return math.Abs(dualObj-sol.Obj) <= 1e-6*(1+math.Abs(sol.Obj))
}

// verifyRay checks the Farkas certificate exactly as callers will:
// sense-consistent signs and, over a box, more demand than the variable
// ranges can absorb: f·b − Σ_{fᵀA_j>0} (fᵀA_j)·up_j − Σ_{fᵀA_j<0}
// (fᵀA_j)·lo_j > 0. For bound-free problems (up = ∞, lo = 0) this is the
// classical fᵀA ≤ 0 on every structural column with f·b > 0.
func (r *revised) verifyRay() bool {
	rb := 0.0
	for i := range r.p.rows {
		row := &r.p.rows[i]
		f := r.ray[i]
		switch row.sense {
		case LE:
			if f > 1e-7 {
				return false
			}
		case GE:
			if f < -1e-7 {
				return false
			}
		}
		rb += f * row.rhs
	}
	for j := 0; j < r.n; j++ {
		fa := r.colDot(r.ray, j)
		if fa > 1e-6 {
			up := r.upCol(j)
			if math.IsInf(up, 1) {
				return false
			}
			rb -= fa * up
		} else if fa < -1e-6 {
			if lo := r.loCol(j); lo > 0 {
				rb -= fa * lo
			}
		}
	}
	return rb > 1e-9
}
