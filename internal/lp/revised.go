// revised.go implements the warm-start half of the solver: a revised
// simplex over an explicit Basis (basic column set plus a factorized basis
// matrix — sparse LU with a bounded eta file, see factor.go). Where the
// tableau in lp.go rebuilds everything from a cold start, SolveFrom
// re-enters from a previous optimal basis:
//
//   - right-hand-side changes (the Benders slave rewrites only RHS per
//     iteration; the milp branch-and-bound rewrites only binary bound rows
//     per node) leave the basis dual feasible, so a handful of dual simplex
//     pivots restore optimality;
//   - cost changes leave it primal feasible, so the primal revised simplex
//     re-optimizes directly;
//   - anything the warm path cannot certify — stale shape, a singular
//     basis, neither feasibility holding, or a failed post-solve check —
//     falls back to the cold two-phase tableau, which then recaptures the
//     basis. Warm starting is therefore always safe, merely sometimes slow.
//
// The column space matches the tableau's: structural variables 0..n-1
// followed by one marker column per row (slack for ≤, surplus for ≥, and a
// pinned pseudo-slack for = rows that may sit in the basis of a redundant
// row at level zero but never enters a pivot). Unlike the tableau, rows are
// kept in the caller's orientation — no sign flips — so duals and Farkas
// rays read off the factorization directly.
//
// Pricing: the dual simplex selects its leaving row by dual Devex weights
// (approximate steepest edge, updated for free from vectors the pivot
// already computes); the primal simplex prices entering columns by Devex
// reference weights. Both cut pivot counts on the larger instances without
// changing any correctness property, and both retain the Bland anti-cycling
// fallback after a degenerate-pivot budget. All scratch lives in the
// Basis-owned workspace (workspace.go): the steady-state warm solve —
// factorization reused, zero or few pivots — allocates nothing.
package lp

import "math"

// Basis is resumable solver state: the basic column set of a previous
// solve over the same problem shape, plus the factorized basis matrix and
// the reusable solver workspace. The zero value is an empty basis;
// SolveFrom on one cold-starts and captures. A Basis belongs to one Problem
// structure (same variable and row counts, same senses) whose RHS and costs
// may change between solves; it is not safe for concurrent use.
type Basis struct {
	m, n int   // shape (rows, structural variables) the basis was taken on
	cols []int // basic column per row position: j < n structural, n+r marker
	// eng is the factorized basis matrix; nil ⇒ factorize on next use. It
	// points into ws-owned storage (ws.lu or ws.dense).
	eng factorEngine
	ws  *workspace
}

// Warm reports whether the basis holds resumable state matching p's shape.
func (b *Basis) Warm(p *Problem) bool {
	return b != nil && b.m == len(p.rows) && b.n == len(p.cost) && len(b.cols) == b.m
}

// Reset discards all solver state so the next SolveFrom cold-starts. The
// workspace (allocated scratch) is deliberately kept: resetting is part of
// distress recovery, and the re-solve should not re-pay allocation.
func (b *Basis) Reset() {
	b.m, b.n, b.eng = 0, 0, nil
	b.cols = b.cols[:0]
}

// capture stores the final basis of a cold tableau solve. Rows that ended
// on a virtual artificial (redundant rows) are mapped to their marker
// column; if that marker is already basic elsewhere the resulting matrix is
// singular and the next warm attempt will detect it and fall back.
func (b *Basis) capture(t *tableau) {
	b.m, b.n = t.m, t.n
	b.cols = growInt(b.cols, t.m)
	for i, c := range t.basis {
		if c >= t.width {
			c = t.n + i
		}
		b.cols[i] = c
	}
	b.eng = nil
}

// SolveFrom solves the problem starting from a previous basis, updating
// basis in place so the next call re-enters from this solve's endpoint.
// A nil basis is identical to Solve. Results are equivalent to those Solve
// would produce (same statuses, duals oriented the same way, Farkas rays
// valid for the same certificate check); only the pivot path differs.
//
// Ownership: on the warm path the returned Solution and its X/Dual/Ray
// slices are views into basis-owned buffers, valid until the next SolveFrom
// on the same basis. Callers that keep values across solves must copy them
// (every caller in this repository does).
func (p *Problem) SolveFrom(basis *Basis) (*Solution, error) {
	if basis == nil {
		return p.Solve()
	}
	if basis.Warm(p) {
		if sol, ok := p.solveWarm(basis); ok {
			return sol, nil
		}
	}
	return p.solveCold(basis)
}

// Reduced-cost slack accepted when testing whether a stale basis is still
// dual feasible; looser than costTol so harmless drift from the previous
// solve does not force a cold restart.
const warmDualTol = 1e-7

// warmStatus is the outcome of one revised-simplex loop.
type warmStatus int

const (
	warmOptimal warmStatus = iota
	warmInfeasible
	warmUnbounded
	warmBail // numerical trouble or budget exhausted: fall back to cold
)

// revised is the per-solve working state of the warm-start engine, a view
// assembled by workspace.prepare. It mutates the Basis it was built from in
// place, so the caller's handle tracks every pivot.
type revised struct {
	p     *Problem
	m, n  int
	width int

	ws     *workspace
	sigma  []float64 // marker coefficient per row: +1 for ≤ and =, −1 for ≥
	pinned []bool    // = rows: marker may be basic at zero but never enters
	rhs    []float64

	bs      *Basis
	inBasis []bool
	xB      []float64 // basic variable values, aligned with bs.cols
	y       []float64 // duals c_Bᵀ·B⁻¹, updated incrementally per pivot
	pivots  int
	ray     []float64 // Farkas certificate when dual simplex proves infeasible
}

// solveWarm attempts the revised-simplex warm path; ok == false means the
// caller must fall back to a cold solve.
func (p *Problem) solveWarm(bs *Basis) (*Solution, bool) {
	r := bs.prepare(p)
	if !r.ensureFactorized() {
		return nil, false
	}
	r.computeXB()
	if r.pinnedViolated() {
		return nil, false
	}
	r.computeY()

	var st warmStatus
	switch {
	case r.dualFeasible():
		st = r.dualSimplex()
	case r.primalFeasible():
		st = r.primalSimplex()
	default:
		return nil, false
	}

	switch st {
	case warmOptimal:
		sol := r.optimalSolution()
		if !r.verifyOptimal(sol) {
			return nil, false
		}
		return sol, true
	case warmInfeasible:
		if !r.verifyRay() {
			return nil, false
		}
		sol := &r.ws.sol
		*sol = Solution{Status: Infeasible, Ray: r.ray, Pivots: r.pivots}
		return sol, true
	default:
		// Unbounded is rare on the workloads that warm-start (bounded
		// slave LPs); re-derive it from the cold path where the result is
		// established by the tableau's own certificates.
		return nil, false
	}
}

// pinnedViolated reports whether an equality pseudo-slack sits in the basis
// away from zero — a state the pivot rules cannot repair (it would need a
// phase-1 restart), so the warm path declines it.
func (r *revised) pinnedViolated() bool {
	for i, c := range r.bs.cols {
		if c >= r.n && r.pinned[c-r.n] && math.Abs(r.xB[i]) > feasTol {
			return true
		}
	}
	return false
}

// colNNZ returns the nonzero count of column j of [A | markers].
func (r *revised) colNNZ(j int) int {
	if j < 0 || j >= r.width {
		return 0
	}
	if j < r.n {
		return int(r.ws.colPtr[j+1] - r.ws.colPtr[j])
	}
	return 1
}

// colDot returns vᵀ·A_j for a row-indexed v.
func (r *revised) colDot(v []float64, j int) float64 {
	if j >= r.n {
		row := j - r.n
		return v[row] * r.sigma[row]
	}
	ws := r.ws
	s := 0.0
	for t := ws.colPtr[j]; t < ws.colPtr[j+1]; t++ {
		s += v[ws.colRow[t]] * ws.colVal[t]
	}
	return s
}

// scatterCol writes column j of [A | markers] into the row-space buffer
// dst (assumed zero) and returns it; clearCol undoes the scatter.
func (r *revised) scatterCol(j int, dst []float64) {
	if j >= r.n {
		row := j - r.n
		dst[row] += r.sigma[row]
		return
	}
	ws := r.ws
	for t := ws.colPtr[j]; t < ws.colPtr[j+1]; t++ {
		dst[ws.colRow[t]] += ws.colVal[t]
	}
}

func (r *revised) clearCol(j int, dst []float64) {
	if j >= r.n {
		dst[j-r.n] = 0
		return
	}
	ws := r.ws
	for t := ws.colPtr[j]; t < ws.colPtr[j+1]; t++ {
		dst[ws.colRow[t]] = 0
	}
}

// ftran computes u = B⁻¹·A_j into the workspace u buffer.
func (r *revised) ftran(j int) []float64 {
	ws := r.ws
	r.scatterCol(j, ws.scat)
	r.bs.eng.ftran(ws.scat, ws.u)
	r.clearCol(j, ws.scat)
	return ws.u[:r.m]
}

// btranRow computes ρ = e_posᵀ·B⁻¹ (row `pos` of the basis inverse, in the
// caller's row orientation) into the workspace rho buffer.
func (r *revised) btranRow(pos int) []float64 {
	ws := r.ws
	ws.unit[pos] = 1
	r.bs.eng.btran(ws.unit, ws.rho)
	ws.unit[pos] = 0
	return ws.rho[:r.m]
}

// costOfCol is the phase-2 cost of a column (markers cost nothing).
func (r *revised) costOfCol(j int) float64 {
	if j < r.n {
		return r.p.cost[j]
	}
	return 0
}

// reducedCost returns d_j = c_j − yᵀ·A_j for the current duals.
func (r *revised) reducedCost(j int) float64 {
	return r.costOfCol(j) - r.colDot(r.y, j)
}

// ensureFactorized (re)builds the basis factorization from the basic column
// set; false means B is singular. The engine is the sparse LU by default,
// or the dense cross-check engine under DebugForceDenseFactor.
func (r *revised) ensureFactorized() bool {
	if r.bs.eng != nil {
		return true
	}
	var eng factorEngine
	if debugDenseFactor {
		eng = &r.ws.dense
	} else {
		eng = &r.ws.lu
	}
	if !eng.refactor(r) {
		return false
	}
	r.bs.eng = eng
	return true
}

// refactorize rebuilds the factorization in place and refreshes the
// incrementally maintained vectors; false means B went singular.
func (r *revised) refactorize() bool {
	r.bs.eng = nil
	if !r.ensureFactorized() {
		return false
	}
	r.computeXB()
	r.computeY()
	return true
}

// computeXB refreshes x_B = B⁻¹·b.
func (r *revised) computeXB() {
	r.bs.eng.ftran(r.rhs, r.xB)
}

// computeY refreshes y = c_Bᵀ·B⁻¹ exactly: scatter the basic costs into
// position space and btran them through the factorization.
func (r *revised) computeY() {
	cb := r.ws.scat[:r.m] // borrow the scatter buffer for position space
	for i, c := range r.bs.cols {
		cb[i] = r.costOfCol(c)
	}
	r.bs.eng.btran(cb, r.y)
	for i := range cb {
		cb[i] = 0
	}
}

// dualFeasible reports d_j ≥ −tol over every enterable nonbasic column.
func (r *revised) dualFeasible() bool {
	for j := 0; j < r.width; j++ {
		if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) {
			continue
		}
		if r.reducedCost(j) < -warmDualTol {
			return false
		}
	}
	return true
}

// primalFeasible reports x_B ≥ −tol.
func (r *revised) primalFeasible() bool {
	for _, v := range r.xB {
		if v < -feasTol {
			return false
		}
	}
	return true
}

// budget mirrors the tableau's pivot limits.
func (r *revised) budget() (maxPivots, blandAfter int) {
	return 200 * (r.m + r.width + 10), 20 * (r.m + r.width + 10)
}

// pivotUpdate makes column enter basic in row leave, given u = B⁻¹·A_enter:
// x_B is updated incrementally, the factorization absorbs the pivot as a
// bounded product-form eta, and a periodic full refactorization flushes
// accumulated roundoff. false means refactorization found B singular
// (caller bails to cold).
func (r *revised) pivotUpdate(leave, enter int, u []float64) bool {
	r.pivots++
	t := r.xB[leave] / u[leave]
	for i := 0; i < r.m; i++ {
		if i == leave {
			continue
		}
		if f := u[i]; f != 0 {
			r.xB[i] -= f * t
		}
	}
	r.xB[leave] = t

	r.inBasis[r.bs.cols[leave]] = false
	r.inBasis[enter] = true
	r.bs.cols[leave] = enter

	if r.bs.eng.update(leave, u) {
		return r.refactorize()
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis after
// a right-hand-side change: pick the leaving row by dual Devex weights
// (largest violation in the approximate steepest-edge norm), pick the
// entering column by the dual ratio test (preserving d ≥ 0), pivot, repeat.
// No admissible entering column proves primal infeasibility, with the
// Farkas certificate read off the violated row of B⁻¹.
func (r *revised) dualSimplex() warmStatus {
	maxPivots, blandAfter := r.budget()
	dw := r.ws.dwRow[:r.m]
	for i := range dw {
		dw[i] = 1
	}
	for iter := 0; ; iter++ {
		if iter >= maxPivots {
			return warmBail
		}
		bland := iter >= blandAfter

		leave := -1
		if bland {
			for i, v := range r.xB {
				if v < -feasTol {
					leave = i // smallest violated row index wins
					break
				}
			}
		} else {
			best := 0.0
			for i, v := range r.xB {
				if v < -feasTol {
					if score := v * v / dw[i]; score > best {
						best, leave = score, i
					}
				}
			}
		}
		if leave < 0 {
			return warmOptimal
		}

		rho := r.btranRow(leave)
		enter := -1
		bestRatio := math.Inf(1)
		wq := 0.0
		for j := 0; j < r.width; j++ {
			if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) {
				continue
			}
			w := r.colDot(rho, j)
			if w >= -pivotTol {
				continue
			}
			d := math.Max(r.reducedCost(j), 0)
			ratio := d / -w
			if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && (enter < 0 || j < enter)) {
				bestRatio, enter, wq = ratio, j, w
			}
		}
		if enter < 0 {
			// Row `leave` reads Σ_j w_j·x_j = x_B[leave] < 0 with w ≥ 0 over
			// every enterable column: infeasible. f = −ρ is the certificate.
			ray := r.ws.ray[:r.m]
			for k := 0; k < r.m; k++ {
				ray[k] = -rho[k]
			}
			r.ray = ray
			return warmInfeasible
		}

		u := r.ftran(enter)
		alpha := u[leave]
		if math.Abs(alpha) <= pivotTol {
			return warmBail // factorization too stale for this pivot
		}

		// Incremental dual update: y ← y + (d_q/α_q)·ρ keeps reduced costs
		// current without a btran per pricing pass; computeY at every
		// refactorization flushes the drift.
		if step := r.reducedCost(enter) / wq; step != 0 {
			for i := 0; i < r.m; i++ {
				r.y[i] += step * rho[i]
			}
		}

		// Dual Devex weight update, free from vectors already in hand.
		// Skipped once Bland selection is active: it never reads dw again.
		if !bland {
			wr := dw[leave]
			inv2 := 1 / (alpha * alpha)
			for i := 0; i < r.m; i++ {
				if i == leave {
					continue
				}
				if ui := u[i]; ui != 0 {
					if s := ui * ui * inv2 * wr; s > dw[i] {
						dw[i] = s
					}
				}
			}
			if dw[leave] = wr * inv2; dw[leave] < 1 {
				dw[leave] = 1
			}
		}

		if !r.pivotUpdate(leave, enter, u) {
			return warmBail
		}
	}
}

// primalSimplex re-optimizes from a primal-feasible basis after a cost
// change: revised primal iterations with Devex reference-weight pricing and
// a Bland fallback.
func (r *revised) primalSimplex() warmStatus {
	maxPivots, blandAfter := r.budget()
	dw := r.ws.dwCol[:r.width]
	for j := range dw {
		dw[j] = 1
	}
	for iter := 0; ; iter++ {
		if iter >= maxPivots {
			return warmBail
		}
		bland := iter >= blandAfter

		enter := -1
		if bland {
			for j := 0; j < r.width; j++ {
				if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) {
					continue
				}
				if r.reducedCost(j) < -costTol {
					enter = j
					break
				}
			}
		} else {
			best := 0.0
			for j := 0; j < r.width; j++ {
				if r.inBasis[j] || (j >= r.n && r.pinned[j-r.n]) {
					continue
				}
				d := r.reducedCost(j)
				if d >= -costTol {
					continue
				}
				if score := d * d / dw[j]; score > best {
					best, enter = score, j
				}
			}
		}
		if enter < 0 {
			return warmOptimal
		}

		u := r.ftran(enter)
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < r.m; i++ {
			if u[i] <= pivotTol {
				continue
			}
			ratio := r.xB[i] / u[i]
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && (leave < 0 || r.bs.cols[i] < r.bs.cols[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return warmUnbounded
		}
		alpha := u[leave]

		// Devex reference-weight update over the pivot row — the one
		// O(nnz) sweep Devex costs per pivot — plus the incremental dual
		// update (same formula as the dual simplex). The weight sweep is
		// skipped once Bland selection is active (it never reads dw
		// again); ρ is still needed for the dual update.
		rho := r.btranRow(leave)
		dq := r.reducedCost(enter)
		if !bland {
			gq := dw[enter]
			inv2 := 1 / (alpha * alpha)
			leaveCol := r.bs.cols[leave]
			for j := 0; j < r.width; j++ {
				if r.inBasis[j] || j == enter || (j >= r.n && r.pinned[j-r.n]) {
					continue
				}
				aj := r.colDot(rho, j)
				if aj == 0 {
					continue
				}
				if s := aj * aj * inv2 * gq; s > dw[j] {
					dw[j] = s
				}
			}
			if dw[leaveCol] = gq * inv2; dw[leaveCol] < 1 {
				dw[leaveCol] = 1
			}
		}
		if step := dq / alpha; step != 0 {
			for i := 0; i < r.m; i++ {
				r.y[i] += step * rho[i]
			}
		}

		if !r.pivotUpdate(leave, enter, u) {
			return warmBail
		}
	}
}

// optimalSolution extracts primal values, objective and duals at the
// current basis into workspace-owned buffers. Rows were never flipped, so
// duals come out already in the caller's orientation. The duals are
// recomputed exactly from the factorization — not the incrementally
// updated y — so pivot-drift never reaches callers.
func (r *revised) optimalSolution() *Solution {
	ws := r.ws
	x := ws.x[:r.n]
	for j := range x {
		x[j] = 0
	}
	obj := 0.0
	for i, c := range r.bs.cols {
		if c < r.n {
			x[c] = r.xB[i]
			obj += r.p.cost[c] * r.xB[i]
		}
	}
	r.computeY()
	dual := ws.dual[:r.m]
	copy(dual, r.y)
	sol := &ws.sol
	*sol = Solution{Status: Optimal, Obj: obj, X: x, Dual: dual, Pivots: r.pivots}
	return sol
}

// verifyOptimal cross-checks a warm optimum the way the package tests do —
// primal feasibility row by row and strong duality — so a numerically
// degraded basis can never silently return a wrong answer; a failed check
// sends the caller to the cold path.
func (r *revised) verifyOptimal(sol *Solution) bool {
	for i := range r.p.rows {
		row := &r.p.rows[i]
		act, scale := 0.0, 1.0
		for _, tm := range row.terms {
			act += tm.Coef * sol.X[tm.Var]
			if c := math.Abs(tm.Coef); c > scale {
				scale = c
			}
		}
		switch row.sense {
		case LE:
			if act > row.rhs+feasTol*scale*10 {
				return false
			}
		case GE:
			if act < row.rhs-feasTol*scale*10 {
				return false
			}
		case EQ:
			if math.Abs(act-row.rhs) > feasTol*scale*10 {
				return false
			}
		}
	}
	dualObj := 0.0
	for i, d := range sol.Dual {
		dualObj += d * r.p.rows[i].rhs
	}
	return math.Abs(dualObj-sol.Obj) <= 1e-6*(1+math.Abs(sol.Obj))
}

// verifyRay checks the Farkas certificate exactly as callers will:
// fᵀA ≤ 0 on every structural column, sense-consistent signs, f·b > 0.
func (r *revised) verifyRay() bool {
	rb := 0.0
	for i := range r.p.rows {
		row := &r.p.rows[i]
		f := r.ray[i]
		switch row.sense {
		case LE:
			if f > 1e-7 {
				return false
			}
		case GE:
			if f < -1e-7 {
				return false
			}
		}
		rb += f * row.rhs
	}
	if rb <= 1e-9 {
		return false
	}
	for j := 0; j < r.n; j++ {
		if r.colDot(r.ray, j) > 1e-6 {
			return false
		}
	}
	return true
}
