package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestSimple2D solves min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2 and
// expects the corner (2, 2).
func TestSimple2D(t *testing.T) {
	p := New()
	x := p.AddVar("x", -1)
	y := p.AddVar("y", -2)
	p.AddConstraint(LE, 4, T(x, 1), T(y, 1))
	p.AddConstraint(LE, 3, T(x, 1))
	p.AddConstraint(LE, 2, T(y, 1))

	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !almost(s.Obj, -6, 1e-9) {
		t.Errorf("obj = %v, want -6", s.Obj)
	}
	if !almost(s.X[x], 2, 1e-9) || !almost(s.X[y], 2, 1e-9) {
		t.Errorf("x = %v, want (2,2)", s.X)
	}
}

// TestEquality solves with an equality row.
func TestEquality(t *testing.T) {
	p := New()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint(EQ, 10, T(x, 1), T(y, 1))
	p.AddConstraint(GE, 3, T(x, 1))

	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almost(s.Obj, 10, 1e-9) {
		t.Errorf("obj = %v, want 10", s.Obj)
	}
	if s.X[x]+s.X[y] < 10-1e-9 || s.X[x]+s.X[y] > 10+1e-9 {
		t.Errorf("x+y = %v, want 10", s.X[x]+s.X[y])
	}
}

// TestNegativeRHS exercises the row-flip path.
func TestNegativeRHS(t *testing.T) {
	p := New()
	x := p.AddVar("x", 1)
	// -x <= -5  <=>  x >= 5
	p.AddConstraint(LE, -5, T(x, -1))
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, 5, 1e-9) {
		t.Fatalf("got %v obj %v, want optimal 5", s.Status, s.Obj)
	}
}

// TestUnbounded detects an unbounded direction.
func TestUnbounded(t *testing.T) {
	p := New()
	x := p.AddVar("x", -1)
	y := p.AddVar("y", 0)
	p.AddConstraint(GE, 1, T(x, 1), T(y, 1))
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

// TestInfeasibleFarkas checks that infeasible systems yield a valid Farkas
// certificate: ray·rhs > 0 and rayᵀA ≤ 0 columnwise (with sense-consistent
// signs folded in by the solver).
func TestInfeasibleFarkas(t *testing.T) {
	p := New()
	x := p.AddVar("x", 1)
	p.AddConstraint(GE, 5, T(x, 1))
	p.AddConstraint(LE, 3, T(x, 1))

	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
	if s.Ray == nil {
		t.Fatal("no Farkas ray returned")
	}
	checkFarkas(t, p, s.Ray)
}

// checkFarkas validates a Farkas certificate against the problem: the
// aggregated row Σ f_i·a_i must have non-positive coefficients on every
// variable while Σ f_i·rhs_i > 0, with f_i ≤ 0 on ≤ rows and f_i ≥ 0 on
// ≥ rows (equality rows are unsigned) — the same orientation the solver
// uses for duals of a minimization.
func checkFarkas(t *testing.T, p *Problem, ray []float64) {
	t.Helper()
	if len(ray) != p.NumRows() {
		t.Fatalf("ray length %d, want %d", len(ray), p.NumRows())
	}
	agg := make([]float64, p.NumVars())
	rhs := 0.0
	for i := 0; i < p.NumRows(); i++ {
		f := ray[i]
		r := p.rows[i]
		switch r.sense {
		case LE:
			if f > 1e-7 {
				t.Errorf("ray[%d] = %v > 0 on a <= row", i, f)
			}
		case GE:
			if f < -1e-7 {
				t.Errorf("ray[%d] = %v < 0 on a >= row", i, f)
			}
		}
		for _, tm := range r.terms {
			agg[tm.Var] += f * tm.Coef
		}
		rhs += f * r.rhs
	}
	for v, a := range agg {
		if a > 1e-6 {
			t.Errorf("aggregated coefficient on var %d = %v > 0", v, a)
		}
	}
	if rhs <= 1e-9 {
		t.Errorf("ray·rhs = %v, want > 0", rhs)
	}
}

// TestStrongDuality verifies obj == dual·rhs on a non-trivial LP, which is
// the exact property the Benders optimality cuts rely on.
func TestStrongDuality(t *testing.T) {
	p := New()
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 2)
	z := p.AddVar("z", 4)
	p.AddConstraint(GE, 10, T(x, 1), T(y, 1), T(z, 1))
	p.AddConstraint(GE, 6, T(x, 2), T(y, 1))
	p.AddConstraint(LE, 8, T(y, 1), T(z, 1))

	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	dualObj := 0.0
	for i, d := range s.Dual {
		dualObj += d * p.RHS(i)
	}
	if !almost(s.Obj, dualObj, 1e-6) {
		t.Errorf("strong duality violated: primal %v, dual %v", s.Obj, dualObj)
	}
	// Dual sign convention for a minimization: ≥ rows carry non-negative
	// duals, ≤ rows non-positive ones.
	if s.Dual[0] < -1e-9 || s.Dual[1] < -1e-9 {
		t.Errorf("GE duals must be >= 0, got %v", s.Dual)
	}
	if s.Dual[2] > 1e-9 {
		t.Errorf("LE dual must be <= 0, got %v", s.Dual[2])
	}
}

// TestDegenerate exercises ties in the ratio test.
func TestDegenerate(t *testing.T) {
	p := New()
	x := p.AddVar("x", -1)
	y := p.AddVar("y", -1)
	p.AddConstraint(LE, 1, T(x, 1))
	p.AddConstraint(LE, 1, T(x, 1)) // duplicate row forces degeneracy
	p.AddConstraint(LE, 1, T(y, 1))
	p.AddConstraint(LE, 2, T(x, 1), T(y, 1))

	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, -2, 1e-9) {
		t.Fatalf("got %v obj %v, want optimal -2", s.Status, s.Obj)
	}
}

// TestRedundantEquality keeps a redundant row (artificial stays basic at 0).
func TestRedundantEquality(t *testing.T) {
	p := New()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 2)
	p.AddConstraint(EQ, 4, T(x, 1), T(y, 1))
	p.AddConstraint(EQ, 8, T(x, 2), T(y, 2)) // scalar multiple of row 0
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almost(s.Obj, 4, 1e-9) {
		t.Fatalf("got %v obj %v, want optimal 4 (x=4,y=0)", s.Status, s.Obj)
	}
}

// TestSetRHSReuse re-solves one problem with shifting right-hand sides.
func TestSetRHSReuse(t *testing.T) {
	p := New()
	x := p.AddVar("x", -1)
	cap := p.AddConstraint(LE, 5, T(x, 1))
	for _, rhs := range []float64{5, 2, 9.5, 0} {
		p.SetRHS(cap, rhs)
		s, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal || !almost(s.Obj, -rhs, 1e-9) {
			t.Fatalf("rhs %v: got %v obj %v", rhs, s.Status, s.Obj)
		}
	}
}

// TestClone ensures clones are independent.
func TestClone(t *testing.T) {
	p := New()
	x := p.AddVar("x", -1)
	p.AddConstraint(LE, 5, T(x, 1))
	q := p.Clone()
	q.SetRHS(0, 1)
	q.SetCost(x, -2)

	sp, _ := p.Solve()
	sq, _ := q.Solve()
	if !almost(sp.Obj, -5, 1e-9) {
		t.Errorf("original perturbed by clone: %v", sp.Obj)
	}
	if !almost(sq.Obj, -2, 1e-9) {
		t.Errorf("clone obj = %v, want -2", sq.Obj)
	}
}

// TestQuickWeakDuality is a property-based check: for random LPs that are
// feasible by construction, any reported optimum must satisfy primal
// feasibility and strong duality, and infeasible reports must carry a
// verifiable Farkas ray.
func TestQuickWeakDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		m := 2 + r.Intn(5)
		p := New()
		for j := 0; j < n; j++ {
			p.AddVar("v", r.Float64()*4-1)
		}
		// A known feasible point keeps about half the instances feasible.
		point := make([]float64, n)
		for j := range point {
			point[j] = r.Float64() * 3
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			act := 0.0
			for j := 0; j < n; j++ {
				c := math.Round((r.Float64()*4-2)*4) / 4
				if c != 0 {
					terms = append(terms, T(j, c))
					act += c * point[j]
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := LE
			rhs := act + r.Float64()*2
			if r.Intn(3) == 0 {
				sense = GE
				rhs = act - r.Float64()*2
			}
			if r.Intn(4) == 0 {
				rhs -= 5 // sometimes force infeasibility
				if sense == GE {
					rhs += 10
				}
			}
			p.AddConstraint(sense, rhs, terms...)
		}
		// Bound the feasible region so unboundedness stays rare but legal.
		for j := 0; j < n; j++ {
			p.AddConstraint(LE, 50, T(j, 1))
		}

		s, err := p.Solve()
		if err != nil {
			return false
		}
		switch s.Status {
		case Optimal:
			// Primal feasibility.
			for i := 0; i < p.NumRows(); i++ {
				act := 0.0
				for _, tm := range p.rows[i].terms {
					act += tm.Coef * s.X[tm.Var]
				}
				switch p.rows[i].sense {
				case LE:
					if act > p.rows[i].rhs+1e-6 {
						return false
					}
				case GE:
					if act < p.rows[i].rhs-1e-6 {
						return false
					}
				case EQ:
					if math.Abs(act-p.rows[i].rhs) > 1e-6 {
						return false
					}
				}
			}
			// Strong duality.
			dualObj := 0.0
			for i, d := range s.Dual {
				dualObj += d * p.RHS(i)
			}
			return almost(s.Obj, dualObj, 1e-5*math.Max(1, math.Abs(s.Obj)))
		case Infeasible:
			rhs := 0.0
			agg := make([]float64, n)
			for i, f := range s.Ray {
				for _, tm := range p.rows[i].terms {
					agg[tm.Var] += f * tm.Coef
				}
				rhs += f * p.rows[i].rhs
			}
			for _, a := range agg {
				if a > 1e-6 {
					return false
				}
			}
			return rhs > 1e-9
		case Unbounded:
			return true
		}
		return false
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSenseString covers the Stringer implementations.
func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("sense strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Error("status strings wrong")
	}
	if Sense(9).String() == "" || Status(9).String() == "" {
		t.Error("unknown values must still print")
	}
}

// TestVarAccessors covers trivial accessors.
func TestVarAccessors(t *testing.T) {
	p := New()
	v := p.AddVar("demand", 2.5)
	if p.NumVars() != 1 || p.VarName(v) != "demand" || p.Cost(v) != 2.5 {
		t.Error("accessor mismatch")
	}
	p.SetCost(v, -1)
	if p.Cost(v) != -1 {
		t.Error("SetCost failed")
	}
	i := p.AddNamedConstraint("cap", LE, 3, T(v, 1))
	if p.NumRows() != 1 || p.RHS(i) != 3 {
		t.Error("row accessor mismatch")
	}
}
