package lp

import (
	"math"
	"math/rand"
	"testing"
)

// rowEncoded clones p with its variable bounds re-expressed as explicit
// constraint rows — the encoding the solver used before the
// bounded-variable simplex, kept here as the behavioral reference.
func rowEncoded(p *Problem) *Problem {
	q := New()
	for j := 0; j < p.NumVars(); j++ {
		q.AddVar(p.VarName(j), p.Cost(j))
	}
	for i := 0; i < p.NumRows(); i++ {
		q.AddConstraint(p.RowSense(i), p.RHS(i), p.RowTerms(i)...)
	}
	for j := 0; j < p.NumVars(); j++ {
		lo, up := p.Bounds(j)
		if lo > 0 {
			q.AddConstraint(GE, lo, T(j, 1))
		}
		if !math.IsInf(up, 1) {
			q.AddConstraint(LE, up, T(j, 1))
		}
	}
	return q
}

// buildBoundedProblem makes a random LP with a mix of default, boxed,
// lower-bounded and fixed variables.
func buildBoundedProblem(rng *rand.Rand) *Problem {
	p := New()
	n := 4 + rng.Intn(7)
	m := 3 + rng.Intn(6)
	for j := 0; j < n; j++ {
		p.AddVar("x", -2+4*rng.Float64())
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				terms = append(terms, T(j, -3+6*rng.Float64()))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, T(rng.Intn(n), 1+rng.Float64()))
		}
		sense := LE
		rhs := 1 + 9*rng.Float64()
		switch rng.Intn(10) {
		case 0:
			sense = GE
			rhs = rng.Float64()
		case 1:
			sense = EQ
			rhs = rng.Float64() * 2
		}
		p.AddConstraint(sense, rhs, terms...)
	}
	for j := 0; j < n; j++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // boxed [0, u]
			p.SetBounds(j, 0, 0.5+2*rng.Float64())
		case 3, 4: // boxed [l, u]
			lo := rng.Float64()
			p.SetBounds(j, lo, lo+0.5+2*rng.Float64())
		case 5: // fixed
			v := rng.Float64()
			p.SetBounds(j, v, v)
		case 6: // lower-bounded only
			p.SetBounds(j, rng.Float64(), math.Inf(1))
		default: // default range, but still exercising the bounded paths
			p.SetBounds(j, 0, math.Inf(1))
		}
	}
	return p
}

// checkBoxFarkas asserts ray certifies infeasibility over the variable box:
// Σ ray·rhs exceeds what the bounded columns can absorb.
func checkBoxFarkas(t *testing.T, p *Problem, ray []float64, tag string) {
	t.Helper()
	rb := 0.0
	for i := 0; i < p.NumRows(); i++ {
		f := ray[i]
		switch p.RowSense(i) {
		case LE:
			if f > 1e-6 {
				t.Fatalf("%s: ray[%d]=%g positive on a <= row", tag, i, f)
			}
		case GE:
			if f < -1e-6 {
				t.Fatalf("%s: ray[%d]=%g negative on a >= row", tag, i, f)
			}
		}
		rb += f * p.RHS(i)
	}
	for j := 0; j < p.NumVars(); j++ {
		fa := 0.0
		for i := 0; i < p.NumRows(); i++ {
			for _, tm := range p.RowTerms(i) {
				if tm.Var == j {
					fa += ray[i] * tm.Coef
				}
			}
		}
		lo, up := p.Bounds(j)
		if fa > 1e-6 {
			if math.IsInf(up, 1) {
				t.Fatalf("%s: ray demands var %d above an infinite bound", tag, j)
			}
			rb -= fa * up
		} else if fa < -1e-6 && lo > 0 {
			rb -= fa * lo
		}
	}
	if rb <= 1e-9 {
		t.Fatalf("%s: box-Farkas certificate slack %g not positive", tag, rb)
	}
}

// TestBoundedMatchesRowEncoding drives warm solve chains over randomly
// mutated bounded problems and requires every status, objective and primal
// point to match a cold solve of the row-encoded reference problem.
func TestBoundedMatchesRowEncoding(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 17, 42, 99} {
		rng := rand.New(rand.NewSource(seed))
		p := buildBoundedProblem(rng)
		var bs Basis
		for step := 0; step < 40; step++ {
			switch step % 4 {
			case 1: // RHS jiggle (dual simplex territory)
				for i := 0; i < p.NumRows(); i++ {
					if rng.Float64() < 0.4 {
						p.SetRHS(i, p.RHS(i)+(-1+2*rng.Float64()))
					}
				}
			case 2: // bound rewrites: the branch-and-bound access pattern
				for j := 0; j < p.NumVars(); j++ {
					if rng.Float64() < 0.3 {
						switch rng.Intn(3) {
						case 0:
							p.SetBounds(j, 0, 1) // relax to unit box
						case 1:
							v := float64(rng.Intn(2))
							p.SetBounds(j, v, v) // binary-style fixing
						case 2:
							lo := rng.Float64()
							p.SetBounds(j, lo, lo+1+rng.Float64())
						}
					}
				}
			case 3: // cost drift (primal simplex territory)
				for j := 0; j < p.NumVars(); j++ {
					if rng.Float64() < 0.4 {
						p.SetCost(j, p.Cost(j)+(-0.5+rng.Float64()))
					}
				}
			}

			got, gotErr := p.SolveFrom(&bs)
			want, wantErr := rowEncoded(p).Solve()
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("seed %d step %d: err mismatch: %v vs %v", seed, step, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if got.Status != want.Status {
				t.Fatalf("seed %d step %d: status %v, row-encoded %v", seed, step, got.Status, want.Status)
			}
			switch got.Status {
			case Optimal:
				if math.Abs(got.Obj-want.Obj) > 1e-6*(1+math.Abs(want.Obj)) {
					t.Fatalf("seed %d step %d: obj %g vs %g", seed, step, got.Obj, want.Obj)
				}
				for j := range got.X {
					lo, up := p.Bounds(j)
					if got.X[j] < lo-1e-6 || got.X[j] > up+1e-6 {
						t.Fatalf("seed %d step %d: X[%d]=%g outside [%g,%g]", seed, step, j, got.X[j], lo, up)
					}
				}
				// Strong duality over the box: Obj = y·b + Σ_nonbasic d_j·x_j
				// is verified internally; here check primal row feasibility.
				for i := 0; i < p.NumRows(); i++ {
					act := 0.0
					for _, tm := range p.RowTerms(i) {
						act += tm.Coef * got.X[tm.Var]
					}
					switch p.RowSense(i) {
					case LE:
						if act > p.RHS(i)+1e-5 {
							t.Fatalf("seed %d step %d: row %d activity %g > rhs %g", seed, step, i, act, p.RHS(i))
						}
					case GE:
						if act < p.RHS(i)-1e-5 {
							t.Fatalf("seed %d step %d: row %d activity %g < rhs %g", seed, step, i, act, p.RHS(i))
						}
					case EQ:
						if math.Abs(act-p.RHS(i)) > 1e-5 {
							t.Fatalf("seed %d step %d: row %d activity %g != rhs %g", seed, step, i, act, p.RHS(i))
						}
					}
				}
			case Infeasible:
				if got.Ray != nil {
					checkBoxFarkas(t, p, got.Ray, "warm/cold bounded ray")
				}
			}
		}
	}
}

// TestBoundedFixingChainStaysWarm mirrors the branch-and-bound access
// pattern: binaries on a unit box, repeatedly fixed and released, with the
// shared basis re-entered warm. Beyond correctness (checked against the
// row encoding), the chain must not collapse to cold solves every step —
// the whole point of SetBounds-based fixings.
func TestBoundedFixingChainStaysWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := New()
	n := 8
	for j := 0; j < n; j++ {
		p.AddVar("b", -1+2*rng.Float64())
		p.SetBounds(j, 0, 1)
	}
	for i := 0; i < 5; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			terms = append(terms, T(j, rng.Float64()))
		}
		p.AddConstraint(LE, 1+2*rng.Float64(), terms...)
	}

	var bs Basis
	if _, err := p.SolveFrom(&bs); err != nil {
		t.Fatalf("root solve: %v", err)
	}
	if !bs.Warm(p) {
		t.Fatalf("root solve did not capture a warm basis")
	}
	warm := 0
	for step := 0; step < 60; step++ {
		for j := 0; j < n; j++ {
			p.SetBounds(j, 0, 1)
		}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				v := float64(rng.Intn(2))
				p.SetBounds(j, v, v)
			}
		}
		got, err := p.SolveFrom(&bs)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if bs.eng != nil {
			warm++ // a cold fallback leaves eng nil until the next warm solve
		}
		want, _ := rowEncoded(p).Solve()
		if got.Status != want.Status {
			t.Fatalf("step %d: status %v vs %v", step, got.Status, want.Status)
		}
		if got.Status == Optimal && math.Abs(got.Obj-want.Obj) > 1e-6*(1+math.Abs(want.Obj)) {
			t.Fatalf("step %d: obj %g vs %g", step, got.Obj, want.Obj)
		}
	}
	if warm < 30 {
		t.Fatalf("only %d/60 fixing-chain solves used the warm path; SetBounds fixings should mostly re-enter warm", warm)
	}
}
