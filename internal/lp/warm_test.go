package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkAgainstCold solves p both ways — warm from the threaded basis and
// cold on an independent clone — and requires them to agree: same status,
// matching objective, both dual solutions closing strong duality, and a
// valid Farkas certificate on infeasible steps. It is the contract
// SolveFrom promises: only the pivot path may differ.
func checkAgainstCold(t *testing.T, p *Problem, b *Basis, step int) {
	t.Helper()
	warm, err := p.SolveFrom(b)
	if err != nil {
		t.Fatalf("step %d: warm solve: %v", step, err)
	}
	cold, err := p.Clone().Solve()
	if err != nil {
		t.Fatalf("step %d: cold solve: %v", step, err)
	}
	if warm.Status != cold.Status {
		t.Fatalf("step %d: warm status %v, cold status %v", step, warm.Status, cold.Status)
	}
	switch warm.Status {
	case Optimal:
		tol := 1e-6 * (1 + math.Abs(cold.Obj))
		if math.Abs(warm.Obj-cold.Obj) > tol {
			t.Fatalf("step %d: warm obj %v, cold obj %v", step, warm.Obj, cold.Obj)
		}
		for _, s := range []*Solution{warm, cold} {
			dualObj := 0.0
			for i, d := range s.Dual {
				dualObj += d * p.RHS(i)
			}
			if math.Abs(dualObj-s.Obj) > tol {
				t.Fatalf("step %d: strong duality broken: obj %v, dual obj %v", step, s.Obj, dualObj)
			}
		}
		// Warm primal must satisfy every row.
		for i := 0; i < p.NumRows(); i++ {
			act := 0.0
			for _, tm := range p.rows[i].terms {
				act += tm.Coef * warm.X[tm.Var]
			}
			switch p.rows[i].sense {
			case LE:
				if act > p.rows[i].rhs+1e-5 {
					t.Fatalf("step %d: warm X violates row %d: %v > %v", step, i, act, p.rows[i].rhs)
				}
			case GE:
				if act < p.rows[i].rhs-1e-5 {
					t.Fatalf("step %d: warm X violates row %d: %v < %v", step, i, act, p.rows[i].rhs)
				}
			case EQ:
				if math.Abs(act-p.rows[i].rhs) > 1e-5 {
					t.Fatalf("step %d: warm X violates row %d: %v != %v", step, i, act, p.rows[i].rhs)
				}
			}
		}
	case Infeasible:
		if warm.Ray == nil {
			t.Fatalf("step %d: infeasible without a Farkas ray", step)
		}
		checkFarkas(t, p, warm.Ray)
	}
}

// TestWarmStartRHSSequence is the Benders-slave access pattern: one
// structure, a long randomized sequence of RHS rewrites, the basis threaded
// through every solve. Every step must agree with a cold solve, including
// the steps deliberately driven infeasible.
func TestWarmStartRHSSequence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(10)
		p := New()
		for j := 0; j < n; j++ {
			p.AddVar("v", r.Float64()*4-2)
		}
		// Capacity-style rows (the slave LP shape) plus a GE row and an EQ
		// row so the marker variety is exercised.
		nRows := n + 2 + r.Intn(6)
		base := make([]float64, 0, nRows+2)
		for i := 0; i < nRows; i++ {
			terms := make([]Term, 0, 4)
			for k := 0; k < 3+r.Intn(3); k++ {
				terms = append(terms, T(r.Intn(n), r.Float64()*2))
			}
			rhs := 2 + r.Float64()*8
			p.AddConstraint(LE, rhs, terms...)
			base = append(base, rhs)
		}
		geRow := p.AddConstraint(GE, 0.1, T(0, 1), T(1%n, 1))
		base = append(base, 0.1)
		eqRow := p.AddConstraint(EQ, 1, T(r.Intn(n), 1), T(r.Intn(n), 0.5))
		base = append(base, 1)
		_ = geRow

		var b Basis
		for step := 0; step < 40; step++ {
			// Random multiplicative jiggle; every 7th step slams a row to an
			// unsatisfiable level to force an infeasible solve in sequence.
			for i, v := range base {
				p.SetRHS(i, v*(0.5+r.Float64()))
			}
			if step%7 == 3 {
				p.SetRHS(eqRow, 100) // EQ demand no LE capacity row tolerates
				p.SetRHS(r.Intn(nRows), -1-r.Float64())
			}
			checkAgainstCold(t, p, &b, step)
		}
	}
}

// TestWarmStartCostChange re-enters from a primal-feasible basis after the
// objective changes (the primal warm-start path).
func TestWarmStartCostChange(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := randomLP(30, 30, 11)
	var b Basis
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 25; step++ {
		for j := 0; j < p.NumVars(); j++ {
			if r.Intn(3) == 0 {
				p.SetCost(j, r.Float64()*2-1)
			}
		}
		checkAgainstCold(t, p, &b, step)
	}
}

// TestWarmStartMixedPerturbation interleaves RHS and cost changes, so the
// solver must pick dual re-entry, primal re-entry, or a cold restart per
// step and always land on the cold answer.
func TestWarmStartMixedPerturbation(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	p := randomLP(40, 50, 23)
	var b Basis
	for step := 0; step < 40; step++ {
		switch step % 3 {
		case 0:
			p.SetRHS(r.Intn(p.NumRows()), r.Float64()*8)
		case 1:
			p.SetCost(r.Intn(p.NumVars()), r.Float64()*2-1)
		default:
			p.SetRHS(r.Intn(p.NumRows()), r.Float64()*8)
			p.SetCost(r.Intn(p.NumVars()), r.Float64()*2-1)
		}
		checkAgainstCold(t, p, &b, step)
	}
}

// TestSolveFromNilBasis must behave exactly like Solve.
func TestSolveFromNilBasis(t *testing.T) {
	p := New()
	x := p.AddVar("x", -1)
	p.AddConstraint(LE, 5, T(x, 1))
	s, err := p.SolveFrom(nil)
	if err != nil || s.Status != Optimal || math.Abs(s.Obj+5) > 1e-9 {
		t.Fatalf("got %v obj %v err %v", s.Status, s.Obj, err)
	}
}

// TestSolveFromStaleShape hands a basis captured on a different problem
// shape; SolveFrom must notice and cold-start rather than misuse it.
func TestSolveFromStaleShape(t *testing.T) {
	p := New()
	x := p.AddVar("x", -1)
	p.AddConstraint(LE, 5, T(x, 1))
	var b Basis
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}

	q := New()
	qx := q.AddVar("x", -1)
	qy := q.AddVar("y", -2)
	q.AddConstraint(LE, 4, T(qx, 1), T(qy, 1))
	q.AddConstraint(LE, 2, T(qy, 1))
	s, err := q.SolveFrom(&b) // b has p's shape, not q's
	if err != nil || s.Status != Optimal || math.Abs(s.Obj+6) > 1e-9 {
		t.Fatalf("got %v obj %v err %v", s.Status, s.Obj, err)
	}
	if !b.Warm(q) {
		t.Fatal("cold fallback must recapture the basis for the new shape")
	}
}

// TestBasisReset discards state; the next solve cold-starts and recaptures.
func TestBasisReset(t *testing.T) {
	p := randomLP(20, 20, 3)
	var b Basis
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Warm(p) {
		t.Fatal("reset basis still reports warm")
	}
	s, err := p.SolveFrom(&b)
	if err != nil || s.Status != Optimal {
		t.Fatalf("post-reset solve: %v %v", s.Status, err)
	}
	if !b.Warm(p) {
		t.Fatal("post-reset solve did not recapture the basis")
	}
}

// TestWarmStartPivotSavings is the point of the machinery: across a
// sequence of small RHS perturbations the warm path must pivot far less
// than cold restarts do. Guarded loosely (2x) so numerical jitter cannot
// flake CI, while a broken warm path (falling back cold every step) fails.
func TestWarmStartPivotSavings(t *testing.T) {
	p := randomLP(80, 80, 9)
	var b Basis
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	warmPivots, coldPivots := 0, 0
	for step := 0; step < 20; step++ {
		row := r.Intn(80)
		p.SetRHS(row, math.Max(0.5, p.RHS(row)*(0.9+0.2*r.Float64())))
		ws, err := p.SolveFrom(&b)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := p.Clone().Solve()
		if err != nil {
			t.Fatal(err)
		}
		warmPivots += ws.Pivots
		coldPivots += cs.Pivots
	}
	if warmPivots*2 >= coldPivots {
		t.Errorf("warm start saved too little: %d warm pivots vs %d cold", warmPivots, coldPivots)
	}
}
