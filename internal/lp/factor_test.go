package lp

import (
	"math"
	"math/rand"
	"testing"
)

// solveForced runs SolveFrom with the factorization engine pinned for the
// duration of the call (the engine choice is consulted at refactorization
// time, which can also happen mid-solve when the eta file fills).
func solveForced(t *testing.T, p *Problem, b *Basis, dense bool) *Solution {
	t.Helper()
	DebugForceDenseFactor(dense)
	defer DebugForceDenseFactor(false)
	s, err := p.SolveFrom(b)
	if err != nil {
		t.Fatalf("forced solve (dense=%v): %v", dense, err)
	}
	return s
}

// compareSolutions requires the sparse-LU and dense-inverse engines to have
// produced equivalent Solutions: identical statuses, objectives and vectors
// agreeing to well inside the solver's own verification tolerance, and —
// for infeasible steps — a Farkas ray each that certifies against the same
// check callers run. (The two engines factorize the same basis with
// different arithmetic, so last-bit float equality is not a meaningful
// contract; decision-level bitwise equality is pinned one layer up by the
// scenario/sim determinism tests.)
func compareSolutions(t *testing.T, p *Problem, sparse, dense *Solution, step int) {
	t.Helper()
	if sparse.Status != dense.Status {
		t.Fatalf("step %d: sparse status %v, dense status %v", step, sparse.Status, dense.Status)
	}
	const tol = 1e-6
	switch sparse.Status {
	case Optimal:
		scale := 1 + math.Abs(dense.Obj)
		if math.Abs(sparse.Obj-dense.Obj) > tol*scale {
			t.Fatalf("step %d: sparse obj %v, dense obj %v", step, sparse.Obj, dense.Obj)
		}
		for j := range sparse.X {
			if math.Abs(sparse.X[j]-dense.X[j]) > tol*scale {
				t.Fatalf("step %d: X[%d] sparse %v dense %v", step, j, sparse.X[j], dense.X[j])
			}
		}
		for i := range sparse.Dual {
			if math.Abs(sparse.Dual[i]-dense.Dual[i]) > tol*scale {
				t.Fatalf("step %d: Dual[%d] sparse %v dense %v", step, i, sparse.Dual[i], dense.Dual[i])
			}
		}
	case Infeasible:
		checkFarkas(t, p, sparse.Ray)
		checkFarkas(t, p, dense.Ray)
	}
}

// buildWarmCorpusProblem reproduces the warm_test corpus shape: capacity
// rows plus a GE and an EQ row, so both engines cross every marker variety.
func buildWarmCorpusProblem(seed int64) (*Problem, []float64, int, int) {
	r := rand.New(rand.NewSource(seed))
	n := 6 + r.Intn(10)
	p := New()
	for j := 0; j < n; j++ {
		p.AddVar("v", r.Float64()*4-2)
	}
	nRows := n + 2 + r.Intn(6)
	base := make([]float64, 0, nRows+2)
	for i := 0; i < nRows; i++ {
		terms := make([]Term, 0, 4)
		for k := 0; k < 3+r.Intn(3); k++ {
			terms = append(terms, T(r.Intn(n), r.Float64()*2))
		}
		rhs := 2 + r.Float64()*8
		p.AddConstraint(LE, rhs, terms...)
		base = append(base, rhs)
	}
	p.AddConstraint(GE, 0.1, T(0, 1), T(1%n, 1))
	base = append(base, 0.1)
	eqRow := p.AddConstraint(EQ, 1, T(r.Intn(n), 1), T(r.Intn(n), 0.5))
	base = append(base, 1)
	return p, base, nRows, eqRow
}

// TestSparseLUMatchesDenseOnWarmCorpus is the cross-engine property test:
// the sparse-LU engine and the retained dense-inverse engine are driven
// through identical randomized warm-start sequences (the Benders-slave
// access pattern, including deliberately infeasible steps) on identical
// problems, each threading its own Basis, and must agree at every step.
func TestSparseLUMatchesDenseOnWarmCorpus(t *testing.T) {
	defer DebugForceDenseFactor(false)
	for _, seed := range []int64{1, 2, 3, 4, 5, 17, 99} {
		ps, base, nRows, eqRow := buildWarmCorpusProblem(seed)
		pd, _, _, _ := buildWarmCorpusProblem(seed) // identical twin
		r := rand.New(rand.NewSource(seed * 31))
		var bSparse, bDense Basis
		for step := 0; step < 40; step++ {
			for i, v := range base {
				jig := v * (0.5 + r.Float64())
				ps.SetRHS(i, jig)
				pd.SetRHS(i, jig)
			}
			if step%7 == 3 {
				ps.SetRHS(eqRow, 100)
				pd.SetRHS(eqRow, 100)
				row := r.Intn(nRows)
				v := -1 - r.Float64()
				ps.SetRHS(row, v)
				pd.SetRHS(row, v)
			}
			if step%5 == 2 { // cost drift exercises the primal re-entry path
				j := r.Intn(ps.NumVars())
				c := r.Float64()*4 - 2
				ps.SetCost(j, c)
				pd.SetCost(j, c)
			}
			ss := solveForced(t, ps, &bSparse, false)
			ds := solveForced(t, pd, &bDense, true)
			compareSolutions(t, ps, ss, ds, step)
		}
	}
}

// TestSparseLUMatchesDenseOnFTUpdateChains extends the cross-engine
// property test to the Forrest–Tomlin regime: a problem large enough that
// each RHS slam costs real pivot chains, driven far past refactorEvery so
// the sparse engine's FT eta file fills and refactorizes repeatedly, with
// bound rewrites mixed in so bound-flip ratio-test iterations and
// nonbasic-at-bound extraction run under FT updates too. The dense-inverse
// engine is the oracle at every step; the pivot-count assertion guarantees
// the update path (not just fresh factorizations) was exercised.
func TestSparseLUMatchesDenseOnFTUpdateChains(t *testing.T) {
	defer DebugForceDenseFactor(false)
	for _, seed := range []int64{3, 11, 29} {
		ps := randomLP(60, 60, seed)
		pd := randomLP(60, 60, seed) // identical twin
		r := rand.New(rand.NewSource(seed * 17))
		var bSparse, bDense Basis
		totalPivots := 0
		for step := 0; step < 12; step++ {
			// Slam a swath of RHS values so the dual simplex runs a real
			// pivot chain through the FT update machinery.
			for i := 0; i < ps.NumRows(); i++ {
				if r.Float64() < 0.5 {
					v := math.Max(0.2, ps.RHS(i)*(0.3+1.4*r.Float64()))
					ps.SetRHS(i, v)
					pd.SetRHS(i, v)
				}
			}
			// Bound rewrites: boxes and binary-style fixings, the
			// branch-and-bound access pattern layered on the FT chains.
			for j := 0; j < ps.NumVars(); j++ {
				if r.Float64() < 0.15 {
					var lo, up float64
					switch r.Intn(3) {
					case 0:
						lo, up = 0, 1+4*r.Float64()
					case 1:
						lo = float64(r.Intn(2))
						up = lo
					case 2:
						lo, up = 0, math.Inf(1)
					}
					ps.SetBounds(j, lo, up)
					pd.SetBounds(j, lo, up)
				}
			}
			ss := solveForced(t, ps, &bSparse, false)
			ds := solveForced(t, pd, &bDense, true)
			if ss.Status == Infeasible && ds.Status == Infeasible {
				// Bounds are live: the plain Farkas check in
				// compareSolutions does not account for the box, so
				// certify with the box-aware variant instead.
				if ss.Ray != nil {
					checkBoxFarkas(t, ps, ss.Ray, "sparse FT-chain ray")
				}
				if ds.Ray != nil {
					checkBoxFarkas(t, pd, ds.Ray, "dense FT-chain ray")
				}
			} else {
				compareSolutions(t, ps, ss, ds, step)
			}
			totalPivots += ss.Pivots
		}
		if totalPivots <= refactorEvery {
			t.Fatalf("seed %d: corpus too easy: %d total pivots never crossed the FT eta bound %d",
				seed, totalPivots, refactorEvery)
		}
	}
}

// TestSingularBasisFallsBackCold hands the warm path a basis whose column
// set is genuinely singular (the same marker column listed twice); the
// factorization must detect it and the solve must recover via the cold
// path, recapturing a usable basis.
func TestSingularBasisFallsBackCold(t *testing.T) {
	p := randomLP(12, 12, 7)
	var b Basis
	s, err := p.SolveFrom(&b)
	if err != nil || s.Status != Optimal {
		t.Fatalf("seed solve: %v %v", s.Status, err)
	}
	want := s.Obj

	if len(b.cols) < 2 {
		t.Fatal("basis too small for the fixture")
	}
	b.cols[0] = p.NumVars() // marker of row 0
	b.cols[1] = p.NumVars() // the same column again: B is singular
	b.eng = nil

	s, err = p.SolveFrom(&b)
	if err != nil || s.Status != Optimal {
		t.Fatalf("post-corruption solve: %v %v", s.Status, err)
	}
	if math.Abs(s.Obj-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("cold fallback obj %v, want %v", s.Obj, want)
	}
	if !b.Warm(p) {
		t.Fatal("fallback did not recapture the basis")
	}
}

// TestNearSingularPivotRejected drives the factorization into a basis whose
// only pivot candidate is below the singularity threshold; the warm path
// must refuse it (rather than dividing by ~0) and fall back cold.
func TestNearSingularPivotRejected(t *testing.T) {
	p := New()
	x := p.AddVar("x", -1)
	y := p.AddVar("y", -1)
	p.AddConstraint(LE, 1, T(x, 1), T(y, 1e-13))
	p.AddConstraint(LE, 1, T(y, 1))
	var b Basis
	s, err := p.SolveFrom(&b)
	if err != nil || s.Status != Optimal {
		t.Fatalf("seed solve: %v %v", s.Status, err)
	}
	// Force the basis to [y (via the 1e-13 row), slack of row 1]: the
	// elimination's only pivot for column y in row 0 is 1e-13 < the
	// singularity threshold.
	b.cols[0] = y
	b.cols[1] = p.NumVars() + 1
	b.eng = nil
	s, err = p.SolveFrom(&b)
	if err != nil || s.Status != Optimal {
		t.Fatalf("near-singular fallback: %v %v", s.Status, err)
	}
	if math.Abs(s.Obj-(-2)) > 1e-6 {
		t.Fatalf("obj %v, want -2", s.Obj)
	}
}

// TestEtaFileRefactorizationPath forces warm solves long enough that the
// bounded eta file fills mid-solve and the engine refactorizes in place,
// then checks the solve still lands exactly where a cold solve does. The
// pivot count assertion guarantees the path was actually exercised.
func TestEtaFileRefactorizationPath(t *testing.T) {
	p := randomLP(100, 100, 13)
	var b Basis
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	totalPivots := 0
	for step := 0; step < 6; step++ {
		// Slam every RHS at once: the dual simplex has real work to do.
		for i := 0; i < p.NumRows(); i++ {
			p.SetRHS(i, math.Max(0.2, p.RHS(i)*(0.3+1.4*r.Float64())))
		}
		ws, err := p.SolveFrom(&b)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		totalPivots += ws.Pivots
		cold, err := p.Clone().Solve()
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		if ws.Status != cold.Status {
			t.Fatalf("step %d: warm %v cold %v", step, ws.Status, cold.Status)
		}
		if ws.Status == Optimal && math.Abs(ws.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("step %d: warm obj %v cold obj %v", step, ws.Obj, cold.Obj)
		}
	}
	if totalPivots <= refactorEvery {
		t.Fatalf("corpus too easy: %d total pivots never crossed the eta bound %d",
			totalPivots, refactorEvery)
	}
}

// TestWarmSteadyStateZeroAllocs pins the tentpole's allocation contract:
// once a Basis has warmed up on a problem structure, the steady-state
// SolveFrom cycle — SetRHS jiggle, dual re-entry, solution extraction,
// verification — performs zero heap allocations. This is the Benders-slave
// access pattern that the admission shards and the reopt controller run at
// load-generator scale.
func TestWarmSteadyStateZeroAllocs(t *testing.T) {
	p := randomLP(80, 80, 21)
	var b Basis
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}
	// Warm-up: populate workspace caches and let grow-amortized storage
	// reach its steady footprint (including one eta-file refactorization).
	for i := 0; i < 200; i++ {
		p.SetRHS(i%p.NumRows(), 1+float64(i%7))
		if _, err := p.SolveFrom(&b); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		i++
		p.SetRHS(i%p.NumRows(), 1+float64(i%7))
		s, err := p.SolveFrom(&b)
		if err != nil || s.Status != Optimal {
			t.Fatalf("steady-state solve: %v %v", s.Status, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state warm solve allocates %.1f objects/op, want 0", allocs)
	}
}

// TestBoundedWarmSteadyStateZeroAllocs extends the zero-alloc contract to
// the bounded-variable simplex: a branch-and-bound style fixing cycle —
// SetBounds flips between the unit box and binary fixings, warm re-entry,
// extraction with nonbasic-at-bound variables — must not allocate once the
// workspace has reached its steady footprint.
func TestBoundedWarmSteadyStateZeroAllocs(t *testing.T) {
	p := randomLP(60, 60, 5)
	for j := 0; j < 8; j++ {
		p.SetBounds(j, 0, 1)
	}
	var b Basis
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}
	// The exact cycle AllocsPerRun will replay, so every fixing pattern
	// (and any cold fallback it provokes) is already amortized.
	cycle := func(i int) {
		j := i % 8
		switch i % 3 {
		case 0:
			p.SetBounds(j, 0, 1) // relax to the unit box
		case 1:
			p.SetBounds(j, 0, 0) // binary-style fixing at the lower bound
		case 2:
			p.SetBounds(j, 0, 0.5) // tighten the box (bound-flip territory)
		}
		p.SetRHS(i%p.NumRows(), 1+float64(i%7))
		s, err := p.SolveFrom(&b)
		if err != nil || s.Status != Optimal {
			t.Fatalf("bounded steady-state solve: %v %v", s.Status, err)
		}
	}
	for i := 0; i < 240; i++ {
		cycle(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(240, func() {
		cycle(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("bounded warm solve allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFtranBatchZeroAllocs pins the batched multi-RHS ftran: pushing a
// round's worth of packed RHS vectors through a warm factorization — more
// than one ftranBatchMax chunk — must not allocate.
func TestFtranBatchZeroAllocs(t *testing.T) {
	p := randomLP(60, 60, 9)
	var b Basis
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}
	// The first solve is cold and leaves no engine on the basis; a warm
	// re-entry factorizes it.
	p.SetRHS(0, p.RHS(0)*1.1)
	if _, err := p.SolveFrom(&b); err != nil {
		t.Fatal(err)
	}
	m := p.NumRows()
	k := ftranBatchMax + 3 // crosses the chunking boundary
	rhs := make([]float64, k*m)
	out := make([]float64, k*m)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	if !b.FtranBatch(rhs, k, out) {
		t.Fatal("FtranBatch refused a freshly factorized basis")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !b.FtranBatch(rhs, k, out) {
			t.Fatal("FtranBatch refused mid-run")
		}
	})
	if allocs != 0 {
		t.Fatalf("batched ftran allocates %.1f objects/op, want 0", allocs)
	}
}
