package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // aᵢ·x ≤ bᵢ
	GE              // aᵢ·x ≥ bᵢ
	EQ              // aᵢ·x = bᵢ
)

// String returns the conventional mathematical symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Status reports the outcome of a Solve call.
type Status int

// Solver outcomes.
const (
	Optimal    Status = iota // an optimal basic feasible solution was found
	Infeasible               // no feasible point exists; a Farkas ray is available
	Unbounded                // the objective decreases without bound
	IterLimit                // the pivot budget was exhausted (numerical trouble)
)

// String names the status for logs and test failures.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Term is a single coefficient applied to a variable in a constraint row.
type Term struct {
	Var  int     // variable index returned by AddVar
	Coef float64 // coefficient multiplying the variable
}

// T is shorthand for constructing a Term.
func T(v int, coef float64) Term { return Term{Var: v, Coef: coef} }

type row struct {
	terms []Term
	sense Sense
	rhs   float64
	name  string
}

// Problem is a linear program under construction. The zero value is not
// usable; call New.
type Problem struct {
	cost  []float64
	names []string
	rows  []row
	// lo/up are the variable bounds, materialized lazily by the first
	// SetBounds call; nil means every variable keeps the default [0, +∞)
	// range. Invariant: 0 ≤ lo[j] ≤ up[j], with up[j] = +Inf for unbounded.
	lo, up []float64
	// rev counts structural mutations (AddVar, AddConstraint). SetRHS,
	// SetCost and SetBounds deliberately do not advance it: a Basis
	// workspace caches the problem's sparse matrix keyed on (pointer, rev),
	// and RHS/cost/bound rewrites — the warm-start access patterns — must
	// keep that cache valid. (Branch-and-bound rewrites bounds per node.)
	rev int
}

// New returns an empty minimization problem.
func New() *Problem { return &Problem{} }

// AddVar adds a variable with the given objective cost and returns its
// index. All variables are implicitly bounded below by zero.
func (p *Problem) AddVar(name string, cost float64) int {
	p.cost = append(p.cost, cost)
	p.names = append(p.names, name)
	if p.lo != nil {
		p.lo = append(p.lo, 0)
		p.up = append(p.up, math.Inf(1))
	}
	p.rev++
	return len(p.cost) - 1
}

// SetBounds restricts variable v to the range [lo, up]. Bounds are handled
// natively by the bounded-variable simplex — no constraint rows are added —
// so rewriting them between solves (the branch-and-bound fixing pattern) is
// as cheap as SetRHS and keeps every warm-start cache valid. lo must satisfy
// 0 ≤ lo ≤ up; use math.Inf(1) for an unbounded upper range. lo == up fixes
// the variable.
func (p *Problem) SetBounds(v int, lo, up float64) {
	if lo < 0 || up < lo || math.IsNaN(lo) || math.IsNaN(up) {
		panic(fmt.Sprintf("lp: SetBounds(%d, %g, %g): need 0 <= lo <= up", v, lo, up))
	}
	if p.lo == nil {
		p.lo = make([]float64, len(p.cost))
		p.up = make([]float64, len(p.cost))
		for j := range p.up {
			p.up[j] = math.Inf(1)
		}
	}
	p.lo[v] = lo
	p.up[v] = up
}

// Bounds returns the [lo, up] range of variable v.
func (p *Problem) Bounds(v int) (lo, up float64) {
	if p.lo == nil {
		return 0, math.Inf(1)
	}
	return p.lo[v], p.up[v]
}

// bounded reports whether any variable carries a non-default bound range.
// The solver paths stay byte-identical to their pre-bounds behavior when
// this is false.
func (p *Problem) bounded() bool { return p.lo != nil }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows returns the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetCost overwrites the objective coefficient of variable v.
func (p *Problem) SetCost(v int, cost float64) { p.cost[v] = cost }

// Cost returns the objective coefficient of variable v.
func (p *Problem) Cost(v int) float64 { return p.cost[v] }

// VarName returns the name given to variable v at AddVar time.
func (p *Problem) VarName(v int) string { return p.names[v] }

// AddConstraint appends the row  Σ terms {sense} rhs  and returns its index.
// Terms referencing the same variable are accumulated.
func (p *Problem) AddConstraint(sense Sense, rhs float64, terms ...Term) int {
	return p.AddNamedConstraint("", sense, rhs, terms...)
}

// AddNamedConstraint is AddConstraint with a diagnostic row name.
func (p *Problem) AddNamedConstraint(name string, sense Sense, rhs float64, terms ...Term) int {
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.rows = append(p.rows, row{terms: cp, sense: sense, rhs: rhs, name: name})
	p.rev++
	return len(p.rows) - 1
}

// SetRHS overwrites the right-hand side of row i. This lets callers (the
// Benders slave, branch-and-bound nodes) reuse one problem structure across
// many solves that differ only in their right-hand sides.
func (p *Problem) SetRHS(i int, rhs float64) { p.rows[i].rhs = rhs }

// RHS returns the right-hand side of row i.
func (p *Problem) RHS(i int) float64 { return p.rows[i].rhs }

// RowSense returns the sense of row i.
func (p *Problem) RowSense(i int) Sense { return p.rows[i].sense }

// RowTerms returns the terms of row i. The returned slice is the problem's
// backing storage; callers must treat it as read-only. It exists so callers
// holding a dual vector from an earlier solve (the Benders cut pool) can
// check it against the current costs without rebuilding the matrix.
func (p *Problem) RowTerms(i int) []Term { return p.rows[i].terms }

// Clone returns a deep copy of the problem, sharing nothing with p.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		cost:  append([]float64(nil), p.cost...),
		names: append([]string(nil), p.names...),
		rows:  make([]row, len(p.rows)),
		lo:    append([]float64(nil), p.lo...),
		up:    append([]float64(nil), p.up...),
	}
	for i, r := range p.rows {
		q.rows[i] = row{
			terms: append([]Term(nil), r.terms...),
			sense: r.sense,
			rhs:   r.rhs,
			name:  r.name,
		}
	}
	return q
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// Obj is the optimal objective value when Status == Optimal.
	Obj float64
	// X holds the optimal variable values when Status == Optimal.
	X []float64
	// Dual holds one dual value per constraint row when Status == Optimal,
	// oriented so that Obj == Σᵢ Dual[i]·rhs[i] (strong duality; all
	// variable bounds other than x ≥ 0 are explicit rows).
	Dual []float64
	// Ray holds a Farkas infeasibility certificate per constraint row when
	// Status == Infeasible: any rhs vector r for which Σᵢ Ray[i]·r[i] > 0
	// is infeasible for this constraint matrix. It is the dual extreme ray
	// used for Benders feasibility cuts.
	Ray []float64
	// Pivots is the total simplex pivot count, for diagnostics.
	Pivots int
}

// Numerical tolerances. They are deliberately loose enough to survive the
// mildly ill-conditioned bases that big-M rows produce, and tight enough
// that the cross-validation tests (Benders vs direct MILP) agree to 1e-6.
const (
	pivotTol = 1e-9 // smallest pivot magnitude accepted
	costTol  = 1e-9 // reduced-cost optimality tolerance
	feasTol  = 1e-7 // feasibility tolerance on row activity
)

// ErrIterLimit is returned when the simplex exceeds its pivot budget.
var ErrIterLimit = errors.New("lp: simplex iteration limit exceeded")

// Solve runs the two-phase simplex and returns the solution. It never
// mutates the problem, so a Problem may be solved repeatedly (for example
// with different right-hand sides between calls). For solve sequences that
// perturb RHS or costs between calls, SolveFrom re-enters from the previous
// basis instead of restarting from scratch.
func (p *Problem) Solve() (*Solution, error) { return p.solveCold(nil) }

// solveCold is the two-phase tableau path. When cap is non-nil, the final
// basis is captured into it so a later SolveFrom can warm-start; outcomes
// without a usable basis (iteration limit, unboundedness) reset it.
// Bounded problems are dispatched to the bound-row expansion below — the
// tableau itself only understands x ≥ 0.
func (p *Problem) solveCold(cap *Basis) (*Solution, error) {
	if p.bounded() {
		return p.solveColdBounded(cap)
	}
	// When a Basis is being (re)captured, its workspace donates the
	// tableau's dense buffers, so warm-path fallbacks and re-captures do
	// not re-pay the tableau allocation on every cold solve.
	var ws *workspace
	if cap != nil {
		if cap.ws == nil {
			cap.ws = &workspace{}
		}
		ws = cap.ws
	}
	t := newTableau(p, ws)
	sol := &Solution{}

	// Phase 1: drive the artificial variables to zero.
	status := t.iterate(true)
	sol.Pivots += t.pivots
	if status == IterLimit {
		sol.Status = IterLimit
		if cap != nil {
			cap.Reset()
		}
		return sol, ErrIterLimit
	}
	if t.phase1Obj() > feasTol {
		sol.Status = Infeasible
		t.recomputeObjRow() // exact reduced costs for the certificate
		sol.Ray = t.farkasRay()
		// A phase-1-terminal basis is almost never dual feasible for the
		// real costs, so capturing it would make every later warm attempt
		// factorize B⁻¹ only to bail to cold. Drop it; warm chains start
		// from optimal (or warm-infeasible) bases only.
		if cap != nil {
			cap.Reset()
		}
		return sol, nil
	}
	t.pivotOutArtificials()

	// Phase 2: optimize the true objective from the feasible basis.
	t.loadPhase2Costs()
	status = t.iterate(false)
	sol.Pivots += t.pivots
	switch status {
	case IterLimit:
		sol.Status = IterLimit
		if cap != nil {
			cap.Reset()
		}
		return sol, ErrIterLimit
	case Unbounded:
		sol.Status = Unbounded
		if cap != nil {
			cap.Reset()
		}
		return sol, nil
	}

	sol.Status = Optimal
	sol.X = t.primal()
	sol.Obj = t.objective()
	t.recomputeObjRow() // exact reduced costs for the duals
	sol.Dual = t.duals()
	if cap != nil {
		cap.capture(t)
	}
	return sol, nil
}

// solveColdBounded is the cold path for problems with variable bounds: the
// bounds are expanded into explicit rows (x_j ≥ lo for lo > 0, x_j ≤ up for
// finite up), the two-phase tableau solves the expansion, and the result is
// mapped back. Dual and Ray are truncated to the original rows: bound-row
// duals live on as nonbasic reduced costs in the bounded-variable warm path
// (strong duality then reads Obj = Σ Dual·rhs + Σ_{nonbasic j} d_j·x_j),
// and an infeasibility Ray is a box-Farkas certificate — Σ Ray·rhs exceeds
// the slack the variable boxes can absorb (see revised.verifyRay).
//
// When cap is non-nil the expanded basis is folded into a bounded-variable
// basis over the original rows: a structural variable is basic iff it is
// basic in the expansion with none of its bound rows tight, and every
// nonbasic structural records which bound it sits at. The fold can land on
// a singular column set in degenerate corners; the next warm attempt then
// detects that and falls back cold, so it costs performance, never
// correctness.
func (p *Problem) solveColdBounded(cap *Basis) (*Solution, error) {
	m, n := len(p.rows), len(p.cost)

	// Build the expansion. Structural columns, costs and the original rows
	// are shared read-only with p; only the bound rows are fresh.
	q := &Problem{cost: p.cost, names: p.names}
	q.rows = make([]row, m, m+2*n)
	copy(q.rows, p.rows)
	lbRow := make([]int, n)
	ubRow := make([]int, n)
	for j := range lbRow {
		lbRow[j], ubRow[j] = -1, -1
	}
	for j := 0; j < n; j++ {
		if p.lo[j] > 0 {
			lbRow[j] = len(q.rows)
			q.rows = append(q.rows, row{terms: []Term{{Var: j, Coef: 1}}, sense: GE, rhs: p.lo[j]})
		}
	}
	for j := 0; j < n; j++ {
		if !math.IsInf(p.up[j], 1) {
			ubRow[j] = len(q.rows)
			q.rows = append(q.rows, row{terms: []Term{{Var: j, Coef: 1}}, sense: LE, rhs: p.up[j]})
		}
	}

	var ws *workspace
	if cap != nil {
		if cap.ws == nil {
			cap.ws = &workspace{}
		}
		ws = cap.ws
	}
	t := newTableau(q, ws)
	sol := &Solution{}

	status := t.iterate(true)
	sol.Pivots += t.pivots
	if status == IterLimit {
		sol.Status = IterLimit
		if cap != nil {
			cap.Reset()
		}
		return sol, ErrIterLimit
	}
	if t.phase1Obj() > feasTol {
		sol.Status = Infeasible
		t.recomputeObjRow()
		sol.Ray = t.farkasRay()[:m]
		if cap != nil {
			cap.Reset()
		}
		return sol, nil
	}
	t.pivotOutArtificials()

	t.loadPhase2Costs()
	status = t.iterate(false)
	sol.Pivots += t.pivots
	switch status {
	case IterLimit:
		sol.Status = IterLimit
		if cap != nil {
			cap.Reset()
		}
		return sol, ErrIterLimit
	case Unbounded:
		sol.Status = Unbounded
		if cap != nil {
			cap.Reset()
		}
		return sol, nil
	}

	sol.Status = Optimal
	sol.X = t.primal()
	sol.Obj = t.objective()
	t.recomputeObjRow()
	sol.Dual = t.duals()[:m]
	if cap != nil {
		cap.captureBounded(p, t, lbRow, ubRow)
	}
	return sol, nil
}

// tableau is the dense simplex working state. Columns are laid out as
// [structural 0..n) | markers n..n+m) | rhs]. Every row owns exactly one
// marker column: the slack/surplus for inequality rows (free to enter the
// basis) or a pinned pseudo-slack for equality rows (never enters, exists
// only so duals and Farkas rays can be read from its reduced cost).
// Rows whose marker cannot serve as the initial basic variable start from a
// *virtual* artificial: basis[i] = width+i. Virtual columns are never
// stored or updated — they can never re-enter — which keeps the tableau
// narrow; phase 1 only has work to do on rows that actually start virtual.
//
// The matrix is one contiguous row-major slice with stride width+1 (the
// last column is the rhs): flat storage keeps the O(m·width) pivot loops on
// sequential memory, and lets a Basis workspace donate the buffers so cold
// fallbacks inside a warm-start chain do not reallocate the tableau.
type tableau struct {
	p *Problem

	m, n  int // rows, structural columns
	width int // total stored columns excluding rhs: n + m
	w1    int // row stride: width + 1

	a     []float64 // m rows × w1 columns, row-major; a[i*w1+width] is rhs
	obj   []float64 // reduced-cost row, width+1 (last is -objective value)
	cost  []float64 // cost vector over stored columns (phase-dependent)
	basis []int     // basis[i] = column basic in row i; width+r = virtual artificial of row r

	markerSign []float64 // ±1 coefficient of each row's marker column
	eqMarker   []bool    // true: marker is pinned (EQ row), never enters
	flip       []float64
	nVirtual   int // rows starting from a virtual artificial

	cb []float64 // recomputeObjRow scratch

	pivots   int
	inPhase1 bool
}

// row returns row i of the matrix including its rhs entry.
func (t *tableau) row(i int) []float64 { return t.a[i*t.w1 : (i+1)*t.w1 : (i+1)*t.w1] }

func newTableau(p *Problem, ws *workspace) *tableau {
	m := len(p.rows)
	n := len(p.cost)

	t := &tableau{p: p, m: m, n: n, width: n + m, w1: n + m + 1}
	if ws != nil {
		ws.tabSign = growF64(ws.tabSign, m)
		ws.tabEq = growBool(ws.tabEq, m)
		ws.tabFlip = growF64(ws.tabFlip, m)
		ws.tabBasis = growInt(ws.tabBasis, m)
		ws.tabCost = growF64(ws.tabCost, t.width)
		ws.tabA = growF64(ws.tabA, m*t.w1)
		ws.tabObj = growF64(ws.tabObj, t.w1)
		ws.tabCB = growF64(ws.tabCB, m)
		t.markerSign, t.eqMarker, t.flip = ws.tabSign, ws.tabEq, ws.tabFlip
		t.basis, t.cost = ws.tabBasis, ws.tabCost
		t.a, t.obj, t.cb = ws.tabA, ws.tabObj, ws.tabCB
	} else {
		t.markerSign = make([]float64, m)
		t.eqMarker = make([]bool, m)
		t.flip = make([]float64, m)
		t.basis = make([]int, m)
		t.cost = make([]float64, t.width)
		t.a = make([]float64, m*t.w1)
		t.obj = make([]float64, t.w1)
		t.cb = make([]float64, m)
	}

	for i := range p.rows {
		r := &p.rows[i]
		ri := t.row(i)
		// Normalize so rhs ≥ 0; remember the sign flip to restore the
		// caller's row orientation in duals and rays.
		f := 1.0
		if r.rhs < 0 {
			f = -1.0
		}
		t.flip[i] = f
		for _, tm := range r.terms {
			ri[tm.Var] += f * tm.Coef
		}
		ri[t.width] = f * r.rhs

		marker := n + i
		switch r.sense {
		case LE:
			t.markerSign[i] = f
		case GE:
			t.markerSign[i] = -f
		case EQ:
			t.markerSign[i] = 1
			t.eqMarker[i] = true
		}
		ri[marker] = t.markerSign[i]

		// Initial basis: the marker when it forms a feasible identity
		// column (+1 with non-negative rhs), a virtual artificial else.
		if t.markerSign[i] > 0 && !t.eqMarker[i] {
			t.basis[i] = marker
		} else {
			t.basis[i] = t.width + i
			t.nVirtual++
		}
	}
	t.inPhase1 = true

	// Phase-1 reduced costs: cost 1 on virtual artificials only, so
	// obj[j] = −Σ_{i virtual} a[i][j].
	for i := 0; i < m; i++ {
		if t.basis[i] < t.width {
			continue
		}
		ri := t.row(i)
		for j := 0; j <= t.width; j++ {
			t.obj[j] -= ri[j]
		}
	}
	return t
}

// costOf returns the current-phase cost of a column, including virtual
// artificials.
func (t *tableau) costOf(col int) float64 {
	if col >= t.width {
		if t.inPhase1 {
			return 1
		}
		return 0
	}
	return t.cost[col]
}

// phase1Obj returns the current phase-1 objective (sum of artificials).
func (t *tableau) phase1Obj() float64 { return -t.obj[t.width] }

// objective returns the current phase-2 objective value.
func (t *tableau) objective() float64 { return -t.obj[t.width] }

// iterate pivots until optimal, unbounded, or the budget runs out.
func (t *tableau) iterate(phase1 bool) Status {
	// Generous budget: simplex is expected to finish in O(m+n) pivots in
	// practice; Bland's rule after the threshold guarantees termination.
	maxPivots := 200 * (t.m + t.width + 10)
	blandAfter := 20 * (t.m + t.width + 10)

	for iter := 0; ; iter++ {
		if iter >= maxPivots {
			return IterLimit
		}
		// Incremental updates to the reduced-cost row accumulate floating
		// point drift over long degenerate runs; refactorize periodically
		// so stale ±1e-10 noise cannot masquerade as negative reduced
		// costs and stall convergence.
		if iter > 0 && iter%256 == 0 {
			t.recomputeObjRow()
		}
		useBland := iter >= blandAfter

		enter := t.chooseEntering(phase1, useBland)
		if enter < 0 {
			return Optimal
		}
		leave := t.chooseLeaving(enter)
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// chooseEntering picks a column with negative reduced cost, or -1 at
// optimality. Pinned equality markers never enter; virtual artificials are
// not stored and therefore cannot.
func (t *tableau) chooseEntering(phase1, bland bool) int {
	if bland {
		for j := 0; j < t.width; j++ {
			if t.obj[j] < -costTol && !(j >= t.n && t.eqMarker[j-t.n]) {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < t.width; j++ {
		if t.obj[j] < bestVal && !(j >= t.n && t.eqMarker[j-t.n]) {
			best, bestVal = j, t.obj[j]
		}
	}
	return best
}

// chooseLeaving runs the minimum-ratio test on the entering column,
// breaking ties by smallest basis column to curb cycling.
func (t *tableau) chooseLeaving(enter int) int {
	leave := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		aij := t.a[i*t.w1+enter]
		if aij <= pivotTol {
			continue
		}
		ratio := t.a[i*t.w1+t.width] / aij
		if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && (leave < 0 || t.basis[i] < t.basis[leave])) {
			bestRatio = ratio
			leave = i
		}
	}
	return leave
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	t.pivots++
	rowL := t.row(leave)
	inv := 1 / rowL[enter]
	for j := 0; j <= t.width; j++ {
		rowL[j] *= inv
	}
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		ri := t.row(i)
		f := ri[enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.width; j++ {
			ri[j] -= f * rowL[j]
		}
		ri[enter] = 0 // kill roundoff residue exactly
	}
	f := t.obj[enter]
	if f != 0 {
		for j := 0; j <= t.width; j++ {
			t.obj[j] -= f * rowL[j]
		}
		t.obj[enter] = 0
	}
	t.basis[leave] = enter
}

// pivotOutArtificials removes zero-level virtual artificials from the
// basis where possible; rows where no stored pivot column exists are
// redundant and keep their virtual basic at level zero.
func (t *tableau) pivotOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.width {
			continue
		}
		for j := 0; j < t.width; j++ {
			if j >= t.n && t.eqMarker[j-t.n] {
				continue
			}
			if math.Abs(t.a[i*t.w1+j]) > 1e-7 {
				t.pivot(i, j)
				break
			}
		}
	}
}

// loadPhase2Costs swaps in the true objective for the current basis.
func (t *tableau) loadPhase2Costs() {
	t.inPhase1 = false
	for j := range t.cost {
		t.cost[j] = 0
	}
	copy(t.cost, t.p.cost)
	t.recomputeObjRow()
}

// recomputeObjRow rebuilds the reduced-cost row exactly from the current
// phase costs and tableau, clearing accumulated pivot roundoff. Row-major
// accumulation keeps the pass sequential over the flat matrix.
func (t *tableau) recomputeObjRow() {
	cb := t.cb[:t.m]
	for i := 0; i < t.m; i++ {
		cb[i] = t.costOf(t.basis[i])
	}
	for j := 0; j < t.width; j++ {
		t.obj[j] = t.cost[j]
	}
	t.obj[t.width] = 0
	for i := 0; i < t.m; i++ {
		c := cb[i]
		if c == 0 {
			continue
		}
		ri := t.row(i)
		for j := 0; j <= t.width; j++ {
			t.obj[j] -= c * ri[j]
		}
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.width {
			t.obj[t.basis[i]] = 0
		}
	}
}

// primal extracts the structural variable values from the basis.
func (t *tableau) primal() []float64 {
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			x[b] = t.a[i*t.w1+t.width]
		}
	}
	return x
}

// duals reads y = c_Bᵀ·B⁻¹ off the marker columns' reduced costs: row r's
// marker has cost 0 and column σ_r·e_r, so its reduced cost is −σ_r·y_r.
// Output is in the caller's row orientation.
func (t *tableau) duals() []float64 {
	y := make([]float64, t.m)
	for r := 0; r < t.m; r++ {
		y[r] = -t.obj[t.n+r] * t.markerSign[r] * t.flip[r]
	}
	return y
}

// farkasRay returns f = c₁_Bᵀ·B⁻¹ at phase-1 termination with positive
// objective, read off the marker reduced costs of the phase-1 objective
// row: the certificate satisfies f·b > 0 while fᵀA ≤ 0 over every column,
// proving Ax = b, x ≥ 0 infeasible. Oriented to the caller's rows.
func (t *tableau) farkasRay() []float64 {
	f := make([]float64, t.m)
	for r := 0; r < t.m; r++ {
		f[r] = -t.obj[t.n+r] * t.markerSign[r] * t.flip[r]
	}
	return f
}
