// presolve.go is the master-side reduction pass: it shrinks a Problem
// before the simplex sees it and maps the reduced solution back afterwards.
// Four reductions run to a fixpoint, all deterministic (index-ordered
// sweeps, no maps, no randomness):
//
//   - empty rows are checked against their sense and dropped (or declare
//     the problem infeasible outright);
//   - singleton rows become bound tightenings on their single variable and
//     are dropped;
//   - variables whose range collapses (lo == up, including EQ singletons)
//     are fixed and substituted into every row and the objective;
//   - rows whose activity range over the variable boxes cannot violate
//     them are dropped as redundant (and rows whose activity range cannot
//     satisfy them declare infeasibility).
//
// The pass is built for the Benders master, whose cut pool accumulates many
// rows that later tightenings make redundant, and for branch-and-bound
// roots where fixed binaries cascade. It must NOT be used on the slave:
// Postsolve recovers the primal solution exactly, but the dual of a
// singleton row folded into a bound resurfaces as a reduced cost, not a row
// dual, so recovered duals are only exact on rows presolve kept. Callers
// that feed duals into cut generation solve unreduced.
package lp

import "math"

// presolveMaxPasses caps the reduction fixpoint. Each pass is O(nnz); chains
// longer than this are pathological and the solver handles the leftovers.
const presolveMaxPasses = 8

// Presolved is the outcome of a Presolve call: either the problem was
// decided outright (Decided true, Status/trivial solution available via
// Postsolve(nil)), or Reduced holds a smaller equivalent problem whose
// solution Postsolve maps back to the original space.
type Presolved struct {
	// Reduced is the shrunken problem to solve; nil when Decided.
	Reduced *Problem
	// Decided reports that presolve settled the problem without a solve:
	// Status is then Optimal (every variable fixed, all rows satisfied) or
	// Infeasible.
	Decided bool
	Status  Status

	origN, origM int
	objConst     float64
	colMap       []int     // original column -> reduced column, -1 if eliminated
	fixedVal     []float64 // value of eliminated columns
	rowMap       []int     // original row -> reduced row, -1 if dropped
}

// Col maps an original column to the reduced problem: reduced ≥ 0 is its
// index in Reduced, or reduced == -1 with fixedVal the value presolve fixed
// it at.
func (ps *Presolved) Col(j int) (reduced int, fixedVal float64) {
	return ps.colMap[j], ps.fixedVal[j]
}

// Stats reports the reduction: variables and rows removed.
func (ps *Presolved) Stats() (varsRemoved, rowsRemoved int) {
	for _, c := range ps.colMap {
		if c < 0 {
			varsRemoved++
		}
	}
	for _, r := range ps.rowMap {
		if r < 0 {
			rowsRemoved++
		}
	}
	return
}

// Presolve reduces p without mutating it. The returned Presolved owns all
// its state; p may be solved or edited independently afterwards.
func Presolve(p *Problem) *Presolved {
	n, m := len(p.cost), len(p.rows)
	ps := &Presolved{
		origN:    n,
		origM:    m,
		colMap:   make([]int, n),
		fixedVal: make([]float64, n),
		rowMap:   make([]int, m),
	}

	lo := make([]float64, n)
	up := make([]float64, n)
	for j := 0; j < n; j++ {
		lo[j], up[j] = p.Bounds(j)
	}

	// Merge duplicate terms per row once up front so every later sweep sees
	// one coefficient per (row, variable).
	terms := make([][]Term, m)
	seen := make([]int, n)
	for j := range seen {
		seen[j] = -1
	}
	for i := 0; i < m; i++ {
		merged := make([]Term, 0, len(p.rows[i].terms))
		for _, tm := range p.rows[i].terms {
			if s := seen[tm.Var]; s >= 0 && s < len(merged) && merged[s].Var == tm.Var {
				merged[s].Coef += tm.Coef
			} else {
				seen[tm.Var] = len(merged)
				merged = append(merged, tm)
			}
		}
		for _, tm := range merged {
			seen[tm.Var] = -1
		}
		terms[i] = merged
	}

	fixed := make([]bool, n)
	dropped := make([]bool, m)
	infeasible := false

	fix := func(j int, v float64) {
		fixed[j] = true
		ps.fixedVal[j] = v
	}

	for pass := 0; pass < presolveMaxPasses && !infeasible; pass++ {
		changed := false

		for i := 0; i < m && !infeasible; i++ {
			if dropped[i] {
				continue
			}
			// Effective row after substituting fixed variables.
			eff := p.rows[i].rhs
			live := 0
			var lv int
			var lc float64
			minAct, maxAct := 0.0, 0.0
			for _, tm := range terms[i] {
				if tm.Coef == 0 {
					continue
				}
				if fixed[tm.Var] {
					eff -= tm.Coef * ps.fixedVal[tm.Var]
					continue
				}
				live++
				lv, lc = tm.Var, tm.Coef
				if tm.Coef > 0 {
					minAct += tm.Coef * lo[tm.Var]
					maxAct += tm.Coef * up[tm.Var]
				} else {
					minAct += tm.Coef * up[tm.Var]
					maxAct += tm.Coef * lo[tm.Var]
				}
			}
			sense := p.rows[i].sense

			switch {
			case live == 0:
				if (sense == LE && eff < -feasTol) ||
					(sense == GE && eff > feasTol) ||
					(sense == EQ && math.Abs(eff) > feasTol) {
					infeasible = true
					break
				}
				dropped[i], changed = true, true

			case live == 1:
				// Singleton row: fold into a bound on its one variable.
				v := eff / lc
				switch {
				case sense == EQ:
					if v < lo[lv]-feasTol || v > up[lv]+feasTol {
						infeasible = true
						break
					}
					v = math.Min(math.Max(v, lo[lv]), up[lv])
					lo[lv], up[lv] = v, v
				case (sense == LE) == (lc > 0): // a·x ≤ b with a>0, or a·x ≥ b with a<0
					if v < up[lv] {
						up[lv] = v
					}
				default: // lower-bound side; lo never drops below its current ≥ 0 value
					if v > lo[lv] {
						lo[lv] = v
					}
				}
				if up[lv] < lo[lv]-feasTol || up[lv] < -feasTol {
					infeasible = true
					break
				}
				dropped[i], changed = true, true

			default:
				// Activity-range redundancy and infeasibility checks.
				switch sense {
				case LE:
					if minAct > eff+feasTol {
						infeasible = true
					} else if maxAct <= eff+feasTol {
						dropped[i], changed = true, true
					}
				case GE:
					if maxAct < eff-feasTol {
						infeasible = true
					} else if minAct >= eff-feasTol {
						dropped[i], changed = true, true
					}
				case EQ:
					if minAct > eff+feasTol || maxAct < eff-feasTol {
						infeasible = true
					} else if maxAct-minAct <= feasTol && math.Abs(minAct-eff) <= feasTol {
						dropped[i], changed = true, true
					}
				}
			}
		}
		if infeasible {
			break
		}

		// Fix collapsed ranges (from singleton tightening or the caller).
		for j := 0; j < n; j++ {
			if fixed[j] {
				continue
			}
			if up[j] < lo[j]-feasTol {
				infeasible = true
				break
			}
			if up[j]-lo[j] <= 1e-9 {
				fix(j, lo[j])
				changed = true
			}
		}

		if !changed {
			break
		}
	}

	if infeasible {
		ps.Decided = true
		ps.Status = Infeasible
		for j := range ps.colMap {
			ps.colMap[j] = -1
		}
		for i := range ps.rowMap {
			ps.rowMap[i] = -1
		}
		return ps
	}

	// Build the reduced problem.
	red := New()
	nLive := 0
	for j := 0; j < n; j++ {
		if fixed[j] {
			ps.colMap[j] = -1
			ps.objConst += p.cost[j] * ps.fixedVal[j]
			continue
		}
		ps.colMap[j] = nLive
		nLive++
		red.AddVar(p.names[j], p.cost[j])
		if lo[j] != 0 || !math.IsInf(up[j], 1) {
			red.SetBounds(ps.colMap[j], lo[j], up[j])
		}
	}
	mLive := 0
	for i := 0; i < m; i++ {
		if dropped[i] {
			ps.rowMap[i] = -1
			continue
		}
		eff := p.rows[i].rhs
		var rt []Term
		for _, tm := range terms[i] {
			if tm.Coef == 0 {
				continue
			}
			if fixed[tm.Var] {
				eff -= tm.Coef * ps.fixedVal[tm.Var]
				continue
			}
			rt = append(rt, Term{Var: ps.colMap[tm.Var], Coef: tm.Coef})
		}
		if len(rt) == 0 {
			// All variables were fixed after the last sweep: the pass cap
			// hit before this became an "empty row"; check it here.
			sense := p.rows[i].sense
			if (sense == LE && eff < -feasTol) ||
				(sense == GE && eff > feasTol) ||
				(sense == EQ && math.Abs(eff) > feasTol) {
				ps.Decided = true
				ps.Status = Infeasible
				return ps
			}
			ps.rowMap[i] = -1
			continue
		}
		ps.rowMap[i] = mLive
		mLive++
		red.AddNamedConstraint(p.rows[i].name, p.rows[i].sense, eff, rt...)
	}

	if nLive == 0 {
		// Everything fixed and every surviving row verified: trivially
		// optimal at the fixed point.
		ps.Decided = true
		ps.Status = Optimal
		return ps
	}
	ps.Reduced = red
	return ps
}

// Postsolve maps a solution of the reduced problem back to the original
// variable and row spaces. When the presolve decided the problem outright,
// red is ignored (pass nil) and the trivial solution is synthesized.
// Recovery is deterministic: X is exact (fixed variables take their fixed
// values), Obj adds back the fixed-cost constant, and dropped rows carry
// zero dual — exact for redundant and empty rows, an approximation for
// singleton rows whose folded bound is tight at the optimum (that
// multiplier lives in the reduced problem's reduced costs).
func (ps *Presolved) Postsolve(red *Solution) *Solution {
	if ps.Decided {
		sol := &Solution{Status: ps.Status}
		if ps.Status == Optimal {
			sol.Obj = ps.objConst
			sol.X = append([]float64(nil), ps.fixedVal...)
			sol.Dual = make([]float64, ps.origM)
		}
		return sol
	}
	sol := &Solution{Status: red.Status, Pivots: red.Pivots}
	switch red.Status {
	case Optimal:
		sol.Obj = red.Obj + ps.objConst
		sol.X = make([]float64, ps.origN)
		for j := 0; j < ps.origN; j++ {
			if c := ps.colMap[j]; c >= 0 {
				sol.X[j] = red.X[c]
			} else {
				sol.X[j] = ps.fixedVal[j]
			}
		}
		if red.Dual != nil {
			sol.Dual = make([]float64, ps.origM)
			for i := 0; i < ps.origM; i++ {
				if r := ps.rowMap[i]; r >= 0 {
					sol.Dual[i] = red.Dual[r]
				}
			}
		}
	case Infeasible:
		if red.Ray != nil {
			sol.Ray = make([]float64, ps.origM)
			for i := 0; i < ps.origM; i++ {
				if r := ps.rowMap[i]; r >= 0 {
					sol.Ray[i] = red.Ray[r]
				}
			}
		}
	}
	return sol
}
