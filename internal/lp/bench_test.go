package lp

import (
	"math/rand"
	"testing"
)

// randomLP builds a dense feasible minimization with n variables and m
// rows, the shape the AC-RR slave problems take.
func randomLP(n, m int, seed int64) *Problem {
	r := rand.New(rand.NewSource(seed))
	p := New()
	point := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddVar("v", r.Float64()*2-1)
		point[j] = r.Float64() * 5
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, 8)
		act := 0.0
		for k := 0; k < 8; k++ {
			j := r.Intn(n)
			c := r.Float64()*2 - 0.5
			terms = append(terms, T(j, c))
			act += c * point[j]
		}
		p.AddConstraint(LE, act+r.Float64()*3, terms...)
	}
	for j := 0; j < n; j++ {
		p.AddConstraint(LE, 10, T(j, 1))
	}
	return p
}

func benchSolve(b *testing.B, n, m int) {
	p := randomLP(n, m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := p.Solve()
		if err != nil || s.Status == IterLimit {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}

func BenchmarkSolve50x50(b *testing.B)   { benchSolve(b, 50, 50) }
func BenchmarkSolve200x200(b *testing.B) { benchSolve(b, 200, 200) }
func BenchmarkSolve400x400(b *testing.B) { benchSolve(b, 400, 400) }

// BenchmarkResolveRHS measures the warm path the Benders slave exercises:
// one structural build, many right-hand-side rewrites. The Cold variant
// re-runs the two-phase tableau per rewrite; the Warm variant threads a
// Basis through SolveFrom so each rewrite costs a few dual simplex pivots.
// pivots/op is reported so the iteration-count saving is visible in CI
// output next to the wall-clock one.
func benchResolveRHS(b *testing.B, warm bool) {
	p := randomLP(100, 100, 2)
	var basis Basis
	pivots := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SetRHS(i%100, float64(1+i%7))
		var s *Solution
		var err error
		if warm {
			s, err = p.SolveFrom(&basis)
		} else {
			s, err = p.Solve()
		}
		if err != nil {
			b.Fatal(err)
		}
		pivots += s.Pivots
	}
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
}

func BenchmarkColdSimplexResolveRHS(b *testing.B) { benchResolveRHS(b, false) }
func BenchmarkWarmSimplexResolveRHS(b *testing.B) { benchResolveRHS(b, true) }

// BenchmarkWarmSlaveSteadySolve measures the steady-state warm solve the
// Benders slave runs every admission round: the problem structure, basis
// factorization and workspace are already warm, each op rewrites one RHS
// and re-enters via SolveFrom. ReportAllocs pins the tentpole contract in
// the BENCH_PR*.json trajectory: 0 allocs/op on this path (asserted hard
// by TestWarmSteadyStateZeroAllocs).
func BenchmarkWarmSlaveSteadySolve(b *testing.B) {
	p := randomLP(100, 100, 2)
	var basis Basis
	if _, err := p.SolveFrom(&basis); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ { // reach the steady amortized footprint
		p.SetRHS(i%100, float64(1+i%7))
		if _, err := p.SolveFrom(&basis); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SetRHS(i%100, float64(1+i%7))
		s, err := p.SolveFrom(&basis)
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}
