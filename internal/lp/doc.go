// Package lp implements a dense two-phase primal simplex solver for linear
// programs, with dual-value extraction and Farkas infeasibility certificates.
//
// It is the substrate that replaces the commercial CPLEX solver used by the
// paper "Overbooking Network Slices through Yield-driven End-to-End
// Orchestration" (CoNEXT '18). The AC-RR engine needs three things from an
// LP solver, all provided here:
//
//   - optimal primal solutions (resource reservations z, y),
//   - dual values at optimality (Benders optimality cuts), and
//   - dual extreme rays when the primal is infeasible (Benders
//     feasibility cuts; "PDS(x) is unbounded" in the paper's Algorithm 1).
//
// Problems are stated in the natural form
//
//	minimize    c·x
//	subject to  aᵢ·x {≤,=,≥} bᵢ    i = 1..m
//	            x ≥ 0
//
// Upper bounds on variables are expressed as ordinary constraint rows.
// Internally the solver converts to equality standard form with slack and
// artificial variables and runs a two-phase dense tableau simplex with
// Dantzig pricing and a Bland's-rule fallback that guarantees termination.
package lp
