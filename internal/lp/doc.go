// Package lp implements a two-phase primal simplex solver for linear
// programs — with dual-value extraction and Farkas infeasibility
// certificates — plus a warm-start revised simplex over a sparse
// LU-factorized basis for re-solve sequences.
//
// It is the substrate that replaces the commercial CPLEX solver used by the
// paper "Overbooking Network Slices through Yield-driven End-to-End
// Orchestration" (CoNEXT '18). The AC-RR engine needs three things from an
// LP solver, all provided here:
//
//   - optimal primal solutions (resource reservations z, y),
//   - dual values at optimality (Benders optimality cuts), and
//   - dual extreme rays when the primal is infeasible (Benders
//     feasibility cuts; "PDS(x) is unbounded" in the paper's Algorithm 1).
//
// Problems are stated in the natural form
//
//	minimize    c·x
//	subject to  aᵢ·x {≤,=,≥} bᵢ    i = 1..m
//	            lᵢ ≤ xᵢ ≤ uᵢ       (default 0 ≤ xᵢ, set via SetBounds)
//
// Variable bounds are handled natively by a bounded-variable simplex —
// no constraint rows are added, so rewriting them between solves (the
// branch-and-bound fixing pattern) keeps every warm-start cache valid.
// Internally the solver converts to equality standard form with slack and
// artificial variables. One-shot solves (Solve) run a two-phase tableau
// simplex — dense, flat strided storage — with Dantzig pricing and a
// Bland's-rule fallback that guarantees termination. Re-solve sequences
// (SolveFrom with a Basis) run a revised simplex over a sparse LU
// factorization of the basis matrix maintained by Forrest–Tomlin row
// updates (bounded fill, stability-tested, refactorizing in place when
// either bound trips) with Devex pricing; all scratch lives in a
// Basis-owned workspace, so the steady-state warm solve — the access
// pattern of the Benders slave, the admission shards and the
// branch-and-bound node loop — allocates nothing. Presolve/Postsolve
// shrink a master problem deterministically before solving, and
// Basis.FtranBatch pushes a round's independent RHS vectors through one
// factor traversal. See DESIGN.md §7 for the factorization design and
// determinism argument, and §11 for the metro-scale tier (FT updates,
// bounded variables, presolve, batched ftran).
package lp
