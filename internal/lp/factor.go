// factor.go holds the basis factorization engines behind the revised
// simplex. A factorEngine owns a factorized representation of the current
// basis matrix B (the columns listed in Basis.cols) and answers the two
// linear systems every simplex iteration is made of:
//
//	ftran:  u = B⁻¹·v   (entering column transformed into the basis frame)
//	btran:  y = B⁻ᵀ·c   (duals / pivot rows read out of the basis frame)
//
// Two implementations exist. sparseLU is the production engine: an LU
// factorization P·B·Q = L·U with a Markowitz-style static column ordering
// (sparsest basis column eliminated first) and threshold-free partial
// pivoting by magnitude, stored as compressed sparse columns, maintained
// across pivots by Forrest–Tomlin updates that keep U an explicit
// triangular factor. denseFactor is the explicit-inverse engine the package
// shipped before the LU rewrite, kept as the numerical cross-check oracle:
// the dense-vs-sparse property tests drive both engines over the same solve
// sequences and require identical statuses and matching solutions. All
// engine storage lives in the Basis workspace and is reused across solves —
// the steady-state warm path performs no allocations.
//
// Both engines are strictly deterministic: pivot choices break ties by the
// smallest index, orderings are stable, and no map iteration or randomness
// is involved, so a replayed solve takes the identical pivot path.
package lp

import "math"

// factorEngine is a factorized basis. refactor rebuilds the factorization
// from r.bs.cols (false means B is singular); ftran/btran solve against it
// including any accumulated factor updates; update applies the pivot that
// replaces the basic column at position leave with the column whose
// transformed form is u = B⁻¹·A_enter, returning true when the caller must
// refactorize (update budget exhausted, storage growth bound hit, or the
// update failed its numerical stability test).
//
// Vector index conventions: "row-indexed" vectors live in the caller's
// constraint-row space; "position-indexed" vectors are aligned with
// Basis.cols. ftran maps row space to position space, btran the reverse.
// Neither call may modify its input slice.
type factorEngine interface {
	refactor(r *revised) bool
	ftran(rowIn, posOut []float64)
	btran(posIn, rowOut []float64)
	// ftranBatch is ftran over k independent right-hand sides packed with
	// stride m (rowIn[b*m:(b+1)*m] is vector b): the factors are traversed
	// once per batch instead of once per vector, so the factor-index walk
	// amortizes across the batch.
	ftranBatch(rowIn []float64, k int, posOut []float64)
	update(leave int, u []float64) bool
}

// ftranBatchMax caps how many right-hand sides one ftranBatch call packs;
// callers chunk larger batches. Sized so the packed scratch (2·max·m
// floats) stays cache-friendly while still amortizing the factor walk.
const ftranBatchMax = 8

// How many factor updates an engine accumulates before a full
// refactorization clears the compounded roundoff.
const refactorEvery = 64

// etaNNZPerRow bounds update-induced storage growth: once U's arenas or the
// FT eta file exceed the refactorization-time fill by more than
// etaNNZPerRow·m entries, the solves cost more than a refactorization would
// save, so update signals a rebuild even before refactorEvery pivots have
// accumulated.
const etaNNZPerRow = 8

// ftStabilityTol is the Forrest–Tomlin stability threshold: an update whose
// new U diagonal is smaller than this fraction of the spike's largest entry
// has cancelled too heavily to trust, and triggers a refactorization
// instead of committing.
const ftStabilityTol = 1e-8

// singularPivotTol is the smallest pivot magnitude a factorization accepts;
// below it the basis is declared singular and the warm path falls back to a
// cold solve (matching the pre-LU dense engine's threshold).
const singularPivotTol = 1e-10

// debugDenseFactor routes new factorizations to the dense explicit-inverse
// engine. It exists only so tests can cross-validate the sparse LU engine
// against the dense one over identical solve sequences; production code
// must never set it. Engines already built keep working when the flag
// flips — it is consulted only at refactorization time on a fresh Basis.
var debugDenseFactor = false

// DebugForceDenseFactor selects the dense reference factorization engine
// for subsequently factorized bases. Test-only cross-validation hook; it is
// process-global and not safe to toggle concurrently with solves.
func DebugForceDenseFactor(on bool) { debugDenseFactor = on }

// sparseLU is the sparse basis factorization P·B·Q = L·U maintained across
// pivots by Forrest–Tomlin updates. L is unit lower triangular and frozen
// between refactorizations; U is kept genuinely factored through every
// pivot: replacing a basic column swaps the corresponding U column for its
// spike (the entering column pushed through L and the accumulated row
// etas), eliminates the now-nontriangular row of U with one merged
// elementary row operation appended to the FT eta file, and moves that
// row/column pair to the end of U's *logical* order. Triangularity is a
// property of the logical order (uord/upos), never of physical storage —
// the update is pure bookkeeping plus O(row s fill) arithmetic.
//
// After t updates the factorization reads
//
//	B_t⁻¹ = Q ∘ U_t⁻¹ ∘ R_t···R_1 ∘ L⁻¹ ∘ P
//
// with each R_e = I + Σ_c m_c·e_s·e_cᵀ a merged row eta (row s of U gained
// m_c times row c during elimination). Unlike the product-form eta file
// this replaces, U_t stays an explicit triangular factor, so update cost
// and solve cost track U's actual fill instead of growing by one dense-ish
// eta per pivot — the property that lets basis dimension grow by an order
// of magnitude inside the same refactorEvery window.
type sparseLU struct {
	m int

	// L: strictly-below-diagonal entries per elimination column (the unit
	// diagonal is implicit). Indices are elimination steps after refactor.
	lPtr []int32
	lIdx []int32
	lVal []float64

	// U, stored both ways because updates need rows and solves need
	// columns. Column k (an elimination step) owns the arena slice
	// ucIdx/ucVal[ucPtr[k] : ucPtr[k]+ucLen[k]] of strictly-off-diagonal
	// entries (row step, value); urPtr/urLen/urIdx/urVal mirror it by row.
	// Updates rewrite blocks by appending fresh ones to the arena end, so
	// a refactorization also compacts.
	ucPtr []int32
	ucLen []int32
	ucIdx []int32
	ucVal []float64
	uDiag []float64
	urPtr []int32
	urLen []int32
	urIdx []int32
	urVal []float64

	prow []int32 // elimination step -> constraint row (P)
	pinv []int32 // constraint row -> elimination step (P⁻¹)
	qcol []int32 // elimination step -> basis position (Q)
	qinv []int32 // basis position -> elimination step

	// Logical triangular order of U: uord[p] is the step at logical
	// position p, upos its inverse. U[r,c] ≠ 0 ⟹ upos[r] ≤ upos[c].
	uord []int32
	upos []int32

	// Forrest–Tomlin eta file: eta e is the merged row operation
	// row ftS[e] += Σ_q ftVal[q]·row ftIdx[q], sliced by ftPtr.
	ftS   []int32
	ftPtr []int32
	ftIdx []int32
	ftVal []float64

	nUpdates int
	nnzU0    int // off-diagonal U nonzeros at refactorization (growth bound)

	// Scratch reused across refactorizations and solves.
	work   []float64 // row-space scatter / step-space solve vector
	step   []float64 // working row values during FT elimination
	spike  []float64 // FT spike column in step space
	bwork  []float64 // batched-ftran solve vectors (ftranBatchMax·m)
	btmp   []float64 // per-vector pivot values inside the batched solves
	mark   []int32   // scatter stamps (row or step space)
	stamp  int32
	nzRows []int32 // nonzero rows of the column under elimination
	order  []int32 // column elimination order
	cnt    []int32 // counting-sort scratch
}

func (f *sparseLU) reset(m int) {
	f.m = m
	f.lPtr = growI32(f.lPtr, m+1)
	f.ucPtr = growI32(f.ucPtr, m)
	f.ucLen = growI32(f.ucLen, m)
	f.urPtr = growI32(f.urPtr, m)
	f.urLen = growI32(f.urLen, m)
	f.uDiag = growF64(f.uDiag, m)
	f.prow = growI32(f.prow, m)
	f.pinv = growI32(f.pinv, m)
	f.qcol = growI32(f.qcol, m)
	f.qinv = growI32(f.qinv, m)
	f.uord = growI32(f.uord, m)
	f.upos = growI32(f.upos, m)
	f.work = growF64(f.work, m)
	f.step = growF64(f.step, m)
	f.spike = growF64(f.spike, m)
	f.bwork = growF64(f.bwork, ftranBatchMax*m)
	f.btmp = growF64(f.btmp, ftranBatchMax)
	f.mark = growI32(f.mark, m)
	f.nzRows = growI32(f.nzRows, m)
	f.order = growI32(f.order, m)
	f.cnt = growI32(f.cnt, m+2)
	f.lIdx = f.lIdx[:0]
	f.lVal = f.lVal[:0]
	f.ucIdx = f.ucIdx[:0]
	f.ucVal = f.ucVal[:0]
	f.urIdx = f.urIdx[:0]
	f.urVal = f.urVal[:0]
	f.clearEtas()
}

func (f *sparseLU) clearEtas() {
	f.nUpdates = 0
	f.ftS = f.ftS[:0]
	f.ftIdx = f.ftIdx[:0]
	f.ftVal = f.ftVal[:0]
	f.ftPtr = append(f.ftPtr[:0], 0)
}

// refactor builds the factorization from the basic column set by
// left-looking elimination. The column elimination order is chosen up front
// by ascending column nonzero count (a static Markowitz-style minimum-degree
// heuristic: sparse columns first keeps fill-in local), ties broken by basis
// position; within a column the pivot row is the remaining entry of largest
// magnitude, ties broken by smallest row index. Returns false on a singular
// basis.
func (f *sparseLU) refactor(r *revised) bool {
	m := r.m
	f.reset(m)
	if m == 0 {
		return true
	}

	// Counting sort of basis positions by column nonzero count.
	cnt := f.cnt[: m+2 : m+2]
	for i := range cnt {
		cnt[i] = 0
	}
	for k := 0; k < m; k++ {
		n := r.colNNZ(r.bs.cols[k])
		if n > m {
			n = m
		}
		cnt[n+1]++
	}
	for i := 1; i < len(cnt); i++ {
		cnt[i] += cnt[i-1]
	}
	for k := 0; k < m; k++ {
		n := r.colNNZ(r.bs.cols[k])
		if n > m {
			n = m
		}
		f.order[cnt[n]] = int32(k)
		cnt[n]++
	}

	for i := 0; i < m; i++ {
		f.pinv[i] = -1
		f.work[i] = 0
		f.mark[i] = 0
	}
	f.stamp = 0

	for step := 0; step < m; step++ {
		pos := f.order[step]
		col := r.bs.cols[pos]
		if col < 0 || col >= r.width {
			return false
		}
		f.ucPtr[step] = int32(len(f.ucIdx))

		// Scatter B's column for this basis position into row space.
		f.stamp++
		nz := f.nzRows[:0]
		w := f.work
		if col < r.n {
			ws := r.ws
			for t := ws.colPtr[col]; t < ws.colPtr[col+1]; t++ {
				row := ws.colRow[t]
				if f.mark[row] != f.stamp {
					f.mark[row] = f.stamp
					w[row] = 0
					nz = append(nz, row)
				}
				w[row] += ws.colVal[t]
			}
		} else {
			row := int32(col - r.n)
			f.mark[row] = f.stamp
			w[row] = r.sigma[row]
			nz = append(nz, row)
		}

		// Left-looking elimination: apply the already-built columns of L in
		// step order. L entries still carry constraint-row indices here (the
		// step-space remap happens once the permutation is complete).
		//
		// The flat s-scan costs O(m²/2) stamp probes per refactorization
		// regardless of fill — a deliberate simplicity trade at this
		// repo's basis sizes (m ≲ a few hundred: tens of microseconds per
		// refactor, amortized over refactorEvery pivots). If instances
		// grow another order of magnitude, replace it with a DFS reach-set
		// over the L pattern (Gilbert–Peierls / CSparse lu) to make each
		// column cost proportional to its actual fill.
		for s := 0; s < step; s++ {
			pr := f.prow[s]
			if f.mark[pr] != f.stamp {
				continue
			}
			v := w[pr]
			if v == 0 {
				continue
			}
			f.ucIdx = append(f.ucIdx, int32(s))
			f.ucVal = append(f.ucVal, v)
			for t := f.lPtr[s]; t < f.lPtr[s+1]; t++ {
				row := f.lIdx[t]
				if f.mark[row] != f.stamp {
					f.mark[row] = f.stamp
					w[row] = 0
					nz = append(nz, row)
				}
				w[row] -= f.lVal[t] * v
			}
		}

		// Pivot: largest-magnitude entry among rows not yet pivoted.
		piv := int32(-1)
		pivAbs := singularPivotTol
		for _, row := range nz {
			if f.pinv[row] >= 0 {
				continue
			}
			if a := math.Abs(w[row]); a > pivAbs || (a == pivAbs && piv >= 0 && row < piv) {
				piv, pivAbs = row, a
			}
		}
		if piv < 0 {
			return false
		}
		d := w[piv]
		f.prow[step] = piv
		f.pinv[piv] = int32(step)
		f.qcol[step] = pos
		f.uDiag[step] = d

		inv := 1 / d
		for _, row := range nz {
			if f.pinv[row] >= 0 || row == piv {
				continue
			}
			if v := w[row]; v != 0 {
				f.lIdx = append(f.lIdx, row)
				f.lVal = append(f.lVal, v*inv)
			}
		}
		f.lPtr[step+1] = int32(len(f.lIdx))
		f.ucLen[step] = int32(len(f.ucIdx)) - f.ucPtr[step]
	}
	f.lPtr[0] = 0

	// Remap L's row indices into elimination-step space so the solves run
	// without permutation lookups.
	for t := range f.lIdx {
		f.lIdx[t] = f.pinv[f.lIdx[t]]
	}

	// Build the row-wise mirror of U (a counting-sort transpose), the
	// basis-position inverse of Q, and the logical triangular order —
	// identity right after a refactorization; FT updates rotate it.
	nnz := len(f.ucIdx)
	f.nnzU0 = nnz
	f.urIdx = growI32(f.urIdx, nnz)
	f.urVal = growF64(f.urVal, nnz)
	for i := 0; i < m; i++ {
		f.urLen[i] = 0
	}
	for _, r := range f.ucIdx {
		f.urLen[r]++
	}
	off := int32(0)
	cur := f.cnt[:m]
	for i := 0; i < m; i++ {
		f.urPtr[i] = off
		cur[i] = off
		off += f.urLen[i]
	}
	for k := 0; k < m; k++ {
		end := f.ucPtr[k] + f.ucLen[k]
		for t := f.ucPtr[k]; t < end; t++ {
			row := f.ucIdx[t]
			f.urIdx[cur[row]] = int32(k)
			f.urVal[cur[row]] = f.ucVal[t]
			cur[row]++
		}
	}
	for k := 0; k < m; k++ {
		f.qinv[f.qcol[k]] = int32(k)
		f.uord[k] = int32(k)
		f.upos[k] = int32(k)
	}
	f.clearEtas()
	return true
}

// ftran computes posOut = B⁻¹·rowIn: permute, solve L, replay the FT row
// etas oldest-first, solve U in its logical order, permute back.
func (f *sparseLU) ftran(rowIn, posOut []float64) {
	m := f.m
	x := f.work[:m]
	for k := 0; k < m; k++ {
		x[k] = rowIn[f.prow[k]]
	}
	// Unit lower triangular forward solve.
	for k := 0; k < m; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			x[f.lIdx[t]] -= f.lVal[t] * xk
		}
	}
	// FT row etas, oldest first: x[s] += Σ m_c·x[c].
	for e := 0; e < len(f.ftS); e++ {
		acc := x[f.ftS[e]]
		for q := f.ftPtr[e]; q < f.ftPtr[e+1]; q++ {
			acc += f.ftVal[q] * x[f.ftIdx[q]]
		}
		x[f.ftS[e]] = acc
	}
	// U backward solve in descending logical order (column saxpy form).
	for p := m - 1; p >= 0; p-- {
		k := f.uord[p]
		v := x[k] / f.uDiag[k]
		x[k] = v
		if v == 0 {
			continue
		}
		end := f.ucPtr[k] + f.ucLen[k]
		for t := f.ucPtr[k]; t < end; t++ {
			x[f.ucIdx[t]] -= f.ucVal[t] * v
		}
	}
	for k := 0; k < m; k++ {
		posOut[f.qcol[k]] = x[k]
	}
}

// ftranBatch solves the k packed right-hand sides through one traversal of
// the factors: every L entry, eta entry and U column is visited once per
// batch with the inner loop running across the vectors, so the factor-index
// walk (the memory-bound part of ftran) amortizes over the batch.
func (f *sparseLU) ftranBatch(rowIn []float64, k int, posOut []float64) {
	m := f.m
	if k == 1 {
		f.ftran(rowIn[:m], posOut[:m])
		return
	}
	x := f.bwork[:k*m]
	for b := 0; b < k; b++ {
		xb := x[b*m : (b+1)*m]
		in := rowIn[b*m : (b+1)*m]
		for i := 0; i < m; i++ {
			xb[i] = in[f.prow[i]]
		}
	}
	for s := 0; s < m; s++ {
		for t := f.lPtr[s]; t < f.lPtr[s+1]; t++ {
			idx, v := int(f.lIdx[t]), f.lVal[t]
			for b := 0; b < k; b++ {
				x[b*m+idx] -= v * x[b*m+s]
			}
		}
	}
	for e := 0; e < len(f.ftS); e++ {
		s := int(f.ftS[e])
		for q := f.ftPtr[e]; q < f.ftPtr[e+1]; q++ {
			c, v := int(f.ftIdx[q]), f.ftVal[q]
			for b := 0; b < k; b++ {
				x[b*m+s] += v * x[b*m+c]
			}
		}
	}
	tmp := f.btmp[:k]
	for p := m - 1; p >= 0; p-- {
		kc := int(f.uord[p])
		d := f.uDiag[kc]
		for b := 0; b < k; b++ {
			v := x[b*m+kc] / d
			x[b*m+kc] = v
			tmp[b] = v
		}
		end := f.ucPtr[kc] + f.ucLen[kc]
		for t := f.ucPtr[kc]; t < end; t++ {
			idx, v := int(f.ucIdx[t]), f.ucVal[t]
			for b := 0; b < k; b++ {
				x[b*m+idx] -= v * tmp[b]
			}
		}
	}
	for b := 0; b < k; b++ {
		xb := x[b*m : (b+1)*m]
		out := posOut[b*m : (b+1)*m]
		for i := 0; i < m; i++ {
			out[f.qcol[i]] = xb[i]
		}
	}
}

// btran computes rowOut = B⁻ᵀ·posIn: permute, solve Uᵀ in ascending logical
// order, replay the FT etas transposed newest-first, solve Lᵀ, permute back.
func (f *sparseLU) btran(posIn, rowOut []float64) {
	m := f.m
	x := f.work[:m]
	for k := 0; k < m; k++ {
		x[k] = posIn[f.qcol[k]]
	}
	// Uᵀ is lower triangular in the logical order: forward solve, reading
	// each column of U as the dot-product row of Uᵀ.
	for p := 0; p < m; p++ {
		k := f.uord[p]
		acc := x[k]
		end := f.ucPtr[k] + f.ucLen[k]
		for t := f.ucPtr[k]; t < end; t++ {
			acc -= f.ucVal[t] * x[f.ucIdx[t]]
		}
		x[k] = acc / f.uDiag[k]
	}
	// Transposed FT etas, newest first: x[c] += m_c·x[s].
	for e := len(f.ftS) - 1; e >= 0; e-- {
		vs := x[f.ftS[e]]
		if vs != 0 {
			for q := f.ftPtr[e]; q < f.ftPtr[e+1]; q++ {
				x[f.ftIdx[q]] += f.ftVal[q] * vs
			}
		}
	}
	// Lᵀ is upper triangular with unit diagonal: backward solve.
	for k := m - 1; k >= 0; k-- {
		acc := x[k]
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			acc -= f.lVal[t] * x[f.lIdx[t]]
		}
		x[k] = acc
	}
	for k := 0; k < m; k++ {
		rowOut[f.prow[k]] = x[k]
	}
}

// addRowEntry appends entry (row r, column c, value v) to U's row-wise
// storage, rewriting the row's block at the arena end when it cannot grow
// in place.
func (f *sparseLU) addRowEntry(r, c int32, v float64) {
	end := f.urPtr[r] + f.urLen[r]
	if int(end) != len(f.urIdx) {
		start := int32(len(f.urIdx))
		f.urIdx = append(f.urIdx, f.urIdx[f.urPtr[r]:end]...)
		f.urVal = append(f.urVal, f.urVal[f.urPtr[r]:end]...)
		f.urPtr[r] = start
	}
	f.urIdx = append(f.urIdx, c)
	f.urVal = append(f.urVal, v)
	f.urLen[r]++
}

// update applies the Forrest–Tomlin column replacement. The basic column at
// position leave (elimination step s = qinv[leave]) is replaced by the
// entering column, whose spike in U's frame is w = U·(Q⁻¹·u). Row s of the
// spiked U is eliminated against the rows after it in logical order; only
// the multipliers survive, as one merged row eta, because the elimination
// changes row s alone and row s ends up empty. U then keeps exact
// triangular form with s moved to the last logical position. Returns true
// when the caller must refactorize: the update count or arena growth hit
// their bounds, or the new diagonal failed the stability test (in which
// case any half-committed state is irrelevant — the rebuild starts from the
// already-updated basis columns).
func (f *sparseLU) update(leave int, u []float64) bool {
	m := f.m
	s := int(f.qinv[leave])

	// Spike w = U·(Q⁻¹·u): u is the entering column already pushed through
	// the whole factorization, so multiplying back through U re-expresses it
	// in the frame where it can replace U's column s.
	w := f.spike[:m]
	for i := range w {
		w[i] = 0
	}
	for k := 0; k < m; k++ {
		xk := u[f.qcol[k]]
		if xk == 0 {
			continue
		}
		w[k] += f.uDiag[k] * xk
		end := f.ucPtr[k] + f.ucLen[k]
		for t := f.ucPtr[k]; t < end; t++ {
			w[f.ucIdx[t]] += f.ucVal[t] * xk
		}
	}
	maxw := 0.0
	for k := 0; k < m; k++ {
		if a := math.Abs(w[k]); a > maxw {
			maxw = a
		}
	}

	// Eliminate row s of the spiked U. The working row starts as the
	// committed row s and picks up fill from each row operation; committed
	// rows are only read. The spike column's contribution shows up purely
	// in the diagonal: row op c hits column s at value w[c].
	f.stamp++
	rowW := f.step[:m]
	endS := f.urPtr[s] + f.urLen[s]
	for t := f.urPtr[s]; t < endS; t++ {
		c := f.urIdx[t]
		f.mark[c] = f.stamp
		rowW[c] = f.urVal[t]
	}
	etaStart := len(f.ftIdx)
	newDiag := w[s]
	for p := int(f.upos[s]) + 1; p < m; p++ {
		c := f.uord[p]
		if f.mark[c] != f.stamp {
			continue
		}
		v := rowW[c]
		if v == 0 {
			continue
		}
		mc := -v / f.uDiag[c]
		rend := f.urPtr[c] + f.urLen[c]
		for t := f.urPtr[c]; t < rend; t++ {
			j := f.urIdx[t]
			if f.mark[j] != f.stamp {
				f.mark[j] = f.stamp
				rowW[j] = 0
			}
			rowW[j] += mc * f.urVal[t]
		}
		newDiag += mc * w[c]
		f.ftIdx = append(f.ftIdx, c)
		f.ftVal = append(f.ftVal, mc)
	}
	if len(f.ftIdx) > etaStart {
		f.ftS = append(f.ftS, int32(s))
		f.ftPtr = append(f.ftPtr, int32(len(f.ftIdx)))
	}

	// Stability test: a diagonal that is absolutely tiny, or tiny relative
	// to the spike it came from, means heavy cancellation — committing it
	// would poison every later solve. Signal refactorization instead.
	if a := math.Abs(newDiag); a <= singularPivotTol || a < ftStabilityTol*maxw {
		return true
	}

	// Commit. Stale row-s entries leave their columns, stale column-s
	// entries leave their rows, the spike becomes the new column s (and is
	// mirrored into the row storage), and s rotates to the last logical
	// position. Physical blocks never move except by append, so all other
	// row/column views stay valid.
	for t := f.urPtr[s]; t < endS; t++ {
		j := f.urIdx[t]
		cend := f.ucPtr[j] + f.ucLen[j]
		for q := f.ucPtr[j]; q < cend; q++ {
			if int(f.ucIdx[q]) == s {
				f.ucIdx[q] = f.ucIdx[cend-1]
				f.ucVal[q] = f.ucVal[cend-1]
				f.ucLen[j]--
				break
			}
		}
	}
	cendS := f.ucPtr[s] + f.ucLen[s]
	for t := f.ucPtr[s]; t < cendS; t++ {
		r := f.ucIdx[t]
		rend := f.urPtr[r] + f.urLen[r]
		for q := f.urPtr[r]; q < rend; q++ {
			if int(f.urIdx[q]) == s {
				f.urIdx[q] = f.urIdx[rend-1]
				f.urVal[q] = f.urVal[rend-1]
				f.urLen[r]--
				break
			}
		}
	}
	f.ucPtr[s] = int32(len(f.ucIdx))
	n0 := len(f.ucIdx)
	for r := 0; r < m; r++ {
		if r == s || w[r] == 0 {
			continue
		}
		f.ucIdx = append(f.ucIdx, int32(r))
		f.ucVal = append(f.ucVal, w[r])
		f.addRowEntry(int32(r), int32(s), w[r])
	}
	f.ucLen[s] = int32(len(f.ucIdx) - n0)
	f.uDiag[s] = newDiag
	f.urLen[s] = 0

	ps := int(f.upos[s])
	copy(f.uord[ps:m-1], f.uord[ps+1:m])
	f.uord[m-1] = int32(s)
	for p := ps; p < m; p++ {
		f.upos[f.uord[p]] = int32(p)
	}

	f.nUpdates++
	bound := f.nnzU0 + etaNNZPerRow*m + refactorEvery
	return f.nUpdates >= refactorEvery ||
		len(f.ucIdx) > bound || len(f.urIdx) > bound || len(f.ftIdx) > bound
}

// denseFactor is the explicit dense inverse B⁻¹ maintained by Gauss–Jordan
// refactorization and in-place product-form row updates — the engine the
// package used before the sparse LU rewrite, retained as the cross-check
// oracle for the dense-vs-sparse property tests and flattened from
// [][]float64 to one contiguous row-major slice. binv[k*m+i] is row k
// (basis position) column i (constraint row) of B⁻¹.
type denseFactor struct {
	m       int
	binv    []float64
	aug     []float64 // refactorization scratch: m rows × 2m columns
	updates int
}

func (f *denseFactor) refactor(r *revised) bool {
	m := r.m
	f.m = m
	f.updates = 0
	f.binv = growF64(f.binv, m*m)
	f.aug = growF64(f.aug, 2*m*m)
	aug := f.aug[: 2*m*m : 2*m*m]
	for i := range aug {
		aug[i] = 0
	}
	w2 := 2 * m
	for i := 0; i < m; i++ {
		aug[i*w2+m+i] = 1
	}
	for k, c := range r.bs.cols {
		if c < 0 || c >= r.width {
			return false
		}
		if c < r.n {
			ws := r.ws
			for t := ws.colPtr[c]; t < ws.colPtr[c+1]; t++ {
				aug[int(ws.colRow[t])*w2+k] += ws.colVal[t]
			}
		} else {
			aug[(c-r.n)*w2+k] += r.sigma[c-r.n]
		}
	}
	for k := 0; k < m; k++ {
		piv, pivAbs := -1, singularPivotTol
		for i := k; i < m; i++ {
			if a := math.Abs(aug[i*w2+k]); a > pivAbs {
				piv, pivAbs = i, a
			}
		}
		if piv < 0 {
			return false
		}
		if piv != k {
			rk, rp := aug[k*w2:(k+1)*w2], aug[piv*w2:(piv+1)*w2]
			for j := k; j < w2; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		rk := aug[k*w2 : (k+1)*w2]
		inv := 1 / rk[k]
		for j := k; j < w2; j++ {
			rk[j] *= inv
		}
		for i := 0; i < m; i++ {
			if i == k {
				continue
			}
			ri := aug[i*w2 : (i+1)*w2]
			fct := ri[k]
			if fct == 0 {
				continue
			}
			for j := k; j < w2; j++ {
				ri[j] -= fct * rk[j]
			}
		}
	}
	for k := 0; k < m; k++ {
		copy(f.binv[k*m:(k+1)*m], aug[k*w2+m:k*w2+2*m])
	}
	return true
}

func (f *denseFactor) ftran(rowIn, posOut []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		posOut[k] = 0
	}
	for i := 0; i < m; i++ {
		v := rowIn[i]
		if v == 0 {
			continue
		}
		for k := 0; k < m; k++ {
			posOut[k] += v * f.binv[k*m+i]
		}
	}
}

// ftranBatch applies B⁻¹ to k packed vectors in one pass over the inverse:
// each binv row is loaded once and dotted against every vector.
func (f *denseFactor) ftranBatch(rowIn []float64, k int, posOut []float64) {
	m := f.m
	for i := range posOut[:k*m] {
		posOut[i] = 0
	}
	for i := 0; i < m; i++ {
		for b := 0; b < k; b++ {
			v := rowIn[b*m+i]
			if v == 0 {
				continue
			}
			out := posOut[b*m : (b+1)*m]
			for p := 0; p < m; p++ {
				out[p] += v * f.binv[p*m+i]
			}
		}
	}
}

func (f *denseFactor) btran(posIn, rowOut []float64) {
	m := f.m
	for i := 0; i < m; i++ {
		rowOut[i] = 0
	}
	for k := 0; k < m; k++ {
		v := posIn[k]
		if v == 0 {
			continue
		}
		row := f.binv[k*m : (k+1)*m]
		for i := 0; i < m; i++ {
			rowOut[i] += v * row[i]
		}
	}
}

func (f *denseFactor) update(leave int, u []float64) bool {
	m := f.m
	inv := 1 / u[leave]
	rowL := f.binv[leave*m : (leave+1)*m]
	for k := range rowL {
		rowL[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		fct := u[i]
		if fct == 0 {
			continue
		}
		ri := f.binv[i*m : (i+1)*m]
		for k := range ri {
			ri[k] -= fct * rowL[k]
		}
	}
	f.updates++
	return f.updates >= refactorEvery
}
