// factor.go holds the basis factorization engines behind the revised
// simplex. A factorEngine owns a factorized representation of the current
// basis matrix B (the columns listed in Basis.cols) and answers the two
// linear systems every simplex iteration is made of:
//
//	ftran:  u = B⁻¹·v   (entering column transformed into the basis frame)
//	btran:  y = B⁻ᵀ·c   (duals / pivot rows read out of the basis frame)
//
// Two implementations exist. sparseLU is the production engine: an LU
// factorization P·B·Q = L·U with a Markowitz-style static column ordering
// (sparsest basis column eliminated first) and threshold-free partial
// pivoting by magnitude, stored as compressed sparse columns, with
// product-form eta updates appended to a bounded eta file between
// refactorizations. denseFactor is the explicit-inverse engine the package
// shipped before the LU rewrite, kept as the numerical cross-check oracle:
// the dense-vs-sparse property tests drive both engines over the same solve
// sequences and require identical statuses and matching solutions. All
// engine storage lives in the Basis workspace and is reused across solves —
// the steady-state warm path performs no allocations.
//
// Both engines are strictly deterministic: pivot choices break ties by the
// smallest index, orderings are stable, and no map iteration or randomness
// is involved, so a replayed solve takes the identical pivot path.
package lp

import "math"

// factorEngine is a factorized basis. refactor rebuilds the factorization
// from r.bs.cols (false means B is singular); ftran/btran solve against it
// including any accumulated product-form updates; update applies the pivot
// that replaces the basic column at position leave with the column whose
// transformed form is u = B⁻¹·A_enter, returning true when the caller must
// refactorize (bounded eta file full, or roundoff budget exhausted).
//
// Vector index conventions: "row-indexed" vectors live in the caller's
// constraint-row space; "position-indexed" vectors are aligned with
// Basis.cols. ftran maps row space to position space, btran the reverse.
// Neither call may modify its input slice.
type factorEngine interface {
	refactor(r *revised) bool
	ftran(rowIn, posOut []float64)
	btran(posIn, rowOut []float64)
	update(leave int, u []float64) bool
}

// How many product-form updates an engine accumulates before a full
// refactorization clears the compounded roundoff.
const refactorEvery = 64

// etaNNZPerRow bounds the eta file by total stored nonzeros: once the file
// holds more than etaNNZPerRow·m entries the ftran/btran passes over it cost
// more than a refactorization would save, so update signals a rebuild even
// before refactorEvery pivots have accumulated.
const etaNNZPerRow = 8

// singularPivotTol is the smallest pivot magnitude a factorization accepts;
// below it the basis is declared singular and the warm path falls back to a
// cold solve (matching the pre-LU dense engine's threshold).
const singularPivotTol = 1e-10

// debugDenseFactor routes new factorizations to the dense explicit-inverse
// engine. It exists only so tests can cross-validate the sparse LU engine
// against the dense one over identical solve sequences; production code
// must never set it. Engines already built keep working when the flag
// flips — it is consulted only at refactorization time on a fresh Basis.
var debugDenseFactor = false

// DebugForceDenseFactor selects the dense reference factorization engine
// for subsequently factorized bases. Test-only cross-validation hook; it is
// process-global and not safe to toggle concurrently with solves.
func DebugForceDenseFactor(on bool) { debugDenseFactor = on }

// sparseLU is the sparse basis factorization P·B·Q = L·U plus a bounded
// product-form eta file. L is unit lower triangular and U upper triangular,
// both stored column-compressed in elimination-step space; prow/qcol map
// steps back to constraint rows and basis positions.
type sparseLU struct {
	m int

	// L: strictly-below-diagonal entries per elimination column (the unit
	// diagonal is implicit). Indices are elimination steps after refactor.
	lPtr []int32
	lIdx []int32
	lVal []float64
	// U: strictly-above-diagonal entries per elimination column, plus the
	// diagonal held separately.
	uPtr  []int32
	uIdx  []int32
	uVal  []float64
	uDiag []float64

	prow []int32 // elimination step -> constraint row (P)
	pinv []int32 // constraint row -> elimination step (P⁻¹)
	qcol []int32 // elimination step -> basis position (Q)

	// Bounded eta file: one product-form update per pivot since the last
	// refactorization. Eta e replaces the basic column at position
	// etaPos[e]; etaPiv[e] is 1/u_pivot and etaIdx/etaVal hold the other
	// nonzeros of u (position-indexed), sliced by etaPtr.
	etaPos []int32
	etaPiv []float64
	etaPtr []int32
	etaIdx []int32
	etaVal []float64

	// Scratch reused across refactorizations and solves.
	work   []float64 // row-space scatter / step-space solve vector
	step   []float64 // second solve vector for btran
	mark   []int32   // scatter stamps (row space)
	stamp  int32
	nzRows []int32 // nonzero rows of the column under elimination
	order  []int32 // column elimination order
	cnt    []int32 // counting-sort scratch
}

func (f *sparseLU) reset(m int) {
	f.m = m
	f.lPtr = growI32(f.lPtr, m+1)
	f.uPtr = growI32(f.uPtr, m+1)
	f.uDiag = growF64(f.uDiag, m)
	f.prow = growI32(f.prow, m)
	f.pinv = growI32(f.pinv, m)
	f.qcol = growI32(f.qcol, m)
	f.work = growF64(f.work, m)
	f.step = growF64(f.step, m)
	f.mark = growI32(f.mark, m)
	f.nzRows = growI32(f.nzRows, m)
	f.order = growI32(f.order, m)
	f.cnt = growI32(f.cnt, m+2)
	f.lIdx = f.lIdx[:0]
	f.lVal = f.lVal[:0]
	f.uIdx = f.uIdx[:0]
	f.uVal = f.uVal[:0]
	f.clearEtas()
}

func (f *sparseLU) clearEtas() {
	f.etaPos = f.etaPos[:0]
	f.etaPiv = f.etaPiv[:0]
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
	f.etaPtr = append(f.etaPtr[:0], 0)
}

// refactor builds the factorization from the basic column set by
// left-looking elimination. The column elimination order is chosen up front
// by ascending column nonzero count (a static Markowitz-style minimum-degree
// heuristic: sparse columns first keeps fill-in local), ties broken by basis
// position; within a column the pivot row is the remaining entry of largest
// magnitude, ties broken by smallest row index. Returns false on a singular
// basis.
func (f *sparseLU) refactor(r *revised) bool {
	m := r.m
	f.reset(m)
	if m == 0 {
		return true
	}

	// Counting sort of basis positions by column nonzero count.
	cnt := f.cnt[: m+2 : m+2]
	for i := range cnt {
		cnt[i] = 0
	}
	for k := 0; k < m; k++ {
		n := r.colNNZ(r.bs.cols[k])
		if n > m {
			n = m
		}
		cnt[n+1]++
	}
	for i := 1; i < len(cnt); i++ {
		cnt[i] += cnt[i-1]
	}
	for k := 0; k < m; k++ {
		n := r.colNNZ(r.bs.cols[k])
		if n > m {
			n = m
		}
		f.order[cnt[n]] = int32(k)
		cnt[n]++
	}

	for i := 0; i < m; i++ {
		f.pinv[i] = -1
		f.work[i] = 0
		f.mark[i] = 0
	}
	f.stamp = 0

	for step := 0; step < m; step++ {
		pos := f.order[step]
		col := r.bs.cols[pos]
		if col < 0 || col >= r.width {
			return false
		}

		// Scatter B's column for this basis position into row space.
		f.stamp++
		nz := f.nzRows[:0]
		w := f.work
		if col < r.n {
			ws := r.ws
			for t := ws.colPtr[col]; t < ws.colPtr[col+1]; t++ {
				row := ws.colRow[t]
				if f.mark[row] != f.stamp {
					f.mark[row] = f.stamp
					w[row] = 0
					nz = append(nz, row)
				}
				w[row] += ws.colVal[t]
			}
		} else {
			row := int32(col - r.n)
			f.mark[row] = f.stamp
			w[row] = r.sigma[row]
			nz = append(nz, row)
		}

		// Left-looking elimination: apply the already-built columns of L in
		// step order. L entries still carry constraint-row indices here (the
		// step-space remap happens once the permutation is complete).
		//
		// The flat s-scan costs O(m²/2) stamp probes per refactorization
		// regardless of fill — a deliberate simplicity trade at this
		// repo's basis sizes (m ≲ a few hundred: tens of microseconds per
		// refactor, amortized over refactorEvery pivots). If instances
		// grow another order of magnitude, replace it with a DFS reach-set
		// over the L pattern (Gilbert–Peierls / CSparse lu) to make each
		// column cost proportional to its actual fill.
		for s := 0; s < step; s++ {
			pr := f.prow[s]
			if f.mark[pr] != f.stamp {
				continue
			}
			v := w[pr]
			if v == 0 {
				continue
			}
			f.uIdx = append(f.uIdx, int32(s))
			f.uVal = append(f.uVal, v)
			for t := f.lPtr[s]; t < f.lPtr[s+1]; t++ {
				row := f.lIdx[t]
				if f.mark[row] != f.stamp {
					f.mark[row] = f.stamp
					w[row] = 0
					nz = append(nz, row)
				}
				w[row] -= f.lVal[t] * v
			}
		}

		// Pivot: largest-magnitude entry among rows not yet pivoted.
		piv := int32(-1)
		pivAbs := singularPivotTol
		for _, row := range nz {
			if f.pinv[row] >= 0 {
				continue
			}
			if a := math.Abs(w[row]); a > pivAbs || (a == pivAbs && piv >= 0 && row < piv) {
				piv, pivAbs = row, a
			}
		}
		if piv < 0 {
			return false
		}
		d := w[piv]
		f.prow[step] = piv
		f.pinv[piv] = int32(step)
		f.qcol[step] = pos
		f.uDiag[step] = d

		inv := 1 / d
		for _, row := range nz {
			if f.pinv[row] >= 0 || row == piv {
				continue
			}
			if v := w[row]; v != 0 {
				f.lIdx = append(f.lIdx, row)
				f.lVal = append(f.lVal, v*inv)
			}
		}
		f.lPtr[step+1] = int32(len(f.lIdx))
		f.uPtr[step+1] = int32(len(f.uIdx))
	}
	f.lPtr[0] = 0
	f.uPtr[0] = 0

	// Remap L's row indices into elimination-step space so the solves run
	// without permutation lookups.
	for t := range f.lIdx {
		f.lIdx[t] = f.pinv[f.lIdx[t]]
	}
	f.clearEtas()
	return true
}

// ftran computes posOut = B⁻¹·rowIn: permute, solve L then U, permute back,
// then replay the eta file in pivot order.
func (f *sparseLU) ftran(rowIn, posOut []float64) {
	m := f.m
	x := f.work[:m]
	for k := 0; k < m; k++ {
		x[k] = rowIn[f.prow[k]]
	}
	// Unit lower triangular forward solve.
	for k := 0; k < m; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			x[f.lIdx[t]] -= f.lVal[t] * xk
		}
	}
	// Upper triangular backward solve.
	for k := m - 1; k >= 0; k-- {
		v := x[k] / f.uDiag[k]
		x[k] = v
		if v == 0 {
			continue
		}
		for t := f.uPtr[k]; t < f.uPtr[k+1]; t++ {
			x[f.uIdx[t]] -= f.uVal[t] * v
		}
	}
	for k := 0; k < m; k++ {
		posOut[f.qcol[k]] = x[k]
	}
	// Eta file, oldest first: B_t⁻¹ = E_t⁻¹···E₁⁻¹·B₀⁻¹.
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		t := posOut[r] * f.etaPiv[e]
		if t != 0 {
			for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
				posOut[f.etaIdx[q]] -= f.etaVal[q] * t
			}
		}
		posOut[r] = t
	}
}

// btran computes rowOut = B⁻ᵀ·posIn: replay the eta file transposed in
// reverse order, permute, solve Uᵀ then Lᵀ, permute back.
func (f *sparseLU) btran(posIn, rowOut []float64) {
	m := f.m
	w := f.step[:m]
	copy(w, posIn[:m])
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		acc := w[r]
		for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
			acc -= f.etaVal[q] * w[f.etaIdx[q]]
		}
		w[r] = acc * f.etaPiv[e]
	}
	x := f.work[:m]
	for k := 0; k < m; k++ {
		x[k] = w[f.qcol[k]]
	}
	// Uᵀ is lower triangular: forward solve.
	for k := 0; k < m; k++ {
		acc := x[k]
		for t := f.uPtr[k]; t < f.uPtr[k+1]; t++ {
			acc -= f.uVal[t] * x[f.uIdx[t]]
		}
		x[k] = acc / f.uDiag[k]
	}
	// Lᵀ is upper triangular with unit diagonal: backward solve.
	for k := m - 1; k >= 0; k-- {
		acc := x[k]
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			acc -= f.lVal[t] * x[f.lIdx[t]]
		}
		x[k] = acc
	}
	for k := 0; k < m; k++ {
		rowOut[f.prow[k]] = x[k]
	}
}

// update appends the pivot's product-form eta. Returns true once the eta
// file hits its bound — count or stored nonzeros — so the caller
// refactorizes before roundoff or replay cost accumulates further.
func (f *sparseLU) update(leave int, u []float64) bool {
	f.etaPos = append(f.etaPos, int32(leave))
	f.etaPiv = append(f.etaPiv, 1/u[leave])
	for i, v := range u[:f.m] {
		if v != 0 && i != leave {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, v)
		}
	}
	f.etaPtr = append(f.etaPtr, int32(len(f.etaIdx)))
	return len(f.etaPos) >= refactorEvery || len(f.etaIdx) > etaNNZPerRow*f.m+refactorEvery
}

// denseFactor is the explicit dense inverse B⁻¹ maintained by Gauss–Jordan
// refactorization and in-place product-form row updates — the engine the
// package used before the sparse LU rewrite, retained as the cross-check
// oracle for the dense-vs-sparse property tests and flattened from
// [][]float64 to one contiguous row-major slice. binv[k*m+i] is row k
// (basis position) column i (constraint row) of B⁻¹.
type denseFactor struct {
	m       int
	binv    []float64
	aug     []float64 // refactorization scratch: m rows × 2m columns
	updates int
}

func (f *denseFactor) refactor(r *revised) bool {
	m := r.m
	f.m = m
	f.updates = 0
	f.binv = growF64(f.binv, m*m)
	f.aug = growF64(f.aug, 2*m*m)
	aug := f.aug[: 2*m*m : 2*m*m]
	for i := range aug {
		aug[i] = 0
	}
	w2 := 2 * m
	for i := 0; i < m; i++ {
		aug[i*w2+m+i] = 1
	}
	for k, c := range r.bs.cols {
		if c < 0 || c >= r.width {
			return false
		}
		if c < r.n {
			ws := r.ws
			for t := ws.colPtr[c]; t < ws.colPtr[c+1]; t++ {
				aug[int(ws.colRow[t])*w2+k] += ws.colVal[t]
			}
		} else {
			aug[(c-r.n)*w2+k] += r.sigma[c-r.n]
		}
	}
	for k := 0; k < m; k++ {
		piv, pivAbs := -1, singularPivotTol
		for i := k; i < m; i++ {
			if a := math.Abs(aug[i*w2+k]); a > pivAbs {
				piv, pivAbs = i, a
			}
		}
		if piv < 0 {
			return false
		}
		if piv != k {
			rk, rp := aug[k*w2:(k+1)*w2], aug[piv*w2:(piv+1)*w2]
			for j := k; j < w2; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		rk := aug[k*w2 : (k+1)*w2]
		inv := 1 / rk[k]
		for j := k; j < w2; j++ {
			rk[j] *= inv
		}
		for i := 0; i < m; i++ {
			if i == k {
				continue
			}
			ri := aug[i*w2 : (i+1)*w2]
			fct := ri[k]
			if fct == 0 {
				continue
			}
			for j := k; j < w2; j++ {
				ri[j] -= fct * rk[j]
			}
		}
	}
	for k := 0; k < m; k++ {
		copy(f.binv[k*m:(k+1)*m], aug[k*w2+m:k*w2+2*m])
	}
	return true
}

func (f *denseFactor) ftran(rowIn, posOut []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		posOut[k] = 0
	}
	for i := 0; i < m; i++ {
		v := rowIn[i]
		if v == 0 {
			continue
		}
		for k := 0; k < m; k++ {
			posOut[k] += v * f.binv[k*m+i]
		}
	}
}

func (f *denseFactor) btran(posIn, rowOut []float64) {
	m := f.m
	for i := 0; i < m; i++ {
		rowOut[i] = 0
	}
	for k := 0; k < m; k++ {
		v := posIn[k]
		if v == 0 {
			continue
		}
		row := f.binv[k*m : (k+1)*m]
		for i := 0; i < m; i++ {
			rowOut[i] += v * row[i]
		}
	}
}

func (f *denseFactor) update(leave int, u []float64) bool {
	m := f.m
	inv := 1 / u[leave]
	rowL := f.binv[leave*m : (leave+1)*m]
	for k := range rowL {
		rowL[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		fct := u[i]
		if fct == 0 {
			continue
		}
		ri := f.binv[i*m : (i+1)*m]
		for k := range ri {
			ri[k] -= fct * rowL[k]
		}
	}
	f.updates++
	return f.updates >= refactorEvery
}
