package lp

import (
	"math"
	"math/rand"
	"testing"
)

// presolveProblem builds a random bounded problem and salts it with the row
// shapes presolve targets: singletons, empties and box-redundant rows.
func presolveProblem(rng *rand.Rand) *Problem {
	p := buildBoundedProblem(rng)
	n := p.NumVars()
	for k := 0; k < 3; k++ {
		switch rng.Intn(4) {
		case 0: // singleton upper
			p.AddConstraint(LE, 0.5+2*rng.Float64(), T(rng.Intn(n), 0.5+rng.Float64()))
		case 1: // singleton lower
			p.AddConstraint(GE, rng.Float64(), T(rng.Intn(n), 0.5+rng.Float64()))
		case 2: // redundant under any box: positive coefs, huge rhs
			var terms []Term
			for j := 0; j < n; j++ {
				terms = append(terms, T(j, rng.Float64()))
			}
			p.AddConstraint(LE, 1e6, terms...)
		case 3: // trivially satisfied empty-ish row
			p.AddConstraint(GE, -1, T(rng.Intn(n), 0))
		}
	}
	return p
}

// solveVia solves p through presolve+postsolve.
func solveVia(t *testing.T, p *Problem) *Solution {
	t.Helper()
	ps := Presolve(p)
	if ps.Decided {
		return ps.Postsolve(nil)
	}
	red, err := ps.Reduced.Solve()
	if err != nil {
		t.Fatalf("reduced solve: %v", err)
	}
	return ps.Postsolve(red)
}

// TestPresolveMatchesDirect requires the presolve→solve→postsolve pipeline
// to agree with a direct solve on status, objective and feasibility across
// randomized instances.
func TestPresolveMatchesDirect(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 11, 23, 42, 77, 99} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			p := presolveProblem(rng)
			want, wantErr := p.Solve()
			if wantErr != nil {
				continue // iteration-limit pathologies are out of scope here
			}
			got := solveVia(t, p)
			if got.Status != want.Status {
				t.Fatalf("seed %d trial %d: status %v via presolve, %v direct", seed, trial, got.Status, want.Status)
			}
			if got.Status != Optimal {
				continue
			}
			if math.Abs(got.Obj-want.Obj) > 1e-6*(1+math.Abs(want.Obj)) {
				t.Fatalf("seed %d trial %d: obj %g via presolve, %g direct", seed, trial, got.Obj, want.Obj)
			}
			if len(got.X) != p.NumVars() {
				t.Fatalf("seed %d trial %d: X has %d entries, want %d", seed, trial, len(got.X), p.NumVars())
			}
			for j := range got.X {
				lo, up := p.Bounds(j)
				if got.X[j] < lo-1e-6 || got.X[j] > up+1e-6 {
					t.Fatalf("seed %d trial %d: X[%d]=%g outside [%g,%g]", seed, trial, j, got.X[j], lo, up)
				}
			}
			for i := 0; i < p.NumRows(); i++ {
				act := 0.0
				for _, tm := range p.RowTerms(i) {
					act += tm.Coef * got.X[tm.Var]
				}
				rhs := p.RHS(i)
				switch p.RowSense(i) {
				case LE:
					if act > rhs+1e-5 {
						t.Fatalf("seed %d trial %d: row %d activity %g > rhs %g", seed, trial, i, act, rhs)
					}
				case GE:
					if act < rhs-1e-5 {
						t.Fatalf("seed %d trial %d: row %d activity %g < rhs %g", seed, trial, i, act, rhs)
					}
				case EQ:
					if math.Abs(act-rhs) > 1e-5 {
						t.Fatalf("seed %d trial %d: row %d activity %g != rhs %g", seed, trial, i, act, rhs)
					}
				}
			}
		}
	}
}

// TestPresolveFixingChainDecides drives a chain of EQ singletons that fixes
// every variable; presolve must settle the whole problem without a solve.
func TestPresolveFixingChainDecides(t *testing.T) {
	p := New()
	for j := 0; j < 6; j++ {
		p.AddVar("x", float64(j+1))
	}
	for j := 0; j < 6; j++ {
		p.AddConstraint(EQ, float64(j), T(j, 2)) // x_j = j/2
	}
	// A coupling row that the fixings satisfy.
	p.AddConstraint(LE, 100, T(0, 1), T(1, 1), T(2, 1), T(3, 1), T(4, 1), T(5, 1))

	ps := Presolve(p)
	if !ps.Decided || ps.Status != Optimal {
		t.Fatalf("expected Decided/Optimal, got decided=%v status=%v", ps.Decided, ps.Status)
	}
	sol := ps.Postsolve(nil)
	wantObj := 0.0
	for j := 0; j < 6; j++ {
		wantObj += float64(j+1) * float64(j) / 2
	}
	if math.Abs(sol.Obj-wantObj) > 1e-9 {
		t.Fatalf("trivial obj %g, want %g", sol.Obj, wantObj)
	}
	for j := 0; j < 6; j++ {
		if math.Abs(sol.X[j]-float64(j)/2) > 1e-9 {
			t.Fatalf("X[%d]=%g, want %g", j, sol.X[j], float64(j)/2)
		}
	}
	direct, err := p.Solve()
	if err != nil || direct.Status != Optimal {
		t.Fatalf("direct solve: %v %v", direct.Status, err)
	}
	if math.Abs(direct.Obj-sol.Obj) > 1e-6 {
		t.Fatalf("presolve obj %g, direct %g", sol.Obj, direct.Obj)
	}
}

// TestPresolveDetectsInfeasibility covers the outright-infeasible shapes:
// violated empty rows and contradictory singleton bounds.
func TestPresolveDetectsInfeasibility(t *testing.T) {
	cases := []func() *Problem{
		func() *Problem { // empty GE row demanding positive activity
			p := New()
			p.AddVar("x", 1)
			p.AddConstraint(GE, 5)
			return p
		},
		func() *Problem { // x <= 1 vs x >= 2
			p := New()
			p.AddVar("x", 1)
			p.AddConstraint(LE, 1, T(0, 1))
			p.AddConstraint(GE, 2, T(0, 1))
			return p
		},
		func() *Problem { // EQ singleton outside the variable's box
			p := New()
			p.AddVar("x", 1)
			p.SetBounds(0, 0, 1)
			p.AddConstraint(EQ, 3, T(0, 1))
			return p
		},
		func() *Problem { // activity bound: unit box cannot reach the rhs
			p := New()
			for j := 0; j < 3; j++ {
				p.AddVar("x", 1)
				p.SetBounds(j, 0, 1)
			}
			p.AddConstraint(GE, 5, T(0, 1), T(1, 1), T(2, 1))
			return p
		},
	}
	for k, mk := range cases {
		p := mk()
		ps := Presolve(p)
		if !ps.Decided || ps.Status != Infeasible {
			t.Fatalf("case %d: expected Decided/Infeasible, got decided=%v status=%v", k, ps.Decided, ps.Status)
		}
		direct, err := p.Solve()
		if err != nil {
			t.Fatalf("case %d: direct solve: %v", k, err)
		}
		if direct.Status != Infeasible {
			t.Fatalf("case %d: direct status %v, presolve said infeasible", k, direct.Status)
		}
	}
}

// TestPresolveReduces asserts the pass actually removes the structures it
// is built for, and that the reduction is deterministic.
func TestPresolveReduces(t *testing.T) {
	p := New()
	for j := 0; j < 5; j++ {
		p.AddVar("x", 1)
		p.SetBounds(j, 0, 1)
	}
	p.AddConstraint(EQ, 1, T(0, 2))                    // fixes x0 = 0.5
	p.AddConstraint(LE, 0.25, T(1, 1))                 // tightens x1
	p.AddConstraint(LE, 50, T(0, 1), T(1, 1), T(2, 1)) // redundant over boxes
	p.AddConstraint(GE, -1, T(3, 1))                   // redundant (lo=0 ≥ -1)
	p.AddConstraint(LE, 2, T(2, 1), T(3, 1), T(4, 1))  // kept
	p.AddConstraint(GE, 0.5, T(2, 1), T(3, 1))         // kept
	ps := Presolve(p)
	if ps.Decided {
		t.Fatalf("unexpectedly decided: %v", ps.Status)
	}
	vr, rr := ps.Stats()
	if vr < 1 {
		t.Fatalf("expected at least one fixed variable, removed %d", vr)
	}
	if rr < 4 {
		t.Fatalf("expected >= 4 dropped rows (EQ singleton, LE singleton, 2 redundant), removed %d", rr)
	}
	if got := ps.Reduced.NumRows(); got != p.NumRows()-rr {
		t.Fatalf("reduced rows %d vs %d-%d", got, p.NumRows(), rr)
	}

	ps2 := Presolve(p)
	for j := range ps.colMap {
		if ps.colMap[j] != ps2.colMap[j] {
			t.Fatalf("colMap not deterministic at %d: %d vs %d", j, ps.colMap[j], ps2.colMap[j])
		}
	}
	for i := range ps.rowMap {
		if ps.rowMap[i] != ps2.rowMap[i] {
			t.Fatalf("rowMap not deterministic at %d: %d vs %d", i, ps.rowMap[i], ps2.rowMap[i])
		}
	}

	red, err := ps.Reduced.Solve()
	if err != nil {
		t.Fatalf("reduced solve: %v", err)
	}
	got := ps.Postsolve(red)
	want, err := p.Solve()
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	if got.Status != want.Status || math.Abs(got.Obj-want.Obj) > 1e-6 {
		t.Fatalf("presolve %v/%g vs direct %v/%g", got.Status, got.Obj, want.Status, want.Obj)
	}
}
