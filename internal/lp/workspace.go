// workspace.go owns every piece of mutable solver scratch the warm path
// needs, so that a long-lived Basis — the Benders slave carried across
// epochs by core.BendersSession, the per-shard sessions of the admission
// engine, the reopt controller's re-solve loop, the shared node basis of
// the milp branch-and-bound — amortizes all allocation across solves. After
// the first warm solve on a given problem structure, the steady-state
// SolveFrom path (factorize-check, ftran/btran, pricing, pivots, solution
// extraction, verification) performs zero heap allocations; the
// TestWarmSteadyStateZeroAllocs pin holds it there.
package lp

// growF64 returns a zeroed float slice of length n, reusing buf's backing
// array when it is large enough.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growI32 is growF64 for int32 index slices.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growInt is growF64 for int slices.
func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growU8 is growF64 for byte slices.
func growU8(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growBool is growF64 for bool slices.
func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// workspace is the reusable solver state owned by a Basis. It caches the
// problem's structural matrix in compressed-sparse-column form (rebuilt only
// when the problem's structural revision moves), the factorization engines,
// all iteration scratch, and the Solution buffers the warm path returns.
type workspace struct {
	// Structural cache validity: the problem pointer and its structural
	// revision at cache-build time. SetRHS/SetCost do not advance rev, so
	// the Benders slave's per-iteration RHS rewrites and the cross-epoch
	// refresh keep the cache; any AddVar/AddConstraint invalidates it.
	owner *Problem
	rev   int

	// Column-sparse structural A (caller row orientation), flattened.
	colPtr []int32
	colRow []int32
	colVal []float64

	sigma  []float64 // marker coefficient per row: +1 for ≤ and =, −1 for ≥
	pinned []bool    // = rows: marker may be basic at zero but never enters
	rhs    []float64 // current right-hand sides, refreshed per solve
	brhs   []float64 // bound-shifted RHS b̃ = b − Σ_{nonbasic at bound} A_j·x_j

	fillCur []int32 // CSC fill cursor scratch for structure rebuilds

	inBasis []bool

	// Iteration scratch, all m- or width-sized.
	xB    []float64 // basic variable values, aligned with Basis.cols
	y     []float64 // duals c_Bᵀ·B⁻¹, maintained incrementally per pivot
	u     []float64 // ftran result B⁻¹·A_enter (position-indexed)
	rho   []float64 // btran result: pivot row of B⁻¹ (row-indexed)
	unit  []float64 // all-zero vector; one entry set/cleared around btran
	scat  []float64 // row-space scatter buffer for ftran inputs
	dwRow []float64 // dual-simplex Devex row weights
	dwCol []float64 // primal-simplex Devex column weights

	// Bound-flip ratio test scratch: the dual simplex collects entering
	// candidates here, walks them in ratio order, and records the boxed
	// columns it flips; flips are then pushed through the factorization in
	// one batched ftran (batchIn/batchOut hold up to ftranBatchMax packed
	// m-vectors).
	candJ     []int
	candW     []float64
	candRatio []float64
	flipJ     []int
	flipDir   []float64
	batchIn   []float64
	batchOut  []float64

	// Solution buffers returned by the warm path. They are owned by the
	// Basis and overwritten by the next SolveFrom on it.
	x    []float64
	dual []float64
	ray  []float64
	sol  Solution

	r     revised
	lu    sparseLU
	dense denseFactor

	// Cold-path tableau reuse: when SolveFrom falls back to the two-phase
	// tableau, its dense state is carved out of these buffers instead of
	// being reallocated per solve.
	tabA     []float64
	tabObj   []float64
	tabCost  []float64
	tabBasis []int
	tabSign  []float64
	tabEq    []bool
	tabFlip  []float64
	tabCB    []float64
}

// prepare (re)binds the workspace to problem p and basis bs, rebuilding the
// structural caches only when the problem's structure changed, and
// refreshing the cheap per-solve state (RHS snapshot, basis membership).
// It returns the per-solve revised-simplex view.
func (b *Basis) prepare(p *Problem) *revised {
	if b.ws == nil {
		b.ws = &workspace{}
	}
	ws := b.ws
	m, n := len(p.rows), len(p.cost)

	if ws.owner != p || ws.rev != p.rev {
		// Structure changed (or first use): rebuild the CSC matrix and row
		// metadata, and drop any factorization taken on the old matrix.
		b.eng = nil
		ws.owner, ws.rev = p, p.rev
		nnz := 0
		for i := range p.rows {
			nnz += len(p.rows[i].terms)
		}
		ws.colPtr = growI32(ws.colPtr, n+1)
		ws.colRow = growI32(ws.colRow, nnz)
		ws.colVal = growF64(ws.colVal, nnz)
		for i := range p.rows {
			for _, tm := range p.rows[i].terms {
				ws.colPtr[tm.Var+1]++
			}
		}
		for j := 0; j < n; j++ {
			ws.colPtr[j+1] += ws.colPtr[j]
		}
		ws.fillCur = growI32(ws.fillCur, n)
		next := ws.fillCur
		copy(next, ws.colPtr[:n])
		for i := range p.rows {
			for _, tm := range p.rows[i].terms {
				t := next[tm.Var]
				ws.colRow[t] = int32(i)
				ws.colVal[t] = tm.Coef
				next[tm.Var] = t + 1
			}
		}

		ws.sigma = growF64(ws.sigma, m)
		ws.pinned = growBool(ws.pinned, m)
		for i := range p.rows {
			switch p.rows[i].sense {
			case LE:
				ws.sigma[i] = 1
			case GE:
				ws.sigma[i] = -1
			case EQ:
				ws.sigma[i] = 1
				ws.pinned[i] = true
			}
		}

		ws.rhs = growF64(ws.rhs, m)
		ws.brhs = growF64(ws.brhs, m)
		ws.candJ = growInt(ws.candJ, n+m)
		ws.candW = growF64(ws.candW, n+m)
		ws.candRatio = growF64(ws.candRatio, n+m)
		ws.flipJ = growInt(ws.flipJ, n+m)
		ws.flipDir = growF64(ws.flipDir, n+m)
		ws.batchIn = growF64(ws.batchIn, ftranBatchMax*m)
		ws.batchOut = growF64(ws.batchOut, ftranBatchMax*m)
		ws.inBasis = growBool(ws.inBasis, n+m)
		ws.xB = growF64(ws.xB, m)
		ws.y = growF64(ws.y, m)
		ws.u = growF64(ws.u, m)
		ws.rho = growF64(ws.rho, m)
		ws.unit = growF64(ws.unit, m)
		ws.scat = growF64(ws.scat, m)
		ws.dwRow = growF64(ws.dwRow, m)
		ws.dwCol = growF64(ws.dwCol, n+m)
		ws.x = growF64(ws.x, n)
		ws.dual = growF64(ws.dual, m)
		ws.ray = growF64(ws.ray, m)
	}

	// Cheap per-solve refresh.
	for i := range p.rows {
		ws.rhs[i] = p.rows[i].rhs
	}
	inb := ws.inBasis[: n+m : n+m]
	for j := range inb {
		inb[j] = false
	}
	for _, c := range b.cols {
		if c >= 0 && c < n+m {
			inb[c] = true
		}
	}

	r := &ws.r
	*r = revised{
		p: p, m: m, n: n, width: n + m,
		ws:      ws,
		sigma:   ws.sigma[:m],
		pinned:  ws.pinned[:m],
		rhs:     ws.rhs[:m],
		bs:      b,
		inBasis: inb,
		xB:      ws.xB[:m],
		y:       ws.y[:m],
		bounded: p.bounded(),
	}
	if r.bounded && len(b.stat) >= n+m {
		r.stat = b.stat[: n+m : n+m]
	}
	return r
}
