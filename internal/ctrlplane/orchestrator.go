package ctrlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/reopt"
	"repro/internal/slice"
	"repro/internal/topology"
	"repro/internal/wal"
	"repro/internal/yield"
)

// OrchestratorConfig wires the E2E orchestrator to its domain controllers
// and monitoring backend.
type OrchestratorConfig struct {
	Net       *topology.Network
	KPaths    int    // k-shortest paths per (BS, CU); default 3
	Algorithm string // "direct" | "benders" | "kac" | "no-overbooking"
	HWPeriod  int    // Holt-Winters period in epochs; default 12

	// Shards, QueueDepth and TenantCap parameterize the admission engine
	// the orchestrator routes decisions through (internal/admission):
	// solver worker count, bounded-intake depth, and the per-tenant
	// fairness cap. Zero values take the engine defaults.
	Shards     int
	QueueDepth int
	TenantCap  int

	// Controller base URLs (e.g. "http://127.0.0.1:8181").
	RANAddr, TransportAddr, CloudAddr string

	// Store is the monitoring backend the collector writes into; the
	// admission engine publishes its round vitals into the same store.
	Store *monitor.Store

	// Executor, when set, routes the default domain's round solves to a
	// remote worker pool (an internal/cluster Coordinator). The engine
	// keeps all state and the WAL; only the pure solve call leaves the
	// process, so recovery, determinism pins and the REST surface are
	// unchanged. Nil solves in-process.
	Executor admission.Executor

	// DataDir, when set, makes decisions durable: the orchestrator opens a
	// WAL there (internal/wal), recovers whatever a previous process left
	// behind before serving, logs every epoch's inputs, snapshots every
	// SnapshotEvery epochs, and writes a final snapshot on a clean Close.
	// Empty disables durability entirely (the prior behavior).
	DataDir string
	// SnapshotEvery is the snapshot cadence in epochs; default 16.
	SnapshotEvery int

	// WALFence, when set with DataDir, is consulted by the WAL before any
	// byte reaches the directory (wal.Options.Fence). Wire it to a leader
	// lease Check so a deposed leader cannot write to a log its successor
	// now owns.
	WALFence func() error
}

func (cfg OrchestratorConfig) withDefaults() (OrchestratorConfig, error) {
	if cfg.Net == nil {
		return cfg, fmt.Errorf("ctrlplane: orchestrator needs a topology")
	}
	if cfg.KPaths == 0 {
		cfg.KPaths = 3
	}
	if cfg.HWPeriod == 0 {
		cfg.HWPeriod = 12
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = "direct"
	}
	if cfg.Store == nil {
		// The closed loop always reads through a store; a deployment
		// without a collector simply leaves it empty (every slice then
		// stays at its conservative full-SLA reservation).
		cfg.Store = monitor.NewStore(0)
	}
	if cfg.DataDir != "" && cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 16
	}
	return cfg, nil
}

// orchSlice is the orchestrator's lifecycle state for one slice. (The
// per-slice forecast trackers live in the reopt controller, which owns the
// monitoring → forecasting half of the epoch.)
type orchSlice struct {
	req       SliceRequest
	tmpl      slice.Template
	sla       slice.SLA
	state     string // "pending" | "active" | "rejected" | "expired"
	cu        int
	reserved  []float64
	remaining int
	arrival   int
	ticket    *admission.Ticket // pending decision handle
}

// Orchestrator is the paper's OVNES: admission control, resource
// reservation, monitoring aggregation and forecasting behind one REST API.
// It is deliberately the only stateful control-plane entity. Admission and
// reservation decisions route through an internal/admission engine: the
// bounded intake backpressures Register, the prefilter fast-rejects
// structurally infeasible requests, and each epoch's AC-RR instance is
// solved on the engine's shard against a warm cross-epoch session.
//
// The epoch itself is the closed loop of internal/reopt: a Controller owns
// the monitoring → forecasting → reoptimization → lifecycle cycle, calling
// back into the orchestrator (OnRound) to program the data plane between
// the warm re-solve and the lifecycle advance. Realized yield settles into
// a shared yield.Ledger, published raw at GET /yield and alongside the
// engine snapshot at GET /metrics.
type Orchestrator struct {
	cfg      OrchestratorConfig
	paths    [][][]topology.Path
	client   *http.Client
	eng      *admission.Engine
	loop     *reopt.Controller
	ledger   *yield.Ledger
	wal      *wal.Store  // nil when DataDir is unset
	recovery *wal.Report // nil when nothing was recovered

	mu     sync.Mutex
	epoch  int
	slices map[string]*orchSlice
	order  []string // insertion order, for deterministic decisions
	curRep *EpochReport
}

// buildCore constructs the orchestrator shell — engine (domain added, NOT
// started), closed-loop controller, ledger, path sets — with lg as the
// durability seam: nil for a memory-only orchestrator, a swapLog for both
// the leader (inner store set before any append) and a standby (inner nil
// while tail-replaying, set at promotion). Opening/recovering the WAL and
// starting the engine are the caller's half.
func buildCore(cfg OrchestratorConfig, lg *swapLog) (*Orchestrator, error) {
	engCfg := admission.Config{
		Shards:     cfg.Shards,
		QueueDepth: cfg.QueueDepth,
		TenantCap:  cfg.TenantCap,
		Store:      cfg.Store,
		Ledger:     nil, // set below
	}
	ledger := yield.NewLedger()
	engCfg.Ledger = ledger
	if lg != nil {
		// Assigned only when non-nil: a nil concrete value in the
		// interface field would read as "logging enabled" to the engine.
		engCfg.Log = lg
	}
	eng := admission.New(engCfg)
	if err := eng.AddDomain(admission.DefaultDomain, admission.DomainConfig{
		Net:       cfg.Net,
		KPaths:    cfg.KPaths,
		Algorithm: cfg.Algorithm,
		Executor:  cfg.Executor,
	}); err != nil {
		return nil, fmt.Errorf("ctrlplane: %w", err)
	}
	// Share the engine's path enumeration: program() must index paths with
	// the PathIdx values the engine's decisions produced, so using the very
	// same slice removes both the duplicate Yen run and any drift hazard.
	paths, err := eng.Paths(admission.DefaultDomain)
	if err != nil {
		return nil, err
	}
	o := &Orchestrator{
		cfg:    cfg,
		paths:  paths,
		client: &http.Client{Timeout: 10 * time.Second},
		eng:    eng,
		ledger: ledger,
		slices: map[string]*orchSlice{},
	}
	loopCfg := reopt.Config{
		Engine:   eng,
		Store:    cfg.Store,
		Ledger:   ledger,
		HWPeriod: cfg.HWPeriod,
		OnRound:  o.programRound,
	}
	if lg != nil {
		loopCfg.Log = lg
		loopCfg.SnapshotEvery = cfg.SnapshotEvery
		loopCfg.Snapshot = func(cs reopt.ControllerState) error {
			st := lg.store()
			if st == nil {
				return nil // standby: snapshots are the leader's job
			}
			snap, err := wal.BuildSnapshot(eng, []string{admission.DefaultDomain}, []reopt.ControllerState{cs}, ledger)
			if err != nil {
				return err
			}
			return st.WriteSnapshot(snap)
		}
	}
	loop, err := reopt.New(loopCfg)
	if err != nil {
		return nil, fmt.Errorf("ctrlplane: %w", err)
	}
	o.loop = loop
	return o, nil
}

// adoptCommitted rebuilds the REST registry from the engine's recovered
// committed state. The registry of terminated slices (rejected, expired)
// is serving history, not decision state, and is deliberately not
// durable. The data plane self-heals on the first epoch: programRound
// pushes every accepted slice's reservation southbound each round.
func (o *Orchestrator) adoptCommitted() error {
	committed, err := o.eng.CommittedDetail(admission.DefaultDomain)
	if err != nil {
		return err
	}
	for _, m := range committed {
		o.slices[m.Name] = &orchSlice{
			req: SliceRequest{
				Name: m.Name, Tenant: m.Tenant,
				Type:           m.SLA.Type.String(),
				DurationEpochs: m.SLA.Duration,
			},
			tmpl:      m.SLA.Template,
			sla:       m.SLA,
			state:     "active",
			cu:        m.CU,
			reserved:  append([]float64(nil), m.Reserved...),
			remaining: m.Remaining,
			arrival:   o.epoch - (m.SLA.Duration - m.Remaining),
		}
		o.order = append(o.order, m.Name)
	}
	return nil
}

// NewOrchestrator builds the orchestrator; it precomputes the P_{b,c} path
// sets offline exactly as §2.1.2 prescribes, starts the admission engine,
// and binds the closed-loop controller to it. Call Close to release the
// engine's workers.
func NewOrchestrator(cfg OrchestratorConfig) (*Orchestrator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	// Durability first: a previous process's log must be recovered before
	// the engine starts serving, so replayed rounds run with no shard
	// worker racing them.
	var wstore *wal.Store
	var recovered *wal.Recovered
	var lg *swapLog
	if cfg.DataDir != "" {
		wstore, recovered, err = wal.Open(wal.Options{Dir: cfg.DataDir, Fence: cfg.WALFence})
		if err != nil {
			return nil, fmt.Errorf("ctrlplane: %w", err)
		}
		lg = &swapLog{}
		lg.set(wstore)
	}

	o, err := buildCore(cfg, lg)
	if err != nil {
		if wstore != nil {
			wstore.Close()
		}
		return nil, err
	}
	o.wal = wstore
	if wstore != nil {
		rep, err := wal.Recover(wstore, recovered, wal.Target{Engine: o.eng, Controller: o.loop, Ledger: o.ledger})
		if err != nil {
			wstore.Close()
			return nil, fmt.Errorf("ctrlplane: recovery: %w", err)
		}
		o.recovery = rep
		o.epoch = o.loop.Epoch()
		if err := o.adoptCommitted(); err != nil {
			wstore.Close()
			return nil, err
		}
	}
	if err := o.eng.Start(); err != nil {
		if wstore != nil {
			wstore.Close()
		}
		return nil, err
	}
	return o, nil
}

// Recovery reports what startup recovered from the data directory; nil
// when durability is disabled.
func (o *Orchestrator) Recovery() *wal.Report { return o.recovery }

// Close drains and stops the admission engine: queued requests are decided
// (bounded by the context) and the solver workers exit. With durability
// enabled it then writes a final snapshot and closes the WAL, so the next
// open resumes replay-free.
func (o *Orchestrator) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := o.eng.Drain(ctx)
	o.eng.Stop()
	if o.wal != nil {
		snap, serr := wal.BuildSnapshot(o.eng, []string{admission.DefaultDomain},
			[]reopt.ControllerState{o.loop.ExportState()}, o.ledger)
		if serr == nil {
			serr = o.wal.WriteSnapshot(snap)
		}
		if cerr := o.wal.Close(); serr == nil {
			serr = cerr
		}
		if err == nil {
			err = serr
		}
	}
	return err
}

// Handler exposes the orchestrator's REST surface (SMan-Or northbound).
func (o *Orchestrator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /requests", func(w http.ResponseWriter, r *http.Request) {
		var nsd NSDescriptor
		if err := decodeBody(w, r, &nsd); err != nil {
			httpBodyError(w, err)
			return
		}
		if err := o.Register(nsd.Request); err != nil {
			status := http.StatusConflict
			if errors.Is(err, admission.ErrOverloaded) || errors.Is(err, admission.ErrTenantCap) {
				// Backpressure, not conflict: the tenant should retry later.
				status = http.StatusTooManyRequests
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "pending"})
	})
	mux.HandleFunc("POST /epoch", func(w http.ResponseWriter, r *http.Request) {
		rep, err := o.RunEpoch()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /slices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.Statuses())
	})
	mux.HandleFunc("POST /topology", func(w http.ResponseWriter, r *http.Request) {
		var events []topology.Event
		if err := decodeBody(w, r, &events); err != nil {
			httpBodyError(w, err)
			return
		}
		if err := o.ApplyTopology(events); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"applied": len(events)})
	})
	mux.HandleFunc("GET /topology", func(w http.ResponseWriter, r *http.Request) {
		events, err := o.eng.TopologyEvents(admission.DefaultDomain)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if events == nil {
			events = []topology.Event{}
		}
		writeJSON(w, http.StatusOK, events)
	})
	mux.HandleFunc("POST /handover", func(w http.ResponseWriter, r *http.Request) {
		var req HandoverRequest
		if err := decodeBody(w, r, &req); err != nil {
			httpBodyError(w, err)
			return
		}
		if err := o.eng.Handover(req.From, req.To, req.Name); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "handed over", "slice": req.Name})
	})
	mux.HandleFunc("GET /epoch", func(w http.ResponseWriter, r *http.Request) {
		o.mu.Lock()
		e := o.epoch
		o.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]int{"epoch": e})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, MetricsReport{
			Snapshot: o.eng.Metrics(),
			Yield:    o.ledger.Snapshot(),
		})
	})
	mux.HandleFunc("GET /yield", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.ledger.Snapshot())
	})
	return mux
}

// MetricsReport is the GET /metrics payload: the engine's serving counters
// at the top level (unchanged shape) plus the live yield account.
type MetricsReport struct {
	admission.Snapshot
	Yield yield.Summary `json:"yield"`
}

// HandoverRequest is the POST /handover payload: move one committed slice
// from one admission domain to another, preserving its ledger identity.
// Empty From addresses the orchestrator's default domain.
type HandoverRequest struct {
	From string `json:"from,omitempty"`
	To   string `json:"to"`
	Name string `json:"name"`
}

// ApplyTopology injects capacity events (outage, degradation, recovery,
// CU churn) into the default domain. Each event sets an element's capacity
// factor relative to the BASE topology, so a later factor-1 event restores
// it exactly; subsequent rounds re-solve against the degraded network while
// committed reservations stay pinned (deficit-relaxed if now infeasible).
// With durability enabled the events are fsynced to the WAL before any
// state changes, so kill-and-replay recovers the degraded capacity too.
func (o *Orchestrator) ApplyTopology(events []topology.Event) error {
	return o.eng.ApplyTopology(admission.DefaultDomain, events)
}

// Yield returns the orchestrator's live revenue account.
func (o *Orchestrator) Yield() yield.Summary { return o.ledger.Snapshot() }

// Register routes a tenant request into the admission engine's bounded
// intake. The slice appears as "pending" until the next epoch's round
// decides it; structurally infeasible requests are fast-rejected by the
// engine's prefilter without ever costing a solve, and an overloaded
// engine sheds with admission.ErrOverloaded / ErrTenantCap.
func (o *Orchestrator) Register(req SliceRequest) error {
	tmpl, err := req.Template()
	if err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.slices[req.Name]; dup {
		return fmt.Errorf("ctrlplane: slice %q already exists", req.Name)
	}
	if req.DurationEpochs <= 0 {
		return fmt.Errorf("ctrlplane: slice %q needs a positive duration", req.Name)
	}
	m := req.PenaltyFactor
	if m <= 0 {
		m = 1
	}
	sla := slice.SLA{Template: tmpl, Duration: req.DurationEpochs}.WithPenaltyFactor(m)
	ticket, err := o.eng.Submit(admission.Request{
		Tenant: req.Tenant,
		Name:   req.Name,
		SLA:    sla,
	})
	if err != nil {
		return err
	}
	o.slices[req.Name] = &orchSlice{
		req: req, tmpl: tmpl, sla: sla,
		state:     "pending",
		remaining: req.DurationEpochs,
		arrival:   o.epoch,
		ticket:    ticket,
	}
	o.order = append(o.order, req.Name)
	return nil
}

// Statuses lists all known slices in registration order.
func (o *Orchestrator) Statuses() []SliceStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.statusesLocked()
}

// RunEpoch executes one decision round by stepping the closed loop: the
// reopt controller settles the ended epoch's yield, aggregates monitoring
// into the forecasters, re-solves AC-RR through the admission engine's
// warm shard (programming the controllers mid-step via programRound), and
// advances slice lifecycles; the orchestrator then reconciles its REST
// view and tears down whatever expired.
func (o *Orchestrator) RunEpoch() (*EpochReport, error) {
	o.mu.Lock()
	defer o.mu.Unlock()

	rep := &EpochReport{Epoch: o.epoch}
	o.curRep = rep
	step, err := o.loop.Step()
	o.curRep = nil
	if err != nil {
		return nil, err
	}

	// Requests the prefilter fast-rejected never reached the round; their
	// tickets are already resolved.
	for _, name := range o.order {
		s := o.slices[name]
		if s.state != "pending" || s.ticket == nil {
			continue
		}
		if out, ok := s.ticket.Outcome(); ok && out.FastRejected {
			s.state = "rejected"
			rep.Rejected = append(rep.Rejected, name)
		}
	}

	// Lifecycle: the loop already ticked the engine's clocks; mirror them
	// and tear expired slices out of every domain.
	for _, name := range o.order {
		s := o.slices[name]
		if s.state == "active" {
			s.remaining--
		}
	}
	for _, name := range step.Expired {
		s := o.slices[name]
		if s == nil || s.state != "active" {
			return nil, fmt.Errorf("ctrlplane: engine expired unknown or inactive slice %q", name)
		}
		s.state = "expired"
		rep.Expired = append(rep.Expired, name)
		if err := o.teardown(name); err != nil {
			return nil, fmt.Errorf("ctrlplane: teardown %s: %w", name, err)
		}
	}
	o.epoch++
	rep.Slices = o.statusesLocked()
	return rep, nil
}

// RunLoop drives RunEpoch on a wall-clock cadence until the context ends —
// the serving deployment's closed-loop lifecycle, where decision epochs
// are real time instead of POST /epoch calls (which keep working and
// simply insert extra epochs). Returns nil when the context ends, the
// first epoch error otherwise.
func (o *Orchestrator) RunLoop(ctx context.Context, every time.Duration) error {
	if every <= 0 {
		return fmt.Errorf("ctrlplane: RunLoop needs a positive period")
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
			if _, err := o.RunEpoch(); err != nil {
				return err
			}
		}
	}
}

// programRound is the reopt controller's OnRound hook, running between the
// epoch's warm re-solve and the lifecycle advance — exactly where the
// pre-closed-loop orchestrator programmed the data plane. It marks fresh
// solver rejections and pushes accepted reservations southbound, shrinking
// slices first so the controllers' admission checks see freed capacity
// before grows arrive. Called with o.mu held (RunEpoch → Step → here).
func (o *Orchestrator) programRound(round *admission.Round) error {
	rep := o.curRep
	if rep == nil {
		// The hook mutates o.slices, which is safe only under the o.mu
		// that RunEpoch holds. The orchestrator's epoch entry points are
		// RunEpoch and RunLoop; stepping its controller any other way is
		// refused rather than racing the REST handlers.
		return fmt.Errorf("ctrlplane: controller stepped outside RunEpoch")
	}
	dec := round.Decision
	rep.NetRevenue = dec.Revenue()
	rep.DeficitCost = 1e4 * (dec.DeficitRadio + dec.DeficitTransport + dec.DeficitCompute)

	type progItem struct {
		name  string
		ti    int
		delta float64
	}
	var prog []progItem
	for ti, name := range round.Names {
		s := o.slices[name]
		if s == nil {
			return fmt.Errorf("ctrlplane: engine decided unknown slice %q", name)
		}
		if !dec.Accepted[ti] {
			if s.state == "pending" {
				s.state = "rejected"
				rep.Rejected = append(rep.Rejected, name)
			}
			continue
		}
		newTotal := 0.0
		for _, z := range dec.Z[ti] {
			newTotal += z
		}
		oldTotal := 0.0
		for _, z := range s.reserved {
			oldTotal += z
		}
		prog = append(prog, progItem{name: name, ti: ti, delta: newTotal - oldTotal})
	}
	sort.Slice(prog, func(i, j int) bool { return prog[i].delta < prog[j].delta })
	for _, pi := range prog {
		s := o.slices[pi.name]
		if err := o.program(pi.name, s, dec, pi.ti); err != nil {
			return fmt.Errorf("ctrlplane: programming %s: %w", pi.name, err)
		}
		if s.state == "pending" {
			s.state = "active"
			s.cu = dec.CU[pi.ti]
			rep.Accepted = append(rep.Accepted, pi.name)
		}
		s.reserved = append([]float64(nil), dec.Z[pi.ti]...)
	}
	return nil
}

func (o *Orchestrator) statusesLocked() []SliceStatus {
	out := make([]SliceStatus, 0, len(o.order))
	for _, name := range o.order {
		s := o.slices[name]
		out = append(out, SliceStatus{
			Name: name, Type: s.tmpl.Type.String(), State: s.state,
			CU: s.cu, Reserved: append([]float64(nil), s.reserved...),
			Remaining: s.remaining,
		})
	}
	return out
}

// program pushes one slice's reservation to all three domain controllers
// over the IFA005-flavoured southbound.
func (o *Orchestrator) program(name string, s *orchSlice, dec *core.Decision, ti int) error {
	eta := make([]float64, o.cfg.Net.NumBS())
	for b, bs := range o.cfg.Net.BSs {
		eta[b] = bs.Eta
	}
	shares := make([]float64, len(dec.Z[ti]))
	rules := make([]FlowSpec, len(dec.Z[ti]))
	total := 0.0
	cu := dec.CU[ti]
	for b, z := range dec.Z[ti] {
		shares[b] = z * eta[b]
		rules[b] = FlowSpec{
			LinkIDs:  o.paths[b][cu][dec.PathIdx[ti][b]].LinkIDs,
			RateMbps: z,
		}
		total += z
	}
	if err := o.post(o.cfg.RANAddr+"/shares", RadioConfig{Slice: name, ShareMHz: shares}); err != nil {
		return err
	}
	if err := o.post(o.cfg.TransportAddr+"/flows", FlowConfig{Slice: name, Rules: rules}); err != nil {
		return err
	}
	return o.post(o.cfg.CloudAddr+"/stacks", StackConfig{
		Slice: name, CU: cu,
		BaselineCPU: s.tmpl.Compute.BaselineCPU,
		CPUPerMbps:  s.tmpl.Compute.CPUPerMbps,
		TotalMbps:   total,
	})
}

// teardown removes a slice from every domain.
func (o *Orchestrator) teardown(name string) error {
	for _, url := range []string{
		o.cfg.RANAddr + "/shares/" + name,
		o.cfg.TransportAddr + "/flows/" + name,
		o.cfg.CloudAddr + "/stacks/" + name,
	} {
		req, err := http.NewRequest(http.MethodDelete, url, nil)
		if err != nil {
			return err
		}
		resp, err := o.client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ctrlplane: DELETE %s: %s", url, resp.Status)
		}
	}
	return nil
}

// post sends a JSON body and fails on any non-2xx answer.
func (o *Orchestrator) post(url string, body interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := o.client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck // best effort
		return fmt.Errorf("ctrlplane: POST %s: %s (%s)", url, resp.Status, e["error"])
	}
	return nil
}
