package ctrlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/monitor"
	"repro/internal/slice"
	"repro/internal/topology"
)

// OrchestratorConfig wires the E2E orchestrator to its domain controllers
// and monitoring backend.
type OrchestratorConfig struct {
	Net       *topology.Network
	KPaths    int    // k-shortest paths per (BS, CU); default 3
	Algorithm string // "direct" | "benders" | "kac" | "no-overbooking"
	HWPeriod  int    // Holt-Winters period in epochs; default 12

	// Shards, QueueDepth and TenantCap parameterize the admission engine
	// the orchestrator routes decisions through (internal/admission):
	// solver worker count, bounded-intake depth, and the per-tenant
	// fairness cap. Zero values take the engine defaults.
	Shards     int
	QueueDepth int
	TenantCap  int

	// Controller base URLs (e.g. "http://127.0.0.1:8181").
	RANAddr, TransportAddr, CloudAddr string

	// Store is the monitoring backend the collector writes into; the
	// admission engine publishes its round vitals into the same store.
	Store *monitor.Store
}

// orchSlice is the orchestrator's lifecycle state for one slice.
type orchSlice struct {
	req       SliceRequest
	tmpl      slice.Template
	sla       slice.SLA
	state     string // "pending" | "active" | "rejected" | "expired"
	cu        int
	reserved  []float64
	remaining int
	fc        forecast.Forecaster
	arrival   int
	ticket    *admission.Ticket // pending decision handle
}

// Orchestrator is the paper's OVNES: admission control, resource
// reservation, monitoring aggregation and forecasting behind one REST API.
// It is deliberately the only stateful control-plane entity. Admission and
// reservation decisions route through an internal/admission engine: the
// bounded intake backpressures Register, the prefilter fast-rejects
// structurally infeasible requests, and each epoch's AC-RR instance is
// solved on the engine's shard against a warm cross-epoch session.
type Orchestrator struct {
	cfg    OrchestratorConfig
	paths  [][][]topology.Path
	client *http.Client
	eng    *admission.Engine

	mu     sync.Mutex
	epoch  int
	slices map[string]*orchSlice
	order  []string // insertion order, for deterministic decisions
}

// NewOrchestrator builds the orchestrator; it precomputes the P_{b,c} path
// sets offline exactly as §2.1.2 prescribes and starts the admission
// engine. Call Close to release the engine's workers.
func NewOrchestrator(cfg OrchestratorConfig) (*Orchestrator, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("ctrlplane: orchestrator needs a topology")
	}
	if cfg.KPaths == 0 {
		cfg.KPaths = 3
	}
	if cfg.HWPeriod == 0 {
		cfg.HWPeriod = 12
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = "direct"
	}
	eng := admission.New(admission.Config{
		Shards:     cfg.Shards,
		QueueDepth: cfg.QueueDepth,
		TenantCap:  cfg.TenantCap,
		Store:      cfg.Store,
	})
	if err := eng.AddDomain(admission.DefaultDomain, admission.DomainConfig{
		Net:       cfg.Net,
		KPaths:    cfg.KPaths,
		Algorithm: cfg.Algorithm,
	}); err != nil {
		return nil, fmt.Errorf("ctrlplane: %w", err)
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	// Share the engine's path enumeration: program() must index paths with
	// the PathIdx values the engine's decisions produced, so using the very
	// same slice removes both the duplicate Yen run and any drift hazard.
	paths, err := eng.Paths(admission.DefaultDomain)
	if err != nil {
		return nil, err
	}
	return &Orchestrator{
		cfg:    cfg,
		paths:  paths,
		client: &http.Client{Timeout: 10 * time.Second},
		eng:    eng,
		slices: map[string]*orchSlice{},
	}, nil
}

// Close drains and stops the admission engine: queued requests are decided
// (bounded by the context) and the solver workers exit.
func (o *Orchestrator) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := o.eng.Drain(ctx)
	o.eng.Stop()
	return err
}

// Handler exposes the orchestrator's REST surface (SMan-Or northbound).
func (o *Orchestrator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /requests", func(w http.ResponseWriter, r *http.Request) {
		var nsd NSDescriptor
		if err := decodeBody(w, r, &nsd); err != nil {
			httpBodyError(w, err)
			return
		}
		if err := o.Register(nsd.Request); err != nil {
			status := http.StatusConflict
			if errors.Is(err, admission.ErrOverloaded) || errors.Is(err, admission.ErrTenantCap) {
				// Backpressure, not conflict: the tenant should retry later.
				status = http.StatusTooManyRequests
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "pending"})
	})
	mux.HandleFunc("POST /epoch", func(w http.ResponseWriter, r *http.Request) {
		rep, err := o.RunEpoch()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /slices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.Statuses())
	})
	mux.HandleFunc("GET /epoch", func(w http.ResponseWriter, r *http.Request) {
		o.mu.Lock()
		e := o.epoch
		o.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]int{"epoch": e})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.eng.Metrics())
	})
	return mux
}

// Register routes a tenant request into the admission engine's bounded
// intake. The slice appears as "pending" until the next epoch's round
// decides it; structurally infeasible requests are fast-rejected by the
// engine's prefilter without ever costing a solve, and an overloaded
// engine sheds with admission.ErrOverloaded / ErrTenantCap.
func (o *Orchestrator) Register(req SliceRequest) error {
	tmpl, err := req.Template()
	if err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.slices[req.Name]; dup {
		return fmt.Errorf("ctrlplane: slice %q already exists", req.Name)
	}
	if req.DurationEpochs <= 0 {
		return fmt.Errorf("ctrlplane: slice %q needs a positive duration", req.Name)
	}
	m := req.PenaltyFactor
	if m <= 0 {
		m = 1
	}
	sla := slice.SLA{Template: tmpl, Duration: req.DurationEpochs}.WithPenaltyFactor(m)
	ticket, err := o.eng.Submit(admission.Request{
		Tenant: req.Tenant,
		Name:   req.Name,
		SLA:    sla,
	})
	if err != nil {
		return err
	}
	o.slices[req.Name] = &orchSlice{
		req: req, tmpl: tmpl, sla: sla,
		state:     "pending",
		remaining: req.DurationEpochs,
		fc:        forecast.NewAdaptive(0.5, 0.05, 0.15, o.cfg.HWPeriod),
		arrival:   o.epoch,
		ticket:    ticket,
	}
	o.order = append(o.order, req.Name)
	return nil
}

// Statuses lists all known slices in registration order.
func (o *Orchestrator) Statuses() []SliceStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.statusesLocked()
}

// RunEpoch executes one decision round: aggregate monitoring, forecast,
// solve AC-RR through the admission engine's warm shard, program the
// controllers, and advance slice lifecycles.
func (o *Orchestrator) RunEpoch() (*EpochReport, error) {
	o.mu.Lock()
	defer o.mu.Unlock()

	// 1. Monitoring feedback: feed each active slice's forecaster with the
	// previous epoch's measured peak (max over κ samples and BSs), then
	// hand the engine the fresh forecast view so the round's solve drifts
	// costs/RHS against the warm session.
	for _, name := range o.order {
		s := o.slices[name]
		if s.state != "active" {
			continue
		}
		if o.cfg.Store != nil && o.epoch > 0 {
			if peak, ok := o.cfg.Store.EpochPeak(name, "load_mbps", o.epoch-1); ok {
				s.fc.Observe(peak)
			}
		}
		lamHat, sigma := s.sla.RateMbps, 1.0
		if u := s.fc.Uncertainty(); u < 1 {
			sigma = u
			// The bare peak forecast, as the paper reserves (§5).
			lamHat = math.Min(s.fc.Forecast(1)[0], s.sla.RateMbps)
		}
		if err := o.eng.UpdateForecast(admission.DefaultDomain, name, lamHat, sigma); err != nil {
			return nil, fmt.Errorf("ctrlplane: forecast for %s: %w", name, err)
		}
	}

	// 2. One admission round: committed actives re-optimize, queued
	// pendings are decided, all in a single warm solve on the engine shard.
	round, err := o.eng.DecideRound(admission.DefaultDomain)
	if err != nil {
		return nil, err
	}
	dec := round.Decision

	rep := &EpochReport{Epoch: o.epoch, NetRevenue: dec.Revenue(),
		DeficitCost: 1e4 * (dec.DeficitRadio + dec.DeficitTransport + dec.DeficitCompute)}

	// 3. Program the data plane: shrinking slices first so the controllers'
	// admission checks see freed capacity before grows arrive.
	type progItem struct {
		name  string
		ti    int
		delta float64
	}
	var prog []progItem
	for ti, name := range round.Names {
		s := o.slices[name]
		if s == nil {
			return nil, fmt.Errorf("ctrlplane: engine decided unknown slice %q", name)
		}
		if !dec.Accepted[ti] {
			if s.state == "pending" {
				s.state = "rejected"
				rep.Rejected = append(rep.Rejected, name)
			}
			continue
		}
		newTotal := 0.0
		for _, z := range dec.Z[ti] {
			newTotal += z
		}
		oldTotal := 0.0
		for _, z := range s.reserved {
			oldTotal += z
		}
		prog = append(prog, progItem{name: name, ti: ti, delta: newTotal - oldTotal})
	}
	// Requests the prefilter fast-rejected never reached the round; their
	// tickets are already resolved.
	for _, name := range o.order {
		s := o.slices[name]
		if s.state != "pending" || s.ticket == nil {
			continue
		}
		if out, ok := s.ticket.Outcome(); ok && out.FastRejected {
			s.state = "rejected"
			rep.Rejected = append(rep.Rejected, name)
		}
	}
	sort.Slice(prog, func(i, j int) bool { return prog[i].delta < prog[j].delta })
	for _, pi := range prog {
		s := o.slices[pi.name]
		if err := o.program(pi.name, s, dec, pi.ti); err != nil {
			return nil, fmt.Errorf("ctrlplane: programming %s: %w", pi.name, err)
		}
		if s.state == "pending" {
			s.state = "active"
			s.cu = dec.CU[pi.ti]
			rep.Accepted = append(rep.Accepted, pi.name)
		}
		s.reserved = append([]float64(nil), dec.Z[pi.ti]...)
	}

	// 4. Lifecycle: the engine ticks committed lifetimes down; expired
	// slices are torn out of every domain.
	expired, err := o.eng.Advance(admission.DefaultDomain)
	if err != nil {
		return nil, err
	}
	for _, name := range o.order {
		s := o.slices[name]
		if s.state == "active" {
			s.remaining--
		}
	}
	for _, name := range expired {
		s := o.slices[name]
		if s == nil || s.state != "active" {
			return nil, fmt.Errorf("ctrlplane: engine expired unknown or inactive slice %q", name)
		}
		s.state = "expired"
		rep.Expired = append(rep.Expired, name)
		if err := o.teardown(name); err != nil {
			return nil, fmt.Errorf("ctrlplane: teardown %s: %w", name, err)
		}
	}
	o.epoch++
	rep.Slices = o.statusesLocked()
	return rep, nil
}

func (o *Orchestrator) statusesLocked() []SliceStatus {
	out := make([]SliceStatus, 0, len(o.order))
	for _, name := range o.order {
		s := o.slices[name]
		out = append(out, SliceStatus{
			Name: name, Type: s.tmpl.Type.String(), State: s.state,
			CU: s.cu, Reserved: append([]float64(nil), s.reserved...),
			Remaining: s.remaining,
		})
	}
	return out
}

// program pushes one slice's reservation to all three domain controllers
// over the IFA005-flavoured southbound.
func (o *Orchestrator) program(name string, s *orchSlice, dec *core.Decision, ti int) error {
	eta := make([]float64, o.cfg.Net.NumBS())
	for b, bs := range o.cfg.Net.BSs {
		eta[b] = bs.Eta
	}
	shares := make([]float64, len(dec.Z[ti]))
	rules := make([]FlowSpec, len(dec.Z[ti]))
	total := 0.0
	cu := dec.CU[ti]
	for b, z := range dec.Z[ti] {
		shares[b] = z * eta[b]
		rules[b] = FlowSpec{
			LinkIDs:  o.paths[b][cu][dec.PathIdx[ti][b]].LinkIDs,
			RateMbps: z,
		}
		total += z
	}
	if err := o.post(o.cfg.RANAddr+"/shares", RadioConfig{Slice: name, ShareMHz: shares}); err != nil {
		return err
	}
	if err := o.post(o.cfg.TransportAddr+"/flows", FlowConfig{Slice: name, Rules: rules}); err != nil {
		return err
	}
	return o.post(o.cfg.CloudAddr+"/stacks", StackConfig{
		Slice: name, CU: cu,
		BaselineCPU: s.tmpl.Compute.BaselineCPU,
		CPUPerMbps:  s.tmpl.Compute.CPUPerMbps,
		TotalMbps:   total,
	})
}

// teardown removes a slice from every domain.
func (o *Orchestrator) teardown(name string) error {
	for _, url := range []string{
		o.cfg.RANAddr + "/shares/" + name,
		o.cfg.TransportAddr + "/flows/" + name,
		o.cfg.CloudAddr + "/stacks/" + name,
	} {
		req, err := http.NewRequest(http.MethodDelete, url, nil)
		if err != nil {
			return err
		}
		resp, err := o.client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ctrlplane: DELETE %s: %s", url, resp.Status)
		}
	}
	return nil
}

// post sends a JSON body and fails on any non-2xx answer.
func (o *Orchestrator) post(url string, body interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := o.client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck // best effort
		return fmt.Errorf("ctrlplane: POST %s: %s (%s)", url, resp.Status, e["error"])
	}
	return nil
}
