package ctrlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/monitor"
	"repro/internal/slice"
	"repro/internal/topology"
)

// OrchestratorConfig wires the E2E orchestrator to its domain controllers
// and monitoring backend.
type OrchestratorConfig struct {
	Net       *topology.Network
	KPaths    int    // k-shortest paths per (BS, CU); default 3
	Algorithm string // "direct" | "benders" | "kac" | "no-overbooking"
	HWPeriod  int    // Holt-Winters period in epochs; default 12

	// Controller base URLs (e.g. "http://127.0.0.1:8181").
	RANAddr, TransportAddr, CloudAddr string

	// Store is the monitoring backend the collector writes into.
	Store *monitor.Store
}

// orchSlice is the orchestrator's lifecycle state for one slice.
type orchSlice struct {
	req       SliceRequest
	tmpl      slice.Template
	sla       slice.SLA
	state     string // "pending" | "active" | "rejected" | "expired"
	cu        int
	reserved  []float64
	remaining int
	fc        forecast.Forecaster
	arrival   int
}

// Orchestrator is the paper's OVNES: admission control, resource
// reservation, monitoring aggregation and forecasting behind one REST API.
// It is deliberately the only stateful control-plane entity.
type Orchestrator struct {
	cfg    OrchestratorConfig
	paths  [][][]topology.Path
	client *http.Client

	mu     sync.Mutex
	epoch  int
	slices map[string]*orchSlice
	order  []string // insertion order, for deterministic decisions
}

// NewOrchestrator builds the orchestrator; it precomputes the P_{b,c} path
// sets offline exactly as §2.1.2 prescribes.
func NewOrchestrator(cfg OrchestratorConfig) (*Orchestrator, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("ctrlplane: orchestrator needs a topology")
	}
	if cfg.KPaths == 0 {
		cfg.KPaths = 3
	}
	if cfg.HWPeriod == 0 {
		cfg.HWPeriod = 12
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = "direct"
	}
	return &Orchestrator{
		cfg:    cfg,
		paths:  cfg.Net.Paths(cfg.KPaths),
		client: &http.Client{Timeout: 10 * time.Second},
		slices: map[string]*orchSlice{},
	}, nil
}

// Handler exposes the orchestrator's REST surface (SMan-Or northbound).
func (o *Orchestrator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /requests", func(w http.ResponseWriter, r *http.Request) {
		var nsd NSDescriptor
		if err := decodeBody(r, &nsd); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := o.Register(nsd.Request); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "pending"})
	})
	mux.HandleFunc("POST /epoch", func(w http.ResponseWriter, r *http.Request) {
		rep, err := o.RunEpoch()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /slices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, o.Statuses())
	})
	mux.HandleFunc("GET /epoch", func(w http.ResponseWriter, r *http.Request) {
		o.mu.Lock()
		e := o.epoch
		o.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]int{"epoch": e})
	})
	return mux
}

// Register adds a tenant request in "pending" state.
func (o *Orchestrator) Register(req SliceRequest) error {
	tmpl, err := req.Template()
	if err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.slices[req.Name]; dup {
		return fmt.Errorf("ctrlplane: slice %q already exists", req.Name)
	}
	if req.DurationEpochs <= 0 {
		return fmt.Errorf("ctrlplane: slice %q needs a positive duration", req.Name)
	}
	m := req.PenaltyFactor
	if m <= 0 {
		m = 1
	}
	sla := slice.SLA{Template: tmpl, Duration: req.DurationEpochs}.WithPenaltyFactor(m)
	o.slices[req.Name] = &orchSlice{
		req: req, tmpl: tmpl, sla: sla,
		state:     "pending",
		remaining: req.DurationEpochs,
		fc:        forecast.NewAdaptive(0.5, 0.05, 0.15, o.cfg.HWPeriod),
		arrival:   o.epoch,
	}
	o.order = append(o.order, req.Name)
	return nil
}

// Statuses lists all known slices in registration order.
func (o *Orchestrator) Statuses() []SliceStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]SliceStatus, 0, len(o.order))
	for _, name := range o.order {
		s := o.slices[name]
		out = append(out, SliceStatus{
			Name: name, Type: s.tmpl.Type.String(), State: s.state,
			CU: s.cu, Reserved: append([]float64(nil), s.reserved...),
			Remaining: s.remaining,
		})
	}
	return out
}

// RunEpoch executes one decision round: aggregate monitoring, forecast,
// solve AC-RR, program the controllers, and advance slice lifecycles.
func (o *Orchestrator) RunEpoch() (*EpochReport, error) {
	o.mu.Lock()
	defer o.mu.Unlock()

	// 1. Monitoring feedback: feed each active slice's forecaster with the
	// previous epoch's measured peak (max over κ samples and BSs).
	if o.cfg.Store != nil && o.epoch > 0 {
		for _, name := range o.order {
			s := o.slices[name]
			if s.state != "active" {
				continue
			}
			if peak, ok := o.cfg.Store.EpochPeak(name, "load_mbps", o.epoch-1); ok {
				s.fc.Observe(peak)
			}
		}
	}

	// 2. Build the AC-RR instance: committed actives plus pendings.
	var specs []core.TenantSpec
	var names []string
	for _, name := range o.order {
		s := o.slices[name]
		if s.state != "active" && s.state != "pending" {
			continue
		}
		lamHat, sigma := s.sla.RateMbps, 1.0
		if s.state == "active" {
			if u := s.fc.Uncertainty(); u < 1 {
				sigma = u
				// The bare peak forecast, as the paper reserves (§5).
				lamHat = math.Min(s.fc.Forecast(1)[0], s.sla.RateMbps)
			}
		}
		specs = append(specs, core.TenantSpec{
			Name: name, SLA: s.sla,
			LambdaHat: lamHat, Sigma: sigma,
			RemainingEpochs: s.remaining,
			Committed:       s.state == "active",
			CommittedCU:     s.cu,
		})
		names = append(names, name)
	}

	inst := &core.Instance{
		Net: o.cfg.Net, Paths: o.paths, Tenants: specs,
		Overbook: o.cfg.Algorithm != "no-overbooking", BigM: 1e4,
	}
	dec, err := o.solve(inst)
	if err != nil {
		return nil, err
	}

	rep := &EpochReport{Epoch: o.epoch, NetRevenue: dec.Revenue(),
		DeficitCost: 1e4 * (dec.DeficitRadio + dec.DeficitTransport + dec.DeficitCompute)}

	// 3. Program the data plane: shrinking slices first so the controllers'
	// admission checks see freed capacity before grows arrive.
	type progItem struct {
		name  string
		ti    int
		delta float64
	}
	var prog []progItem
	for ti, name := range names {
		s := o.slices[name]
		if !dec.Accepted[ti] {
			if s.state == "pending" {
				s.state = "rejected"
				rep.Rejected = append(rep.Rejected, name)
			}
			continue
		}
		newTotal := 0.0
		for _, z := range dec.Z[ti] {
			newTotal += z
		}
		oldTotal := 0.0
		for _, z := range s.reserved {
			oldTotal += z
		}
		prog = append(prog, progItem{name: name, ti: ti, delta: newTotal - oldTotal})
	}
	sort.Slice(prog, func(i, j int) bool { return prog[i].delta < prog[j].delta })
	for _, pi := range prog {
		s := o.slices[pi.name]
		if err := o.program(pi.name, s, dec, pi.ti); err != nil {
			return nil, fmt.Errorf("ctrlplane: programming %s: %w", pi.name, err)
		}
		if s.state == "pending" {
			s.state = "active"
			s.cu = dec.CU[pi.ti]
			rep.Accepted = append(rep.Accepted, pi.name)
		}
		s.reserved = append([]float64(nil), dec.Z[pi.ti]...)
	}

	// 4. Lifecycle: tick down, expire and tear down.
	for _, name := range o.order {
		s := o.slices[name]
		if s.state != "active" {
			continue
		}
		s.remaining--
		if s.remaining <= 0 {
			s.state = "expired"
			rep.Expired = append(rep.Expired, name)
			if err := o.teardown(name); err != nil {
				return nil, fmt.Errorf("ctrlplane: teardown %s: %w", name, err)
			}
		}
	}
	o.epoch++
	rep.Slices = o.statusesLocked()
	return rep, nil
}

func (o *Orchestrator) statusesLocked() []SliceStatus {
	out := make([]SliceStatus, 0, len(o.order))
	for _, name := range o.order {
		s := o.slices[name]
		out = append(out, SliceStatus{
			Name: name, Type: s.tmpl.Type.String(), State: s.state,
			CU: s.cu, Reserved: append([]float64(nil), s.reserved...),
			Remaining: s.remaining,
		})
	}
	return out
}

// solve dispatches to the configured AC-RR algorithm.
func (o *Orchestrator) solve(inst *core.Instance) (*core.Decision, error) {
	switch o.cfg.Algorithm {
	case "direct", "no-overbooking":
		return core.SolveDirect(inst)
	case "benders":
		return core.SolveBenders(inst, core.BendersOptions{})
	case "kac":
		return core.SolveKAC(inst, core.KACOptions{})
	}
	return nil, fmt.Errorf("ctrlplane: unknown algorithm %q", o.cfg.Algorithm)
}

// program pushes one slice's reservation to all three domain controllers
// over the IFA005-flavoured southbound.
func (o *Orchestrator) program(name string, s *orchSlice, dec *core.Decision, ti int) error {
	eta := make([]float64, o.cfg.Net.NumBS())
	for b, bs := range o.cfg.Net.BSs {
		eta[b] = bs.Eta
	}
	shares := make([]float64, len(dec.Z[ti]))
	rules := make([]FlowSpec, len(dec.Z[ti]))
	total := 0.0
	cu := dec.CU[ti]
	for b, z := range dec.Z[ti] {
		shares[b] = z * eta[b]
		rules[b] = FlowSpec{
			LinkIDs:  o.paths[b][cu][dec.PathIdx[ti][b]].LinkIDs,
			RateMbps: z,
		}
		total += z
	}
	if err := o.post(o.cfg.RANAddr+"/shares", RadioConfig{Slice: name, ShareMHz: shares}); err != nil {
		return err
	}
	if err := o.post(o.cfg.TransportAddr+"/flows", FlowConfig{Slice: name, Rules: rules}); err != nil {
		return err
	}
	return o.post(o.cfg.CloudAddr+"/stacks", StackConfig{
		Slice: name, CU: cu,
		BaselineCPU: s.tmpl.Compute.BaselineCPU,
		CPUPerMbps:  s.tmpl.Compute.CPUPerMbps,
		TotalMbps:   total,
	})
}

// teardown removes a slice from every domain.
func (o *Orchestrator) teardown(name string) error {
	for _, url := range []string{
		o.cfg.RANAddr + "/shares/" + name,
		o.cfg.TransportAddr + "/flows/" + name,
		o.cfg.CloudAddr + "/stacks/" + name,
	} {
		req, err := http.NewRequest(http.MethodDelete, url, nil)
		if err != nil {
			return err
		}
		resp, err := o.client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ctrlplane: DELETE %s: %s", url, resp.Status)
		}
	}
	return nil
}

// post sends a JSON body and fails on any non-2xx answer.
func (o *Orchestrator) post(url string, body interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := o.client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck // best effort
		return fmt.Errorf("ctrlplane: POST %s: %s (%s)", url, resp.Status, e["error"])
	}
	return nil
}
