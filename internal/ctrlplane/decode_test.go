package ctrlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/topology"
)

// TestDecodeBodyHardening drives the strict JSON decoder through its
// failure modes: oversized bodies, unknown fields, malformed and trailing
// payloads must all be rejected; a well-formed document must pass.
func TestDecodeBodyHardening(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req SliceRequest
		if err := decodeBody(w, r, &req); err != nil {
			httpBodyError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, req)
	})

	huge := `{"name":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	cases := []struct {
		name string
		body string
		want int
	}{
		{"valid", `{"name":"s1","type":"eMBB","duration_epochs":3}`, http.StatusOK},
		{"valid with tenant", `{"name":"s1","tenant":"acme","type":"eMBB"}`, http.StatusOK},
		{"empty body", ``, http.StatusBadRequest},
		{"malformed json", `{"name":`, http.StatusBadRequest},
		{"wrong field type", `{"name":42}`, http.StatusBadRequest},
		{"unknown field", `{"name":"s1","admin":true}`, http.StatusBadRequest},
		{"trailing garbage", `{"name":"s1"} {"name":"s2"}`, http.StatusBadRequest},
		{"array not object", `[{"name":"s1"}]`, http.StatusBadRequest},
		{"oversized body", huge, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/requests", strings.NewReader(tc.body))
			handler.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Fatalf("status %d, want %d (body: %s)", rec.Code, tc.want, rec.Body.String())
			}
		})
	}
}

// TestControllerEndpointsRejectHostilePayloads checks the hardened decoder
// is actually wired at every controller's POST surface, not just the
// helper.
func TestControllerEndpointsRejectHostilePayloads(t *testing.T) {
	s := newStack(t, "direct")
	endpoints := []struct {
		url  string
		body string
	}{
		{s.ran.URL + "/shares", `{"slice":"x","share_mhz":[1,1],"extra":1}`},
		{s.tn.URL + "/flows", `{"slice":"x","rules":[],"extra":1}`},
		{s.cloud.URL + "/stacks", `{"slice":"x","cu":0,"extra":1}`},
		{s.orchSrv.URL + "/requests", `{"name":"x","bogus":true}`},
		{s.mgr.URL + "/requests", `{"name":"x","bogus":true}`},
	}
	for _, ep := range endpoints {
		resp, err := http.Post(ep.url, "application/json", bytes.NewReader([]byte(ep.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with unknown field: %s, want 400", ep.url, resp.Status)
		}
	}
}

// TestRegisterBackpressure fills the engine's bounded intake and checks the
// HTTP surface reports backpressure as 429, not as a conflict.
func TestRegisterBackpressure(t *testing.T) {
	net := topology.Testbed()
	orch, err := NewOrchestrator(OrchestratorConfig{
		Net: net, Algorithm: "direct", Store: monitor.NewStore(0),
		QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { orch.Close() }) //nolint:errcheck // engine worker teardown
	srv := httptest.NewServer(orch.Handler())
	t.Cleanup(srv.Close)

	post := func(name string) int {
		t.Helper()
		nsd := BuildNSD(SliceRequest{Name: name, Type: "eMBB", DurationEpochs: 4})
		b, _ := json.Marshal(nsd)
		resp, err := http.Post(srv.URL+"/requests", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("a"); got != http.StatusAccepted {
		t.Fatalf("first: %d", got)
	}
	if got := post("b"); got != http.StatusAccepted {
		t.Fatalf("second: %d", got)
	}
	if got := post("c"); got != http.StatusTooManyRequests {
		t.Fatalf("overload: %d, want 429", got)
	}
	// A duplicate is still a conflict, not backpressure.
	if got := post("a"); got != http.StatusConflict {
		t.Fatalf("duplicate: %d, want 409", got)
	}
}

// TestMetricsEndpoint reads the admission engine's snapshot through the
// orchestrator's REST surface after a full epoch.
func TestMetricsEndpoint(t *testing.T) {
	s := newStack(t, "direct")
	s.submit(t, urllcReq("u1"))
	s.epoch(t)

	resp, err := http.Get(s.orchSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["submitted"].(float64) != 1 || m["admitted"].(float64) != 1 || m["rounds"].(float64) != 1 {
		t.Fatalf("metrics: %v", m)
	}
	// The engine's round vitals land in the shared monitoring store.
	if _, ok := s.store.EpochPeak("admission", "round_ms", 0); !ok {
		t.Error("admission round sample missing from the monitor store")
	}
}
