package ctrlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/monitor"
	"repro/internal/topology"
)

// stack spins up the full control plane over loopback HTTP: three domain
// controllers, the orchestrator and the slice manager, all fronting one
// emulated testbed data plane.
type stack struct {
	dp    *dataplane.Emulator
	store *monitor.Store
	orch  *Orchestrator

	ran, tn, cloud, orchSrv, mgr *httptest.Server
}

func newStack(t *testing.T, algorithm string) *stack {
	t.Helper()
	net := topology.Testbed()
	dp := dataplane.NewEmulator(net)
	store := monitor.NewStore(0)

	s := &stack{dp: dp, store: store}
	s.ran = httptest.NewServer(NewRANController(dp).Handler())
	s.tn = httptest.NewServer(NewTransportController(dp).Handler())
	s.cloud = httptest.NewServer(NewCloudController(dp).Handler())
	t.Cleanup(s.ran.Close)
	t.Cleanup(s.tn.Close)
	t.Cleanup(s.cloud.Close)

	orch, err := NewOrchestrator(OrchestratorConfig{
		Net: net, Algorithm: algorithm, Store: store,
		RANAddr: s.ran.URL, TransportAddr: s.tn.URL, CloudAddr: s.cloud.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.orch = orch
	t.Cleanup(func() { orch.Close() }) //nolint:errcheck // engine worker teardown
	s.orchSrv = httptest.NewServer(orch.Handler())
	t.Cleanup(s.orchSrv.Close)

	s.mgr = httptest.NewServer(NewSliceManager(s.orchSrv.URL).Handler())
	t.Cleanup(s.mgr.Close)
	return s
}

// submit posts a slice request through the slice manager.
func (s *stack) submit(t *testing.T, req SliceRequest) *http.Response {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(s.mgr.URL+"/requests", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// epoch advances one decision epoch through the orchestrator API.
func (s *stack) epoch(t *testing.T) EpochReport {
	t.Helper()
	resp, err := http.Post(s.orchSrv.URL+"/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("epoch failed: %s (%v)", resp.Status, e)
	}
	var rep EpochReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func urllcReq(name string) SliceRequest {
	return SliceRequest{Name: name, Type: "uRLLC", DurationEpochs: 10, PenaltyFactor: 1}
}

func TestEndToEndAdmissionAndProgramming(t *testing.T) {
	s := newStack(t, "direct")
	if resp := s.submit(t, urllcReq("u1")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	rep := s.epoch(t)
	if len(rep.Accepted) != 1 || rep.Accepted[0] != "u1" {
		t.Fatalf("accepted = %v", rep.Accepted)
	}
	// The data plane must now hold the full end-to-end slice: radio
	// shares, flow rules and a pinned stack on the edge CU.
	if s.dp.Radios[0].Share("u1") <= 0 || s.dp.Radios[1].Share("u1") <= 0 {
		t.Error("radio shares not programmed")
	}
	if len(s.dp.Fabric.Rules("u1")) != 2 {
		t.Error("flow rules not programmed")
	}
	if s.dp.CUs[0].Pinned("u1") <= 0 {
		t.Error("stack not deployed on the edge CU")
	}
	// New slice with no history: reservation equals the full SLA (25 Mb/s
	// per BS).
	for _, st := range rep.Slices {
		if st.Name == "u1" {
			for _, z := range st.Reserved {
				if z < 24.9 {
					t.Errorf("cold-start reservation %v, want ≈25", z)
				}
			}
		}
	}
}

func TestMonitoringDrivenOverbooking(t *testing.T) {
	s := newStack(t, "direct")
	s.submit(t, urllcReq("u1"))
	s.epoch(t)

	// Feed monitoring: u1's actual load is ~10 of 25 Mb/s for several
	// epochs; the orchestrator must shrink the reservation.
	for e := 1; e <= 6; e++ {
		for theta := 0; theta < 12; theta++ {
			s.store.Add(monitor.Sample{
				Slice: "u1", Metric: "load_mbps", Element: "bs0",
				Epoch: e - 1, Theta: theta, Value: 10,
			})
		}
		s.epoch(t)
	}
	sts := s.orch.Statuses()
	if sts[0].Reserved[0] >= 24 {
		t.Errorf("reservation never shrank: %v", sts[0].Reserved)
	}
	// The data plane reflects the shrink too.
	if share := s.dp.Radios[0].Share("u1"); share >= 24*topology.EtaMHzPerMbps {
		t.Errorf("radio share not reduced: %v MHz", share)
	}
}

func TestOverbookingAdmitsSecondSlice(t *testing.T) {
	// The §5 storyline: uRLLC1 at low load lets uRLLC2 in later even
	// though both at full SLA exceed the edge CU.
	s := newStack(t, "direct")
	// Make compute the bottleneck as in Fig. 8: uRLLC needs 0.2 CPU/Mbps,
	// 2 BS × 25 Mb/s × 0.2 = 10 cores of 16 — two full slices don't fit.
	s.submit(t, SliceRequest{Name: "u1", Type: "uRLLC", DurationEpochs: 20, PenaltyFactor: 1})
	rep := s.epoch(t)
	if len(rep.Accepted) != 1 {
		t.Fatalf("u1 not accepted: %+v", rep)
	}
	for e := 1; e <= 5; e++ {
		for theta := 0; theta < 12; theta++ {
			s.store.Add(monitor.Sample{Slice: "u1", Metric: "load_mbps", Element: "bs0",
				Epoch: e - 1, Theta: theta, Value: 12})
		}
		s.epoch(t)
	}
	s.submit(t, SliceRequest{Name: "u2", Type: "uRLLC", DurationEpochs: 20, PenaltyFactor: 1})
	rep = s.epoch(t)
	found := false
	for _, n := range rep.Accepted {
		if n == "u2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("u2 not admitted despite headroom: %+v", rep)
	}
}

func TestSliceExpiryTearsDownDataPlane(t *testing.T) {
	s := newStack(t, "direct")
	req := urllcReq("short")
	req.DurationEpochs = 2
	s.submit(t, req)
	s.epoch(t)
	rep := s.epoch(t)
	if len(rep.Expired) != 1 {
		t.Fatalf("expired = %v", rep.Expired)
	}
	if s.dp.Radios[0].Share("short") != 0 || len(s.dp.Fabric.Rules("short")) != 0 ||
		s.dp.CUs[0].Pinned("short") != 0 {
		t.Error("expired slice left data-plane state behind")
	}
}

func TestRejectionIsReported(t *testing.T) {
	s := newStack(t, "no-overbooking")
	// Edge CU: 16 cores; one mMTC slice needs 2 BS × 10 Mb/s × 2 = 40.
	// With no-overbooking the full reservation cannot fit anywhere — the
	// core CU could hold it, but radio is fine... compute on core (80
	// cores) fits, so use three mMTC to exhaust it.
	for i := 0; i < 4; i++ {
		s.submit(t, SliceRequest{Name: names[i], Type: "mMTC", DurationEpochs: 10, PenaltyFactor: 1})
	}
	rep := s.epoch(t)
	if len(rep.Accepted)+len(rep.Rejected) != 4 || len(rep.Rejected) == 0 {
		t.Fatalf("accepted=%v rejected=%v", rep.Accepted, rep.Rejected)
	}
}

var names = []string{"m1", "m2", "m3", "m4"}

func TestSliceManagerValidation(t *testing.T) {
	s := newStack(t, "direct")
	if resp := s.submit(t, SliceRequest{Name: "", Type: "eMBB", DurationEpochs: 3}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless request: %s", resp.Status)
	}
	if resp := s.submit(t, SliceRequest{Name: "x", Type: "5G-magic", DurationEpochs: 3}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown type: %s", resp.Status)
	}
	if resp := s.submit(t, SliceRequest{Name: "x", Type: "eMBB"}); resp.StatusCode == http.StatusAccepted {
		t.Error("zero duration accepted")
	}
	// Duplicates are refused by the orchestrator.
	if resp := s.submit(t, urllcReq("dup")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first dup: %s", resp.Status)
	}
	if resp := s.submit(t, urllcReq("dup")); resp.StatusCode == http.StatusAccepted {
		t.Error("duplicate accepted")
	}
}

func TestNSDRoundTrip(t *testing.T) {
	s := newStack(t, "direct")
	s.submit(t, urllcReq("u9"))
	resp, err := http.Get(s.mgr.URL + "/nsd/u9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nsd NSDescriptor
	if err := json.NewDecoder(resp.Body).Decode(&nsd); err != nil {
		t.Fatal(err)
	}
	if len(nsd.VNFs) != 3 || len(nsd.PNFs) != 2 || len(nsd.VLinks) != 4 {
		t.Errorf("NSD shape: %+v", nsd)
	}
	if resp, _ := http.Get(s.mgr.URL + "/nsd/ghost"); resp.StatusCode != http.StatusNotFound {
		t.Error("ghost NSD must 404")
	}
}

func TestManagerSliceListing(t *testing.T) {
	s := newStack(t, "direct")
	s.submit(t, urllcReq("u1"))
	s.epoch(t)
	resp, err := http.Get(s.mgr.URL + "/slices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sts []SliceStatus
	if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].State != "active" {
		t.Errorf("statuses = %+v", sts)
	}
}

func TestTemplateResolution(t *testing.T) {
	tm, err := SliceRequest{Type: "eMBB"}.Template()
	if err != nil || tm.RateMbps != 50 {
		t.Errorf("eMBB default: %+v (%v)", tm, err)
	}
	tm, err = SliceRequest{Type: "mMTC", RateMbps: 5, Reward: 9}.Template()
	if err != nil || tm.RateMbps != 5 || tm.Reward != 9 || tm.Compute.CPUPerMbps != 2 {
		t.Errorf("override: %+v (%v)", tm, err)
	}
	if _, err := (SliceRequest{Type: "bogus"}).Template(); err == nil {
		t.Error("bogus type resolved")
	}
}
