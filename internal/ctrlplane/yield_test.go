package ctrlplane

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/yield"
)

// TestYieldLedgerThroughREST walks one slice through a monitored epoch and
// reads the realized account back over the orchestrator's REST surface:
// GET /yield carries the raw ledger, GET /metrics embeds it alongside the
// (shape-stable) engine snapshot.
func TestYieldLedgerThroughREST(t *testing.T) {
	s := newStack(t, "direct")
	s.submit(t, urllcReq("u1"))
	s.epoch(t) // admits u1; its reservation serves epoch 0

	// Epoch 0's monitored load: 10 of 25 Mb/s — no violation, full reward.
	for theta := 0; theta < 12; theta++ {
		s.store.Add(monitor.Sample{
			Slice: "u1", Metric: monitor.LoadMetric, Element: monitor.BSElement(0),
			Epoch: 0, Theta: theta, Value: 10,
		})
	}
	s.epoch(t) // settles epoch 0 into the ledger

	resp, err := http.Get(s.orchSrv.URL + "/yield")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum yield.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Entries != 1 || len(sum.PerSlice) != 1 || sum.PerSlice[0].Slice != "u1" {
		t.Fatalf("yield summary after one settled epoch: %+v", sum)
	}
	if sum.Penalty != 0 || sum.Realized != sum.Reward || sum.Realized <= 0 {
		t.Fatalf("violation-free epoch should realize the full reward: %+v", sum)
	}
	if sum.ExpectedRounds != 2 { // both epochs' rounds booked an estimate
		t.Fatalf("expected-revenue rounds = %d, want 2: %+v", sum.ExpectedRounds, sum)
	}

	// /metrics keeps the engine counters at the top level and adds yield.
	resp2, err := http.Get(s.orchSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"submitted", "rounds", "yield"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("/metrics missing %q: %v", key, m)
		}
	}
	var embedded yield.Summary
	if err := json.Unmarshal(m["yield"], &embedded); err != nil {
		t.Fatal(err)
	}
	if embedded.Realized != sum.Realized {
		t.Fatalf("/metrics yield %+v != /yield %+v", embedded, sum)
	}

	// The realized sample is published back through the monitoring store,
	// and the in-process accessor agrees with the REST surface.
	if _, ok := s.store.EpochPeak("u1", "yield_realized", 0); !ok {
		t.Error("per-slice realized-yield sample missing from the monitor store")
	}
	if got := s.orch.Yield(); got.Realized != sum.Realized {
		t.Errorf("Orchestrator.Yield() %+v != GET /yield %+v", got, sum)
	}
}

// TestRunLoopDrivesEpochs pins the orchestrator's wall-clock mode (ovnes
// -epoch-every): epochs advance on their own until the context ends.
func TestRunLoopDrivesEpochs(t *testing.T) {
	s := newStack(t, "direct")
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := s.orch.RunLoop(ctx, 20*time.Millisecond); err != nil {
		t.Fatalf("RunLoop: %v", err)
	}
	resp, err := http.Get(s.orchSrv.URL + "/epoch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e["epoch"] == 0 {
		t.Fatal("no epoch ran during the RunLoop window")
	}
}
