package ctrlplane

import (
	"encoding/json"
	"net/http"
	"testing"
)

// managerSlices reads the tenant-facing slice listing (SliceManager →
// Orchestrator proxy path), returning states by name.
func managerSlices(t *testing.T, s *stack) map[string]SliceStatus {
	t.Helper()
	resp, err := http.Get(s.mgr.URL + "/slices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manager /slices: %s", resp.Status)
	}
	var sts []SliceStatus
	if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
		t.Fatal(err)
	}
	out := map[string]SliceStatus{}
	for _, st := range sts {
		out[st.Name] = st
	}
	return out
}

// TestLifecycleAdmitRejectExpire walks one slice population through the
// full control-plane lifecycle over loopback HTTP — SliceManager →
// Orchestrator → all three domain controllers — and checks every state
// transition and its data-plane footprint:
//
//	pending → active → expired   (admitted slice, resources torn down)
//	pending → rejected           (capacity exhausted, nothing programmed)
//
// The no-overbooking solver makes admission arithmetic exact: one full
// mMTC reservation needs 2 BS × 10 Mb/s × 2 cores/Mbps = 40 cores, which
// only the 64-core core cloud can host (the edge CU has 16), and only
// once — so of four requests exactly one is admitted and three are
// rejected.
func TestLifecycleAdmitRejectExpire(t *testing.T) {
	s := newStack(t, "no-overbooking")

	// Epoch 0: the first admission fills the core cloud; the rest are
	// turned away.
	for i := 0; i < 4; i++ {
		req := SliceRequest{Name: names[i], Type: "mMTC", DurationEpochs: 2, PenaltyFactor: 1}
		if resp := s.submit(t, req); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %s", names[i], resp.Status)
		}
	}
	rep := s.epoch(t)
	if len(rep.Accepted) != 1 || len(rep.Rejected) != 3 {
		t.Fatalf("epoch 0: accepted=%v rejected=%v", rep.Accepted, rep.Rejected)
	}

	sts := managerSlices(t, s)
	active, rejected := 0, ""
	for name, st := range sts {
		switch st.State {
		case "active":
			active++
			if st.CU < 0 || len(st.Reserved) == 0 {
				t.Errorf("%s active without placement: %+v", name, st)
			}
			// Full mMTC SLA: 10 Mb/s per BS, no overbooking.
			for _, z := range st.Reserved {
				if z < 9.99 {
					t.Errorf("%s reserved %v, want full 10 Mb/s", name, z)
				}
			}
		case "rejected":
			rejected = name
		default:
			t.Errorf("%s in unexpected state %q", name, st.State)
		}
	}
	if active != 1 || rejected == "" {
		t.Fatalf("states after epoch 0: %+v", sts)
	}
	// A rejected slice must leave no data-plane footprint.
	if s.dp.Radios[0].Share(rejected) != 0 || len(s.dp.Fabric.Rules(rejected)) != 0 {
		t.Errorf("rejected slice %s left data-plane state", rejected)
	}

	// Epoch 1 expires the 2-epoch slice and tears its resources down.
	rep = s.epoch(t)
	if len(rep.Expired) != 1 {
		t.Fatalf("epoch 1: expired=%v, want the active slice", rep.Expired)
	}
	sts = managerSlices(t, s)
	for _, name := range rep.Expired {
		if sts[name].State != "expired" {
			t.Errorf("%s state %q after expiry", name, sts[name].State)
		}
		if s.dp.Radios[0].Share(name) != 0 || len(s.dp.Fabric.Rules(name)) != 0 ||
			s.dp.CUs[0].Pinned(name)+s.dp.CUs[1].Pinned(name) != 0 {
			t.Errorf("expired slice %s left data-plane state behind", name)
		}
	}

	// The freed capacity admits a late arrival end to end.
	if resp := s.submit(t, SliceRequest{Name: "late", Type: "mMTC", DurationEpochs: 3, PenaltyFactor: 1}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("late submit: %s", resp.Status)
	}
	rep = s.epoch(t)
	found := false
	for _, n := range rep.Accepted {
		if n == "late" {
			found = true
		}
	}
	if !found {
		t.Fatalf("late arrival not admitted into freed capacity: %+v", rep)
	}
	if s.dp.CUs[0].Pinned("late")+s.dp.CUs[1].Pinned("late") <= 0 {
		t.Error("late slice admitted but no stack deployed")
	}
}
