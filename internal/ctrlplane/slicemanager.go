package ctrlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SliceManager is the tenant-facing web app at the top of the control
// hierarchy (§2.2.1): it validates slice requests Φτ, renders each into a
// TOSCA-like NS descriptor, and forwards it to the E2E orchestrator over
// the SMan-Or REST interface. Like the domain controllers it is stateless
// with respect to slice lifecycle — the descriptor cache below is a pure
// convenience view and can be lost at any time.
type SliceManager struct {
	orchAddr string
	client   *http.Client

	mu   sync.Mutex
	nsds map[string]NSDescriptor
}

// NewSliceManager returns a manager forwarding to the orchestrator at
// orchAddr (e.g. "http://127.0.0.1:8080").
func NewSliceManager(orchAddr string) *SliceManager {
	return &SliceManager{
		orchAddr: orchAddr,
		client:   &http.Client{Timeout: 10 * time.Second},
		nsds:     map[string]NSDescriptor{},
	}
}

// Handler exposes the tenant-facing REST surface.
func (m *SliceManager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /requests", func(w http.ResponseWriter, r *http.Request) {
		var req SliceRequest
		if err := decodeBody(w, r, &req); err != nil {
			httpBodyError(w, err)
			return
		}
		if req.Name == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("ctrlplane: slice request needs a name"))
			return
		}
		if _, err := req.Template(); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		nsd := BuildNSD(req)

		// Forward to the orchestrator.
		b, err := json.Marshal(nsd)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		resp, err := m.client.Post(m.orchAddr+"/requests", "application/json", bytes.NewReader(b))
		if err != nil {
			httpError(w, http.StatusBadGateway, fmt.Errorf("ctrlplane: orchestrator unreachable: %w", err))
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			var e map[string]string
			json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck // best effort
			httpError(w, resp.StatusCode, fmt.Errorf("ctrlplane: orchestrator: %s", e["error"]))
			return
		}
		m.mu.Lock()
		m.nsds[req.Name] = nsd
		m.mu.Unlock()
		writeJSON(w, http.StatusAccepted, nsd)
	})
	mux.HandleFunc("GET /nsd/{name}", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		nsd, ok := m.nsds[r.PathValue("name")]
		m.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("ctrlplane: no NS descriptor for %q", r.PathValue("name")))
			return
		}
		writeJSON(w, http.StatusOK, nsd)
	})
	mux.HandleFunc("GET /slices", func(w http.ResponseWriter, r *http.Request) {
		resp, err := m.client.Get(m.orchAddr + "/slices")
		if err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		defer resp.Body.Close()
		var sts []SliceStatus
		if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		writeJSON(w, http.StatusOK, sts)
	})
	return mux
}
