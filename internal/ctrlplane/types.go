package ctrlplane

import "repro/internal/slice"

// SliceRequest is the tenant-facing request Φτ = {s, Δ, Λ, L} plus
// commercial terms, submitted to the slice manager.
type SliceRequest struct {
	Name string `json:"name"`
	// Tenant is the submitting tenant's identity, used by the admission
	// engine's per-tenant fairness cap; empty means the slice name.
	Tenant         string  `json:"tenant,omitempty"`
	Type           string  `json:"type"`            // "eMBB" | "mMTC" | "uRLLC"
	RateMbps       float64 `json:"rate_mbps"`       // Λ per radio site
	DelayMs        float64 `json:"delay_ms"`        // Δ
	DurationEpochs int     `json:"duration_epochs"` // L
	Reward         float64 `json:"reward"`
	PenaltyFactor  float64 `json:"penalty_factor"` // m, K = m·R
	BaselineCPU    float64 `json:"baseline_cpu"`   // aτ
	CPUPerMbps     float64 `json:"cpu_per_mbps"`   // bτ
}

// Template resolves the request against Table 1 defaults: zero-valued
// fields inherit the template of the declared type.
func (r SliceRequest) Template() (slice.Template, error) {
	var ty slice.Type
	switch r.Type {
	case "eMBB":
		ty = slice.EMBB
	case "mMTC":
		ty = slice.MMTC
	case "uRLLC":
		ty = slice.URLLC
	default:
		return slice.Template{}, errUnknownType(r.Type)
	}
	t := slice.Table1(ty)
	if r.RateMbps > 0 {
		t.RateMbps = r.RateMbps
	}
	if r.DelayMs > 0 {
		t.DelayBound = r.DelayMs / 1e3
	}
	if r.Reward > 0 {
		t.Reward = r.Reward
	}
	if r.BaselineCPU > 0 {
		t.Compute.BaselineCPU = r.BaselineCPU
	}
	if r.CPUPerMbps > 0 {
		t.Compute.CPUPerMbps = r.CPUPerMbps
	}
	return t, nil
}

type errUnknownType string

func (e errUnknownType) Error() string { return "ctrlplane: unknown slice type " + string(e) }

// NSDescriptor is the TOSCA-flavoured network-service document the slice
// manager builds per request (Fig. 1): the chain of PNFs (BS and switch
// slices), the mobile-core VNFs, the rate-control middlebox and the
// tenant's vertical service.
type NSDescriptor struct {
	Name    string       `json:"name"`
	Request SliceRequest `json:"request"`
	VNFs    []VNFD       `json:"vnfs"`
	PNFs    []PNFD       `json:"pnfs"`
	VLinks  []VLinkD     `json:"virtual_links"`
}

// VNFD is a virtual network function descriptor.
type VNFD struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "vEPC" | "middlebox" | "vertical-service"
}

// PNFD is a physical network function slice (BS or switch share).
type PNFD struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "bs-slice" | "switch-slice"
}

// VLinkD chains two functions.
type VLinkD struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// BuildNSD renders the standard service chain of Fig. 1 for a request.
func BuildNSD(r SliceRequest) NSDescriptor {
	return NSDescriptor{
		Name:    r.Name,
		Request: r,
		VNFs: []VNFD{
			{Name: r.Name + "-vepc", Kind: "vEPC"},
			{Name: r.Name + "-mbox", Kind: "middlebox"},
			{Name: r.Name + "-vs", Kind: "vertical-service"},
		},
		PNFs: []PNFD{
			{Name: r.Name + "-ran", Kind: "bs-slice"},
			{Name: r.Name + "-tn", Kind: "switch-slice"},
		},
		VLinks: []VLinkD{
			{From: r.Name + "-ran", To: r.Name + "-tn"},
			{From: r.Name + "-tn", To: r.Name + "-vepc"},
			{From: r.Name + "-vepc", To: r.Name + "-mbox"},
			{From: r.Name + "-mbox", To: r.Name + "-vs"},
		},
	}
}

// RadioConfig programs one slice's PRB shares (Or-R southbound).
type RadioConfig struct {
	Slice    string    `json:"slice"`
	ShareMHz []float64 `json:"share_mhz"` // per BS
}

// FlowConfig programs one slice's transport paths and meters (Or-T).
type FlowConfig struct {
	Slice string     `json:"slice"`
	Rules []FlowSpec `json:"rules"`
}

// FlowSpec is one BS's path and meter.
type FlowSpec struct {
	LinkIDs  []int   `json:"link_ids"`
	RateMbps float64 `json:"rate_mbps"`
}

// StackConfig programs one slice's cloud stack (Or-C).
type StackConfig struct {
	Slice       string  `json:"slice"`
	CU          int     `json:"cu"`
	BaselineCPU float64 `json:"baseline_cpu"`
	CPUPerMbps  float64 `json:"cpu_per_mbps"`
	TotalMbps   float64 `json:"total_mbps"` // Σ per-BS reservations
}

// SliceStatus is the orchestrator's public view of one slice.
type SliceStatus struct {
	Name      string    `json:"name"`
	Type      string    `json:"type"`
	State     string    `json:"state"` // "pending" | "active" | "rejected" | "expired"
	CU        int       `json:"cu"`
	Reserved  []float64 `json:"reserved_mbps"` // per BS
	Remaining int       `json:"remaining_epochs"`
}

// EpochReport summarizes one decision round.
type EpochReport struct {
	Epoch       int           `json:"epoch"`
	Accepted    []string      `json:"accepted"`
	Rejected    []string      `json:"rejected"`
	Expired     []string      `json:"expired"`
	NetRevenue  float64       `json:"net_revenue"`  // expected, −Ψ
	DeficitCost float64       `json:"deficit_cost"` // big-M leasing cost
	Slices      []SliceStatus `json:"slices"`
}
