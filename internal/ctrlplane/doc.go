// Package ctrlplane implements the paper's hierarchical control plane
// (§2.2, Fig. 2) as a set of HTTP services:
//
//   - the Slice Manager, the web app tenants submit slice requests Φτ to
//     (§2.2.1); it renders each request into a TOSCA-like network-service
//     descriptor and forwards it to the orchestrator over REST;
//   - the E2E Orchestrator (the paper's OVNES), the only stateful entity:
//     it owns slice lifecycle state, per-slice forecasters, and the AC-RR
//     engine, and pushes per-domain programming southbound;
//   - three stateless domain controllers — RAN, transport (the paper's
//     Floodlight) and cloud (the paper's Heat/Keystone front) — that
//     translate orchestrator programming into data-plane operations over an
//     interface modelled on ETSI GS NFV-IFA 005.
//
// All services speak JSON over net/http and are exercised end-to-end over
// loopback in the package tests and the cmd/testbed experiment.
package ctrlplane
