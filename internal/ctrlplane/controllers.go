package ctrlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/dataplane"
)

// The domain controllers are stateless HTTP façades over the data plane
// (§2.2.3): every bit of slice state lives in the orchestrator, so a
// controller can be restarted at will — the paper's consistency argument.

// writeJSON is the single response helper all services share.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response
}

// httpError reports an error as {"error": "..."} with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// httpBodyError maps a decodeBody failure onto the right status: body-size
// overruns are 413 (the client must truncate, not fix), everything else is
// a plain 400.
func httpBodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	httpError(w, http.StatusBadRequest, err)
}

// maxBodyBytes caps every JSON request body: no control-plane document —
// slice request, NS descriptor, domain programming — legitimately
// approaches 1 MiB, and an unbounded read is an easy memory DoS.
const maxBodyBytes = 1 << 20

// decodeBody parses a JSON request body into v, strictly: bodies are
// length-capped via http.MaxBytesReader (the writer is needed so the
// connection is also closed on overrun), unknown fields are rejected, and
// trailing garbage after the document fails the request.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	defer r.Body.Close()
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("ctrlplane: bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("ctrlplane: bad request body: trailing data after JSON document")
	}
	return nil
}

// RANController translates radio share configs into per-BS scheduler
// programming (the paper's proprietary small-cell interface).
type RANController struct {
	dp *dataplane.Emulator
}

// NewRANController wraps the data plane.
func NewRANController(dp *dataplane.Emulator) *RANController { return &RANController{dp: dp} }

// Handler exposes the controller's REST surface.
func (c *RANController) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shares", func(w http.ResponseWriter, r *http.Request) {
		var cfg RadioConfig
		if err := decodeBody(w, r, &cfg); err != nil {
			httpBodyError(w, err)
			return
		}
		if len(cfg.ShareMHz) != len(c.dp.Radios) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("ctrlplane: %d shares for %d BSs", len(cfg.ShareMHz), len(c.dp.Radios)))
			return
		}
		applied := make([]int, 0, len(cfg.ShareMHz))
		for b, mhz := range cfg.ShareMHz {
			if err := c.dp.Radios[b].SetShare(cfg.Slice, mhz); err != nil {
				for _, bb := range applied {
					c.dp.Radios[bb].SetShare(cfg.Slice, 0) //nolint:errcheck // rollback
				}
				httpError(w, http.StatusConflict, err)
				return
			}
			applied = append(applied, b)
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "programmed"})
	})
	mux.HandleFunc("DELETE /shares/{slice}", func(w http.ResponseWriter, r *http.Request) {
		sl := r.PathValue("slice")
		for _, rs := range c.dp.Radios {
			rs.SetShare(sl, 0) //nolint:errcheck // removal never fails
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
	})
	return mux
}

// TransportController translates flow configs into fabric rules — the role
// Floodlight plays in the paper, driven by OpenFlow instructions.
type TransportController struct {
	dp *dataplane.Emulator
}

// NewTransportController wraps the data plane.
func NewTransportController(dp *dataplane.Emulator) *TransportController {
	return &TransportController{dp: dp}
}

// Handler exposes the controller's REST surface.
func (c *TransportController) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /flows", func(w http.ResponseWriter, r *http.Request) {
		var cfg FlowConfig
		if err := decodeBody(w, r, &cfg); err != nil {
			httpBodyError(w, err)
			return
		}
		rules := make([]dataplane.FlowRule, len(cfg.Rules))
		for i, fs := range cfg.Rules {
			rules[i] = dataplane.FlowRule{Slice: cfg.Slice, LinkIDs: fs.LinkIDs, RateMbps: fs.RateMbps}
		}
		if err := c.dp.Fabric.Install(cfg.Slice, rules); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "programmed"})
	})
	mux.HandleFunc("DELETE /flows/{slice}", func(w http.ResponseWriter, r *http.Request) {
		c.dp.Fabric.Remove(r.PathValue("slice"))
		writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
	})
	return mux
}

// CloudController translates stack configs into CU deployments — the Heat
// template + Keystone + CPU-pinning path of §2.2.3.
type CloudController struct {
	dp *dataplane.Emulator
}

// NewCloudController wraps the data plane.
func NewCloudController(dp *dataplane.Emulator) *CloudController { return &CloudController{dp: dp} }

// Handler exposes the controller's REST surface.
func (c *CloudController) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /stacks", func(w http.ResponseWriter, r *http.Request) {
		var cfg StackConfig
		if err := decodeBody(w, r, &cfg); err != nil {
			httpBodyError(w, err)
			return
		}
		if cfg.CU < 0 || cfg.CU >= len(c.dp.CUs) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("ctrlplane: no CU %d", cfg.CU))
			return
		}
		// CPU pinning: the pin covers the stack's worst case at the
		// reserved bitrate (§2.2.3).
		st := dataplane.Stack{
			Slice:       cfg.Slice,
			PinnedCores: cfg.BaselineCPU + cfg.CPUPerMbps*cfg.TotalMbps,
			BaselineCPU: cfg.BaselineCPU,
			CPUPerMbps:  cfg.CPUPerMbps,
		}
		// A slice migrating between CUs must not leave a stale stack; the
		// orchestrator pins CUs for a slice's lifetime, but remove
		// defensively from every other CU first.
		for i, cu := range c.dp.CUs {
			if i != cfg.CU {
				cu.Destroy(cfg.Slice)
			}
		}
		if err := c.dp.CUs[cfg.CU].Deploy(st); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deployed"})
	})
	mux.HandleFunc("DELETE /stacks/{slice}", func(w http.ResponseWriter, r *http.Request) {
		sl := r.PathValue("slice")
		for _, cu := range c.dp.CUs {
			cu.Destroy(sl)
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "destroyed"})
	})
	return mux
}
