package ctrlplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/reopt"
	"repro/internal/topology"
	"repro/internal/wal"
	"repro/internal/yield"
)

// swapLog is the durability seam between the engine/controller and the
// WAL: a RoundLog + StepLog whose backing store can be installed late. A
// standby replays the leader's log with no store of its own (appends made
// by the replay code paths drop here — they re-describe what is being
// replayed), then gains the real store at promotion. The leader uses it
// too, with the store set before the engine starts, so both roles run the
// identical logging plumbing.
type swapLog struct {
	mu sync.Mutex
	st *wal.Store
}

func (l *swapLog) set(st *wal.Store) {
	l.mu.Lock()
	l.st = st
	l.mu.Unlock()
}

func (l *swapLog) store() *wal.Store {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

func (l *swapLog) AppendRound(domain string, seq uint64, batch []admission.Request) error {
	if st := l.store(); st != nil {
		return st.AppendRound(domain, seq, batch)
	}
	return nil
}

func (l *swapLog) AppendForecasts(domain string, ups []admission.ForecastUpdate) error {
	if st := l.store(); st != nil {
		return st.AppendForecasts(domain, ups)
	}
	return nil
}

func (l *swapLog) AppendAdvance(domain string) error {
	if st := l.store(); st != nil {
		return st.AppendAdvance(domain)
	}
	return nil
}

func (l *swapLog) AppendTopology(domain string, events []topology.Event) error {
	if st := l.store(); st != nil {
		return st.AppendTopology(domain, events)
	}
	return nil
}

func (l *swapLog) AppendHandover(fromDomain, toDomain, name string) error {
	if st := l.store(); st != nil {
		return st.AppendHandover(fromDomain, toDomain, name)
	}
	return nil
}

func (l *swapLog) SyncRound() error {
	if st := l.store(); st != nil {
		return st.SyncRound()
	}
	return nil
}

func (l *swapLog) AppendSettle(domain string, epoch int, entries []yield.Entry) error {
	if st := l.store(); st != nil {
		return st.AppendSettle(domain, epoch, entries)
	}
	return nil
}

func (l *swapLog) AppendObserve(domain string, epoch int, alive []string, peaks []reopt.ObservedPeak) error {
	if st := l.store(); st != nil {
		return st.AppendObserve(domain, epoch, alive, peaks)
	}
	return nil
}

// Standby is a warm replica of a leader orchestrator: it tails the
// leader's WAL directory read-only and continuously replays every
// committed record through the same engine/controller code paths crash
// recovery uses — so its state is bit-identical to what a fresh recovery
// of that log would build, at every instant. When the leader dies,
// Promote turns the replica into a serving Orchestrator without replaying
// the log from scratch: it drains the tail, truncates the dead leader's
// uncommitted residue, completes a trailing half-step, and starts the
// engine.
//
// The replica's Executor is always nil while tailing (replay must not
// depend on workers having rejoined — same rule as crash recovery); the
// promoted orchestrator's executor arrives as a Promote argument, carrying
// the new leader's fencing epoch.
type Standby struct {
	cfg OrchestratorConfig
	o   *Orchestrator
	lg  *swapLog

	mu       sync.Mutex
	tail     *wal.Tailer
	replayer *wal.Replayer
	promoted bool
	rebuilds int
}

// NewStandby builds a standby over cfg.DataDir (required — it is the
// leader's directory). The config should otherwise equal the leader's;
// Executor is ignored until Promote.
func NewStandby(cfg OrchestratorConfig) (*Standby, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("ctrlplane: a standby needs the leader's DataDir")
	}
	cfg.Executor = nil
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	lg := &swapLog{} // no store while tailing: replay-path appends drop
	o, err := buildCore(cfg, lg)
	if err != nil {
		return nil, err
	}
	tail, err := wal.OpenTailer(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	replayer, err := wal.NewReplayer(wal.Target{Engine: o.eng, Controller: o.loop, Ledger: o.ledger})
	if err != nil {
		tail.Close()
		return nil, err
	}
	if err := replayer.Bootstrap(tail.Snapshot()); err != nil {
		tail.Close()
		return nil, err
	}
	return &Standby{cfg: cfg, o: o, lg: lg, tail: tail, replayer: replayer}, nil
}

// Poll ingests every record that has become visible since the last call
// and returns how many were applied or parked. A compaction gap (the
// leader snapshotted and removed segments the tail had not read — it can
// outrun a polling replica wholesale when a burst of rounds, a snapshot
// and its compaction all land inside one poll interval) is healed in
// place: the replica discards its state and re-bootstraps from the
// leader's newest snapshot, exactly what restarting the standby process
// would do. Other errors are permanent (corruption, replay divergence):
// the standby must be rebuilt.
func (s *Standby) Poll() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return 0, fmt.Errorf("ctrlplane: standby already promoted")
	}
	return s.pollLocked()
}

func (s *Standby) pollLocked() (int, error) {
	n := 0
	for {
		recs, err := s.tail.Poll()
		for _, pr := range recs {
			if ierr := s.replayer.Ingest(pr); ierr != nil {
				return n, ierr
			}
			n++
		}
		if !errors.Is(err, wal.ErrTailGap) {
			return n, err
		}
		stuck := s.tail.NextLSN()
		if rerr := s.rebuildLocked(); rerr != nil {
			return n, fmt.Errorf("ctrlplane: standby re-bootstrap after compaction gap: %w", rerr)
		}
		if s.tail.NextLSN() <= stuck {
			// No newer snapshot is readable (compaction without a usable
			// snapshot would be a writer bug, or every snapshot is torn):
			// rebuilding again would land on the same gap forever.
			return n, err
		}
		n = 0 // records applied to the discarded replica don't count
	}
}

// rebuildLocked discards the replica's engine/controller/ledger state and
// re-bootstraps a fresh one from the newest snapshot in the leader's
// directory, resuming the tail at its LSN.
func (s *Standby) rebuildLocked() error {
	s.tail.Close()
	o, err := buildCore(s.cfg, s.lg)
	if err != nil {
		return err
	}
	tail, err := wal.OpenTailer(s.cfg.DataDir)
	if err != nil {
		return err
	}
	replayer, err := wal.NewReplayer(wal.Target{Engine: o.eng, Controller: o.loop, Ledger: o.ledger})
	if err != nil {
		tail.Close()
		return err
	}
	if err := replayer.Bootstrap(tail.Snapshot()); err != nil {
		tail.Close()
		return err
	}
	s.o, s.tail, s.replayer = o, tail, replayer
	s.rebuilds++
	return nil
}

// Rebuilds reports how many times the replica healed a compaction gap by
// re-bootstrapping from a snapshot (0 when it tailed the whole log live).
func (s *Standby) Rebuilds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuilds
}

// Run polls on a cadence until ctx ends, a permanent error occurs, or the
// standby is promoted (which returns nil).
func (s *Standby) Run(ctx context.Context, every time.Duration) error {
	if every <= 0 {
		every = 50 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
		s.mu.Lock()
		if s.promoted {
			s.mu.Unlock()
			return nil
		}
		_, err := s.pollLocked()
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("ctrlplane: standby tail: %w", err)
		}
	}
}

// Progress reports how far the replica has replayed: the next LSN it
// expects and the rounds applied so far.
func (s *Standby) Progress() (lsn uint64, rounds int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayer.SeenLSN(), s.replayer.Rounds()
}

// Promote turns the replica into the serving orchestrator. Call it only
// after taking the leader lease: the old leader must be dead or fenced
// (exec should carry the new lease's epoch, fence its Check).
//
// The sequence mirrors crash recovery exactly, minus the bulk replay the
// standby already did: drain the last visible records, open the directory
// for writing (repairing any torn tail), feed the replayer whatever the
// tail had not seen, truncate the dead leader's uncommitted step prefix,
// complete a trailing round-without-advance (re-logged), rebuild the REST
// registry, install the executor, start the engine. The returned
// Orchestrator is bit-identical to one that had served the whole log
// uninterrupted.
func (s *Standby) Promote(exec admission.Executor, fence func() error) (*Orchestrator, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return nil, fmt.Errorf("ctrlplane: standby already promoted")
	}
	// Final drain: the writer is gone, so one Poll sees everything that
	// will ever be visible.
	if _, err := s.pollLocked(); err != nil {
		return nil, fmt.Errorf("ctrlplane: promote: draining tail: %w", err)
	}
	s.tail.Close()

	wstore, recovered, err := wal.Open(wal.Options{Dir: s.cfg.DataDir, Fence: fence})
	if err != nil {
		return nil, fmt.Errorf("ctrlplane: promote: %w", err)
	}
	fail := func(e error) (*Orchestrator, error) {
		wstore.Close()
		return nil, e
	}
	// Ingest whatever Open sees that the tail had not delivered (normally
	// nothing; Ingest skips below the replayer's high-water mark). Under
	// BeginRecovery so replay-path appends stay suppressed even though the
	// log is now installed.
	s.lg.set(wstore)
	wstore.BeginRecovery()
	for _, pr := range recovered.Records {
		if err := s.replayer.Ingest(pr); err != nil {
			wstore.EndRecovery()
			return fail(fmt.Errorf("ctrlplane: promote: %w", err))
		}
	}
	wstore.EndRecovery()
	rep, err := s.replayer.Finalize(wstore)
	if err != nil {
		return fail(fmt.Errorf("ctrlplane: promote: %w", err))
	}

	o := s.o
	o.wal = wstore
	o.recovery = rep
	o.epoch = o.loop.Epoch()
	if err := o.adoptCommitted(); err != nil {
		return fail(err)
	}
	if exec != nil {
		if err := o.eng.SetExecutor(admission.DefaultDomain, exec); err != nil {
			return fail(err)
		}
	}
	if err := o.eng.Start(); err != nil {
		return fail(err)
	}
	s.promoted = true
	return o, nil
}

// Close releases the standby's tail without promoting. No-op after
// Promote (the orchestrator owns the resources then).
func (s *Standby) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return nil
	}
	s.promoted = true // poison further Poll/Promote
	return s.tail.Close()
}

// Abort simulates a crash for tests: the engine stops without a drain and
// the WAL drops its unsynced buffer — exactly what SIGKILL leaves behind.
// The orchestrator is unusable afterwards.
func (o *Orchestrator) Abort() {
	o.eng.Stop()
	if o.wal != nil {
		o.wal.Abort()
	}
}
