package ctrlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/topology"
)

// postJSON posts v to the orchestrator path and returns the response.
func (s *stack) postJSON(t *testing.T, path string, v interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.orchSrv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTopologyEventsThroughREST drives an outage and a recovery through the
// northbound API: a committed slice must survive a full BS outage (the
// deficit relaxation keeps it placed), the injected events must read back
// from GET /topology, and an out-of-range event must be refused without
// touching engine state.
func TestTopologyEventsThroughREST(t *testing.T) {
	s := newStack(t, "direct")
	if resp := s.submit(t, urllcReq("u1")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	rep := s.epoch(t)
	if len(rep.Accepted) != 1 {
		t.Fatalf("accepted = %v", rep.Accepted)
	}

	resp := s.postJSON(t, "/topology", []topology.Event{topology.BSOutage(0, 0)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outage injection: %s", resp.Status)
	}
	resp.Body.Close()

	// The next epoch re-solves against the degraded network; the committed
	// slice must stay active rather than be evicted.
	rep = s.epoch(t)
	active := false
	for _, st := range rep.Slices {
		if st.Name == "u1" && st.State == "active" {
			active = true
		}
	}
	if !active {
		t.Fatalf("slice u1 not active after outage: %+v", rep.Slices)
	}

	resp = s.postJSON(t, "/topology", []topology.Event{topology.BSRecover(0, 0)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery injection: %s", resp.Status)
	}
	resp.Body.Close()
	s.epoch(t)

	getResp, err := http.Get(s.orchSrv.URL + "/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var events []topology.Event
	if err := json.NewDecoder(getResp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("GET /topology returned %d events, want 2: %+v", len(events), events)
	}
	if events[1].Factor != 1 {
		t.Fatalf("last event is not the recovery: %+v", events[1])
	}

	// Out-of-range index: refused, and the applied stream is unchanged.
	resp = s.postJSON(t, "/topology", []topology.Event{topology.BSOutage(0, 99)})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad event index: got %s, want 422", resp.Status)
	}
	resp.Body.Close()
	getResp, err = http.Get(s.orchSrv.URL + "/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	events = nil
	if err := json.NewDecoder(getResp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("rejected event leaked into the stream: %+v", events)
	}
}

// TestHandoverEndpointRejects covers the northbound error paths: the
// single-domain orchestrator cannot hand a slice to a domain it doesn't
// host, and malformed bodies are refused at the decode layer. (Successful
// multi-domain handover is exercised end to end in internal/wal.)
func TestHandoverEndpointRejects(t *testing.T) {
	s := newStack(t, "direct")
	resp := s.postJSON(t, "/handover", HandoverRequest{To: "b", Name: "u1"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("handover to unknown domain: got %s, want 409", resp.Status)
	}
	resp.Body.Close()

	raw, err := http.Post(s.orchSrv.URL+"/handover", "application/json",
		bytes.NewReader([]byte(`{"to": 7}`)))
	if err != nil {
		t.Fatal(err)
	}
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: got %s, want 400", raw.Status)
	}
	raw.Body.Close()
}
