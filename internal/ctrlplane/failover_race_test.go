package ctrlplane

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/topology"
)

// The failover stress gate, built for -race: tenants register concurrently
// with the epoch loop, topology flips land mid-run, and a standby tails
// the leader's WAL on a hot 1ms loop while all of it races. The leader is
// then hard-killed and the standby promoted in place. No byte-comparison
// here — the reference-equality pin is TestFailoverMatchesUninterrupted —
// this test asserts decision conservation across the crash: nothing
// decided twice, nothing both accepted and rejected, expiries only of
// accepted slices, and the promoted standby adopting exactly the
// accepted-and-still-alive set.

// raceLedger accumulates decision outcomes across both reigns.
type raceLedger struct {
	accepted map[string]int
	rejected map[string]int
	expired  map[string]int
}

func newRaceLedger() *raceLedger {
	return &raceLedger{accepted: map[string]int{}, rejected: map[string]int{}, expired: map[string]int{}}
}

func (l *raceLedger) absorb(rep *EpochReport) {
	for _, n := range rep.Accepted {
		l.accepted[n]++
	}
	for _, n := range rep.Rejected {
		l.rejected[n]++
	}
	for _, n := range rep.Expired {
		l.expired[n]++
	}
}

// raceEpochs drives epochs on o while submitters and a topology flipper
// race it, then runs one quiet epoch so every registration made during the
// storm is decided before the caller moves on. Returns the names
// registered.
func raceEpochs(t *testing.T, o *Orchestrator, store *monitor.Store, ledger *raceLedger, tag string, epochs int) []string {
	t.Helper()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		names []string
	)
	// Two tenant goroutines racing the epoch loop with small unique slices
	// (tiny rates so capacity rarely pushes back; durations short enough
	// that some expire inside the run).
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				typ := "uRLLC"
				if i%2 == 1 {
					typ = "eMBB"
				}
				req := SliceRequest{
					Name: fmt.Sprintf("%s-t%d-s%d", tag, g, i), Type: typ,
					RateMbps: 1 + float64(g), DurationEpochs: 3 + i%3, PenaltyFactor: 1,
				}
				if err := o.Register(req); err != nil {
					t.Errorf("register %s: %v", req.Name, err)
					return
				}
				mu.Lock()
				names = append(names, req.Name)
				mu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Topology flipper: degrade and restore one BS mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			factor := 0.6
			if i%2 == 1 {
				factor = 1.0
			}
			if err := o.ApplyTopology([]topology.Event{{Kind: topology.EventBS, Index: 1, Factor: factor}}); err != nil {
				t.Errorf("topology flip: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	run := func() {
		rep, err := o.RunEpoch()
		if err != nil {
			t.Fatalf("%s epoch: %v", tag, err)
		}
		ledger.absorb(rep)
		// Feed the active slices' traffic so settlement and forecasting
		// have something to chew on.
		for _, s := range rep.Slices {
			if s.State != "active" {
				continue
			}
			for b := 0; b < topology.Testbed().NumBS(); b++ {
				store.Add(monitor.Sample{
					Slice: s.Name, Metric: monitor.LoadMetric, Element: monitor.BSElement(b),
					Epoch: rep.Epoch, Theta: 0, Value: failoverSample(s.Name, b, rep.Epoch, 0),
				})
			}
		}
	}
	for e := 0; e < epochs; e++ {
		run()
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	run() // quiet epoch: decide the stragglers the storm registered late
	return names
}

func TestFailoverStressRace(t *testing.T) {
	dir := t.TempDir()
	ledger := newRaceLedger()

	ranL, tnL, cloudL := newSouthbound(t)
	storeL := monitor.NewStore(0)
	leader, err := NewOrchestrator(OrchestratorConfig{
		Net: topology.Testbed(), Algorithm: "benders", Store: storeL,
		RANAddr: ranL, TransportAddr: tnL, CloudAddr: cloudL,
		DataDir: dir, SnapshotEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	ranS, tnS, cloudS := newSouthbound(t)
	storeS := monitor.NewStore(0)
	sb, err := NewStandby(OrchestratorConfig{
		Net: topology.Testbed(), Algorithm: "benders", Store: storeS,
		RANAddr: ranS, TransportAddr: tnS, CloudAddr: cloudS,
		DataDir: dir, SnapshotEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tailErr := make(chan error, 1)
	go func() { tailErr <- sb.Run(ctx, time.Millisecond) }() // hot tail racing the leader's appends

	reg1 := raceEpochs(t, leader, storeL, ledger, "p1", 5)
	if t.Failed() {
		t.Fatal("storm goroutine failed; see errors above")
	}

	// Everything registered during the leader's reign is decided by now.
	alive := map[string]bool{}
	for n := range ledger.accepted {
		if ledger.expired[n] == 0 {
			alive[n] = true
		}
	}
	for _, n := range reg1 {
		if ledger.accepted[n]+ledger.rejected[n] == 0 {
			t.Fatalf("slice %s registered under the leader but never decided", n)
		}
	}

	// Hard kill mid-run, promote the hot-tailing standby in place.
	leader.Abort()
	orch2, err := sb.Promote(nil, nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	t.Cleanup(func() { orch2.Close() }) //nolint:errcheck // engine teardown
	if err := <-tailErr; err != nil {
		t.Fatalf("standby tail loop: %v", err)
	}

	// The promoted standby adopts exactly the accepted-and-unexpired set;
	// nothing pending survives a crash (their acks never went out).
	adopted := map[string]bool{}
	for _, s := range orch2.Statuses() {
		switch s.State {
		case "active":
			adopted[s.Name] = true
		case "pending":
			t.Fatalf("slice %s pending after promotion; undecided intake must die with the leader", s.Name)
		}
	}
	for n := range alive {
		if !adopted[n] {
			t.Fatalf("accepted slice %s lost in failover (adopted: %v)", n, adopted)
		}
	}
	for n := range adopted {
		if !alive[n] {
			t.Fatalf("slice %s materialized out of nowhere after failover", n)
		}
	}

	// Second reign: the same storm against the promoted standby.
	raceEpochs(t, orch2, storeS, ledger, "p2", 4)
	if t.Failed() {
		t.Fatal("storm goroutine failed; see errors above")
	}

	// Conservation across the crash: one decision per slice, ever.
	for n, c := range ledger.accepted {
		if c > 1 {
			t.Errorf("slice %s accepted %d times", n, c)
		}
		if ledger.rejected[n] > 0 {
			t.Errorf("slice %s both accepted and rejected", n)
		}
	}
	for n, c := range ledger.rejected {
		if c > 1 {
			t.Errorf("slice %s rejected %d times", n, c)
		}
	}
	for n := range ledger.expired {
		if ledger.accepted[n] == 0 {
			t.Errorf("slice %s expired without ever being accepted", n)
		}
		if ledger.expired[n] > 1 {
			t.Errorf("slice %s expired %d times", n, ledger.expired[n])
		}
	}
}
