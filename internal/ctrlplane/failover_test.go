package ctrlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/dataplane"
	"repro/internal/monitor"
	"repro/internal/obslog"
	"repro/internal/topology"
)

// The replication gate. A leader orchestrator (with a WAL, a lease and a
// worker pool) serves the first epochs of a run while a standby tails its
// log; the leader is then hard-killed mid-run, the standby takes the
// lapsed lease under the next fencing epoch, promotes with a fresh worker
// pool, and serves the rest. The full decision trace and the /yield and
// /slices payloads must equal an uninterrupted single-process run's bytes
// exactly — failover is invisible in the decision record.

// newSouthbound spins up a fresh controller trio over its own emulated
// data plane, so each orchestrator programs its own southbound.
func newSouthbound(t *testing.T) (ran, tn, cloud string) {
	t.Helper()
	dp := dataplane.NewEmulator(topology.Testbed())
	for _, s := range []struct {
		h    http.Handler
		addr *string
	}{
		{NewRANController(dp).Handler(), &ran},
		{NewTransportController(dp).Handler(), &tn},
		{NewCloudController(dp).Handler(), &cloud},
	} {
		srv := httptest.NewServer(s.h)
		t.Cleanup(srv.Close)
		*s.addr = srv.URL
	}
	return ran, tn, cloud
}

// shiftClock is a real clock with a controllable forward offset: lease
// expiry in the failover tests is a deterministic advance, not a sleep.
type shiftClock struct {
	mu  sync.Mutex
	off time.Duration
}

func (c *shiftClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Add(c.off)
}

func (c *shiftClock) advance(d time.Duration) {
	c.mu.Lock()
	c.off += d
	c.mu.Unlock()
}

// failoverSample is the deterministic data-plane traffic both runs play.
func failoverSample(name string, b, epoch, theta int) float64 {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	return 8 + 4*math.Sin(float64(h%17)+0.9*float64(epoch)+0.35*float64(theta)+0.5*float64(b))
}

// failoverArrivals is the workload: all four slices outlive the run, so
// the (deliberately non-durable) terminated-slice registry stays empty and
// /slices is comparable byte-for-byte.
func failoverArrivals() map[int][]SliceRequest {
	return map[int][]SliceRequest{
		0: {
			{Name: "u1", Type: "uRLLC", DurationEpochs: 10, PenaltyFactor: 1},
			{Name: "u2", Type: "eMBB", DurationEpochs: 10, PenaltyFactor: 1},
		},
		1: {{Name: "u3", Type: "uRLLC", RateMbps: 5, DurationEpochs: 10, PenaltyFactor: 1}},
		4: {{Name: "u4", Type: "eMBB", RateMbps: 8, DurationEpochs: 10, PenaltyFactor: 1}},
	}
}

// failoverWorld is the durable outside world: tenants and the data plane,
// which survive the control-plane crash.
type failoverWorld struct {
	nbs    int
	active []string
	last   []monitor.Sample
}

// runEpoch plays epoch e against the currently serving orchestrator and
// returns the epoch report's exact bytes as the decision fingerprint.
func (w *failoverWorld) runEpoch(t *testing.T, o *Orchestrator, store *monitor.Store, e int) string {
	t.Helper()
	for _, req := range failoverArrivals()[e] {
		if err := o.Register(req); err != nil {
			t.Fatalf("epoch %d: register %s: %v", e, req.Name, err)
		}
	}
	rep, err := o.RunEpoch()
	if err != nil {
		t.Fatalf("epoch %d: %v", e, err)
	}
	if len(rep.Rejected) > 0 || len(rep.Expired) > 0 {
		// The workload is sized to admit everything and expire nothing:
		// terminated slices live only in serving memory, so a reject or
		// expiry would make the /slices comparison vacuous.
		t.Fatalf("epoch %d: workload no longer all-admitted no-expiry: %+v", e, rep)
	}
	w.active = append(w.active, rep.Accepted...)
	sort.Strings(w.active)
	line, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}

	// Data plane: this epoch's measured traffic, remembered for a crash
	// hand-off (the monitoring pipeline re-delivers what a dead store lost).
	w.last = w.last[:0]
	for _, name := range w.active {
		for b := 0; b < w.nbs; b++ {
			for theta := 0; theta < 6; theta++ {
				sm := monitor.Sample{
					Slice: name, Metric: monitor.LoadMetric, Element: monitor.BSElement(b),
					Epoch: e, Theta: theta, Value: failoverSample(name, b, e, theta),
				}
				store.Add(sm)
				w.last = append(w.last, sm)
			}
		}
	}
	return string(line)
}

func (w *failoverWorld) reconnect(store *monitor.Store) {
	for _, sm := range w.last {
		store.Add(sm)
	}
}

// getBytes serves one GET through the orchestrator's real handler and
// returns the exact response body.
func getBytes(t *testing.T, o *Orchestrator, path string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	o.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d (%s)", path, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}

// startWorkers attaches n loopback workers to a coordinator and registers
// the default domain, returning a stop for all of them.
func startWorkers(t *testing.T, coord *cluster.Coordinator, n int, tag string) (stop func()) {
	t.Helper()
	if err := coord.RegisterDomain("", admission.DomainConfig{Net: topology.Testbed(), Algorithm: "benders"}); err != nil {
		t.Fatal(err)
	}
	stops := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		stops = append(stops, cluster.StartLoopbackWorker(coord, fmt.Sprintf("%s-w%d", tag, i), obslog.Nop()))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.WaitMembers(ctx, n); err != nil {
		t.Fatal(err)
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

const failoverEpochs = 6

// TestFailoverMatchesUninterrupted is the PR's acceptance gate, at one and
// two workers: SIGKILL-equivalent the leader between epochs, let the
// standby take the lease and promote, and require the concatenated epoch
// reports plus the final /yield and /slices bytes to equal the
// uninterrupted single-process reference exactly.
func TestFailoverMatchesUninterrupted(t *testing.T) {
	for _, workers := range []int{1, 2} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			t.Parallel()

			// Uninterrupted reference: one process, no WAL, no cluster.
			refStore := monitor.NewStore(0)
			ran, tn, cloud := newSouthbound(t)
			ref, err := NewOrchestrator(OrchestratorConfig{
				Net: topology.Testbed(), Algorithm: "benders", Store: refStore,
				RANAddr: ran, TransportAddr: tn, CloudAddr: cloud,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ref.Close() }) //nolint:errcheck // engine teardown
			refWorld := &failoverWorld{nbs: topology.Testbed().NumBS()}
			var refLines []string
			for e := 0; e < failoverEpochs; e++ {
				refLines = append(refLines, refWorld.runEpoch(t, ref, refStore, e))
			}
			refYield := getBytes(t, ref, "/yield")
			refSlices := getBytes(t, ref, "/slices")

			// Replicated run: leader under lease epoch 1 with its own worker
			// pool, standby tailing the same directory.
			dir := t.TempDir()
			clk := &shiftClock{}
			leaseCfg := cluster.LeaseConfig{Path: filepath.Join(dir, "LEASE"), TTL: time.Second, Now: clk.now}
			leaseCfg.Holder = "leader"
			lease1, err := cluster.Acquire(leaseCfg)
			if err != nil {
				t.Fatal(err)
			}
			coord1 := cluster.NewCoordinator(cluster.CoordinatorOptions{Log: obslog.Nop(), Epoch: lease1.Epoch()})
			stopW1 := startWorkers(t, coord1, workers, "pool1")

			ranL, tnL, cloudL := newSouthbound(t)
			storeL := monitor.NewStore(0)
			leader, err := NewOrchestrator(OrchestratorConfig{
				Net: topology.Testbed(), Algorithm: "benders", Store: storeL,
				RANAddr: ranL, TransportAddr: tnL, CloudAddr: cloudL,
				DataDir: dir, SnapshotEvery: 2,
				Executor: coord1, WALFence: lease1.Check,
			})
			if err != nil {
				t.Fatal(err)
			}

			ranS, tnS, cloudS := newSouthbound(t)
			storeS := monitor.NewStore(0)
			sb, err := NewStandby(OrchestratorConfig{
				Net: topology.Testbed(), Algorithm: "benders", Store: storeS,
				RANAddr: ranS, TransportAddr: tnS, CloudAddr: cloudS,
				DataDir: dir, SnapshotEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}

			kill := failoverEpochs / 2
			w := &failoverWorld{nbs: topology.Testbed().NumBS()}
			var lines []string
			for e := 0; e < kill; e++ {
				lines = append(lines, w.runEpoch(t, leader, storeL, e))
				if _, err := sb.Poll(); err != nil {
					t.Fatalf("standby tail after epoch %d: %v", e, err)
				}
			}

			// Hard kill: the leader's unsynced WAL buffer is lost, its
			// coordinator and workers die with it.
			leader.Abort()
			coord1.Close()
			stopW1()

			// The lease lapses (deterministically — clock, not sleep); the
			// standby takes it under the next fencing epoch and promotes
			// with a brand-new worker pool.
			clk.advance(3 * time.Second)
			leaseCfg.Holder = "standby"
			lease2, err := cluster.Acquire(leaseCfg)
			if err != nil {
				t.Fatal(err)
			}
			if lease2.Epoch() != lease1.Epoch()+1 {
				t.Fatalf("takeover lease epoch %d, want %d", lease2.Epoch(), lease1.Epoch()+1)
			}
			coord2 := cluster.NewCoordinator(cluster.CoordinatorOptions{Log: obslog.Nop(), Epoch: lease2.Epoch()})
			t.Cleanup(func() { coord2.Close() })
			stopW2 := startWorkers(t, coord2, workers, "pool2")
			t.Cleanup(stopW2)

			orch2, err := sb.Promote(coord2, lease2.Check)
			if err != nil {
				t.Fatalf("promote: %v", err)
			}
			t.Cleanup(func() { orch2.Close() }) //nolint:errcheck // engine teardown
			if rep := orch2.Recovery(); rep == nil || rep.Rounds != kill {
				t.Fatalf("promotion replayed %+v, want %d rounds", orch2.Recovery(), kill)
			}
			w.reconnect(storeS)

			for e := kill; e < failoverEpochs; e++ {
				lines = append(lines, w.runEpoch(t, orch2, storeS, e))
			}

			for i := range refLines {
				if i >= len(lines) || refLines[i] != lines[i] {
					got := "<missing>"
					if i < len(lines) {
						got = lines[i]
					}
					t.Fatalf("decision trace diverged at epoch %d:\n  reference: %s\n  failover:  %s", i, refLines[i], got)
				}
			}
			if got := getBytes(t, orch2, "/yield"); got != refYield {
				t.Fatalf("/yield diverged:\nreference: %s\nfailover:  %s", refYield, got)
			}
			if got := getBytes(t, orch2, "/slices"); got != refSlices {
				t.Fatalf("/slices diverged:\nreference: %s\nfailover:  %s", refSlices, got)
			}
		})
	}
}

// TestStandbyHealsCompactionGap pins the self-heal path: a standby that
// opens the leader's directory before anything is written tails from LSN
// 0 — and if the leader then runs a burst of epochs, snapshots, and
// compacts the early segments before the replica's next poll (a fast
// solver makes that window real), the tail gaps behind compaction. The
// standby must re-bootstrap from the leader's newest snapshot in place
// and still promote to a byte-identical orchestrator.
func TestStandbyHealsCompactionGap(t *testing.T) {
	// Uninterrupted reference.
	refStore := monitor.NewStore(0)
	ran, tn, cloud := newSouthbound(t)
	ref, err := NewOrchestrator(OrchestratorConfig{
		Net: topology.Testbed(), Algorithm: "benders", Store: refStore,
		RANAddr: ran, TransportAddr: tn, CloudAddr: cloud,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() }) //nolint:errcheck // engine teardown
	refWorld := &failoverWorld{nbs: topology.Testbed().NumBS()}
	var refLines []string
	for e := 0; e < failoverEpochs; e++ {
		refLines = append(refLines, refWorld.runEpoch(t, ref, refStore, e))
	}
	refYield := getBytes(t, ref, "/yield")
	refSlices := getBytes(t, ref, "/slices")

	// Leader with a WAL; the standby opens the directory first, so its
	// tail starts at LSN 0 with no bootstrap snapshot.
	dir := t.TempDir()
	ranS, tnS, cloudS := newSouthbound(t)
	storeS := monitor.NewStore(0)
	sb, err := NewStandby(OrchestratorConfig{
		Net: topology.Testbed(), Algorithm: "benders", Store: storeS,
		RANAddr: ranS, TransportAddr: tnS, CloudAddr: cloudS,
		DataDir: dir, SnapshotEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	ranL, tnL, cloudL := newSouthbound(t)
	storeL := monitor.NewStore(0)
	leader, err := NewOrchestrator(OrchestratorConfig{
		Net: topology.Testbed(), Algorithm: "benders", Store: storeL,
		RANAddr: ranL, TransportAddr: tnL, CloudAddr: cloudL,
		DataDir: dir, SnapshotEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The whole pre-kill run happens with the standby never polling: by
	// the kill point the leader has snapshotted (SnapshotEvery=2, 3
	// epochs) and compacted the segments the standby's tail still needs.
	kill := failoverEpochs / 2
	w := &failoverWorld{nbs: topology.Testbed().NumBS()}
	var lines []string
	for e := 0; e < kill; e++ {
		lines = append(lines, w.runEpoch(t, leader, storeL, e))
	}
	leader.Abort()

	// The next poll hits the gap and must heal it, not die on it.
	if _, err := sb.Poll(); err != nil {
		t.Fatalf("standby poll across compaction gap: %v", err)
	}
	if got := sb.Rebuilds(); got != 1 {
		t.Fatalf("standby rebuilds = %d, want exactly 1 (the test exists to exercise the heal)", got)
	}

	orch2, err := sb.Promote(nil, nil)
	if err != nil {
		t.Fatalf("promote after heal: %v", err)
	}
	t.Cleanup(func() { orch2.Close() }) //nolint:errcheck // engine teardown
	w.reconnect(storeS)

	for e := kill; e < failoverEpochs; e++ {
		lines = append(lines, w.runEpoch(t, orch2, storeS, e))
	}
	for i := range refLines {
		if i >= len(lines) || refLines[i] != lines[i] {
			got := "<missing>"
			if i < len(lines) {
				got = lines[i]
			}
			t.Fatalf("decision trace diverged at epoch %d:\n  reference: %s\n  healed:    %s", i, refLines[i], got)
		}
	}
	if got := getBytes(t, orch2, "/yield"); got != refYield {
		t.Fatalf("/yield diverged:\nreference: %s\nhealed:    %s", refYield, got)
	}
	if got := getBytes(t, orch2, "/slices"); got != refSlices {
		t.Fatalf("/slices diverged:\nreference: %s\nhealed:    %s", refSlices, got)
	}
}
