package admission

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// prefilter is the capacity-headroom fast path: a few float comparisons
// that reject structurally infeasible requests at Submit time, before they
// cost a queue slot, a batch slot, or an LP solve.
//
// The contract is strict one-sidedness: the prefilter only rejects requests
// the solver itself would reject, so the engine's decisions remain
// identical to a no-prefilter serial replay (pinned by the equality tests).
// Two families of checks satisfy that contract:
//
//   - Delay connectivity, always on. Admission requires one CU serving
//     every BS (constraint (6)); items only exist for paths within the
//     request's delay bound (constraint (7) is applied by prefiltering in
//     buildModel). A request whose delay bound leaves no CU with a feasible
//     path from every BS can never have Accepted = true, whatever the
//     load: the empty-sum side of the same-CU chain rows forces x = 0.
//
//   - Capacity floors, armed only when BigM == 0 (hard capacity). Each
//     admitted slice must reserve at least its demand floor per BS — λ̂
//     when overbooking, Λ otherwise (constraints (8)/(9)) — so a request
//     whose floor exceeds a BS's total radio capacity, every delay-feasible
//     path's bottleneck, or every CU's total CPU pool is infeasible even on
//     an empty network. Under the big-M relaxation those constraints are
//     soft (the solver could, in principle, lease deficit capacity), so the
//     checks stay off and the LP keeps the last word.
type prefilter struct {
	net      *topology.Network
	paths    [][][]topology.Path
	overbook bool
	hard     bool // BigM == 0: capacity constraints are hard

	maxCUCores float64 // largest CPU pool over all CUs
}

func newPrefilter(dc DomainConfig, paths [][][]topology.Path) prefilter {
	pf := prefilter{
		net:      dc.Net,
		paths:    paths,
		overbook: dc.overbook(),
		hard:     dc.BigM == 0,
	}
	for _, cu := range dc.Net.CUs {
		pf.maxCUCores = math.Max(pf.maxCUCores, cu.CPUCores)
	}
	return pf
}

// reject returns a non-empty reason when the request is structurally
// infeasible, "" when it must go to the solver.
func (pf prefilter) reject(req Request) string {
	bound := req.SLA.DelayBound
	// Demand floor per BS: the least any admitted slice must reserve.
	demand := req.SLA.RateMbps
	if pf.overbook && req.LambdaHat > 0 {
		demand = math.Min(req.LambdaHat, demand)
	}

	if !pf.feasibleCU(bound, 0) {
		return "no delay-feasible CU reaches every BS"
	}
	if !pf.hard {
		return ""
	}
	for b, bs := range pf.net.BSs {
		if demand > bs.MaxBitrate()+1e-9 {
			return fmt.Sprintf("demand %.1f Mb/s exceeds BS %d radio capacity %.1f Mb/s",
				demand, b, bs.MaxBitrate())
		}
	}
	if !pf.feasibleCU(bound, demand) {
		return fmt.Sprintf("no delay-feasible CU with %.1f Mb/s of path headroom from every BS", demand)
	}
	cores := req.SLA.Compute.Cores(demand * float64(pf.net.NumBS()))
	if cores > pf.maxCUCores+1e-9 {
		return fmt.Sprintf("compute floor %.1f cores exceeds the largest CU pool %.1f", cores, pf.maxCUCores)
	}
	return ""
}

// feasibleCU reports whether some CU has, from every BS, a path within the
// delay bound whose bottleneck carries demand (demand 0 = pure delay
// check, the feasibleCU[t][c] condition of buildModel).
func (pf prefilter) feasibleCU(bound, demand float64) bool {
	for c := range pf.net.CUs {
		ok := true
		for b := range pf.net.BSs {
			found := false
			for _, p := range pf.paths[b][c] {
				if p.Delay <= bound && p.CapMbps+1e-9 >= demand {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
