package admission

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/slice"
	"repro/internal/topology"
)

// TestConcurrentStressConservation hammers a sharded engine from many
// goroutines under aggressive timer/size flushing and checks the invariant
// the serving layer lives by: every submitted request gets exactly one
// decision — none lost, none duplicated, every counter conserved. Run under
// -race (make test-race / CI) this is also the engine's data-race gate.
func TestConcurrentStressConservation(t *testing.T) {
	const (
		domains    = 4
		goroutines = 16
		perG       = 16
	)
	e := New(Config{
		Shards:     4,
		QueueDepth: 64,
		TenantCap:  24,
		MaxBatch:   4,
		FlushEvery: 500 * time.Microsecond,
	})
	for d := 0; d < domains; d++ {
		if err := e.AddDomain(fmt.Sprintf("op%d", d), DomainConfig{Net: topology.Testbed(), Algorithm: "direct"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	type sub struct {
		name string
		tk   *Ticket
	}
	var (
		mu      sync.Mutex
		tickets []sub
		shed    int
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < perG; r++ {
				name := fmt.Sprintf("g%d-r%d", g, r)
				tk, err := e.Submit(Request{
					Domain: fmt.Sprintf("op%d", g%domains),
					Tenant: fmt.Sprintf("tenant%d", g%6),
					Name:   name,
					SLA:    slice.SLA{Template: slice.Table1(slice.EMBB), Duration: 64}.WithPenaltyFactor(1),
				})
				mu.Lock()
				if err != nil {
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrTenantCap) {
						t.Errorf("submit %s: %v", name, err)
					}
					shed++
				} else {
					tickets = append(tickets, sub{name: name, tk: tk})
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("unexpected submit errors")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Exactly one decision per accepted request, none lost.
	seen := map[string]bool{}
	var admitted, rejected uint64
	for _, s := range tickets {
		out, ok := s.tk.Outcome()
		if !ok {
			t.Fatalf("ticket %s undecided after drain (err=%v)", s.name, s.tk.Err())
		}
		if out.Name != s.name {
			t.Fatalf("ticket %s carries outcome for %s", s.name, out.Name)
		}
		if seen[s.name] {
			t.Fatalf("duplicate decision for %s", s.name)
		}
		seen[s.name] = true
		if out.Admitted {
			admitted++
		} else {
			rejected++
		}
	}
	if len(seen) != len(tickets) || len(tickets)+shed != goroutines*perG {
		t.Fatalf("decisions=%d shed=%d, want total %d", len(seen), shed, goroutines*perG)
	}

	// Counter conservation against the metrics snapshot.
	m := e.Metrics()
	if m.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", m.QueueDepth)
	}
	if m.Submitted != uint64(goroutines*perG) {
		t.Fatalf("submitted %d, want %d", m.Submitted, goroutines*perG)
	}
	if m.Admitted != admitted || m.Rejected+m.FastRejected != rejected || m.Shed != uint64(shed) || m.Failed != 0 {
		t.Fatalf("counters %+v vs observed admitted=%d rejected=%d shed=%d", m, admitted, rejected, shed)
	}
	if m.Admitted+m.Rejected+m.FastRejected+m.Shed != m.Submitted {
		t.Fatalf("conservation broken: %+v", m)
	}
}

// TestShardCountInvariance drives identical wave-synchronized workloads —
// submissions racing within each wave — through engines at 1, 2 and 5
// shards and demands bit-identical per-round decisions: the canonical round
// order plus per-domain serialization must erase both submission
// interleaving and shard topology.
func TestShardCountInvariance(t *testing.T) {
	workload := func(shards int) string {
		const domains = 3
		e := New(Config{Shards: shards, QueueDepth: 256})
		for d := 0; d < domains; d++ {
			if err := e.AddDomain(fmt.Sprintf("op%d", d), DomainConfig{Net: topology.Testbed(), Algorithm: "benders"}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		defer e.Stop()

		types := []slice.Type{slice.EMBB, slice.URLLC, slice.MMTC}
		var fp strings.Builder
		for wave := 0; wave < 4; wave++ {
			var wg sync.WaitGroup
			for d := 0; d < domains; d++ {
				for k := 0; k < 2; k++ {
					wg.Add(1)
					go func(d, k int) {
						defer wg.Done()
						ty := types[(wave+d+k)%len(types)]
						_, err := e.Submit(Request{
							Domain: fmt.Sprintf("op%d", d),
							Name:   fmt.Sprintf("w%d-d%d-k%d", wave, d, k),
							SLA:    slice.SLA{Template: slice.Table1(ty), Duration: 2 + wave%2}.WithPenaltyFactor(1),
						})
						if err != nil {
							t.Errorf("submit: %v", err)
						}
					}(d, k)
				}
			}
			wg.Wait()
			if t.Failed() {
				t.Fatal("submissions failed")
			}
			for d := 0; d < domains; d++ {
				dom := fmt.Sprintf("op%d", d)
				// Drift committed forecasts deterministically before the round.
				for _, name := range mustCommittedIn(t, e, dom) {
					lh, sg := driftView(name, slice.SLA{Template: slice.Table1(slice.EMBB)}, wave)
					if err := e.UpdateForecast(dom, name, lh, sg); err != nil {
						t.Fatal(err)
					}
				}
				r, err := e.DecideRound(dom)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(&fp, "%s %s\n", dom, fingerprint(wave, r.Names, r.Decision))
				exp, err := e.Advance(dom)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(&fp, "%s expired=%v\n", dom, exp)
			}
		}
		return fp.String()
	}

	want := workload(1)
	for _, shards := range []int{2, 5} {
		if got := workload(shards); got != want {
			t.Fatalf("shards=%d diverged from single-shard run:\nwant:\n%s\ngot:\n%s", shards, want, got)
		}
	}
}

func mustCommittedIn(t *testing.T, e *Engine, domain string) []string {
	t.Helper()
	names, err := e.Committed(domain)
	if err != nil {
		t.Fatal(err)
	}
	return names
}
