package admission

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/slice"
	"repro/internal/topology"
)

// BenchmarkAdmissionThroughput measures end-to-end decisions per second —
// submit, batch, solve, commit — for a fixed 8-domain online workload at
// increasing shard counts. The single-shard run is the serial baseline the
// multi-shard speedup is quoted against (EXPERIMENTS.md); decisions are
// identical at every shard count (TestShardCountInvariance), so the only
// thing that changes is wall clock.
func BenchmarkAdmissionThroughput(b *testing.B) {
	const (
		domains   = 8
		epochs    = 4
		perEpoch  = 3 // fresh requests per domain per epoch
		totalReqs = domains * epochs * perEpoch
	)
	types := []slice.Type{slice.EMBB, slice.URLLC, slice.MMTC}

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New(Config{Shards: shards, QueueDepth: 4 * totalReqs})
				for d := 0; d < domains; d++ {
					if err := e.AddDomain(fmt.Sprintf("op%d", d), DomainConfig{
						Net: topology.Testbed(), Algorithm: "benders",
					}); err != nil {
						b.Fatal(err)
					}
				}
				if err := e.Start(); err != nil {
					b.Fatal(err)
				}
				// One driver per domain: submissions, epoch rounds with
				// forecast drift, lifecycle — the loadgen loop in miniature.
				var wg sync.WaitGroup
				for d := 0; d < domains; d++ {
					wg.Add(1)
					go func(d int) {
						defer wg.Done()
						dom := fmt.Sprintf("op%d", d)
						for ep := 0; ep < epochs; ep++ {
							for k := 0; k < perEpoch; k++ {
								ty := types[(d+ep+k)%len(types)]
								_, err := e.Submit(Request{
									Domain: dom,
									Name:   fmt.Sprintf("e%d-k%d", ep, k),
									SLA:    slice.SLA{Template: slice.Table1(ty), Duration: 2}.WithPenaltyFactor(1),
								})
								if err != nil {
									b.Error(err)
									return
								}
							}
							for _, name := range committedOf(b, e, dom) {
								lh, sg := driftView(name, slice.SLA{Template: slice.Table1(slice.EMBB)}, ep)
								if err := e.UpdateForecast(dom, name, lh, sg); err != nil {
									b.Error(err)
									return
								}
							}
							if _, err := e.DecideRound(dom); err != nil {
								b.Error(err)
								return
							}
							if _, err := e.Advance(dom); err != nil {
								b.Error(err)
								return
							}
						}
					}(d)
				}
				wg.Wait()
				if err := e.Drain(context.Background()); err != nil {
					b.Fatal(err)
				}
				e.Stop()
				if m := e.Metrics(); m.Submitted != totalReqs {
					b.Fatalf("workload decided %d of %d requests (%+v)", m.Submitted, totalReqs, m)
				}
			}
			b.ReportMetric(float64(totalReqs*b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkAdmissionBatching measures the cost of round granularity for K
// concurrent requests: one-by-one incremental rounds (each a warm-session
// re-entry against a mostly-pinned committed set) versus a single
// coalesced round (one solve, but a master MILP with K free admission
// binaries). The numbers put the trade-off on record: incremental rounds
// are the cheap steady-state path, and the micro-batcher's flush knobs
// exist to bound the solve rate under bursts — one round per flush period
// no matter how many requests arrive — not to make a round cheaper.
func BenchmarkAdmissionBatching(b *testing.B) {
	const perWave = 8
	types := []slice.Type{slice.EMBB, slice.URLLC, slice.MMTC}
	run := func(b *testing.B, coalesce bool) {
		for i := 0; i < b.N; i++ {
			e := New(Config{QueueDepth: 4 * perWave})
			if err := e.AddDomain("", DomainConfig{Net: topology.Testbed(), Algorithm: "benders"}); err != nil {
				b.Fatal(err)
			}
			if err := e.Start(); err != nil {
				b.Fatal(err)
			}
			for k := 0; k < perWave; k++ {
				_, err := e.Submit(Request{
					Name: fmt.Sprintf("k%d", k),
					SLA:  slice.SLA{Template: slice.Table1(types[k%len(types)]), Duration: 8}.WithPenaltyFactor(1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if !coalesce {
					if _, err := e.DecideRound(""); err != nil {
						b.Fatal(err)
					}
				}
			}
			if coalesce {
				if _, err := e.DecideRound(""); err != nil {
					b.Fatal(err)
				}
			}
			e.Stop()
		}
		b.ReportMetric(float64(perWave*b.N)/b.Elapsed().Seconds(), "req/s")
	}
	b.Run(fmt.Sprintf("rounds=%d", perWave), func(b *testing.B) { run(b, false) })
	b.Run("rounds=1", func(b *testing.B) { run(b, true) })
}

func committedOf(b *testing.B, e *Engine, domain string) []string {
	b.Helper()
	names, err := e.Committed(domain)
	if err != nil {
		b.Fatal(err)
	}
	return names
}

// metroDeploy is the lazily built metro-scale deployment BenchmarkMetroRound
// measures: topology.MetroPods independent pod domains (>= 1000 BSs total),
// each a strict-tree pod under the deep four-tier CU hierarchy, populated
// with the metro archetype's tenant mix and taken through its first (cold)
// round. Built once per process — the cold factorizations are setup cost,
// not the thing the benchmark times.
var metroDeploy struct {
	once sync.Once
	eng  *Engine
	err  error
}

func metroEngine(b *testing.B) *Engine {
	b.Helper()
	metroDeploy.once.Do(func() {
		pod := topology.Metro(topology.MetroPodBS)
		e := New(Config{Shards: 0, QueueDepth: 8 * topology.MetroPods})
		types := []slice.Type{slice.URLLC, slice.URLLC, slice.EMBB, slice.MMTC}
		for d := 0; d < topology.MetroPods; d++ {
			if err := e.AddDomain(fmt.Sprintf("pod%d", d), DomainConfig{
				Net: pod, KPaths: 1, Algorithm: "benders",
			}); err != nil {
				metroDeploy.err = err
				return
			}
		}
		if err := e.Start(); err != nil {
			metroDeploy.err = err
			return
		}
		for d := 0; d < topology.MetroPods; d++ {
			dom := fmt.Sprintf("pod%d", d)
			for k, ty := range types {
				_, err := e.Submit(Request{
					Domain: dom,
					Name:   fmt.Sprintf("t%d", k),
					SLA:    slice.SLA{Template: slice.Table1(ty), Duration: 1 << 20}.WithPenaltyFactor(1),
				})
				if err != nil {
					metroDeploy.err = err
					return
				}
			}
			if _, err := e.DecideRound(dom); err != nil {
				metroDeploy.err = err
				return
			}
		}
		metroDeploy.eng = e
	})
	if metroDeploy.err != nil {
		b.Fatal(metroDeploy.err)
	}
	return metroDeploy.eng
}

// BenchmarkMetroRound times one steady-state admission round over the full
// metro deployment: every pod domain gets a forecast drift on its committed
// slices and one warm DecideRound (dual-simplex re-entry, Forrest–Tomlin
// updates, batched slave ftran — no cold factorization on this path). This
// is the per-round latency the metro tier is budgeted against; it is in the
// bench-compare HOT_BENCHES set.
func BenchmarkMetroRound(b *testing.B) {
	e := metroEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d < topology.MetroPods; d++ {
			dom := fmt.Sprintf("pod%d", d)
			for _, name := range committedOf(b, e, dom) {
				lh, sg := driftView(name, slice.SLA{Template: slice.Table1(slice.EMBB)}, i)
				if err := e.UpdateForecast(dom, name, lh, sg); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := e.DecideRound(dom); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N*topology.MetroPods)/b.Elapsed().Seconds(), "pod-rounds/s")
}
