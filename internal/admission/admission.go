package admission

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/slice"
	"repro/internal/topology"
	"repro/internal/yield"
)

// Intake errors. ErrOverloaded and ErrTenantCap are the backpressure
// surface: callers are expected to retry later or route elsewhere.
var (
	// ErrOverloaded means the bounded intake queue is full; the request was
	// shed without being queued.
	ErrOverloaded = errors.New("admission: engine overloaded, request shed")
	// ErrTenantCap means this tenant already has TenantCap requests queued;
	// the fairness cap sheds the excess so one tenant cannot monopolize the
	// queue.
	ErrTenantCap = errors.New("admission: per-tenant queue cap reached")
	// ErrDuplicate means a request with the same name is already queued or
	// committed in the domain.
	ErrDuplicate = errors.New("admission: duplicate request name")
	// ErrStopped means the engine is not accepting requests (not started,
	// draining, or stopped).
	ErrStopped = errors.New("admission: engine not accepting requests")
	// ErrUnknownDomain means the request names a domain the engine does not
	// serve.
	ErrUnknownDomain = errors.New("admission: unknown domain")
)

// DefaultDomain is the domain used when Request.Domain is empty — the
// single-operator deployments (ctrlplane) never need to name one.
const DefaultDomain = "default"

// Request is one tenant slice request offered to the engine.
type Request struct {
	// Domain routes the request to an operator domain (and therefore to a
	// shard); empty means DefaultDomain.
	Domain string
	// Tenant is the fairness-accounting key; empty means Name.
	Tenant string
	// Name identifies the slice; unique among queued and committed slices
	// of the domain (rejected and expired names may be reused).
	Name string
	// SLA carries the template, commercial terms and Duration (epochs).
	SLA slice.SLA
	// LambdaHat and Sigma are the forecast view; zero values mean the
	// cold-start conservative (λ̂ = Λ, σ̂ = 1), exactly how the simulator
	// treats slices with no monitored history.
	LambdaHat float64
	Sigma     float64
}

// tenantKey resolves the fairness key.
func (r Request) tenantKey() string {
	if r.Tenant != "" {
		return r.Tenant
	}
	return r.Name
}

// Outcome is the engine's decision for one request.
type Outcome struct {
	Name     string
	Admitted bool
	// FastRejected marks prefilter rejections (no LP was solved).
	FastRejected bool
	// Reason explains a rejection ("" when admitted).
	Reason string
	// CU, Reserved and PathIdx carry the placement for admitted requests
	// (per-BS reservation in Mb/s, per-BS path index into Paths[b][CU]).
	CU       int
	Reserved []float64
	PathIdx  []int
	// Round is the per-domain round sequence number that decided the
	// request (0 for fast rejections, which never enter a round).
	Round uint64
	// Latency is submit-to-decision wall time.
	Latency time.Duration
}

// Ticket is the caller's handle on a pending decision.
type Ticket struct {
	done chan struct{}
	out  Outcome
	err  error
}

func newTicket() *Ticket { return &Ticket{done: make(chan struct{})} }

// resolve delivers the outcome; must be called exactly once.
func (t *Ticket) resolve(out Outcome) {
	t.out = out
	close(t.done)
}

// fail delivers an error instead of an outcome; must be called exactly once.
func (t *Ticket) fail(err error) {
	t.err = err
	close(t.done)
}

// Done is closed once the decision (or a terminal error) is available.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the decision is available or the context ends.
func (t *Ticket) Wait(ctx context.Context) (Outcome, error) {
	select {
	case <-t.done:
		return t.out, t.err
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
}

// Outcome returns the decision without blocking; ok is false while the
// request is still in flight (or when the ticket failed).
func (t *Ticket) Outcome() (out Outcome, ok bool) {
	select {
	case <-t.done:
		return t.out, t.err == nil
	default:
		return Outcome{}, false
	}
}

// Err returns the terminal error, if any, once the ticket is done.
func (t *Ticket) Err() error {
	select {
	case <-t.done:
		return t.err
	default:
		return nil
	}
}

// Executor runs one admission round's solve step outside the engine's own
// shard goroutine — the seam the distributed control plane (internal/
// cluster) plugs a remote worker into. The engine calls SolveRound under
// the domain's solver lock with the round already logged, passing the
// exact inputs a local solve would see: the tenants in canonical order and
// the domain's accumulated capacity events (the remote side re-derives the
// live network from them against its own copy of the base topology). The
// solve is a pure function of those inputs — warm solver state is a cache
// that cannot move a decision (the warm==cold pins) — so a remote solve,
// a re-dispatched solve after a worker loss, and a local solve all return
// the bit-identical decision.
//
// Neither slice may be retained or mutated past the call. Recovery replay
// (ReplayRound) never routes through an Executor: it always solves on the
// engine's local solver, so a crashed coordinator recovers without waiting
// for workers to rejoin.
type Executor interface {
	SolveRound(domain string, seq uint64, events []topology.Event, tenants []core.TenantSpec) (*core.Decision, error)
}

// DomainConfig describes one operator domain the engine serves: its
// topology, path budget and AC-RR algorithm.
type DomainConfig struct {
	Net    *topology.Network
	KPaths int // k-shortest paths per (BS, CU); default 3
	// Algorithm selects the solver: "benders" (default; warm cross-round
	// session), "direct", "kac", or "no-overbooking".
	Algorithm string
	// BigM prices deficit capacity exactly as core.Instance.BigM; the
	// default is 1e4. Negative disables the relaxation (hard capacity),
	// which also arms the prefilter's capacity checks.
	BigM float64
	// RiskHorizon forwards to core.Instance.RiskHorizon (0 = default).
	RiskHorizon int
	// Benders tunes the warm session ("benders" only).
	Benders core.BendersOptions
	// Executor, when set, runs the domain's round solves remotely (the
	// cluster coordinator). Nil keeps every solve on the in-process
	// solver — the single-binary mode, bit-identical by the Executor
	// contract. Replay always solves locally regardless.
	Executor Executor
}

// Normalized returns the config exactly as the engine will use it —
// defaults applied, BigM sign resolved — or the validation error AddDomain
// would return. The cluster layer normalizes a domain spec once here so
// coordinator-side and worker-side solves assemble identical instances.
func (dc DomainConfig) Normalized() (DomainConfig, error) { return dc.withDefaults() }

func (dc DomainConfig) withDefaults() (DomainConfig, error) {
	if dc.Net == nil {
		return dc, fmt.Errorf("admission: domain needs a topology")
	}
	if dc.KPaths == 0 {
		dc.KPaths = 3
	}
	if dc.Algorithm == "" {
		dc.Algorithm = "benders"
	}
	switch dc.Algorithm {
	case "benders", "direct", "kac", "no-overbooking":
	default:
		return dc, fmt.Errorf("admission: unknown algorithm %q", dc.Algorithm)
	}
	if dc.BigM == 0 {
		dc.BigM = 1e4
	} else if dc.BigM < 0 {
		dc.BigM = 0 // hard capacity constraints
	}
	return dc, nil
}

// overbook reports whether the domain's solver overbooks (everything but
// the no-overbooking baseline).
func (dc DomainConfig) overbook() bool { return dc.Algorithm != "no-overbooking" }

// RoundLog is the engine's durability hook, implemented by internal/wal:
// the engine appends each round's inputs — the batch in canonical order,
// forecast updates, epoch advances — and group-commits once per round with
// SyncRound before any caller observes an outcome (log-before-ack). The
// non-round appends are buffered; the round boundary is the only fsync.
// Implementations must be safe for concurrent use (shards of different
// domains log concurrently).
type RoundLog interface {
	// AppendRound records one round's fresh batch (already in canonical
	// sorted order) under the domain's round sequence number.
	AppendRound(domain string, seq uint64, batch []Request) error
	// AppendForecasts records a forecast-view refresh of committed slices.
	AppendForecasts(domain string, ups []ForecastUpdate) error
	// AppendAdvance records one epoch tick of the domain's lifecycle clock.
	AppendAdvance(domain string) error
	// AppendTopology records a batch of capacity events applied to the
	// domain's live network (ApplyTopology fsyncs it before mutating).
	AppendTopology(domain string, events []topology.Event) error
	// AppendHandover records a committed slice moving between domains
	// (Handover fsyncs it before mutating either domain).
	AppendHandover(fromDomain, toDomain, name string) error
	// SyncRound makes everything appended so far durable; called once per
	// round, before the round's outcomes are acked.
	SyncRound() error
}

// Config parameterizes the engine.
type Config struct {
	// Shards is the solver worker count; domains hash onto shards. Default 1.
	Shards int
	// QueueDepth bounds requests accepted but not yet decided; beyond it
	// Submit sheds with ErrOverloaded. Default 1024.
	QueueDepth int
	// TenantCap bounds queued requests per tenant (fairness); default
	// QueueDepth (no extra cap).
	TenantCap int
	// MaxBatch flushes a domain's batch into a round once it reaches this
	// size; 0 disables size-triggered flushing (timer/manual only).
	MaxBatch int
	// FlushEvery flushes all non-empty batches on this period; 0 disables
	// the timer (manual Flush/DecideRound only — the ctrlplane epoch mode).
	FlushEvery time.Duration
	// Store, when set, receives per-round metrics samples (slice
	// "admission", metrics "round_batch", "round_ms", "queue_depth",
	// "round_expected_revenue", element = domain name, epoch = the
	// domain's round number).
	Store *monitor.Store
	// Ledger, when set, receives each round's solver-estimated net revenue
	// (core.Decision.Revenue()) via BookExpected — the expected side of
	// the yield account. The realized side is booked by whoever monitors
	// actual traffic (the closed-loop controller, internal/reopt).
	Ledger *yield.Ledger
	// Log, when set, makes decisions durable: every round's inputs are
	// appended and fsynced before its outcomes resolve, so a crashed
	// engine rebuilt via RestoreDomain + ReplayRound reproduces the
	// committed state bit for bit (internal/wal).
	Log RoundLog
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.TenantCap <= 0 {
		c.TenantCap = c.QueueDepth
	}
	return c
}

// Round reports one executed admission round.
type Round struct {
	Domain string
	// Seq is the domain's round sequence number.
	Seq uint64
	// Names lists the instance's tenants in solve order: committed slices
	// in admission order, then the round's batch sorted by name.
	Names []string
	// Decision is the solver's full output, indexed like Names. Never nil
	// on success (a tenantless round yields an empty decision).
	Decision *core.Decision
	// Admitted and Rejected partition the round's batch (not the
	// already-committed slices, which stay admitted by constraint (13)).
	Admitted, Rejected []string
	// BatchSize is the number of fresh requests decided this round.
	BatchSize int
	// Err is the solver error, if any; the round decided nothing.
	Err error
}
