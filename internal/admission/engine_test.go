package admission

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/slice"
	"repro/internal/topology"
)

func testSLA(ty slice.Type, duration int) slice.SLA {
	return slice.SLA{Template: slice.Table1(ty), Duration: duration}.WithPenaltyFactor(1)
}

// newTestEngine builds a started single-domain engine over the testbed
// topology and cleans it up with the test.
func newTestEngine(t *testing.T, cfg Config, dc DomainConfig) *Engine {
	t.Helper()
	if dc.Net == nil {
		dc.Net = topology.Testbed()
	}
	e := New(cfg)
	if err := e.AddDomain("", dc); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

func waitOutcome(t *testing.T, tk *Ticket) Outcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := tk.Wait(ctx)
	if err != nil {
		t.Fatalf("ticket: %v", err)
	}
	return out
}

func TestQueueBackpressure(t *testing.T) {
	e := newTestEngine(t, Config{QueueDepth: 2}, DomainConfig{Algorithm: "direct"})
	if _, err := e.Submit(Request{Name: "a", SLA: testSLA(slice.URLLC, 4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(Request{Name: "b", SLA: testSLA(slice.URLLC, 4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(Request{Name: "c", SLA: testSLA(slice.URLLC, 4)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("3rd submit: %v, want ErrOverloaded", err)
	}
	if m := e.Metrics(); m.Shed != 1 || m.QueueDepth != 2 {
		t.Fatalf("metrics after shed: %+v", m)
	}
}

func TestTenantFairnessCap(t *testing.T) {
	e := newTestEngine(t, Config{QueueDepth: 16, TenantCap: 2}, DomainConfig{Algorithm: "direct"})
	for _, n := range []string{"g1", "g2"} {
		if _, err := e.Submit(Request{Name: n, Tenant: "greedy", SLA: testSLA(slice.URLLC, 4)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Submit(Request{Name: "g3", Tenant: "greedy", SLA: testSLA(slice.URLLC, 4)}); !errors.Is(err, ErrTenantCap) {
		t.Fatalf("over-cap submit: %v, want ErrTenantCap", err)
	}
	// Another tenant still gets through: the cap is per tenant, not global.
	if _, err := e.Submit(Request{Name: "m1", Tenant: "modest", SLA: testSLA(slice.URLLC, 4)}); err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
}

func TestDuplicateNamesAndReuse(t *testing.T) {
	e := newTestEngine(t, Config{}, DomainConfig{Algorithm: "no-overbooking"})
	// Capacity allows exactly one full mMTC reservation (2 BS × 10 Mb/s ×
	// 2 cores/Mbps = 40 cores on the 64-core core cloud).
	for _, n := range []string{"m1", "m2"} {
		if _, err := e.Submit(Request{Name: n, SLA: testSLA(slice.MMTC, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Submit(Request{Name: "m1", SLA: testSLA(slice.MMTC, 8)}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate queued name: %v, want ErrDuplicate", err)
	}
	r, err := e.DecideRound("")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Admitted) != 1 || len(r.Rejected) != 1 {
		t.Fatalf("round: admitted=%v rejected=%v", r.Admitted, r.Rejected)
	}
	// A committed name stays blocked; a rejected name is reusable.
	if _, err := e.Submit(Request{Name: r.Admitted[0], SLA: testSLA(slice.MMTC, 8)}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("committed name resubmitted: %v, want ErrDuplicate", err)
	}
	if _, err := e.Submit(Request{Name: r.Rejected[0], SLA: testSLA(slice.MMTC, 8)}); err != nil {
		t.Fatalf("rejected name not reusable: %v", err)
	}
}

func TestPrefilterDelayInfeasibleMatchesSolver(t *testing.T) {
	net := topology.Testbed()
	sla := testSLA(slice.URLLC, 4)
	sla.DelayBound = 1e-9 // below any achievable end-to-end delay

	e := newTestEngine(t, Config{}, DomainConfig{Net: net, Algorithm: "direct"})
	tk, err := e.Submit(Request{Name: "impossible", SLA: sla})
	if err != nil {
		t.Fatal(err)
	}
	out, ok := tk.Outcome()
	if !ok || !out.FastRejected || out.Admitted {
		t.Fatalf("fast-reject outcome: %+v ok=%v", out, ok)
	}
	if m := e.Metrics(); m.FastRejected != 1 || m.QueueDepth != 0 {
		t.Fatalf("metrics: %+v", m)
	}

	// One-sidedness: the solver rejects the same request.
	inst := &core.Instance{
		Net: net, Paths: net.Paths(3),
		Tenants:  []core.TenantSpec{{Name: "impossible", SLA: sla, LambdaHat: sla.RateMbps, Sigma: 1, RemainingEpochs: 4}},
		Overbook: true, BigM: 1e4,
	}
	dec, err := core.SolveDirect(inst)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Accepted[0] {
		t.Fatal("solver admitted a request the prefilter rejects — prefilter is not one-sided")
	}
}

func TestPrefilterCapacityHardOnly(t *testing.T) {
	net := topology.Testbed()
	big := testSLA(slice.EMBB, 4)
	big.RateMbps = 1e6 // no BS can carry this

	// Soft capacity (default big-M): the capacity checks stay off — the
	// solver keeps the last word.
	soft := newTestEngine(t, Config{}, DomainConfig{Net: net, Algorithm: "direct"})
	tk, err := soft.Submit(Request{Name: "huge", SLA: big})
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := tk.Outcome(); ok && out.FastRejected {
		t.Fatalf("soft-capacity domain fast-rejected: %+v", out)
	}

	// Hard capacity (BigM < 0): fast-rejected, and the solver agrees.
	hard := newTestEngine(t, Config{}, DomainConfig{Net: net, Algorithm: "direct", BigM: -1})
	tk, err = hard.Submit(Request{Name: "huge", SLA: big})
	if err != nil {
		t.Fatal(err)
	}
	out, ok := tk.Outcome()
	if !ok || !out.FastRejected {
		t.Fatalf("hard-capacity domain did not fast-reject: %+v ok=%v", out, ok)
	}
	inst := &core.Instance{
		Net: net, Paths: net.Paths(3),
		Tenants:  []core.TenantSpec{{Name: "huge", SLA: big, LambdaHat: big.RateMbps, Sigma: 1, RemainingEpochs: 4}},
		Overbook: true, BigM: 0,
	}
	dec, err := core.SolveDirect(inst)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Accepted[0] {
		t.Fatal("hard solver admitted a request the prefilter rejects")
	}
}

func TestSizeTriggeredFlush(t *testing.T) {
	// eMBB carries no compute demand, so two full-SLA slices co-fit the
	// testbed radio (2 × 50 of 150 Mb/s per BS) and both admit.
	e := newTestEngine(t, Config{MaxBatch: 2}, DomainConfig{Algorithm: "direct"})
	tk1, err := e.Submit(Request{Name: "u1", SLA: testSLA(slice.EMBB, 4)})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk1.Done():
		t.Fatal("round ran before the batch filled")
	case <-time.After(20 * time.Millisecond):
	}
	tk2, err := e.Submit(Request{Name: "u2", SLA: testSLA(slice.EMBB, 4)})
	if err != nil {
		t.Fatal(err)
	}
	out1, out2 := waitOutcome(t, tk1), waitOutcome(t, tk2)
	if !out1.Admitted || !out2.Admitted {
		t.Fatalf("outcomes: %+v %+v", out1, out2)
	}
	if out1.Round != out2.Round {
		t.Fatalf("requests split across rounds %d and %d, want one micro-batch", out1.Round, out2.Round)
	}
	if m := e.Metrics(); m.Rounds != 1 || m.MeanBatch != 2 {
		t.Fatalf("batching metrics: %+v", m)
	}
}

func TestTimerTriggeredFlush(t *testing.T) {
	e := newTestEngine(t, Config{FlushEvery: 2 * time.Millisecond}, DomainConfig{Algorithm: "direct"})
	tk, err := e.Submit(Request{Name: "u1", SLA: testSLA(slice.URLLC, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if out := waitOutcome(t, tk); !out.Admitted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestForecastDriftShrinksReservations(t *testing.T) {
	e := newTestEngine(t, Config{}, DomainConfig{Algorithm: "benders"})
	tk, err := e.Submit(Request{Name: "u1", SLA: testSLA(slice.URLLC, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DecideRound(""); err != nil {
		t.Fatal(err)
	}
	out := waitOutcome(t, tk)
	if !out.Admitted || out.Reserved[0] < 24.9 {
		t.Fatalf("cold-start admission: %+v (want full 25 Mb/s SLA)", out)
	}

	// Forecast drops to 10 of 25 Mb/s with high confidence — below σ≈0.15
	// the marginal risk ξK/(Λ−λ̂) undercuts the holding price and the next
	// (batchless) round shrinks the reservation toward λ̂.
	if err := e.UpdateForecast("", "u1", 10, 0.05); err != nil {
		t.Fatal(err)
	}
	r, err := e.DecideRound("")
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchSize != 0 || len(r.Names) != 1 || r.Names[0] != "u1" {
		t.Fatalf("round shape: %+v", r)
	}
	if z := r.Decision.Z[0][0]; z >= 24 {
		t.Fatalf("reservation never shrank: %v", r.Decision.Z[0])
	}
	if err := e.UpdateForecast("", "ghost", 1, 1); err == nil {
		t.Fatal("forecast update for unknown slice succeeded")
	}
}

func TestAdvanceExpiresAndFreesNames(t *testing.T) {
	e := newTestEngine(t, Config{}, DomainConfig{Algorithm: "direct"})
	tk, err := e.Submit(Request{Name: "short", SLA: testSLA(slice.URLLC, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DecideRound(""); err != nil {
		t.Fatal(err)
	}
	if out := waitOutcome(t, tk); !out.Admitted {
		t.Fatalf("outcome: %+v", out)
	}
	if exp, err := e.Advance(""); err != nil || len(exp) != 0 {
		t.Fatalf("first advance: %v %v", exp, err)
	}
	exp, err := e.Advance("")
	if err != nil || len(exp) != 1 || exp[0] != "short" {
		t.Fatalf("second advance: %v %v", exp, err)
	}
	if names, _ := e.Committed(""); len(names) != 0 {
		t.Fatalf("committed after expiry: %v", names)
	}
	if _, err := e.Submit(Request{Name: "short", SLA: testSLA(slice.URLLC, 2)}); err != nil {
		t.Fatalf("expired name not reusable: %v", err)
	}
}

func TestDrainDecidesEverythingThenRefuses(t *testing.T) {
	e := newTestEngine(t, Config{}, DomainConfig{Algorithm: "direct"})
	var tickets []*Ticket
	for _, n := range []string{"a", "b", "c"} {
		tk, err := e.Submit(Request{Name: n, SLA: testSLA(slice.URLLC, 4)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if _, ok := tk.Outcome(); !ok {
			t.Fatalf("ticket undecided after drain: %v", tk.Err())
		}
	}
	if m := e.Metrics(); m.QueueDepth != 0 {
		t.Fatalf("queue depth after drain: %+v", m)
	}
	if _, err := e.Submit(Request{Name: "late", SLA: testSLA(slice.URLLC, 4)}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after drain: %v, want ErrStopped", err)
	}
}

func TestStopFailsUndecidedTickets(t *testing.T) {
	e := New(Config{})
	if err := e.AddDomain("", DomainConfig{Net: topology.Testbed(), Algorithm: "direct"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	tk, err := e.Submit(Request{Name: "orphan", SLA: testSLA(slice.URLLC, 4)})
	if err != nil {
		t.Fatal(err)
	}
	e.Stop()
	if _, err := tk.Wait(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("orphan ticket: %v, want ErrStopped", err)
	}
	e.Stop() // idempotent
}

func TestUnknownDomain(t *testing.T) {
	e := newTestEngine(t, Config{}, DomainConfig{Algorithm: "direct"})
	if _, err := e.Submit(Request{Domain: "mars", Name: "x", SLA: testSLA(slice.URLLC, 4)}); !errors.Is(err, ErrUnknownDomain) {
		t.Fatalf("submit: %v", err)
	}
	if _, err := e.DecideRound("mars"); !errors.Is(err, ErrUnknownDomain) {
		t.Fatalf("round: %v", err)
	}
	if err := e.AddDomain("default", DomainConfig{Net: topology.Testbed()}); err == nil {
		t.Fatal("duplicate domain added")
	}
}

func TestMonitorPublishing(t *testing.T) {
	store := monitor.NewStore(0)
	e := newTestEngine(t, Config{Store: store}, DomainConfig{Algorithm: "direct"})
	if _, err := e.Submit(Request{Name: "u1", SLA: testSLA(slice.URLLC, 4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DecideRound(""); err != nil {
		t.Fatal(err)
	}
	if v, ok := store.EpochPeak("admission", "round_batch", 0); !ok || v != 1 {
		t.Fatalf("round_batch sample: %v %v", v, ok)
	}
	if _, ok := store.EpochPeak("admission", "round_ms", 0); !ok {
		t.Fatal("round_ms sample missing")
	}
	if _, ok := store.EpochPeak("admission", "queue_depth", 0); !ok {
		t.Fatal("queue_depth sample missing")
	}
}

func TestMetricsLatencyQuantiles(t *testing.T) {
	e := newTestEngine(t, Config{MaxBatch: 1}, DomainConfig{Algorithm: "direct"})
	var tickets []*Ticket
	for _, n := range []string{"a", "b", "c"} {
		tk, err := e.Submit(Request{Name: n, SLA: testSLA(slice.URLLC, 4)})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		waitOutcome(t, tk)
	}
	m := e.Metrics()
	if m.LatencyP50 <= 0 || m.LatencyP99 < m.LatencyP50 {
		t.Fatalf("latency quantiles: %+v", m)
	}
	if m.Submitted != 3 || m.Admitted+m.Rejected != 3 {
		t.Fatalf("counters: %+v", m)
	}
}
