package admission

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/slice"
	"repro/internal/topology"
)

// Engine is the online admission service. Construct with New, add domains
// with AddDomain, then Start. Safe for concurrent use.
type Engine struct {
	cfg Config

	mu        sync.Mutex
	state     engineState
	domains   map[string]*domain
	shards    []*shard
	nextShard int
	queued    int            // accepted but undecided requests, all domains
	perTenant map[string]int // queued per fairness key
	met       metrics

	// enq tracks callers between releasing mu and pushing a job onto a
	// shard channel, so Stop never closes a channel under an in-flight send.
	enq sync.WaitGroup
	wg  sync.WaitGroup // shard + ticker goroutines

	stopTicker chan struct{}
}

type engineState int

const (
	stateNew engineState = iota
	stateRunning
	stateDraining
	stateStopped
)

// shard is one solver worker; a domain's rounds all run on its one shard.
type shard struct {
	id   int
	jobs chan *roundJob
}

// roundJob is one admission round awaiting execution on a shard.
type roundJob struct {
	d     *domain
	batch []pending
	done  chan *Round // non-nil for synchronous DecideRound callers
	// replay marks a recovery-time re-execution of a logged round: no
	// tickets to resolve, no intake accounting to settle, nothing to log.
	replay bool
}

// pending is one queued request.
type pending struct {
	req       Request
	ticket    *Ticket
	submitted time.Time
}

// member is one committed (admitted, unexpired) slice of a domain.
type member struct {
	name, tenant string
	sla          slice.SLA
	lambdaHat    float64
	sigma        float64
	remaining    int
	cu           int
	reserved     []float64
	pathIdx      []int
}

// domain is one operator domain: its solver state lives on exactly one
// shard; the batch buffer is guarded by Engine.mu, the solver state by dmu.
// Engine.mu and a dmu are never held together (engine-wide rule). The one
// place two dmus are held at once is Handover, which always takes them in
// domain-name order, so there is no ordering to get wrong elsewhere.
type domain struct {
	name   string
	cfg    DomainConfig
	shard  *shard
	paths  [][][]topology.Path
	filter prefilter

	// Guarded by Engine.mu.
	batch []pending
	names map[string]bool // queued + committed names (duplicate guard)

	// Guarded by dmu; in steady state only the owning shard takes it.
	dmu       sync.Mutex
	committed []*member
	byName    map[string]*member
	solveFn   func(*core.Instance) (*core.Decision, error)
	rounds    uint64
	// curNet is the network rounds currently solve against: cfg.Net with
	// every ApplyTopology event folded in (topoEvents, in arrival order).
	// A topology event swaps the pointer, which the warm solver treats as
	// a shape change — the next round rebuilds cold, by design.
	curNet     *topology.Network
	topoEvents []topology.Event
}

// New builds an engine; AddDomain then Start before submitting.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:        cfg,
		domains:    map[string]*domain{},
		perTenant:  map[string]int{},
		stopTicker: make(chan struct{}),
		met:        newMetrics(),
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{id: i, jobs: make(chan *roundJob, 128)}
	}
	return e
}

// AddDomain installs an operator domain. Domains may be added before or
// after Start; shards are assigned round-robin in registration order, so
// the domain→shard map is deterministic for a fixed AddDomain sequence and
// perfectly balanced at any domain count.
func (e *Engine) AddDomain(name string, dc DomainConfig) error {
	if name == "" {
		name = DefaultDomain
	}
	dc, err := dc.withDefaults()
	if err != nil {
		return err
	}
	d := &domain{
		name:   name,
		cfg:    dc,
		paths:  dc.Net.Paths(dc.KPaths),
		names:  map[string]bool{},
		byName: map[string]*member{},
		curNet: dc.Net,
	}
	d.filter = newPrefilter(dc, d.paths)
	switch dc.Algorithm {
	case "benders":
		d.solveFn = core.NewBendersSession(dc.Benders).Solve
	case "direct", "no-overbooking":
		d.solveFn = core.SolveDirect
	case "kac":
		d.solveFn = func(inst *core.Instance) (*core.Decision, error) {
			return core.SolveKAC(inst, core.KACOptions{})
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateStopped {
		return ErrStopped
	}
	if _, dup := e.domains[name]; dup {
		return fmt.Errorf("admission: domain %q already exists", name)
	}
	d.shard = e.shards[e.nextShard%len(e.shards)]
	e.nextShard++
	e.domains[name] = d
	return nil
}

// SetExecutor installs (or clears) a domain's remote-solve executor after
// AddDomain — the promote-to-active seam: a standby replays its whole life
// with no executor (recovery must not depend on workers having rejoined),
// then gains one at promotion, before Start. Safe between rounds too: the
// executor is read under the domain lock.
func (e *Engine) SetExecutor(domainName string, exec Executor) error {
	d, err := e.domain(domainName)
	if err != nil {
		return err
	}
	d.dmu.Lock()
	d.cfg.Executor = exec
	d.dmu.Unlock()
	return nil
}

// Start launches the shard workers (and the flush ticker, if configured).
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != stateNew {
		return fmt.Errorf("admission: engine already started")
	}
	e.state = stateRunning
	for _, sh := range e.shards {
		e.wg.Add(1)
		go e.runShard(sh)
	}
	if e.cfg.FlushEvery > 0 {
		e.wg.Add(1)
		go e.runTicker()
	}
	return nil
}

// Submit offers one request. It returns a Ticket whose outcome resolves
// when a round decides the request (immediately for prefilter fast
// rejections), or an intake error: ErrOverloaded / ErrTenantCap when the
// engine sheds, ErrDuplicate, ErrUnknownDomain, or ErrStopped.
func (e *Engine) Submit(req Request) (*Ticket, error) {
	if req.Domain == "" {
		req.Domain = DefaultDomain
	}
	if req.Name == "" {
		return nil, fmt.Errorf("admission: request needs a name")
	}
	tenant := req.tenantKey()
	now := time.Now()

	e.mu.Lock()
	if e.state != stateRunning {
		e.mu.Unlock()
		return nil, ErrStopped
	}
	d := e.domains[req.Domain]
	e.mu.Unlock()
	if d == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDomain, req.Domain)
	}
	// The prefilter reads only immutable domain data, so its O(CU·BS·k)
	// path scan runs outside the engine lock — intake stays concurrent
	// across submitters even on large topologies.
	infeasible := d.filter.reject(req)

	e.mu.Lock()
	if e.state != stateRunning {
		e.mu.Unlock()
		return nil, ErrStopped
	}
	if d.names[req.Name] {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, req.Name)
	}
	e.met.submitted++
	if infeasible != "" {
		// Structurally infeasible: decided without touching the queue, a
		// batch, or any LP. The name is not reserved — a corrected
		// resubmission is welcome.
		e.met.fastRejected++
		e.mu.Unlock()
		t := newTicket()
		t.resolve(Outcome{Name: req.Name, FastRejected: true, Reason: infeasible})
		return t, nil
	}
	if e.queued >= e.cfg.QueueDepth {
		e.met.shed++
		e.mu.Unlock()
		return nil, ErrOverloaded
	}
	if e.perTenant[tenant] >= e.cfg.TenantCap {
		e.met.shed++
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q", ErrTenantCap, tenant)
	}
	t := newTicket()
	e.queued++
	e.perTenant[tenant]++
	d.names[req.Name] = true
	d.batch = append(d.batch, pending{req: req, ticket: t, submitted: now})
	var flush []pending
	if e.cfg.MaxBatch > 0 && len(d.batch) >= e.cfg.MaxBatch {
		flush, d.batch = d.batch, nil
	}
	if flush != nil {
		e.enq.Add(1)
	}
	e.mu.Unlock()

	if flush != nil {
		d.shard.jobs <- &roundJob{d: d, batch: flush}
		e.enq.Done()
	}
	return t, nil
}

// Flush forces a round for every domain with a non-empty batch. It returns
// after the rounds are enqueued, not after they are decided.
func (e *Engine) Flush() {
	e.mu.Lock()
	if e.state != stateRunning && e.state != stateDraining {
		e.mu.Unlock()
		return
	}
	var jobs []*roundJob
	for _, name := range e.domainNamesLocked() {
		d := e.domains[name]
		if len(d.batch) > 0 {
			var batch []pending
			batch, d.batch = d.batch, nil
			jobs = append(jobs, &roundJob{d: d, batch: batch})
		}
	}
	e.enq.Add(len(jobs))
	e.mu.Unlock()

	for _, j := range jobs {
		j.d.shard.jobs <- j
		e.enq.Done()
	}
}

// domainNamesLocked lists domains in sorted order (deterministic flushing).
func (e *Engine) domainNamesLocked() []string {
	names := make([]string, 0, len(e.domains))
	for n := range e.domains {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DecideRound synchronously runs one admission round for the domain: the
// current batch (possibly empty — committed reservations still re-optimize
// against the latest forecasts) is decided on the domain's shard and the
// full round report returned. This is the ctrlplane epoch entry point.
func (e *Engine) DecideRound(domainName string) (*Round, error) {
	if domainName == "" {
		domainName = DefaultDomain
	}
	e.mu.Lock()
	if e.state != stateRunning && e.state != stateDraining {
		e.mu.Unlock()
		return nil, ErrStopped
	}
	d := e.domains[domainName]
	if d == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownDomain, domainName)
	}
	var batch []pending
	batch, d.batch = d.batch, nil
	e.enq.Add(1)
	e.mu.Unlock()

	job := &roundJob{d: d, batch: batch, done: make(chan *Round, 1)}
	d.shard.jobs <- job
	e.enq.Done()
	r := <-job.done
	if r.Err != nil {
		return r, r.Err
	}
	return r, nil
}

// UpdateForecast installs a committed slice's current forecast view (λ̂, σ̂),
// the input that lets the next round drift costs/RHS only and re-enter the
// warm session instead of rebuilding it.
func (e *Engine) UpdateForecast(domainName, name string, lambdaHat, sigma float64) error {
	return e.UpdateForecasts(domainName, []ForecastUpdate{{Name: name, LambdaHat: lambdaHat, Sigma: sigma}})
}

// ForecastUpdate is one slice's fresh forecast view for UpdateForecasts.
type ForecastUpdate struct {
	Name      string
	LambdaHat float64
	Sigma     float64
}

// UpdateForecasts installs a batch of forecast views under one lock take —
// the closed-loop controller's per-epoch path, where every committed slice
// of the domain refreshes at once. Either all updates apply or none do
// (an unknown name fails the batch before any view is written).
func (e *Engine) UpdateForecasts(domainName string, ups []ForecastUpdate) error {
	d, err := e.domain(domainName)
	if err != nil {
		return err
	}
	d.dmu.Lock()
	defer d.dmu.Unlock()
	for _, u := range ups {
		if d.byName[u.Name] == nil {
			return fmt.Errorf("admission: no committed slice %q in domain %q", u.Name, d.name)
		}
	}
	if e.cfg.Log != nil && len(ups) > 0 {
		// Buffered append (no fsync): the record rides the next round's
		// group commit. Appending under dmu keeps the log's per-domain
		// order identical to the order the state mutations apply in.
		if err := e.cfg.Log.AppendForecasts(d.name, ups); err != nil {
			return fmt.Errorf("admission: wal append forecasts: %w", err)
		}
	}
	for _, u := range ups {
		m := d.byName[u.Name]
		m.lambdaHat = u.LambdaHat
		m.sigma = u.Sigma
	}
	return nil
}

// CommittedSlice is one committed slice's full engine-side state, the view
// the closed-loop controller scores yield against and refreshes forecasts
// for. Reserved and PathIdx are copies; mutating them changes nothing.
type CommittedSlice struct {
	Name   string
	Tenant string
	SLA    slice.SLA
	// LambdaHat and Sigma are the forecast view the last round solved with.
	LambdaHat float64
	Sigma     float64
	// Remaining is the lifetime left in epochs; CU the pinned placement.
	Remaining int
	CU        int
	// Reserved is the per-BS reservation z (Mb/s) from the latest round;
	// PathIdx the per-BS path choice into Paths(domain)[bs][CU].
	Reserved []float64
	PathIdx  []int
}

// CommittedDetail lists the domain's committed slices in admission order
// with their SLAs, forecast views and live reservations — the ledger hook:
// everything needed to assess realized yield against what is reserved.
func (e *Engine) CommittedDetail(domainName string) ([]CommittedSlice, error) {
	d, err := e.domain(domainName)
	if err != nil {
		return nil, err
	}
	d.dmu.Lock()
	defer d.dmu.Unlock()
	out := make([]CommittedSlice, len(d.committed))
	for i, m := range d.committed {
		out[i] = CommittedSlice{
			Name: m.name, Tenant: m.tenant, SLA: m.sla,
			LambdaHat: m.lambdaHat, Sigma: m.sigma,
			Remaining: m.remaining, CU: m.cu,
			Reserved: append([]float64(nil), m.reserved...),
			PathIdx:  append([]int(nil), m.pathIdx...),
		}
	}
	return out, nil
}

// Advance ticks the domain's epoch clock: committed lifetimes decrement and
// expired slices leave (their names become reusable). Returns the expired
// names in admission order.
func (e *Engine) Advance(domainName string) ([]string, error) {
	d, err := e.domain(domainName)
	if err != nil {
		return nil, err
	}
	d.dmu.Lock()
	if e.cfg.Log != nil {
		// Buffered like forecast records; durable with the next round's
		// fsync (or a snapshot/close sync). A lost tail advance is redone
		// deterministically by recovery's step completion.
		if err := e.cfg.Log.AppendAdvance(d.name); err != nil {
			d.dmu.Unlock()
			return nil, fmt.Errorf("admission: wal append advance: %w", err)
		}
	}
	var expired []string
	keep := d.committed[:0]
	for _, m := range d.committed {
		m.remaining--
		if m.remaining <= 0 {
			expired = append(expired, m.name)
			delete(d.byName, m.name)
		} else {
			keep = append(keep, m)
		}
	}
	for i := len(keep); i < len(d.committed); i++ {
		d.committed[i] = nil
	}
	d.committed = keep
	d.dmu.Unlock()

	if len(expired) > 0 {
		e.mu.Lock()
		for _, n := range expired {
			delete(d.names, n)
		}
		e.mu.Unlock()
	}
	return expired, nil
}

// ApplyTopology folds epoch-boundary capacity events (BS outage/recovery,
// degradation, operator join/leave) into the domain's live network. Events
// accumulate in arrival order on top of the base network the domain was
// added with; the next round solves against the new capacities and — the
// pointer having changed — rebuilds its solver cold, the safe path for a
// shape change. Structure never changes (events scale capacities only), so
// the precomputed path sets and the prefilter stay valid; the prefilter
// keeps screening against published capacity, which is advisory anyway —
// the solver is authoritative. The events are logged and fsynced before
// the state mutates, so kill-and-replay reproduces the same capacity
// trajectory bit for bit.
func (e *Engine) ApplyTopology(domainName string, events []topology.Event) error {
	d, err := e.domain(domainName)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return nil
	}
	d.dmu.Lock()
	defer d.dmu.Unlock()
	merged := make([]topology.Event, 0, len(d.topoEvents)+len(events))
	merged = append(merged, d.topoEvents...)
	merged = append(merged, events...)
	net, err := topology.Apply(d.cfg.Net, merged)
	if err != nil {
		return fmt.Errorf("admission: %w", err)
	}
	if e.cfg.Log != nil {
		// Durable before visible, like a round: a topology change alters
		// every subsequent decision, so it must survive a crash that any
		// later acked round survives.
		if lerr := e.cfg.Log.AppendTopology(d.name, events); lerr != nil {
			return fmt.Errorf("admission: wal append topology: %w", lerr)
		}
		if lerr := e.cfg.Log.SyncRound(); lerr != nil {
			return fmt.Errorf("admission: wal sync topology: %w", lerr)
		}
	}
	d.topoEvents = merged
	d.curNet = net
	return nil
}

// TopologyEvents returns the domain's accumulated capacity events in the
// order they were applied (a copy).
func (e *Engine) TopologyEvents(domainName string) ([]topology.Event, error) {
	d, err := e.domain(domainName)
	if err != nil {
		return nil, err
	}
	d.dmu.Lock()
	defer d.dmu.Unlock()
	return append([]topology.Event(nil), d.topoEvents...), nil
}

// Handover moves one committed slice between domains, preserving its ledger
// identity: the member object — name, tenant, SLA, forecast view, remaining
// lifetime, reservations — transfers intact; only the shard that solves for
// it changes. Both domains must share the slice's structural frame (same BS
// count, a valid CU index and path choices in the destination), the normal
// case for handover between overlapping operator footprints built from the
// same published topology. The move is logged and fsynced before any state
// mutates. This is the one engine path that holds two domain locks; they
// are always taken in domain-name order.
func (e *Engine) Handover(fromDomain, toDomain, name string) error {
	if fromDomain == "" {
		fromDomain = DefaultDomain
	}
	if toDomain == "" {
		toDomain = DefaultDomain
	}
	if name == "" {
		return fmt.Errorf("admission: handover needs a slice name")
	}
	if fromDomain == toDomain {
		return fmt.Errorf("admission: handover source and destination are both %q", fromDomain)
	}
	e.mu.Lock()
	if e.state == stateStopped {
		e.mu.Unlock()
		return ErrStopped
	}
	from, to := e.domains[fromDomain], e.domains[toDomain]
	if from == nil {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDomain, fromDomain)
	}
	if to == nil {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDomain, toDomain)
	}
	if to.names[name] {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q already present in domain %q", ErrDuplicate, name, toDomain)
	}
	// Reserve the name in the destination before dropping the intake lock;
	// released again on any failure below.
	to.names[name] = true
	e.mu.Unlock()

	first, second := from, to
	if second.name < first.name {
		first, second = second, first
	}
	first.dmu.Lock()
	second.dmu.Lock()
	fail := func(err error) error {
		second.dmu.Unlock()
		first.dmu.Unlock()
		e.mu.Lock()
		delete(to.names, name)
		e.mu.Unlock()
		return err
	}
	m := from.byName[name]
	if m == nil {
		return fail(fmt.Errorf("admission: no committed slice %q in domain %q", name, fromDomain))
	}
	if nbs := to.cfg.Net.NumBS(); len(m.reserved) != nbs {
		return fail(fmt.Errorf("admission: handover %q: reservation spans %d BSs, domain %q has %d",
			name, len(m.reserved), toDomain, nbs))
	}
	if m.cu < 0 || m.cu >= to.cfg.Net.NumCU() {
		return fail(fmt.Errorf("admission: handover %q: CU %d not present in domain %q", name, m.cu, toDomain))
	}
	for b, pi := range m.pathIdx {
		if pi < 0 || pi >= len(to.paths[b][m.cu]) {
			return fail(fmt.Errorf("admission: handover %q: path %d not available at BS %d in domain %q",
				name, pi, b, toDomain))
		}
	}
	if e.cfg.Log != nil {
		if lerr := e.cfg.Log.AppendHandover(fromDomain, toDomain, name); lerr != nil {
			return fail(fmt.Errorf("admission: wal append handover: %w", lerr))
		}
		if lerr := e.cfg.Log.SyncRound(); lerr != nil {
			return fail(fmt.Errorf("admission: wal sync handover: %w", lerr))
		}
	}
	delete(from.byName, name)
	for i, mm := range from.committed {
		if mm == m {
			from.committed = append(from.committed[:i], from.committed[i+1:]...)
			break
		}
	}
	to.committed = append(to.committed, m)
	to.byName[name] = m
	second.dmu.Unlock()
	first.dmu.Unlock()

	e.mu.Lock()
	delete(from.names, name)
	e.mu.Unlock()
	return nil
}

// Paths returns the domain's precomputed k-shortest path sets — the same
// P_{b,c} enumeration the rounds solve against, shared so callers (the
// ctrlplane programming path) need not recompute it. Read-only.
func (e *Engine) Paths(domainName string) ([][][]topology.Path, error) {
	d, err := e.domain(domainName)
	if err != nil {
		return nil, err
	}
	return d.paths, nil
}

// Committed lists the domain's committed slice names in admission order.
func (e *Engine) Committed(domainName string) ([]string, error) {
	d, err := e.domain(domainName)
	if err != nil {
		return nil, err
	}
	d.dmu.Lock()
	defer d.dmu.Unlock()
	out := make([]string, len(d.committed))
	for i, m := range d.committed {
		out[i] = m.name
	}
	return out, nil
}

func (e *Engine) domain(name string) (*domain, error) {
	if name == "" {
		name = DefaultDomain
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.domains[name]
	if d == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDomain, name)
	}
	return d, nil
}

// Drain stops intake, flushes every batch, and waits until all queued
// requests are decided (or ctx ends). Committed state stays intact; the
// engine still serves DecideRound/Advance until Stop.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if e.state == stateStopped {
		e.mu.Unlock()
		return nil
	}
	if e.state == stateNew {
		e.mu.Unlock()
		return fmt.Errorf("admission: drain before start")
	}
	e.state = stateDraining
	e.mu.Unlock()

	e.Flush()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		e.mu.Lock()
		q := e.queued
		e.mu.Unlock()
		if q == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Stop terminates the engine. Undecided requests fail with ErrStopped
// (call Drain first for a clean handover); shard workers finish any rounds
// already enqueued, then exit.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.state == stateStopped {
		e.mu.Unlock()
		return
	}
	started := e.state != stateNew
	e.state = stateStopped
	var orphans []pending
	for _, d := range e.domains {
		for _, p := range d.batch {
			delete(d.names, p.req.Name)
			e.queued--
			e.tenantDoneLocked(p.req.tenantKey())
			e.met.shed++
		}
		orphans = append(orphans, d.batch...)
		d.batch = nil
	}
	e.mu.Unlock()

	for _, p := range orphans {
		p.ticket.fail(ErrStopped)
	}
	if started {
		// No new sends can start (state is stopped); wait out in-flight
		// ones, then close the channels so workers drain and exit.
		e.enq.Wait()
		close(e.stopTicker)
		for _, sh := range e.shards {
			close(sh.jobs)
		}
		e.wg.Wait()
	}
}

func (e *Engine) tenantDoneLocked(tenant string) {
	if n := e.perTenant[tenant]; n <= 1 {
		delete(e.perTenant, tenant)
	} else {
		e.perTenant[tenant] = n - 1
	}
}

// runTicker drives timer-based flushing.
func (e *Engine) runTicker() {
	defer e.wg.Done()
	tick := time.NewTicker(e.cfg.FlushEvery)
	defer tick.Stop()
	for {
		select {
		case <-e.stopTicker:
			return
		case <-tick.C:
			e.Flush()
		}
	}
}

// runShard executes rounds until the job channel closes.
func (e *Engine) runShard(sh *shard) {
	defer e.wg.Done()
	for job := range sh.jobs {
		e.execRound(job)
	}
}

// execRound runs one admission round: canonical instance assembly, one
// solve on the domain's (warm) solver, commitment of admitted requests, and
// outcome delivery.
func (e *Engine) execRound(job *roundJob) {
	d := job.d
	start := time.Now()

	// Canonical batch order: sorted by name, so the instance — and with the
	// tie-broken solver, the decision — is independent of submission
	// interleaving and flush timing for a given round set.
	sort.Slice(job.batch, func(i, j int) bool { return job.batch[i].req.Name < job.batch[j].req.Name })

	d.dmu.Lock()
	r := &Round{Domain: d.name, Seq: d.rounds, BatchSize: len(job.batch)}
	specs := make([]core.TenantSpec, 0, len(d.committed)+len(job.batch))
	r.Names = make([]string, 0, cap(specs))
	for _, m := range d.committed {
		specs = append(specs, core.TenantSpec{
			Name: m.name, SLA: m.sla,
			LambdaHat: m.lambdaHat, Sigma: m.sigma,
			RemainingEpochs: m.remaining,
			Committed:       true, CommittedCU: m.cu,
		})
		r.Names = append(r.Names, m.name)
	}
	for _, p := range job.batch {
		specs = append(specs, newTenantSpec(p.req))
		r.Names = append(r.Names, p.req.Name)
	}

	var dec *core.Decision
	var err error
	if e.cfg.Log != nil && !job.replay {
		// Log-before-ack: the round's inputs (plus any forecast/advance
		// records buffered before them) become durable in one group fsync
		// before any outcome can reach a caller. A crash after this point
		// replays the round deterministically; a crash before it means no
		// caller was acked, so nothing is owed. A log failure poisons the
		// round instead of acking decisions that would not survive a crash.
		reqs := make([]Request, len(job.batch))
		for i, p := range job.batch {
			reqs[i] = p.req
		}
		if lerr := e.cfg.Log.AppendRound(d.name, r.Seq, reqs); lerr != nil {
			err = fmt.Errorf("wal append: %w", lerr)
		} else if lerr := e.cfg.Log.SyncRound(); lerr != nil {
			err = fmt.Errorf("wal sync: %w", lerr)
		}
	}
	switch {
	case err != nil:
		// Logging failed; decide nothing.
	case len(specs) == 0:
		dec = &core.Decision{} // nothing to decide, nothing to re-optimize
	case d.cfg.Executor != nil && !job.replay:
		// Remote solve: the executor sees the same canonical inputs the
		// local branch below would and is contractually bit-identical.
		// Replay deliberately stays on the local branch — recovery must
		// not depend on workers having rejoined.
		dec, err = d.cfg.Executor.SolveRound(d.name, r.Seq, d.topoEvents, specs)
	default:
		inst := &core.Instance{
			Net: d.curNet, Paths: d.paths, Tenants: specs,
			Overbook: d.cfg.overbook(), BigM: d.cfg.BigM, RiskHorizon: d.cfg.RiskHorizon,
		}
		dec, err = d.solveFn(inst)
	}

	outcomes := make([]Outcome, len(job.batch))
	if err != nil {
		r.Err = fmt.Errorf("admission: round %d in domain %q: %w", r.Seq, d.name, err)
	} else {
		r.Decision = dec
		// Committed slices stay admitted (constraint (13)); their
		// reservations re-track the latest forecasts.
		for i, m := range d.committed {
			if dec.Accepted[i] {
				m.cu = dec.CU[i]
				m.reserved = append(m.reserved[:0], dec.Z[i]...)
				m.pathIdx = append(m.pathIdx[:0], dec.PathIdx[i]...)
			}
		}
		base := len(d.committed)
		for bi, p := range job.batch {
			ti := base + bi
			out := Outcome{Name: p.req.Name, Round: r.Seq, Latency: time.Since(p.submitted)}
			if dec.Accepted[ti] {
				out.Admitted = true
				out.CU = dec.CU[ti]
				out.Reserved = append([]float64(nil), dec.Z[ti]...)
				out.PathIdx = append([]int(nil), dec.PathIdx[ti]...)
				m := &member{
					name: p.req.Name, tenant: p.req.tenantKey(),
					sla:       p.req.SLA,
					lambdaHat: specs[ti].LambdaHat, sigma: specs[ti].Sigma,
					remaining: specs[ti].RemainingEpochs,
					cu:        out.CU,
					reserved:  append([]float64(nil), dec.Z[ti]...),
					pathIdx:   append([]int(nil), dec.PathIdx[ti]...),
				}
				d.committed = append(d.committed, m)
				d.byName[m.name] = m
				r.Admitted = append(r.Admitted, m.name)
			} else {
				out.Reason = "rejected by solver"
				r.Rejected = append(r.Rejected, p.req.Name)
			}
			outcomes[bi] = out
		}
	}
	d.rounds++
	d.dmu.Unlock()

	roundMs := float64(time.Since(start)) / float64(time.Millisecond)
	if r.Err == nil && e.cfg.Ledger != nil {
		// Booked on replay too: the ledger snapshot predates the replayed
		// rounds, so each one re-books its expected revenue exactly once.
		e.cfg.Ledger.BookExpected(d.name, dec.Revenue())
	}
	if job.replay {
		// No tickets, no intake accounting, no metrics, no monitoring
		// samples: replay rebuilds decision state, not serving history.
		if job.done != nil {
			job.done <- r
		}
		return
	}

	e.mu.Lock()
	for bi, p := range job.batch {
		e.queued--
		e.tenantDoneLocked(p.req.tenantKey())
		switch {
		case r.Err != nil:
			e.met.failed++
			delete(d.names, p.req.Name)
		case outcomes[bi].Admitted:
			e.met.admitted++
		default:
			e.met.rejected++
			delete(d.names, p.req.Name) // rejected names may be re-offered
		}
		e.met.observeLatency(time.Since(p.submitted))
	}
	e.met.rounds++
	e.met.batchSum += uint64(len(job.batch))
	queueDepth := e.queued
	e.mu.Unlock()

	expected := 0.0
	if r.Err == nil {
		expected = dec.Revenue()
	}
	e.publishRound(d.name, r.Seq, len(job.batch), roundMs, queueDepth, expected)

	for bi, p := range job.batch {
		if r.Err != nil {
			p.ticket.fail(r.Err)
		} else {
			p.ticket.resolve(outcomes[bi])
		}
	}
	if job.done != nil {
		job.done <- r
	}
}

// newTenantSpec maps a fresh request to the optimizer's view: cold-start
// conservatism (λ̂ = Λ, σ̂ = 1) unless the caller supplied a forecast.
func newTenantSpec(req Request) core.TenantSpec {
	lam := req.SLA.RateMbps
	lhat := req.LambdaHat
	if lhat <= 0 {
		lhat = lam
	} else {
		lhat = math.Min(lhat, lam)
	}
	sigma := req.Sigma
	if sigma <= 0 || sigma > 1 {
		sigma = 1
	}
	remaining := req.SLA.Duration
	if remaining < 1 {
		remaining = 1
	}
	return core.TenantSpec{
		Name: req.Name, SLA: req.SLA,
		LambdaHat: lhat, Sigma: sigma,
		RemainingEpochs: remaining,
	}
}
