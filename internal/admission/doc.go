// Package admission turns the batch AC-RR orchestrator into an online,
// load-generator-scale serving layer: tenants submit slice requests
// continuously and the engine decides admit/reject in micro-batched rounds,
// at whatever concurrency the hardware allows, without ever changing what
// the paper's solver would have decided.
//
// The pipeline is
//
//	Submit → bounded queue → micro-batcher → domain shard → warm session
//
// with four load-bearing properties:
//
//  1. Backpressure, not collapse. The intake queue is bounded
//     (Config.QueueDepth) and per-tenant fair (Config.TenantCap): when the
//     solver cannot keep up, excess requests are shed synchronously with
//     ErrOverloaded / ErrTenantCap instead of growing an unbounded backlog.
//     Shedding is an explicit, counted outcome — the metrics snapshot is
//     how an operator sees it.
//
//  2. Micro-batching. Concurrent requests to one domain coalesce into a
//     single admission round — one AC-RR instance solve — flushed when the
//     batch reaches Config.MaxBatch, when Config.FlushEvery elapses, or
//     when the caller forces a round (Flush / DecideRound). Batching is
//     what makes the LP affordable per request: a round costs one solve
//     regardless of how many requests ride in it.
//
//  3. Warm sharded solving. Each operator domain is pinned to exactly one
//     shard (round-robin in registration order, so the placement is
//     deterministic and balanced), and every round of a domain executes serially on
//     that shard against the domain's own core.BendersSession. Rounds that
//     only drift forecasts therefore rebind the slave LP instead of
//     rebuilding it (PR 1/2's sameSolverShape machinery); rounds that
//     change the tenant set cold-rebuild, which is always correct. Shards
//     scale throughput across domains while keeping each domain's decision
//     stream strictly sequential. Because each session owns its lp.Basis —
//     and with it the sparse LU factors, scratch vectors and solution
//     buffers of the solver workspace — a shard's steady-state rounds run
//     allocation-free in the LP: solver memory is paid once per domain,
//     not once per round.
//
//  4. Determinism. A round's instance is built in canonical order —
//     committed slices in admission order, then the batch sorted by request
//     name — so the decision for a given round set is independent of
//     submission interleaving, shard count, and flush timing. Combined with
//     the solver's lexicographic tie-break (core.tieBreakBase) the engine's
//     decisions are bit-identical to a serial single-shard replay of the
//     same rounds, which is what the equality tests pin.
//
// A cheap capacity-headroom prefilter fast-rejects requests that are
// structurally infeasible — no CU reachable from every BS within the delay
// bound, or (under hard capacity constraints) a demand no topology resource
// could ever carry — before any LP is touched. The prefilter only rejects
// what the solver itself would reject, so it never changes outcomes, only
// the price of reaching them.
package admission
