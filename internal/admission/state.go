package admission

import (
	"fmt"

	"repro/internal/topology"
)

// This file is the engine's crash-recovery surface (used by internal/wal):
// ExportDomain captures a domain's recoverable solver-side state for a
// snapshot, RestoreDomain rehydrates it, and ReplayRound re-executes a
// logged round through the very same execRound path a live round takes —
// which is what makes the rebuilt state bit-identical to the pre-crash
// engine rather than approximately equal. Warm solver state (the Benders
// session, LP bases) is deliberately NOT part of this surface: it is a
// cache, it re-warms on the first post-recovery round, and the warm==cold
// decision-equality pins prove re-warming cannot move a decision.

// DomainState is the durable image of one domain's recoverable state: the
// round sequence number and the committed slices in admission order with
// their live forecast views and reservations.
type DomainState struct {
	Name      string           `json:"name"`
	Rounds    uint64           `json:"rounds"`
	Committed []CommittedSlice `json:"committed,omitempty"`
	// TopoEvents is the accumulated capacity-event stream (ApplyTopology,
	// in application order); restore re-derives the live network from it.
	TopoEvents []topology.Event `json:"topo_events,omitempty"`
}

// ExportDomain captures the domain's recoverable state. Safe to call
// between rounds (the snapshot path); the batch buffer is deliberately
// excluded — queued-but-undecided requests were never acked and are the
// submitter's to retry.
func (e *Engine) ExportDomain(domainName string) (DomainState, error) {
	d, err := e.domain(domainName)
	if err != nil {
		return DomainState{}, err
	}
	d.dmu.Lock()
	defer d.dmu.Unlock()
	st := DomainState{Name: d.name, Rounds: d.rounds,
		TopoEvents: append([]topology.Event(nil), d.topoEvents...)}
	for _, m := range d.committed {
		st.Committed = append(st.Committed, CommittedSlice{
			Name: m.name, Tenant: m.tenant, SLA: m.sla,
			LambdaHat: m.lambdaHat, Sigma: m.sigma,
			Remaining: m.remaining, CU: m.cu,
			Reserved: append([]float64(nil), m.reserved...),
			PathIdx:  append([]int(nil), m.pathIdx...),
		})
	}
	return st, nil
}

// RestoreDomain rehydrates a domain from an exported state. The domain
// must exist (AddDomain with the same config as the crashed engine) and
// must not have decided anything yet: restore happens once, before replay
// and before serving.
func (e *Engine) RestoreDomain(st DomainState) error {
	d, err := e.domain(st.Name)
	if err != nil {
		return err
	}
	d.dmu.Lock()
	if d.rounds != 0 || len(d.committed) != 0 || len(d.topoEvents) != 0 {
		d.dmu.Unlock()
		return fmt.Errorf("admission: domain %q already has state; restore must precede serving", d.name)
	}
	if len(st.TopoEvents) > 0 {
		net, err := topology.Apply(d.cfg.Net, st.TopoEvents)
		if err != nil {
			d.dmu.Unlock()
			return fmt.Errorf("admission: restore domain %q: %w", d.name, err)
		}
		d.topoEvents = append([]topology.Event(nil), st.TopoEvents...)
		d.curNet = net
	}
	for _, cs := range st.Committed {
		m := &member{
			name: cs.Name, tenant: cs.Tenant, sla: cs.SLA,
			lambdaHat: cs.LambdaHat, sigma: cs.Sigma,
			remaining: cs.Remaining, cu: cs.CU,
			reserved: append([]float64(nil), cs.Reserved...),
			pathIdx:  append([]int(nil), cs.PathIdx...),
		}
		d.committed = append(d.committed, m)
		d.byName[m.name] = m
	}
	d.rounds = st.Rounds
	d.dmu.Unlock()

	e.mu.Lock()
	for _, cs := range st.Committed {
		d.names[cs.Name] = true
	}
	e.mu.Unlock()
	return nil
}

// ReplayRound re-executes one logged round: the batch (as it was logged, in
// canonical order) is decided against the domain's current committed state
// on the live solver path, committing admissions exactly as the original
// round did. Recovery-time only — the engine must not have been started, so
// the round runs synchronously on the caller's goroutine with no shard
// worker racing it. The logged seq is checked against the domain's round
// clock; a mismatch means log and snapshot diverged and recovery must stop.
// The returned Round may carry a solver error (r.Err); that is a replayed
// outcome, not a replay failure — the original round failed identically.
func (e *Engine) ReplayRound(domainName string, seq uint64, batch []Request) (*Round, error) {
	if domainName == "" {
		domainName = DefaultDomain
	}
	e.mu.Lock()
	if e.state != stateNew {
		e.mu.Unlock()
		return nil, fmt.Errorf("admission: ReplayRound on a started engine")
	}
	d := e.domains[domainName]
	e.mu.Unlock()
	if d == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDomain, domainName)
	}
	d.dmu.Lock()
	rounds := d.rounds
	d.dmu.Unlock()
	if rounds != seq {
		return nil, fmt.Errorf("admission: replaying round %d but domain %q is at round %d — log and snapshot diverged", seq, domainName, rounds)
	}

	job := &roundJob{d: d, batch: make([]pending, len(batch)), replay: true, done: make(chan *Round, 1)}
	for i, req := range batch {
		if req.Domain == "" {
			req.Domain = DefaultDomain
		}
		job.batch[i] = pending{req: req}
	}
	e.execRound(job)
	r := <-job.done

	if r.Err == nil {
		// The live path reserves names at Submit; replay bypasses intake,
		// so re-reserve what the round committed (rejected names stay free,
		// exactly the live end state).
		e.mu.Lock()
		for _, n := range r.Admitted {
			d.names[n] = true
		}
		e.mu.Unlock()
	}
	return r, nil
}
