package admission

import (
	"sort"
	"time"

	"repro/internal/monitor"
)

// latencyWindow bounds the decision-latency sample ring the quantiles are
// computed over; at load-generator rates this covers the last few seconds
// of traffic, which is what a p99 should describe.
const latencyWindow = 4096

// metrics is the engine's internal counter block (guarded by Engine.mu).
type metrics struct {
	submitted    uint64 // Submit calls that reached intake accounting
	admitted     uint64
	rejected     uint64 // solver rejections
	fastRejected uint64 // prefilter rejections
	shed         uint64 // ErrOverloaded + ErrTenantCap + stop-orphaned
	failed       uint64 // solver errors

	rounds   uint64
	batchSum uint64

	lat    []time.Duration // latency ring
	latIdx int
	latN   int
}

func newMetrics() metrics {
	return metrics{lat: make([]time.Duration, latencyWindow)}
}

func (m *metrics) observeLatency(d time.Duration) {
	m.lat[m.latIdx] = d
	m.latIdx = (m.latIdx + 1) % len(m.lat)
	if m.latN < len(m.lat) {
		m.latN++
	}
}

// Snapshot is the engine's public metrics view.
type Snapshot struct {
	// Intake counters.
	Submitted    uint64 `json:"submitted"`
	Admitted     uint64 `json:"admitted"`
	Rejected     uint64 `json:"rejected"`
	FastRejected uint64 `json:"fast_rejected"`
	Shed         uint64 `json:"shed"`
	Failed       uint64 `json:"failed"`

	// QueueDepth is the current number of accepted-but-undecided requests.
	QueueDepth int `json:"queue_depth"`

	// Rounds and MeanBatch describe batching efficiency: decisions per LP
	// solve is the whole point of the micro-batcher.
	Rounds    uint64  `json:"rounds"`
	MeanBatch float64 `json:"mean_batch"`

	// Decision latency quantiles (submit → outcome) over the recent window.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
}

// Metrics returns a consistent snapshot of the engine's counters.
func (e *Engine) Metrics() Snapshot {
	e.mu.Lock()
	s := Snapshot{
		Submitted:    e.met.submitted,
		Admitted:     e.met.admitted,
		Rejected:     e.met.rejected,
		FastRejected: e.met.fastRejected,
		Shed:         e.met.shed,
		Failed:       e.met.failed,
		QueueDepth:   e.queued,
		Rounds:       e.met.rounds,
	}
	if e.met.rounds > 0 {
		s.MeanBatch = float64(e.met.batchSum) / float64(e.met.rounds)
	}
	lat := make([]time.Duration, e.met.latN)
	if e.met.latN == len(e.met.lat) {
		copy(lat, e.met.lat)
	} else {
		copy(lat, e.met.lat[:e.met.latN])
	}
	e.mu.Unlock()

	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.LatencyP50 = quantile(lat, 0.50)
		s.LatencyP99 = quantile(lat, 0.99)
	}
	return s
}

// quantile reads the q-th quantile from a sorted sample (nearest rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// publishRound surfaces one round's vitals through the monitoring pipeline
// (§2.2.2's store), tagged per domain with the round number as the epoch:
// the same backend that carries slice load samples carries the serving
// layer's own health.
func (e *Engine) publishRound(domain string, seq uint64, batch int, roundMs float64, queueDepth int, expected float64) {
	if e.cfg.Store == nil {
		return
	}
	epoch := int(seq)
	e.cfg.Store.Add(monitor.Sample{
		Slice: "admission", Metric: "round_batch", Element: domain,
		Epoch: epoch, Value: float64(batch),
	})
	e.cfg.Store.Add(monitor.Sample{
		Slice: "admission", Metric: "round_ms", Element: domain,
		Epoch: epoch, Value: roundMs,
	})
	e.cfg.Store.Add(monitor.Sample{
		Slice: "admission", Metric: "queue_depth", Element: domain,
		Epoch: epoch, Value: float64(queueDepth),
	})
	// The solver's own estimate of the round's net revenue (−Ψ): with the
	// realized side booked by the closed loop, the store carries both
	// halves of the yield comparison the paper's Fig. 8 makes.
	e.cfg.Store.Add(monitor.Sample{
		Slice: "admission", Metric: "round_expected_revenue", Element: domain,
		Epoch: epoch, Value: expected,
	})
}
