package admission

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/topology"
)

// equalityEpochs caps the replayed horizon: 10 epochs cover every archetype
// event of interest (batch arrival, bursts, the CI-sized flash-crowd spike
// at epoch 4 and its expiry) while keeping the solves affordable.
const equalityEpochs = 10

// ciSized mirrors the scenario test suite's convention: shrink each
// archetype so exact solvers stay fast (also under -race) while every
// structural feature — arrival process, class mix, commitment churn —
// survives.
func ciSized(s scenario.Spec) scenario.Spec {
	if s.Tenants > 4 {
		s.Tenants = 4
	}
	s.Epochs = equalityEpochs
	if s.Arrivals.Kind == scenario.FlashCrowd {
		s.Arrivals.SpikeEpoch = 4
		s.Arrivals.SpikeSize = 2
	}
	return s
}

// driftView is the deterministic stand-in for a forecaster: the (λ̂, σ̂) a
// committed slice reports at epoch t. It depends only on (name, epoch), so
// the engine and the serial reference feed their solvers identical drift —
// low enough σ̂ that reservations genuinely shrink, varied enough that every
// steady epoch moves costs and RHS (the warm-rebind path).
func driftView(name string, sla slice.SLA, t int) (lambdaHat, sigma float64) {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	phase := float64(h%97) + 0.7*float64(t)
	frac := 0.25 + 0.2*(math.Sin(phase)+1)/2 // λ̂ ∈ [0.25Λ, 0.45Λ]
	return frac * sla.RateMbps, 0.08 + 0.04*(math.Cos(phase)+1)/2
}

// refRequest is one tenant request in flight through the replay protocol.
type refRequest struct {
	name    string
	sla     slice.SLA
	arrival int
}

// refMember is a committed slice in the serial reference.
type refMember struct {
	name      string
	sla       slice.SLA
	lambdaHat float64
	sigma     float64
	remaining int
	cu        int
}

// requestsOf converts a compiled scenario into the admission request stream
// (names, SLAs, arrival epochs — the solver-facing view of cfg.Slices).
func requestsOf(cfg sim.Config) []refRequest {
	reqs := make([]refRequest, len(cfg.Slices))
	for i, sp := range cfg.Slices {
		sla := slice.SLA{Template: sp.Template, MeanMbps: sp.MeanMbps, Duration: sp.Duration}.
			WithPenaltyFactor(sp.PenaltyFactor)
		reqs[i] = refRequest{name: sp.Name, sla: sla, arrival: sp.ArrivalEpoch}
	}
	return reqs
}

// serialReplay runs the admission protocol on a single goroutine with none
// of the engine's machinery — no queue, no batcher, no shards — solving
// each epoch with a plain serial session: the ground truth the engine must
// match decision-for-decision. (Warm-vs-cold solver equivalence is its own
// contract, pinned by the internal/core and internal/sim equality tests;
// this test isolates the serving layer on top.)
func serialReplay(t *testing.T, cfg sim.Config, reqs []refRequest, algorithm string, reoffer bool) []string {
	t.Helper()
	paths := cfg.Net.Paths(cfg.KPaths)
	sched, err := topology.NewSchedule(cfg.Net, cfg.Events)
	if err != nil {
		t.Fatal(err)
	}
	var solve func(inst *core.Instance) (*core.Decision, error)
	switch algorithm {
	case "benders":
		solve = core.NewBendersSession(core.BendersOptions{}).Solve
	case "kac":
		solve = func(inst *core.Instance) (*core.Decision, error) {
			return core.SolveKAC(inst, core.KACOptions{})
		}
	default:
		solve = core.SolveDirect
	}

	var committed []*refMember
	var queue []refRequest // undecided (arrived or re-offered) requests
	var lines []string
	for epoch := 0; epoch < equalityEpochs; epoch++ {
		// Each request arrives exactly once; the re-offered rejected ones
		// are already in the queue.
		for _, r := range reqs {
			if r.arrival == epoch {
				queue = append(queue, r)
			}
		}
		batch := append([]refRequest(nil), queue...)
		sort.Slice(batch, func(i, j int) bool { return batch[i].name < batch[j].name })

		for _, m := range committed {
			m.lambdaHat, m.sigma = driftView(m.name, m.sla, epoch)
		}
		specs := make([]core.TenantSpec, 0, len(committed)+len(batch))
		for _, m := range committed {
			specs = append(specs, core.TenantSpec{
				Name: m.name, SLA: m.sla, LambdaHat: m.lambdaHat, Sigma: m.sigma,
				RemainingEpochs: m.remaining, Committed: true, CommittedCU: m.cu,
			})
		}
		for _, r := range batch {
			specs = append(specs, newTenantSpec(Request{Name: r.name, SLA: r.sla}))
		}
		var dec *core.Decision
		if len(specs) > 0 {
			inst := &core.Instance{
				Net: sched.At(epoch), Paths: paths, Tenants: specs,
				Overbook: algorithm != "no-overbooking", BigM: 1e4,
			}
			var err error
			dec, err = solve(inst)
			if err != nil {
				t.Fatalf("reference epoch %d: %v", epoch, err)
			}
		} else {
			dec = &core.Decision{}
		}
		lines = append(lines, fingerprint(epoch, specNames(specs), dec))

		// Commit, re-offer, advance.
		base := len(committed)
		queue = queue[:0]
		for bi, r := range batch {
			if dec.Accepted[base+bi] {
				committed = append(committed, &refMember{
					name: r.name, sla: r.sla,
					lambdaHat: r.sla.RateMbps, sigma: 1,
					remaining: maxInt(r.sla.Duration, 1),
					cu:        dec.CU[base+bi],
				})
			} else if reoffer {
				queue = append(queue, r)
			}
		}
		keep := committed[:0]
		for _, m := range committed {
			m.remaining--
			if m.remaining > 0 {
				keep = append(keep, m)
			}
		}
		committed = keep
	}
	return lines
}

// engineReplay drives the same protocol through the engine: arrivals are
// submitted concurrently (order must not matter), each epoch is one
// DecideRound, re-offers are resubmissions, lifecycle is Advance.
func engineReplay(t *testing.T, cfg sim.Config, reqs []refRequest, algorithm string, reoffer bool, shards int) []string {
	t.Helper()
	e := New(Config{Shards: shards, QueueDepth: 4 * len(reqs)})
	if err := e.AddDomain("", DomainConfig{Net: cfg.Net, KPaths: cfg.KPaths, Algorithm: algorithm}); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// The engine receives the same capacity trajectory as the serial
	// reference's schedule: the epoch-sorted event stream, delivered at each
	// epoch boundary via ApplyTopology (set semantics make the accumulated
	// stream equal to the schedule's prefix at every epoch).
	sched, err := topology.NewSchedule(cfg.Net, cfg.Events)
	if err != nil {
		t.Fatal(err)
	}
	sortedEvents := sched.Events()

	type live struct {
		req refRequest
		tk  *Ticket
	}
	var inflight []live
	var lines []string
	for epoch := 0; epoch < equalityEpochs; epoch++ {
		var fire []topology.Event
		for _, ev := range sortedEvents {
			if ev.Epoch == epoch {
				fire = append(fire, ev)
			}
		}
		if len(fire) > 0 {
			if err := e.ApplyTopology("", fire); err != nil {
				t.Fatal(err)
			}
		}
		var offer []refRequest
		for _, r := range reqs {
			if r.arrival == epoch {
				offer = append(offer, r)
			}
		}
		// Concurrent submission: the canonical round order must erase
		// whatever interleaving the goroutines produce.
		tks := make([]*Ticket, len(offer))
		var wg sync.WaitGroup
		for i := range offer {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tk, err := e.Submit(Request{Name: offer[i].name, SLA: offer[i].sla})
				if err != nil {
					t.Errorf("submit %s: %v", offer[i].name, err)
					return
				}
				tks[i] = tk
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("epoch %d: submission failed", epoch)
		}
		for i := range offer {
			inflight = append(inflight, live{req: offer[i], tk: tks[i]})
		}

		for _, name := range mustCommitted(t, e) {
			lh, sg := driftView(name, slaOf(reqs, name), epoch)
			if err := e.UpdateForecast("", name, lh, sg); err != nil {
				t.Fatal(err)
			}
		}
		r, err := e.DecideRound("")
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, fingerprint(epoch, r.Names, r.Decision))

		// Re-offer rejected requests next epoch by resubmission.
		var still []live
		for _, lv := range inflight {
			out, ok := lv.tk.Outcome()
			if !ok {
				t.Fatalf("epoch %d: ticket %s undecided after round", epoch, lv.req.name)
			}
			if !out.Admitted && reoffer {
				tk, err := e.Submit(Request{Name: lv.req.name, SLA: lv.req.sla})
				if err != nil {
					t.Fatalf("re-offer %s: %v", lv.req.name, err)
				}
				still = append(still, live{req: lv.req, tk: tk})
			}
		}
		inflight = still
		if _, err := e.Advance(""); err != nil {
			t.Fatal(err)
		}
	}
	return lines
}

// TestEngineMatchesSerialOnArchetypes is the acceptance gate: on every
// scenario archetype, the engine — warm sessions, canonical batching,
// concurrent submitters, any shard count — produces the same admission
// decisions, placements and objective as a cold serial replay.
func TestEngineMatchesSerialOnArchetypes(t *testing.T) {
	for _, spec := range scenario.Archetypes() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			spec := ciSized(spec)
			cfg, err := spec.Compile(42)
			if err != nil {
				t.Fatal(err)
			}
			reqs := requestsOf(cfg)
			want := serialReplay(t, cfg, reqs, spec.Algorithm, spec.ReofferPending)
			for _, shards := range []int{1, 3} {
				got := engineReplay(t, cfg, reqs, spec.Algorithm, spec.ReofferPending, shards)
				if diff := firstDiff(want, got); diff != "" {
					t.Fatalf("shards=%d diverged from serial reference:\n%s", shards, diff)
				}
			}
		})
	}
}

// --- small helpers ---

func fingerprint(epoch int, names []string, dec *core.Decision) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d exp=%.4f:", epoch, dec.Revenue())
	for i, name := range names {
		if i < len(dec.Accepted) && dec.Accepted[i] {
			fmt.Fprintf(&b, " %s@cu%d%v", name, dec.CU[i], dec.PathIdx[i])
		}
	}
	return b.String()
}

func firstDiff(want, got []string) string {
	for i := range want {
		if i >= len(got) || want[i] != got[i] {
			g := "<missing>"
			if i < len(got) {
				g = got[i]
			}
			return fmt.Sprintf("epoch %d:\n  serial: %s\n  engine: %s", i, want[i], g)
		}
	}
	return ""
}

func specNames(specs []core.TenantSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func slaOf(reqs []refRequest, name string) slice.SLA {
	for _, r := range reqs {
		if r.name == name {
			return r.sla
		}
	}
	return slice.SLA{}
}

func mustCommitted(t *testing.T, e *Engine) []string {
	t.Helper()
	names, err := e.Committed("")
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func containsReq(rs []refRequest, name string) bool {
	for _, r := range rs {
		if r.name == name {
			return true
		}
	}
	return false
}

func containsMember(ms []*refMember, name string) bool {
	for _, m := range ms {
		if m.name == name {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
