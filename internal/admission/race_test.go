package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/slice"
	"repro/internal/topology"
)

// TestRaceOutageHandoverNoLostSlices is the adversarial cousin of
// TestConcurrentStressConservation: submitters hammer two domains while a
// chaos goroutine storms BS outages and recoveries into one of them
// mid-wave, and committed slices hand over between the domains at every
// wave boundary. Run under -race (make test-race / CI) it is the data-race
// gate for the topology and handover paths; its own assertions are
// conservation — every submission decided exactly once, counters exact —
// and no lost slices: every admitted slice is committed in exactly one
// domain afterward, handed-over slices only in their destination.
func TestRaceOutageHandoverNoLostSlices(t *testing.T) {
	const (
		goroutines = 8
		perWave    = 2
		waves      = 6
		toggles    = 32 // outage/recovery flips per wave, racing the submitters
	)
	e := New(Config{Shards: 4, QueueDepth: 256, MaxBatch: 4, FlushEvery: 500 * time.Microsecond})
	for _, d := range []string{"a", "b"} {
		if err := e.AddDomain(d, DomainConfig{Net: topology.Testbed(), Algorithm: "direct"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	type sub struct {
		name string
		tk   *Ticket
	}
	var (
		mu      sync.Mutex
		tickets []sub
		shed    int
	)
	handed := map[string]bool{}

	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func(wave int) {
			defer wg.Done()
			for i := 0; i < toggles; i++ {
				var ev topology.Event
				if i%2 == 0 {
					ev = topology.BSOutage(wave, i/2%2)
				} else {
					ev = topology.BSRecover(wave, i/2%2)
				}
				if err := e.ApplyTopology("a", []topology.Event{ev}); err != nil {
					t.Errorf("apply topology: %v", err)
					return
				}
				if _, err := e.TopologyEvents("a"); err != nil {
					t.Errorf("read topology: %v", err)
					return
				}
			}
		}(wave)
		for g := 0; g < goroutines; g++ {
			for k := 0; k < perWave; k++ {
				wg.Add(1)
				go func(g, k int) {
					defer wg.Done()
					dom := "a"
					if g%2 == 1 {
						dom = "b"
					}
					name := fmt.Sprintf("w%d-g%d-k%d", wave, g, k)
					tk, err := e.Submit(Request{
						Domain: dom,
						Tenant: fmt.Sprintf("tenant%d", g%4),
						Name:   name,
						SLA:    slice.SLA{Template: slice.Table1(slice.EMBB), Duration: 64}.WithPenaltyFactor(1),
					})
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrTenantCap) {
							t.Errorf("submit %s: %v", name, err)
						}
						shed++
						return
					}
					tickets = append(tickets, sub{name: name, tk: tk})
				}(g, k)
			}
		}
		wg.Wait()
		if t.Failed() {
			t.Fatal("wave failed")
		}

		for _, dom := range []string{"a", "b"} {
			if _, err := e.DecideRound(dom); err != nil {
				t.Fatal(err)
			}
		}
		// Hand the oldest committed a-slice not yet moved over to b — the
		// epoch-boundary migration racing nothing, as in production.
		names, err := e.Committed("a")
		if err != nil {
			t.Fatal(err)
		}
		if len(names) > 0 {
			if err := e.Handover("a", "b", names[0]); err != nil {
				t.Fatalf("handover %s: %v", names[0], err)
			}
			handed[names[0]] = true
		}
		for _, dom := range []string{"a", "b"} {
			exp, err := e.Advance(dom)
			if err != nil {
				t.Fatal(err)
			}
			if len(exp) != 0 {
				t.Fatalf("unexpected expiry %v (durations outlive the run)", exp)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Conservation: one decision per accepted submission, counters exact.
	admittedNames := map[string]bool{}
	var admitted, rejected uint64
	for _, s := range tickets {
		out, ok := s.tk.Outcome()
		if !ok {
			t.Fatalf("ticket %s undecided after drain (err=%v)", s.name, s.tk.Err())
		}
		if admittedNames[s.name] {
			t.Fatalf("duplicate decision for %s", s.name)
		}
		if out.Admitted {
			admittedNames[s.name] = true
			admitted++
		} else {
			rejected++
		}
	}
	m := e.Metrics()
	if m.Submitted != uint64(len(tickets)+shed) {
		t.Fatalf("submitted %d, want %d", m.Submitted, len(tickets)+shed)
	}
	if m.Admitted != admitted || m.Rejected+m.FastRejected != rejected || m.Shed != uint64(shed) || m.Failed != 0 {
		t.Fatalf("counters %+v vs observed admitted=%d rejected=%d shed=%d", m, admitted, rejected, shed)
	}
	if m.Admitted+m.Rejected+m.FastRejected+m.Shed != m.Submitted {
		t.Fatalf("conservation broken: %+v", m)
	}

	// No lost slices: every admitted slice is committed in exactly one
	// domain, and every handed-over slice lives in b, not a.
	inA, err := e.Committed("a")
	if err != nil {
		t.Fatal(err)
	}
	inB, err := e.Committed("b")
	if err != nil {
		t.Fatal(err)
	}
	where := map[string]string{}
	for _, n := range inA {
		where[n] = "a"
	}
	for _, n := range inB {
		if where[n] != "" {
			t.Fatalf("slice %s committed in both domains", n)
		}
		where[n] = "b"
	}
	if len(where) != len(admittedNames) {
		t.Fatalf("committed %d slices, admitted %d", len(where), len(admittedNames))
	}
	for n := range admittedNames {
		if where[n] == "" {
			t.Fatalf("admitted slice %s lost (committed nowhere)", n)
		}
	}
	for n := range handed {
		if where[n] != "b" {
			t.Fatalf("handed-over slice %s is in %q, want b", n, where[n])
		}
	}
}
