package traffic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianStatistics(t *testing.T) {
	g := NewGaussian(50, 10, 0, 1)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Sample(0, i)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-50) > 0.5 {
		t.Errorf("mean = %v, want ≈50", mean)
	}
	if math.Abs(std-10) > 0.5 {
		t.Errorf("std = %v, want ≈10", std)
	}
	if g.Mean() != 50 {
		t.Error("Mean() wrong")
	}
}

func TestGaussianClipping(t *testing.T) {
	g := NewGaussian(5, 50, 30, 2)
	for i := 0; i < 5000; i++ {
		v := g.Sample(0, i)
		if v < 0 || v > 30 {
			t.Fatalf("sample %v outside [0, 30]", v)
		}
	}
}

func TestConstant(t *testing.T) {
	c := Constant{MeanMbps: 10}
	for i := 0; i < 10; i++ {
		if c.Sample(i, i) != 10 {
			t.Fatal("mMTC traffic must be deterministic")
		}
	}
	if c.Mean() != 10 {
		t.Error("Mean() wrong")
	}
}

func TestDiurnalShape(t *testing.T) {
	d := NewDiurnal(10, 100, 24, 12, 0, 3)
	// Trough at t=0, crest at t=12.
	lo := d.Sample(0, 0)
	hi := d.Sample(12, 0)
	if !(hi > lo*5) {
		t.Errorf("diurnal crest %v not well above trough %v", hi, lo)
	}
	// Periodic: t and t+24 match when jitter is zero.
	if math.Abs(d.Sample(3, 0)-d.Sample(27, 0)) > 1e-9 {
		t.Error("diurnal process must repeat every period")
	}
	if d.Mean() != 55 {
		t.Errorf("Mean() = %v, want 55", d.Mean())
	}
}

func TestDiurnalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDiurnal(1, 2, 1, 12, 0, 1)
}

func TestEpochPeakIsMax(t *testing.T) {
	g := NewGaussian(50, 20, 0, 4)
	// Re-seed an identical generator to compare sample-by-sample.
	g2 := NewGaussian(50, 20, 0, 4)
	peak := EpochPeak(g, 7, 12)
	max := 0.0
	for _, v := range EpochSamples(g2, 7, 12) {
		if v > max {
			max = v
		}
	}
	if peak != max {
		t.Errorf("EpochPeak = %v, max sample = %v", peak, max)
	}
}

// TestQuickPeakDominatesSamples: the max-aggregation the paper uses to
// bound under-allocation must dominate every sample and the process mean
// cannot be exceeded by the trough of a non-negative process.
func TestQuickPeakDominatesSamples(t *testing.T) {
	f := func(seed int64, mean, std uint8, epoch uint8) bool {
		g := NewGaussian(float64(mean), float64(std)/4, 0, seed)
		g2 := NewGaussian(float64(mean), float64(std)/4, 0, seed)
		peak := EpochPeak(g, int(epoch), 12)
		for _, v := range EpochSamples(g2, int(epoch), 12) {
			if v > peak+1e-12 || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicSeeding(t *testing.T) {
	a := NewGaussian(50, 10, 0, 99)
	b := NewGaussian(50, 10, 0, 99)
	for i := 0; i < 100; i++ {
		if a.Sample(0, i) != b.Sample(0, i) {
			t.Fatal("same seed must give same stream")
		}
	}
}
