package traffic

import (
	"math"
	"math/rand"
)

// Generator produces one network-load sample (Mb/s) per monitoring slot θ.
type Generator interface {
	// Sample returns the load of monitoring slot θ of decision epoch t.
	Sample(t, theta int) float64
	// Mean returns the long-run mean load of the process, used by the
	// scenario builders to parameterize λ̄ = αΛ.
	Mean() float64
}

// Gaussian is the homogeneous-scenario process: i.i.d. truncated normal
// samples with mean λ̄ and standard deviation σ, clipped at zero and at the
// physical ceiling (users cannot exceed the radio they are given, but they
// can exceed their SLA — the middlebox handles that).
type Gaussian struct {
	MeanMbps float64
	StdMbps  float64
	CapMbps  float64 // physical ceiling; 0 = uncapped
	rng      *rand.Rand
}

// NewGaussian returns a seeded Gaussian load process.
func NewGaussian(mean, std, capMbps float64, seed int64) *Gaussian {
	return &Gaussian{MeanMbps: mean, StdMbps: std, CapMbps: capMbps,
		rng: rand.New(rand.NewSource(seed))}
}

// Sample implements Generator.
func (g *Gaussian) Sample(t, theta int) float64 {
	v := g.MeanMbps + g.rng.NormFloat64()*g.StdMbps
	if v < 0 {
		v = 0
	}
	if g.CapMbps > 0 && v > g.CapMbps {
		v = g.CapMbps
	}
	return v
}

// Mean implements Generator.
func (g *Gaussian) Mean() float64 { return g.MeanMbps }

// Constant is the deterministic mMTC process (σ_mMTC = 0 in Table 1).
type Constant struct{ MeanMbps float64 }

// Sample implements Generator.
func (c Constant) Sample(t, theta int) float64 { return c.MeanMbps }

// Mean implements Generator.
func (c Constant) Mean() float64 { return c.MeanMbps }

// Diurnal follows the classic mobile-network day shape: a sinusoid with a
// morning ramp and evening peak plus Gaussian jitter, repeating every
// PeriodEpochs. It exercises the seasonal tracking of the Holt-Winters
// forecaster the way real slice traffic does (§2.2.2 cites [36] for this
// periodicity).
type Diurnal struct {
	BaseMbps        float64 // trough level
	PeakMbps        float64 // crest level
	PeriodEpochs    int     // epochs per day
	JitterMbps      float64
	SamplesPerEpoch int
	rng             *rand.Rand
}

// NewDiurnal returns a seeded diurnal load process.
func NewDiurnal(base, peak float64, periodEpochs, samplesPerEpoch int, jitter float64, seed int64) *Diurnal {
	if periodEpochs < 2 {
		panic("traffic: diurnal period must be >= 2 epochs")
	}
	return &Diurnal{BaseMbps: base, PeakMbps: peak, PeriodEpochs: periodEpochs,
		SamplesPerEpoch: samplesPerEpoch, JitterMbps: jitter,
		rng: rand.New(rand.NewSource(seed))}
}

// Sample implements Generator. The phase advances smoothly within the
// epoch so per-sample maxima reflect intra-epoch growth.
func (d *Diurnal) Sample(t, theta int) float64 {
	frac := float64(t) + float64(theta)/math.Max(1, float64(d.SamplesPerEpoch))
	phase := 2 * math.Pi * frac / float64(d.PeriodEpochs)
	// Shift so the minimum lands at t=0 (early morning).
	level := d.BaseMbps + (d.PeakMbps-d.BaseMbps)*(1-math.Cos(phase))/2
	v := level + d.rng.NormFloat64()*d.JitterMbps
	if v < 0 {
		v = 0
	}
	return v
}

// Mean implements Generator.
func (d *Diurnal) Mean() float64 { return (d.BaseMbps + d.PeakMbps) / 2 }

// LogNormal is the heavy-tailed load process the flash-crowd and
// heavy-tail scenarios use: most samples sit below the mean but the upper
// tail reaches far past what a Gaussian with the same moments would
// produce, stressing the peak-tracking forecaster and the overbooking risk
// term. Parameterized by the target mean and standard deviation of the
// samples (moment-matched, not by the underlying normal's µ/σ).
type LogNormal struct {
	MeanMbps float64
	StdMbps  float64
	CapMbps  float64 // physical ceiling; 0 = uncapped
	mu, sig  float64
	rng      *rand.Rand
}

// NewLogNormal returns a seeded heavy-tailed load process whose samples
// have the given mean and standard deviation.
func NewLogNormal(mean, std, capMbps float64, seed int64) *LogNormal {
	if mean <= 0 {
		panic("traffic: lognormal needs a positive mean")
	}
	cv2 := (std / mean) * (std / mean)
	sig2 := math.Log(1 + cv2)
	return &LogNormal{
		MeanMbps: mean, StdMbps: std, CapMbps: capMbps,
		mu: math.Log(mean) - sig2/2, sig: math.Sqrt(sig2),
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Sample implements Generator.
func (l *LogNormal) Sample(t, theta int) float64 {
	v := math.Exp(l.mu + l.rng.NormFloat64()*l.sig)
	if l.CapMbps > 0 && v > l.CapMbps {
		v = l.CapMbps
	}
	return v
}

// Mean implements Generator.
func (l *LogNormal) Mean() float64 { return l.MeanMbps }

// EpochPeak draws the κ monitoring samples of epoch t and returns their
// maximum — exactly the λ(t) = max{λ(θ)} aggregation of §2.2.2 that the
// monitoring block feeds to the forecaster.
func EpochPeak(g Generator, t, samplesPerEpoch int) float64 {
	peak := 0.0
	for theta := 0; theta < samplesPerEpoch; theta++ {
		if v := g.Sample(t, theta); v > peak {
			peak = v
		}
	}
	return peak
}

// EpochSamples returns all κ monitoring samples of epoch t.
func EpochSamples(g Generator, t, samplesPerEpoch int) []float64 {
	out := make([]float64, samplesPerEpoch)
	for theta := range out {
		out[theta] = g.Sample(t, theta)
	}
	return out
}
