// Package traffic generates the vertical-service load processes the
// evaluation uses: per-monitoring-sample Gaussian demand with configurable
// mean and standard deviation (§4.3.2: λ(θ) ~ N(λ̄, σ) with λ̄ = αΛ),
// deterministic mMTC streams, and diurnal day-shaped profiles for the
// testbed experiment of §5. It stands in for the mgen traffic VMs of the
// paper's proof-of-concept.
package traffic
