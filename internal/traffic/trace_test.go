package traffic

import (
	"math"
	"testing"
)

func TestTraceReplayAndRotation(t *testing.T) {
	samples := []float64{10, 20, 30, 40}
	tr := NewTrace(samples, 2, 0)
	// Epoch-major walk: (t,θ) -> t*κ+θ.
	got := []float64{tr.Sample(0, 0), tr.Sample(0, 1), tr.Sample(1, 0), tr.Sample(1, 1)}
	for i, want := range samples {
		if got[i] != want {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want)
		}
	}
	// Wraps past the end.
	if v := tr.Sample(2, 0); v != 10 {
		t.Errorf("wrapped sample = %v, want 10", v)
	}
	// Rotation shifts the start point; negative offsets normalize.
	if v := NewTrace(samples, 2, 1).Sample(0, 0); v != 20 {
		t.Errorf("offset 1 first sample = %v, want 20", v)
	}
	if v := NewTrace(samples, 2, -1).Sample(0, 0); v != 40 {
		t.Errorf("offset -1 first sample = %v, want 40", v)
	}
	if m := tr.Mean(); math.Abs(m-25) > 1e-12 {
		t.Errorf("Mean = %v, want 25", m)
	}
	// Determinism: same arguments, same value, always.
	if tr.Sample(7, 1) != tr.Sample(7, 1) {
		t.Error("Sample is not deterministic")
	}
}

func TestNewTracePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTrace(nil) did not panic")
		}
	}()
	NewTrace(nil, 4, 0)
}

func TestDecodeTraceJSON(t *testing.T) {
	tf, err := DecodeTrace([]byte(`{"samples_per_epoch": 3, "samples": [1, 2.5, 3]}`))
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	if tf.SamplesPerEpoch != 3 || len(tf.Samples) != 3 || tf.Samples[1] != 2.5 {
		t.Fatalf("decoded %+v", tf)
	}
	// Round-trips through the JSON encoder.
	data, err := EncodeTraceJSON(tf)
	if err != nil {
		t.Fatalf("EncodeTraceJSON: %v", err)
	}
	back, err := DecodeTrace(data)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if back.SamplesPerEpoch != tf.SamplesPerEpoch || len(back.Samples) != len(tf.Samples) {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestDecodeTraceCSV(t *testing.T) {
	csv := "# recorded demand, Mb/s\n10, 20\n30\n40\t50\n"
	tf, err := DecodeTrace([]byte(csv))
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	want := []float64{10, 20, 30, 40, 50}
	if len(tf.Samples) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(tf.Samples), len(want))
	}
	for i := range want {
		if tf.Samples[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, tf.Samples[i], want[i])
		}
	}
	// CSV round trip.
	data, err := EncodeTraceCSV(tf)
	if err != nil {
		t.Fatalf("EncodeTraceCSV: %v", err)
	}
	back, err := DecodeTrace(data)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if len(back.Samples) != len(want) {
		t.Fatalf("csv round trip lost samples: %d", len(back.Samples))
	}
}

func TestDecodeTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"whitespace", "  \n\t"},
		{"json no samples", `{"samples_per_epoch": 2, "samples": []}`},
		{"json unknown field", `{"samples": [1], "bogus": 1}`},
		{"json negative cadence", `{"samples_per_epoch": -1, "samples": [1]}`},
		{"json negative sample", `{"samples": [1, -2]}`},
		{"json malformed", `{"samples": [1,`},
		{"csv not a number", "1, banana, 3"},
		{"csv negative", "1\n-2\n"},
		{"csv inf", "1e400\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeTrace([]byte(tc.in)); err == nil {
				t.Fatalf("DecodeTrace(%q) accepted invalid input", tc.in)
			}
		})
	}
}

// FuzzTraceDecode throws arbitrary bytes at the trace codec: it must never
// panic, and anything it accepts must satisfy the documented invariants and
// survive a JSON re-encode round trip.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte(`{"samples_per_epoch": 2, "samples": [1, 2, 3]}`))
	f.Add([]byte("10, 20\n30\n"))
	f.Add([]byte("# comment\n1\n"))
	f.Add([]byte(""))
	f.Add([]byte(`{"samples": [1e308]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := DecodeTrace(data)
		if err != nil {
			return
		}
		if len(tf.Samples) == 0 {
			t.Fatal("accepted a trace with no samples")
		}
		for i, v := range tf.Samples {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("accepted non-finite/negative sample %d: %v", i, v)
			}
		}
		enc, err := EncodeTraceJSON(tf)
		if err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		back, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded trace failed: %v\n%s", err, enc)
		}
		if len(back.Samples) != len(tf.Samples) || back.SamplesPerEpoch != tf.SamplesPerEpoch {
			t.Fatal("JSON round trip changed the trace")
		}
		// The accepted trace must construct a working generator.
		tr := NewTrace(tf.Samples, tf.SamplesPerEpoch, 0)
		if v := tr.Sample(0, 0); v != tf.Samples[0] {
			t.Fatalf("Sample(0,0) = %v, want first sample %v", v, tf.Samples[0])
		}
	})
}
