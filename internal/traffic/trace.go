package traffic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Trace replays a recorded load sequence: sample (t, θ) reads the flat
// sample list at position t·κ + θ + offset, wrapping around — so a short
// recording loops, and distinct offsets let many (slice, BS) pairs share
// one recording without sampling in lockstep. Replay is exact and draws no
// randomness, which makes trace-driven runs bit-reproducible by
// construction.
type Trace struct {
	Samples         []float64
	SamplesPerEpoch int
	Offset          int
	mean            float64
}

// NewTrace returns a trace replayer over the recorded samples. Panics on an
// empty recording (mirroring the other constructors' contract violations);
// the declarative layers validate before construction.
func NewTrace(samples []float64, samplesPerEpoch, offset int) *Trace {
	if len(samples) == 0 {
		panic("traffic: trace needs at least one sample")
	}
	if samplesPerEpoch <= 0 {
		samplesPerEpoch = 1
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	offset %= len(samples)
	if offset < 0 {
		offset += len(samples)
	}
	return &Trace{
		Samples: samples, SamplesPerEpoch: samplesPerEpoch, Offset: offset,
		mean: sum / float64(len(samples)),
	}
}

// Sample implements Generator.
func (tr *Trace) Sample(t, theta int) float64 {
	idx := (t*tr.SamplesPerEpoch + theta + tr.Offset) % len(tr.Samples)
	if idx < 0 {
		idx += len(tr.Samples)
	}
	return tr.Samples[idx]
}

// Mean implements Generator.
func (tr *Trace) Mean() float64 { return tr.mean }

// TraceFile is the codec-facing form of a recorded demand trace: the flat
// Mb/s sample list plus the monitoring cadence it was captured at.
type TraceFile struct {
	// SamplesPerEpoch is the recording's κ; 0 lets the consumer impose its
	// own cadence.
	SamplesPerEpoch int `json:"samples_per_epoch,omitempty"`
	// Samples is the recorded load sequence in Mb/s, epoch-major.
	Samples []float64 `json:"samples"`
}

// maxTraceSamples bounds a decoded trace; anything larger is a corrupt or
// hostile file, not a real recording (a year of 5-minute samples is ~10^5).
const maxTraceSamples = 1 << 22

// DecodeTrace parses a recorded demand trace in either supported format:
// JSON ({"samples_per_epoch": κ, "samples": [...]}) when the payload leads
// with '{', otherwise CSV — one or more Mb/s values per line, comma- or
// whitespace-separated, '#' comments ignored. Every sample must be a
// finite, non-negative number.
func DecodeTrace(data []byte) (*TraceFile, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("traffic: empty trace")
	}
	var tf TraceFile
	if trimmed[0] == '{' {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&tf); err != nil {
			return nil, fmt.Errorf("traffic: trace json: %w", err)
		}
	} else {
		for ln, line := range strings.Split(string(trimmed), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			for _, field := range strings.FieldsFunc(line, func(r rune) bool {
				return r == ',' || r == ' ' || r == '\t' || r == '\r' || r == ';'
			}) {
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("traffic: trace csv line %d: %q is not a number", ln+1, field)
				}
				tf.Samples = append(tf.Samples, v)
				if len(tf.Samples) > maxTraceSamples {
					return nil, fmt.Errorf("traffic: trace exceeds %d samples", maxTraceSamples)
				}
			}
		}
	}
	return &tf, tf.validate()
}

// validate enforces the invariants both codecs share.
func (tf *TraceFile) validate() error {
	if len(tf.Samples) == 0 {
		return fmt.Errorf("traffic: trace has no samples")
	}
	if len(tf.Samples) > maxTraceSamples {
		return fmt.Errorf("traffic: trace exceeds %d samples", maxTraceSamples)
	}
	if tf.SamplesPerEpoch < 0 {
		return fmt.Errorf("traffic: samples_per_epoch %d is negative", tf.SamplesPerEpoch)
	}
	for i, v := range tf.Samples {
		// NaN fails both comparisons' complement: v != v.
		if !(v >= 0) || v > 1e12 {
			return fmt.Errorf("traffic: trace sample %d (%v) is not a finite non-negative load", i, v)
		}
	}
	return nil
}

// EncodeTraceJSON renders the trace in the JSON format DecodeTrace reads.
func EncodeTraceJSON(tf *TraceFile) ([]byte, error) {
	if err := tf.validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("traffic: encode trace: %w", err)
	}
	return append(data, '\n'), nil
}

// EncodeTraceCSV renders the samples one per line, the CSV form DecodeTrace
// reads (the cadence is not representable in CSV; it travels out of band).
func EncodeTraceCSV(tf *TraceFile) ([]byte, error) {
	if err := tf.validate(); err != nil {
		return nil, err
	}
	var b strings.Builder
	for _, v := range tf.Samples {
		fmt.Fprintf(&b, "%g\n", v)
	}
	return []byte(b.String()), nil
}
