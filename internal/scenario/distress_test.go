package scenario

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/sim"
)

// TestSolverDistressFallsBackCold pins the Benders numerical-distress
// recovery end to end on the workload that exposed it: the full-size
// sla-mix archetype under seed 42 drives the cross-epoch session into a
// master infeasibility at epoch 4 (ill-conditioned accumulated cuts).
// The session must drop its poisoned state and re-solve cold instead of
// failing the run — and because a cold solve is a pure function of the
// instance, the warm pipeline's decisions must stay bit-identical to a
// ColdSolver replay straight through the distressed epoch.
func TestSolverDistressFallsBackCold(t *testing.T) {
	base := mustByName(t, "sla-mix")
	base.Epochs = 5 // epochs 0–4 reproduce the distressed round exactly

	runs, err := parallel.Map(2, 0, func(i int) (*sim.Result, error) {
		cfg, err := base.Compile(42)
		if err != nil {
			return nil, err
		}
		cfg.ColdSolver = i == 1
		return sim.Run(cfg)
	})
	if err != nil {
		t.Fatalf("distressed run failed instead of falling back: %v", err)
	}
	if got, want := runs[0].DecisionTrace(), runs[1].DecisionTrace(); got != want {
		t.Errorf("warm pipeline diverges from cold replay through the distressed epoch:\nwarm:\n%s\ncold:\n%s", got, want)
	}
}
