// Package scenario is the declarative workload engine: a Spec names a
// topology, an arrival process, and a mix of SLA classes, and Compile turns
// it — fully seeded and reproducibly — into the sim.Config the epoch
// pipeline executes. It replaces the ad-hoc slice-list construction that
// used to be duplicated across internal/experiments/fig*.go and examples/,
// and it is the substrate new workloads plug into: a scenario is data, so a
// new traffic pattern is a Spec literal, not a new harness.
//
// The paper's evaluation (§4.3) draws every result from sweeps over
// scenario families — homogeneous Gaussian grids (Fig. 5), heterogeneous
// mixes (Fig. 6), the diurnal testbed day (Fig. 8). Archetypes() exposes
// those plus the workloads the paper motivates but never simulates
// (flash crowds, heavy-tailed demand); `scenario run` in cmd/ drives any of
// them from the command line.
package scenario
