package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// faults.go is the declarative face of the adversarial topology layer: a
// Spec names what goes wrong (scripted events, degradation ramps, seeded
// random outages) and Compile expands it into the epoch-boundary
// topology.Event stream the simulator and admission engine consume. The
// expansion draws from the scenario RNG *after* the arrival and class-slot
// draws, so adding faults to a spec never perturbs the tenant population an
// existing seed produces.

// Ramp is a staircase capacity degradation: Steps equal decrements starting
// at StartEpoch, one per epoch, ending at Floor × the published capacity.
// Each step emits an absolute factor (topology events set, they don't
// compose), so a ramp reads back deterministically from any replay point.
type Ramp struct {
	// BS targets one base station's radio capacity; -1 targets the transport
	// network instead (every link at once — a backhaul-wide brownout).
	BS         int
	StartEpoch int
	// Steps is the staircase length in epochs; default 3.
	Steps int
	// Floor is the terminal capacity multiplier; default 0.5, must be in [0,1).
	Floor float64
}

// expand emits the ramp's per-epoch events.
func (r Ramp) expand() []topology.Event {
	steps := r.Steps
	if steps <= 0 {
		steps = 3
	}
	floor := r.Floor
	if floor == 0 {
		floor = 0.5
	}
	out := make([]topology.Event, 0, steps)
	for i := 0; i < steps; i++ {
		f := 1 - (1-floor)*float64(i+1)/float64(steps)
		if r.BS < 0 {
			out = append(out, topology.LinkDegrade(r.StartEpoch+i, -1, f))
		} else {
			out = append(out, topology.BSDegrade(r.StartEpoch+i, r.BS, f))
		}
	}
	return out
}

// Faults declares the adversarial topology dynamics of a scenario.
type Faults struct {
	// Script is applied verbatim (epoch-sorted by the schedule): scripted
	// outages, recoveries, operator join/leave.
	Script []topology.Event
	// Ramps are staircase degradations, expanded into Script-like events.
	Ramps []Ramp
	// RandomOutages adds this many seeded-random BS outage/recovery pairs:
	// a uniform BS goes dark at a uniform epoch in [1, Epochs-2] and
	// recovers OutageEpochs later (if still inside the horizon).
	RandomOutages int
	// OutageEpochs is each random outage's duration; default 2.
	OutageEpochs int
}

// empty reports whether the spec declares no dynamics at all.
func (f Faults) empty() bool {
	return len(f.Script) == 0 && len(f.Ramps) == 0 && f.RandomOutages <= 0
}

// expand turns the declaration into the concrete event stream for a network
// with nBS base stations over the given horizon, drawing random outages
// from rng. Callers must invoke it after every other Compile draw so the
// pre-fault RNG stream — and with it every existing archetype's tenant
// population — stays byte-identical.
func (f Faults) expand(nBS, epochs int, rng *rand.Rand) []topology.Event {
	if f.empty() {
		return nil
	}
	var out []topology.Event
	out = append(out, f.Script...)
	for _, r := range f.Ramps {
		out = append(out, r.expand()...)
	}
	dur := f.OutageEpochs
	if dur <= 0 {
		dur = 2
	}
	for k := 0; k < f.RandomOutages; k++ {
		bs := rng.Intn(nBS)
		span := epochs - 2
		if span < 1 {
			span = 1
		}
		start := 1 + rng.Intn(span)
		out = append(out, topology.BSOutage(start, bs))
		if end := start + dur; end < epochs {
			out = append(out, topology.BSRecover(end, bs))
		}
	}
	return out
}

// validate checks the declarative fields that don't need a topology; the
// expanded events are checked against the real network by Compile (via
// topology.NewSchedule) and by Spec.Validate.
func (f Faults) validate(name string) error {
	for _, r := range f.Ramps {
		if r.StartEpoch < 0 {
			return fmt.Errorf("scenario %s: ramp start epoch %d is negative", name, r.StartEpoch)
		}
		if r.Steps < 0 {
			return fmt.Errorf("scenario %s: ramp steps %d is negative", name, r.Steps)
		}
		if r.Floor < 0 || r.Floor >= 1 {
			if r.Floor != 0 { // 0 = default 0.5
				return fmt.Errorf("scenario %s: ramp floor %v outside [0,1)", name, r.Floor)
			}
		}
	}
	if f.RandomOutages < 0 {
		return fmt.Errorf("scenario %s: RandomOutages %d is negative", name, f.RandomOutages)
	}
	if f.OutageEpochs < 0 {
		return fmt.Errorf("scenario %s: OutageEpochs %d is negative", name, f.OutageEpochs)
	}
	return nil
}
