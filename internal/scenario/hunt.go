package scenario

import (
	"encoding/json"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/sim"
)

// hunt.go is the adversarial search mode: sweep seeds of a spec, run the
// closed-loop system and the static-reservation baseline on the identical
// compiled world (same tenants, same traffic, same faults), and report the
// seeds where the closed loop realizes LESS revenue than the baseline it
// exists to beat. Each hit round-trips through a reproducer file so a CI
// hit becomes a committed regression test, in the refinement-checker
// tradition: the spec space itself is the adversary, the baseline the
// checked reference.

// HuntResult is one seed's closed-vs-static comparison.
type HuntResult struct {
	Seed int64 `json:"seed"`
	// Closed and Static are the two runs' realized total revenue.
	Closed float64 `json:"closed"`
	Static float64 `json:"static"`
	// Regression is Static − Closed; positive means the closed loop lost
	// to the baseline on this seed.
	Regression float64 `json:"regression"`
}

// Regressed reports whether the closed loop lost to the static baseline.
func (h HuntResult) Regressed() bool { return h.Regression > 0 }

// huntSeed runs both arms on one seed. The compiled config is identical in
// every respect but Config.StaticReservations, so any revenue gap is the
// control policy's alone.
func huntSeed(spec Spec, seed int64) (HuntResult, error) {
	cfg, err := spec.Compile(seed)
	if err != nil {
		return HuntResult{}, err
	}
	closed, err := sim.Run(cfg)
	if err != nil {
		return HuntResult{}, fmt.Errorf("scenario hunt: seed %d closed arm: %w", seed, err)
	}
	cfg.StaticReservations = true
	static, err := sim.Run(cfg)
	if err != nil {
		return HuntResult{}, fmt.Errorf("scenario hunt: seed %d static arm: %w", seed, err)
	}
	return HuntResult{
		Seed:       seed,
		Closed:     closed.TotalRevenue,
		Static:     static.TotalRevenue,
		Regression: static.TotalRevenue - closed.TotalRevenue,
	}, nil
}

// Hunt sweeps seeds [start, start+count) over a bounded worker pool and
// returns every seed's comparison in seed order (identical at any worker
// count — internal/parallel semantics). Callers filter with Regressed.
func Hunt(spec Spec, start int64, count, workers int) ([]HuntResult, error) {
	return parallel.Map(count, workers, func(i int) (HuntResult, error) {
		return huntSeed(spec, start+int64(i))
	})
}

// Reproducer is the committed form of one hunt hit: the full spec and the
// seed, everything needed to replay the regression bit for bit.
type Reproducer struct {
	Spec Spec       `json:"spec"`
	Seed int64      `json:"seed"`
	Hit  HuntResult `json:"hit"`
}

// EncodeReproducer renders a hit as the JSON reproducer file `scenario
// hunt -out` writes and `scenario hunt -replay` reads.
func EncodeReproducer(r Reproducer) ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode reproducer: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeReproducer parses a reproducer file and validates its spec.
func DecodeReproducer(data []byte) (Reproducer, error) {
	var r Reproducer
	if err := json.Unmarshal(data, &r); err != nil {
		return Reproducer{}, fmt.Errorf("scenario: decode reproducer: %w", err)
	}
	if err := r.Spec.withDefaults().Validate(); err != nil {
		return Reproducer{}, err
	}
	return r, nil
}

// Replay re-runs a reproducer's two arms and returns the fresh comparison;
// the caller asserts Regressed() still holds (the committed-hit CI check).
func (r Reproducer) Replay() (HuntResult, error) {
	return huntSeed(r.Spec, r.Seed)
}
