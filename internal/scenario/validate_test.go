package scenario

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// validSpec is a minimal spec Validate accepts — each table case below
// breaks exactly one thing about it.
func validSpec() Spec {
	s, err := ByName("homogeneous")
	if err != nil {
		panic(err)
	}
	return s.withDefaults()
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("the base spec must validate: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string // substring of the error
	}{
		{"zero epochs", func(s *Spec) { s.Epochs = 0 }, "Epochs"},
		{"negative epochs", func(s *Spec) { s.Epochs = -3 }, "Epochs"},
		{"zero tenants", func(s *Spec) { s.Tenants = 0 }, "Tenants"},
		{"zero kpaths", func(s *Spec) { s.KPaths = 0 }, "KPaths"},
		{"negative samples per epoch", func(s *Spec) { s.SamplesPerEpoch = -1 }, "SamplesPerEpoch"},
		{"unknown topology", func(s *Spec) { s.Topology = "atlantis" }, "atlantis"},
		{"unknown algorithm", func(s *Spec) { s.Algorithm = "oracle" }, "oracle"},
		{"unknown arrival kind", func(s *Spec) { s.Arrivals.Kind = ArrivalKind(99) }, "arrival kind"},
		{"negative arrival rate", func(s *Spec) { s.Arrivals.RatePerEpoch = -1 }, "RatePerEpoch"},
		{"negative spike size", func(s *Spec) { s.Arrivals.SpikeSize = -2 }, "negative arrival parameter"},
		{"no classes", func(s *Spec) { s.Classes = nil }, "at least one class"},
		{"unknown class type", func(s *Spec) { s.Classes[0].Type = "xXLC" }, "xXLC"},
		{"unknown load shape", func(s *Spec) { s.Classes[0].Shape = "square-wave" }, "square-wave"},
		{"trace shape without samples", func(s *Spec) { s.Classes[0].Shape = "trace" }, "TraceMbps"},
		{"negative class alpha", func(s *Spec) { s.Classes[0].Alpha = -0.1 }, "negative parameter"},
		{"negative class sigma", func(s *Spec) { s.Classes[0].SigmaFrac = -1 }, "negative parameter"},
		{"negative class duration", func(s *Spec) { s.Classes[0].Duration = -4 }, "negative parameter"},
		{"negative ramp start", func(s *Spec) {
			s.Faults.Ramps = []Ramp{{BS: 0, StartEpoch: -1}}
		}, "ramp start"},
		{"ramp floor at 1", func(s *Spec) {
			s.Faults.Ramps = []Ramp{{BS: 0, StartEpoch: 1, Floor: 1}}
		}, "ramp floor"},
		{"negative random outages", func(s *Spec) { s.Faults.RandomOutages = -1 }, "RandomOutages"},
		{"negative outage duration", func(s *Spec) { s.Faults.OutageEpochs = -2 }, "OutageEpochs"},
		{"scripted event out of range", func(s *Spec) {
			s.Faults.Script = []topology.Event{topology.BSOutage(1, 999)}
		}, "out of range"},
		{"scripted event negative epoch", func(s *Spec) {
			s.Faults.Script = []topology.Event{topology.BSOutage(-1, 0)}
		}, "negative"},
		{"ramp targets missing BS", func(s *Spec) {
			s.Faults.Ramps = []Ramp{{BS: 999, StartEpoch: 1}}
		}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the broken spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateIsStricterThanCompile pins the split of responsibilities:
// Compile defaults what Validate rejects, so a zero-epoch spec compiles
// (to the 24-epoch default) yet fails strict validation.
func TestValidateIsStricterThanCompile(t *testing.T) {
	s := validSpec()
	s.Epochs = 0
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted a zero-epoch spec")
	}
	cfg, err := s.Compile(1)
	if err != nil {
		t.Fatalf("Compile must default the zero epochs: %v", err)
	}
	if cfg.Epochs != 24 {
		t.Fatalf("Compile defaulted Epochs to %d, want 24", cfg.Epochs)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("no-such-archetype"); err == nil ||
		!strings.Contains(err.Error(), "no-such-archetype") {
		t.Fatalf("ByName error %v does not name the unknown archetype", err)
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName accepted an empty name")
	}
	// Every built-in archetype passes strict validation once defaulted —
	// the committed catalog must never rely on Compile-side leniency that
	// Validate would flag.
	for _, s := range Archetypes() {
		if err := s.withDefaults().Validate(); err != nil {
			t.Errorf("archetype %s fails strict validation: %v", s.Name, err)
		}
	}
}
