package scenario

import (
	"fmt"

	"repro/internal/topology"
)

// RecordedDayMbps is the committed demand recording the trace-replay
// archetype replays: one day of per-epoch eMBB load in Mb/s, mean ≈ 15
// (matching α=0.3 of the 50 Mb/s template so reservations and replayed
// load agree). Committed as a literal so CI needs no data file; the codec
// path (`scenario run -trace`, `loadgen -trace`) reads the same shape from
// JSON/CSV.
var RecordedDayMbps = []float64{
	7, 6, 5, 5, 6, 8, 11, 14, 17, 19, 21, 22,
	23, 22, 21, 20, 19, 18, 19, 21, 22, 18, 13, 9,
}

// Archetypes returns the built-in scenario suite: one Spec per workload
// family the system must handle, all runnable from `scenario run` with any
// seed and all covered by the warm/cold equality and determinism tests.
// EXPERIMENTS.md maps each archetype to the paper artifact it generalizes.
func Archetypes() []Spec {
	return []Spec{
		{
			Name:        "homogeneous",
			Description: "Fig. 5 point: identical Gaussian eMBB tenants, batch arrival, λ̄=0.3Λ σ=0.25λ̄ m=1",
			Topology:    "Romanian", NBS: 4,
			Tenants: 8, Epochs: 24,
			Arrivals:  Arrivals{Kind: Batch},
			Classes:   []Class{{Type: "eMBB", Alpha: 0.3, SigmaFrac: 0.25, Penalty: 1}},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name:        "diurnal",
			Description: "Fig. 8 day shape: seasonal load tracked by the Holt-Winters forecaster on the testbed",
			Topology:    "Testbed",
			Tenants:     3, Epochs: 36, HWPeriod: 12,
			Arrivals:  Arrivals{Kind: Batch},
			Classes:   []Class{{Type: "uRLLC", Alpha: 0.5, SigmaFrac: 0.2, Penalty: 1, Shape: "diurnal"}},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name:        "flash-crowd",
			Description: "Poisson eMBB background plus a spike of short-lived uRLLC slices at epoch 8",
			Topology:    "Romanian", NBS: 4,
			Tenants: 5, Epochs: 24,
			Arrivals: Arrivals{Kind: FlashCrowd, RatePerEpoch: 0.5,
				SpikeEpoch: 8, SpikeSize: 4, SpikeDuration: 3, SpikeClass: "crowd"},
			Classes: []Class{
				{Name: "bg", Type: "eMBB", Alpha: 0.3, SigmaFrac: 0.25, Penalty: 1},
				{Name: "crowd", Type: "uRLLC", Alpha: 0.6, SigmaFrac: 0.3, Penalty: 4},
			},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name:        "sla-mix",
			Description: "Fig. 6 generalization: elastic eMBB (m=1) vs inelastic uRLLC (m=16) vs deterministic mMTC",
			Topology:    "Swiss", NBS: 4,
			Tenants: 9, Epochs: 24,
			Arrivals: Arrivals{Kind: Bursty, BurstSize: 3, BurstPeriod: 2},
			Classes: []Class{
				{Name: "elastic", Type: "eMBB", Weight: 1, Alpha: 0.25, SigmaFrac: 0.25, Penalty: 1},
				{Name: "strict", Type: "uRLLC", Weight: 1, Alpha: 0.5, SigmaFrac: 0.25, Penalty: 16},
				{Name: "iot", Type: "mMTC", Weight: 1, Alpha: 0.2, Penalty: 4},
			},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name: "diurnal-drift",
			Description: "closed-loop showcase: day-shaped eMBB demand oversubscribes the grid at full-SLA " +
				"reservations; forecast-driven reoptimization shrinks σ̂ online and re-admits the overflow",
			Topology: "Romanian", NBS: 4,
			Tenants: 8, Epochs: 24, HWPeriod: 8,
			Arrivals:  Arrivals{Kind: Batch},
			Classes:   []Class{{Type: "eMBB", Alpha: 0.3, SigmaFrac: 0.2, Penalty: 1, Shape: "diurnal"}},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name: "flash-drift",
			Description: "drift-heavy: diurnal eMBB background already overbooked when a uRLLC flash crowd " +
				"lands mid-run — the reopt loop must rescale committed reservations to absorb it",
			Topology: "Romanian", NBS: 4,
			Tenants: 5, Epochs: 20, HWPeriod: 8,
			Arrivals: Arrivals{Kind: FlashCrowd, RatePerEpoch: 0.8,
				SpikeEpoch: 9, SpikeSize: 3, SpikeDuration: 4, SpikeClass: "surge"},
			Classes: []Class{
				{Name: "bg", Type: "eMBB", Alpha: 0.3, SigmaFrac: 0.2, Penalty: 1, Shape: "diurnal"},
				{Name: "surge", Type: "uRLLC", Alpha: 0.5, SigmaFrac: 0.25, Penalty: 4},
			},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name:        "heavy-tail",
			Description: "log-normal demand: rare far-above-mean peaks stress peak forecasting and the risk term",
			Topology:    "Italian", NBS: 4,
			Tenants: 6, Epochs: 24,
			Arrivals:  Arrivals{Kind: Poisson, RatePerEpoch: 1},
			Classes:   []Class{{Type: "eMBB", Alpha: 0.25, SigmaFrac: 0.5, Penalty: 2, Shape: "heavy-tail"}},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name: "outage",
			Description: "adversarial: BS 1 goes dark at epoch 3 and recovers at epoch 6 — committed slices ride " +
				"the big-M deficit through the hole while the warm solver re-solves under shrunken capacity",
			Topology: "Romanian", NBS: 4,
			Tenants: 8, Epochs: 24, HWPeriod: 8,
			Arrivals: Arrivals{Kind: Batch},
			Classes:  []Class{{Type: "eMBB", Alpha: 0.3, SigmaFrac: 0.25, Penalty: 1}},
			Faults: Faults{Script: []topology.Event{
				topology.BSOutage(3, 1),
				topology.BSRecover(6, 1),
			}},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name: "degradation",
			Description: "adversarial: a backhaul-wide brownout ramps every link down to 40% over four epochs " +
				"while new tenants keep arriving — admission must tighten without dropping committed slices",
			Topology: "Swiss", NBS: 4,
			Tenants: 8, Epochs: 24,
			Arrivals: Arrivals{Kind: Bursty, BurstSize: 2, BurstPeriod: 2},
			Classes:  []Class{{Type: "eMBB", Alpha: 0.25, SigmaFrac: 0.25, Penalty: 1}},
			Faults: Faults{Ramps: []Ramp{
				{BS: -1, StartEpoch: 2, Steps: 4, Floor: 0.4},
			}},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name: "churn",
			Description: "adversarial: the core CU operator leaves the federation at epoch 2 and rejoins at 7, " +
				"with one seeded-random BS outage on top — sustained capacity churn under Poisson arrivals",
			Topology: "Romanian", NBS: 4,
			Tenants: 6, Epochs: 24,
			Arrivals: Arrivals{Kind: Poisson, RatePerEpoch: 1},
			Classes:  []Class{{Type: "eMBB", Alpha: 0.25, SigmaFrac: 0.25, Penalty: 1}},
			Faults: Faults{
				Script: []topology.Event{
					topology.CULeave(2, 1),
					topology.CUJoin(7, 1),
				},
				RandomOutages: 1, OutageEpochs: 2,
			},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name: "handover",
			Description: "adversarial: the edge CU leaves at epoch 3 and returns at epoch 7, forcing compute onto " +
				"the core site — the sim-level face of slice handover (the admission engine's Handover rebinds a " +
				"committed slice across domains with its ledger identity intact; see EXPERIMENTS.md)",
			Topology: "Italian", NBS: 4,
			Tenants: 6, Epochs: 24, HWPeriod: 8,
			Arrivals: Arrivals{Kind: Batch},
			Classes: []Class{
				{Name: "mobile", Type: "uRLLC", Alpha: 0.4, SigmaFrac: 0.2, Penalty: 4},
				{Name: "bg", Type: "eMBB", Alpha: 0.25, SigmaFrac: 0.25, Penalty: 1},
			},
			Faults: Faults{Script: []topology.Event{
				topology.CULeave(3, 0),
				topology.CUJoin(7, 0),
			}},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name: "trace-replay",
			Description: "recorded demand: every tenant replays the committed day trace at a seed-derived rotation " +
				"— bit-reproducible load with real diurnal structure, no synthetic process in the loop",
			Topology: "Romanian", NBS: 4,
			Tenants: 6, Epochs: 24, HWPeriod: 8,
			Arrivals: Arrivals{Kind: Batch},
			Classes: []Class{{Type: "eMBB", Alpha: 0.3, SigmaFrac: 0.25, Penalty: 1,
				Shape: "trace", TraceMbps: RecordedDayMbps}},
			Algorithm: "benders", ReofferPending: true,
		},
		{
			Name: "metro",
			Description: "metro-scale tier: a 1056-BS deployment of 44 strict-tree pods, each pod a 24-BS admission " +
				"domain under a deep four-tier CU hierarchy (edge/agg/metro/core) — uRLLC contends for the undersized " +
				"edge tiers while eMBB/mMTC sink down the chain (run all pods: `loadgen -scenario metro`)",
			Topology: "Metro", NBS: topology.MetroPodBS,
			Domains: topology.MetroPods,
			Tenants: 4, Epochs: 16,
			Arrivals: Arrivals{Kind: Batch},
			Classes: []Class{
				{Name: "lowlat", Type: "uRLLC", Weight: 2, Alpha: 0.4, SigmaFrac: 0.2, Penalty: 8},
				{Name: "broadband", Type: "eMBB", Weight: 1, Alpha: 0.3, SigmaFrac: 0.25, Penalty: 1},
				{Name: "iot", Type: "mMTC", Weight: 1, Alpha: 0.2, Penalty: 4},
			},
			Algorithm: "benders", KPaths: 1, ReofferPending: true,
		},
	}
}

// ByName resolves an archetype.
func ByName(name string) (Spec, error) {
	for _, s := range Archetypes() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown archetype %q (run `scenario list`)", name)
}
