package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ArrivalKind selects the arrival process of a Spec.
type ArrivalKind int

// Arrival processes.
const (
	// Batch offers every tenant at Arrivals.Epoch (the Fig. 5/6
	// steady-state methodology).
	Batch ArrivalKind = iota
	// Poisson draws the number of new tenants per epoch from a Poisson
	// distribution with mean RatePerEpoch.
	Poisson
	// Bursty releases BurstSize tenants every BurstPeriod epochs (on/off
	// batching).
	Bursty
	// FlashCrowd overlays a Poisson background with SpikeSize extra
	// short-lived tenants arriving together at SpikeEpoch.
	FlashCrowd
)

// String names the arrival kind.
func (k ArrivalKind) String() string {
	switch k {
	case Batch:
		return "batch"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case FlashCrowd:
		return "flash-crowd"
	}
	return fmt.Sprintf("ArrivalKind(%d)", int(k))
}

// Arrivals describes when tenants appear.
type Arrivals struct {
	Kind ArrivalKind
	// Epoch is the batch arrival epoch (Batch only).
	Epoch int
	// RatePerEpoch is the Poisson mean (Poisson, FlashCrowd background).
	RatePerEpoch float64
	// BurstSize/BurstPeriod shape the Bursty process.
	BurstSize   int
	BurstPeriod int
	// SpikeEpoch/SpikeSize/SpikeDuration shape the FlashCrowd spike; spike
	// tenants arrive on top of Spec.Tenants and live SpikeDuration epochs.
	SpikeEpoch    int
	SpikeSize     int
	SpikeDuration int
	// SpikeClass names the Class spike tenants belong to. When set, that
	// class is reserved for the spike: background tenants are dealt over
	// the remaining classes only. Empty means spike tenants are dealt like
	// everyone else.
	SpikeClass string
}

// Class is one SLA-class population within a scenario: the slice template,
// its commercial terms, and its true load process. Elastic classes (low
// penalty m) tolerate overbooking aggressively; inelastic ones (high m)
// force near-full reservations — mixing them is the §4.3.4 heterogeneous
// setting.
type Class struct {
	Name      string
	Type      string  // "eMBB" | "mMTC" | "uRLLC"
	Weight    float64 // relative share of the tenant population; default 1
	Alpha     float64 // λ̄ = α·Λ
	SigmaFrac float64 // σ = SigmaFrac·λ̄ (forced 0 for mMTC, as in Table 1)
	Penalty   float64 // m, K = m·R; default 1
	Shape     string  // "gaussian" (default) | "diurnal" | "heavy-tail" | "trace"
	// Duration overrides the slice lifetime in epochs; 0 = whole run.
	Duration int
	// TraceMbps is the recorded load sequence Shape "trace" replays (each
	// tenant reads the shared recording at a seed-derived rotation).
	TraceMbps []float64
}

// Spec is a complete declarative scenario.
type Spec struct {
	Name        string
	Description string

	Topology string // "Romanian" | "Swiss" | "Italian" | "Testbed" | "Metro"
	NBS      int    // operator-topology scale; 0 = full published size

	// Domains is the deployment width the archetype describes: how many
	// independent operator domains (each compiling its own NBS-sized
	// network under a decorrelated seed) make up the full scenario. 0 or
	// 1 means a single-domain scenario, as all the paper-scale archetypes
	// are; the metro archetype declares its full pod count here, and
	// multi-domain drivers (loadgen) default their domain fan-out to it.
	Domains int

	Tenants  int // base tenant count (flash-crowd spikes add to it)
	Epochs   int
	Arrivals Arrivals
	Classes  []Class

	// Faults declares the adversarial topology dynamics (outages, ramps,
	// churn); the zero value means a static topology, as before.
	Faults Faults

	Algorithm       string // "direct" | "benders" | "kac" | "no-overbooking"
	KPaths          int
	SamplesPerEpoch int
	HWPeriod        int
	ReofferPending  bool
	ForecastPad     float64
}

// BuildTopology instantiates a named operator network at the requested
// scale (0 = full published size).
func BuildTopology(name string, nBS int) (*topology.Network, error) {
	switch name {
	case "Romanian":
		return topology.Romanian(nBS), nil
	case "Swiss":
		return topology.Swiss(nBS), nil
	case "Italian":
		return topology.Italian(nBS), nil
	case "Testbed":
		return topology.Testbed(), nil
	case "Metro":
		return topology.Metro(nBS), nil
	}
	return nil, fmt.Errorf("scenario: unknown topology %q", name)
}

// SliceTypeByName resolves the Table 1 template names.
func SliceTypeByName(name string) (slice.Type, error) {
	switch name {
	case "eMBB":
		return slice.EMBB, nil
	case "mMTC":
		return slice.MMTC, nil
	case "uRLLC":
		return slice.URLLC, nil
	}
	return 0, fmt.Errorf("scenario: unknown slice type %q", name)
}

// ParseAlgorithm resolves a solver name.
func ParseAlgorithm(name string) (sim.Algorithm, error) {
	switch name {
	case "", "direct":
		return sim.Direct, nil
	case "benders":
		return sim.Benders, nil
	case "kac":
		return sim.KAC, nil
	case "no-overbooking":
		return sim.NoOverbooking, nil
	}
	return 0, fmt.Errorf("scenario: unknown algorithm %q (want direct, benders, kac or no-overbooking)", name)
}

func parseShape(name string) (sim.LoadShape, error) {
	switch name {
	case "", "gaussian":
		return sim.ShapeGaussian, nil
	case "diurnal":
		return sim.ShapeDiurnal, nil
	case "heavy-tail":
		return sim.ShapeHeavyTail, nil
	case "trace":
		return sim.ShapeTrace, nil
	}
	return 0, fmt.Errorf("scenario: unknown load shape %q", name)
}

// WithTrace returns the spec with every class replaying the recorded demand
// file instead of its synthetic load shape (the trace-replay arrival mode
// `scenario run -trace` and `loadgen -trace` share). The class slice is
// copied, so the caller's archetype definition is untouched; the file's
// cadence is adopted only when the spec leaves SamplesPerEpoch unset.
func WithTrace(s Spec, tf *traffic.TraceFile) Spec {
	classes := append([]Class(nil), s.Classes...)
	for i := range classes {
		classes[i].Shape = "trace"
		classes[i].TraceMbps = tf.Samples
	}
	s.Classes = classes
	if tf.SamplesPerEpoch > 0 && s.SamplesPerEpoch == 0 {
		s.SamplesPerEpoch = tf.SamplesPerEpoch
	}
	return s
}

// HomogeneousSpecs builds n identical batch-arrival requests of one type —
// the Fig. 5 population — with the per-tenant seed derivation the figure
// harnesses have always used, so refactoring experiments onto the scenario
// engine cannot drift the published artifacts (pinned by the golden tests).
func HomogeneousSpecs(ty slice.Type, n int, alpha, sigmaFrac, m float64, seed int64) []sim.SliceSpec {
	tmpl := slice.Table1(ty)
	mean := alpha * tmpl.RateMbps
	specs := make([]sim.SliceSpec, n)
	for i := range specs {
		std := sigmaFrac * mean
		if ty == slice.MMTC {
			std = 0 // Table 1: mMTC load is deterministic
		}
		specs[i] = sim.SliceSpec{
			Name:          fmt.Sprintf("%s%d", ty, i+1),
			Template:      tmpl.WithStd(std),
			PenaltyFactor: m,
			MeanMbps:      mean,
			StdMbps:       std,
			ArrivalEpoch:  0,
			Duration:      1 << 20, // effectively the whole run, as in §4.3.2
			Seed:          seed + int64(i)*7 + 1,
		}
	}
	return specs
}

// Validate checks a spec strictly, with no defaults applied: what Compile
// quietly fills in (zero epochs, zero tenants, zero k-paths), Validate
// rejects, so a hand-written or machine-emitted spec file that relies on
// accidental zero values fails early with a named reason. Compile stays
// lenient — the archetypes and tests lean on its defaulting.
func (s Spec) Validate() error {
	if s.Epochs <= 0 {
		return fmt.Errorf("scenario %s: Epochs %d must be positive", s.Name, s.Epochs)
	}
	if s.Tenants <= 0 {
		return fmt.Errorf("scenario %s: Tenants %d must be positive", s.Name, s.Tenants)
	}
	if s.KPaths <= 0 {
		return fmt.Errorf("scenario %s: KPaths %d must be positive", s.Name, s.KPaths)
	}
	if s.SamplesPerEpoch < 0 {
		return fmt.Errorf("scenario %s: SamplesPerEpoch %d is negative", s.Name, s.SamplesPerEpoch)
	}
	if s.Domains < 0 {
		return fmt.Errorf("scenario %s: Domains %d is negative", s.Name, s.Domains)
	}
	net, err := BuildTopology(s.Topology, s.NBS)
	if err != nil {
		return err
	}
	if _, err := ParseAlgorithm(s.Algorithm); err != nil {
		return err
	}
	a := s.Arrivals
	if a.Kind < Batch || a.Kind > FlashCrowd {
		return fmt.Errorf("scenario %s: unknown arrival kind %v", s.Name, a.Kind)
	}
	if a.RatePerEpoch < 0 {
		return fmt.Errorf("scenario %s: RatePerEpoch %v is negative", s.Name, a.RatePerEpoch)
	}
	if a.Epoch < 0 || a.SpikeEpoch < 0 || a.SpikeSize < 0 || a.SpikeDuration < 0 ||
		a.BurstSize < 0 || a.BurstPeriod < 0 {
		return fmt.Errorf("scenario %s: negative arrival parameter in %+v", s.Name, a)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("scenario %s: needs at least one class", s.Name)
	}
	for _, c := range s.Classes {
		if _, err := SliceTypeByName(c.Type); err != nil {
			return err
		}
		shape, err := parseShape(c.Shape)
		if err != nil {
			return err
		}
		if shape == sim.ShapeTrace && len(c.TraceMbps) == 0 {
			return fmt.Errorf("scenario %s: class %s uses shape trace but has no TraceMbps samples", s.Name, c.label())
		}
		if c.Alpha < 0 || c.SigmaFrac < 0 || c.Penalty < 0 || c.Weight < 0 || c.Duration < 0 {
			return fmt.Errorf("scenario %s: class %s has a negative parameter (alpha=%v sigmaFrac=%v penalty=%v weight=%v duration=%d)",
				s.Name, c.label(), c.Alpha, c.SigmaFrac, c.Penalty, c.Weight, c.Duration)
		}
	}
	if err := s.Faults.validate(s.Name); err != nil {
		return err
	}
	// Scripted events and expanded ramps must target real elements; random
	// outages are index-safe by construction (drawn with Intn(NumBS)).
	scripted := append([]topology.Event(nil), s.Faults.Script...)
	for _, r := range s.Faults.Ramps {
		scripted = append(scripted, r.expand()...)
	}
	if _, err := topology.NewSchedule(net, scripted); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return nil
}

func (s Spec) withDefaults() Spec {
	if s.Epochs == 0 {
		s.Epochs = 24
	}
	if s.Tenants == 0 {
		s.Tenants = 8
	}
	if s.KPaths == 0 {
		s.KPaths = 2
	}
	return s
}

// arrival is one planned tenant appearance.
type arrival struct {
	epoch    int
	duration int  // 0 = whole run
	spike    bool // flash-crowd spike member (assigned to Arrivals.SpikeClass)
}

// planArrivals expands the arrival process into one entry per tenant,
// deterministically from the scenario RNG.
func (s Spec) planArrivals(rng *rand.Rand) ([]arrival, error) {
	a := s.Arrivals
	var out []arrival
	switch a.Kind {
	case Batch:
		for i := 0; i < s.Tenants; i++ {
			out = append(out, arrival{epoch: a.Epoch})
		}
	case Poisson:
		if a.RatePerEpoch <= 0 {
			return nil, fmt.Errorf("scenario %s: poisson arrivals need RatePerEpoch > 0", s.Name)
		}
		for t := 0; t < s.Epochs && len(out) < s.Tenants; t++ {
			for k := poissonDraw(rng, a.RatePerEpoch); k > 0 && len(out) < s.Tenants; k-- {
				out = append(out, arrival{epoch: t})
			}
		}
		// Whoever the process never released still joins on the last epoch's
		// queue if re-offering is on; otherwise they simply never appear.
		for len(out) < s.Tenants {
			out = append(out, arrival{epoch: s.Epochs - 1})
		}
	case Bursty:
		period := a.BurstPeriod
		if period <= 0 {
			period = 4
		}
		size := a.BurstSize
		if size <= 0 {
			size = 2
		}
		for t := 0; t < s.Epochs && len(out) < s.Tenants; t += period {
			for k := 0; k < size && len(out) < s.Tenants; k++ {
				out = append(out, arrival{epoch: t})
			}
		}
		// Tenants the burst schedule never released within the horizon join
		// the final epoch's queue, like the Poisson tail above — never
		// folded back onto earlier epochs, which would silently inflate a
		// burst beyond its declared size.
		for len(out) < s.Tenants {
			out = append(out, arrival{epoch: s.Epochs - 1})
		}
	case FlashCrowd:
		rate := a.RatePerEpoch
		if rate <= 0 {
			rate = 0.5
		}
		for t := 0; t < s.Epochs && len(out) < s.Tenants; t++ {
			for k := poissonDraw(rng, rate); k > 0 && len(out) < s.Tenants; k-- {
				out = append(out, arrival{epoch: t})
			}
		}
		for len(out) < s.Tenants {
			out = append(out, arrival{epoch: s.Epochs - 1})
		}
		spikeDur := a.SpikeDuration
		if spikeDur <= 0 {
			spikeDur = 3
		}
		for k := 0; k < a.SpikeSize; k++ {
			out = append(out, arrival{epoch: a.SpikeEpoch, duration: spikeDur, spike: true})
		}
	default:
		return nil, fmt.Errorf("scenario %s: unknown arrival kind %v", s.Name, a.Kind)
	}
	return out, nil
}

// poissonDraw samples Poisson(rate) by Knuth's product method (rate is
// small in every scenario, so the O(rate) loop is fine).
func poissonDraw(rng *rand.Rand, rate float64) int {
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// label is the class's display/grouping name.
func (c Class) label() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Type
}

// classSlots deals n tenants to classes by weight (largest remainder),
// skipping the excluded class index (a spike-reserved class, -1 for none),
// then shuffles the slot order with the scenario RNG so arrival order mixes
// classes instead of clustering them.
func (s Spec) classSlots(n, exclude int, rng *rand.Rand) ([]int, error) {
	w := make([]float64, len(s.Classes))
	total := 0.0
	for i, c := range s.Classes {
		if i == exclude {
			continue
		}
		w[i] = c.Weight
		if w[i] <= 0 {
			w[i] = 1
		}
		total += w[i]
	}
	if total == 0 {
		if n == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("scenario %s: no class left for background tenants", s.Name)
	}
	counts := make([]int, len(w))
	assigned := 0
	rems := make([]float64, len(w))
	for i := range w {
		exact := float64(n) * w[i] / total
		counts[i] = int(exact)
		rems[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		best := -1
		for i := range rems {
			if w[i] > 0 && (best < 0 || rems[i] > rems[best]) {
				best = i
			}
		}
		counts[best]++
		rems[best] = -1
		assigned++
	}
	var slots []int
	for ci, k := range counts {
		for j := 0; j < k; j++ {
			slots = append(slots, ci)
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return slots, nil
}

// Compile expands the scenario into a fully seeded sim.Config. The same
// (Spec, seed) pair always yields the same config — and therefore, by the
// simulator's own determinism, the same trace.
func (s Spec) Compile(seed int64) (sim.Config, error) {
	s = s.withDefaults()
	if len(s.Classes) == 0 {
		return sim.Config{}, fmt.Errorf("scenario %s: needs at least one class", s.Name)
	}
	net, err := BuildTopology(s.Topology, s.NBS)
	if err != nil {
		return sim.Config{}, err
	}
	algo, err := ParseAlgorithm(s.Algorithm)
	if err != nil {
		return sim.Config{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	arrivals, err := s.planArrivals(rng)
	if err != nil {
		return sim.Config{}, err
	}
	// A spike-reserved class takes every spike arrival and none of the
	// background; everyone else is dealt over the remaining classes.
	spikeClass := -1
	if sc := s.Arrivals.SpikeClass; sc != "" {
		for i, c := range s.Classes {
			if c.label() == sc {
				spikeClass = i
			}
		}
		if spikeClass < 0 {
			return sim.Config{}, fmt.Errorf("scenario %s: SpikeClass %q not among the classes", s.Name, sc)
		}
	}
	background := 0
	for _, ar := range arrivals {
		if !(ar.spike && spikeClass >= 0) {
			background++
		}
	}
	slots, err := s.classSlots(background, spikeClass, rng)
	if err != nil {
		return sim.Config{}, err
	}

	specs := make([]sim.SliceSpec, len(arrivals))
	next := 0
	for i, ar := range arrivals {
		var c Class
		if ar.spike && spikeClass >= 0 {
			c = s.Classes[spikeClass]
		} else {
			c = s.Classes[slots[next]]
			next++
		}
		ty, err := SliceTypeByName(c.Type)
		if err != nil {
			return sim.Config{}, err
		}
		shape, err := parseShape(c.Shape)
		if err != nil {
			return sim.Config{}, err
		}
		if shape == sim.ShapeTrace && len(c.TraceMbps) == 0 {
			return sim.Config{}, fmt.Errorf("scenario %s: class %s uses shape trace but has no TraceMbps samples", s.Name, c.label())
		}
		tmpl := slice.Table1(ty)
		mean := c.Alpha * tmpl.RateMbps
		std := c.SigmaFrac * mean
		if ty == slice.MMTC {
			std = 0
		}
		m := c.Penalty
		if m <= 0 {
			m = 1
		}
		dur := ar.duration
		if dur == 0 {
			dur = c.Duration
		}
		if dur == 0 {
			dur = 1 << 20
		}
		cname := c.label()
		specs[i] = sim.SliceSpec{
			Name:          fmt.Sprintf("%s-%d", cname, i+1),
			Template:      tmpl.WithStd(std),
			PenaltyFactor: m,
			MeanMbps:      mean,
			StdMbps:       std,
			ArrivalEpoch:  ar.epoch,
			Duration:      dur,
			Seed:          seed + int64(i)*7 + 1,
			Shape:         shape,
			TraceMbps:     c.TraceMbps,
		}
	}
	// Fault expansion draws LAST, after every arrival/slot draw above, so a
	// spec that adds faults reuses the exact tenant population its faultless
	// ancestor produced under the same seed.
	if err := s.Faults.validate(s.Name); err != nil {
		return sim.Config{}, err
	}
	events := s.Faults.expand(net.NumBS(), s.Epochs, rng)
	if _, err := topology.NewSchedule(net, events); err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return sim.Config{
		Net:             net,
		KPaths:          s.KPaths,
		SamplesPerEpoch: s.SamplesPerEpoch,
		Epochs:          s.Epochs,
		Slices:          specs,
		Algorithm:       algo,
		HWPeriod:        s.HWPeriod,
		ReofferPending:  s.ReofferPending,
		ForecastPad:     s.ForecastPad,
		Events:          events,
	}, nil
}

// Run compiles and executes the scenario under one seed.
func (s Spec) Run(seed int64) (*sim.Result, error) {
	cfg, err := s.Compile(seed)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg)
}

// Sweep runs the scenario once per seed, fanned out over a bounded worker
// pool (internal/parallel semantics: results in seed order, identical at
// any worker count).
func Sweep(spec Spec, seeds []int64, workers int) ([]*sim.Result, error) {
	return parallel.Map(len(seeds), workers, func(i int) (*sim.Result, error) {
		return spec.Run(seeds[i])
	})
}
