package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// ciSized shrinks an archetype so exact solvers stay fast in tests (also
// under -race) while every structural feature — arrival process, class
// mix, load shapes, commitment churn — survives.
func ciSized(s Spec) Spec {
	if s.Tenants > 4 {
		s.Tenants = 4
	}
	s.Epochs = 10
	if s.Arrivals.Kind == FlashCrowd {
		s.Arrivals.SpikeEpoch = 4
		s.Arrivals.SpikeSize = 2
	}
	return s
}

func TestArchetypesCompileAndRun(t *testing.T) {
	suite := Archetypes()
	if len(suite) < 4 {
		t.Fatalf("suite has %d archetypes, want >= 4", len(suite))
	}
	seen := map[string]bool{}
	for _, spec := range suite {
		if spec.Name == "" || seen[spec.Name] {
			t.Fatalf("archetype name %q empty or duplicated", spec.Name)
		}
		seen[spec.Name] = true
		res, err := ciSized(spec).Run(7)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(res.Epochs) != 10 {
			t.Errorf("%s: ran %d epochs", spec.Name, len(res.Epochs))
		}
		accepted := 0
		for _, es := range res.Epochs {
			accepted += es.Accepted
		}
		if accepted == 0 {
			t.Errorf("%s: no slice was ever admitted", spec.Name)
		}
	}
	for _, want := range []string{"homogeneous", "diurnal", "flash-crowd", "sla-mix"} {
		if !seen[want] {
			t.Errorf("required archetype %q missing", want)
		}
	}
}

// TestWarmMatchesColdOnSuite is the tentpole acceptance gate: on every
// scenario in the suite, the cross-epoch warm pipeline and the per-epoch
// cold pipeline must produce identical admission decisions.
func TestWarmMatchesColdOnSuite(t *testing.T) {
	for _, spec := range Archetypes() {
		spec = ciSized(spec)
		spec.Algorithm = "benders"
		cold, err := spec.Compile(11)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		cold.ColdSolver = true
		coldRes, err := sim.Run(cold)
		if err != nil {
			t.Fatalf("%s cold: %v", spec.Name, err)
		}
		warm, err := spec.Compile(11)
		if err != nil {
			t.Fatal(err)
		}
		warmRes, err := sim.Run(warm)
		if err != nil {
			t.Fatalf("%s warm: %v", spec.Name, err)
		}
		if coldRes.DecisionTrace() != warmRes.DecisionTrace() {
			t.Errorf("%s: warm and cold decisions diverge:\ncold:\n%s\nwarm:\n%s",
				spec.Name, coldRes.DecisionTrace(), warmRes.DecisionTrace())
		}
	}
}

// TestCompileDeterminism: the same (Spec, seed) always compiles to the same
// config, and the resulting sim traces are bit-identical across runs and
// across sweep worker counts.
func TestCompileDeterminism(t *testing.T) {
	spec := ciSized(mustByName(t, "sla-mix"))
	a, err := spec.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Slices, b.Slices) {
		t.Fatal("same (spec, seed) compiled to different slice lists")
	}
	c, err := spec.Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Slices, c.Slices) {
		t.Error("different seeds compiled to identical slice lists")
	}

	seeds := []int64{1, 2, 3, 4, 5, 6}
	serial, err := Sweep(spec, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Sweep(spec, seeds, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if serial[i].Trace() != wide[i].Trace() {
			t.Errorf("seed %d: sweep trace differs between 1 and 8 workers", seeds[i])
		}
	}
	again, err := Sweep(spec, seeds, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if wide[i].Trace() != again[i].Trace() {
			t.Errorf("seed %d: two in-process sweeps diverged", seeds[i])
		}
	}
}

func TestArrivalProcesses(t *testing.T) {
	base := Spec{
		Topology: "Testbed", Tenants: 6, Epochs: 12,
		Classes:   []Class{{Type: "eMBB", Alpha: 0.3, SigmaFrac: 0.2}},
		Algorithm: "direct", ReofferPending: true,
	}

	batch := base
	batch.Arrivals = Arrivals{Kind: Batch, Epoch: 2}
	cfg, err := batch.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range cfg.Slices {
		if sp.ArrivalEpoch != 2 {
			t.Fatalf("batch arrival at %d, want 2", sp.ArrivalEpoch)
		}
	}

	pois := base
	pois.Arrivals = Arrivals{Kind: Poisson, RatePerEpoch: 1}
	cfg, err = pois.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	epochs := map[int]bool{}
	for _, sp := range cfg.Slices {
		epochs[sp.ArrivalEpoch] = true
	}
	if len(epochs) < 2 {
		t.Error("poisson arrivals all landed on one epoch")
	}

	flash := base
	flash.Arrivals = Arrivals{Kind: FlashCrowd, RatePerEpoch: 0.3, SpikeEpoch: 5, SpikeSize: 3, SpikeDuration: 2}
	cfg, err = flash.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Slices) != base.Tenants+3 {
		t.Fatalf("flash crowd compiled %d slices, want %d", len(cfg.Slices), base.Tenants+3)
	}
	spikes := 0
	for _, sp := range cfg.Slices {
		if sp.ArrivalEpoch == 5 && sp.Duration == 2 {
			spikes++
		}
	}
	if spikes < 3 {
		t.Errorf("only %d spike tenants found, want >= 3", spikes)
	}

	burst := base
	burst.Arrivals = Arrivals{Kind: Bursty, BurstSize: 3, BurstPeriod: 4}
	cfg, err = burst.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	atZero := 0
	for _, sp := range cfg.Slices {
		if sp.ArrivalEpoch == 0 {
			atZero++
		}
	}
	if atZero != 3 {
		t.Errorf("burst released %d tenants at epoch 0, want 3", atZero)
	}
	// A horizon shorter than the burst schedule must queue the tail on the
	// final epoch, never fold it back onto earlier bursts.
	tight := base
	tight.Tenants, tight.Epochs = 12, 8
	tight.Arrivals = Arrivals{Kind: Bursty, BurstSize: 2, BurstPeriod: 4}
	cfg, err = tight.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	perEpoch := map[int]int{}
	for _, sp := range cfg.Slices {
		perEpoch[sp.ArrivalEpoch]++
	}
	if perEpoch[0] != 2 || perEpoch[4] != 2 || perEpoch[7] != 8 {
		t.Errorf("bursty tail handling: arrivals per epoch = %v, want 2@0, 2@4, 8@7", perEpoch)
	}
}

// TestFlashCrowdSpikeClass pins that a spike-reserved class takes exactly
// the spike tenants: the background is dealt over the other classes only.
func TestFlashCrowdSpikeClass(t *testing.T) {
	spec := mustByName(t, "flash-crowd")
	cfg, err := spec.Compile(42)
	if err != nil {
		t.Fatal(err)
	}
	crowd, bg := 0, 0
	for _, sp := range cfg.Slices {
		switch {
		case strings.HasPrefix(sp.Name, "crowd-"):
			crowd++
			if sp.Template.Type.String() != "uRLLC" {
				t.Errorf("spike tenant %s has type %v, want uRLLC", sp.Name, sp.Template.Type)
			}
			if sp.ArrivalEpoch != spec.Arrivals.SpikeEpoch || sp.Duration != spec.Arrivals.SpikeDuration {
				t.Errorf("spike tenant %s arrival=%d dur=%d, want %d/%d",
					sp.Name, sp.ArrivalEpoch, sp.Duration, spec.Arrivals.SpikeEpoch, spec.Arrivals.SpikeDuration)
			}
		case strings.HasPrefix(sp.Name, "bg-"):
			bg++
		default:
			t.Errorf("unexpected class for %s", sp.Name)
		}
	}
	if crowd != spec.Arrivals.SpikeSize || bg != spec.Tenants {
		t.Errorf("crowd=%d bg=%d, want %d/%d", crowd, bg, spec.Arrivals.SpikeSize, spec.Tenants)
	}
	// Naming an unknown spike class must fail loudly.
	bad := spec
	bad.Arrivals.SpikeClass = "ghost"
	if _, err := bad.Compile(1); err == nil {
		t.Error("unknown SpikeClass accepted")
	}
}

func TestClassMixRespectWeights(t *testing.T) {
	spec := Spec{
		Topology: "Testbed", Tenants: 9, Epochs: 6,
		Arrivals: Arrivals{Kind: Batch},
		Classes: []Class{
			{Name: "a", Type: "eMBB", Weight: 2, Alpha: 0.3},
			{Name: "b", Type: "uRLLC", Weight: 1, Alpha: 0.4},
		},
		Algorithm: "direct",
	}
	cfg, err := spec.Compile(5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, sp := range cfg.Slices {
		counts[strings.SplitN(sp.Name, "-", 2)[0]]++
	}
	if counts["a"] != 6 || counts["b"] != 3 {
		t.Errorf("class split %v, want a=6 b=3", counts)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := (Spec{Topology: "Atlantis", Classes: []Class{{Type: "eMBB"}}}).Compile(1); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := (Spec{Topology: "Testbed"}).Compile(1); err == nil {
		t.Error("classless scenario accepted")
	}
	if _, err := (Spec{Topology: "Testbed", Classes: []Class{{Type: "6G"}}}).Compile(1); err == nil {
		t.Error("unknown slice type accepted")
	}
	if _, err := (Spec{Topology: "Testbed", Algorithm: "oracle", Classes: []Class{{Type: "eMBB"}}}).Compile(1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown archetype resolved")
	}
}

func mustByName(t *testing.T, name string) Spec {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
