package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/traffic"
)

// huntSpec is the CI-sized heavy-tail spec the committed reproducer uses:
// small enough that a two-arm seed costs ~20ms, adversarial enough that
// most seeds regress (rare log-normal peaks make the closed loop pay
// violation penalties the full-SLA static baseline never risks).
func huntSpec(t *testing.T) Spec {
	t.Helper()
	spec, err := ByName("heavy-tail")
	if err != nil {
		t.Fatal(err)
	}
	spec.Tenants = 4
	spec.Epochs = 12
	return spec
}

func TestHuntFindsHeavyTailRegressions(t *testing.T) {
	spec := huntSpec(t)
	results, err := Hunt(spec, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	foundHit := false
	for i, r := range results {
		if r.Seed != 1+int64(i) {
			t.Fatalf("result %d carries seed %d, want %d (seed order broken)", i, r.Seed, 1+i)
		}
		if got := r.Static - r.Closed; got != r.Regression {
			t.Fatalf("seed %d: Regression %v != Static-Closed %v", r.Seed, r.Regression, got)
		}
		if r.Regressed() != (r.Regression > 0) {
			t.Fatalf("seed %d: Regressed() disagrees with the sign of %v", r.Seed, r.Regression)
		}
		if r.Regressed() {
			foundHit = true
		}
	}
	if !foundHit {
		t.Fatalf("no regression among seeds 1..3 — the committed reproducer's workload no longer regresses: %+v", results)
	}

	// Worker-count invariance: the hunt is a determinism surface like any
	// other sweep — serial and parallel runs must agree bit for bit.
	serial, err := Hunt(spec, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results, serial) {
		t.Fatalf("parallel hunt diverged from serial:\nparallel: %+v\nserial:   %+v", results, serial)
	}
}

func TestReproducerRoundTripAndReplay(t *testing.T) {
	spec := huntSpec(t)
	results, err := Hunt(spec, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	hit := results[0]
	if !hit.Regressed() {
		t.Fatalf("seed 1 must regress for this pin: %+v", hit)
	}
	data, err := EncodeReproducer(Reproducer{Spec: spec, Seed: hit.Seed, Hit: hit})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DecodeReproducer(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if got != hit {
		t.Fatalf("replay diverged from the committed hit:\ncommitted: %+v\nreplayed:  %+v", hit, got)
	}
}

func TestDecodeReproducerRejects(t *testing.T) {
	if _, err := DecodeReproducer([]byte("{not json")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	// A structurally valid file whose spec fails strict validation.
	spec := huntSpec(t)
	spec.Classes = nil
	data, err := EncodeReproducer(Reproducer{Spec: spec, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReproducer(data); err == nil ||
		!strings.Contains(err.Error(), "class") {
		t.Fatalf("accepted a reproducer with an invalid spec (err=%v)", err)
	}
}

func TestWithTrace(t *testing.T) {
	tf := &traffic.TraceFile{SamplesPerEpoch: 3, Samples: []float64{5, 7, 9}}
	s := validSpec()
	s.SamplesPerEpoch = 0
	origShape := s.Classes[0].Shape

	out := WithTrace(s, tf)
	for i, c := range out.Classes {
		if c.Shape != "trace" {
			t.Fatalf("class %d shape %q, want trace", i, c.Shape)
		}
		if !reflect.DeepEqual(c.TraceMbps, tf.Samples) {
			t.Fatalf("class %d samples %v, want %v", i, c.TraceMbps, tf.Samples)
		}
	}
	if out.SamplesPerEpoch != 3 {
		t.Fatalf("unset cadence not adopted from the file: %d", out.SamplesPerEpoch)
	}
	// Copy semantics: the caller's spec must be untouched.
	if s.Classes[0].Shape != origShape || s.Classes[0].TraceMbps != nil {
		t.Fatalf("WithTrace mutated the input spec's classes: %+v", s.Classes[0])
	}
	// An explicit spec cadence wins over the file's.
	s.SamplesPerEpoch = 7
	if out := WithTrace(s, tf); out.SamplesPerEpoch != 7 {
		t.Fatalf("explicit cadence overridden: %d", out.SamplesPerEpoch)
	}
	// The rebound spec must still compile and validate.
	if err := WithTrace(s, tf).Validate(); err != nil {
		t.Fatalf("traced spec fails validation: %v", err)
	}
}
