package scenario

import (
	"testing"

	"repro/internal/lp"
	"repro/internal/sim"
)

// TestFactorEnginesAgreeOnSuite cross-validates the LP solver's two basis
// factorization engines at the system level: every archetype in the suite
// is simulated once with the production sparse-LU engine and once with the
// dense explicit-inverse reference engine, and the decision traces must be
// bit-identical. The engines round differently at the last float bit, so
// this passing is evidence that the decision layer's uniqueness margins
// (lexicographic tie-break, Benders epsilon) absorb factorization-level
// arithmetic differences — the property the repo's determinism pins
// (warm==cold, shard-count invariance) rest on.
func TestFactorEnginesAgreeOnSuite(t *testing.T) {
	defer lp.DebugForceDenseFactor(false)
	suite := Archetypes()
	if len(suite) < 7 {
		t.Fatalf("suite has %d archetypes, want the full 7", len(suite))
	}
	for _, spec := range suite {
		spec = ciSized(spec)
		spec.Algorithm = "benders" // the solver living on the warm SolveFrom path
		cfgSparse, err := spec.Compile(11)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		lp.DebugForceDenseFactor(false)
		sparseRes, err := sim.Run(cfgSparse)
		if err != nil {
			t.Fatalf("%s sparse: %v", spec.Name, err)
		}

		cfgDense, err := spec.Compile(11)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		lp.DebugForceDenseFactor(true)
		denseRes, err := sim.Run(cfgDense)
		lp.DebugForceDenseFactor(false)
		if err != nil {
			t.Fatalf("%s dense: %v", spec.Name, err)
		}

		if sparseRes.DecisionTrace() != denseRes.DecisionTrace() {
			t.Errorf("%s: sparse-LU and dense engines decide differently:\nsparse:\n%s\ndense:\n%s",
				spec.Name, sparseRes.DecisionTrace(), denseRes.DecisionTrace())
		}
	}
}
