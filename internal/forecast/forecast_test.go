package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// seasonalSeries builds λ̄·(1 + amp·sin)-shaped traffic with optional noise,
// the periodicity structure the paper cites as the reason for choosing
// Holt-Winters (footnote 6, [36]).
func seasonalSeries(n, period int, mean, amp, noise float64, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		s := mean * (1 + amp*math.Sin(2*math.Pi*float64(i)/float64(period)))
		out[i] = math.Max(0, s+r.NormFloat64()*noise)
	}
	return out
}

func TestSESConverges(t *testing.T) {
	s := NewSES(0.5)
	for i := 0; i < 50; i++ {
		s.Observe(10)
	}
	f := s.Forecast(3)
	if len(f) != 3 {
		t.Fatal("wrong horizon length")
	}
	for _, v := range f {
		if math.Abs(v-10) > 1e-9 {
			t.Errorf("SES on constant series forecast %v, want 10", v)
		}
	}
	if s.Uncertainty() > 1e-3 {
		t.Errorf("constant series should have tiny uncertainty, got %v", s.Uncertainty())
	}
}

func TestDESTracksTrend(t *testing.T) {
	d := NewDES(0.8, 0.8)
	for i := 0; i < 60; i++ {
		d.Observe(5 + 2*float64(i))
	}
	f := d.Forecast(2)
	want1 := 5 + 2*60.0
	if math.Abs(f[0]-want1) > 0.5 {
		t.Errorf("DES 1-step = %v, want ≈%v", f[0], want1)
	}
	if !(f[1] > f[0]) {
		t.Error("DES must extrapolate the trend")
	}
}

func TestDESNonNegative(t *testing.T) {
	d := NewDES(0.8, 0.8)
	for i := 0; i < 30; i++ {
		d.Observe(math.Max(0, 30-2*float64(i)))
	}
	for _, v := range d.Forecast(30) {
		if v < 0 {
			t.Fatalf("negative load forecast %v", v)
		}
	}
}

func TestHoltWintersSeasonal(t *testing.T) {
	const period = 12
	series := seasonalSeries(20*period, period, 100, 0.5, 0, 1)
	hw := NewHoltWinters(0.3, 0.05, 0.3, period)
	for _, v := range series {
		hw.Observe(v)
	}
	// Predict one full season ahead and compare with the ground truth.
	pred := hw.Forecast(period)
	truth := make([]float64, period)
	for i := range truth {
		k := 20*period + i
		truth[i] = 100 * (1 + 0.5*math.Sin(2*math.Pi*float64(k)/float64(period)))
	}
	if e := RMSE(pred, truth); e > 5 {
		t.Errorf("HW seasonal RMSE = %v, want < 5 (pred %v truth %v)", e, pred, truth)
	}
	if hw.Uncertainty() > 0.2 {
		t.Errorf("uncertainty on clean seasonal series = %v, want small", hw.Uncertainty())
	}
}

// TestHoltWintersBeatsSES is the paper's stated reason for the three-
// smoothing function: single/double ES cannot track seasonality.
func TestHoltWintersBeatsSES(t *testing.T) {
	const period = 12
	series := seasonalSeries(20*period, period, 100, 0.6, 2, 2)
	hw := NewHoltWinters(0.3, 0.05, 0.3, period)
	ses := NewSES(0.3)
	var hwErr, sesErr float64
	for i, v := range series {
		if i > 5*period {
			hwErr += math.Abs(hw.Forecast(1)[0] - v)
			sesErr += math.Abs(ses.Forecast(1)[0] - v)
		}
		hw.Observe(v)
		ses.Observe(v)
	}
	if hwErr >= sesErr {
		t.Errorf("HW cumulative error %v not better than SES %v on seasonal traffic", hwErr, sesErr)
	}
}

func TestWarmupBehaviour(t *testing.T) {
	hw := NewHoltWinters(0.3, 0.05, 0.3, 6)
	if hw.Uncertainty() != 1 {
		t.Error("cold forecaster must report full uncertainty")
	}
	if hw.Forecast(2)[0] != 0 {
		t.Error("cold forecaster with no data must predict 0")
	}
	hw.Observe(42)
	if hw.Forecast(1)[0] != 42 {
		t.Error("warming forecaster must echo the last observation")
	}
	if hw.Uncertainty() != 1 {
		t.Error("warming forecaster must still report σ̂ = 1")
	}
}

func TestUncertaintyBounds(t *testing.T) {
	// Wildly erratic series: σ̂ must clamp at 1.
	r := rand.New(rand.NewSource(3))
	s := NewSES(0.9)
	for i := 0; i < 100; i++ {
		s.Observe(r.Float64() * 1000 * float64(i%7))
	}
	u := s.Uncertainty()
	if u <= 0 || u > 1 {
		t.Errorf("σ̂ = %v outside (0,1]", u)
	}
}

func TestHoltWintersPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHoltWinters(0.3, 0.1, 0.2, 1)
}

func TestMetrics(t *testing.T) {
	if !math.IsNaN(RMSE(nil, nil)) || !math.IsNaN(RMSE([]float64{1}, nil)) {
		t.Error("degenerate RMSE must be NaN")
	}
	if got := RMSE([]float64{3, 4}, []float64{0, 0}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := MAPE([]float64{11, 22}, []float64{10, 20}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %v", got)
	}
	if !math.IsNaN(MAPE([]float64{1}, []float64{0})) {
		t.Error("all-zero actuals MAPE must be NaN")
	}
}

// TestQuickUncertaintyInvariant property-checks σ̂ ∈ (0,1] for arbitrary
// non-negative observation streams across all three models.
func TestQuickUncertaintyInvariant(t *testing.T) {
	f := func(seed int64, nObs uint8) bool {
		r := rand.New(rand.NewSource(seed))
		models := []Forecaster{
			NewSES(0.1 + 0.8*r.Float64()),
			NewDES(0.1+0.8*r.Float64(), 0.1+0.8*r.Float64()),
			NewHoltWinters(0.1+0.8*r.Float64(), 0.1+0.8*r.Float64(), 0.1+0.8*r.Float64(), 2+r.Intn(10)),
		}
		for i := 0; i < int(nObs); i++ {
			v := math.Abs(r.NormFloat64()) * 50
			for _, m := range models {
				m.Observe(v)
			}
		}
		for _, m := range models {
			u := m.Uncertainty()
			if u <= 0 || u > 1 || math.IsNaN(u) {
				return false
			}
			for _, p := range m.Forecast(4) {
				if p < 0 || math.IsNaN(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
