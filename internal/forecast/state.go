package forecast

import "fmt"

// This file is the durability surface of the forecasting models: every
// field that influences a future Observe/Forecast/Uncertainty call is
// exported into a plain state struct, and a model rebuilt from that state
// is bit-identical to the original — the property the crash-recovery path
// (internal/wal) leans on to make replayed decision traces exact. The
// structs are JSON-encodable; Go's float64 JSON round-trip is exact for
// finite values, so serializing a state and restoring it cannot perturb a
// single bit of any smoothing level, trend, or tracked error.

// ErrTrackerState is the durable image of the shared one-step error
// tracker behind every model's σ̂.
type ErrTrackerState struct {
	Warm   bool    `json:"warm"`
	RelVar float64 `json:"rel_var"`
	N      int     `json:"n"`
}

func (e *errTracker) state() ErrTrackerState {
	return ErrTrackerState{Warm: e.warm, RelVar: e.relVar, N: e.n}
}

func errTrackerFromState(st ErrTrackerState) errTracker {
	return errTracker{warm: st.Warm, relVar: st.RelVar, n: st.N}
}

// SESState is the durable image of a SES model, parameters included.
type SESState struct {
	Alpha float64         `json:"alpha"`
	Level float64         `json:"level"`
	Init  bool            `json:"init"`
	Err   ErrTrackerState `json:"err"`
}

// State exports the model.
func (s *SES) State() SESState {
	return SESState{Alpha: s.alpha, Level: s.level, Init: s.init, Err: s.et.state()}
}

// NewSESFromState rebuilds a SES model bit-identical to the exported one.
func NewSESFromState(st SESState) *SES {
	return &SES{alpha: st.Alpha, level: st.Level, init: st.Init, et: errTrackerFromState(st.Err)}
}

// DESState is the durable image of a DES model, parameters included.
type DESState struct {
	Alpha float64         `json:"alpha"`
	Beta  float64         `json:"beta"`
	Level float64         `json:"level"`
	Trend float64         `json:"trend"`
	N     int             `json:"n"`
	Err   ErrTrackerState `json:"err"`
}

// State exports the model.
func (d *DES) State() DESState {
	return DESState{Alpha: d.alpha, Beta: d.beta, Level: d.level, Trend: d.trend, N: d.n, Err: d.et.state()}
}

// NewDESFromState rebuilds a DES model bit-identical to the exported one.
func NewDESFromState(st DESState) *DES {
	return &DES{alpha: st.Alpha, beta: st.Beta, level: st.Level, trend: st.Trend, n: st.N, et: errTrackerFromState(st.Err)}
}

// HoltWintersState is the durable image of a Holt-Winters model: smoothing
// parameters, the level/trend/seasonal components once warmed up, and the
// warm-up history buffer before that.
type HoltWintersState struct {
	Alpha    float64         `json:"alpha"`
	Beta     float64         `json:"beta"`
	Gamma    float64         `json:"gamma"`
	Period   int             `json:"period"`
	Level    float64         `json:"level"`
	Trend    float64         `json:"trend"`
	Seasonal []float64       `json:"seasonal,omitempty"`
	History  []float64       `json:"history,omitempty"`
	Ready    bool            `json:"ready"`
	Step     int             `json:"step"`
	Err      ErrTrackerState `json:"err"`
}

// State exports the model.
func (hw *HoltWinters) State() HoltWintersState {
	return HoltWintersState{
		Alpha: hw.alpha, Beta: hw.beta, Gamma: hw.gamma, Period: hw.period,
		Level: hw.level, Trend: hw.trend,
		Seasonal: append([]float64(nil), hw.seasonal...),
		History:  append([]float64(nil), hw.history...),
		Ready:    hw.ready, Step: hw.step, Err: hw.et.state(),
	}
}

// NewHoltWintersFromState rebuilds a Holt-Winters model bit-identical to
// the exported one. The period must be valid (≥ 2), as NewHoltWinters
// enforces at construction.
func NewHoltWintersFromState(st HoltWintersState) (*HoltWinters, error) {
	if st.Period < 2 {
		return nil, fmt.Errorf("forecast: Holt-Winters state has period %d (< 2)", st.Period)
	}
	return &HoltWinters{
		alpha: st.Alpha, beta: st.Beta, gamma: st.Gamma, period: st.Period,
		level: st.Level, trend: st.Trend,
		seasonal: append([]float64(nil), st.Seasonal...),
		history:  append([]float64(nil), st.History...),
		ready:    st.Ready, step: st.Step, et: errTrackerFromState(st.Err),
	}, nil
}

// AdaptiveState is the durable image of the composite production
// forecaster: all three candidates, so model selection resumes exactly
// where it was.
type AdaptiveState struct {
	SES SESState         `json:"ses"`
	DES DESState         `json:"des"`
	HW  HoltWintersState `json:"hw"`
}

// State exports the composite.
func (a *Adaptive) State() AdaptiveState {
	return AdaptiveState{SES: a.ses.State(), DES: a.des.State(), HW: a.hw.State()}
}

// NewAdaptiveFromState rebuilds the composite bit-identical to the
// exported one.
func NewAdaptiveFromState(st AdaptiveState) (*Adaptive, error) {
	hw, err := NewHoltWintersFromState(st.HW)
	if err != nil {
		return nil, err
	}
	return &Adaptive{ses: NewSESFromState(st.SES), des: NewDESFromState(st.DES), hw: hw}, nil
}
