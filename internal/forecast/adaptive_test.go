package forecast

import (
	"math"
	"testing"
)

// seasonal is the synthetic day shape the regime-change tests feed:
// a sinusoid over `period` epochs around a positive mean.
func seasonal(t, period int) float64 {
	return 100 + 40*math.Sin(2*math.Pi*float64(t)/float64(period))
}

// TestAdaptiveStartsOnSES pins the cold-start selection: before any model
// has proven out, the composite serves SES's flat-line forecast with full
// uncertainty — the conservative reading the orchestrator maps to a
// full-SLA reservation.
func TestAdaptiveStartsOnSES(t *testing.T) {
	a := NewAdaptive(0.5, 0.1, 0.1, 6)
	if got := a.Model(); got != "ses" {
		t.Fatalf("cold model = %q, want ses", got)
	}
	a.Observe(50)
	if got := a.Uncertainty(); got != 1 {
		t.Fatalf("uncertainty after one observation = %v, want 1", got)
	}
	if got := a.Forecast(2); got[0] != 50 || got[1] != 50 {
		t.Fatalf("one-observation forecast = %v, want flat 50s", got)
	}
}

// TestAdaptiveSelectsDESOnRamp drives a sustained linear ramp: DES tracks
// the trend while SES lags a full step behind, so the error-based selector
// must hand the composite to DES — and the served forecast must actually
// be the trend-following one.
func TestAdaptiveSelectsDESOnRamp(t *testing.T) {
	a := NewAdaptive(0.5, 0.3, 0.1, 24) // period 24: HW stays in warm-up throughout
	v := 0.0
	for i := 0; i < 16; i++ {
		v = 10 + 5*float64(i)
		a.Observe(v)
	}
	if got := a.Model(); got != "des" {
		t.Fatalf("model on a ramp = %q, want des", got)
	}
	next := v + 5
	got := a.Forecast(1)[0]
	ses := NewSES(0.5)
	for i := 0; i < 16; i++ {
		ses.Observe(10 + 5*float64(i))
	}
	if math.Abs(got-next) >= math.Abs(ses.Forecast(1)[0]-next) {
		t.Fatalf("selected forecast %v is no better than SES's %v (truth %v)", got, ses.Forecast(1)[0], next)
	}
	if sig := a.Uncertainty(); sig >= 1 {
		t.Fatalf("uncertainty on a learnable ramp = %v, want < 1", sig)
	}
}

// TestAdaptiveKeepsSESOnStationaryNoise is the other side of the selector:
// on mean-reverting data DES's trend term chases noise, its tracked error
// stays at or above SES's, and the composite must not flap away from SES.
func TestAdaptiveKeepsSESOnStationaryNoise(t *testing.T) {
	a := NewAdaptive(0.5, 0.3, 0.1, 48)
	// Deterministic mean-reverting sequence around 100.
	vals := []float64{100, 104, 97, 101, 99, 103, 98, 102, 100, 96, 103, 99, 101, 98, 104, 100}
	for _, v := range vals {
		a.Observe(v)
	}
	if got := a.Model(); got != "ses" {
		t.Fatalf("model on stationary noise = %q, want ses", got)
	}
}

// TestAdaptiveRegimeChangeToHoltWinters is the satellite's headline
// scenario: a slice starts flat (SES serves), ramps into a diurnal pattern
// (DES takes over mid-regime), and once two full seasons of history have
// accumulated the composite must switch to seasonal Holt-Winters — and
// must then out-forecast both non-seasonal candidates on the next season.
func TestAdaptiveRegimeChangeToHoltWinters(t *testing.T) {
	const period = 8
	a := NewAdaptive(0.5, 0.1, 0.2, period)
	ses := NewSES(0.5)
	des := NewDES(0.5, 0.1)

	feed := func(v float64) { a.Observe(v); ses.Observe(v); des.Observe(v) }

	seen := 0
	models := map[string]bool{}
	for i := 0; i < 2*period; i++ {
		feed(seasonal(i, period))
		seen++
		models[a.Model()] = true
		if a.Model() == "holt-winters" && seen < 2*period {
			t.Fatalf("switched to holt-winters after %d observations, before two seasons (%d)", seen, 2*period)
		}
	}
	if got := a.Model(); got != "holt-winters" {
		t.Fatalf("model after two seasons = %q, want holt-winters", got)
	}
	if !models["ses"] && !models["des"] {
		t.Fatalf("no non-seasonal model ever served during warm-up: %v", models)
	}

	// Over the next season, the seasonal model must beat both candidates.
	var truth, hwPred, sesPred, desPred []float64
	for i := 2 * period; i < 3*period; i++ {
		hwPred = append(hwPred, a.Forecast(1)[0])
		sesPred = append(sesPred, ses.Forecast(1)[0])
		desPred = append(desPred, des.Forecast(1)[0])
		v := seasonal(i, period)
		truth = append(truth, v)
		feed(v)
	}
	hwErr, sesErr, desErr := RMSE(hwPred, truth), RMSE(sesPred, truth), RMSE(desPred, truth)
	if !(hwErr < sesErr && hwErr < desErr) {
		t.Fatalf("holt-winters RMSE %v does not beat ses %v / des %v on seasonal data", hwErr, sesErr, desErr)
	}
	if got := a.Model(); got != "holt-winters" {
		t.Fatalf("model regressed to %q after the switch", got)
	}
}

// TestViewConservativeUntilProven pins the shared orchestrator reading:
// full-SLA (Λ, 1) while σ̂ = 1, the clamped point forecast afterwards.
func TestViewConservativeUntilProven(t *testing.T) {
	f := NewSES(0.5)
	lam := 50.0
	if lh, sig := View(f, lam, 0); lh != lam || sig != 1 {
		t.Fatalf("cold view = (%v, %v), want (%v, 1)", lh, sig, lam)
	}
	for i := 0; i < 10; i++ {
		f.Observe(20)
	}
	lh, sig := View(f, lam, 0)
	if sig >= 1 {
		t.Fatalf("view sigma after proving out = %v, want < 1", sig)
	}
	if math.Abs(lh-20) > 1e-9 {
		t.Fatalf("view λ̂ = %v, want the point forecast 20", lh)
	}
	// A forecast above the SLA is clamped to it.
	for i := 0; i < 20; i++ {
		f.Observe(80)
	}
	if lh, _ := View(f, lam, 0); lh != lam {
		t.Fatalf("view λ̂ = %v, want clamp to Λ=%v", lh, lam)
	}
}

// TestViewHorizonUsesForecastPeak: with a rising trend, a 4-epoch horizon
// must reserve against the largest forecast in the window, not the first.
func TestViewHorizonUsesForecastPeak(t *testing.T) {
	d := NewDES(0.6, 0.4)
	for i := 0; i < 12; i++ {
		d.Observe(10 + 2*float64(i))
	}
	lam := 1000.0 // never clamps in this test
	one, _ := View(d, lam, 0)
	four, _ := ViewHorizon(d, lam, 0, 4)
	if !(four > one) {
		t.Fatalf("horizon view %v not above one-step view %v on a rising trend", four, one)
	}
	if got, want := PeakOver(d, 4), d.Forecast(4)[3]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("PeakOver = %v, want the last (largest) step %v", got, want)
	}
	if got, want := PeakOver(d, 0), d.Forecast(1)[0]; got != want {
		t.Fatalf("PeakOver(h<1) = %v, want one-step %v", got, want)
	}
}

// TestViewPadInflates: the pad multiplies the point forecast by (1+pad·σ̂)
// before the SLA clamp.
func TestViewPadInflates(t *testing.T) {
	f := NewSES(0.5)
	for i := 0; i < 10; i++ {
		f.Observe(20 + float64(i%2)) // a little residual error so σ̂ > 0
	}
	lam := 50.0
	bare, sig := View(f, lam, 0)
	padded, _ := View(f, lam, 1)
	if want := bare * (1 + sig); math.Abs(padded-want) > 1e-9 {
		t.Fatalf("padded view = %v, want %v", padded, want)
	}
}
