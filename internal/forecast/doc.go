// Package forecast implements the traffic forecasting sub-block of the E2E
// orchestrator (§2.2.2): the multiplicative Holt-Winters triple exponential
// smoothing the paper selects for its ability to track the daily
// seasonality of mobile traffic, alongside the single and double
// exponential smoothing baselines it dismisses (footnote 6), used here for
// ablation.
//
// Every forecaster consumes one observation per decision epoch (the
// per-epoch peak load λ(t) produced by the monitoring pipeline) and emits
// point forecasts λ̂ for the next epochs together with a normalized
// uncertainty σ̂ ∈ (0, 1] derived from its recent one-step-ahead relative
// errors. σ̂ scales the risk term ξ = σ̂·L of the AC-RR objective: a noisy
// or young forecast makes the orchestrator overbook conservatively.
//
// Adaptive is the production composite: error-tracked model selection
// between SES and DES until two full seasons of history let Holt-Winters
// take over. View / ViewHorizon / PeakOver define the single shared
// reading of a forecaster as a reservation input (λ̂ clamped into the SLA,
// σ̂, optional padding, multi-epoch horizons) used identically by the
// offline simulator, the ctrlplane orchestrator, and the closed-loop
// reoptimizer (internal/reopt).
package forecast
