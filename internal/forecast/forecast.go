package forecast

import "math"

// Forecaster is the interface the orchestrator consumes.
type Forecaster interface {
	// Observe feeds the measurement of the epoch that just ended.
	Observe(v float64)
	// Forecast predicts the next h epochs; element 0 is epoch t+1.
	Forecast(h int) []float64
	// Uncertainty returns σ̂ ∈ (0, 1]: 1 before the model has warmed up,
	// shrinking toward the recent relative RMSE as forecasts prove out.
	Uncertainty() float64
}

// errTracker maintains the exponentially weighted relative one-step error
// all three models share for their σ̂ estimate.
type errTracker struct {
	warm   bool
	relVar float64 // EWMA of squared relative error
	n      int
}

const errDecay = 0.2

func (e *errTracker) record(predicted, actual float64) {
	denom := math.Max(math.Abs(actual), 1e-9)
	rel := (predicted - actual) / denom
	if !e.warm {
		e.relVar = rel * rel
		e.warm = true
	} else {
		e.relVar = (1-errDecay)*e.relVar + errDecay*rel*rel
	}
	e.n++
}

// sigma maps the tracked error to (0, 1]. minSamples guards against
// overconfidence on a handful of lucky epochs.
func (e *errTracker) sigma(minSamples int) float64 {
	if e.n < minSamples {
		return 1
	}
	s := math.Sqrt(e.relVar)
	if s > 1 {
		return 1
	}
	if s < 1e-4 {
		return 1e-4 // σ̂ must stay strictly positive (0 < ξ ≤ L)
	}
	return s
}

// SES is simple (single) exponential smoothing: a flat-line forecaster.
type SES struct {
	alpha float64
	level float64
	init  bool
	et    errTracker
}

// NewSES returns a single-exponential-smoothing forecaster.
func NewSES(alpha float64) *SES { return &SES{alpha: alpha} }

// Observe implements Forecaster.
func (s *SES) Observe(v float64) {
	if !s.init {
		s.level, s.init = v, true
		return
	}
	s.et.record(s.level, v)
	s.level = s.alpha*v + (1-s.alpha)*s.level
}

// Forecast implements Forecaster.
func (s *SES) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = s.level
	}
	return out
}

// Uncertainty implements Forecaster.
func (s *SES) Uncertainty() float64 { return s.et.sigma(1) }

// DES is double (Holt) exponential smoothing: level plus linear trend.
type DES struct {
	alpha, beta  float64
	level, trend float64
	n            int
	et           errTracker
}

// NewDES returns a double-exponential-smoothing forecaster.
func NewDES(alpha, beta float64) *DES { return &DES{alpha: alpha, beta: beta} }

// Observe implements Forecaster.
func (d *DES) Observe(v float64) {
	switch d.n {
	case 0:
		d.level = v
	case 1:
		d.trend = v - d.level
		d.level = v
	default:
		d.et.record(d.level+d.trend, v)
		prevLevel := d.level
		d.level = d.alpha*v + (1-d.alpha)*(d.level+d.trend)
		d.trend = d.beta*(d.level-prevLevel) + (1-d.beta)*d.trend
	}
	d.n++
}

// Forecast implements Forecaster.
func (d *DES) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = math.Max(0, d.level+float64(i+1)*d.trend)
	}
	return out
}

// Uncertainty implements Forecaster.
func (d *DES) Uncertainty() float64 { return d.et.sigma(1) }

// HoltWinters is the multiplicative seasonal (triple) exponential smoothing
// model of Taylor/Holt-Winters the paper adopts: f_HW : λ(1..t-1) → λ̂(t+δ).
type HoltWinters struct {
	alpha, beta, gamma float64
	period             int

	level, trend float64
	seasonal     []float64
	history      []float64 // buffered until two full seasons are seen
	ready        bool
	step         int // index into the seasonal cycle
	et           errTracker
}

// NewHoltWinters returns a multiplicative Holt-Winters forecaster with the
// given smoothing factors and seasonal period (in epochs). Typical mobile
// traffic with hourly epochs uses period 24.
func NewHoltWinters(alpha, beta, gamma float64, period int) *HoltWinters {
	if period < 2 {
		panic("forecast: Holt-Winters period must be >= 2")
	}
	return &HoltWinters{alpha: alpha, beta: beta, gamma: gamma, period: period}
}

// Observe implements Forecaster.
func (hw *HoltWinters) Observe(v float64) {
	if !hw.ready {
		hw.history = append(hw.history, v)
		if len(hw.history) >= 2*hw.period {
			hw.initialize()
		}
		return
	}
	hw.et.record(hw.predict(1), v)

	idx := hw.step % hw.period
	s := hw.seasonal[idx]
	if s < 1e-9 {
		s = 1e-9
	}
	prevLevel := hw.level
	hw.level = hw.alpha*(v/s) + (1-hw.alpha)*(hw.level+hw.trend)
	hw.trend = hw.beta*(hw.level-prevLevel) + (1-hw.beta)*hw.trend
	if hw.level > 1e-12 {
		hw.seasonal[idx] = hw.gamma*(v/hw.level) + (1-hw.gamma)*s
	}
	hw.step++
}

// initialize seeds level/trend/seasonal from the first two seasons, the
// standard Holt-Winters warm start.
func (hw *HoltWinters) initialize() {
	m := hw.period
	mean1, mean2 := 0.0, 0.0
	for i := 0; i < m; i++ {
		mean1 += hw.history[i]
		mean2 += hw.history[m+i]
	}
	mean1 /= float64(m)
	mean2 /= float64(m)
	if mean1 < 1e-9 {
		mean1 = 1e-9
	}

	hw.level = mean2
	hw.trend = (mean2 - mean1) / float64(m)
	hw.seasonal = make([]float64, m)
	for i := 0; i < m; i++ {
		s1 := hw.history[i] / mean1
		s2 := hw.history[m+i] / math.Max(mean2, 1e-9)
		hw.seasonal[i] = (s1 + s2) / 2
		if hw.seasonal[i] < 1e-9 {
			hw.seasonal[i] = 1e-9
		}
	}
	hw.step = 0 // the cycle restarts after two seasons of history
	hw.ready = true
	hw.history = nil
}

// predict returns the h-step-ahead point forecast.
func (hw *HoltWinters) predict(h int) float64 {
	idx := (hw.step + h - 1) % hw.period
	v := (hw.level + float64(h)*hw.trend) * hw.seasonal[idx]
	return math.Max(0, v)
}

// Forecast implements Forecaster. Before warm-up it falls back to the last
// observation (or zero), which keeps the orchestrator maximally
// conservative on brand-new slices.
func (hw *HoltWinters) Forecast(h int) []float64 {
	out := make([]float64, h)
	if !hw.ready {
		last := 0.0
		if len(hw.history) > 0 {
			last = hw.history[len(hw.history)-1]
		}
		for i := range out {
			out[i] = last
		}
		return out
	}
	for i := range out {
		out[i] = hw.predict(i + 1)
	}
	return out
}

// Uncertainty implements Forecaster.
func (hw *HoltWinters) Uncertainty() float64 {
	if !hw.ready {
		return 1
	}
	return hw.et.sigma(1)
}

// Ready reports whether the model has seen its two warm-up seasons and is
// producing seasonal forecasts.
func (hw *HoltWinters) Ready() bool { return hw.ready }

// Adaptive is the orchestrator's production forecaster, a model-selection
// composite: while the Holt-Winters model accumulates its two warm-up
// seasons, the non-seasonal candidates — simple exponential smoothing and
// Holt's double (level+trend) smoothing — run side by side and the one
// with the lower tracked one-step error σ̂ serves the forecasts (SES on
// ties and before either has proven out, so flat workloads keep their
// historical behavior; DES takes over on sustained ramps, which it tracks
// and SES lags). Once two full seasons of history exist, seasonal
// Holt-Winters takes over for good. The paper's testbed admits a second
// slice two epochs after observing the first one's load (§5), which only
// works if the forecaster is useful long before a full season of history
// exists — that is what the non-seasonal phase is for.
type Adaptive struct {
	ses *SES
	des *DES
	hw  *HoltWinters
}

// NewAdaptive returns the composite forecaster.
func NewAdaptive(alpha, beta, gamma float64, period int) *Adaptive {
	return &Adaptive{
		ses: NewSES(alpha),
		des: NewDES(alpha, beta),
		hw:  NewHoltWinters(alpha, beta, gamma, period),
	}
}

// Observe implements Forecaster. Every candidate observes every sample, so
// the moment one takes over it already carries the full history.
func (a *Adaptive) Observe(v float64) {
	a.ses.Observe(v)
	a.des.Observe(v)
	a.hw.Observe(v)
}

// active returns the currently selected model.
func (a *Adaptive) active() Forecaster {
	if a.hw.Ready() {
		return a.hw
	}
	if a.des.Uncertainty() < a.ses.Uncertainty() {
		return a.des
	}
	return a.ses
}

// Model names the currently selected model: "ses", "des", or
// "holt-winters". Diagnostic only — selection is an internal concern —
// but the regime-change tests pin the switching behavior through it.
func (a *Adaptive) Model() string {
	switch a.active().(type) {
	case *HoltWinters:
		return "holt-winters"
	case *DES:
		return "des"
	}
	return "ses"
}

// Forecast implements Forecaster.
func (a *Adaptive) Forecast(h int) []float64 { return a.active().Forecast(h) }

// Uncertainty implements Forecaster.
func (a *Adaptive) Uncertainty() float64 { return a.active().Uncertainty() }

// View is the orchestrator's standard reading of a forecaster for a slice
// with SLA bitrate lam: the conservative (Λ, 1) while the model has not
// proven out (σ̂ ≥ 1, i.e. no trusted history), and otherwise the one-step
// point forecast — optionally padded by (1 + pad·σ̂) — clamped into the SLA.
// Exactly this reading feeds core.TenantSpec.{LambdaHat, Sigma} in the
// simulator, the ctrlplane orchestrator, and the closed-loop controller,
// so the three paths cannot drift apart.
func View(f Forecaster, lam, pad float64) (lambdaHat, sigma float64) {
	return ViewHorizon(f, lam, pad, 1)
}

// ViewHorizon is View against the forecast PEAK over the next h epochs
// instead of only the next one: the reading for a reoptimizer whose
// reservation will stay in force for h epochs. h ≤ 1 degenerates to View.
func ViewHorizon(f Forecaster, lam, pad float64, h int) (lambdaHat, sigma float64) {
	sigma = f.Uncertainty()
	if sigma >= 1 {
		return lam, 1 // no trusted history: reserve the full SLA
	}
	pred := PeakOver(f, h) * (1 + pad*sigma)
	return math.Min(pred, lam), sigma
}

// PeakOver returns the maximum point forecast over the next h epochs (the
// horizon analogue of the monitoring pipeline's per-epoch max-aggregation);
// h ≤ 1 is the plain one-step forecast.
func PeakOver(f Forecaster, h int) float64 {
	if h < 1 {
		h = 1
	}
	fc := f.Forecast(h)
	peak := fc[0]
	for _, v := range fc[1:] {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// RMSE computes the root-mean-square error between two equal-length series;
// it is used by the forecasting-accuracy ablation (EXPERIMENTS.md A2).
func RMSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAPE computes the mean absolute percentage error, skipping zero actuals.
func MAPE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	s, n := 0.0, 0
	for i := range pred {
		if math.Abs(actual[i]) < 1e-12 {
			continue
		}
		s += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
