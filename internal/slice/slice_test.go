package slice

import (
	"math"
	"testing"
)

// TestTable1 pins the exact values of the paper's Table 1.
func TestTable1(t *testing.T) {
	e := Table1(EMBB)
	if e.Reward != 1 || e.DelayBound != 30e-3 || e.RateMbps != 50 ||
		e.Compute.BaselineCPU != 0 || e.Compute.CPUPerMbps != 0 {
		t.Errorf("eMBB template wrong: %+v", e)
	}
	m := Table1(MMTC)
	if m.Reward != 3 || m.DelayBound != 30e-3 || m.RateMbps != 10 ||
		m.StdMbps != 0 || m.Compute.CPUPerMbps != 2 {
		t.Errorf("mMTC template wrong: %+v", m)
	}
	u := Table1(URLLC)
	if u.Reward != 2.2 || u.DelayBound != 5e-3 || u.RateMbps != 25 ||
		u.Compute.CPUPerMbps != 0.2 {
		t.Errorf("uRLLC template wrong: %+v", u)
	}
}

// TestComputeModel checks the linear load→CPU map and the paper's sizing
// argument: one mMTC tenant at max load needs 20 cores per BS, which is
// exactly the edge CU's per-BS budget.
func TestComputeModel(t *testing.T) {
	m := Table1(MMTC)
	if got := m.Compute.Cores(m.RateMbps); got != 20 {
		t.Errorf("mMTC at max load = %v cores, want 20", got)
	}
	u := Table1(URLLC)
	if got := u.Compute.Cores(25); math.Abs(got-5) > 1e-12 {
		t.Errorf("uRLLC at max load = %v cores, want 5", got)
	}
	cm := ComputeModel{BaselineCPU: 1.5, CPUPerMbps: 0.5}
	if cm.Cores(10) != 6.5 {
		t.Error("baseline not added")
	}
}

func TestWithStd(t *testing.T) {
	e := Table1(EMBB).WithStd(12.5)
	if e.StdMbps != 12.5 {
		t.Error("WithStd failed")
	}
	if Table1(EMBB).StdMbps != 0 {
		t.Error("WithStd mutated the base template")
	}
}

func TestPenaltyFactor(t *testing.T) {
	s := SLA{Template: Table1(URLLC)}.WithPenaltyFactor(4)
	if math.Abs(s.Penalty-4*2.2) > 1e-12 {
		t.Errorf("penalty = %v, want %v", s.Penalty, 4*2.2)
	}
}

func TestTypeString(t *testing.T) {
	if EMBB.String() != "eMBB" || MMTC.String() != "mMTC" || URLLC.String() != "uRLLC" {
		t.Error("type strings wrong")
	}
	if Type(9).String() == "" {
		t.Error("unknown type must print")
	}
}

func TestTable1PanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown type")
		}
	}()
	Table1(Type(42))
}

func TestStateActive(t *testing.T) {
	s := &State{Accepted: true, Remaining: 2}
	if !s.Active() {
		t.Error("accepted slice with remaining epochs must be active")
	}
	s.Remaining = 0
	if s.Active() {
		t.Error("expired slice must be inactive")
	}
	s2 := &State{Accepted: false, Remaining: 5}
	if s2.Active() {
		t.Error("rejected slice must be inactive")
	}
}
