package slice

import "fmt"

// Type is one of the 3GPP slice categories of Table 1.
type Type int

// Slice types from Table 1.
const (
	EMBB  Type = iota // enhanced/extreme Mobile BroadBand
	MMTC              // massive Machine-Type Communications
	URLLC             // ultra-Reliable Low-Latency Communications
)

// String names the slice type the way the paper does.
func (t Type) String() string {
	switch t {
	case EMBB:
		return "eMBB"
	case MMTC:
		return "mMTC"
	case URLLC:
		return "uRLLC"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// ComputeModel is the paper's sτ = {aτ, bτ}: the linear map from network
// load (Mb/s) arriving at the tenant's vertical service to CPU cores
// (constraint (2)). BaselineCPU (aτ) covers the VS operating system and
// per-user state; CPUPerMbps (bτ) is per-bit processing.
type ComputeModel struct {
	BaselineCPU float64 // aτ, cores
	CPUPerMbps  float64 // bτ, cores per Mb/s
}

// Cores returns the CPU requirement for the given served bitrate.
func (m ComputeModel) Cores(mbps float64) float64 {
	return m.BaselineCPU + m.CPUPerMbps*mbps
}

// Template is a slice blueprint: Table 1's per-type parameters. Reward is
// expressed in the paper's monetary units; mMTC and uRLLC rewards carry a
// compute-dependent term (1+b) and (2+b) reflecting their heavier backends.
type Template struct {
	Type       Type
	Reward     float64      // R, monetary units per BS-path per epoch
	DelayBound float64      // Δ, seconds
	RateMbps   float64      // Λ, requested bitrate per radio site, Mb/s
	StdMbps    float64      // σ of the actual traffic; 0 = deterministic
	Compute    ComputeModel // sτ
}

// Table1 returns the end-to-end network slice templates of Table 1.
// σ for eMBB and uRLLC is "variable" in the paper and is set per scenario
// with WithStd; mMTC is deterministic (σ = 0).
func Table1(t Type) Template {
	switch t {
	case EMBB:
		return Template{Type: EMBB, Reward: 1, DelayBound: 30e-3, RateMbps: 50,
			Compute: ComputeModel{BaselineCPU: 0, CPUPerMbps: 0}}
	case MMTC:
		b := 2.0
		return Template{Type: MMTC, Reward: 1 + b, DelayBound: 30e-3, RateMbps: 10,
			StdMbps: 0, Compute: ComputeModel{BaselineCPU: 0, CPUPerMbps: b}}
	case URLLC:
		b := 0.2
		return Template{Type: URLLC, Reward: 2 + b, DelayBound: 5e-3, RateMbps: 25,
			Compute: ComputeModel{BaselineCPU: 0, CPUPerMbps: b}}
	}
	panic(fmt.Sprintf("slice: unknown type %d", t))
}

// WithStd returns a copy of the template with the traffic standard
// deviation set (the "variable σ" column of Table 1).
func (t Template) WithStd(std float64) Template {
	t.StdMbps = std
	return t
}

// SLA is the paper's Φτ: the agreement formed when a slice request is
// accepted, valid for Duration decision epochs.
type SLA struct {
	Template
	MeanMbps float64 // λ̄, the true mean the tenant's traffic will exhibit
	Duration int     // Lτ, epochs
	Penalty  float64 // Kτ, monetary units charged per SLA violation
}

// PenaltyFactor derives K = m·R/Λ·Λ = m·R per full violation; the paper
// parameterizes K = (m/Λ)·R so that failing to serve a fraction f of the
// SLA costs f·m·R. WithPenaltyFactor sets Penalty = m·R.
func (s SLA) WithPenaltyFactor(m float64) SLA {
	s.Penalty = m * s.Reward
	return s
}

// Request is a tenant's slice request as received by the slice manager in
// one decision epoch.
type Request struct {
	Tenant  string
	SLA     SLA
	Arrival int // decision epoch index
}

// State tracks an admitted slice through its lifetime (the paper's Ωτ).
type State struct {
	Request   Request
	Accepted  bool
	CU        int   // chosen computing unit index
	PathIdx   []int // per-BS index into the P_{b,CU} path list
	Remaining int   // Ωτ: epochs until expiration
}

// Active reports whether the slice still holds resources.
func (s *State) Active() bool { return s.Accepted && s.Remaining > 0 }
