// Package slice defines the network-slice service model of the paper:
// tenants, slice templates, and the SLA tuple Φτ = {sτ, Δτ, Λτ, Lτ} (§2.2.1)
// together with the three 3GPP NSSAI slice types of Table 1 (eMBB, mMTC,
// uRLLC) used throughout the evaluation.
package slice
