// Package profiling is the one shared implementation of the
// -cpuprofile/-memprofile flags the CLIs (cmd/simctl, cmd/loadgen) expose:
// start a pprof CPU capture, dump a live-object heap profile on clean
// exit. EXPERIMENTS.md "Profiling the solver" documents the workflow these
// flags support.
package profiling
