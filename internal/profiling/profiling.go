package profiling

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile (when cpu is non-empty) and arms a heap
// profile dump (when mem is non-empty). The returned stop function must run
// before process exit for the files to be complete — callers defer it in
// main; log.Fatal paths lose the profile, which is acceptable for a
// diagnostics flag. Either path may be empty independently.
func Start(cpu, mem string) (stop func(), err error) {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		return func() {
			pprof.StopCPUProfile()
			f.Close()
			writeHeap(mem)
		}, nil
	}
	return func() { writeHeap(mem) }, nil
}

// writeHeap dumps the live-object heap profile to mem (no-op when empty).
func writeHeap(mem string) {
	if mem == "" {
		return
	}
	f, err := os.Create(mem)
	if err != nil {
		log.Print(err)
		return
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows live objects
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Print(err)
	}
}
