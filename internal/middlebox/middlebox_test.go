package middlebox

import (
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// sink starts a TCP server counting received bytes.
func sink(t *testing.T) (addr string, received *int64, closeFn func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 32<<10)
				for {
					n, err := c.Read(buf)
					atomic.AddInt64(&count, int64(n))
					if err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return lis.Addr().String(), &count, func() { lis.Close() }
}

// blast writes bytes through the proxy for the given duration and returns
// the number of bytes the service side managed to push.
func blast(t *testing.T, addr string, d time.Duration) int64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 16<<10)
	var sent int64
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		conn.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := conn.Write(buf)
		sent += int64(n)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // shaped: the proxy is back-pressuring us
			}
			break
		}
	}
	return sent
}

func TestTransparentForwarding(t *testing.T) {
	addr, received, closeSink := sink(t)
	defer closeSink()
	// Generous SLA and reservation: everything flows through.
	p, err := New("127.0.0.1:0", addr, 10000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 256<<10)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	waitFor(t, 3*time.Second, func() bool {
		return atomic.LoadInt64(received) == int64(len(msg))
	})
	if s := p.Stats(); s.Dropped != 0 {
		t.Errorf("transparent mode dropped %d bytes", s.Dropped)
	}
}

func TestShapingToReservation(t *testing.T) {
	addr, received, closeSink := sink(t)
	defer closeSink()
	// SLA 1000 Mb/s (never exceeded) but only 20 Mb/s reserved: the proxy
	// must buffer and drain at ~20 Mb/s, not at line rate.
	p, err := New("127.0.0.1:0", addr, 1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const dur = 400 * time.Millisecond
	blast(t, p.Addr(), dur)
	time.Sleep(100 * time.Millisecond)

	got := atomic.LoadInt64(received)
	// 20 Mb/s over 0.5 s ≈ 1.25 MB; allow generous slack for bursts and
	// scheduling, but loopback line rate would be hundreds of MB.
	maxExpected := int64(20e6 / 8 * 1.0) // one full second worth
	if got > maxExpected {
		t.Errorf("received %d bytes, want ≤ %d (shaping not applied)", got, maxExpected)
	}
	if got == 0 {
		t.Error("nothing was forwarded at all")
	}
	if s := p.Stats(); s.Dropped != 0 {
		t.Errorf("in-SLA traffic was dropped: %+v", s)
	}
}

func TestPolicingBeyondSLA(t *testing.T) {
	addr, _, closeSink := sink(t)
	defer closeSink()
	// Tiny SLA: a loopback blast exceeds it immediately, so the proxy must
	// drop (not buffer) the excess.
	p, err := New("127.0.0.1:0", addr, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	blast(t, p.Addr(), 400*time.Millisecond)
	waitFor(t, 2*time.Second, func() bool { return p.Stats().Dropped > 0 })
}

func TestSetReservationLive(t *testing.T) {
	addr, received, closeSink := sink(t)
	defer closeSink()
	p, err := New("127.0.0.1:0", addr, 10000, 1) // 1 Mb/s: a trickle
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, 64<<10)
		for i := 0; i < 64; i++ {
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	slow := atomic.LoadInt64(received)
	p.SetReservation(10000) // orchestrator raises the reservation
	time.Sleep(300 * time.Millisecond)
	fast := atomic.LoadInt64(received)

	if fast-slow <= slow+1 {
		t.Errorf("raising the reservation had no effect: before=%d after=%d", slow, fast-slow)
	}
}

func TestUpstreamTransparent(t *testing.T) {
	// The user→service direction must relay untouched (acks, requests).
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte("pong")) // server answers immediately
	}()

	p, err := New("127.0.0.1:0", lis.Addr().String(), 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	reply, err := io.ReadAll(conn)
	if err != nil && len(reply) == 0 {
		t.Fatal(err)
	}
	if string(reply) != "pong" {
		t.Errorf("upstream relay broken: %q", reply)
	}
}

func TestSetSLA(t *testing.T) {
	addr, _, closeSink := sink(t)
	defer closeSink()
	p, err := New("127.0.0.1:0", addr, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetSLA(1000)
	p.mu.Lock()
	got := p.slaBps
	p.mu.Unlock()
	if got != 1000e6 {
		t.Errorf("SetSLA: %v", got)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met before timeout")
}
