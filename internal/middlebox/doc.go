// Package middlebox implements the transparent rate-control middlebox of
// §2.1.3: a Split-TCP proxy inserted between a slice's vertical service and
// its end users. The proxy terminates the service-side TCP connection and
// opens a second one toward the user, which lets it police the slice
// without perturbing the transmitter's congestion control:
//
//   - traffic within the reserved capacity is forwarded transparently;
//   - traffic above the reservation but within the SLA is buffered — the
//     service side is acknowledged immediately (by reading eagerly) and
//     bytes drain toward the user at the reserved rate;
//   - traffic beyond the SLA is randomly dropped to police the slice to
//     its agreement.
//
// Reservations change at every decision epoch; SetReservation applies the
// orchestrator's new value to a live proxy without disturbing connections.
package middlebox
