package middlebox

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Stats counts proxy activity in bytes.
type Stats struct {
	Forwarded int64 // delivered to the user
	Dropped   int64 // policed away (load beyond the SLA)
}

// Proxy is a split-TCP rate-control middlebox for one slice.
type Proxy struct {
	lis    net.Listener
	target string

	mu       sync.Mutex
	slaBps   float64 // SLA bitrate Λ in bits/s
	resBps   float64 // reserved capacity z in bits/s
	stats    Stats
	closed   bool
	rng      *rand.Rand
	winStart time.Time
	winBytes int64
	lastRate float64 // load estimate of the previous window (bits/s)

	wg sync.WaitGroup
}

// rateWindow is the sliding window used to estimate the offered load for
// the SLA policing decision.
const rateWindow = 100 * time.Millisecond

// chunkSize is the read granularity; one chunk approximates "a packet
// burst" for policing and token accounting.
const chunkSize = 16 << 10

// New starts a proxy listening on listenAddr (use "127.0.0.1:0" for tests)
// that relays to targetAddr, policing to slaMbps and shaping to
// reservedMbps. Close releases the listener and all connections.
func New(listenAddr, targetAddr string, slaMbps, reservedMbps float64) (*Proxy, error) {
	lis, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("middlebox: listen: %w", err)
	}
	p := &Proxy{
		lis:    lis,
		target: targetAddr,
		slaBps: slaMbps * 1e6,
		resBps: reservedMbps * 1e6,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address — the address the slice's
// vertical service should send user traffic to.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// SetReservation applies a new reserved capacity (Mb/s), e.g. at a
// decision-epoch boundary.
func (p *Proxy) SetReservation(mbps float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.resBps = mbps * 1e6
}

// SetSLA applies a new SLA bitrate (Mb/s); used when an SLA is renegotiated.
func (p *Proxy) SetSLA(mbps float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.slaBps = mbps * 1e6
}

// Stats returns a snapshot of proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops accepting and waits for relay goroutines to finish.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.lis.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handle(conn)
	}
}

// handle splits one service connection into service↔proxy and proxy↔user
// legs (Split TCP, [28] in the paper).
func (p *Proxy) handle(service net.Conn) {
	defer p.wg.Done()
	defer service.Close()

	user, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	defer user.Close()

	done := make(chan struct{}, 2)
	// Downstream: service → user, with policing and shaping.
	go func() {
		p.pump(service, user)
		done <- struct{}{}
	}()
	// Upstream: user → service, transparent (acks, requests).
	go func() {
		io.Copy(service, user) //nolint:errcheck // best-effort relay
		done <- struct{}{}
	}()
	<-done
}

// pump reads chunks from the service, applies the three-regime policy and
// writes toward the user at no more than the reserved rate.
func (p *Proxy) pump(service net.Conn, user net.Conn) {
	buf := make([]byte, chunkSize)
	tokens := float64(chunkSize) // start with one chunk of credit
	last := time.Now()

	for {
		n, err := service.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if p.policeSLA(n) {
				// Beyond the SLA: the chunk is dropped. The service's TCP
				// already saw it acknowledged on the first leg, so its
				// congestion control does not react (§2.1.3).
				p.addDropped(int64(n))
			} else {
				// Within the SLA: shape to the reserved rate. Bytes wait
				// here (the "buffer" regime) whenever the offered load
				// exceeds the reservation.
				for {
					now := time.Now()
					p.mu.Lock()
					rate := p.resBps / 8 // bytes per second
					p.mu.Unlock()
					if rate < 1 {
						rate = 1
					}
					tokens += rate * now.Sub(last).Seconds()
					if tokens > 4*chunkSize {
						tokens = 4 * chunkSize
					}
					last = now
					if tokens >= float64(n) {
						tokens -= float64(n)
						break
					}
					deficit := float64(n) - tokens
					time.Sleep(time.Duration(deficit / rate * float64(time.Second)))
				}
				if _, err := user.Write(chunk); err != nil {
					return
				}
				p.addForwarded(int64(n))
			}
		}
		if err != nil {
			return
		}
	}
}

// policeSLA estimates the offered load over the sliding window and decides
// whether to drop this chunk, with probability 1 − Λ/load once the load
// exceeds the SLA.
func (p *Proxy) policeSLA(n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if p.winStart.IsZero() {
		p.winStart = now
	}
	if el := now.Sub(p.winStart); el > rateWindow {
		p.lastRate = float64(p.winBytes) * 8 / el.Seconds()
		p.winStart = now
		p.winBytes = 0
	}
	p.winBytes += int64(n)
	// A young window has too little data for a stable estimate; fall back
	// to the previous window's rate so compliant traffic is never dropped
	// on a window boundary.
	loadBps := p.lastRate
	if el := now.Sub(p.winStart); el >= 20*time.Millisecond {
		loadBps = float64(p.winBytes) * 8 / el.Seconds()
	}
	if loadBps <= p.slaBps || p.slaBps <= 0 {
		return false
	}
	dropProb := 1 - p.slaBps/loadBps
	return p.rng.Float64() < dropProb
}

func (p *Proxy) addForwarded(n int64) {
	p.mu.Lock()
	p.stats.Forwarded += n
	p.mu.Unlock()
}

func (p *Proxy) addDropped(n int64) {
	p.mu.Lock()
	p.stats.Dropped += n
	p.mu.Unlock()
}
