// Package yield implements the paper's slice economics as a shared,
// online-capable accounting layer: the realized net revenue of an
// overbooked slice portfolio — per-slice reward minus the SLA penalty
// charged on the dropped traffic fraction — against the expected revenue
// (−Ψ) the AC-RR solver priced when it made the reservation.
//
// Net yield under overbooking is the paper's headline quantity (§4.3): the
// orchestrator reserves less than the SLA bitrate Λ when the forecast peak
// λ̂ is lower, pockets the capacity it freed by admitting more slices, and
// pays K·f whenever a fraction f of in-SLA demand exceeds what it reserved.
// Before this package, that arithmetic lived privately inside the offline
// simulator; it is now shared between
//
//   - internal/sim, whose per-epoch measurement stage books every
//     monitored sample through an Assessment (bit-identical to the old
//     inline accounting), and
//   - internal/reopt, whose closed-loop controller books the same
//     Assessments online from monitor.Store samples and publishes a live
//     Ledger through the control plane's /metrics surface.
//
// An Assessment scores one (slice, epoch) against the reservation in
// force; a Ledger accumulates Entries and solver-side expectations into a
// concurrent-safe running account whose Snapshot is deterministic (slices
// sorted by name) so tests can compare ledgers across worker counts.
package yield
