package yield

import (
	"sort"
	"sync"
)

// violationEps is the slack below which a reservation deficit is treated as
// numerical noise rather than an SLA violation. It matches the tolerance
// the simulator has always used, so refactoring the accounting onto this
// package cannot move a single violation count.
const violationEps = 1e-9

// Assessment scores one slice's monitored samples for one epoch against
// the per-BS reservation that was in force. Feed every monitoring sample
// through Sample, then read the epoch's violation count, dropped SLA
// fraction, and realized revenue. Not safe for concurrent use; each
// (slice, epoch) gets its own Assessment.
type Assessment struct {
	lam      float64 // Λ: the SLA bitrate demand is clipped to
	samples  int
	violated int
	dropSum  float64 // Σ deficit/Λ over violated samples
}

// NewAssessment starts an epoch assessment for a slice with SLA bitrate
// lamMbps (Λ, per radio site).
func NewAssessment(lamMbps float64) *Assessment {
	return &Assessment{lam: lamMbps}
}

// Sample books one monitoring observation: load is the measured demand at
// one element during one monitoring slot, reserved the reservation z held
// there. Demand beyond the SLA is the tenant's own excess and never counts
// as a violation (the paper's in-SLA clipping); a reservation deficit on
// in-SLA demand is a violation whose dropped fraction accumulates.
func (a *Assessment) Sample(load, reserved float64) {
	inSLA := load
	if inSLA > a.lam {
		inSLA = a.lam
	}
	if deficit := inSLA - reserved; deficit > violationEps {
		a.violated++
		a.dropSum += deficit / a.lam
	}
	a.samples++
}

// Violated returns the number of violated samples so far.
func (a *Assessment) Violated() int { return a.violated }

// Samples returns the number of samples booked so far.
func (a *Assessment) Samples() int { return a.samples }

// DroppedFrac returns the epoch's mean dropped SLA fraction over all
// booked samples (0 when nothing was booked).
func (a *Assessment) DroppedFrac() float64 {
	if a.samples == 0 {
		return 0
	}
	return a.dropSum / float64(a.samples)
}

// Realized returns the epoch's realized net revenue under the paper's
// penalty design: reward R minus K·(dropped fraction), so with K = m·R a
// slice that loses a fraction f of its SLA pays f·m of its reward back.
func (a *Assessment) Realized(reward, penalty float64) float64 {
	return reward - penalty*a.DroppedFrac()
}

// Entry renders the assessment as one ledger line for the given slice and
// epoch, pricing it with the slice's commercial terms.
func (a *Assessment) Entry(slice string, epoch int, reward, penalty float64) Entry {
	return Entry{
		Slice:    slice,
		Epoch:    epoch,
		Reward:   reward,
		Penalty:  penalty * a.DroppedFrac(),
		Realized: a.Realized(reward, penalty),
		Violated: a.violated,
		Samples:  a.samples,
		Dropped:  a.DroppedFrac(),
	}
}

// Entry is one (slice, epoch) line of the ledger.
type Entry struct {
	Slice string `json:"slice"`
	Epoch int    `json:"epoch"`
	// Reward is the full epoch reward R; Penalty the booked penalty K·f;
	// Realized their difference.
	Reward   float64 `json:"reward"`
	Penalty  float64 `json:"penalty"`
	Realized float64 `json:"realized"`
	// Violated / Samples count monitoring samples; Dropped is the mean
	// dropped SLA fraction over the epoch's samples.
	Violated int     `json:"violated"`
	Samples  int     `json:"samples"`
	Dropped  float64 `json:"dropped"`
}

// SliceTotals aggregates one slice's ledger lines.
type SliceTotals struct {
	Slice    string  `json:"slice"`
	Epochs   int     `json:"epochs"`
	Reward   float64 `json:"reward"`
	Penalty  float64 `json:"penalty"`
	Realized float64 `json:"realized"`
	Violated int     `json:"violated"`
	Samples  int     `json:"samples"`
}

// Summary is a consistent snapshot of a Ledger.
type Summary struct {
	// Realized = Reward − Penalty over every booked entry: the paper's net
	// yield, measured.
	Realized float64 `json:"realized"`
	Reward   float64 `json:"reward"`
	Penalty  float64 `json:"penalty"`
	// Expected totals the solver-side estimates (−Ψ) booked per decision
	// round; ExpectedRounds counts them. Realized − Expected is the
	// forecaster's pricing error made visible.
	Expected       float64 `json:"expected"`
	ExpectedRounds int     `json:"expected_rounds"`
	// Entries counts booked (slice, epoch) lines; Violated/Samples count
	// monitoring samples; ViolationProb is their ratio (the §4.3.3
	// footprint metric).
	Entries       int     `json:"entries"`
	Violated      int     `json:"violated"`
	Samples       int     `json:"samples"`
	ViolationProb float64 `json:"violation_prob"`
	// PerSlice is sorted by slice name, so two ledgers fed the same books
	// in any order snapshot identically.
	PerSlice []SliceTotals `json:"per_slice,omitempty"`
}

// Ledger is the running revenue account. Safe for concurrent use. Totals
// are accumulated per slice (realized side) and per source (expected
// side) and reduced in sorted-key order, so the booking interleave ACROSS
// slices and sources never affects a Snapshot — only the order within one
// key does, and every in-tree booker is serial per key: the closed-loop
// controller books a slice's entries in epoch order, and an admission
// domain's rounds (one expected booking each) execute serially on its
// one shard.
type Ledger struct {
	mu             sync.Mutex
	perSlice       map[string]*SliceTotals
	expected       map[string]float64 // per booking source (domain)
	expectedRounds int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{perSlice: map[string]*SliceTotals{}, expected: map[string]float64{}}
}

// Book adds one entry to the account.
func (l *Ledger) Book(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.perSlice[e.Slice]
	if st == nil {
		st = &SliceTotals{Slice: e.Slice}
		l.perSlice[e.Slice] = st
	}
	st.Epochs++
	st.Reward += e.Reward
	st.Penalty += e.Penalty
	st.Realized += e.Realized
	st.Violated += e.Violated
	st.Samples += e.Samples
}

// BookExpected adds one decision round's solver-estimated net revenue
// (core.Decision.Revenue(), the −Ψ of the AC-RR objective) under the
// given source key — the admission domain, for engine-booked rounds.
// Per-source accumulation is what keeps Summary.Expected reproducible
// when several domains' shard workers book concurrently.
func (l *Ledger) BookExpected(source string, v float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expected[source] += v
	l.expectedRounds++
}

// ExpectedTotal is one booking source's accumulated expected revenue in a
// LedgerState.
type ExpectedTotal struct {
	Source string  `json:"source"`
	Value  float64 `json:"value"`
}

// LedgerState is the durable image of a Ledger, the form the crash-recovery
// snapshot (internal/wal) persists: per-slice totals and per-source expected
// accumulators, each sorted by key so two equal ledgers export byte-equal
// states.
type LedgerState struct {
	PerSlice       []SliceTotals   `json:"per_slice,omitempty"`
	Expected       []ExpectedTotal `json:"expected,omitempty"`
	ExpectedRounds int             `json:"expected_rounds"`
}

// ExportState captures the ledger's full account.
func (l *Ledger) ExportState() LedgerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LedgerState{ExpectedRounds: l.expectedRounds}
	names := make([]string, 0, len(l.perSlice))
	for n := range l.perSlice {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st.PerSlice = append(st.PerSlice, *l.perSlice[n])
	}
	sources := make([]string, 0, len(l.expected))
	for src := range l.expected {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	for _, src := range sources {
		st.Expected = append(st.Expected, ExpectedTotal{Source: src, Value: l.expected[src]})
	}
	return st
}

// RestoreState replaces the ledger's account with the exported one. A
// ledger restored from a state and the ledger that exported it snapshot
// identically.
func (l *Ledger) RestoreState(st LedgerState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.perSlice = make(map[string]*SliceTotals, len(st.PerSlice))
	for i := range st.PerSlice {
		cp := st.PerSlice[i]
		l.perSlice[cp.Slice] = &cp
	}
	l.expected = make(map[string]float64, len(st.Expected))
	for _, e := range st.Expected {
		l.expected[e.Source] = e.Value
	}
	l.expectedRounds = st.ExpectedRounds
}

// Snapshot returns the current account, per-slice lines sorted by name.
func (l *Ledger) Snapshot() Summary {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.perSlice))
	for n := range l.perSlice {
		names = append(names, n)
	}
	sort.Strings(names)
	sources := make([]string, 0, len(l.expected))
	for src := range l.expected {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	s := Summary{ExpectedRounds: l.expectedRounds}
	for _, src := range sources {
		s.Expected += l.expected[src]
	}
	for _, n := range names {
		st := *l.perSlice[n]
		s.PerSlice = append(s.PerSlice, st)
		s.Entries += st.Epochs
		s.Reward += st.Reward
		s.Penalty += st.Penalty
		s.Realized += st.Realized
		s.Violated += st.Violated
		s.Samples += st.Samples
	}
	if s.Samples > 0 {
		s.ViolationProb = float64(s.Violated) / float64(s.Samples)
	}
	return s
}
