package yield

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestAssessmentScoresInSLADeficitsOnly(t *testing.T) {
	a := NewAssessment(10)

	a.Sample(4, 5)  // demand under the reservation: fine
	a.Sample(50, 5) // demand beyond the SLA is clipped to Λ=10: deficit 5
	a.Sample(8, 5)  // in-SLA demand 8 over reservation 5: deficit 3
	a.Sample(5, 5)  // exactly met: fine

	if got := a.Samples(); got != 4 {
		t.Fatalf("samples = %d, want 4", got)
	}
	if got := a.Violated(); got != 2 {
		t.Fatalf("violated = %d, want 2", got)
	}
	// dropSum = 5/10 + 3/10 = 0.8 over 4 samples.
	if got, want := a.DroppedFrac(), 0.2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("dropped = %v, want %v", got, want)
	}
	// R=2, K=m·R with m=4 → penalty 8·0.2 = 1.6, realized 0.4.
	if got, want := a.Realized(2, 8), 0.4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("realized = %v, want %v", got, want)
	}

	e := a.Entry("s1", 7, 2, 8)
	if e.Slice != "s1" || e.Epoch != 7 || e.Violated != 2 || e.Samples != 4 {
		t.Fatalf("entry identity fields wrong: %+v", e)
	}
	if math.Abs(e.Reward-e.Penalty-e.Realized) > 1e-12 {
		t.Fatalf("entry does not balance: %+v", e)
	}
}

func TestAssessmentEmptyIsNeutral(t *testing.T) {
	a := NewAssessment(10)
	if a.DroppedFrac() != 0 {
		t.Fatal("empty assessment dropped a fraction")
	}
	if got := a.Realized(3, 12); got != 3 {
		t.Fatalf("empty assessment realized %v, want the full reward", got)
	}
}

// TestLedgerSnapshotInterleaveIndependent books the same per-slice entry
// sequences under two different cross-slice interleaves — round-robin vs
// grouped by slice — and requires bit-identical snapshots: totals live per
// slice and reduce in sorted-name order, so only a slice's own booking
// order (fixed by the epoch sequence) can matter. This is the property the
// closed-loop determinism tests lean on.
func TestLedgerSnapshotInterleaveIndependent(t *testing.T) {
	entries := make([]Entry, 0, 60)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		a := NewAssessment(25)
		for k := 0; k < 12; k++ {
			a.Sample(rng.Float64()*30, 18)
		}
		entries = append(entries, a.Entry([]string{"a", "b", "c"}[i%3], i/3, 2.2, 4.4))
	}

	book := func(perm []int) Summary {
		l := NewLedger()
		for _, i := range perm {
			l.Book(entries[i])
		}
		l.BookExpected("sim", 10.5)
		l.BookExpected("sim", -1.25)
		return l.Snapshot()
	}

	// Round-robin across slices (the construction order) vs grouped by
	// slice; both preserve each slice's own epoch order.
	roundRobin := make([]int, 0, len(entries))
	grouped := make([]int, 0, len(entries))
	for i := range entries {
		roundRobin = append(roundRobin, i)
	}
	for mod := 0; mod < 3; mod++ {
		for i := range entries {
			if i%3 == mod {
				grouped = append(grouped, i)
			}
		}
	}
	s1, s2 := book(roundRobin), book(grouped)

	if len(s1.PerSlice) != 3 || s1.PerSlice[0].Slice != "a" || s1.PerSlice[2].Slice != "c" {
		t.Fatalf("per-slice lines not sorted: %+v", s1.PerSlice)
	}
	// Per-slice totals accumulate per slice and reduce in sorted order, so
	// the two bookings must agree exactly, not just approximately.
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots diverge:\n%+v\n%+v", s1, s2)
	}
	if s1.Expected != 9.25 || s1.ExpectedRounds != 2 {
		t.Fatalf("expected side wrong: %+v", s1)
	}
	if s1.Entries != 60 || s1.Samples != 60*12 {
		t.Fatalf("counts wrong: %+v", s1)
	}
	if s1.ViolationProb != float64(s1.Violated)/float64(s1.Samples) {
		t.Fatalf("violation prob inconsistent: %+v", s1)
	}
}

// TestLedgerConcurrentBookingIsSafe is the race-detector smoke: many
// goroutines booking disjoint slices plus expected-revenue rounds.
func TestLedgerConcurrentBookingIsSafe(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for ep := 0; ep < 50; ep++ {
				a := NewAssessment(10)
				a.Sample(12, 8)
				l.Book(a.Entry(string(rune('a'+g)), ep, 1, 2))
				l.BookExpected(string(rune('a'+g)), 0.5)
			}
		}(g)
	}
	wg.Wait()
	s := l.Snapshot()
	if s.Entries != 400 || s.ExpectedRounds != 400 || len(s.PerSlice) != 8 {
		t.Fatalf("concurrent booking lost entries: %+v", s)
	}
}
