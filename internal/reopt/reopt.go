package reopt

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/forecast"
	"repro/internal/monitor"
	"repro/internal/yield"
)

// ObservedPeak is one slice's §2.2.2 max-aggregated epoch peak, the exact
// value fed to its forecast tracker. Logged (internal/wal) so recovery can
// re-feed trackers without the monitor store, which is not durable.
type ObservedPeak struct {
	Name string  `json:"name"`
	Peak float64 `json:"peak"`
}

// StepLog is the controller's durability hook, implemented by internal/wal.
// It captures the two step inputs that are DERIVED from the ephemeral
// monitor store — settled yield entries and observed demand peaks — so
// replay needs no store at all. Both appends are buffered; they become
// durable with the step's round fsync (admission.RoundLog.SyncRound).
type StepLog interface {
	// AppendSettle records the realized-yield entries booked for an ended
	// epoch (not called when nothing settled).
	AppendSettle(domain string, epoch int, entries []yield.Entry) error
	// AppendObserve records the full alive set and the observed peaks of
	// one step. Appended every step even when both are empty: the alive
	// set drives tracker garbage collection, which must replay exactly.
	AppendObserve(domain string, epoch int, alive []string, peaks []ObservedPeak) error
}

// Config wires a Controller to its domain.
type Config struct {
	// Engine is the admission engine whose domain the loop drives. Required.
	Engine *admission.Engine
	// Domain names the engine domain; empty means admission.DefaultDomain.
	Domain string
	// Store is the monitoring backend observations are read from and yield
	// samples are published into. Required.
	Store *monitor.Store
	// Metric is the demand series name; empty means monitor.LoadMetric.
	Metric string
	// Ledger receives the realized yield entries; nil creates a private
	// one. Share a ledger (and hand it to admission.Config.Ledger) to get
	// realized and expected revenue in one account.
	Ledger *yield.Ledger

	// Alpha/Beta/Gamma/HWPeriod parameterize each slice's
	// forecast.Adaptive tracker; zeros take the simulator's defaults
	// (0.5, 0.05, 0.15, period 12).
	Alpha, Beta, Gamma float64
	HWPeriod           int
	// Pad inflates λ̂ by (1 + Pad·σ̂) before reserving (sim.ForecastPad).
	Pad float64
	// Horizon reserves against the forecast peak over the next Horizon
	// epochs instead of only the next one; 0/1 is the paper's one-step
	// reading.
	Horizon int
	// ReoptEvery fires the forecast refresh every k-th step; 0 defaults to
	// 1 (every step). Negative disables forecast-driven reoptimization
	// entirely — the static baseline: rounds still run (arrivals must be
	// decided, lifecycles tick) but committed reservations never rescale.
	ReoptEvery int

	// OnRound, when set, runs after each step's round is decided and
	// before lifecycles advance — the ctrlplane programs the data plane
	// here. A non-nil error aborts the step.
	OnRound func(*admission.Round) error

	// Log, when set, makes the step's store-derived inputs durable so a
	// crashed loop replays bit-identically (internal/wal). Pair it with
	// admission.Config.Log on the same WAL store.
	Log StepLog
	// Snapshot, when set with SnapshotEvery > 0, is called after every
	// SnapshotEvery-th step with the controller's durable state; the WAL
	// layer persists it (alongside engine and ledger state) and compacts
	// the log behind it. A non-nil error fails the step.
	Snapshot      func(ControllerState) error
	SnapshotEvery int
}

func (c Config) withDefaults() (Config, error) {
	if c.Engine == nil {
		return c, fmt.Errorf("reopt: config needs an admission engine")
	}
	if c.Store == nil {
		return c, fmt.Errorf("reopt: config needs a monitor store")
	}
	if c.Domain == "" {
		c.Domain = admission.DefaultDomain
	}
	if c.Metric == "" {
		c.Metric = monitor.LoadMetric
	}
	if c.Ledger == nil {
		c.Ledger = yield.NewLedger()
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Beta == 0 {
		c.Beta = 0.05
	}
	if c.Gamma == 0 {
		c.Gamma = 0.15
	}
	if c.HWPeriod == 0 {
		c.HWPeriod = 12
	}
	if c.Horizon < 1 {
		c.Horizon = 1
	}
	if c.ReoptEvery == 0 {
		c.ReoptEvery = 1
	}
	return c, nil
}

// inForce is the reservation snapshot one settle cycle scores against.
type inForce struct {
	epoch   int // the epoch these reservations served
	members []admission.CommittedSlice
}

// StepReport is one closed-loop cycle's outcome.
type StepReport struct {
	Domain string `json:"domain"`
	Epoch  int    `json:"epoch"`
	// Round is the step's reopt round (admissions + rescaled reservations).
	Round *admission.Round `json:"-"`
	// Settled lists the realized-yield entries booked for the epoch that
	// just ended (empty on the first step: nothing was in force yet).
	Settled []yield.Entry `json:"settled,omitempty"`
	// Observed counts forecaster trackers fed a peak this step; Updated
	// counts forecast views pushed into the engine (0 on static or
	// off-cycle steps).
	Observed int `json:"observed"`
	Updated  int `json:"updated"`
	// Rescaled counts committed slices whose total reservation moved by
	// more than rescaleTol in this step's round — forecast drift turning
	// into reservation change, the loop's whole point.
	Rescaled int `json:"rescaled"`
	// Expired lists slices whose lifetime ended with this step.
	Expired []string `json:"expired,omitempty"`
}

// rescaleTol separates genuine reservation rescaling from solver jitter.
const rescaleTol = 1e-6

// Controller drives one domain's closed loop. Safe for concurrent use,
// though steps themselves are strictly serialized; most callers drive it
// from a single loop (Run, or the ctrlplane epoch handler).
type Controller struct {
	cfg Config

	mu       sync.Mutex
	epoch    int
	trackers map[string]*forecast.Adaptive
	prev     *inForce
}

// New validates the config and returns an idle controller; nothing runs
// until Step or Run.
func New(cfg Config) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, trackers: map[string]*forecast.Adaptive{}}, nil
}

// Ledger returns the controller's yield account.
func (c *Controller) Ledger() *yield.Ledger { return c.cfg.Ledger }

// Epoch returns the next epoch Step will run.
func (c *Controller) Epoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Step runs one closed-loop cycle for the controller's current epoch:
// settle the epoch that ended, observe its peaks, reoptimize, advance.
// See the package comment for the full contract.
func (c *Controller) Step() (*StepReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &StepReport{Domain: c.cfg.Domain, Epoch: c.epoch}

	// 1. settle: score the just-ended epoch's samples against the
	// reservations that served it, booking realized yield. The entries are
	// computed first, logged (they derive from the non-durable store, so
	// replay needs them verbatim), and only then booked.
	if c.prev != nil {
		for _, m := range c.prev.members {
			as := yield.NewAssessment(m.SLA.RateMbps)
			// Keyed per-element reads keep settle linear in the slice's own
			// samples (EpochSamples would rescan every series in the store
			// for each committed slice).
			for b := range m.Reserved {
				for _, sm := range c.cfg.Store.ElementEpochSamples(m.Name, c.cfg.Metric, monitor.BSElement(b), c.prev.epoch) {
					as.Sample(sm.Value, m.Reserved[b])
				}
			}
			if as.Samples() == 0 {
				// Nothing monitored: nothing to settle. This is also how a
				// slice handed over to another domain mid-epoch drops out
				// naturally — its samples land under the destination domain's
				// store, so the source books no yield for it.
				continue
			}
			rep.Settled = append(rep.Settled, as.Entry(m.Name, c.prev.epoch, m.SLA.Reward, m.SLA.Penalty))
		}
		if c.cfg.Log != nil && len(rep.Settled) > 0 {
			if err := c.cfg.Log.AppendSettle(c.cfg.Domain, c.prev.epoch, rep.Settled); err != nil {
				return nil, fmt.Errorf("reopt: wal append settle: %w", err)
			}
		}
		for _, e := range rep.Settled {
			c.cfg.Ledger.Book(e)
			c.cfg.Store.Add(monitor.Sample{
				Slice: e.Slice, Metric: "yield_realized", Element: c.cfg.Domain,
				Epoch: c.prev.epoch, Value: e.Realized,
			})
		}
		if n := len(rep.Settled); n > 0 {
			total := 0.0
			for _, e := range rep.Settled {
				total += e.Realized
			}
			c.cfg.Store.Add(monitor.Sample{
				Slice: "yield", Metric: "epoch_realized", Element: c.cfg.Domain,
				Epoch: c.prev.epoch, Value: total,
			})
		}
	}

	// 2. observe + 3. reoptimize. CommittedDetail is in admission order —
	// deterministic — and carries everything the forecast refresh needs.
	committed, err := c.cfg.Engine.CommittedDetail(c.cfg.Domain)
	if err != nil {
		return nil, err
	}
	prevTotals := map[string]float64{}
	for _, m := range committed {
		prevTotals[m.Name] = totalOf(m.Reserved)
	}
	reoptNow := c.cfg.ReoptEvery > 0 && c.epoch%c.cfg.ReoptEvery == 0
	alive := make([]string, 0, len(committed))
	var peaks []ObservedPeak
	for _, m := range committed {
		alive = append(alive, m.Name)
		if c.epoch > 0 {
			// The §2.2.2 max-aggregation over the slice's own per-BS
			// series, via the same keyed reads settle uses — the observe
			// phase stays linear in the slice's epoch samples too.
			peak, ok := 0.0, false
			for b := range m.Reserved {
				for _, sm := range c.cfg.Store.ElementEpochSamples(m.Name, c.cfg.Metric, monitor.BSElement(b), c.epoch-1) {
					if !ok || sm.Value > peak {
						peak, ok = sm.Value, true
					}
				}
			}
			if ok {
				peaks = append(peaks, ObservedPeak{Name: m.Name, Peak: peak})
			}
		}
	}
	// Logged every step, empty or not: the alive set drives tracker GC
	// below, and GC must replay exactly (departed names may be reused).
	if c.cfg.Log != nil {
		if err := c.cfg.Log.AppendObserve(c.cfg.Domain, c.epoch, alive, peaks); err != nil {
			return nil, fmt.Errorf("reopt: wal append observe: %w", err)
		}
	}
	c.applyObserve(alive, peaks)
	rep.Observed = len(peaks)
	var ups []admission.ForecastUpdate
	if reoptNow {
		for _, m := range committed {
			lh, sg := forecast.ViewHorizon(c.trackers[m.Name], m.SLA.RateMbps, c.cfg.Pad, c.cfg.Horizon)
			ups = append(ups, admission.ForecastUpdate{Name: m.Name, LambdaHat: lh, Sigma: sg})
		}
	}
	if len(ups) > 0 {
		if err := c.cfg.Engine.UpdateForecasts(c.cfg.Domain, ups); err != nil {
			return nil, err
		}
		rep.Updated = len(ups)
	}

	round, err := c.cfg.Engine.DecideRound(c.cfg.Domain)
	if err != nil {
		return nil, err
	}
	rep.Round = round
	if c.cfg.OnRound != nil {
		if err := c.cfg.OnRound(round); err != nil {
			return nil, fmt.Errorf("reopt: round hook at epoch %d: %w", c.epoch, err)
		}
	}

	// Snapshot what is now in force — it serves the epoch that starts now
	// and settles on the next step, surviving any expiry in between.
	after, err := c.cfg.Engine.CommittedDetail(c.cfg.Domain)
	if err != nil {
		return nil, err
	}
	for _, m := range after {
		if prev, was := prevTotals[m.Name]; was && math.Abs(totalOf(m.Reserved)-prev) > rescaleTol {
			rep.Rescaled++
		}
	}
	c.prev = &inForce{epoch: c.epoch, members: after}

	// 4. advance.
	expired, err := c.cfg.Engine.Advance(c.cfg.Domain)
	if err != nil {
		return nil, err
	}
	rep.Expired = expired
	c.epoch++

	// 5. snapshot, at the step boundary: the WAL layer persists the state
	// and compacts the log behind it. Running after the epoch advance means
	// a snapshot always captures a whole number of completed steps.
	if c.cfg.Snapshot != nil && c.cfg.SnapshotEvery > 0 && c.epoch%c.cfg.SnapshotEvery == 0 {
		if err := c.cfg.Snapshot(c.exportStateLocked()); err != nil {
			return nil, fmt.Errorf("reopt: snapshot at epoch %d: %w", c.epoch, err)
		}
	}
	return rep, nil
}

// applyObserve is the tracker side of the observe phase, shared verbatim by
// the live step and WAL replay: ensure every alive slice has a tracker,
// feed the observed peaks, and garbage-collect trackers of departed slices
// (names may be reused).
func (c *Controller) applyObserve(alive []string, peaks []ObservedPeak) {
	aliveSet := make(map[string]bool, len(alive))
	for _, n := range alive {
		aliveSet[n] = true
		if c.trackers[n] == nil {
			c.trackers[n] = forecast.NewAdaptive(c.cfg.Alpha, c.cfg.Beta, c.cfg.Gamma, c.cfg.HWPeriod)
		}
	}
	for _, p := range peaks {
		if tr := c.trackers[p.Name]; tr != nil {
			tr.Observe(p.Peak)
		}
	}
	for name := range c.trackers {
		if !aliveSet[name] {
			delete(c.trackers, name)
		}
	}
}

// Run drives Step on a wall-clock cadence until the context ends — the
// serving-deployment lifecycle, one decision epoch per tick. The first
// tick fires after one full period (epoch 0's round usually runs through
// the ctrlplane or a manual Step first). Returns the context's error, or
// the first step error.
func (c *Controller) Run(ctx context.Context, every time.Duration) error {
	if every <= 0 {
		return fmt.Errorf("reopt: Run needs a positive period")
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if _, err := c.Step(); err != nil {
				return err
			}
		}
	}
}

func totalOf(z []float64) float64 {
	t := 0.0
	for _, v := range z {
		t += v
	}
	return t
}
