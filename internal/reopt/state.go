package reopt

import (
	"fmt"
	"sort"

	"repro/internal/forecast"
	"repro/internal/yield"

	"repro/internal/admission"
)

// This file is the controller's crash-recovery surface (used by
// internal/wal): ExportState/RestoreState move the recoverable loop state —
// epoch clock, forecast trackers, the in-force reservation snapshot the
// next settle scores against — in and out of a durable image, and the
// Replay* methods re-apply logged step records in order. Replay reuses the
// exact code paths the live step runs (applyObserve, Ledger.Book,
// CommittedDetail), which is what makes recovered state bit-identical
// rather than approximately equal.

// TrackerState is one slice's forecaster in a ControllerState, keyed by
// slice name.
type TrackerState struct {
	Name  string                 `json:"name"`
	State forecast.AdaptiveState `json:"state"`
}

// InForceState is the durable image of the reservation snapshot the next
// step settles against.
type InForceState struct {
	Epoch   int                        `json:"epoch"`
	Members []admission.CommittedSlice `json:"members,omitempty"`
}

// ControllerState is the durable image of a Controller between steps.
type ControllerState struct {
	Domain string `json:"domain"`
	// Epoch is the next epoch Step would run.
	Epoch int `json:"epoch"`
	// Trackers holds every live forecaster, sorted by name so equal
	// controllers export byte-equal states.
	Trackers []TrackerState `json:"trackers,omitempty"`
	// Prev is the in-force snapshot (nil before the first step).
	Prev *InForceState `json:"prev,omitempty"`
}

// ExportState captures the controller's recoverable state. Call it between
// steps; the snapshot path does (Config.Snapshot fires at a step boundary,
// under the step lock).
func (c *Controller) ExportState() ControllerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exportStateLocked()
}

func (c *Controller) exportStateLocked() ControllerState {
	st := ControllerState{Domain: c.cfg.Domain, Epoch: c.epoch}
	names := make([]string, 0, len(c.trackers))
	for n := range c.trackers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st.Trackers = append(st.Trackers, TrackerState{Name: n, State: c.trackers[n].State()})
	}
	if c.prev != nil {
		p := &InForceState{Epoch: c.prev.epoch}
		p.Members = append(p.Members, c.prev.members...)
		st.Prev = p
	}
	return st
}

// RestoreState rehydrates a freshly constructed controller (epoch 0, no
// trackers) from an exported state; restore happens once, before replay and
// before the first live step.
func (c *Controller) RestoreState(st ControllerState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != 0 || len(c.trackers) != 0 || c.prev != nil {
		return fmt.Errorf("reopt: controller already has state; restore must precede stepping")
	}
	if st.Domain != c.cfg.Domain {
		return fmt.Errorf("reopt: restoring state of domain %q into controller for %q", st.Domain, c.cfg.Domain)
	}
	for _, ts := range st.Trackers {
		tr, err := forecast.NewAdaptiveFromState(ts.State)
		if err != nil {
			return fmt.Errorf("reopt: tracker %q: %w", ts.Name, err)
		}
		c.trackers[ts.Name] = tr
	}
	c.epoch = st.Epoch
	if st.Prev != nil {
		c.prev = &inForce{epoch: st.Prev.Epoch}
		c.prev.members = append(c.prev.members, st.Prev.Members...)
	}
	return nil
}

// ReplaySettle re-books one logged settle record. The entries were computed
// by the crashed run from its monitor store, so booking them verbatim
// reproduces the realized side of the ledger without any store at all.
func (c *Controller) ReplaySettle(entries []yield.Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range entries {
		c.cfg.Ledger.Book(e)
	}
}

// ReplayObserve re-applies one logged observe record: tracker creation,
// peak feeding and garbage collection, exactly as the live step did. The
// logged epoch is checked against the controller's clock; a mismatch means
// log and snapshot diverged and recovery must stop.
func (c *Controller) ReplayObserve(epoch int, alive []string, peaks []ObservedPeak) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return fmt.Errorf("reopt: replaying observe for epoch %d but controller is at epoch %d — log and snapshot diverged", epoch, c.epoch)
	}
	c.applyObserve(alive, peaks)
	return nil
}

// ReplayRoundDone runs the live step's post-round bookkeeping after the
// engine replayed a round: snapshot what is now in force, so the epoch the
// replayed round opened settles correctly on the next step (live or
// replayed).
func (c *Controller) ReplayRoundDone() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	after, err := c.cfg.Engine.CommittedDetail(c.cfg.Domain)
	if err != nil {
		return err
	}
	c.prev = &inForce{epoch: c.epoch, members: after}
	return nil
}

// ReplayAdvanced ticks the controller's epoch clock after the engine
// replayed an advance record, completing one replayed step.
func (c *Controller) ReplayAdvanced() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
}
