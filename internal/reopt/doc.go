// Package reopt closes the paper's control loop online: monitoring →
// forecasting → overbooking-aware reoptimization (§2.2.2), the cycle that
// previously existed only inside the offline simulator.
//
// A Controller binds one admission domain to the monitoring store. Each
// Step(t) performs, in a fixed canonical order:
//
//  1. settle — the monitoring samples of the epoch that just ended are
//     scored against the reservations that were in force (the previous
//     round's CommittedDetail snapshot, so slices that expired at the
//     epoch boundary still settle their final epoch), and the realized
//     net revenue — reward minus K·(dropped SLA fraction) — is booked
//     into the shared yield.Ledger and published back through the store;
//  2. observe — each committed slice's per-epoch peak load (the §2.2.2
//     max-aggregation) feeds its forecast.Adaptive tracker, so diurnal
//     ramps and flash crowds move λ̂ and shrink σ̂ online;
//  3. reoptimize — the refreshed (λ̂, σ̂) views are installed with one
//     batched Engine.UpdateForecasts and a warm re-solve round
//     (Engine.DecideRound) rescales every reservation and decides the
//     queued arrivals; rounds that only drift forecasts re-enter the
//     domain's warm Benders session instead of rebuilding it, and the
//     session's basis workspace keeps the steady-state slave solves
//     allocation-free, so a tight reoptimization cadence does not grow
//     GC pressure with uptime;
//  4. advance — slice lifetimes tick and expiries are reported.
//
// An optional OnRound hook runs between (3) and (4): the control plane
// programs the data plane there, exactly where the orchestrator's epoch
// used to do it.
//
// Determinism: the controller holds no goroutines and consults no clocks —
// Step is a pure function of (store contents, engine state) — and the
// engine's rounds are bit-identical across shard counts, so a closed-loop
// run is reproducible at any concurrency and equal to a machinery-free
// serial replay. Both properties are pinned by tests in this package.
// Run() adds the wall-clock lifecycle (a ticker driving Step) for serving
// deployments where epochs are real time.
package reopt
