package reopt

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/monitor"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/yield"
)

// loopEpochs caps the replayed horizon CI-side: enough for forecasters to
// warm up, reservations to rescale, and re-offered tenants to be admitted
// into the freed headroom.
const loopEpochs = 10

// ciSized shrinks an archetype the same way the admission equality suite
// does, so exact solvers stay affordable under -race.
func ciSized(s scenario.Spec) scenario.Spec {
	if s.Tenants > 4 {
		s.Tenants = 4
	}
	s.Epochs = loopEpochs
	if s.Arrivals.Kind == scenario.FlashCrowd {
		s.Arrivals.SpikeEpoch = 4
		s.Arrivals.SpikeSize = 2
	}
	return s
}

// compileCI compiles the spec and pins the monitoring density the drivers
// emit with: Compile leaves zero-valued knobs for sim.Run to default, but
// here the TEST plays the data plane, so the value must be explicit (and
// shared by both drivers — the generator draw sequence depends on it).
func compileCI(t testing.TB, spec scenario.Spec, seed int64) sim.Config {
	t.Helper()
	cfg, err := spec.Compile(seed)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SamplesPerEpoch == 0 {
		cfg.SamplesPerEpoch = 8
	}
	return cfg
}

// loopTrace is one run's full fingerprint: per-epoch decisions,
// reservation rescalings and settled yield, plus the final ledger.
type loopTrace struct {
	lines  []string
	ledger yield.Summary
}

func (lt *loopTrace) String() string { return strings.Join(lt.lines, "\n") }

// request is one tenant offer in flight through either driver.
type request struct {
	spec sim.SliceSpec
	sla  slice.SLA
}

func requestsOf(cfg sim.Config) []request {
	out := make([]request, len(cfg.Slices))
	for i, sp := range cfg.Slices {
		out[i] = request{
			spec: sp,
			sla: slice.SLA{Template: sp.Template, MeanMbps: sp.MeanMbps, Duration: sp.Duration}.
				WithPenaltyFactor(sp.PenaltyFactor),
		}
	}
	return out
}

// emitEpoch draws the epoch's monitoring samples for every live slice from
// its own seeded generators and pushes them into the store under the
// canonical bs<i>/load_mbps naming — the role the data-plane agents play.
func emitEpoch(store *monitor.Store, cfg sim.Config, gens map[string][]traffic.Generator, epoch int) {
	names := make([]string, 0, len(gens))
	for n := range gens {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		for b, g := range gens[name] {
			for theta := 0; theta < cfg.SamplesPerEpoch; theta++ {
				store.Add(monitor.Sample{
					Slice: name, Metric: monitor.LoadMetric, Element: monitor.BSElement(b),
					Epoch: epoch, Theta: theta, Value: g.Sample(epoch, theta),
				})
			}
		}
	}
}

func fingerprint(epoch int, names []string, dec *core.Decision, settled []yield.Entry, rescaled int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d exp=%.4f rescaled=%d:", epoch, dec.Revenue(), rescaled)
	for i, name := range names {
		if i < len(dec.Accepted) && dec.Accepted[i] {
			fmt.Fprintf(&b, " %s@cu%d%v", name, dec.CU[i], dec.PathIdx[i])
		}
	}
	total := 0.0
	for _, e := range settled {
		total += e.Realized
	}
	fmt.Fprintf(&b, " settled=%.9g/%d", total, len(settled))
	return b.String()
}

// engineClosedLoop drives the full stack — admission engine at the given
// shard count, closed-loop controller, concurrent submitters — over the
// compiled scenario, with the test playing the data plane (emitEpoch).
func engineClosedLoop(t testing.TB, cfg sim.Config, algorithm string, shards, reoptEvery int, reoffer bool) *loopTrace {
	t.Helper()
	store := monitor.NewStore(0)
	ledger := yield.NewLedger()
	eng := admission.New(admission.Config{Shards: shards, QueueDepth: 1024, Ledger: ledger})
	if err := eng.AddDomain("", admission.DomainConfig{Net: cfg.Net, KPaths: cfg.KPaths, Algorithm: algorithm}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	ctrl, err := New(Config{
		Engine: eng, Store: store, Ledger: ledger,
		HWPeriod: cfg.HWPeriod, ReoptEvery: reoptEvery,
	})
	if err != nil {
		t.Fatal(err)
	}

	reqs := requestsOf(cfg)
	gens := map[string][]traffic.Generator{}
	var inflight []struct {
		req request
		tk  *admission.Ticket
	}
	lt := &loopTrace{}
	for epoch := 0; epoch < loopEpochs; epoch++ {
		var offers []request
		for _, r := range reqs {
			if r.spec.ArrivalEpoch == epoch {
				offers = append(offers, r)
			}
		}
		// Concurrent submission: canonical round order must erase the
		// interleave.
		tks := make([]*admission.Ticket, len(offers))
		var wg sync.WaitGroup
		for i := range offers {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tk, err := eng.Submit(admission.Request{Name: offers[i].spec.Name, SLA: offers[i].sla})
				if err != nil {
					t.Errorf("submit %s: %v", offers[i].spec.Name, err)
					return
				}
				tks[i] = tk
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("epoch %d: submission failed", epoch)
		}
		for i := range offers {
			inflight = append(inflight, struct {
				req request
				tk  *admission.Ticket
			}{offers[i], tks[i]})
		}

		rep, err := ctrl.Step()
		if err != nil {
			t.Fatal(err)
		}
		lt.lines = append(lt.lines, fingerprint(epoch, rep.Round.Names, rep.Round.Decision, rep.Settled, rep.Rescaled))

		// Resolve tickets: admitted slices start generating traffic;
		// rejected ones are re-offered next epoch when the scenario says so.
		var still []struct {
			req request
			tk  *admission.Ticket
		}
		for _, lv := range inflight {
			out, ok := lv.tk.Outcome()
			if !ok {
				t.Fatalf("epoch %d: ticket %s undecided after round", epoch, lv.req.spec.Name)
			}
			switch {
			case out.Admitted:
				gs := make([]traffic.Generator, cfg.Net.NumBS())
				for b := range gs {
					gs[b] = sim.NewGenerator(cfg, lv.req.spec, b)
				}
				gens[lv.req.spec.Name] = gs
			case reoffer:
				tk, err := eng.Submit(admission.Request{Name: lv.req.spec.Name, SLA: lv.req.sla})
				if err != nil {
					t.Fatalf("re-offer %s: %v", lv.req.spec.Name, err)
				}
				still = append(still, struct {
					req request
					tk  *admission.Ticket
				}{lv.req, tk})
			}
		}
		inflight = still
		// Slices expiring with this epoch still served it: emit their
		// traffic first, then retire the generators.
		emitEpoch(store, cfg, gens, epoch)
		for _, name := range rep.Expired {
			delete(gens, name)
		}
	}
	lt.ledger = ledger.Snapshot()
	return lt
}

// serialMember is a committed slice in the machinery-free reference.
type serialMember struct {
	req       request
	lambdaHat float64
	sigma     float64
	remaining int
	cu        int
	reserved  []float64
}

// serialClosedLoop replays the identical protocol with none of the
// engine's or controller's machinery: one goroutine, a plain warm session,
// hand-rolled forecast trackers and ledger booking. The ground truth the
// stack must match bit for bit.
func serialClosedLoop(t testing.TB, cfg sim.Config, algorithm string, reoptEvery int, reoffer bool) *loopTrace {
	t.Helper()
	store := monitor.NewStore(0)
	ledger := yield.NewLedger()
	paths := cfg.Net.Paths(cfg.KPaths)
	var solve func(inst *core.Instance) (*core.Decision, error)
	switch algorithm {
	case "benders":
		solve = core.NewBendersSession(core.BendersOptions{}).Solve
	case "kac":
		solve = func(inst *core.Instance) (*core.Decision, error) {
			return core.SolveKAC(inst, core.KACOptions{})
		}
	default:
		solve = core.SolveDirect
	}

	hwPeriod := cfg.HWPeriod
	if hwPeriod == 0 {
		hwPeriod = 12
	}
	reqs := requestsOf(cfg)
	trackers := map[string]*forecast.Adaptive{}
	gens := map[string][]traffic.Generator{}
	var committed []*serialMember
	var settleSet []*serialMember // reservations in force for the prior epoch
	var settleEpoch int
	var queue []request
	lt := &loopTrace{}

	for epoch := 0; epoch < loopEpochs; epoch++ {
		for _, r := range reqs {
			if r.spec.ArrivalEpoch == epoch {
				queue = append(queue, r)
			}
		}

		// 1. settle the prior epoch against the snapshot taken after the
		// prior round (includes slices that expired at the boundary).
		var settled []yield.Entry
		for _, m := range settleSet {
			as := yield.NewAssessment(m.req.sla.RateMbps)
			for b := range m.reserved {
				for _, sm := range store.ElementEpochSamples(m.req.spec.Name, monitor.LoadMetric, monitor.BSElement(b), settleEpoch) {
					as.Sample(sm.Value, m.reserved[b])
				}
			}
			if as.Samples() == 0 {
				continue
			}
			e := as.Entry(m.req.spec.Name, settleEpoch, m.req.sla.Reward, m.req.sla.Penalty)
			ledger.Book(e)
			settled = append(settled, e)
		}

		// 2. observe + forecast views.
		reoptNow := reoptEvery > 0 && epoch%reoptEvery == 0
		for _, m := range committed {
			tr := trackers[m.req.spec.Name]
			if tr == nil {
				tr = forecast.NewAdaptive(0.5, 0.05, 0.15, hwPeriod)
				trackers[m.req.spec.Name] = tr
			}
			if epoch > 0 {
				peak, ok := 0.0, false
				for b := range m.reserved {
					for _, sm := range store.ElementEpochSamples(m.req.spec.Name, monitor.LoadMetric, monitor.BSElement(b), epoch-1) {
						if !ok || sm.Value > peak {
							peak, ok = sm.Value, true
						}
					}
				}
				if ok {
					tr.Observe(peak)
				}
			}
			if reoptNow {
				m.lambdaHat, m.sigma = forecast.View(tr, m.req.sla.RateMbps, 0)
			}
		}

		// 3. one round: committed in admission order, batch sorted by name.
		batch := append([]request(nil), queue...)
		sort.Slice(batch, func(i, j int) bool { return batch[i].spec.Name < batch[j].spec.Name })
		specs := make([]core.TenantSpec, 0, len(committed)+len(batch))
		names := make([]string, 0, cap(specs))
		for _, m := range committed {
			specs = append(specs, core.TenantSpec{
				Name: m.req.spec.Name, SLA: m.req.sla,
				LambdaHat: m.lambdaHat, Sigma: m.sigma,
				RemainingEpochs: m.remaining, Committed: true, CommittedCU: m.cu,
			})
			names = append(names, m.req.spec.Name)
		}
		for _, r := range batch {
			remaining := r.sla.Duration
			if remaining < 1 {
				remaining = 1
			}
			specs = append(specs, core.TenantSpec{
				Name: r.spec.Name, SLA: r.sla,
				LambdaHat: r.sla.RateMbps, Sigma: 1,
				RemainingEpochs: remaining,
			})
			names = append(names, r.spec.Name)
		}
		dec := &core.Decision{}
		if len(specs) > 0 {
			inst := &core.Instance{
				Net: cfg.Net, Paths: paths, Tenants: specs,
				Overbook: algorithm != "no-overbooking", BigM: 1e4,
			}
			var err error
			dec, err = solve(inst)
			if err != nil {
				t.Fatalf("serial epoch %d: %v", epoch, err)
			}
		}
		ledger.BookExpected(admission.DefaultDomain, dec.Revenue())

		// Rescale accounting + commit, exactly as the stack does it.
		rescaled := 0
		for i, m := range committed {
			if dec.Accepted[i] {
				if prev, now := totalOf(m.reserved), totalOf(dec.Z[i]); absDiff(prev, now) > rescaleTol {
					rescaled++
				}
				m.cu = dec.CU[i]
				m.reserved = append(m.reserved[:0], dec.Z[i]...)
			}
		}
		base := len(committed)
		queue = queue[:0]
		for bi, r := range batch {
			if dec.Accepted[base+bi] {
				remaining := specs[base+bi].RemainingEpochs
				committed = append(committed, &serialMember{
					req: r, lambdaHat: r.sla.RateMbps, sigma: 1,
					remaining: remaining, cu: dec.CU[base+bi],
					reserved: append([]float64(nil), dec.Z[base+bi]...),
				})
				gs := make([]traffic.Generator, cfg.Net.NumBS())
				for b := range gs {
					gs[b] = sim.NewGenerator(cfg, r.spec, b)
				}
				gens[r.spec.Name] = gs
			} else if reoffer {
				queue = append(queue, r)
			}
		}
		lt.lines = append(lt.lines, fingerprint(epoch, names, dec, settled, rescaled))

		// Snapshot in-force reservations and play the epoch's traffic —
		// slices expiring with this epoch still served it — then advance
		// lifecycles.
		settleSet = append(settleSet[:0:0], committed...)
		settleEpoch = epoch
		emitEpoch(store, cfg, gens, epoch)
		keep := committed[:0]
		for _, m := range committed {
			m.remaining--
			if m.remaining > 0 {
				keep = append(keep, m)
			} else {
				delete(trackers, m.req.spec.Name)
				delete(gens, m.req.spec.Name)
			}
		}
		committed = keep
	}
	lt.ledger = ledger.Snapshot()
	return lt
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func firstDiff(want, got []string) string {
	for i := range want {
		if i >= len(got) || want[i] != got[i] {
			g := "<missing>"
			if i < len(got) {
				g = got[i]
			}
			return fmt.Sprintf("epoch %d:\n  serial: %s\n  engine: %s", i, want[i], g)
		}
	}
	if len(got) > len(want) {
		return fmt.Sprintf("engine produced %d extra epochs", len(got)-len(want))
	}
	return ""
}

// TestClosedLoopMatchesSerialAcrossShards is the PR's acceptance gate: on
// the drift archetypes, the full closed-loop stack — engine shards, warm
// sessions, concurrent submitters, the reopt controller — produces
// bit-identical decision traces AND yield ledgers at 1, 2 and 5 shards,
// all equal to the machinery-free serial replay.
func TestClosedLoopMatchesSerialAcrossShards(t *testing.T) {
	for _, name := range []string{"diurnal-drift", "flash-drift"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec = ciSized(spec)
			cfg := compileCI(t, spec, 42)
			want := serialClosedLoop(t, cfg, spec.Algorithm, 1, spec.ReofferPending)
			for _, shards := range []int{1, 2, 5} {
				got := engineClosedLoop(t, cfg, spec.Algorithm, shards, 1, spec.ReofferPending)
				if diff := firstDiff(want.lines, got.lines); diff != "" {
					t.Fatalf("shards=%d diverged from serial replay:\n%s", shards, diff)
				}
				if !reflect.DeepEqual(want.ledger, got.ledger) {
					t.Fatalf("shards=%d ledger diverged:\nserial: %+v\nengine: %+v", shards, want.ledger, got.ledger)
				}
			}
		})
	}
}

// TestClosedLoopBeatsStaticOnDrift pins the paper's economics end to end:
// on the drift archetype, forecast-driven reoptimization must realize
// strictly more net yield than the same engine with frozen full-SLA
// forecasts — the headroom it frees admits the re-offered overflow — and
// must do so by rescaling committed reservations online.
func TestClosedLoopBeatsStaticOnDrift(t *testing.T) {
	spec, err := scenario.ByName("diurnal-drift")
	if err != nil {
		t.Fatal(err)
	}
	spec = ciSized(spec)
	cfg := compileCI(t, spec, 42)
	closed := engineClosedLoop(t, cfg, spec.Algorithm, 2, 1, spec.ReofferPending)
	static := engineClosedLoop(t, cfg, spec.Algorithm, 2, -1, spec.ReofferPending)

	if !(closed.ledger.Realized > static.ledger.Realized) {
		t.Fatalf("closed-loop realized yield %.6g does not beat static %.6g\nclosed:\n%s\nstatic:\n%s",
			closed.ledger.Realized, static.ledger.Realized, closed, static)
	}
	rescales := 0
	for _, line := range closed.lines {
		var e int
		var exp float64
		var r int
		if _, err := fmt.Sscanf(line, "epoch %d exp=%g rescaled=%d:", &e, &exp, &r); err == nil {
			rescales += r
		}
	}
	if rescales == 0 {
		t.Fatalf("closed loop never rescaled a committed reservation:\n%s", closed)
	}
	for _, line := range static.lines {
		if !strings.Contains(line, "rescaled=0:") {
			t.Fatalf("static run rescaled a reservation: %s", line)
		}
	}
}

// TestExpiringSlicesSettleFullLifetime guards the data-plane ordering a
// review caught both drivers getting wrong: a slice expiring with epoch t
// still served t, so its traffic must be played before its generators are
// retired — otherwise the settlement snapshot finds no samples and the
// slice's final epoch silently drops off the ledger. Every short-lived
// slice the ledger knows must have settled its entire lifetime.
func TestExpiringSlicesSettleFullLifetime(t *testing.T) {
	spec, err := scenario.ByName("flash-drift")
	if err != nil {
		t.Fatal(err)
	}
	spec = ciSized(spec)
	cfg := compileCI(t, spec, 42)
	durOf := map[string]int{}
	for _, sp := range cfg.Slices {
		if sp.Duration < loopEpochs-sp.ArrivalEpoch {
			durOf[sp.Name] = sp.Duration // expires inside the run
		}
	}
	if len(durOf) == 0 {
		t.Fatal("archetype has no short-lived slices; the test is vacuous")
	}
	lt := engineClosedLoop(t, cfg, spec.Algorithm, 2, 1, spec.ReofferPending)
	settledShort := 0
	for _, st := range lt.ledger.PerSlice {
		want, shortLived := durOf[st.Slice]
		if !shortLived {
			continue
		}
		settledShort++
		if st.Epochs != want {
			t.Errorf("slice %s settled %d epochs, want its full %d-epoch lifetime", st.Slice, st.Epochs, want)
		}
	}
	if settledShort == 0 {
		t.Fatalf("no short-lived slice was admitted and settled; ledger: %+v", lt.ledger.PerSlice)
	}
}

// TestRunDrivesStepsOnTicker pins the wall-clock lifecycle: Run fires
// Step once per period until the context ends, then reports the
// context's error; a non-positive period is rejected up front.
func TestRunDrivesStepsOnTicker(t *testing.T) {
	eng := admission.New(admission.Config{})
	if err := eng.AddDomain("", admission.DomainConfig{Net: topology.Testbed(), Algorithm: "direct"}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	ctrl, err := New(Config{Engine: eng, Store: monitor.NewStore(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Run(context.Background(), 0); err == nil {
		t.Fatal("Run accepted a non-positive period")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := ctrl.Run(ctx, 20*time.Millisecond); err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v, want the context's deadline error", err)
	}
	if ctrl.Epoch() == 0 {
		t.Fatal("no epoch ran during the Run window")
	}
}

// TestControllerSettlesExpiringSlices pins the boundary case the in-force
// snapshot exists for: a slice whose lifetime ends with epoch e still has
// its epoch-e traffic settled on the next step, after it left the engine.
func TestControllerSettlesExpiringSlices(t *testing.T) {
	net := topology.Testbed()
	store := monitor.NewStore(0)
	eng := admission.New(admission.Config{})
	if err := eng.AddDomain("", admission.DomainConfig{Net: net, Algorithm: "direct"}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	ctrl, err := New(Config{Engine: eng, Store: store})
	if err != nil {
		t.Fatal(err)
	}

	sla := slice.SLA{Template: slice.Table1(slice.MMTC), Duration: 1}.WithPenaltyFactor(1)
	tk, err := eng.Submit(admission.Request{Name: "oneshot", SLA: sla})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	out, ok := tk.Outcome()
	if !ok || !out.Admitted {
		t.Fatalf("one-epoch slice not admitted: %+v", out)
	}
	if len(rep.Expired) != 1 || rep.Expired[0] != "oneshot" {
		t.Fatalf("expected the slice to expire with its only epoch, got %v", rep.Expired)
	}
	// Its epoch-0 traffic arrives after the slice is gone from the engine.
	for b := 0; b < net.NumBS(); b++ {
		store.Add(monitor.Sample{
			Slice: "oneshot", Metric: monitor.LoadMetric, Element: monitor.BSElement(b),
			Epoch: 0, Theta: 0, Value: 4,
		})
	}
	rep, err = ctrl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Settled) != 1 || rep.Settled[0].Slice != "oneshot" || rep.Settled[0].Epoch != 0 {
		t.Fatalf("expired slice's final epoch not settled: %+v", rep.Settled)
	}
	if s := ctrl.Ledger().Snapshot(); s.Entries != 1 || s.Realized != sla.Reward {
		t.Fatalf("ledger after settling a violation-free epoch: %+v", s)
	}
}
