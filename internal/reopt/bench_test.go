package reopt

import (
	"fmt"
	"testing"

	"repro/internal/admission"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/yield"
)

// BenchmarkReoptRound measures the steady-state cost of one closed-loop
// cycle — settle the ended epoch's samples, feed the forecasters, install
// the views, warm re-solve, snapshot, advance — on the testbed topology
// with 3 committed slices and κ=12 samples per (slice, BS) per epoch.
//
// mode=closed is the forecast-driven loop (reservations rescale every
// step, riding the warm session's rebind path); mode=static freezes the
// forecasts, so its rounds are the incumbent short-circuit floor — the
// delta is what forecast drift actually costs per epoch.
func BenchmarkReoptRound(b *testing.B) {
	for _, mode := range []struct {
		name       string
		reoptEvery int
	}{{"closed", 1}, {"static", -1}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			net := topology.Testbed()
			store := monitor.NewStore(0)
			ledger := yield.NewLedger()
			eng := admission.New(admission.Config{Ledger: ledger})
			if err := eng.AddDomain("", admission.DomainConfig{Net: net, Algorithm: "benders"}); err != nil {
				b.Fatal(err)
			}
			if err := eng.Start(); err != nil {
				b.Fatal(err)
			}
			defer eng.Stop()
			ctrl, err := New(Config{Engine: eng, Store: store, Ledger: ledger, ReoptEvery: mode.reoptEvery})
			if err != nil {
				b.Fatal(err)
			}

			const nSlices, kappa = 3, 12
			gens := map[string][]traffic.Generator{}
			for i := 0; i < nSlices; i++ {
				sp := sim.SliceSpec{
					Name: fmt.Sprintf("s%d", i), MeanMbps: 8, StdMbps: 2,
					Seed: int64(i + 1), Shape: sim.ShapeDiurnal,
				}
				sla := slice.SLA{Template: slice.Table1(slice.EMBB), MeanMbps: 8, Duration: 1 << 20}.
					WithPenaltyFactor(1)
				if _, err := eng.Submit(admission.Request{Name: sp.Name, SLA: sla}); err != nil {
					b.Fatal(err)
				}
				gs := make([]traffic.Generator, net.NumBS())
				for bs := range gs {
					gs[bs] = sim.NewGenerator(sim.Config{SamplesPerEpoch: kappa, HWPeriod: 12}, sp, bs)
				}
				gens[sp.Name] = gs
			}

			step := func(epoch int) {
				if _, err := ctrl.Step(); err != nil {
					b.Fatal(err)
				}
				for name, gs := range gens {
					for bs, g := range gs {
						for theta := 0; theta < kappa; theta++ {
							store.Add(monitor.Sample{
								Slice: name, Metric: monitor.LoadMetric, Element: monitor.BSElement(bs),
								Epoch: epoch, Theta: theta, Value: g.Sample(epoch, theta),
							})
						}
					}
				}
			}
			// Warm-up: admission round, forecaster ramp, first rescales.
			epoch := 0
			for ; epoch < 4; epoch++ {
				step(epoch)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step(epoch)
				epoch++
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}
