// Package monitor implements the monitoring and feedback pipeline of the
// E2E orchestrator (§2.2.2): agents embedded in the data plane push
// per-slice load samples over UDP (standing in for the paper's sFlow and
// OpenStack Ceilometer/Gnocchi exporters), a collector ingests them into an
// in-memory time-series store (standing in for InfluxDB), and per-epoch
// max-aggregation produces the λ(t) = max{λ(θ) | θ ∈ κ(t)} peaks the
// forecasting block consumes.
//
// Per-slice demand series use the canonical (LoadMetric, BSElement)
// naming, which is what lets the closed-loop controller (internal/reopt)
// match a sample back to the per-BS reservation it must be scored
// against; ElementEpochSamples returns one series' epoch samples in a
// deterministic order for exactly that accounting. The store also carries the serving
// layer's own health (admission round vitals, realized-yield samples), so
// one backend serves both the paper's feedback loop and operations.
package monitor
