package monitor

import (
	"testing"
	"time"
)

func TestStorePeakAggregation(t *testing.T) {
	s := NewStore(0)
	for theta, v := range []float64{10, 42, 17} {
		s.Add(Sample{Slice: "eMBB1", Metric: "load_mbps", Element: "bs0", Epoch: 3, Theta: theta, Value: v})
	}
	// A second element contributes to the same epoch peak.
	s.Add(Sample{Slice: "eMBB1", Metric: "load_mbps", Element: "bs1", Epoch: 3, Theta: 0, Value: 55})

	peak, ok := s.EpochPeak("eMBB1", "load_mbps", 3)
	if !ok || peak != 55 {
		t.Errorf("peak = %v (%v), want 55", peak, ok)
	}
	if _, ok := s.EpochPeak("eMBB1", "load_mbps", 4); ok {
		t.Error("empty epoch must report no data")
	}
	if _, ok := s.EpochPeak("other", "load_mbps", 3); ok {
		t.Error("unknown slice must report no data")
	}
}

func TestPeakSeries(t *testing.T) {
	s := NewStore(0)
	for e := 0; e < 4; e++ {
		s.Add(Sample{Slice: "s", Metric: "m", Element: "x", Epoch: e, Value: float64(e * 10)})
	}
	got := s.PeakSeries("s", "m", 0, 4)
	want := []float64{0, 10, 20, 30, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestRingRetention(t *testing.T) {
	s := NewStore(10)
	for i := 0; i < 100; i++ {
		s.Add(Sample{Slice: "s", Metric: "m", Element: "x", Epoch: i, Value: 1})
	}
	if s.Len() != 10 {
		t.Errorf("retained %d samples, want 10", s.Len())
	}
	// Old epochs were evicted.
	if _, ok := s.EpochPeak("s", "m", 0); ok {
		t.Error("epoch 0 should have been evicted")
	}
	if _, ok := s.EpochPeak("s", "m", 99); !ok {
		t.Error("newest epoch missing")
	}
}

func TestSlices(t *testing.T) {
	s := NewStore(0)
	s.Add(Sample{Slice: "b", Metric: "m", Element: "x"})
	s.Add(Sample{Slice: "a", Metric: "m", Element: "x"})
	s.Add(Sample{Slice: "a", Metric: "n", Element: "y"})
	got := s.Slices()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("slices = %v", got)
	}
}

func TestAgentToCollector(t *testing.T) {
	store := NewStore(0)
	col, err := NewCollector("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	ag, err := NewAgent(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()

	for theta := 0; theta < 5; theta++ {
		if err := ag.Send(Sample{
			Slice: "uRLLC1", Metric: "load_mbps", Element: "link3",
			Epoch: 7, Theta: theta, Value: float64(10 + theta),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// UDP delivery is asynchronous; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if peak, ok := store.EpochPeak("uRLLC1", "load_mbps", 7); ok && peak == 14 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	peak, ok := store.EpochPeak("uRLLC1", "load_mbps", 7)
	t.Fatalf("samples not collected in time: peak=%v ok=%v len=%d", peak, ok, store.Len())
}

func TestCollectorDropsGarbage(t *testing.T) {
	store := NewStore(0)
	col, err := NewCollector("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	ag, err := NewAgent(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()
	if _, err := ag.conn.Write([]byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	if err := ag.Send(Sample{Slice: "s", Metric: "m", Element: "x", Epoch: 1, Value: 2}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if store.Len() == 1 && col.Dropped() == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("collector state: stored=%d dropped=%d", store.Len(), col.Dropped())
}

func TestConcurrentIngest(t *testing.T) {
	s := NewStore(0)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s.Add(Sample{Slice: "s", Metric: "m", Element: string(rune('a' + g)), Epoch: i, Value: 1})
				s.EpochPeak("s", "m", i)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Len() != 8*200 {
		t.Errorf("stored %d, want 1600", s.Len())
	}
}

func TestBadCollectorAddr(t *testing.T) {
	if _, err := NewCollector("not-an-addr:xyz", NewStore(0)); err == nil {
		t.Error("expected resolve error")
	}
}

func TestElementEpochSamples(t *testing.T) {
	s := NewStore(0)
	// Ingest out of order across elements, thetas and epochs.
	for _, sm := range []Sample{
		{Slice: "u1", Metric: LoadMetric, Element: BSElement(1), Epoch: 3, Theta: 1, Value: 7},
		{Slice: "u1", Metric: LoadMetric, Element: BSElement(0), Epoch: 3, Theta: 2, Value: 5},
		{Slice: "u1", Metric: LoadMetric, Element: BSElement(0), Epoch: 3, Theta: 0, Value: 9},
		{Slice: "u1", Metric: LoadMetric, Element: BSElement(0), Epoch: 4, Theta: 0, Value: 1},
		{Slice: "u2", Metric: LoadMetric, Element: BSElement(0), Epoch: 3, Theta: 0, Value: 2},
		{Slice: "u1", Metric: "cpu_cores", Element: BSElement(0), Epoch: 3, Theta: 0, Value: 3},
	} {
		s.Add(sm)
	}

	// Deterministic theta order regardless of ingest order; other epochs,
	// slices and metrics filtered out.
	one := s.ElementEpochSamples("u1", LoadMetric, BSElement(0), 3)
	if len(one) != 2 || one[0].Value != 9 || one[1].Value != 5 {
		t.Fatalf("ElementEpochSamples wrong: %+v", one)
	}
	if got := s.ElementEpochSamples("u1", LoadMetric, BSElement(1), 3); len(got) != 1 || got[0].Value != 7 {
		t.Fatalf("bs1 samples wrong: %+v", got)
	}
	if got := s.ElementEpochSamples("u1", LoadMetric, BSElement(7), 3); len(got) != 0 {
		t.Fatalf("samples for an element never written: %+v", got)
	}
}
