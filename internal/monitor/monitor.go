package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Sample is one monitoring observation for a slice at a data-plane element.
type Sample struct {
	Slice   string  `json:"slice"`
	Metric  string  `json:"metric"` // e.g. "load_mbps", "cpu_cores", "prb_share"
	Element string  `json:"element"`
	Epoch   int     `json:"epoch"`
	Theta   int     `json:"theta"` // monitoring slot within the epoch
	Value   float64 `json:"value"`
}

// key identifies one stored series.
type key struct{ slice, metric, element string }

// LoadMetric is the canonical metric name for per-slice demand samples —
// the series the forecasting and yield-accounting loop consumes.
const LoadMetric = "load_mbps"

// BSElement names the monitoring element for radio site b ("bs0", "bs1",
// …): the convention every in-tree agent uses for per-BS load samples,
// and the key the closed-loop controller reads a slice's per-BS series
// back under (ElementEpochSamples) to score them against the reservation
// vector.
func BSElement(b int) string { return fmt.Sprintf("bs%d", b) }

// Store is the in-memory time-series database. It retains a bounded number
// of samples per series (ring retention) and supports the per-epoch
// aggregations the AC-RR engine needs. Safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	retain int
	series map[key][]Sample
}

// NewStore creates a store retaining up to retain samples per series
// (0 means 4096).
func NewStore(retain int) *Store {
	if retain <= 0 {
		retain = 4096
	}
	return &Store{retain: retain, series: make(map[key][]Sample)}
}

// Add ingests a sample.
func (s *Store) Add(sm Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key{sm.Slice, sm.Metric, sm.Element}
	ser := append(s.series[k], sm)
	if len(ser) > s.retain {
		ser = ser[len(ser)-s.retain:]
	}
	s.series[k] = ser
}

// EpochPeak returns max{λ(θ)} for the slice/metric over every element in
// the given epoch — the conservative aggregation of §2.2.2 — and false when
// the epoch holds no samples.
func (s *Store) EpochPeak(slice, metric string, epoch int) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	peak, ok := 0.0, false
	for k, ser := range s.series {
		if k.slice != slice || k.metric != metric {
			continue
		}
		for _, sm := range ser {
			if sm.Epoch == epoch {
				if !ok || sm.Value > peak {
					peak, ok = sm.Value, true
				}
			}
		}
	}
	return peak, ok
}

// ElementEpochSamples returns the samples one (slice, metric, element)
// series holds for the given epoch, sorted by (theta, value) so any
// accounting folded over it is deterministic regardless of ingest
// interleaving. It is a single series lookup, so per-slice accounting
// loops — the closed loop's settle phase runs one per committed slice per
// epoch — stay linear in that series' retained samples instead of
// scanning every series in the store.
func (s *Store) ElementEpochSamples(slice, metric, element string, epoch int) []Sample {
	s.mu.RLock()
	var out []Sample
	for _, sm := range s.series[key{slice, metric, element}] {
		if sm.Epoch == epoch {
			out = append(out, sm)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Theta != out[j].Theta {
			return out[i].Theta < out[j].Theta
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// PeakSeries returns the per-epoch peaks for a slice/metric over the
// inclusive epoch range, suitable for feeding a forecaster. Epochs with no
// samples yield zeros.
func (s *Store) PeakSeries(slice, metric string, from, to int) []float64 {
	out := make([]float64, 0, to-from+1)
	for e := from; e <= to; e++ {
		v, _ := s.EpochPeak(slice, metric, e)
		out = append(out, v)
	}
	return out
}

// Slices lists the slice names present in the store, sorted.
func (s *Store) Slices() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{}
	for k := range s.series {
		set[k.slice] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored samples across all series.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ser := range s.series {
		n += len(ser)
	}
	return n
}

// Collector receives JSON-encoded samples over UDP and ingests them into a
// Store, mirroring an sFlow collector front-ending InfluxDB.
type Collector struct {
	store *Store
	conn  *net.UDPConn
	wg    sync.WaitGroup

	mu      sync.Mutex
	dropped int
}

// NewCollector starts a collector on addr (e.g. "127.0.0.1:0"). Close it
// when done.
func NewCollector(addr string, store *Store) (*Collector, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("monitor: listen: %w", err)
	}
	c := &Collector{store: store, conn: conn}
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Addr returns the collector's bound UDP address, for agents to dial.
func (c *Collector) Addr() string { return c.conn.LocalAddr().String() }

// Dropped reports datagrams that failed to decode.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Close stops the receive loop and releases the socket.
func (c *Collector) Close() error {
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

func (c *Collector) loop() {
	defer c.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		var sm Sample
		if err := json.Unmarshal(buf[:n], &sm); err != nil {
			c.mu.Lock()
			c.dropped++
			c.mu.Unlock()
			continue
		}
		c.store.Add(sm)
	}
}

// Agent pushes samples to a collector over UDP — the role sFlow agents and
// Ceilometer publishers play on the paper's switches and CUs.
type Agent struct {
	conn net.Conn
}

// NewAgent dials the collector.
func NewAgent(collectorAddr string) (*Agent, error) {
	conn, err := net.DialTimeout("udp", collectorAddr, time.Second)
	if err != nil {
		return nil, fmt.Errorf("monitor: dial collector: %w", err)
	}
	return &Agent{conn: conn}, nil
}

// Send publishes one sample; UDP semantics apply (fire and forget).
func (a *Agent) Send(sm Sample) error {
	b, err := json.Marshal(sm)
	if err != nil {
		return err
	}
	_, err = a.conn.Write(b)
	return err
}

// Close releases the socket.
func (a *Agent) Close() error { return a.conn.Close() }
