package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// line builds a trivial BS—switch—CU line network for unit tests.
func line() *Network {
	b := newBuilder("line", 1)
	bs := b.node(BSNode, 0, 0)
	sw := b.node(SwitchNode, 1, 0)
	cu := b.node(CUNode, 2, 0)
	b.link(bs, sw, 1000, Fiber)
	b.link(sw, cu, 1000, Fiber)
	b.bs(bs, DefaultCarrierMHz)
	b.net.CUs = append(b.net.CUs, CU{Node: cu, CPUCores: 8, Edge: true})
	return b.finish()
}

func TestLinkDelayModel(t *testing.T) {
	// 2 Gb/s fiber, 10 km: 12000/2e9 + 4e-6*10 + 5e-6 = 6e-6 + 4e-5 + 5e-6.
	l := Link{CapMbps: 2000, LengthKm: 10, Tech: Fiber}
	want := 12000.0/2e9 + 4e-6*10 + 5e-6
	if got := LinkDelay(l); math.Abs(got-want) > 1e-12 {
		t.Errorf("LinkDelay = %v, want %v", got, want)
	}
	// Wireless propagates at 5 µs/km.
	lw := Link{CapMbps: 2000, LengthKm: 10, Tech: Wireless}
	if LinkDelay(lw) <= LinkDelay(l) {
		t.Error("wireless must be slower than fiber over the same span")
	}
	// FixedDelay overrides everything.
	lf := Link{CapMbps: 1, LengthKm: 1000, Tech: Wireless, FixedDelay: 0.02}
	if LinkDelay(lf) != 0.02 {
		t.Errorf("fixed delay ignored: %v", LinkDelay(lf))
	}
}

func TestLinePaths(t *testing.T) {
	n := line()
	paths := n.Paths(4)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("unexpected path matrix shape")
	}
	ps := paths[0][0]
	if len(ps) != 1 {
		t.Fatalf("line network must have exactly 1 path, got %d", len(ps))
	}
	p := ps[0]
	if len(p.LinkIDs) != 2 || p.CapMbps != 1000 {
		t.Errorf("path = %+v", p)
	}
	wantDelay := LinkDelay(n.Links[0]) + LinkDelay(n.Links[1])
	if math.Abs(p.Delay-wantDelay) > 1e-12 {
		t.Errorf("delay = %v, want %v", p.Delay, wantDelay)
	}
	if !p.Uses(0) || !p.Uses(1) || p.Uses(99) {
		t.Error("Uses() wrong")
	}
}

// diamond builds a BS with two disjoint routes to the CU.
func diamond() *Network {
	b := newBuilder("diamond", 1)
	bs := b.node(BSNode, 0, 0)
	s1 := b.node(SwitchNode, 1, 1)
	s2 := b.node(SwitchNode, 1, -1)
	cu := b.node(CUNode, 2, 0)
	b.link(bs, s1, 1000, Fiber)
	b.link(s1, cu, 1000, Fiber)
	b.link(bs, s2, 500, Fiber) // slower and thinner
	b.link(s2, cu, 500, Fiber)
	b.bs(bs, DefaultCarrierMHz)
	b.net.CUs = append(b.net.CUs, CU{Node: cu, CPUCores: 8, Edge: true})
	return b.finish()
}

func TestYenDiamond(t *testing.T) {
	n := diamond()
	ps := n.Paths(5)[0][0]
	if len(ps) != 2 {
		t.Fatalf("want 2 disjoint paths, got %d", len(ps))
	}
	if ps[0].Delay > ps[1].Delay {
		t.Error("paths must be sorted by delay")
	}
	if ps[0].CapMbps != 1000 || ps[1].CapMbps != 500 {
		t.Errorf("bottlenecks = %v, %v", ps[0].CapMbps, ps[1].CapMbps)
	}
}

func TestYenKLimit(t *testing.T) {
	n := diamond()
	if got := len(n.Paths(1)[0][0]); got != 1 {
		t.Errorf("k=1 returned %d paths", got)
	}
}

func TestNoTransitThroughBS(t *testing.T) {
	// BS1 — BS2 — CU: BS1 must not route through BS2.
	b := newBuilder("transit", 1)
	bs1 := b.node(BSNode, 0, 0)
	bs2 := b.node(BSNode, 1, 0)
	cu := b.node(CUNode, 2, 0)
	b.link(bs1, bs2, 1000, Fiber)
	b.link(bs2, cu, 1000, Fiber)
	b.bs(bs1, DefaultCarrierMHz)
	b.bs(bs2, DefaultCarrierMHz)
	b.net.CUs = append(b.net.CUs, CU{Node: cu, CPUCores: 8, Edge: true})
	n := b.finish()

	ps := n.Paths(3)
	if len(ps[0][0]) != 0 {
		t.Error("BS1 found a path that transits another BS")
	}
	if len(ps[1][0]) != 1 {
		t.Error("BS2 should reach the CU directly")
	}
}

// TestSwissChains verifies that chained BSs still reach the CU even though
// their route passes other BS nodes — the Swiss generator must therefore
// produce chains the Dijkstra transit rule can still serve. This guards a
// generator/path-search interaction bug.
func TestSwissChains(t *testing.T) {
	n := Swiss(30)
	st := n.ComputeStats(8)
	if len(st.PathDelays) == 0 {
		t.Fatal("no paths at all")
	}
	// Every BS must reach the edge CU.
	for i := range n.BSs {
		if math.IsInf(n.ShortestDelay(i, 0), 1) {
			t.Fatalf("BS %d cannot reach the edge CU", i)
		}
	}
}

func TestOperatorShapes(t *testing.T) {
	const k = 8
	n1 := Romanian(60)
	n2 := Swiss(60)
	n3 := Italian(60)

	s1 := n1.ComputeStats(k)
	s2 := n2.ComputeStats(k)
	s3 := n3.ComputeStats(k)

	// Path-diversity ordering from §4.3.1: N1 high (≈6.6), N3 low (≈1.6).
	if !(s1.MeanPathsPerBS > s2.MeanPathsPerBS) || !(s2.MeanPathsPerBS > s3.MeanPathsPerBS) {
		t.Errorf("path diversity ordering violated: N1=%.2f N2=%.2f N3=%.2f",
			s1.MeanPathsPerBS, s2.MeanPathsPerBS, s3.MeanPathsPerBS)
	}
	if s1.MeanPathsPerBS < 4.5 || s1.MeanPathsPerBS > 8 {
		t.Errorf("N1 mean paths %.2f outside the published ballpark of 6.6", s1.MeanPathsPerBS)
	}
	if s3.MeanPathsPerBS < 1.0 || s3.MeanPathsPerBS > 2.5 {
		t.Errorf("N3 mean paths %.2f outside the published ballpark of 1.6", s3.MeanPathsPerBS)
	}

	// Capacity ordering (Fig. 4d): Swiss bottlenecks lowest (wireless),
	// Italian highest (fiber).
	med := func(v []float64) float64 { return v[len(v)/2] }
	if !(med(s2.PathCapsMbps) < med(s1.PathCapsMbps)) || !(med(s1.PathCapsMbps) < med(s3.PathCapsMbps)) {
		t.Errorf("capacity ordering violated: N2=%.0f N1=%.0f N3=%.0f",
			med(s2.PathCapsMbps), med(s1.PathCapsMbps), med(s3.PathCapsMbps))
	}

	// All capacities within the published 2–200 Gb/s envelope.
	for _, s := range []Stats{s1, s2, s3} {
		if s.PathCapsMbps[0] < 2000-1 || s.PathCapsMbps[len(s.PathCapsMbps)-1] > 200000+1 {
			t.Errorf("capacities outside 2–200 Gb/s: [%v, %v]",
				s.PathCapsMbps[0], s.PathCapsMbps[len(s.PathCapsMbps)-1])
		}
	}

	// Italian spans the longest distances (up to 20 km).
	if s3.BSCUDistancesKm[len(s3.BSCUDistancesKm)-1] < 15 {
		t.Error("Italian topology should reach ~20 km")
	}
}

func TestFullScaleDefaults(t *testing.T) {
	if Romanian(0).NumBS() != RomanianBSCount {
		t.Error("Romanian default size wrong")
	}
	if Swiss(0).NumBS() != SwissBSCount {
		t.Error("Swiss default size wrong")
	}
	if Italian(0).NumBS() != ItalianBSCount {
		t.Error("Italian default size wrong")
	}
}

func TestCUSizing(t *testing.T) {
	n := Romanian(30)
	if len(n.CUs) != 2 {
		t.Fatalf("want edge+core CUs, got %d", len(n.CUs))
	}
	if !n.CUs[0].Edge || n.CUs[1].Edge {
		t.Error("CU edge flags wrong")
	}
	if n.CUs[0].CPUCores != EdgeCoresPerBS*30 {
		t.Errorf("edge cores = %v, want %v", n.CUs[0].CPUCores, EdgeCoresPerBS*30)
	}
	if n.CUs[1].CPUCores != EdgeCoresPerBS*30*CoreCUFactor {
		t.Errorf("core cores = %v", n.CUs[1].CPUCores)
	}
	// The core CU is reached over a ≥20 ms path; the edge CU in well
	// under 1 ms. This is what forces uRLLC (Δ=5 ms) to the edge.
	if d := n.ShortestDelay(0, 1); d < CoreCUDelay {
		t.Errorf("core CU delay %v < %v", d, CoreCUDelay)
	}
	if d := n.ShortestDelay(0, 0); d > 1e-3 {
		t.Errorf("edge CU delay %v too high", d)
	}
}

func TestTestbed(t *testing.T) {
	n := Testbed()
	if n.NumBS() != 2 || n.NumCU() != 2 {
		t.Fatal("testbed shape wrong")
	}
	if n.CUs[0].CPUCores != 16 || n.CUs[1].CPUCores != 64 {
		t.Error("testbed CU cores wrong")
	}
	ps := n.Paths(3)
	for bi := range n.BSs {
		if len(ps[bi][0]) == 0 || len(ps[bi][1]) == 0 {
			t.Errorf("BS %d missing a path to a CU", bi)
		}
	}
	// Core CU behind the emulated high-latency backhaul: far beyond
	// uRLLC's 5 ms budget but just inside eMBB/mMTC's 30 ms (§5, Fig. 8d
	// hosts mMTC on the core CU).
	if d := ps[0][1][0].Delay; d < 25e-3 || d > 30e-3 {
		t.Errorf("core path delay %v outside (25ms, 30ms]", d)
	}
	// BS radio: 20 MHz = 100 PRBs worth 150 Mb/s.
	if mb := n.BSs[0].MaxBitrate(); math.Abs(mb-150) > 1e-9 {
		t.Errorf("BS max bitrate %v, want 150", mb)
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 2, 3, 4, 5}, 5)
	if len(cdf) != 5 || cdf[0][0] != 1 || cdf[4][0] != 5 || cdf[4][1] != 1 {
		t.Errorf("cdf = %v", cdf)
	}
	if CDF(nil, 5) != nil || CDF([]float64{1}, 1) != nil {
		t.Error("degenerate CDFs must be nil")
	}
}

func TestDeterminism(t *testing.T) {
	a := Romanian(40).ComputeStats(4)
	b := Romanian(40).ComputeStats(4)
	if a.MeanPathsPerBS != b.MeanPathsPerBS || len(a.PathDelays) != len(b.PathDelays) {
		t.Error("generator is not deterministic")
	}
	for i := range a.PathDelays {
		if a.PathDelays[i] != b.PathDelays[i] {
			t.Fatal("path delays differ across runs")
		}
	}
}

// TestQuickPathInvariants property-checks every enumerated path: loop-free,
// endpoints correct, delay equals the sum of link delays, capacity equals
// the bottleneck.
func TestQuickPathInvariants(t *testing.T) {
	nets := []*Network{Romanian(24), Swiss(24), Italian(24), Testbed()}
	f := func(netIdx uint8, k uint8) bool {
		n := nets[int(netIdx)%len(nets)]
		kk := 1 + int(k)%6
		for bi := range n.BSs {
			for ci := range n.CUs {
				for _, p := range n.Paths(kk)[bi][ci] {
					if p.NodeIDs[0] != n.BSs[bi].Node || p.NodeIDs[len(p.NodeIDs)-1] != n.CUs[ci].Node {
						return false
					}
					seen := map[int]bool{}
					for _, v := range p.NodeIDs {
						if seen[v] {
							return false // loop
						}
						seen[v] = true
					}
					d, cap := 0.0, math.Inf(1)
					for _, lid := range p.LinkIDs {
						l := n.LinkByID(lid)
						d += LinkDelay(l)
						if l.CapMbps < cap {
							cap = l.CapMbps
						}
					}
					if math.Abs(d-p.Delay) > 1e-9 || math.Abs(cap-p.CapMbps) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestTechString(t *testing.T) {
	if Fiber.String() != "fiber" || Copper.String() != "copper" || Wireless.String() != "wireless" {
		t.Error("tech strings wrong")
	}
	if Tech(9).String() == "" {
		t.Error("unknown tech must print")
	}
}

// TestMetroFabric pins the metro-scale generator's structure: the full
// deployment crosses 1000 BSs, every pod carries the four-tier CU chain,
// and a single pod is a strict tree whose tier delays split the Table 1
// budgets (uRLLC reaches exactly the edge and aggregation tiers, eMBB and
// mMTC all four).
func TestMetroFabric(t *testing.T) {
	full := Metro(0)
	if got := full.NumBS(); got != MetroBSCount || got < 1000 {
		t.Fatalf("full metro fabric has %d BSs, want %d (>= 1000)", got, MetroBSCount)
	}
	if got, want := full.NumCU(), 4*MetroPods; got != want {
		t.Fatalf("full metro fabric has %d CUs, want %d (four tiers x %d pods)", got, want, MetroPods)
	}

	pod := Metro(MetroPodBS)
	if pod.NumBS() != MetroPodBS || pod.NumCU() != 4 {
		t.Fatalf("pod has %d BSs / %d CUs, want %d / 4", pod.NumBS(), pod.NumCU(), MetroPodBS)
	}
	paths := pod.Paths(4)
	const urllcBound, embbBound = 5e-3, 30e-3
	for b := 0; b < pod.NumBS(); b++ {
		urllcCUs, embbCUs := 0, 0
		for c := 0; c < pod.NumCU(); c++ {
			if n := len(paths[b][c]); n != 1 {
				t.Fatalf("BS %d CU %d has %d paths, want exactly 1 (strict tree)", b, c, n)
			}
			d := paths[b][c][0].Delay
			if d <= urllcBound {
				urllcCUs++
			}
			if d <= embbBound {
				embbCUs++
			}
		}
		if urllcCUs != 2 {
			t.Errorf("BS %d reaches %d CUs within the uRLLC budget, want 2 (edge+agg)", b, urllcCUs)
		}
		if embbCUs != 4 {
			t.Errorf("BS %d reaches %d CUs within the eMBB budget, want all 4 tiers", b, embbCUs)
		}
	}
	// Tier sizing: edge deliberately undersized, core on the 5x rule.
	podCores := EdgeCoresPerBS * float64(MetroPodBS)
	if got := pod.CUs[0].CPUCores; got >= podCores {
		t.Errorf("edge tier has %v cores, want < the 20·N rule (%v)", got, podCores)
	}
	if got, want := pod.CUs[3].CPUCores, CoreCUFactor*podCores; got != want {
		t.Errorf("core tier has %v cores, want %v", got, want)
	}
	if !pod.CUs[0].Edge || pod.CUs[1].Edge || pod.CUs[2].Edge || pod.CUs[3].Edge {
		t.Error("exactly the first tier must be marked Edge")
	}
}
