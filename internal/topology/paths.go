package topology

import (
	"container/heap"
	"math"
	"sort"
)

// route is an intermediate node/link sequence produced by the path search.
type route struct {
	nodes []int
	links []int
	delay float64
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstra finds the minimum-delay route from src to dst, honoring the
// banned node and link sets (used by Yen's spur computation). It returns
// ok=false when dst is unreachable.
func (n *Network) dijkstra(src, dst int, bannedNodes map[int]bool, bannedLinks map[int]bool) (route, bool) {
	dist := make(map[int]float64, len(n.Nodes))
	prevLink := make(map[int]int, len(n.Nodes))
	visited := make(map[int]bool, len(n.Nodes))

	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		if it.node == dst {
			break
		}
		for _, lid := range n.adj[it.node] {
			if bannedLinks[lid] {
				continue
			}
			l := n.Links[lid]
			next := n.other(l, it.node)
			if bannedNodes[next] && next != dst {
				continue
			}
			// Traffic never transits a base station (BSs are leaves of the
			// transport graph), but it may pass a CU site: the paper's
			// core cloud is reached *through* the edge site's router.
			if next != dst && n.Nodes[next].Kind == BSNode {
				continue
			}
			nd := it.dist + LinkDelay(l)
			if cur, ok := dist[next]; !ok || nd < cur-1e-15 {
				dist[next] = nd
				prevLink[next] = lid
				heap.Push(q, pqItem{node: next, dist: nd})
			}
		}
	}
	if !visited[dst] {
		return route{}, false
	}

	// Walk back from dst.
	var links []int
	var nodes []int
	at := dst
	for at != src {
		lid := prevLink[at]
		links = append(links, lid)
		nodes = append(nodes, at)
		at = n.other(n.Links[lid], at)
	}
	nodes = append(nodes, src)
	reverseInts(links)
	reverseInts(nodes)
	return route{nodes: nodes, links: links, delay: dist[dst]}, true
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// kShortest implements Yen's algorithm for up to k loop-free minimum-delay
// routes from src to dst. Fewer than k routes are returned when the graph
// does not admit more (N3's sparse fiber trees average only 1.6 paths).
func (n *Network) kShortest(src, dst, k int) []route {
	first, ok := n.dijkstra(src, dst, nil, nil)
	if !ok {
		return nil
	}
	result := []route{first}
	var candidates []route

	for len(result) < k {
		prev := result[len(result)-1]
		// Each node of the previous path (except its tail) is a spur.
		for i := 0; i < len(prev.nodes)-1; i++ {
			spur := prev.nodes[i]
			rootNodes := prev.nodes[:i+1]
			rootLinks := prev.links[:i]

			bannedLinks := map[int]bool{}
			for _, r := range result {
				if sharesRoot(r, rootNodes) && len(r.links) > i {
					bannedLinks[r.links[i]] = true
				}
			}
			bannedNodes := map[int]bool{}
			for _, v := range rootNodes[:len(rootNodes)-1] {
				bannedNodes[v] = true
			}

			spurRoute, ok := n.dijkstra(spur, dst, bannedNodes, bannedLinks)
			if !ok {
				continue
			}
			total := route{
				nodes: append(append([]int{}, rootNodes...), spurRoute.nodes[1:]...),
				links: append(append([]int{}, rootLinks...), spurRoute.links...),
			}
			for _, lid := range total.links {
				total.delay += LinkDelay(n.Links[lid])
			}
			if !containsRoute(candidates, total) && !containsRoute(result, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].delay < candidates[b].delay })
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}

// sharesRoot reports whether route r begins with the given node prefix.
func sharesRoot(r route, prefix []int) bool {
	if len(r.nodes) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if r.nodes[i] != v {
			return false
		}
	}
	return true
}

// containsRoute reports whether rs already holds an identical link sequence.
func containsRoute(rs []route, r route) bool {
	for _, o := range rs {
		if len(o.links) != len(r.links) {
			continue
		}
		same := true
		for i := range o.links {
			if o.links[i] != r.links[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// ShortestDelay returns the minimum BS→CU delay in seconds, or +Inf when
// unreachable. It is a convenience for delay-feasibility prechecks.
func (n *Network) ShortestDelay(bsIdx, cuIdx int) float64 {
	r, ok := n.dijkstra(n.BSs[bsIdx].Node, n.CUs[cuIdx].Node, nil, nil)
	if !ok {
		return math.Inf(1)
	}
	return r.delay
}
