package topology

import (
	"fmt"
	"sort"
)

// dynamics.go is the adversarial-topology layer: scripted capacity events —
// BS outages and recoveries, degradation ramps, operators joining and
// leaving a federation — applied at decision-epoch boundaries. An event
// never changes the network's *structure* (node set, link set, path
// enumeration): it sets a capacity multiplier on one element, so every
// precomputed Path stays valid and downstream solvers see only moved
// capacities. Outage and operator-leave are the multiplier-zero special
// case, which the AC-RR big-M relaxation absorbs as deficit capacity
// (committed slices stay placed, the operator "leases" the missing
// resources) instead of an infeasible program.

// EventKind selects which element class a topology event reconfigures.
type EventKind int

// Event targets.
const (
	// EventBS sets a base station's radio-capacity multiplier: 0 is an
	// outage, 1 a full recovery, anything between a degradation step.
	EventBS EventKind = iota
	// EventLink sets a transport link's capacity multiplier; Index is the
	// link ID, or -1 to target every link at once (a backhaul-wide ramp).
	EventLink
	// EventCU sets a computing unit's CPU-pool multiplier: 0 models the
	// operator leaving the federation, 1 a (re)join at full capacity.
	EventCU
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventBS:
		return "bs"
	case EventLink:
		return "link"
	case EventCU:
		return "cu"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one epoch-boundary capacity change. Factor is the element's new
// capacity multiplier relative to the BASE network — events set, they do
// not compose — so an outage (0) followed by a recovery (1) restores the
// published capacity exactly regardless of what happened in between.
type Event struct {
	Epoch  int       `json:"epoch"`
	Kind   EventKind `json:"kind"`
	Index  int       `json:"index"` // BS index, link ID, or CU index; -1 = all (EventLink only)
	Factor float64   `json:"factor"`
}

// Convenience constructors for the common event shapes.

// BSOutage takes base station bs down at the given epoch.
func BSOutage(epoch, bs int) Event { return Event{Epoch: epoch, Kind: EventBS, Index: bs} }

// BSRecover restores base station bs to full capacity.
func BSRecover(epoch, bs int) Event {
	return Event{Epoch: epoch, Kind: EventBS, Index: bs, Factor: 1}
}

// BSDegrade sets base station bs to factor × its published capacity.
func BSDegrade(epoch, bs int, factor float64) Event {
	return Event{Epoch: epoch, Kind: EventBS, Index: bs, Factor: factor}
}

// LinkDegrade sets link (or every link, id -1) to factor × published capacity.
func LinkDegrade(epoch, id int, factor float64) Event {
	return Event{Epoch: epoch, Kind: EventLink, Index: id, Factor: factor}
}

// CULeave removes computing unit cu's capacity (the operator leaves).
func CULeave(epoch, cu int) Event { return Event{Epoch: epoch, Kind: EventCU, Index: cu} }

// CUJoin restores computing unit cu to full capacity (the operator joins).
func CUJoin(epoch, cu int) Event {
	return Event{Epoch: epoch, Kind: EventCU, Index: cu, Factor: 1}
}

// validate checks one event against the base network.
func (e Event) validate(n *Network) error {
	if e.Epoch < 0 {
		return fmt.Errorf("topology: event epoch %d is negative", e.Epoch)
	}
	if e.Factor < 0 {
		return fmt.Errorf("topology: event factor %v is negative", e.Factor)
	}
	switch e.Kind {
	case EventBS:
		if e.Index < 0 || e.Index >= len(n.BSs) {
			return fmt.Errorf("topology: BS event index %d out of range [0,%d)", e.Index, len(n.BSs))
		}
	case EventLink:
		if e.Index != -1 && (e.Index < 0 || e.Index >= len(n.Links)) {
			return fmt.Errorf("topology: link event index %d out of range [0,%d)", e.Index, len(n.Links))
		}
	case EventCU:
		if e.Index < 0 || e.Index >= len(n.CUs) {
			return fmt.Errorf("topology: CU event index %d out of range [0,%d)", e.Index, len(n.CUs))
		}
	default:
		return fmt.Errorf("topology: unknown event kind %v", e.Kind)
	}
	return nil
}

// factors is the accumulated multiplier state of every element.
type factors struct {
	bs, link, cu []float64
}

func newFactors(n *Network) *factors {
	f := &factors{
		bs:   make([]float64, len(n.BSs)),
		link: make([]float64, len(n.Links)),
		cu:   make([]float64, len(n.CUs)),
	}
	for i := range f.bs {
		f.bs[i] = 1
	}
	for i := range f.link {
		f.link[i] = 1
	}
	for i := range f.cu {
		f.cu[i] = 1
	}
	return f
}

// apply folds one (validated) event into the state.
func (f *factors) apply(e Event) {
	switch e.Kind {
	case EventBS:
		f.bs[e.Index] = e.Factor
	case EventLink:
		if e.Index == -1 {
			for i := range f.link {
				f.link[i] = e.Factor
			}
		} else {
			f.link[e.Index] = e.Factor
		}
	case EventCU:
		f.cu[e.Index] = e.Factor
	}
}

// identity reports whether every multiplier is exactly 1 (the base network).
func (f *factors) identity() bool {
	for _, v := range f.bs {
		if v != 1 {
			return false
		}
	}
	for _, v := range f.link {
		if v != 1 {
			return false
		}
	}
	for _, v := range f.cu {
		if v != 1 {
			return false
		}
	}
	return true
}

// derive builds the scaled copy of base under f. The node set, link IDs and
// adjacency are identical to base, so paths precomputed on base remain valid
// routes; only the capacity fields move.
func (f *factors) derive(base *Network) *Network {
	d := &Network{
		Name:  base.Name,
		Nodes: base.Nodes,
		Links: append([]Link(nil), base.Links...),
		BSs:   append([]BS(nil), base.BSs...),
		CUs:   append([]CU(nil), base.CUs...),
	}
	for i := range d.Links {
		d.Links[i].CapMbps *= f.link[i]
	}
	for i := range d.BSs {
		d.BSs[i].CapMHz *= f.bs[i]
	}
	for i := range d.CUs {
		d.CUs[i].CPUCores *= f.cu[i]
	}
	d.build()
	return d
}

// Apply folds the events (in the order given; epochs are ignored) onto base
// and returns the resulting network — base itself when the multipliers come
// out as all-ones, a derived copy otherwise. This is the "apply now" entry
// point the admission engine uses; epoch-indexed callers use a Schedule.
func Apply(base *Network, events []Event) (*Network, error) {
	f := newFactors(base)
	for _, e := range events {
		if err := e.validate(base); err != nil {
			return nil, err
		}
		f.apply(e)
	}
	if f.identity() {
		return base, nil
	}
	return f.derive(base), nil
}

// Schedule replays an event stream against epochs: At(t) returns the
// network in force during epoch t. The returned pointer is STABLE across
// epochs with no event — deliberately, because the cross-epoch warm solver
// treats a changed Network pointer as a shape change and rebuilds cold; a
// schedule therefore forces exactly one conservative cold rebuild per
// event epoch and keeps every quiet epoch on the warm path.
type Schedule struct {
	base   *Network
	events []Event // sorted stably by epoch

	epoch   int // epoch the cache reflects (-1 before the first At)
	applied int // events[:applied] are folded into f
	f       *factors
	cur     *Network
}

// NewSchedule validates the events against base and returns a replayable
// schedule. The event order within one epoch is preserved (later entries
// win, matching Apply).
func NewSchedule(base *Network, events []Event) (*Schedule, error) {
	if base == nil {
		return nil, fmt.Errorf("topology: schedule needs a base network")
	}
	for _, e := range events {
		if err := e.validate(base); err != nil {
			return nil, err
		}
	}
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Epoch < sorted[j].Epoch })
	return &Schedule{base: base, events: sorted, epoch: -1, f: newFactors(base), cur: base}, nil
}

// At returns the network in force during epoch t: base with every event of
// epoch <= t applied. Consecutive calls with non-decreasing epochs reuse
// the cached derivation (same pointer when nothing fired — the warm-path
// contract above); a smaller epoch than the last call replays the stream
// from the start, so the schedule is usable from any deterministic driver.
func (s *Schedule) At(epoch int) *Network {
	if epoch < s.epoch {
		s.f = newFactors(s.base)
		s.cur = s.base
		s.applied = 0
	}
	fired := false
	for s.applied < len(s.events) && s.events[s.applied].Epoch <= epoch {
		s.f.apply(s.events[s.applied])
		s.applied++
		fired = true
	}
	s.epoch = epoch
	if fired {
		if s.f.identity() {
			s.cur = s.base
		} else {
			s.cur = s.f.derive(s.base)
		}
	}
	return s.cur
}

// BSUpMask returns, for epoch t, which base stations have any radio
// capacity left (multiplier > 0). The returned slice is a copy; the
// measurement stage reads it from worker goroutines.
func (s *Schedule) BSUpMask(epoch int) []bool {
	s.At(epoch)
	up := make([]bool, len(s.f.bs))
	for i, v := range s.f.bs {
		up[i] = v > 0
	}
	return up
}

// Events returns the schedule's validated, epoch-sorted event stream.
func (s *Schedule) Events() []Event { return append([]Event(nil), s.events...) }
