// Package topology models the multi-domain mobile data plane of the paper:
// a radio access network of base stations (BSs), a distributed computing
// fabric of computing units (CUs), and an SDN transport network connecting
// them, modelled as an undirected graph whose edges are capacity-limited
// links (§2.1 of the paper).
//
// It provides the store-and-forward path delay model of §4.3.1 (footnote
// 11), k-shortest path enumeration between every BS and CU (the offline
// P_{b,c} sets the AC-RR optimizer consumes), and deterministic synthetic
// generators reproducing the published characteristics of the three real
// European operator networks the paper evaluates on (Fig. 4): the operators'
// raw GIS data is confidential, so the generators are tuned to every
// statistic the paper reports — BS counts, path-diversity means, link
// technology mixes, capacity ranges (2–200 Gb/s) and BS–CU distances
// (0.1–20 km).
package topology
