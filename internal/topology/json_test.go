package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Romanian(20)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.NumBS() != orig.NumBS() ||
		back.NumCU() != orig.NumCU() || len(back.Links) != len(orig.Links) {
		t.Fatal("round trip lost elements")
	}
	// The rebuilt adjacency must produce identical path sets.
	a := orig.ComputeStats(4)
	b := back.ComputeStats(4)
	if a.MeanPathsPerBS != b.MeanPathsPerBS || len(a.PathDelays) != len(b.PathDelays) {
		t.Fatal("round trip changed path structure")
	}
	for i := range a.PathDelays {
		if a.PathDelays[i] != b.PathDelays[i] {
			t.Fatal("path delays differ after round trip")
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        `{{{`,
		"unknown field":   `{"name":"x","bogus":1}`,
		"bad node ids":    `{"name":"x","nodes":[{"ID":7}]}`,
		"bad link":        `{"name":"x","nodes":[{"ID":0},{"ID":1}],"links":[{"ID":0,"A":0,"B":0,"CapMbps":5}]}`,
		"zero capacity":   `{"name":"x","nodes":[{"ID":0},{"ID":1}],"links":[{"ID":0,"A":0,"B":1}]}`,
		"bs wrong kind":   `{"name":"x","nodes":[{"ID":0,"Kind":0}],"base_stations":[{"Node":0,"CapMHz":20,"Eta":0.13}]}`,
		"cu out of range": `{"name":"x","nodes":[{"ID":0,"Kind":2}],"computing_units":[{"Node":5,"CPUCores":4}]}`,
		"cu zero pool":    `{"name":"x","nodes":[{"ID":0,"Kind":2}],"computing_units":[{"Node":0,"CPUCores":0}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted invalid document", name)
		}
	}
}

func TestReadJSONMinimalValid(t *testing.T) {
	doc := `{
	  "name": "mini",
	  "nodes": [{"ID":0,"Kind":1}, {"ID":1,"Kind":0}, {"ID":2,"Kind":2}],
	  "links": [{"ID":0,"A":0,"B":1,"CapMbps":1000}, {"ID":1,"A":1,"B":2,"CapMbps":1000}],
	  "base_stations": [{"Node":0,"CapMHz":20,"Eta":0.1333}],
	  "computing_units": [{"Node":2,"CPUCores":8,"Edge":true}]
	}`
	n, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Paths(2)[0][0]); got != 1 {
		t.Errorf("expected 1 path through the minimal network, got %d", got)
	}
}
