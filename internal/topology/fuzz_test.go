package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeTopology drives ReadJSON with arbitrary input: any byte string
// must either decode into a network that survives basic use (path
// enumeration over a decoded graph must not panic either) or return an
// error — never panic and never accept a structurally inconsistent graph.
func FuzzDecodeTopology(f *testing.F) {
	// Seed corpus: a valid round-tripped network plus targeted mutations of
	// the failure classes the validator must catch.
	var buf bytes.Buffer
	if err := Testbed().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add(`{}`)
	f.Add(`{"name":"x","nodes":[],"links":[],"base_stations":[],"computing_units":[]}`)
	f.Add(strings.Replace(valid, `"id": 0`, `"id": 7`, 1))
	f.Add(strings.Replace(valid, `"A": 0`, `"A": -1`, 1))
	f.Add(strings.Replace(valid, `"CapMbps": `, `"CapMbps": -`, 1))
	f.Add(`{"name":"x","nodes":[{"ID":0,"Kind":1,"X":0,"Y":0}],"links":[],` +
		`"base_stations":[{"Node":0,"CapMHz":100,"Eta":0.13}],"computing_units":[{"Node":0,"CPUCores":4,"Edge":true}]}`)
	f.Add(`{"nodes":[{"ID":0,"Kind":1},{"ID":1,"Kind":2}],"links":[{"ID":0,"A":0,"B":1,"CapMbps":100}],` +
		`"base_stations":[{"Node":0,"CapMHz":100,"Eta":0.13}],"computing_units":[{"Node":1,"CPUCores":4}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		n, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// A decoded network must be safe to use: serialization, stats and
		// path enumeration all operate on validated invariants.
		var out bytes.Buffer
		if err := n.WriteJSON(&out); err != nil {
			t.Fatalf("decoded network failed to re-encode: %v", err)
		}
		_ = n.Paths(2)
		for b := range n.BSs {
			for c := range n.CUs {
				_ = n.ShortestDelay(b, c)
			}
		}
	})
}
