package topology

import (
	"fmt"
	"math"
	"sort"
)

// Tech identifies the transmission technology of a transport link; the mix
// differs per operator (§4.3.1: "N3 uses mainly fiber, N2 wireless and N1
// fiber, copper and wireless") and drives both capacity and per-km delay.
type Tech int

// Link technologies.
const (
	Fiber Tech = iota
	Copper
	Wireless
)

// String names the technology.
func (t Tech) String() string {
	switch t {
	case Fiber:
		return "fiber"
	case Copper:
		return "copper"
	case Wireless:
		return "wireless"
	}
	return fmt.Sprintf("Tech(%d)", int(t))
}

// NodeKind distinguishes data-plane element types.
type NodeKind int

// Node kinds.
const (
	SwitchNode NodeKind = iota
	BSNode
	CUNode
)

// Node is a data-plane element placed on a 2-D map (km coordinates).
type Node struct {
	ID   int
	Kind NodeKind
	X, Y float64 // km
}

// Link is an undirected transport edge between two nodes.
type Link struct {
	ID       int
	A, B     int     // node IDs
	CapMbps  float64 // transport capacity Ce in Mb/s
	LengthKm float64
	Tech     Tech
	// FixedDelay, when positive, overrides the analytic delay model for
	// this link (used for the emulated 20–30 ms backhaul to the core CU).
	FixedDelay float64 // seconds
}

// BS is a base station with its radio capacity. CapMHz is C_b; the
// spectral-efficiency factor η_b (MHz per Mb/s) maps a bitrate reservation
// into radio resources (constraint (4) of the paper). The paper's ideal
// 2x2-MIMO LTE setting gives η_b = 20/150 for a 20 MHz carrier.
type BS struct {
	Node   int
	CapMHz float64
	Eta    float64 // MHz per Mb/s
}

// MaxBitrate returns the aggregate bitrate (Mb/s) the BS can carry.
func (b BS) MaxBitrate() float64 { return b.CapMHz / b.Eta }

// CU is a computing unit (edge or core cloud) with an aggregate CPU pool
// (constraint (2) of the paper).
type CU struct {
	Node     int
	CPUCores float64
	Edge     bool // true for the edge CU, false for core clouds
}

// Network is an immutable data-plane topology.
type Network struct {
	Name  string
	Nodes []Node
	Links []Link
	BSs   []BS
	CUs   []CU

	adj map[int][]int // node -> incident link IDs
}

// Per-link delay model constants (paper §4.3.1, footnote 11): a 12000-bit
// packet store-and-forward time 12000/Ce, propagation at 4 µs/km for cable
// and 5 µs/km for wireless, plus 5 µs of fixed per-hop processing.
const (
	packetBits       = 12000.0
	cableUsPerKm     = 4e-6
	wirelessUsPerKm  = 5e-6
	perHopProcessing = 5e-6
)

// LinkDelay returns the one-way delay of a link in seconds.
func LinkDelay(l Link) float64 {
	if l.FixedDelay > 0 {
		return l.FixedDelay
	}
	prop := cableUsPerKm
	if l.Tech == Wireless {
		prop = wirelessUsPerKm
	}
	return packetBits/(l.CapMbps*1e6) + prop*l.LengthKm + perHopProcessing
}

// build finalizes internal indices; generators call it once.
func (n *Network) build() {
	n.adj = make(map[int][]int, len(n.Nodes))
	for _, l := range n.Links {
		n.adj[l.A] = append(n.adj[l.A], l.ID)
		n.adj[l.B] = append(n.adj[l.B], l.ID)
	}
}

// NumBS and NumCU report domain sizes.
func (n *Network) NumBS() int { return len(n.BSs) }

// NumCU reports the number of computing units.
func (n *Network) NumCU() int { return len(n.CUs) }

// LinkByID returns the link with the given ID.
func (n *Network) LinkByID(id int) Link { return n.Links[id] }

// other returns the far end of link l seen from node v.
func (n *Network) other(l Link, v int) int {
	if l.A == v {
		return l.B
	}
	return l.A
}

// Path is a loop-free BS→CU route: an ordered link sequence with its
// precomputed end-to-end delay D_p and bottleneck capacity.
type Path struct {
	BS, CU  int // indices into Network.BSs / Network.CUs
	LinkIDs []int
	NodeIDs []int // includes both endpoints
	Delay   float64
	CapMbps float64 // min link capacity along the path
}

// Uses reports whether the path traverses link id (the 1_{e∈p} indicator of
// constraint (3)).
func (p Path) Uses(linkID int) bool {
	for _, id := range p.LinkIDs {
		if id == linkID {
			return true
		}
	}
	return false
}

// Paths computes P_{b,c} for every (BS, CU) pair: up to k loop-free
// shortest-delay paths (Yen's algorithm over Dijkstra), the offline
// precomputation step of §2.1.2.
func (n *Network) Paths(k int) [][][]Path {
	out := make([][][]Path, len(n.BSs))
	for bi, b := range n.BSs {
		out[bi] = make([][]Path, len(n.CUs))
		for ci, c := range n.CUs {
			raw := n.kShortest(b.Node, c.Node, k)
			paths := make([]Path, len(raw))
			for i, r := range raw {
				paths[i] = n.finishPath(bi, ci, r)
			}
			out[bi][ci] = paths
		}
	}
	return out
}

// finishPath annotates a raw node/link route with delay and bottleneck.
func (n *Network) finishPath(bi, ci int, r route) Path {
	p := Path{BS: bi, CU: ci, LinkIDs: r.links, NodeIDs: r.nodes, CapMbps: math.Inf(1)}
	for _, id := range r.links {
		l := n.Links[id]
		p.Delay += LinkDelay(l)
		if l.CapMbps < p.CapMbps {
			p.CapMbps = l.CapMbps
		}
	}
	return p
}

// Stats summarizes the topology the way Fig. 4 of the paper does.
type Stats struct {
	MeanPathsPerBS  float64   // path diversity toward the edge CU
	PathCapsMbps    []float64 // per-path bottleneck capacities (sorted)
	PathDelays      []float64 // per-path delays in seconds (sorted)
	BSCUDistancesKm []float64
}

// ComputeStats enumerates up to k paths from every BS to the edge CU and
// aggregates the distributions plotted in Fig. 4(d)/(e).
func (n *Network) ComputeStats(k int) Stats {
	var s Stats
	edge := 0
	for ci, c := range n.CUs {
		if c.Edge {
			edge = ci
			break
		}
	}
	cuNode := n.Nodes[n.CUs[edge].Node]
	total := 0
	for _, b := range n.BSs {
		raw := n.kShortest(b.Node, n.CUs[edge].Node, k)
		total += len(raw)
		for _, r := range raw {
			p := n.finishPath(0, edge, r)
			s.PathCapsMbps = append(s.PathCapsMbps, p.CapMbps)
			s.PathDelays = append(s.PathDelays, p.Delay)
		}
		bn := n.Nodes[b.Node]
		s.BSCUDistancesKm = append(s.BSCUDistancesKm,
			math.Hypot(bn.X-cuNode.X, bn.Y-cuNode.Y))
	}
	if len(n.BSs) > 0 {
		s.MeanPathsPerBS = float64(total) / float64(len(n.BSs))
	}
	sort.Float64s(s.PathCapsMbps)
	sort.Float64s(s.PathDelays)
	sort.Float64s(s.BSCUDistancesKm)
	return s
}

// CDF returns (value, cumulative-fraction) pairs for a sorted sample at the
// requested number of evenly spaced quantile points, ready to print as a
// Fig. 4-style distribution row.
func CDF(sorted []float64, points int) [][2]float64 {
	if len(sorted) == 0 || points < 2 {
		return nil
	}
	out := make([][2]float64, points)
	for i := 0; i < points; i++ {
		q := float64(i) / float64(points-1)
		idx := int(q * float64(len(sorted)-1))
		out[i] = [2]float64{sorted[idx], q}
	}
	return out
}
