package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// networkJSON is the stable wire form of a Network, so topologies can be
// exported for plotting (the Fig. 4 maps), diffed across versions, or
// loaded from externally provided operator data instead of the built-in
// synthetic generators.
type networkJSON struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	Links []Link `json:"links"`
	BSs   []BS   `json:"base_stations"`
	CUs   []CU   `json:"computing_units"`
}

// WriteJSON serializes the network.
func (n *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(networkJSON{
		Name: n.Name, Nodes: n.Nodes, Links: n.Links, BSs: n.BSs, CUs: n.CUs,
	})
}

// ReadJSON deserializes a network and validates its referential integrity
// before building the adjacency index.
func ReadJSON(r io.Reader) (*Network, error) {
	var nj networkJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&nj); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	n := &Network{Name: nj.Name, Nodes: nj.Nodes, Links: nj.Links, BSs: nj.BSs, CUs: nj.CUs}
	if err := n.validate(); err != nil {
		return nil, err
	}
	n.build()
	return n, nil
}

// validate checks IDs, endpoints and element references.
func (n *Network) validate() error {
	for i, node := range n.Nodes {
		if node.ID != i {
			return fmt.Errorf("topology: node %d has ID %d (IDs must be dense indices)", i, node.ID)
		}
	}
	inRange := func(v int) bool { return v >= 0 && v < len(n.Nodes) }
	for i, l := range n.Links {
		if l.ID != i {
			return fmt.Errorf("topology: link %d has ID %d", i, l.ID)
		}
		if !inRange(l.A) || !inRange(l.B) || l.A == l.B {
			return fmt.Errorf("topology: link %d endpoints %d-%d invalid", i, l.A, l.B)
		}
		if l.CapMbps <= 0 {
			return fmt.Errorf("topology: link %d has non-positive capacity", i)
		}
	}
	for i, bs := range n.BSs {
		if !inRange(bs.Node) || n.Nodes[bs.Node].Kind != BSNode {
			return fmt.Errorf("topology: BS %d references node %d which is not a BS node", i, bs.Node)
		}
		if bs.CapMHz <= 0 || bs.Eta <= 0 {
			return fmt.Errorf("topology: BS %d has non-positive radio parameters", i)
		}
	}
	for i, cu := range n.CUs {
		if !inRange(cu.Node) || n.Nodes[cu.Node].Kind != CUNode {
			return fmt.Errorf("topology: CU %d references node %d which is not a CU node", i, cu.Node)
		}
		if cu.CPUCores <= 0 {
			return fmt.Errorf("topology: CU %d has non-positive CPU pool", i)
		}
	}
	return nil
}
