package topology

import (
	"math"
	"testing"
)

func TestApplyScalesOnlyCapacities(t *testing.T) {
	base := Romanian(8)
	got, err := Apply(base, []Event{
		BSOutage(0, 2),
		LinkDegrade(0, 1, 0.5),
		CULeave(0, 0),
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got == base {
		t.Fatal("Apply with non-identity events returned the base pointer")
	}
	if got.BSs[2].CapMHz != 0 {
		t.Errorf("BS 2 CapMHz = %v, want 0 after outage", got.BSs[2].CapMHz)
	}
	if want := base.Links[1].CapMbps * 0.5; got.Links[1].CapMbps != want {
		t.Errorf("link 1 CapMbps = %v, want %v", got.Links[1].CapMbps, want)
	}
	if got.CUs[0].CPUCores != 0 {
		t.Errorf("CU 0 CPUCores = %v, want 0 after leave", got.CUs[0].CPUCores)
	}
	// Structure is shared/identical: same node set, same link IDs, and the
	// path enumeration stays congruent with base so precomputed paths on
	// base remain valid routes on the derived network.
	if len(got.Nodes) != len(base.Nodes) || len(got.Links) != len(base.Links) {
		t.Fatalf("structure changed: %d/%d nodes, %d/%d links",
			len(got.Nodes), len(base.Nodes), len(got.Links), len(base.Links))
	}
	for i := range base.BSs {
		if got.BSs[i].Node != base.BSs[i].Node {
			t.Fatalf("BS %d moved node %d -> %d", i, base.BSs[i].Node, got.BSs[i].Node)
		}
	}
	// Untouched elements keep their published capacity bit for bit.
	if got.BSs[0].CapMHz != base.BSs[0].CapMHz {
		t.Errorf("untouched BS 0 capacity moved: %v != %v", got.BSs[0].CapMHz, base.BSs[0].CapMHz)
	}
	// Base is never mutated.
	if base.BSs[2].CapMHz == 0 || base.CUs[0].CPUCores == 0 {
		t.Fatal("Apply mutated the base network")
	}
}

func TestApplySetsDoNotCompose(t *testing.T) {
	base := Romanian(8)
	// Outage then recovery must restore the published capacity exactly, and
	// Apply must recognize the identity and hand back the base pointer.
	got, err := Apply(base, []Event{BSOutage(1, 3), BSRecover(4, 3)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got != base {
		t.Error("outage+recovery should collapse to the base pointer")
	}
	// Two degradations in a row SET, they don't multiply.
	got, err = Apply(base, []Event{BSDegrade(1, 3, 0.5), BSDegrade(2, 3, 0.5)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if want := base.BSs[3].CapMHz * 0.5; got.BSs[3].CapMHz != want {
		t.Errorf("factor composed: got %v, want %v (set semantics)", got.BSs[3].CapMHz, want)
	}
	// The same contract holds for operator churn: leave zeroes one CU's
	// pool, leave+join collapses to the base pointer.
	got, err = Apply(base, []Event{CULeave(2, 1)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got.CUs[1].CPUCores != 0 || got.CUs[0].CPUCores != base.CUs[0].CPUCores {
		t.Errorf("CULeave: CUs %v / base %v", got.CUs, base.CUs)
	}
	got, err = Apply(base, []Event{CULeave(2, 1), CUJoin(7, 1)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got != base {
		t.Error("leave+join should collapse to the base pointer")
	}
}

func TestApplyAllLinksWildcard(t *testing.T) {
	base := Romanian(8)
	got, err := Apply(base, []Event{LinkDegrade(0, -1, 0.25)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for i := range got.Links {
		if want := base.Links[i].CapMbps * 0.25; math.Abs(got.Links[i].CapMbps-want) > 1e-12 {
			t.Fatalf("link %d = %v, want %v", i, got.Links[i].CapMbps, want)
		}
	}
}

func TestEventValidation(t *testing.T) {
	base := Romanian(8)
	cases := []struct {
		name string
		ev   Event
	}{
		{"negative epoch", Event{Epoch: -1, Kind: EventBS, Index: 0, Factor: 1}},
		{"negative factor", Event{Epoch: 0, Kind: EventBS, Index: 0, Factor: -0.5}},
		{"bs out of range", BSOutage(0, 99)},
		{"bs negative index", BSOutage(0, -1)},
		{"link out of range", LinkDegrade(0, len(base.Links), 0.5)},
		{"link index -2", LinkDegrade(0, -2, 0.5)},
		{"cu out of range", CULeave(0, 99)},
		{"unknown kind", Event{Kind: EventKind(42), Factor: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Apply(base, []Event{tc.ev}); err == nil {
				t.Fatalf("Apply(%+v) accepted an invalid event", tc.ev)
			}
			if _, err := NewSchedule(base, []Event{tc.ev}); err == nil {
				t.Fatalf("NewSchedule(%+v) accepted an invalid event", tc.ev)
			}
		})
	}
	if _, err := NewSchedule(nil, nil); err == nil {
		t.Fatal("NewSchedule(nil) accepted a nil base")
	}
}

func TestSchedulePointerStability(t *testing.T) {
	base := Romanian(8)
	s, err := NewSchedule(base, []Event{
		BSOutage(3, 1),
		BSRecover(6, 1),
	})
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	// Before any event: base pointer, stable across quiet epochs.
	n0 := s.At(0)
	if n0 != base {
		t.Fatal("At(0) before any event should return the base pointer")
	}
	if s.At(1) != n0 || s.At(2) != n0 {
		t.Fatal("quiet epochs must return the identical cached pointer (warm-path contract)")
	}
	// Event epoch: new derived pointer, then stable again.
	n3 := s.At(3)
	if n3 == base {
		t.Fatal("At(3) must derive a new network for the outage epoch")
	}
	if n3.BSs[1].CapMHz != 0 {
		t.Errorf("BS 1 CapMHz = %v during outage, want 0", n3.BSs[1].CapMHz)
	}
	if s.At(4) != n3 || s.At(5) != n3 {
		t.Fatal("epochs between events must reuse the derived pointer")
	}
	// Recovery folds back to identity: base pointer again.
	if n6 := s.At(6); n6 != base {
		t.Fatal("full recovery should collapse back to the base pointer")
	}
	// Rewind replays from the start deterministically.
	if again := s.At(3); again == base || again.BSs[1].CapMHz != 0 {
		t.Fatal("rewound At(3) did not replay the outage")
	}
}

func TestScheduleBSUpMask(t *testing.T) {
	base := Romanian(8)
	s, err := NewSchedule(base, []Event{
		BSOutage(2, 0),
		BSDegrade(2, 1, 0.25), // degraded but up
		BSRecover(5, 0),
	})
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	up := s.BSUpMask(0)
	for i, v := range up {
		if !v {
			t.Fatalf("epoch 0: BS %d should be up", i)
		}
	}
	up = s.BSUpMask(2)
	if up[0] {
		t.Error("epoch 2: BS 0 should be down")
	}
	if !up[1] {
		t.Error("epoch 2: degraded BS 1 should still count as up")
	}
	up = s.BSUpMask(5)
	if !up[0] {
		t.Error("epoch 5: BS 0 should have recovered")
	}
	// Returned mask is a copy: mutating it must not poison the schedule.
	up[0] = false
	if !s.BSUpMask(5)[0] {
		t.Error("BSUpMask returned shared state")
	}
}

func TestScheduleEventsAccessorSortsStably(t *testing.T) {
	base := Romanian(8)
	s, err := NewSchedule(base, []Event{
		BSRecover(7, 0),
		BSDegrade(2, 0, 0.5),
		BSOutage(2, 1),
		BSOutage(0, 2),
	})
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Epoch < evs[i-1].Epoch {
			t.Fatalf("events not epoch-sorted: %+v", evs)
		}
	}
	// Same-epoch order preserved (stable sort): degrade(bs0) before outage(bs1).
	if evs[1].Index != 0 || evs[2].Index != 1 {
		t.Fatalf("same-epoch order not stable: %+v", evs)
	}
	// Accessor returns a copy.
	evs[0] = Event{Epoch: 99}
	if s.Events()[0].Epoch == 99 {
		t.Fatal("Events() returned shared state")
	}
}
