package topology

import (
	"math"
	"math/rand"
)

// Default full-scale sizes from §4.3.1 of the paper.
const (
	RomanianBSCount = 198
	SwissBSCount    = 197
	ItalianBSCount  = 200 // 1497 radio units clustered into 200 BSs
)

// Radio constants (§4.3.1): 20 MHz carriers under ideal 2x2 MIMO carry
// 150 Mb/s, so η_b = 20/150 MHz per Mb/s. The Italian clusters aggregate
// 80–100 MHz; spectral efficiency per MHz is unchanged.
const (
	DefaultCarrierMHz = 20.0
	EtaMHzPerMbps     = 20.0 / 150.0
)

// Edge/core CU sizing (§4.3.1): the edge CU holds 20·N CPU cores — enough
// for one mMTC tenant at maximum load across N BSs — and the core CU five
// times as much, reachable over an uncapacitated 20 ms link.
const (
	EdgeCoresPerBS = 20.0
	CoreCUFactor   = 5.0
	CoreCUDelay    = 20e-3 // seconds
	unlimitedMbps  = 1e9
)

// builder accumulates nodes and links during generation.
type builder struct {
	net *Network
	rng *rand.Rand
}

func newBuilder(name string, seed int64) *builder {
	return &builder{net: &Network{Name: name}, rng: rand.New(rand.NewSource(seed))}
}

func (b *builder) node(kind NodeKind, x, y float64) int {
	id := len(b.net.Nodes)
	b.net.Nodes = append(b.net.Nodes, Node{ID: id, Kind: kind, X: x, Y: y})
	return id
}

func (b *builder) link(a, z int, capMbps float64, tech Tech) int {
	na, nz := b.net.Nodes[a], b.net.Nodes[z]
	id := len(b.net.Links)
	b.net.Links = append(b.net.Links, Link{
		ID: id, A: a, B: z, CapMbps: capMbps,
		LengthKm: math.Hypot(na.X-nz.X, na.Y-nz.Y), Tech: tech,
	})
	return id
}

func (b *builder) fixedDelayLink(a, z int, capMbps, delay float64) int {
	id := b.link(a, z, capMbps, Fiber)
	b.net.Links[id].FixedDelay = delay
	return id
}

func (b *builder) bs(node int, capMHz float64) {
	b.net.BSs = append(b.net.BSs, BS{Node: node, CapMHz: capMHz, Eta: EtaMHzPerMbps})
}

// addCUs places the edge CU at the given node and a core CU behind the
// standard uncapacitated high-latency link, sized per the paper's rule.
func (b *builder) addCUs(edgeNode int, nBS int) {
	edgeCores := EdgeCoresPerBS * float64(nBS)
	b.net.CUs = append(b.net.CUs, CU{Node: edgeNode, CPUCores: edgeCores, Edge: true})
	coreNode := b.node(CUNode, b.net.Nodes[edgeNode].X+50, b.net.Nodes[edgeNode].Y)
	b.fixedDelayLink(edgeNode, coreNode, unlimitedMbps, CoreCUDelay)
	b.net.CUs = append(b.net.CUs, CU{Node: coreNode, CPUCores: edgeCores * CoreCUFactor, Edge: false})
}

func (b *builder) finish() *Network {
	b.net.build()
	return b.net
}

// gbps converts Gb/s to the Mb/s capacity unit used throughout.
func gbps(g float64) float64 { return g * 1000 }

// Romanian generates the N1 topology: a metro core ring around the edge CU
// with dual-homed access switches, a fiber/copper/wireless technology mix,
// and high path redundancy (the paper reports a mean of 6.6 BS→CU paths).
// nBS == 0 selects the full published size of 198 BSs.
func Romanian(nBS int) *Network {
	if nBS == 0 {
		nBS = RomanianBSCount
	}
	b := newBuilder("Romanian (N1)", 101)
	cuNode := b.node(CUNode, 0, 0)

	// Core ring: fiber, 100–200 Gb/s, radius 2 km.
	nCore := maxInt(4, nBS/33)
	core := make([]int, nCore)
	for i := range core {
		ang := 2 * math.Pi * float64(i) / float64(nCore)
		core[i] = b.node(SwitchNode, 2*math.Cos(ang), 2*math.Sin(ang))
		b.link(cuNode, core[i], gbps(100+b.rng.Float64()*100), Fiber)
	}
	for i := range core {
		b.link(core[i], core[(i+1)%nCore], gbps(100+b.rng.Float64()*100), Fiber)
	}

	// Access switches: copper or fiber to two core switches, radius 4–7 km.
	nAcc := maxInt(6, nBS/8)
	acc := make([]int, nAcc)
	for i := range acc {
		ang := 2 * math.Pi * float64(i) / float64(nAcc)
		r := 4 + b.rng.Float64()*3
		acc[i] = b.node(SwitchNode, r*math.Cos(ang), r*math.Sin(ang))
		c1 := i * nCore / nAcc
		c2 := (c1 + 1) % nCore
		tech, cap1 := Copper, gbps(2+b.rng.Float64()*8)
		if b.rng.Float64() < 0.5 {
			tech, cap1 = Fiber, gbps(20+b.rng.Float64()*80)
		}
		b.link(acc[i], core[c1], cap1, tech)
		b.link(acc[i], core[c2], cap1*(0.8+0.4*b.rng.Float64()), tech)
	}

	// BSs: 75% dual-homed (high path diversity), 25% single-homed; last
	// hop copper or wireless at 2–10 Gb/s; radius 5–12 km (0.1–12 km from
	// the CU overall).
	for i := 0; i < nBS; i++ {
		ang := 2 * math.Pi * float64(i) / float64(nBS)
		r := 0.1 + 12*b.rng.Float64()
		bn := b.node(BSNode, r*math.Cos(ang), r*math.Sin(ang))
		a1 := i * nAcc / nBS
		tech, cap1 := Wireless, gbps(2.5+b.rng.Float64()*3.5)
		if b.rng.Float64() < 0.5 {
			tech, cap1 = Copper, gbps(4+b.rng.Float64()*8)
		}
		b.link(bn, acc[a1], cap1, tech)
		if b.rng.Float64() < 0.75 {
			b.link(bn, acc[(a1+1)%nAcc], cap1*(1+0.3*b.rng.Float64()), tech)
		}
		b.bs(bn, DefaultCarrierMHz)
	}
	b.addCUs(cuNode, nBS)
	return b.finish()
}

// Swiss generates the N2 topology: wireless backhaul chains feeding a small
// aggregation ring. The transport is capacity-constrained (2–10 Gb/s
// wireless links), which is what throttles eMBB revenue in the paper's
// "Swiss" results. nBS == 0 selects the full published size of 197 BSs.
func Swiss(nBS int) *Network {
	if nBS == 0 {
		nBS = SwissBSCount
	}
	b := newBuilder("Swiss (N2)", 202)
	cuNode := b.node(CUNode, 0, 0)

	// Aggregation switches radiate from the CU in two-hop branches (no
	// ring): alpine microwave backhaul is tree-like, and the only path
	// diversity comes from sparse cross-links between branch tails and
	// from dual-homed chain heads. This keeps the mean path count between
	// N1's 6.6 and N3's 1.6.
	nBranch := maxInt(3, nBS/30)
	agg := make([]int, 0, nBranch*2)
	tails := make([]int, 0, nBranch)
	for br := 0; br < nBranch; br++ {
		ang := 2 * math.Pi * float64(br) / float64(nBranch)
		prev := cuNode
		for d := 1; d <= 2; d++ {
			r := float64(d) * (2 + b.rng.Float64())
			sw := b.node(SwitchNode, r*math.Cos(ang), r*math.Sin(ang))
			b.link(prev, sw, gbps(5+b.rng.Float64()*5), Wireless)
			agg = append(agg, sw)
			prev = sw
		}
		tails = append(tails, prev)
	}
	for i := range tails {
		if b.rng.Float64() < 0.5 {
			b.link(tails[i], tails[(i+1)%len(tails)], gbps(4+b.rng.Float64()*4), Wireless)
		}
	}
	nAgg := len(agg)

	// Chains of up to 3 sites hang off each aggregation switch. Each site
	// is a small relay switch with its BS attached, so downstream sites
	// backhaul *through* the relay, not through the BS itself (traffic
	// never transits a BS). Chain heads are often dual-homed, giving the
	// moderate path diversity between N1's mesh and N3's trees.
	chainLen := 3
	i := 0
	for i < nBS {
		a := (i / chainLen) % nAgg
		prev := agg[a]
		for j := 0; j < chainLen && i < nBS; j++ {
			ang := 2 * math.Pi * float64(i) / float64(nBS)
			r := 4 + b.rng.Float64()*6 + float64(j)*1.5
			relay := b.node(SwitchNode, r*math.Cos(ang), r*math.Sin(ang))
			b.link(relay, prev, gbps(2+b.rng.Float64()*1.5), Wireless)
			// Some chain heads are dual-homed, but only to the sibling
			// switch of the same branch: cross-branch dual-homing would
			// turn the relays into mesh shortcuts and inflate path
			// diversity beyond what a microwave backhaul exhibits.
			if j == 0 && b.rng.Float64() < 0.35 {
				b.link(relay, agg[a^1], gbps(2+b.rng.Float64()*1.5), Wireless)
			}
			bn := b.node(BSNode, r*math.Cos(ang)+0.1, r*math.Sin(ang))
			b.link(bn, relay, gbps(2+b.rng.Float64()*1.5), Wireless)
			b.bs(bn, DefaultCarrierMHz)
			prev = relay
			i++
		}
	}
	b.addCUs(cuNode, nBS)
	return b.finish()
}

// Italian generates the N3 topology: 1497 radio units clustered into 200
// high-capacity BSs (80–100 MHz each) on a mostly single-path fiber tree
// (the paper reports a mean of 1.6 BS→CU paths), with BSs up to 20 km from
// the edge CU. nBS == 0 selects the full published size of 200 clusters.
func Italian(nBS int) *Network {
	if nBS == 0 {
		nBS = ItalianBSCount
	}
	b := newBuilder("Italian (N3)", 303)
	cuNode := b.node(CUNode, 0, 0)

	// Level-1 fiber hubs.
	nHub := maxInt(4, nBS/25)
	hub := make([]int, nHub)
	for i := range hub {
		ang := 2 * math.Pi * float64(i) / float64(nHub)
		r := 4 + b.rng.Float64()*4
		hub[i] = b.node(SwitchNode, r*math.Cos(ang), r*math.Sin(ang))
		b.link(cuNode, hub[i], gbps(100+b.rng.Float64()*100), Fiber)
	}

	// Level-2 fiber splitters under each hub; ~35% get a cross link to the
	// neighboring hub, which is the only source of path diversity.
	nSpl := maxInt(8, nBS/10)
	spl := make([]int, nSpl)
	for i := range spl {
		ang := 2 * math.Pi * float64(i) / float64(nSpl)
		r := 8 + b.rng.Float64()*6
		spl[i] = b.node(SwitchNode, r*math.Cos(ang), r*math.Sin(ang))
		h := i * nHub / nSpl
		b.link(spl[i], hub[h], gbps(50+b.rng.Float64()*150), Fiber)
		if b.rng.Float64() < 0.35 {
			b.link(spl[i], hub[(h+1)%nHub], gbps(50+b.rng.Float64()*150), Fiber)
		}
	}

	// Cluster BSs: single fiber uplink, 80–100 MHz aggregate carriers,
	// 0.1–20 km from the CU.
	for i := 0; i < nBS; i++ {
		ang := 2 * math.Pi * float64(i) / float64(nBS)
		r := 0.1 + 20*b.rng.Float64()
		bn := b.node(BSNode, r*math.Cos(ang), r*math.Sin(ang))
		b.link(bn, spl[i*nSpl/nBS], gbps(50+b.rng.Float64()*150), Fiber)
		b.bs(bn, 80+b.rng.Float64()*20)
	}
	b.addCUs(cuNode, nBS)
	return b.finish()
}

// Metro-scale fabric sizing (the ROADMAP north-star, past the paper's
// §4.3.1 operator snapshots): MetroBSCount base stations organized into
// pods of MetroPodBS, each pod a strict aggregation tree under its own
// gateway with a deep four-tier CU hierarchy (edge / aggregation / metro /
// core) chained behind the gateway on fixed-delay transport hops. The tier
// delays are chosen against the Table 1 budgets so placement splits
// cleanly: uRLLC (Δ = 5 ms) reaches the edge and aggregation tiers only,
// while eMBB and mMTC (Δ = 30 ms) reach all four (the core tier lands at a
// cumulative 29 ms, just inside the budget like the paper's testbed hop).
// The edge tier is deliberately undersized (metroEdgeFrac of the 20·N
// rule), so low-latency demand contends for it and elastic demand is
// pushed down the hierarchy — the deep-hierarchy analogue of the paper's
// edge/core split.
const (
	MetroBSCount = 1056 // MetroPods pods of MetroPodBS BSs
	MetroPodBS   = 24
	MetroPods    = MetroBSCount / MetroPodBS

	metroAggDelay   = 4e-3  // gateway → aggregation-tier CU
	metroMetroDelay = 8e-3  // aggregation → metro-tier CU (cumulative 12 ms)
	metroCoreDelay  = 17e-3 // metro → core-tier CU (cumulative 29 ms)
	metroEdgeFrac   = 0.3   // edge-tier cores as a fraction of the 20·N rule
)

// Metro generates the metro-scale M1 fabric: nBS base stations in strict
// tree pods (exactly one BS→CU path per tier, so solver cost stays linear
// in pod size; there is no transport path diversity to multiply items),
// pod gateways joined by a metro core ring, and a four-tier CU hierarchy
// per pod. nBS == 0 selects the full MetroBSCount deployment; smaller
// values build ceil(nBS/MetroPodBS) pods — the per-domain unit the metro
// scenario archetype solves, with the full deployment assembled as
// MetroPods independent admission domains (loadgen, BenchmarkMetroRound).
func Metro(nBS int) *Network {
	if nBS == 0 {
		nBS = MetroBSCount
	}
	b := newBuilder("Metro (M1)", 404)
	nPods := (nBS + MetroPodBS - 1) / MetroPodBS
	gws := make([]int, nPods)
	left := nBS
	for p := 0; p < nPods; p++ {
		podN := MetroPodBS
		if podN > left {
			podN = left
		}
		left -= podN
		ang := 2 * math.Pi * float64(p) / float64(nPods)
		gx, gy := 10*math.Cos(ang), 10*math.Sin(ang)
		if nPods == 1 {
			gx, gy = 0, 0
		}
		gw := b.node(SwitchNode, gx, gy)
		gws[p] = gw

		// Access hubs: strict tree, one fiber uplink each.
		nHub := maxInt(4, podN/8)
		hubs := make([]int, nHub)
		for h := range hubs {
			ha := 2 * math.Pi * float64(h) / float64(nHub)
			hubs[h] = b.node(SwitchNode, gx+1.5*math.Cos(ha), gy+1.5*math.Sin(ha))
			b.link(gw, hubs[h], gbps(40+b.rng.Float64()*60), Fiber)
		}
		// BSs: one uplink to their hub (fiber or copper), radius 2–4 km.
		for i := 0; i < podN; i++ {
			ba := 2 * math.Pi * float64(i) / float64(podN)
			r := 2 + 2*b.rng.Float64()
			bn := b.node(BSNode, gx+r*math.Cos(ba), gy+r*math.Sin(ba))
			tech, cap1 := Copper, gbps(4+b.rng.Float64()*6)
			if b.rng.Float64() < 0.6 {
				tech, cap1 = Fiber, gbps(10+b.rng.Float64()*20)
			}
			b.link(bn, hubs[i*nHub/podN], cap1, tech)
			b.bs(bn, DefaultCarrierMHz)
		}

		// The four-tier CU chain behind the gateway. Only the first tier is
		// an edge CU; each deeper tier hangs behind a fixed-delay transport
		// hop and is sized progressively larger (the core tier follows the
		// paper's 5x rule).
		podCores := EdgeCoresPerBS * float64(podN)
		b.net.CUs = append(b.net.CUs, CU{Node: gw, CPUCores: metroEdgeFrac * podCores, Edge: true})
		aggN := b.node(CUNode, gx+0.5, gy+0.5)
		b.fixedDelayLink(gw, aggN, unlimitedMbps, metroAggDelay)
		b.net.CUs = append(b.net.CUs, CU{Node: aggN, CPUCores: podCores})
		metroN := b.node(CUNode, gx+1.0, gy+1.0)
		b.fixedDelayLink(aggN, metroN, unlimitedMbps, metroMetroDelay)
		b.net.CUs = append(b.net.CUs, CU{Node: metroN, CPUCores: 2 * podCores})
		coreN := b.node(CUNode, gx+1.5, gy+1.5)
		b.fixedDelayLink(metroN, coreN, unlimitedMbps, metroCoreDelay)
		b.net.CUs = append(b.net.CUs, CU{Node: coreN, CPUCores: CoreCUFactor * podCores})
	}
	// Metro core ring joining the pod gateways.
	if nPods > 1 {
		for p := 0; p < nPods; p++ {
			b.link(gws[p], gws[(p+1)%nPods], gbps(200+b.rng.Float64()*200), Fiber)
		}
	}
	return b.finish()
}

// Testbed builds the experimental proof-of-concept data plane of §5
// (Fig. 7 and Table 2): two 20 MHz BSs (100 PRBs each), one OpenFlow
// switch with 1 Gb/s Ethernet links, a 16-core edge CU and a 64-core core
// CU behind an emulated 30 ms backhaul.
func Testbed() *Network {
	b := newBuilder("Testbed", 7)
	sw := b.node(SwitchNode, 0, 0)

	bs0 := b.node(BSNode, -0.05, 0.02)
	bs1 := b.node(BSNode, -0.05, -0.02)
	b.link(bs0, sw, 1000, Copper)
	b.link(bs1, sw, 1000, Copper)
	b.bs(bs0, DefaultCarrierMHz)
	b.bs(bs1, DefaultCarrierMHz)

	edge := b.node(CUNode, 0.05, 0.02)
	b.link(sw, edge, 1000, Copper)
	b.net.CUs = append(b.net.CUs, CU{Node: edge, CPUCores: 16, Edge: true})

	// The paper's testbed emulates "30 ms" to the core CU with netem, yet
	// Fig. 8(d) shows mMTC (Δ = 30 ms) hosted there — their budget is
	// inclusive of the emulated hop. We configure the link so the
	// end-to-end path lands just inside 30 ms.
	core := b.node(CUNode, 0.05, -0.02)
	b.fixedDelayLink(sw, core, 1000, 29.9e-3)
	b.net.CUs = append(b.net.CUs, CU{Node: core, CPUCores: 64, Edge: false})
	return b.finish()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
