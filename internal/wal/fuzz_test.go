package wal

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the frame decoder the open-time
// segment scan runs on. The decoder's contract under corruption is total:
// never panic, never loop, and classify every input as a clean end
// (io.EOF), a whole valid frame, or ErrTorn. Seeds cover valid frames,
// torn prefixes and targeted mutations; the fuzzer takes it from there.
func FuzzWALDecode(f *testing.F) {
	var valid []byte
	for i := 0; i < 3; i++ {
		frame, err := encodeFrame(testRecord(i))
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, frame...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                       // torn tail
	f.Add(valid[:5])                                  // torn header
	f.Add([]byte{})                                   // clean end
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	flipped := append([]byte(nil), valid...)
	flipped[11] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Scan exactly like Open does: decode frames until EOF or a torn
		// frame, and make progress on every valid one.
		buf := data
		for {
			rec, n, err := decodeFrame(buf)
			if err == io.EOF {
				if len(buf) != 0 {
					t.Fatalf("io.EOF with %d bytes left", len(buf))
				}
				return
			}
			if err != nil {
				if err != ErrTorn {
					t.Fatalf("decode error is neither EOF nor ErrTorn: %v", err)
				}
				return
			}
			if n <= 0 || n > len(buf) {
				t.Fatalf("decoded frame size %d out of [1, %d]", n, len(buf))
			}
			// A decoded record must re-encode; its payload survived a CRC
			// check, so it is a record the writer could have produced.
			if _, rerr := encodeFrame(&rec); rerr != nil {
				t.Fatalf("valid frame re-encode failed: %v", rerr)
			}
			buf = buf[n:]
		}
	})
}

// FuzzWALTail points the standby's live tail reader at an arbitrary-bytes
// segment file. The tailer's contract under garbage mirrors the opener's:
// never panic, emit records in dense LSN order from 0, and deliver exactly
// the committed prefix the writer-side Open would recover from the same
// bytes — a standby and a restarted leader must never disagree about what
// the log says.
func FuzzWALTail(f *testing.F) {
	var valid []byte
	for i := 0; i < 3; i++ {
		frame, err := encodeFrame(testRecord(i))
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, frame...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn in-progress append
	f.Add(valid[:5])            // torn header
	f.Add([]byte{})             // empty segment
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	flipped := append([]byte(nil), valid...)
	flipped[11] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000000.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		tail, err := OpenTailer(dir)
		if err != nil {
			t.Fatalf("open over a lone segment: %v", err)
		}
		defer tail.Close()
		recs, perr := tail.Poll()
		for i, pr := range recs {
			if pr.LSN != uint64(i) {
				t.Fatalf("record %d carries LSN %d", i, pr.LSN)
			}
		}
		// A second poll over unchanged bytes finds nothing new.
		more, _ := tail.Poll()
		if perr == nil && len(more) != 0 {
			t.Fatalf("idle re-poll produced %d records", len(more))
		}

		// Cross-check against the writer-side opener on the same bytes.
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "wal-0000000000000000.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		ws, recovered, err := Open(Options{Dir: dir2, NoSync: true})
		if err != nil {
			return // opener rejects what the tailer merely held back — fine
		}
		defer ws.Abort()
		if !reflect.DeepEqual(recs, recovered.Records) {
			t.Fatalf("tailer and opener disagree:\n tail: %+v\n open: %+v", recs, recovered.Records)
		}
	})
}
