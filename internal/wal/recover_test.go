package wal

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/admission"
	"repro/internal/monitor"
	"repro/internal/reopt"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/yield"
)

// The kill-and-replay gate. The test plays the durable "world" — tenants
// with their offers, the data plane's seeded traffic generators — while the
// control-plane "process" (engine + controller + monitor store) is
// crashable: a kill Aborts the WAL (dropping its unsynced buffer, exactly
// what a hard stop could lose) and throws the process away, monitor store
// included. Recovery must rebuild a process that continues the run
// BIT-IDENTICALLY to one that was never killed: same per-epoch decision
// fingerprints, same final ledger, same committed detail, same exported
// tracker state.

const recEpochs = 10

// recCISize shrinks an archetype exactly like the reopt equality suite
// does, so the exact solvers stay affordable under -race.
func recCISize(s scenario.Spec) scenario.Spec {
	if s.Tenants > 4 {
		s.Tenants = 4
	}
	s.Epochs = recEpochs
	if s.Arrivals.Kind == scenario.FlashCrowd {
		s.Arrivals.SpikeEpoch = 4
		s.Arrivals.SpikeSize = 2
	}
	return s
}

func recCompile(t testing.TB, spec scenario.Spec, seed int64) sim.Config {
	t.Helper()
	cfg, err := spec.Compile(seed)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SamplesPerEpoch == 0 {
		cfg.SamplesPerEpoch = 8
	}
	return cfg
}

// offer is one tenant request the world keeps alive until it is decided.
type offer struct {
	spec sim.SliceSpec
	sla  slice.SLA
}

// world is everything that survives a control-plane crash: the tenants'
// undecided offers (they re-submit after a kill — their acks never came)
// and the data plane's seeded generators plus the last epoch's emitted
// samples (the monitoring pipeline re-delivers what the dead store lost).
type world struct {
	cfg     sim.Config
	reoffer bool
	offers  []offer
	pending []offer
	gens    map[string][]traffic.Generator
	last    []monitor.Sample
	// events is the scenario's capacity-event stream, epoch-sorted; the
	// world delivers each epoch's slice at the epoch boundary. A recovered
	// process already holds every PAST epoch's events (they replay from the
	// WAL); the boundary delivery happens before the epoch's step, so a
	// kill at the boundary never leaves an event half-delivered.
	events []topology.Event
}

func newWorld(cfg sim.Config, reoffer bool) *world {
	w := &world{cfg: cfg, reoffer: reoffer, gens: map[string][]traffic.Generator{}}
	w.events = append(w.events, cfg.Events...)
	sort.SliceStable(w.events, func(i, j int) bool { return w.events[i].Epoch < w.events[j].Epoch })
	for _, sp := range cfg.Slices {
		w.offers = append(w.offers, offer{
			spec: sp,
			sla: slice.SLA{Template: sp.Template, MeanMbps: sp.MeanMbps, Duration: sp.Duration}.
				WithPenaltyFactor(sp.PenaltyFactor),
		})
	}
	return w
}

// proc is one crashable control-plane process.
type proc struct {
	store  *monitor.Store
	ledger *yield.Ledger
	eng    *admission.Engine
	ctrl   *reopt.Controller
	wal    *Store
	rec    *Report
}

// startProc builds a process. With dir set it opens the WAL there and
// recovers whatever a predecessor left; with dir empty it is the
// uninterrupted reference. snapEvery > 0 arms periodic snapshots.
func startProc(t testing.TB, cfg sim.Config, algorithm, dir string, snapEvery int) *proc {
	t.Helper()
	p := &proc{store: monitor.NewStore(0), ledger: yield.NewLedger()}

	var recovered *Recovered
	if dir != "" {
		var err error
		// Small segments so kills land across rotation boundaries too.
		p.wal, recovered, err = Open(Options{Dir: dir, SegmentBytes: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
	}
	engCfg := admission.Config{QueueDepth: 1024, Ledger: p.ledger}
	if p.wal != nil {
		engCfg.Log = p.wal
	}
	p.eng = admission.New(engCfg)
	if err := p.eng.AddDomain("", admission.DomainConfig{Net: cfg.Net, KPaths: cfg.KPaths, Algorithm: algorithm}); err != nil {
		t.Fatal(err)
	}
	loopCfg := reopt.Config{
		Engine: p.eng, Store: p.store, Ledger: p.ledger,
		HWPeriod: cfg.HWPeriod, ReoptEvery: 1,
	}
	if p.wal != nil {
		loopCfg.Log = p.wal
		if snapEvery > 0 {
			loopCfg.SnapshotEvery = snapEvery
			eng, led, ws := p.eng, p.ledger, p.wal
			loopCfg.Snapshot = func(cs reopt.ControllerState) error {
				snap, err := BuildSnapshot(eng, []string{admission.DefaultDomain}, []reopt.ControllerState{cs}, led)
				if err != nil {
					return err
				}
				return ws.WriteSnapshot(snap)
			}
		}
	}
	ctrl, err := reopt.New(loopCfg)
	if err != nil {
		t.Fatal(err)
	}
	p.ctrl = ctrl
	if p.wal != nil {
		rep, err := Recover(p.wal, recovered, Target{Engine: p.eng, Controller: ctrl, Ledger: p.ledger})
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		p.rec = rep
	}
	if err := p.eng.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// kill hard-stops the process: the WAL loses its unsynced buffer, the
// monitor store and engine die with the process.
func (p *proc) kill() {
	p.eng.Stop()
	if p.wal != nil {
		p.wal.Abort()
	}
}

func (p *proc) stop() {
	p.eng.Stop()
	if p.wal != nil {
		p.wal.Close()
	}
}

// reconnect replays the world's side of a crash hand-off into a fresh
// process: the monitoring pipeline re-delivers the in-flight epoch's
// samples (the forecaster and settlement reads all target the last epoch).
func (w *world) reconnect(p *proc) {
	for _, sm := range w.last {
		p.store.Add(sm)
	}
}

// runEpoch plays one epoch against the process: submit every undecided
// offer, step the loop, account outcomes, emit the epoch's traffic. The
// returned fingerprint matches the reopt equality suite's format.
func (w *world) runEpoch(t testing.TB, p *proc, epoch int) string {
	t.Helper()
	var fire []topology.Event
	for _, ev := range w.events {
		if ev.Epoch == epoch {
			fire = append(fire, ev)
		}
	}
	if len(fire) > 0 {
		if err := p.eng.ApplyTopology("", fire); err != nil {
			t.Fatalf("epoch %d: apply topology: %v", epoch, err)
		}
	}
	for _, o := range w.offers {
		if o.spec.ArrivalEpoch == epoch {
			w.pending = append(w.pending, o)
		}
	}
	tks := make(map[string]*admission.Ticket, len(w.pending))
	for _, o := range w.pending {
		tk, err := p.eng.Submit(admission.Request{Name: o.spec.Name, SLA: o.sla})
		if err != nil {
			t.Fatalf("epoch %d: submit %s: %v", epoch, o.spec.Name, err)
		}
		tks[o.spec.Name] = tk
	}
	rep, err := p.ctrl.Step()
	if err != nil {
		t.Fatalf("epoch %d: %v", epoch, err)
	}
	line := recFingerprint(epoch, rep)

	var still []offer
	for _, o := range w.pending {
		out, ok := tks[o.spec.Name].Outcome()
		if !ok {
			t.Fatalf("epoch %d: %s undecided after the round", epoch, o.spec.Name)
		}
		if out.Admitted {
			gs := make([]traffic.Generator, w.cfg.Net.NumBS())
			for b := range gs {
				gs[b] = sim.NewGenerator(w.cfg, o.spec, b)
			}
			w.gens[o.spec.Name] = gs
		} else if w.reoffer {
			still = append(still, o)
		}
	}
	w.pending = still

	// Data plane: emit the epoch's traffic (expiring slices still served
	// it), remember it for a possible crash hand-off, then retire expired
	// generators.
	w.last = w.last[:0]
	names := make([]string, 0, len(w.gens))
	for n := range w.gens {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		for b, g := range w.gens[name] {
			for theta := 0; theta < w.cfg.SamplesPerEpoch; theta++ {
				sm := monitor.Sample{
					Slice: name, Metric: monitor.LoadMetric, Element: monitor.BSElement(b),
					Epoch: epoch, Theta: theta, Value: g.Sample(epoch, theta),
				}
				p.store.Add(sm)
				w.last = append(w.last, sm)
			}
		}
	}
	for _, name := range rep.Expired {
		delete(w.gens, name)
	}
	return line
}

func recFingerprint(epoch int, rep *reopt.StepReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d exp=%.4f rescaled=%d:", epoch, rep.Round.Decision.Revenue(), rep.Rescaled)
	for i, name := range rep.Round.Names {
		if i < len(rep.Round.Decision.Accepted) && rep.Round.Decision.Accepted[i] {
			fmt.Fprintf(&b, " %s@cu%d%v", name, rep.Round.Decision.CU[i], rep.Round.Decision.PathIdx[i])
		}
	}
	total := 0.0
	for _, e := range rep.Settled {
		total += e.Realized
	}
	fmt.Fprintf(&b, " settled=%.9g/%d", total, len(rep.Settled))
	return b.String()
}

// finalState captures everything recovery promises to reproduce exactly.
type finalState struct {
	ledger    yield.Summary
	committed []admission.CommittedSlice
	ctrl      reopt.ControllerState
}

func capture(t testing.TB, p *proc) finalState {
	t.Helper()
	committed, err := p.eng.CommittedDetail(admission.DefaultDomain)
	if err != nil {
		t.Fatal(err)
	}
	return finalState{
		ledger:    p.ledger.Snapshot(),
		committed: committed,
		ctrl:      p.ctrl.ExportState(),
	}
}

func assertIdentical(t testing.TB, label string, want, got finalState, wantLines, gotLines []string) {
	t.Helper()
	for i := range wantLines {
		if i >= len(gotLines) || wantLines[i] != gotLines[i] {
			g := "<missing>"
			if i < len(gotLines) {
				g = gotLines[i]
			}
			t.Fatalf("%s: decision trace diverged at epoch %d:\n  reference: %s\n  recovered: %s", label, i, wantLines[i], g)
		}
	}
	if !reflect.DeepEqual(want.ledger, got.ledger) {
		t.Fatalf("%s: ledger diverged:\nreference: %+v\nrecovered: %+v", label, want.ledger, got.ledger)
	}
	if !reflect.DeepEqual(want.committed, got.committed) {
		t.Fatalf("%s: committed detail diverged:\nreference: %+v\nrecovered: %+v", label, want.committed, got.committed)
	}
	if !reflect.DeepEqual(want.ctrl, got.ctrl) {
		t.Fatalf("%s: controller state diverged:\nreference: %+v\nrecovered: %+v", label, want.ctrl, got.ctrl)
	}
}

// TestKillAndReplayMatchesUninterrupted is the PR's acceptance gate: on
// the drift archetypes, hard-kill the control plane at randomized epoch
// boundaries — mid-lifecycle, mid-forecast-warmup, before and after
// snapshots — restart from the data directory, and require the recovered
// run's decision trace, yield ledger, committed detail and tracker state
// to equal the never-killed run's bit for bit.
func TestKillAndReplayMatchesUninterrupted(t *testing.T) {
	for _, name := range []string{"diurnal-drift", "flash-drift", "outage", "churn"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec = recCISize(spec)
			cfg := recCompile(t, spec, 42)

			// Uninterrupted reference: same world driver, no WAL, no kills.
			refWorld := newWorld(cfg, spec.ReofferPending)
			ref := startProc(t, cfg, spec.Algorithm, "", 0)
			var refLines []string
			for e := 0; e < recEpochs; e++ {
				refLines = append(refLines, refWorld.runEpoch(t, ref, e))
			}
			refFinal := capture(t, ref)
			ref.stop()

			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 3; trial++ {
				// 1-3 distinct kill epochs per trial, anywhere in the run.
				kills := map[int]bool{}
				for n := 1 + rng.Intn(3); len(kills) < n; {
					kills[1+rng.Intn(recEpochs-1)] = true
				}
				label := fmt.Sprintf("trial %d (kills %v)", trial, sortedKeys(kills))

				dir := t.TempDir()
				w := newWorld(cfg, spec.ReofferPending)
				p := startProc(t, cfg, spec.Algorithm, dir, 3)
				var lines []string
				recoveries := 0
				for e := 0; e < recEpochs; e++ {
					if kills[e] {
						p.kill()
						p = startProc(t, cfg, spec.Algorithm, dir, 3)
						if got := p.ctrl.Epoch(); got != e {
							t.Fatalf("%s: recovered to epoch %d, want %d (report %+v)", label, got, e, p.rec)
						}
						w.reconnect(p)
						recoveries++
					}
					lines = append(lines, w.runEpoch(t, p, e))
				}
				final := capture(t, p)
				p.stop()
				if recoveries == 0 {
					t.Fatalf("%s: no kill actually happened; the trial is vacuous", label)
				}
				assertIdentical(t, label, refFinal, final, refLines, lines)
			}
		})
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TestCleanShutdownResumesReplayFree pins the graceful path: a final
// snapshot on close makes the next start replay-free (no records applied),
// and the resumed run still matches the uninterrupted reference exactly.
func TestCleanShutdownResumesReplayFree(t *testing.T) {
	spec, err := scenario.ByName("diurnal-drift")
	if err != nil {
		t.Fatal(err)
	}
	spec = recCISize(spec)
	cfg := recCompile(t, spec, 42)

	refWorld := newWorld(cfg, spec.ReofferPending)
	ref := startProc(t, cfg, spec.Algorithm, "", 0)
	var refLines []string
	for e := 0; e < recEpochs; e++ {
		refLines = append(refLines, refWorld.runEpoch(t, ref, e))
	}
	refFinal := capture(t, ref)
	ref.stop()

	dir := t.TempDir()
	w := newWorld(cfg, spec.ReofferPending)
	p := startProc(t, cfg, spec.Algorithm, dir, 0)
	var lines []string
	half := recEpochs / 2
	for e := 0; e < half; e++ {
		lines = append(lines, w.runEpoch(t, p, e))
	}
	// Clean shutdown: final snapshot, then close.
	snap, err := BuildSnapshot(p.eng, []string{admission.DefaultDomain},
		[]reopt.ControllerState{p.ctrl.ExportState()}, p.ledger)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.wal.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	p.stop()

	p = startProc(t, cfg, spec.Algorithm, dir, 0)
	if p.rec.Applied != 0 {
		t.Fatalf("clean restart replayed %d records, want a replay-free resume (report %+v)", p.rec.Applied, p.rec)
	}
	if got := p.ctrl.Epoch(); got != half {
		t.Fatalf("resumed at epoch %d, want %d", got, half)
	}
	w.reconnect(p)
	for e := half; e < recEpochs; e++ {
		lines = append(lines, w.runEpoch(t, p, e))
	}
	final := capture(t, p)
	p.stop()
	assertIdentical(t, "clean shutdown", refFinal, final, refLines, lines)
}

// TestRecoverTruncatesUncommittedStepPrefix pins the hold-back rule: a
// step's settle/observe/forecast records that reached disk without their
// round — possible when a crash lands between a buffer flush and the round
// fsync — are dropped physically, and recovery lands on the last committed
// round as if the interrupted step had never started.
func TestRecoverTruncatesUncommittedStepPrefix(t *testing.T) {
	spec, err := scenario.ByName("diurnal-drift")
	if err != nil {
		t.Fatal(err)
	}
	spec = recCISize(spec)
	cfg := recCompile(t, spec, 42)

	dir := t.TempDir()
	w := newWorld(cfg, spec.ReofferPending)
	p := startProc(t, cfg, spec.Algorithm, dir, 0)
	var lines []string
	for e := 0; e < 4; e++ {
		lines = append(lines, w.runEpoch(t, p, e))
	}
	mid := capture(t, p)

	// Crash mid-step: the next step's prefix reaches disk, its round does
	// not. The records are framed like the live step would frame them.
	if err := p.wal.AppendSettle(admission.DefaultDomain, 3, []yield.Entry{{Slice: "ghost", Epoch: 3, Realized: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := p.wal.AppendObserve(admission.DefaultDomain, 4, []string{"ghost"}, []reopt.ObservedPeak{{Name: "ghost", Peak: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := p.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	lsnBefore := p.wal.LSN()
	p.kill()

	p2 := startProc(t, cfg, spec.Algorithm, dir, 0)
	if p2.rec.HeldBack != 2 {
		t.Fatalf("recovery held back %d records, want the 2 uncommitted ones (report %+v)", p2.rec.HeldBack, p2.rec)
	}
	if got := p2.wal.LSN(); got != lsnBefore-2 {
		t.Fatalf("uncommitted tail not truncated: LSN %d, want %d", got, lsnBefore-2)
	}
	got := capture(t, p2)
	// The ghost entries must not have leaked into the ledger or trackers.
	assertIdentical(t, "uncommitted prefix", mid, got, nil, nil)

	// And the interrupted step re-runs live, continuing the run exactly.
	w.reconnect(p2)
	refWorld := newWorld(cfg, spec.ReofferPending)
	ref := startProc(t, cfg, spec.Algorithm, "", 0)
	var refLines []string
	for e := 0; e < recEpochs; e++ {
		refLines = append(refLines, refWorld.runEpoch(t, ref, e))
	}
	refFinal := capture(t, ref)
	ref.stop()
	for e := 4; e < recEpochs; e++ {
		lines = append(lines, w.runEpoch(t, p2, e))
	}
	final := capture(t, p2)
	p2.stop()
	assertIdentical(t, "post-truncation resume", refFinal, final, refLines, lines)
}
