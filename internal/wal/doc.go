// Package wal makes the control plane's decisions durable: a segmented
// append-only log of every admission round's inputs plus periodic
// snapshots of the recoverable engine state, so a crashed process rebuilds
// the exact pre-crash decision state by loading the latest snapshot and
// replaying the log suffix through the real admission/reopt code paths.
//
// # What is logged, and why it suffices
//
// The closed loop is deterministic given its inputs: rounds assemble their
// instance in canonical order (committed slices in admission order, then
// the batch sorted by name) and the solver is tie-broken, so the same
// inputs always produce the same decision. The log therefore captures only
// inputs, per step and in per-domain mutation order:
//
//   - settle: the realized-yield entries booked for an ended epoch
//   - observe: the alive slice set and observed demand peaks fed to the
//     forecast trackers
//   - forecasts: the λ̂/σ̂ views pushed into the engine
//   - round: the decided batch under its round sequence number
//   - advance: one epoch tick of the lifecycle clock
//
// settle and observe are logged even though they are derived data, because
// they derive from the monitor store, which is NOT durable: replay must
// not need it. Warm solver state (Benders session, LP bases) is never
// persisted — it is a cache that re-warms on the first post-recovery
// round, and the warm==cold decision-equality pins guarantee re-warming
// cannot move a decision.
//
// # Record format and group commit
//
// Each record is one frame: a little-endian uint32 payload length, a
// uint32 CRC-32C (Castagnoli) of the payload, then the JSON payload. Go's
// JSON float64 round-trip is exact for finite values, so encoding a
// forecast view or yield entry cannot perturb a bit. Frames append to
// segment files named wal-<firstLSN>.seg; the log-wide record index (LSN)
// is implicit: a segment's base LSN from its name plus the record's index
// within it.
//
// Appends are buffered. The only fsync on the hot path is the round
// boundary (admission.RoundLog.SyncRound), called once per round before
// any outcome is acked: log-before-ack with group commit, so forecast,
// advance, settle and observe records ride their step's round fsync for
// free.
//
// # Snapshots, compaction, torn tails
//
// Every SnapshotEvery-th step the controller hands its state to the WAL
// layer, which syncs the log, writes engine + controller + ledger state to
// snap-<LSN>.json (tmp + rename, so a snapshot is atomically present or
// absent), rotates the segment, keeps the newest two snapshots, and
// deletes segments wholly covered by the older kept one.
//
// On open, a torn frame in the final segment — the expected residue of a
// crash mid-write — is truncated away; a torn frame in a sealed segment is
// corruption and fails the open. Replay then applies the suffix with a
// hold-back rule: a trailing settle/observe/forecasts run whose round
// never made it durable was never acked to anyone, so it is physically
// truncated and the interrupted step simply re-runs live. A trailing round
// without its advance is completed deterministically (and re-logged) by
// recovery, since the round's outcomes were already acked.
package wal
