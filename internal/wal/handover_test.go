package wal

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/admission"
	"repro/internal/monitor"
	"repro/internal/reopt"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/yield"
)

// startTwoDomainProc is startProc with a second, engine-only domain "b"
// sharing the same topology — the handover destination. No snapshots: every
// restart replays the full log, which exercises the handover record's
// replay path on every recovery.
func startTwoDomainProc(t testing.TB, cfg sim.Config, algorithm, dir string) *proc {
	t.Helper()
	p := &proc{store: monitor.NewStore(0), ledger: yield.NewLedger()}

	var recovered *Recovered
	if dir != "" {
		var err error
		p.wal, recovered, err = Open(Options{Dir: dir, SegmentBytes: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
	}
	engCfg := admission.Config{QueueDepth: 1024, Ledger: p.ledger}
	if p.wal != nil {
		engCfg.Log = p.wal
	}
	p.eng = admission.New(engCfg)
	dc := admission.DomainConfig{Net: cfg.Net, KPaths: cfg.KPaths, Algorithm: algorithm}
	if err := p.eng.AddDomain("", dc); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.AddDomain("b", dc); err != nil {
		t.Fatal(err)
	}
	loopCfg := reopt.Config{
		Engine: p.eng, Store: p.store, Ledger: p.ledger,
		HWPeriod: cfg.HWPeriod, ReoptEvery: 1,
	}
	if p.wal != nil {
		loopCfg.Log = p.wal
	}
	ctrl, err := reopt.New(loopCfg)
	if err != nil {
		t.Fatal(err)
	}
	p.ctrl = ctrl
	if p.wal != nil {
		rep, err := Recover(p.wal, recovered, Target{Engine: p.eng, Controller: ctrl, Ledger: p.ledger})
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		p.rec = rep
	}
	if err := p.eng.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// bEpoch plays domain b's engine-only epoch: offer any epoch-0 requests,
// decide a round, advance the lifecycle clock. Returns a decision
// fingerprint in the equality-suite format.
func bEpoch(t testing.TB, p *proc, epoch int, offers []offer, submitted map[string]bool) string {
	t.Helper()
	for _, o := range offers {
		if submitted[o.spec.Name] {
			continue
		}
		if _, err := p.eng.Submit(admission.Request{Name: o.spec.Name, Domain: "b", SLA: o.sla}); err != nil {
			t.Fatalf("epoch %d: submit %s to b: %v", epoch, o.spec.Name, err)
		}
		submitted[o.spec.Name] = true
	}
	r, err := p.eng.DecideRound("b")
	if err != nil {
		t.Fatalf("epoch %d: domain b round: %v", epoch, err)
	}
	var bld strings.Builder
	fmt.Fprintf(&bld, "b epoch %d exp=%.4f:", epoch, r.Decision.Revenue())
	for i, name := range r.Names {
		if i < len(r.Decision.Accepted) && r.Decision.Accepted[i] {
			fmt.Fprintf(&bld, " %s@cu%d%v", name, r.Decision.CU[i], r.Decision.PathIdx[i])
		}
	}
	if _, err := p.eng.Advance("b"); err != nil {
		t.Fatalf("epoch %d: domain b advance: %v", epoch, err)
	}
	return bld.String()
}

// TestKillAndReplayHandover extends the kill-and-replay gate across a
// domain boundary: a committed slice hands over from the controller-driven
// domain to an engine-only peer mid-run, the control plane is hard-killed
// on both sides of the move, and the recovered run — handover record
// replayed through the live Handover path — must match the uninterrupted
// reference bit for bit in both domains' decision traces and committed
// detail, with the moved slice's ledger identity (name, tenant, SLA,
// forecast view, remaining lifetime) intact.
func TestKillAndReplayHandover(t *testing.T) {
	spec, err := scenario.ByName("homogeneous")
	if err != nil {
		t.Fatal(err)
	}
	spec = recCISize(spec)
	cfg := recCompile(t, spec, 42)

	// Domain b's own tenants: same template population, distinct names.
	var bOffers []offer
	for i := 0; i < 2; i++ {
		sp := cfg.Slices[i]
		sp.Name = fmt.Sprintf("b-%s", sp.Name)
		bOffers = append(bOffers, offer{
			spec: sp,
			sla: slice.SLA{Template: sp.Template, MeanMbps: sp.MeanMbps, Duration: sp.Duration}.
				WithPenaltyFactor(sp.PenaltyFactor),
		})
	}

	const handoverEpoch = 5
	run := func(t testing.TB, dir string, kills map[int]bool) ([]string, finalState, []admission.CommittedSlice, int) {
		w := newWorld(cfg, spec.ReofferPending)
		p := startTwoDomainProc(t, cfg, spec.Algorithm, dir)
		submitted := map[string]bool{}
		var lines []string
		var moved string
		recoveries := 0
		for e := 0; e < recEpochs; e++ {
			if dir != "" && kills[e] {
				p.kill()
				p = startTwoDomainProc(t, cfg, spec.Algorithm, dir)
				if got := p.ctrl.Epoch(); got != e {
					t.Fatalf("recovered to epoch %d, want %d (report %+v)", got, e, p.rec)
				}
				w.reconnect(p)
				recoveries++
			}
			if e == handoverEpoch {
				names, err := p.eng.Committed(admission.DefaultDomain)
				if err != nil || len(names) == 0 {
					t.Fatalf("epoch %d: nothing committed to hand over (%v)", e, err)
				}
				moved = names[0]
				if err := p.eng.Handover("", "b", moved); err != nil {
					t.Fatalf("handover %s: %v", moved, err)
				}
				lines = append(lines, "handover "+moved)
			}
			lines = append(lines, w.runEpoch(t, p, e))
			lines = append(lines, bEpoch(t, p, e, bOffers, submitted))
		}
		// The moved slice must live in b with its identity intact, and must
		// be gone from the source.
		bDetail, err := p.eng.CommittedDetail("b")
		if err != nil {
			t.Fatal(err)
		}
		foundMoved := false
		for _, cs := range bDetail {
			if cs.Name == moved {
				foundMoved = true
			}
		}
		if !foundMoved {
			t.Fatalf("moved slice %q not committed in domain b: %+v", moved, bDetail)
		}
		srcNames, err := p.eng.Committed(admission.DefaultDomain)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range srcNames {
			if n == moved {
				t.Fatalf("moved slice %q still committed in the source domain", moved)
			}
		}
		final := capture(t, p)
		p.stop()
		return lines, final, bDetail, recoveries
	}

	refLines, refFinal, refB, _ := run(t, "", nil)

	// Kills on both sides of the handover epoch: one recovery must replay
	// rounds only, the other must replay the handover record too.
	kills := map[int]bool{4: true, 7: true}
	lines, final, bDetail, recoveries := run(t, t.TempDir(), kills)
	if recoveries != 2 {
		t.Fatalf("expected 2 recoveries, got %d", recoveries)
	}
	assertIdentical(t, "handover", refFinal, final, refLines, lines)
	if !reflect.DeepEqual(refB, bDetail) {
		t.Fatalf("domain b committed detail diverged:\nreference: %+v\nrecovered: %+v", refB, bDetail)
	}
}
