package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/admission"
	"repro/internal/reopt"
	"repro/internal/topology"
	"repro/internal/yield"
)

// Record kinds, one per logged step input. See the package comment for the
// full contract of each.
const (
	KindRound     = "round"
	KindForecasts = "forecasts"
	KindAdvance   = "advance"
	KindObserve   = "observe"
	KindSettle    = "settle"
	// KindTopology records capacity events folded into a domain's live
	// network; KindHandover a committed slice moving between domains. Both
	// are fsynced at append time (they change every later decision), so —
	// unlike forecasts/advance — they are never held back by recovery.
	KindTopology = "topology"
	KindHandover = "handover"
)

// Record is one logged step input. Kind selects which fields are
// meaningful; the rest stay zero and are omitted from the payload.
type Record struct {
	Kind   string `json:"kind"`
	Domain string `json:"domain"`

	// round: the decided batch, already in canonical sorted order, under
	// the domain's round sequence number.
	Seq   uint64              `json:"seq,omitempty"`
	Batch []admission.Request `json:"batch,omitempty"`

	// forecasts: the views pushed into the engine.
	Forecasts []admission.ForecastUpdate `json:"forecasts,omitempty"`

	// observe / settle: the step epoch, the full alive set and observed
	// peaks (observe), the booked yield entries (settle).
	Epoch   int                  `json:"epoch,omitempty"`
	Alive   []string             `json:"alive,omitempty"`
	Peaks   []reopt.ObservedPeak `json:"peaks,omitempty"`
	Entries []yield.Entry        `json:"entries,omitempty"`

	// topology: the capacity events applied (Domain is the target domain).
	Events []topology.Event `json:"events,omitempty"`

	// handover: the slice Name moving from Domain to To.
	To   string `json:"to,omitempty"`
	Name string `json:"name,omitempty"`
}

// ErrTorn marks a frame that cannot be decoded: short header, payload
// running past the buffer, CRC mismatch, oversized length, or a payload
// that is not a record. At the tail of the last segment this is the
// expected residue of a crash and is truncated away; anywhere else it is
// corruption.
var ErrTorn = errors.New("wal: torn or corrupt record")

// maxRecordBytes bounds a frame's payload; anything larger is a torn
// length field, not a real record (a round batch is a few KB).
const maxRecordBytes = 16 << 20

// frameHeaderBytes is the fixed prefix: uint32 payload length + uint32
// CRC-32C, both little-endian.
const frameHeaderBytes = 8

// castagnoli is the CRC-32C table (the polynomial with hardware support on
// both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame renders one record as a length-prefixed, CRC-guarded frame.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderBytes:], payload)
	return frame, nil
}

// decodeFrame decodes the frame at the head of buf, returning the record
// and the frame's total size. io.EOF means buf is empty (a clean end);
// ErrTorn means the bytes present do not form a whole valid frame.
func decodeFrame(buf []byte) (Record, int, error) {
	if len(buf) == 0 {
		return Record{}, 0, io.EOF
	}
	if len(buf) < frameHeaderBytes {
		return Record{}, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxRecordBytes {
		return Record{}, 0, ErrTorn
	}
	end := frameHeaderBytes + int(n)
	if len(buf) < end {
		return Record{}, 0, ErrTorn
	}
	payload := buf[frameHeaderBytes:end]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[4:8]) {
		return Record{}, 0, ErrTorn
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		// A CRC-valid frame that is not a record can only come from a
		// writer bug or deliberate corruption; refuse it the same way.
		return Record{}, 0, ErrTorn
	}
	return rec, end, nil
}
