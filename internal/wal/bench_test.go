package wal

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/admission"
	"repro/internal/slice"
	"repro/internal/topology"
)

// BenchmarkWALRoundCommit measures the durability tax in isolation: one
// admission round's log-before-ack sequence — append the batch record,
// fsync — per iteration. This is the floor the group commit amortizes:
// every record a step produces (settle, observe, forecasts, round,
// advance) rides this one fsync.
func BenchmarkWALRoundCommit(b *testing.B) {
	s, _, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	batch := []admission.Request{
		{Name: "a", SLA: slice.SLA{Template: slice.Table1(slice.EMBB), Duration: 4}.WithPenaltyFactor(1)},
		{Name: "b", SLA: slice.SLA{Template: slice.Table1(slice.URLLC), Duration: 4}.WithPenaltyFactor(1)},
		{Name: "c", SLA: slice.SLA{Template: slice.Table1(slice.MMTC), Duration: 4}.WithPenaltyFactor(1)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AppendRound(admission.DefaultDomain, uint64(i), batch); err != nil {
			b.Fatal(err)
		}
		if err := s.SyncRound(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkAdmissionThroughputWAL is the durable counterpart of
// admission's BenchmarkAdmissionThroughput/shards=1: the same submit,
// batch, solve, commit loop on one domain with every round logged and
// fsynced before its acks. The gap between the two numbers is the
// end-to-end cost of crash durability; the WAL-less hot benchmark stays
// the perf-regression gate.
func BenchmarkAdmissionThroughputWAL(b *testing.B) {
	const (
		epochs    = 4
		perEpoch  = 3
		totalReqs = epochs * perEpoch
	)
	types := []slice.Type{slice.EMBB, slice.URLLC, slice.MMTC}
	for i := 0; i < b.N; i++ {
		s, _, err := Open(Options{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		e := admission.New(admission.Config{QueueDepth: 4 * totalReqs, Log: s})
		if err := e.AddDomain("", admission.DomainConfig{Net: topology.Testbed(), Algorithm: "benders"}); err != nil {
			b.Fatal(err)
		}
		if err := e.Start(); err != nil {
			b.Fatal(err)
		}
		for ep := 0; ep < epochs; ep++ {
			for k := 0; k < perEpoch; k++ {
				_, err := e.Submit(admission.Request{
					Name: fmt.Sprintf("e%d-k%d", ep, k),
					SLA:  slice.SLA{Template: slice.Table1(types[(ep+k)%len(types)]), Duration: 2}.WithPenaltyFactor(1),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if _, err := e.DecideRound(""); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Advance(""); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
		e.Stop()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(totalReqs*b.N)/b.Elapsed().Seconds(), "req/s")
}
