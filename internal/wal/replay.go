package wal

import (
	"fmt"
	"sort"
)

// Replayer applies a live record stream (a Tailer's output) to a Target
// incrementally, with the same hold-back semantics Recover applies in
// batch: a step's settle/observe/forecasts prefix stays pending until the
// step's round arrives behind it. That is what keeps a standby's state a
// function of *committed* decisions only — a prefix whose round never
// lands is a crashed leader's residue, and Finalize truncates it exactly
// as crash recovery would.
//
// Feeding discipline: Bootstrap (optionally) with the tail's snapshot,
// then Ingest every record in LSN order. Records below the high-water
// mark are skipped, so at promotion the caller can replay Open's
// Recovered.Records wholesale without tracking what the tail already
// delivered. Finalize is promotion: truncate the pending residue and
// complete a trailing round-without-advance, against the now-writable
// Store.
type Replayer struct {
	t       Target
	pending map[string][]PositionedRecord
	pend    int
	last    map[string]string // last applied kind per domain

	seen       uint64 // next unseen LSN
	maxApplied uint64
	anyApplied bool
	rep        Report
}

// NewReplayer builds a replayer over a freshly constructed, un-started
// target (same contract as Recover: ReplayRound requires the engine to
// have never run).
func NewReplayer(t Target) (*Replayer, error) {
	if t.Engine == nil {
		return nil, fmt.Errorf("wal: replayer needs an engine")
	}
	return &Replayer{
		t:       t.normalized(),
		pending: map[string][]PositionedRecord{},
		last:    map[string]string{},
	}, nil
}

// Bootstrap restores the tail's snapshot and positions the replayer at
// its LSN. Call at most once, before any Ingest.
func (r *Replayer) Bootstrap(snap *Snapshot) error {
	if snap == nil {
		return nil
	}
	if r.seen != 0 || r.anyApplied {
		return fmt.Errorf("wal: replayer bootstrap after records were ingested")
	}
	if err := restoreSnapshot(r.t, snap); err != nil {
		return err
	}
	r.seen = snap.LSN
	r.rep.SnapshotLSN = snap.LSN
	return nil
}

// SeenLSN returns the next LSN Ingest expects (everything below it has
// been ingested or was folded into the bootstrap snapshot).
func (r *Replayer) SeenLSN() uint64 { return r.seen }

// Pending counts records held back waiting for their step's round.
func (r *Replayer) Pending() int { return r.pend }

// Rounds counts the rounds applied so far.
func (r *Replayer) Rounds() int { return r.rep.Rounds }

func (r *Replayer) apply(pr PositionedRecord) error {
	if err := replayOne(r.t, pr.Rec); err != nil {
		return fmt.Errorf("wal: replay at LSN %d: %w", pr.LSN, err)
	}
	if pr.Rec.Kind == KindRound {
		r.rep.Rounds++
	}
	r.last[pr.Rec.Domain] = pr.Rec.Kind
	r.maxApplied, r.anyApplied = pr.LSN, true
	r.rep.Applied++
	return nil
}

// Ingest feeds one record in LSN order. Records below the high-water mark
// are skipped (idempotent re-delivery); a gap above it is an error.
func (r *Replayer) Ingest(pr PositionedRecord) error {
	if pr.LSN < r.seen {
		return nil
	}
	if pr.LSN != r.seen {
		return fmt.Errorf("wal: replayer gap: got LSN %d, want %d", pr.LSN, r.seen)
	}
	r.seen++
	switch pr.Rec.Kind {
	case KindSettle, KindObserve, KindForecasts:
		// Step prefix: pends until this domain's round commits it.
		r.pending[pr.Rec.Domain] = append(r.pending[pr.Rec.Domain], pr)
		r.pend++
		return nil
	case KindRound:
		// The commit point: the pending prefix is durable-behind-a-round
		// now, so it applies, then the round itself.
		for _, p := range r.pending[pr.Rec.Domain] {
			if err := r.apply(p); err != nil {
				return err
			}
			r.pend--
		}
		delete(r.pending, pr.Rec.Domain)
		return r.apply(pr)
	case KindAdvance:
		// An advance always rides behind its round in the same group
		// commit; a pending prefix here means the log is malformed.
		if len(r.pending[pr.Rec.Domain]) > 0 {
			return fmt.Errorf("wal: replayer: advance at LSN %d over a pending step prefix in domain %q", pr.LSN, pr.Rec.Domain)
		}
		return r.apply(pr)
	default:
		// Topology/handover records are fsynced at append time and are
		// not part of a step's prefix: they apply immediately. One is
		// allowed to interleave a pending prefix (its fsync can land
		// between a step's settle and round appends); rounds replayed
		// later still observe it in log order, and settle/observe do not
		// read the state it mutates.
		return r.apply(pr)
	}
}

// Finalize is the promotion step, run once the dead leader's log has been
// fully ingested and s (the same directory, now opened for writing by the
// about-to-be leader) is accepting appends. The pending residue — step
// prefixes whose round never became durable — is physically truncated,
// and a trailing round-without-advance is completed and re-logged, both
// exactly as Recover does after a crash. The returned Report summarizes
// the whole replay since Bootstrap.
func (r *Replayer) Finalize(s *Store) (*Report, error) {
	if r.pend > 0 {
		first := uint64(0)
		got := false
		for _, prs := range r.pending {
			for _, pr := range prs {
				if !got || pr.LSN < first {
					first, got = pr.LSN, true
				}
			}
		}
		if r.anyApplied && r.maxApplied > first {
			// Same refusal as Recover: committed records landed after an
			// uncommitted prefix (multi-domain interleave), so the residue
			// is not the physical tail and cannot be truncated.
			return nil, fmt.Errorf("wal: committed record at LSN %d after uncommitted tail starting at LSN %d (multi-domain interleave); cannot truncate", r.maxApplied, first)
		}
		if err := s.TruncateTail(first); err != nil {
			return nil, err
		}
		r.rep.HeldBack = r.pend
		r.pending = map[string][]PositionedRecord{}
		r.pend = 0
		r.seen = first
	}

	var complete []string
	for domain, k := range r.last {
		if k == KindRound {
			complete = append(complete, domain)
		}
	}
	sort.Strings(complete)
	for _, domain := range complete {
		if _, err := r.t.Engine.Advance(domain); err != nil {
			return nil, fmt.Errorf("wal: completing advance for domain %q: %w", domain, err)
		}
		if c := r.t.ctrlFor(domain); c != nil {
			c.ReplayAdvanced()
		}
		r.last[domain] = KindAdvance
		r.rep.CompletedAdvance = append(r.rep.CompletedAdvance, domain)
	}
	rep := r.rep
	return &rep, nil
}
