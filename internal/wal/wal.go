package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/admission"
	"repro/internal/reopt"
	"repro/internal/topology"
	"repro/internal/yield"
)

// Options parameterizes a Store.
type Options struct {
	// Dir is the data directory; created if absent. Required.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size;
	// default 4 MiB.
	SegmentBytes int64
	// SnapshotsKept is how many snapshots survive compaction; default 2
	// (the newest plus one fallback should the newest prove unreadable).
	SnapshotsKept int
	// NoSync drops the fsync from Sync (the buffered flush remains) —
	// for benchmarks and tests where media durability is irrelevant.
	NoSync bool
	// Fence, when set, is consulted before any byte can reach the
	// directory (every append, sync, and snapshot). A non-nil return
	// permanently poisons the store: all further writes fail. This is the
	// storage half of leader fencing — a deposed leader sharing the
	// directory with its successor must not scribble on a log it no
	// longer owns (cluster.Lease.Check is the intended implementation).
	Fence func() error
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("wal: options need a directory")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotsKept <= 0 {
		o.SnapshotsKept = 2
	}
	return o, nil
}

// Snapshot is the durable image of the recoverable control-plane state at
// one log position: replay resumes at record LSN (records before it are
// folded into the state).
type Snapshot struct {
	LSN         uint64                  `json:"lsn"`
	Domains     []admission.DomainState `json:"domains,omitempty"`
	Controllers []reopt.ControllerState `json:"controllers,omitempty"`
	Ledger      yield.LedgerState       `json:"ledger"`
}

// PositionedRecord is one decoded log record with its LSN.
type PositionedRecord struct {
	LSN uint64
	Rec Record
}

// Recovered is what Open found on disk: the newest readable snapshot (nil
// on a fresh or snapshot-less directory) and the log suffix at or after
// its LSN, in order. Feed it to Recover to rebuild live state.
type Recovered struct {
	Snapshot *Snapshot
	Records  []PositionedRecord
	// TornTail reports that the final segment ended in a torn frame,
	// which Open truncated away.
	TornTail bool
}

type segInfo struct {
	path    string
	base    uint64  // LSN of the segment's first record
	offsets []int64 // byte offset of each record in the file
	size    int64
}

type snapInfo struct {
	path string
	lsn  uint64
}

// Store is the durable log. Safe for concurrent use; appenders of
// different domains share one frame stream and one group commit.
type Store struct {
	opt Options

	mu         sync.Mutex
	f          *os.File
	w          *bufio.Writer
	segs       []segInfo // on-disk segments, oldest first; last is active
	snaps      []snapInfo
	next       uint64 // LSN the next append gets
	recovering bool
	closed     bool
	appended   bool  // any append since Open (freezes the truncation index)
	poisoned   error // first fence failure; permanent
}

// writerBytes sizes the append buffer. Generously larger than a typical
// step's records so that, short of a Sync, appended frames stay in user
// space — which is also what makes Abort a faithful crash simulation.
const writerBytes = 256 << 10

// Open opens (or creates) the log in dir, repairs a torn tail, and returns
// the store plus everything recovery needs. The store is ready for appends
// immediately; call Recover first when rebuilding state.
func Open(opt Options) (*Store, *Recovered, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	s := &Store{opt: opt}
	rec := &Recovered{}

	names, err := os.ReadDir(opt.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			base, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
			if perr != nil {
				return nil, nil, fmt.Errorf("wal: bad segment name %q", name)
			}
			s.segs = append(s.segs, segInfo{path: filepath.Join(opt.Dir, name), base: base})
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json"):
			lsn, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".json"), 16, 64)
			if perr != nil {
				return nil, nil, fmt.Errorf("wal: bad snapshot name %q", name)
			}
			s.snaps = append(s.snaps, snapInfo{path: filepath.Join(opt.Dir, name), lsn: lsn})
		}
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].base < s.segs[j].base })
	sort.Slice(s.snaps, func(i, j int) bool { return s.snaps[i].lsn < s.snaps[j].lsn })

	// Newest readable snapshot wins; an unreadable one falls back to the
	// previous (compaction keeps a spare for exactly this).
	for i := len(s.snaps) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(s.snaps[i].path)
		if rerr != nil {
			continue
		}
		var snap Snapshot
		if json.Unmarshal(data, &snap) != nil || snap.LSN != s.snaps[i].lsn {
			continue
		}
		rec.Snapshot = &snap
		break
	}
	snapLSN := uint64(0)
	if rec.Snapshot != nil {
		snapLSN = rec.Snapshot.LSN
	}

	// Scan segments: index every record, repair a torn tail, and collect
	// the suffix at or after the snapshot.
	s.next = 0
	for i := range s.segs {
		sg := &s.segs[i]
		if i > 0 && sg.base != s.next {
			return nil, nil, fmt.Errorf("wal: segment %s starts at LSN %d, want %d (gap or overlap)", sg.path, sg.base, s.next)
		}
		if i == 0 {
			s.next = sg.base
		}
		data, rerr := os.ReadFile(sg.path)
		if rerr != nil {
			return nil, nil, fmt.Errorf("wal: %w", rerr)
		}
		off := int64(0)
		for {
			r, n, derr := decodeFrame(data[off:])
			if derr != nil {
				if derr == ErrTorn {
					if i != len(s.segs)-1 {
						return nil, nil, fmt.Errorf("wal: torn record at %s+%d in a sealed segment: corruption", sg.path, off)
					}
					// Expected crash residue: drop the torn tail.
					if terr := os.Truncate(sg.path, off); terr != nil {
						return nil, nil, fmt.Errorf("wal: %w", terr)
					}
					rec.TornTail = true
				}
				break
			}
			sg.offsets = append(sg.offsets, off)
			if s.next >= snapLSN {
				rec.Records = append(rec.Records, PositionedRecord{LSN: s.next, Rec: r})
			}
			s.next++
			off += int64(n)
		}
		sg.size = off
	}
	if s.next < snapLSN {
		// The snapshot syncs the log before it is written, so its LSN can
		// never outrun the durable record count.
		return nil, nil, fmt.Errorf("wal: snapshot at LSN %d but log ends at %d", snapLSN, s.next)
	}

	if len(s.segs) == 0 {
		if err := s.openSegmentLocked(s.next); err != nil {
			return nil, nil, err
		}
	} else {
		active := &s.segs[len(s.segs)-1]
		f, oerr := os.OpenFile(active.path, os.O_WRONLY, 0o644)
		if oerr != nil {
			return nil, nil, fmt.Errorf("wal: %w", oerr)
		}
		if _, oerr = f.Seek(active.size, 0); oerr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", oerr)
		}
		s.f = f
		s.w = bufio.NewWriterSize(f, writerBytes)
	}
	return s, rec, nil
}

// openSegmentLocked creates a fresh segment whose first record will be LSN
// base and makes it the active one. Caller holds s.mu (or is Open).
func (s *Store) openSegmentLocked(base uint64) error {
	path := filepath.Join(s.opt.Dir, fmt.Sprintf("wal-%016x.seg", base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, writerBytes)
	s.segs = append(s.segs, segInfo{path: path, base: base})
	return nil
}

// append frames one record onto the active segment (buffered; durable at
// the next Sync). No-op while recovering: replay drives the engine and
// controller through their normal code paths, whose WAL hooks must not
// re-log what is being replayed.
func (s *Store) append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering {
		return nil
	}
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	if err := s.fenceLocked(); err != nil {
		return err
	}
	active := &s.segs[len(s.segs)-1]
	if active.size >= s.opt.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		active = &s.segs[len(s.segs)-1]
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(frame); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	active.offsets = append(active.offsets, active.size)
	active.size += int64(len(frame))
	s.next++
	s.appended = true
	return nil
}

// rotateLocked seals the active segment and opens the next. Caller holds
// s.mu.
func (s *Store) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return s.openSegmentLocked(s.next)
}

// fenceLocked runs the fence hook; a failure poisons the store for good.
// Caller holds s.mu. The check sits on every path that pushes bytes
// toward the directory (append, sync, snapshot): under log-before-ack
// the round record syncs before any dispatch or ack, so a deposed leader
// dies here before it can decide anything its successor wouldn't.
func (s *Store) fenceLocked() error {
	if s.poisoned != nil {
		return s.poisoned
	}
	if s.opt.Fence == nil {
		return nil
	}
	if err := s.opt.Fence(); err != nil {
		s.poisoned = fmt.Errorf("wal: fenced: %w", err)
		return s.poisoned
	}
	return nil
}

// syncLocked flushes the append buffer and (unless NoSync) fsyncs the
// active segment. Caller holds s.mu.
func (s *Store) syncLocked() error {
	if err := s.fenceLocked(); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if s.opt.NoSync {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Sync makes every appended record durable — the group commit.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering {
		return nil
	}
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	return s.syncLocked()
}

// LSN returns the LSN the next appended record will get.
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// --- admission.RoundLog ---

// AppendRound implements admission.RoundLog.
func (s *Store) AppendRound(domain string, seq uint64, batch []admission.Request) error {
	return s.append(&Record{Kind: KindRound, Domain: domain, Seq: seq, Batch: batch})
}

// AppendForecasts implements admission.RoundLog.
func (s *Store) AppendForecasts(domain string, ups []admission.ForecastUpdate) error {
	return s.append(&Record{Kind: KindForecasts, Domain: domain, Forecasts: ups})
}

// AppendAdvance implements admission.RoundLog.
func (s *Store) AppendAdvance(domain string) error {
	return s.append(&Record{Kind: KindAdvance, Domain: domain})
}

// AppendTopology implements admission.RoundLog.
func (s *Store) AppendTopology(domain string, events []topology.Event) error {
	return s.append(&Record{Kind: KindTopology, Domain: domain, Events: events})
}

// AppendHandover implements admission.RoundLog.
func (s *Store) AppendHandover(fromDomain, toDomain, name string) error {
	return s.append(&Record{Kind: KindHandover, Domain: fromDomain, To: toDomain, Name: name})
}

// SyncRound implements admission.RoundLog: the once-per-round group commit.
func (s *Store) SyncRound() error { return s.Sync() }

// --- reopt.StepLog ---

// AppendSettle implements reopt.StepLog.
func (s *Store) AppendSettle(domain string, epoch int, entries []yield.Entry) error {
	return s.append(&Record{Kind: KindSettle, Domain: domain, Epoch: epoch, Entries: entries})
}

// AppendObserve implements reopt.StepLog.
func (s *Store) AppendObserve(domain string, epoch int, alive []string, peaks []reopt.ObservedPeak) error {
	return s.append(&Record{Kind: KindObserve, Domain: domain, Epoch: epoch, Alive: alive, Peaks: peaks})
}

// --- snapshots ---

// WriteSnapshot persists snap at the log's current position: sync the log,
// write the state to snap-<LSN>.json via tmp + rename, rotate the segment,
// and compact snapshots and segments nothing references anymore. snap.LSN
// is set by this call.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	if err := s.fenceLocked(); err != nil {
		return err
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	snap.LSN = s.next
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("wal: encode snapshot: %w", err)
	}
	path := filepath.Join(s.opt.Dir, fmt.Sprintf("snap-%016x.json", snap.LSN))
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data, !s.opt.NoSync); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	s.syncDir()

	// A snapshot at the same LSN as an earlier one (quiet log) replaces it.
	if n := len(s.snaps); n > 0 && s.snaps[n-1].lsn == snap.LSN {
		s.snaps = s.snaps[:n-1]
	}
	s.snaps = append(s.snaps, snapInfo{path: path, lsn: snap.LSN})

	// Rotate so the compaction boundary is a segment boundary: every
	// record before the snapshot sits in sealed segments.
	if active := &s.segs[len(s.segs)-1]; active.size > 0 {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}

	// Keep the newest SnapshotsKept snapshots; drop older ones, then drop
	// every sealed segment whose records all predate the oldest kept
	// snapshot — no recovery can need them.
	for len(s.snaps) > s.opt.SnapshotsKept {
		os.Remove(s.snaps[0].path)
		s.snaps = s.snaps[1:]
	}
	keep := s.snaps[0].lsn
	for len(s.segs) > 1 && s.segs[1].base <= keep {
		os.Remove(s.segs[0].path)
		s.segs = s.segs[1:]
	}
	s.syncDir()
	return nil
}

// writeFileSync writes data to path and optionally fsyncs it before close.
func writeFileSync(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncDir fsyncs the data directory (rename/unlink durability);
// best-effort, as not every filesystem supports it.
func (s *Store) syncDir() {
	if s.opt.NoSync {
		return
	}
	if d, err := os.Open(s.opt.Dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// --- recovery support ---

// BeginRecovery suppresses appends while logged records are replayed
// through the live engine/controller paths (whose WAL hooks would
// otherwise re-log them).
func (s *Store) BeginRecovery() {
	s.mu.Lock()
	s.recovering = true
	s.mu.Unlock()
}

// EndRecovery re-enables appends.
func (s *Store) EndRecovery() {
	s.mu.Lock()
	s.recovering = false
	s.mu.Unlock()
}

// TruncateTail physically drops every record at or after fromLSN — the
// uncommitted step prefix a crash left behind. Recovery-time only: it must
// run before any post-open append.
func (s *Store) TruncateTail(fromLSN uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appended {
		return fmt.Errorf("wal: TruncateTail after appends")
	}
	if fromLSN >= s.next {
		return nil
	}
	// Drop whole segments past the cut, newest first.
	for len(s.segs) > 0 {
		last := len(s.segs) - 1
		if s.segs[last].base < fromLSN || last == 0 {
			break
		}
		if s.f != nil {
			s.w.Flush()
			s.f.Close()
			s.f, s.w = nil, nil
		}
		if err := os.Remove(s.segs[last].path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		s.segs = s.segs[:last]
	}
	// Cut within the now-last segment.
	sg := &s.segs[len(s.segs)-1]
	if s.f != nil {
		s.w.Flush()
		s.f.Close()
		s.f, s.w = nil, nil
	}
	if i := fromLSN - sg.base; fromLSN > sg.base && i < uint64(len(sg.offsets)) {
		if err := os.Truncate(sg.path, sg.offsets[i]); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		sg.size = sg.offsets[i]
		sg.offsets = sg.offsets[:i]
	} else if fromLSN <= sg.base {
		if err := os.Truncate(sg.path, 0); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		sg.size, sg.offsets = 0, nil
	}
	f, err := os.OpenFile(sg.path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(sg.size, 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, writerBytes)
	s.next = fromLSN
	s.syncDir()
	return nil
}

// --- lifecycle ---

// Close syncs and closes the store. A clean shutdown typically writes a
// final snapshot first, making the next open replay-free.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Abort closes the store WITHOUT flushing the append buffer, discarding
// every record since the last Sync — the crash simulation the
// kill-and-replay tests are built on. The dropped tail is exactly what a
// hard kill could lose under the group-commit contract.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.f.Close()
}
